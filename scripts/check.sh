#!/bin/sh
# check.sh — static verification gate: formatting, vet, and the
# project determinism linter (manetlint). Run from anywhere inside the
# repository; `make check` is the usual entry point.
set -eu

cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== manetlint"
go run ./cmd/manetlint ./... || fail=1

if [ "$fail" -ne 0 ]; then
    echo "check: FAILED" >&2
    exit 1
fi
echo "check: OK"
