#!/bin/sh
# check.sh — static verification gate: formatting, vet, and the
# project determinism linter (manetlint). Run from anywhere inside the
# repository; `make check` is the usual entry point.
set -eu

cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== manetlint"
go run ./cmd/manetlint ./... || fail=1

# Third-party static gates. Pinned versions match .github/workflows/
# ci.yml; install with
#   go install honnef.co/go/tools/cmd/staticcheck@2023.1.7
#   go install golang.org/x/vuln/cmd/govulncheck@v1.1.3
# Escape hatch: export SKIP_STATICCHECK / SKIP_GOVULNCHECK with a
# reason string to skip a gate while a false positive is triaged.
echo "== staticcheck"
if [ -n "${SKIP_STATICCHECK:-}" ]; then
    echo "staticcheck: skipped ($SKIP_STATICCHECK)" >&2
elif command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./... || fail=1
else
    echo "staticcheck: not installed, skipping" >&2
fi

echo "== govulncheck"
if [ -n "${SKIP_GOVULNCHECK:-}" ]; then
    echo "govulncheck: skipped ($SKIP_GOVULNCHECK)" >&2
elif command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./... || fail=1
else
    echo "govulncheck: not installed, skipping" >&2
fi

echo "== parallel equivalence (GOMAXPROCS=4)"
GOMAXPROCS=4 go test -run TestParallelMatchesSerial -count=1 ./internal/simnet || fail=1

echo "== engine equivalence (scan vs kinetic)"
# The matrix differential (byte-identical Results and trace for every
# scenario/mobility/parallelism combination) plus the regression-corpus
# replay, whose property battery runs every corpus scenario under both
# engines with every-tick invariant checks.
go test -run TestKineticMatchesScan -count=1 ./internal/simnet || fail=1
go test -run TestRegressionCorpusReplays -count=1 ./internal/invariant/prop || fail=1

echo "== maintainer equivalence (oracle vs incremental)"
# The maintenance differential: delta-patched hierarchy maintenance
# plus dirty-owner LM updates must be byte-identical to the full
# per-tick rebuild across the scenario matrix (the corpus replay above
# already runs every scenario under both maintainers).
go test -run TestIncrementalMatchesOracle -count=1 ./internal/simnet || fail=1

echo "== model zoo (cross-model differential matrix, race)"
# Mirrors the CI modelzoo job: every mobility model keeps the
# scan/kinetic and oracle/incremental equivalences byte-identical, the
# scan-only lossy link model passes the every-tick battery and is
# rejected by the kinetic engine, and the zoo unit suites hold.
go test -race -run 'TestZoo|TestGaussMarkov|TestManhattan|TestHotspot|TestSegmentMatchesAdvance' -count=1 ./internal/mobility || fail=1
go test -race -run 'TestLogShadow' -count=1 ./internal/topology || fail=1
go test -race -run 'TestLogShadow|TestKineticRejectsScanOnlyLink|TestLinkConfigValidation' -count=1 ./internal/simnet || fail=1

echo "== race tests (measurement pipeline + serving path)"
go test -race ./internal/obs ./internal/trace ./internal/stats ./internal/runner ./internal/serve || fail=1

echo "== manifest smoke"
manifest_tmp=$(mktemp)
if go run ./cmd/experiments -run E4 -quick -manifest "$manifest_tmp" >/dev/null 2>&1; then
    if command -v jq >/dev/null 2>&1; then
        # The manifest must be valid JSON with per-phase timings and a
        # tick total at least as large as any sub-phase sum component.
        jq -e '.tool == "experiments"
               and (.metrics.phases | has("tick.total"))
               and (.metrics.phases["tick.total"].seconds > 0)
               and (.metrics.counters["sweep.cells_ok"] > 0)' \
            "$manifest_tmp" >/dev/null || { echo "manifest smoke: bad manifest" >&2; fail=1; }
    else
        echo "manifest smoke: jq not found, skipping schema assertion" >&2
    fi
else
    echo "manifest smoke: experiments run failed" >&2
    fail=1
fi
rm -f "$manifest_tmp"

echo "== lmserve smoke"
# A short serving run must produce a manifest whose serve metrics show
# requests flowing, throughput measured, and query latency recorded.
serve_tmp=$(mktemp)
if go run ./cmd/lmserve -n 128 -duration 6 -warmup 2 -rate 4000 -pace 0.002 \
    -manifest "$serve_tmp" >/dev/null 2>&1; then
    if command -v jq >/dev/null 2>&1; then
        jq -e '.tool == "lmserve"
               and (.metrics.counters["serve.requests"] > 0)
               and (.metrics.gauges["serve.qps"] > 0)
               and (.metrics.hists["serve.query_latency"].count > 0)
               and (.metrics.hists["serve.query_latency"].p99_seconds > 0)' \
            "$serve_tmp" >/dev/null || { echo "lmserve smoke: bad manifest" >&2; fail=1; }
    else
        echo "lmserve smoke: jq not found, skipping schema assertion" >&2
    fi
else
    echo "lmserve smoke: serve run failed" >&2
    fail=1
fi
rm -f "$serve_tmp"

if [ "$fail" -ne 0 ]; then
    echo "check: FAILED" >&2
    exit 1
fi
echo "check: OK"
