#!/bin/sh
# Runs the steady-state tick benchmarks and records them as JSON, so
# allocation/latency changes are reviewable in the diff.
#
#   make bench-json          # writes BENCH_<date>.json in the repo root
#   BENCH_COUNT=5 sh scripts/bench.sh   # more samples per benchmark
#
# Only the Tick* sub-benchmarks are recorded: they isolate the scan
# tick's four stages (graph rebuild, diff, hierarchy, LM update) in
# fresh vs reuse variants, which is the comparison worth tracking.
set -eu

cd "$(dirname "$0")/.."
count="${BENCH_COUNT:-3}"
out="BENCH_$(date +%F).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkTick(GraphRebuild|Diff|Hierarchy|LMUpdate)' \
	-benchmem -benchtime=20x -count="$count" . >"$raw"

awk -v date="$(date +%F)" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n", date; cpu = "unknown"; n = 0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	else printf "  \"benchmarks\": [\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s}", \
		name, $2, $3, $5, $7
}
END {
	printf "\n  ],\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\"\n", cpu
	print "}"
}' "$raw" >"$out"

echo "wrote $out"
