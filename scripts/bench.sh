#!/bin/sh
# Runs the steady-state tick benchmarks and records them as JSON, so
# allocation/latency changes are reviewable in the diff.
#
#   make bench-json          # appends an entry to BENCH_<date>.json
#   BENCH_COUNT=5 sh scripts/bench.sh   # more samples per benchmark
#
# Only the Tick* and BuildLinks sub-benchmarks are recorded: they
# isolate the scan tick's hot stages (graph rebuild, diff, hierarchy,
# LM update, and the scan-vs-kinetic link maintenance matrix) in fresh
# vs reuse vs par variants, plus the per-link-model build cost
# (unitdisk vs logshadow µs/simsec, serial and par), which is the
# comparison worth tracking. The
# ClusterMaintain matrix (oracle-vs-incremental hierarchy maintenance
# across waypoint pause intervals) and the LMUpdate lowchurn legs
# record the churn-proportional maintenance speedup in µs/simsec. The -count
# repetitions are aggregated per benchmark (minimum ns/op — the
# least-noise sample — with its B/op and allocs/op), so each recorded
# entry has exactly one line per benchmark, and every entry is stamped
# with the commit it measured (git describe --always --dirty). Each
# run APPENDS one dated entry to the day's file ({"entries": [...]}),
# so repeated runs build a trajectory instead of overwriting the
# previous record; each entry also folds in an lmserve serve-mode
# sample (qps, query p50/p99, shed) so online-serving regressions
# track alongside. Appending needs jq; without it a fresh timestamped
# file is written instead, so no record is ever clobbered.
set -eu

cd "$(dirname "$0")/.."
count="${BENCH_COUNT:-3}"
date="$(date +%F)"
time="$(date +%T)"
commit="$(git describe --always --dirty 2>/dev/null || echo unknown)"
out="BENCH_${date}.json"
raw="$(mktemp)"
entry="$(mktemp)"
trap 'rm -f "$raw" "$entry"' EXIT

go test -run '^$' -bench 'Benchmark(Tick(GraphRebuild|Diff|Hierarchy|LMUpdate|LinkMaintain|ClusterMaintain)|BuildLinks)' \
	-benchmem -benchtime=20x -count="$count" . >"$raw"

awk -v date="$date" -v time="$time" -v commit="$commit" '
BEGIN { cpu = "unknown"; n = 0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	# Locate metrics by unit label: custom ReportMetric columns
	# (events/tick, us/simsec) shift the field positions.
	ns = ""; bytes = ""; allocs = ""; uss = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		else if ($(i + 1) == "B/op") bytes = $i
		else if ($(i + 1) == "allocs/op") allocs = $i
		else if ($(i + 1) == "µs/simsec" || $(i + 1) == "us/simsec") uss = $i
	}
	if (ns == "") next
	# Aggregate -count repeats: keep the minimum-ns/op sample.
	if (!(name in best) || ns + 0 < best[name] + 0) {
		if (!(name in best)) order[n++] = name
		best[name] = ns; bbytes[name] = bytes; ballocs[name] = allocs
		busims[name] = uss
		iters[name] = $2
	}
}
END {
	print "{"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"time\": \"%s\",\n", time
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		extra = (busims[name] != "" ? sprintf(", \"us_simsec\": %s", busims[name]) : "")
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s%s}%s\n", \
			name, iters[name], best[name], bbytes[name], ballocs[name], extra, (i < n - 1 ? "," : "")
	}
	printf "  ],\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\"\n", cpu
	print "}"
}' "$raw" >"$entry"

# Merge a wall-clock phase breakdown (graph rebuild / cluster / diff /
# LM update shares of the tick) from a short instrumented run of EACH
# link engine, so the JSON records not just per-stage microbenchmarks
# but how the stages divide a real tick under both the scan and the
# kinetic engine. Needs jq; silently skipped without it.
if command -v jq >/dev/null 2>&1; then
	for eng in scan kinetic; do
		phases="$(mktemp)"
		if go run ./cmd/lmsim -n 256 -duration 30 -warmup 10 -engine "$eng" \
			-manifest "$phases" >/dev/null 2>&1; then
			jq --slurpfile m "$phases" --arg eng "$eng" \
				'.phases[$eng] = $m[0].metrics.phases' "$entry" >"$entry.tmp"
			mv "$entry.tmp" "$entry"
		fi
		rm -f "$phases"
	done

	# Serve mode: a short lmserve run records online throughput and
	# query-latency quantiles, so qps/p99 regressions in the serving
	# path show up in the same BENCH_*.json trajectory as the tick
	# microbenchmarks.
	smanifest="$(mktemp)"
	if go run ./cmd/lmserve -n 256 -duration 20 -warmup 5 -rate 10000 \
		-pace 0.002 -manifest "$smanifest" >/dev/null 2>&1; then
		jq --slurpfile m "$smanifest" \
			'.serve = {
				qps: $m[0].metrics.gauges["serve.qps"],
				p50_s: $m[0].metrics.hists["serve.query_latency"].p50_seconds,
				p99_s: $m[0].metrics.hists["serve.query_latency"].p99_seconds,
				shed: $m[0].metrics.counters["serve.shed"]
			}' "$entry" >"$entry.tmp"
		mv "$entry.tmp" "$entry"
	fi
	rm -f "$smanifest"
fi

if [ -f "$out" ]; then
	if command -v jq >/dev/null 2>&1; then
		# Legacy single-run files (no "entries") are wrapped first.
		jq --slurpfile new "$entry" \
			'(if has("entries") then . else {entries: [.]} end) | .entries += $new' \
			"$out" >"$out.tmp"
		mv "$out.tmp" "$out"
	else
		out="BENCH_${date}_$(date +%H%M%S).json"
		printf '{\n  "entries": [\n' >"$out"
		cat "$entry" >>"$out"
		printf '  ]\n}\n' >>"$out"
	fi
else
	printf '{\n  "entries": [\n' >"$out"
	cat "$entry" >>"$out"
	printf '  ]\n}\n' >>"$out"
fi

echo "wrote $out"
