#!/bin/sh
# Runs the steady-state tick benchmarks and records them as JSON, so
# allocation/latency changes are reviewable in the diff.
#
#   make bench-json          # appends an entry to BENCH_<date>.json
#   BENCH_COUNT=5 sh scripts/bench.sh   # more samples per benchmark
#
# Only the Tick* sub-benchmarks are recorded: they isolate the scan
# tick's hot stages (graph rebuild, diff, hierarchy, LM update) in
# fresh vs reuse vs par variants, which is the comparison worth
# tracking. Each run APPENDS one dated entry to the day's file
# ({"entries": [...]}), so repeated runs build a trajectory instead of
# overwriting the previous record. Appending needs jq; without it a
# fresh timestamped file is written instead, so no record is ever
# clobbered.
set -eu

cd "$(dirname "$0")/.."
count="${BENCH_COUNT:-3}"
date="$(date +%F)"
time="$(date +%T)"
out="BENCH_${date}.json"
raw="$(mktemp)"
entry="$(mktemp)"
trap 'rm -f "$raw" "$entry"' EXIT

go test -run '^$' -bench 'BenchmarkTick(GraphRebuild|Diff|Hierarchy|LMUpdate)' \
	-benchmem -benchtime=20x -count="$count" . >"$raw"

awk -v date="$date" -v time="$time" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n", date; printf "  \"time\": \"%s\",\n", time; cpu = "unknown"; n = 0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	else printf "  \"benchmarks\": [\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s}", \
		name, $2, $3, $5, $7
}
END {
	printf "\n  ],\n"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\"\n", cpu
	print "}"
}' "$raw" >"$entry"

# Merge a wall-clock phase breakdown (graph rebuild / cluster / diff /
# LM update shares of the tick) from a short instrumented run, so the
# JSON records not just per-stage microbenchmarks but how the stages
# divide a real tick. Needs jq; silently skipped without it.
if command -v jq >/dev/null 2>&1; then
	phases="$(mktemp)"
	if go run ./cmd/lmsim -n 256 -duration 30 -warmup 10 -manifest "$phases" >/dev/null 2>&1; then
		jq --slurpfile m "$phases" '.phases = $m[0].metrics.phases' "$entry" >"$entry.tmp"
		mv "$entry.tmp" "$entry"
	fi
	rm -f "$phases"
fi

if [ -f "$out" ]; then
	if command -v jq >/dev/null 2>&1; then
		# Legacy single-run files (no "entries") are wrapped first.
		jq --slurpfile new "$entry" \
			'(if has("entries") then . else {entries: [.]} end) | .entries += $new' \
			"$out" >"$out.tmp"
		mv "$out.tmp" "$out"
	else
		out="BENCH_${date}_$(date +%H%M%S).json"
		printf '{\n  "entries": [\n' >"$out"
		cat "$entry" >>"$out"
		printf '  ]\n}\n' >>"$out"
	fi
else
	printf '{\n  "entries": [\n' >"$out"
	cat "$entry" >>"$out"
	printf '  ]\n}\n' >>"$out"
fi

echo "wrote $out"
