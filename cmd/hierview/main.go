// Command hierview builds a static network and pretty-prints its
// recursive ALCA clustered hierarchy in the style of the paper's
// Fig. 1, including example hierarchical addresses.
//
// Usage:
//
//	hierview -n 30 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/addr"
	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hierview: ")

	var (
		n    = flag.Int("n", 30, "node count")
		seed = flag.Uint64("seed", 42, "placement seed")
	)
	flag.Parse()

	cfg := simnet.Config{N: *n, Seed: *seed}
	region := cfg.Region()
	src := rng.NewRoot(*seed).Stream("static-layout")
	pos := make([]geom.Vec, *n)
	for i := range pos {
		pos[i] = region.Sample(src)
	}
	g := topology.BuildUnitDiskBrute(pos, 100)
	all := make([]int, *n)
	for i := range all {
		all[i] = i
	}
	giant := topology.GiantComponent(g, all)
	h := cluster.Build(g, giant, cluster.Config{}, nil)
	if err := h.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d nodes placed (giant component %d), %d hierarchy levels\n\n",
		*n, len(giant), h.L())
	runner.RenderHierarchy(os.Stdout, h)

	fmt.Println("\nhierarchical addresses (top-down, like Fig. 1's 100.85.37.63):")
	for i, v := range giant {
		if i%max(1, len(giant)/8) == 0 {
			fmt.Printf("  node %-4d -> %s\n", v, addr.Of(h, v))
		}
	}

	fmt.Printf("\nrouting state: flat %d entries/node, hierarchical %.1f entries/node\n",
		routing.FlatTableSize(len(giant)), routing.MeanHierTableSize(h))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
