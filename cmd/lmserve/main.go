// Command lmserve runs the online location-service runtime: a live
// simulation of hierarchical location management serving a concurrent
// synthetic client population, reporting throughput, query/update
// latency quantiles, and handoff-induced unavailability.
//
// Usage:
//
//	lmserve -n 256 -duration 30 -rate 5000
//	lmserve -n 1024 -rate 20000 -shards 8 -json
//	lmserve -n 512 -diurnal 0.5 -manifest serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lmserve: ")

	var (
		n        = flag.Int("n", 256, "node count")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		duration = flag.Float64("duration", 60, "measured sim seconds")
		warmup   = flag.Float64("warmup", 10, "warmup seconds (discarded)")
		mu       = flag.Float64("mu", 10, "node speed, m/s")
		rtx      = flag.Float64("rtx", 100, "transmission radius, m")
		degree   = flag.Float64("degree", 9, "target mean node degree")
		scan     = flag.Float64("scan", 0, "link scan interval, s (0 = auto)")
		mob      = flag.String("mobility", "waypoint", "mobility model: waypoint|direction|static|group|gauss-markov|manhattan|hotspot")
		link     = flag.String("link", "unitdisk", "link model: unitdisk|logshadow")
		engine   = flag.String("engine", "scan", "link engine: scan|kinetic")
		maint    = flag.String("maintainer", "oracle", "hierarchy maintenance: oracle|incremental")

		rate     = flag.Float64("rate", 1000, "request arrival rate per wall second")
		queryFr  = flag.Float64("query-fraction", 0.8, "fraction of requests that are queries (rest are updates)")
		diurnal  = flag.Float64("diurnal", 0, "diurnal rate modulation depth in [0,1] (0 = flat Poisson)")
		diurnalP = flag.Float64("diurnal-period", 60, "diurnal modulation period, wall seconds")
		shards   = flag.Int("shards", 4, "request queue/worker shards")
		depth    = flag.Int("queue-depth", 1024, "per-shard queue bound (full queue sheds)")
		batch    = flag.Int("batch", 64, "max requests drained per lock acquisition")
		pace     = flag.Float64("pace", 0.005, "wall seconds of serving per simulation tick (negative = none)")
		window   = flag.Float64("unavail-window", 0.002, "mid-handoff unavailability window, wall seconds (negative = off)")
		srvSeed  = flag.Uint64("serve-seed", 1, "serving-side rng seed (arrivals, pair picks)")

		jsonOut  = flag.Bool("json", false, "emit results as JSON")
		manifest = flag.String("manifest", "", "write a run manifest (config, seed, serve metrics) to this JSON file")
	)
	flag.Parse()

	simCfg := simnet.Config{
		N: *n, Seed: *seed,
		Duration: *duration, Warmup: *warmup,
		Mu: *mu, RTX: *rtx, Degree: *degree, ScanInterval: *scan,
		Mobility: *mob, Link: *link, Engine: *engine, Maintainer: *maint,
	}
	reg := obs.NewRegistry()
	cfg := serve.Config{
		Sim:           simCfg,
		Rate:          *rate,
		QueryFraction: *queryFr,
		Diurnal:       *diurnal,
		DiurnalPeriod: *diurnalP,
		Shards:        *shards,
		QueueDepth:    *depth,
		Batch:         *batch,
		Pace:          *pace,
		UnavailWindow: *window,
		Seed:          *srvSeed,
		Metrics:       reg,
	}

	var man *obs.Manifest
	if *manifest != "" {
		man = obs.NewManifest("lmserve")
		man.Seed = *srvSeed
		man.Config = map[string]any{
			"n": *n, "sim_seed": *seed, "duration_s": *duration,
			"warmup_s": *warmup, "mu": *mu, "rtx": *rtx,
			"mobility": *mob, "link": *link, "engine": *engine, "maintainer": *maint,
			"rate": *rate, "query_fraction": *queryFr,
			"diurnal": *diurnal, "diurnal_period_s": *diurnalP,
			"shards": *shards, "queue_depth": *depth, "batch": *batch,
			"pace_s": *pace, "unavail_window_s": *window,
		}
	}

	res, err := serve.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if man != nil {
		man.Finish(reg)
		if err := man.WriteFile(*manifest); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "manifest -> %s\n", *manifest)
	}

	if *jsonOut {
		// Shadow the embedded sim Config: it carries funcs (Observer)
		// and interfaces that do not marshal. The stand-in must be
		// untagged — only a same-JSON-name field shadows the promoted
		// one; `json:"-"` or a renaming tag would leave it visible.
		out := struct {
			*serve.Results
			Sim struct {
				*simnet.Results
				Config struct{}
			} `json:"sim"`
		}{Results: res}
		out.Sim.Results = res.Sim
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("served %d/%d requests (%d queries, %d updates) in %.1fs wall, %d sim ticks\n",
		res.Queries+res.Updates, res.Requests, res.Queries, res.Updates,
		res.WallSeconds, res.Ticks)
	fmt.Printf("throughput: %.0f qps  shed: %d  misroutes: %d  retries: %d\n",
		res.QPS, res.Shed, res.Misroutes, res.Retries)
	q := res.QueryLatency
	fmt.Printf("query latency: p50 %s  p90 %s  p99 %s  max %s (%d samples)\n",
		fmtLat(q.P50Seconds), fmtLat(q.P90Seconds), fmtLat(q.P99Seconds),
		fmtLat(q.MaxSeconds), q.Count)
	u := res.UpdateLatency
	fmt.Printf("update latency: p50 %s  p90 %s  p99 %s  max %s (%d samples)\n",
		fmtLat(u.P50Seconds), fmtLat(u.P90Seconds), fmtLat(u.P99Seconds),
		fmtLat(u.MaxSeconds), u.Count)
	fmt.Printf("unavailability: %d handoff windows, %.3fs total\n",
		res.UnavailWindows, res.UnavailSeconds)
	fmt.Printf("sim: phi %.3f gamma %.3f pkt/node/s, %.1f mean levels\n",
		res.Sim.PhiRate, res.Sim.GammaRate, res.Sim.MeanLevels)
}

// fmtLat renders a latency in the most readable unit.
func fmtLat(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
