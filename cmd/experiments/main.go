// Command experiments regenerates the paper's figures and validates
// its numbered claims. Each experiment ID maps to a table or figure
// per DESIGN.md §4; EXPERIMENTS.md records paper-vs-measured outcomes.
//
// Usage:
//
//	experiments -list
//	experiments -run E15
//	experiments -run all -quick
//	experiments -run E15 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	manet "repro"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		run        = flag.String("run", "", "experiment ID (E1..E15, A1..A3) or 'all'")
		list       = flag.Bool("list", false, "list experiments")
		quick      = flag.Bool("quick", false, "smoke-test scale instead of full scale")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this file")
		manifest   = flag.String("manifest", "", "write a run manifest (scale, per-phase timings, cell stats) to this JSON file")
		progress   = flag.Bool("progress", false, "report per-cell sweep progress on stderr")
		engine     = flag.String("engine", "", "link engine for every run: scan (default) | kinetic (event-driven)")
		maint      = flag.String("maintainer", "", "hierarchy maintenance for every run: oracle (default, full rebuild) | incremental (delta-patched)")
		mob        = flag.String("mobility", "", "mobility model for every run (default waypoint; see lmsim -mobility)")
		link       = flag.String("link", "", "link model for every run: unitdisk (default) | logshadow")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range manet.Experiments() {
			fmt.Printf("  %-4s %-36s %s\n", e.ID, e.Title, e.Paper)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: experiments -run <ID> (or -run all)")
		}
		return
	}

	// Profile teardown must run before exit, so the experiment body
	// lives in its own function and errors exit from main.
	if err := runExperiments(*run, *quick, *cpuprofile, *memprofile, *manifest, *progress, *engine, *maint, *mob, *link); err != nil {
		log.Fatal(err)
	}
}

func runExperiments(run string, quick bool, cpuprofile, memprofile, manifest string, progress bool, engine, maintainer, mobility, link string) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	sc := manet.FullScale()
	if quick {
		sc = manet.QuickScale()
	}
	sc.Engine = engine
	sc.Maintainer = maintainer
	sc.Mobility = mobility
	sc.Link = link
	if manifest != "" {
		man := obs.NewManifest("experiments")
		man.Config = map[string]any{
			"run": run, "quick": quick,
			"scale": sc, // Scale is plain data (sink fields are json:"-")
		}
		sc.Metrics = obs.NewRegistry()
		// The manifest is written in a defer so a failed experiment still
		// leaves its partial metrics (cells ok/failed, phase timings)
		// behind for diagnosis.
		defer func() {
			man.Finish(sc.Metrics)
			if werr := man.WriteFile(manifest); werr != nil {
				log.Printf("%v", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "manifest -> %s\n", manifest)
		}()
	}
	if progress {
		sc.Progress = os.Stderr
	}

	clock := startWallClock()
	var err error
	if strings.EqualFold(run, "all") {
		err = manet.RunAllExperiments(os.Stdout, sc)
	} else {
		err = manet.RunExperiment(os.Stdout, strings.ToUpper(run), sc)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", clock.elapsed())
	return nil
}
