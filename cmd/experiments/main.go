// Command experiments regenerates the paper's figures and validates
// its numbered claims. Each experiment ID maps to a table or figure
// per DESIGN.md §4; EXPERIMENTS.md records paper-vs-measured outcomes.
//
// Usage:
//
//	experiments -list
//	experiments -run E15
//	experiments -run all -quick
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	manet "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		run   = flag.String("run", "", "experiment ID (E1..E15, A1..A3) or 'all'")
		list  = flag.Bool("list", false, "list experiments")
		quick = flag.Bool("quick", false, "smoke-test scale instead of full scale")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range manet.Experiments() {
			fmt.Printf("  %-4s %-36s %s\n", e.ID, e.Title, e.Paper)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: experiments -run <ID> (or -run all)")
		}
		return
	}

	sc := manet.FullScale()
	if *quick {
		sc = manet.QuickScale()
	}

	clock := startWallClock()
	var err error
	if strings.EqualFold(*run, "all") {
		err = manet.RunAllExperiments(os.Stdout, sc)
	} else {
		err = manet.RunExperiment(os.Stdout, strings.ToUpper(*run), sc)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", clock.elapsed())
}
