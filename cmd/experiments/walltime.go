package main

// Wall-clock timing for the benchmark harness. This file is the only
// place in the binary allowed to touch the time package: simulated
// time flows exclusively through the DES clock, and manetlint's
// forbiddenimport rule keeps it that way. The annotation waives the
// rule for this helper alone.

//lint:ignore forbiddenimport wall-clock benchmarking of the harness itself, never simulated time
import "time"

// wallClock marks the start of a wall-clock measurement.
type wallClock struct{ start time.Time }

// startWallClock begins timing.
func startWallClock() wallClock { return wallClock{start: time.Now()} }

// elapsed reports the wall time since the clock started, rounded to
// milliseconds.
func (w wallClock) elapsed() string {
	return time.Since(w.start).Round(time.Millisecond).String()
}
