// Command manetlint enforces the repository's determinism invariants:
// no map-order-dependent iteration, no stray randomness or wall-clock
// time in simulation code, no exact float comparison, and no unseeded
// or goroutine-shared rng streams. See internal/lint for the rules and
// the //lint:ignore annotation syntax.
//
// Usage:
//
//	manetlint [-json] [packages...]
//
// Packages default to ./... (the whole module). Exit status is 0 when
// the tree is clean, 1 when findings are reported, 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: manetlint [-json] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(root, cwd, patterns, lint.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "manetlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "manetlint:", err)
	os.Exit(2)
}
