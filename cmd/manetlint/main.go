// Command manetlint is the repository's static-analysis multichecker:
// it runs the full internal/lint analyzer suite (see DESIGN.md §10)
// over module packages and fails the build on any finding.
//
// Usage:
//
//	manetlint [-json] [-only rule,rule] [packages]
//
// Patterns default to ./... and support the loader's subset of go
// syntax (import paths, directories, the /... wildcard). Exit status
// is 0 for a clean tree, 1 when findings are reported, 2 for driver
// errors.
//
// The binary also speaks cmd/go's vettool protocol (-V=full, -flags,
// and a single *.cfg argument), so the same suite runs incrementally
// under go's build cache:
//
//	go vet -vettool=$(pwd)/bin/manetlint ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	// The vettool handshake comes before flag parsing: cmd/go probes
	// with -V=full and -flags, then invokes the tool once per package
	// with a single .cfg argument.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			// cmd/go keys its vet fact cache on this line; fingerprint
			// the executable so a rebuilt tool invalidates stale facts.
			fmt.Printf("manetlint version %s (repro static gates)\n", selfFingerprint())
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return analysis.RunUnitchecker(lint.Analyzers(), args[0])
		}
	}

	fs := flag.NewFlagSet("manetlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzer catalog and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: manetlint [-json] [-only rule,rule] [packages...]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	suite := lint.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			unknown := make([]string, 0, len(keep))
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "manetlint: unknown analyzer(s) %s (see -list)\n", strings.Join(unknown, ", "))
			return 2
		}
		suite = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "manetlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "manetlint:", err)
		return 2
	}

	d := &analysis.Driver{Analyzers: suite}
	findings, err := d.Run(root, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "manetlint:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "manetlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "manetlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// selfFingerprint hashes this executable so the vettool version string
// changes whenever the binary does.
func selfFingerprint() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}
