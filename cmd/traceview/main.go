// Command traceview summarizes a JSONL simulation trace produced by
// `lmsim -trace`: hierarchy shape over time, handoff activity, and the
// busiest ticks.
//
// Usage:
//
//	lmsim -n 256 -duration 120 -trace run.jsonl
//	traceview run.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceview: ")
	top := flag.Int("top", 5, "show the N busiest ticks")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: traceview [-top N] <trace.jsonl>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if errors.Is(err, trace.ErrTruncated) {
		// A killed run leaves a partial final line; the parsed prefix
		// is still a valid trace worth summarizing.
		fmt.Fprintf(os.Stderr, "traceview: warning: %v (summarizing the %d-record prefix)\n", err, len(recs))
	} else if err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		log.Fatal("empty trace")
	}

	var (
		levels    stats.Welford
		transfers stats.Welford
		phi, gam  float64
		elections int
		rejects   int
		members   int
	)
	for _, r := range recs {
		levels.Add(float64(r.Levels))
		transfers.Add(float64(r.Transfers))
		phi += float64(r.PhiPackets)
		gam += float64(r.GammaPackets)
		elections += r.Elections
		rejects += r.Rejections
		members += r.Memberships
	}
	span := recs[len(recs)-1].Time - recs[0].Time
	if span <= 0 {
		span = 1
	}
	n := 0
	if len(recs[0].LevelSizes) > 0 {
		n = recs[0].LevelSizes[0]
	}

	fmt.Printf("trace: %d ticks over %.1f sim-seconds, %d nodes\n\n", len(recs), span, n)
	fmt.Printf("hierarchy depth:   mean %.2f (min/max over trace: %s)\n", levels.Mean(), levelRange(recs))
	fmt.Printf("entry transfers:   mean %.1f per tick (max %s)\n", transfers.Mean(), maxTransfers(recs))
	fmt.Printf("handoff packets:   φ %.1f/s, γ %.1f/s (trace-wide)\n", phi/span, gam/span)
	fmt.Printf("clustering events: %.2f elections/s, %.2f rejections/s, %.2f membership changes/s\n\n",
		float64(elections)/span, float64(rejects)/span, float64(members)/span)

	// Busiest ticks by handoff packets.
	idx := make([]int, len(recs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa := recs[idx[a]].PhiPackets + recs[idx[a]].GammaPackets
		pb := recs[idx[b]].PhiPackets + recs[idx[b]].GammaPackets
		return pa > pb
	})
	fmt.Printf("busiest %d ticks:\n", *top)
	for i := 0; i < *top && i < len(idx); i++ {
		r := recs[idx[i]]
		fmt.Printf("  t=%8.1f  φ=%4d γ=%4d pkts  %3d transfers  %2d elections  levels=%v\n",
			r.Time, r.PhiPackets, r.GammaPackets, r.Transfers, r.Elections, r.LevelSizes)
	}
}

func levelRange(recs []trace.TickRecord) string {
	min, max := recs[0].Levels, recs[0].Levels
	for _, r := range recs {
		if r.Levels < min {
			min = r.Levels
		}
		if r.Levels > max {
			max = r.Levels
		}
	}
	return fmt.Sprintf("%d/%d", min, max)
}

func maxTransfers(recs []trace.TickRecord) string {
	best := 0
	at := 0.0
	for _, r := range recs {
		if r.Transfers > best {
			best = r.Transfers
			at = r.Time
		}
	}
	return fmt.Sprintf("%d at t=%.1f", best, at)
}
