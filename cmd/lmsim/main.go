// Command lmsim runs one configured simulation of hierarchical
// location management and prints the measured handoff overhead.
//
// Usage:
//
//	lmsim -n 512 -duration 300 -seed 1
//	lmsim -n 256 -mobility direction -elector sticky -json
//	lmsim -n 128 -trace run.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	manet "repro"
	"repro/internal/cluster"
	"repro/internal/lm"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// chainProgress wraps an Observer (possibly nil) so each decile of
// simulated time is reported once on stderr. It keys off the event's
// simulated clock, not wall time, so it needs no timers and cannot
// perturb the run.
func chainProgress(next func(simnet.ObsEvent), total float64) func(simnet.ObsEvent) {
	lastDecile := -1
	return func(ev simnet.ObsEvent) {
		if total > 0 {
			if d := int(ev.Time / total * 10); d > lastDecile {
				lastDecile = d
				pct := d * 10
				if pct > 100 {
					pct = 100
				}
				fmt.Fprintf(os.Stderr, "lmsim: t=%.0fs/%.0fs (%d%%)\n", ev.Time, total, pct)
			}
		}
		if next != nil {
			next(ev)
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lmsim: ")

	var (
		n        = flag.Int("n", 256, "node count")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		duration = flag.Float64("duration", 300, "measured sim seconds")
		warmup   = flag.Float64("warmup", 60, "warmup seconds (discarded)")
		mu       = flag.Float64("mu", 10, "node speed, m/s")
		rtx      = flag.Float64("rtx", 100, "transmission radius, m")
		degree   = flag.Float64("degree", 9, "target mean node degree")
		scan     = flag.Float64("scan", 0, "link scan interval, s (0 = auto)")
		mob      = flag.String("mobility", "waypoint", "mobility model: waypoint|direction|static|group|gauss-markov|manhattan|hotspot")
		link     = flag.String("link", "unitdisk", "link model: unitdisk|logshadow")
		plExp    = flag.Float64("pathloss-exp", 0, "logshadow path-loss exponent η (0 = default 3)")
		shSigma  = flag.Float64("shadow-sigma", 0, "logshadow shadowing std dev, dB (0 = default 4; negative = none)")
		linkMarg = flag.Float64("link-margin", 0, "logshadow make/break hysteresis margin, dB (0 = default 3; negative = none)")
		engine   = flag.String("engine", "scan", "link engine: scan (per-tick rescan) | kinetic (event-driven)")
		maint    = flag.String("maintainer", "oracle", "hierarchy maintenance: oracle (full rebuild) | incremental (delta-patched)")
		groupSz  = flag.Int("group-size", 16, "RPGM nodes per group (mobility=group)")
		groupRad = flag.Float64("group-radius", 0, "RPGM wander radius, m (0 = 2*rtx)")
		churn    = flag.Float64("churn", 0, "node deaths per node per hour (E18 extension)")
		hopM     = flag.String("hops", "euclid", "hop cost model: euclid|bfs")
		elector  = flag.String("elector", "lca", "clusterhead election: lca|sticky|debounced|stabilized")
		grace    = flag.Float64("grace", 10, "debounced elector grace period, s")
		hash     = flag.String("hash", "rendezvous", "CHLM hash family: rendezvous|successor")
		topArity = flag.Int("toparity", 0, "forced-top cap (0 = default 12, -1 = uncapped)")
		naive    = flag.Bool("naive-naming", false, "key LM on raw head IDs (no identity continuity)")
		states   = flag.Bool("states", false, "track ALCA state statistics")
		classes  = flag.Bool("classes", false, "classify reorg triggers i-vii")
		traceOut = flag.String("trace", "", "write per-tick JSONL trace to file")
		jsonOut  = flag.Bool("json", false, "emit results as JSON")
		manifest = flag.String("manifest", "", "write a run manifest (config, seed, per-phase timings) to this JSON file")
		progress = flag.Bool("progress", false, "report simulated-time progress on stderr")
		invarLvl = flag.String("invariants", "off", "runtime invariant checks: off|sampled|every-tick (violations abort with tick, seed, and state dump)")
	)
	flag.Parse()

	cfg := manet.Config{
		N: *n, Seed: *seed,
		Duration: *duration, Warmup: *warmup,
		Mu: *mu, RTX: *rtx, Degree: *degree, ScanInterval: *scan,
		Mobility: *mob, Link: *link, HopModel: *hopM,
		PathLossExp: *plExp, ShadowSigma: *shSigma, LinkMargin: *linkMarg,
		TrackStates: *states, TrackClasses: *classes,
	}
	cfg.TopArity = *topArity
	cfg.NaiveNaming = *naive
	cfg.GroupSize = *groupSz
	cfg.GroupRadius = *groupRad
	cfg.ChurnRate = *churn / 3600
	cfg.CheckLevel = *invarLvl
	cfg.Engine = *engine
	cfg.Maintainer = *maint
	switch *elector {
	case "lca":
	case "sticky":
		cfg.Elector = cluster.StickyLCA{}
	case "debounced":
		cfg.Elector = &cluster.DebouncedLCA{Grace: *grace, LevelScale: 1.9}
	case "stabilized":
		cfg = manet.Stabilized(cfg)
	default:
		log.Fatalf("unknown elector %q", *elector)
	}
	switch *hash {
	case "rendezvous":
	case "successor":
		cfg.Hash = lm.Successor{IDSpace: *n}
	default:
		log.Fatalf("unknown hash %q", *hash)
	}

	var tracer *trace.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tracer = trace.New(f)
		cfg.Observer = tracer.Observer()
	}

	var man *obs.Manifest
	if *manifest != "" {
		man = obs.NewManifest("lmsim")
		man.Seed = *seed
		man.Config = map[string]any{
			"n": *n, "duration_s": *duration, "warmup_s": *warmup,
			"mu": *mu, "rtx": *rtx, "degree": *degree, "scan": *scan,
			"mobility": *mob, "link": *link, "hops": *hopM, "elector": *elector,
			"hash": *hash, "churn_per_hour": *churn,
			"invariants": *invarLvl, "engine": *engine,
			"maintainer": *maint,
		}
		cfg.Metrics = obs.NewRegistry()
	}
	if *progress {
		cfg.Observer = chainProgress(cfg.Observer, *warmup+*duration)
	}

	r, err := manet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d records -> %s\n", tracer.Records(), *traceOut)
	}
	if man != nil {
		man.Finish(cfg.Metrics)
		if err := man.WriteFile(*manifest); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "manifest -> %s\n", *manifest)
	}

	if *jsonOut {
		out := map[string]any{
			"n":              r.Config.N,
			"seed":           r.Config.Seed,
			"duration_s":     r.Duration,
			"phi_rate":       r.PhiRate,
			"gamma_rate":     r.GammaRate,
			"total_rate":     r.TotalRate(),
			"f0":             r.F0,
			"mean_levels":    r.MeanLevels,
			"giant_fraction": r.GiantFraction,
			"phi_by_level":   r.PhiRateByLevel,
			"gamma_by_level": r.GammaRateByLevel,
			"fmig_by_level":  r.FMigByLevel,
			"nodes_by_level": r.NodesByLevel,
			"edges_by_level": r.EdgesByLevel,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(r.Summary())
	if *states {
		frac, total := r.States.UnitTransitionFraction()
		fmt.Printf("ALCA states: %d transitions, unit fraction %.3f\n", total, frac)
		for _, m := range r.States.Levels() {
			p, obs := r.States.P1(m)
			fmt.Printf("  level-%d nodes: P(state=1)=%.3f mean=%.2f (%d obs)\n",
				m, p, r.States.MeanState(m), obs)
		}
	}
}
