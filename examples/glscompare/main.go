// GLS comparison: run the same mobility trace under CHLM (the paper's
// clustered-hierarchy LM) and under the Grid Location Service (Li et
// al., the design CHLM adapts, §3.1) and compare maintenance traffic.
//
//	go run ./examples/glscompare
package main

import (
	"fmt"
	"log"

	manet "repro"
	"repro/internal/geom"
	"repro/internal/gls"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func main() {
	const n = 256
	cfg := manet.Config{N: n, Seed: 7, Duration: 120, Warmup: 30}

	// GLS shadow: rebuild the grid server table at every scan tick of
	// the same simulation and cost the assignment changes.
	region := cfg.Region()
	grid := gls.NewGrid(region, 100) // level-1 squares ≈ radio range
	var (
		prev     *gls.Table
		glsCost  float64
		glsTicks int
		posCopy  = make([]geom.Vec, n)
		scan     = 1.0
	)
	cfg.Observer = func(ev simnet.ObsEvent) {
		if ev.Time <= cfg.Warmup {
			return
		}
		copy(posCopy, ev.Positions)
		idx := gls.NewIndex(grid, posCopy)
		table := gls.BuildTable(idx, n)
		if prev != nil {
			hop := topology.NewEuclideanHops(posCopy, 100, 1.3)
			_, cost := gls.DiffCount(prev, table, hop.Hops)
			glsCost += float64(cost)
			glsTicks++
		}
		prev = table
	}

	r, err := manet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore floateq zero is the unset-config sentinel
	if r.Config.ScanInterval != 0 {
		scan = r.Config.ScanInterval
	}
	glsRate := glsCost / (float64(n) * float64(glsTicks) * scan)

	fmt.Printf("same %d-node random-waypoint trace, %0.f s measured:\n\n", n, r.Duration)
	fmt.Printf("CHLM handoff (φ+γ):        %8.3f pkts/node/s\n", r.TotalRate())
	fmt.Printf("CHLM incl. registration:   %8.3f pkts/node/s\n", r.TotalRate()+r.RegRate)
	fmt.Printf("GLS server maintenance:    %8.3f pkts/node/s\n", glsRate)
	fmt.Println("\nGLS anchors its hierarchy to a fixed geographic grid, so its top never")
	fmt.Println("reorganizes; CHLM's hierarchy follows the clusters. Compare growth shapes")
	fmt.Println("with experiment E14 across N.")
}
