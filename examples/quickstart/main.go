// Quickstart: run one simulation of hierarchical location management
// and print the measured handoff overhead — the paper's φ (node
// migration) and γ (cluster reorganization) in packet transmissions
// per node per second.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	manet "repro"
)

func main() {
	// 256 nodes, R_TX = 100 m, mean degree 9, random waypoint at
	// 10 m/s — the paper's §1.2 scenario. 120 measured seconds after a
	// 30 s warmup.
	cfg := manet.Config{
		N:        256,
		Seed:     42,
		Duration: 120,
		Warmup:   30,
	}
	r, err := manet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d nodes, %.1f hierarchy levels on average\n",
		cfg.N, r.MeanLevels)
	fmt.Printf("level-0 link churn  f0 = %.3f events/node/s (Eq. 4: Θ(1))\n", r.F0)
	fmt.Printf("migration handoff    φ = %.3f pkts/node/s\n", r.PhiRate)
	fmt.Printf("reorganization       γ = %.3f pkts/node/s\n", r.GammaRate)
	fmt.Printf("total handoff      φ+γ = %.3f pkts/node/s (paper: Θ(log²N))\n", r.TotalRate())
	fmt.Printf("registration ([17])    = %.3f pkts/node/s\n", r.RegRate)

	fmt.Println("\nper level k (φ_k should be roughly level-independent, §4):")
	for k := 1; k < len(r.PhiRateByLevel); k++ {
		fmt.Printf("  k=%d: φ_k=%.4f γ_k=%.4f  |V_k|≈%.0f clusters\n",
			k, r.PhiRateByLevel[k], r.GammaRateByLevel[k], r.NodesByLevel[k])
	}
}
