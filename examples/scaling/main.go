// Scaling: sweep the node count and test the paper's headline claim —
// LM handoff overhead grows polylogarithmically — by fitting the
// measured φ+γ against candidate growth models.
//
//	go run ./examples/scaling            # quick sweep
//	go run ./examples/scaling -full      # the full E15 sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	manet "repro"
)

func main() {
	full := flag.Bool("full", false, "run the full experiment scale")
	flag.Parse()

	sc := manet.QuickScale()
	if *full {
		sc = manet.FullScale()
	}
	fmt.Printf("sweeping N = %v, %d seed(s), %v s per run\n\n", sc.Ns, sc.Seeds, sc.Duration)
	if err := manet.RunExperiment(os.Stdout, "E15", sc); err != nil {
		log.Fatal(err)
	}
}
