// Migration timeline: follow a single node through a mobile simulation
// and narrate its handoff story — every cluster-membership change and
// every LM entry it hands over or receives, with causes (§4 vs §5).
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	manet "repro"
	"repro/internal/lm"
	"repro/internal/simnet"
)

func main() {
	const watch = 17 // the node to follow
	cfg := manet.Config{N: 128, Seed: 3, Duration: 90, Warmup: 10}

	var prevChain []int
	events := 0
	cfg.Observer = func(ev simnet.ObsEvent) {
		chain := ev.Hierarchy.AncestorChain(watch)
		if prevChain != nil && !equal(chain, prevChain) {
			fmt.Printf("t=%6.1fs  node %d cluster chain %v -> %v\n", ev.Time, watch, prevChain, chain)
			events++
		}
		prevChain = append(prevChain[:0], chain...)
		for _, tr := range ev.Transfers {
			if tr.Owner != watch || tr.Packets == 0 {
				continue
			}
			switch tr.Cause {
			case lm.CauseMigration:
				fmt.Printf("t=%6.1fs    φ: level-%d entry handed %d -> %d (%d pkts, node migration)\n",
					ev.Time, tr.Level, tr.From, tr.To, tr.Packets)
			case lm.CauseReorg:
				fmt.Printf("t=%6.1fs    γ: level-%d entry moved %d -> %d (%d pkts, reorganization)\n",
					ev.Time, tr.Level, tr.From, tr.To, tr.Packets)
			case lm.CauseRegistration:
				fmt.Printf("t=%6.1fs    reg: level-%d entry registered at %d (%d pkts)\n",
					ev.Time, tr.Level, tr.To, tr.Packets)
			}
		}
	}

	r, err := manet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode %d changed clusters %d times in %.0f s;", watch, events, r.Duration+cfg.Warmup)
	fmt.Printf(" network-wide handoff averaged %.3f pkts/node/s\n", r.TotalRate())
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
