// Sessions: generate a communication workload over a static snapshot
// and verify the paper's §6 argument — a location query costs the same
// order as the route to the destination and happens once per session,
// so query overhead is absorbed into session traffic.
//
//	go run ./examples/sessions
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/lm"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	const n = 300
	cfg := simnet.Config{N: n, Seed: 11}
	region := cfg.Region()
	src := rng.NewRoot(11).Stream("placement")
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = region.Sample(src)
	}
	g := topology.BuildUnitDiskBrute(pos, 100)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	giant := topology.GiantComponent(g, all)
	tr := cluster.NewIdentityTracker()
	h, ids := cluster.BuildWithIdentities(g, giant, cluster.Config{ForceTopAt: 12}, nil, nil, tr, 0)
	if err := h.Validate(); err != nil {
		log.Fatal(err)
	}

	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	gen, err := workload.NewGenerator(workload.Config{Rate: 0.05, PacketsPerSession: 20},
		rng.NewRoot(11).Stream("workload"))
	if err != nil {
		log.Fatal(err)
	}

	var st workload.Stats
	for tick := 0; tick < 120; tick++ {
		gen.Tick(1.0, h, ids, sel, hop, &st)
	}

	fmt.Printf("%d sessions over a %d-node network (%d failed: partitioned pairs)\n\n",
		st.Sessions, n, st.Failed)
	fmt.Printf("mean query cost:        %6.1f pkts (±%.1f)\n", st.QueryPkts.Mean(), st.QueryPkts.CI95())
	fmt.Printf("mean session traffic:   %6.1f pkts\n", st.RoutePkts.Mean())
	fmt.Printf("query / session ratio:  %6.3f   <- the paper's absorption argument\n", st.QueryToRoute.Mean())
	fmt.Printf("mean path stretch:      %6.3f   (hierarchical vs shortest)\n", st.Stretch.Mean())
}
