// Routing demo: build a static clustered hierarchy, print hierarchical
// addresses (Fig. 1 style), route a packet with strict hierarchical
// forwarding, resolve a location query through the CHLM servers, and
// compare routing state against a flat protocol (§2.1).
//
//	go run ./examples/routingdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/lm"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/topology"
)

func main() {
	const n = 120
	cfg := simnet.Config{N: n, Seed: 9}
	region := cfg.Region()
	src := rng.NewRoot(9).Stream("placement")
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = region.Sample(src)
	}
	g := topology.BuildUnitDiskBrute(pos, 100)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	giant := topology.GiantComponent(g, all)
	tr := cluster.NewIdentityTracker()
	h, ids := cluster.BuildWithIdentities(g, giant, cluster.Config{}, nil, nil, tr, 0)
	if err := h.Validate(); err != nil {
		log.Fatal(err)
	}

	s, d := giant[0], giant[len(giant)-1]
	fmt.Printf("%d nodes (giant %d), %d hierarchy levels\n\n", n, len(giant), h.L())
	fmt.Printf("source      %d -> address %s\n", s, addr.Of(h, s))
	fmt.Printf("destination %d -> address %s\n", d, addr.Of(h, d))
	fmt.Printf("lowest shared cluster: level %d\n\n", addr.CommonLevel(addr.Of(h, s), addr.Of(h, d)))

	// Location query: find d's whereabouts through the CHLM servers.
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	q := lm.Query(sel, h, ids, hop, s, d)
	fmt.Printf("location query s->d: resolved at level %d by server %d, %d packets\n",
		q.Level, q.Server, q.Packets)

	// Forward a packet along the strict hierarchical route.
	router := routing.NewRouter(h)
	path := router.HierPath(s, d)
	if path == nil {
		log.Fatal("no hierarchical route")
	}
	if err := router.ValidatePath(path, s, d); err != nil {
		log.Fatal(err)
	}
	flat := router.FlatPathLen(s, d)
	fmt.Printf("hierarchical route: %d hops (shortest %d, stretch %.2f)\n",
		len(path)-1, flat, float64(len(path)-1)/float64(flat))
	fmt.Printf("route: %v\n\n", path)

	fmt.Printf("routing state per node: flat %d entries, hierarchical %.1f entries\n",
		routing.FlatTableSize(len(giant)), routing.MeanHierTableSize(h))
}
