# Verification entry points. `make check test race` is what CI runs.

.PHONY: all build check test race multicore lint bench bench-json fuzz manet-fuzz

all: build check test

build:
	go build ./...

# Static gate: gofmt, go vet, and the determinism linter (manetlint).
check:
	sh scripts/check.sh

# manetlint alone (also part of `go test ./...` via lint_test.go).
lint:
	go run ./cmd/manetlint ./...

test:
	go test ./...

race:
	go test -race ./...

# Multi-core determinism gate: the serial-vs-parallel equivalence suite
# and a one-iteration smoke of the /par tick benchmarks, GOMAXPROCS
# pinned so the worker pool actually fans out.
multicore:
	GOMAXPROCS=4 go test -run TestParallelMatchesSerial -count=1 ./internal/simnet
	GOMAXPROCS=4 go test -run '^$$' -bench 'BenchmarkTick(GraphRebuild|LMUpdate)/par' -benchtime=1x -cpu=4 .

# Property-based scenario fuzzing: random configs run with every-tick
# invariant checks and a serial-vs-parallel differential; failures are
# shrunk to a minimal (config, seed, tick) repro. Override the budget
# with FUZZTIME=10m; set MANET_FUZZ_FAILURES=<dir> to persist shrunk
# repros as corpus files.
FUZZTIME ?= 30s
fuzz manet-fuzz:
	go test ./internal/invariant/prop -run FuzzScenario -fuzz FuzzScenario -fuzztime $(FUZZTIME)

# Steady-state tick benchmarks, fresh vs reuse variants.
bench:
	go test -run '^$$' -bench 'BenchmarkTick' -benchmem -benchtime=20x .

# Same benchmarks recorded to BENCH_<date>.json for review in diffs.
bench-json:
	sh scripts/bench.sh
