package sim

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	src := rng.New(1)
	var fired []float64
	for i := 0; i < 500; i++ {
		tm := src.Range(0, 100)
		e.ScheduleAt(tm, "x", func(en *Engine) {
			fired = append(fired, en.Now())
		})
	}
	e.Run()
	if len(fired) != 500 {
		t.Fatalf("fired %d events", len(fired))
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("events fired out of time order")
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAt(5, "same", func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(3, "a", func(en *Engine) {
		if en.Now() != 3 {
			t.Fatalf("Now = %v inside event at 3", en.Now())
		}
		en.ScheduleAfter(2, "b", func(en2 *Engine) {
			if en2.Now() != 5 {
				t.Fatalf("Now = %v, want 5", en2.Now())
			}
		})
	})
	e.Run()
	if e.Now() != 5 {
		t.Fatalf("final Now = %v", e.Now())
	}
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(10, "a", func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Fatal("scheduling in the past did not panic")
			}
		}()
		en.ScheduleAt(5, "past", func(*Engine) {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.ScheduleAt(1, "victim", func(*Engine) { fired = true })
	if !ev.Pending() {
		t.Fatal("event not pending after schedule")
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if ev.Pending() {
		t.Fatal("event still pending after cancel")
	}
	if e.Cancel(ev) {
		t.Fatal("double cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []string
	e.ScheduleAt(1, "a", func(*Engine) { fired = append(fired, "a") })
	b := e.ScheduleAt(2, "b", func(*Engine) { fired = append(fired, "b") })
	e.ScheduleAt(3, "c", func(*Engine) { fired = append(fired, "c") })
	e.Cancel(b)
	e.Run()
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "c" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, tm := range []float64{1, 5, 9, 11, 20} {
		tm := tm
		e.ScheduleAt(tm, "x", func(en *Engine) { fired = append(fired, tm) })
	}
	e.RunUntil(10)
	if len(fired) != 3 {
		t.Fatalf("fired %v before horizon 10", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v after RunUntil(10)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	// Continue past horizon.
	e.RunUntil(25)
	if len(fired) != 5 {
		t.Fatalf("fired %v after horizon 25", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.ScheduleAt(float64(i), "x", func(en *Engine) {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d after Stop", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	stop := e.Ticker(0, 2, "tick", func(en *Engine) {
		ticks = append(ticks, en.Now())
	})
	e.RunUntil(9)
	stop()
	e.RunUntil(20)
	want := []float64{0, 2, 4, 6, 8}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopMidRun(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Ticker(1, 1, "tick", func(en *Engine) {
		count++
		if count == 4 {
			stop()
		}
	})
	e.RunUntil(100)
	if count != 4 {
		t.Fatalf("count = %d", count)
	}
}

func TestHeavyChurnDeterminism(t *testing.T) {
	run := func(seed uint64) []float64 {
		e := NewEngine()
		src := rng.New(seed)
		var log []float64
		var spawn func(*Engine)
		spawn = func(en *Engine) {
			log = append(log, en.Now())
			if en.Fired() < 2000 {
				en.ScheduleAfter(src.Exp(1.0), "spawn", spawn)
				if src.Float64() < 0.3 {
					ev := en.ScheduleAfter(src.Exp(2.0), "victim", func(en2 *Engine) {
						log = append(log, -en2.Now())
					})
					if src.Float64() < 0.5 {
						en.Cancel(ev)
					}
				}
			}
		}
		e.ScheduleAt(0, "seed", spawn)
		e.Run()
		return log
	}
	a := run(7)
	b := run(7)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	src := rng.New(1)
	// Keep a rolling queue of ~1000 events.
	for i := 0; i < 1000; i++ {
		e.ScheduleAt(src.Range(0, 1000), "x", func(*Engine) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleAt(e.Now()+src.Range(0, 10), "x", func(*Engine) {})
		e.Step()
	}
}
