// Package sim implements the discrete-event simulation engine: a
// monotonic virtual clock and a binary-heap event scheduler with
// cancellable, deterministically ordered events.
//
// Events scheduled for the same instant fire in scheduling order
// (FIFO), which together with the deterministic RNG streams makes every
// simulation byte-for-byte reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is an event callback. It receives the engine so it can
// schedule follow-up events.
type Handler func(e *Engine)

// Event is a scheduled callback. The zero Event is invalid; obtain
// events via Engine.Schedule*.
type Event struct {
	time    float64
	seq     uint64
	index   int // heap index, -1 once fired or cancelled
	handler Handler
	name    string
}

// Time reports the virtual time at which the event fires.
func (ev *Event) Time() float64 { return ev.time }

// Name reports the diagnostic label given at scheduling.
func (ev *Event) Name() string { return ev.name }

// Pending reports whether the event is still queued.
func (ev *Event) Pending() bool { return ev.index >= 0 }

// eventHeap orders by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floateq exact time ties fall through to the deterministic seq tiebreak
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event simulator core. Not safe for concurrent
// use; one engine per simulation goroutine.
type Engine struct {
	now     float64
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired reports how many events have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// NextTime reports the firing time of the earliest pending event, and
// false when the queue is empty.
func (e *Engine) NextTime() (float64, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].time, true
}

// AdvanceTo moves the clock forward to t without firing anything — the
// step-driven equivalent of RunUntil's final clock advance. Advancing
// past a pending event panics (it would silently skip it); t at or
// before the current clock is a no-op.
func (e *Engine) AdvanceTo(t float64) {
	if next, ok := e.NextTime(); ok && next < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip event pending at %v", t, next))
	}
	if t > e.now {
		e.now = t
	}
}

// ScheduleAt queues h to run at absolute time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) ScheduleAt(t float64, name string, h Handler) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: event %q scheduled at non-finite time %v", name, t))
	}
	ev := &Event{time: t, seq: e.seq, handler: h, name: name}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAfter queues h to run delay seconds from now.
func (e *Engine) ScheduleAfter(delay float64, name string, h Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled with negative delay %v", name, delay))
	}
	return e.ScheduleAt(e.now+delay, name, h)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.handler = nil
	return true
}

// Stop makes the current Run return after the executing event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.time
	h := ev.handler
	ev.handler = nil
	e.fired++
	h(e)
	return true
}

// RunUntil executes events in order until the clock would pass horizon,
// the queue empties, or Stop is called. The clock is left at
// min(horizon, last event time); events scheduled beyond the horizon
// stay queued.
func (e *Engine) RunUntil(horizon float64) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		next := e.queue[0]
		if next.time > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Run executes until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Ticker schedules h every interval seconds starting at start, until
// cancelled via the returned stop function. The handler observes the
// engine clock at each tick.
func (e *Engine) Ticker(start, interval float64, name string, h Handler) (stop func()) {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	cancelled := false
	var schedule func(t float64)
	schedule = func(t float64) {
		e.ScheduleAt(t, name, func(en *Engine) {
			if cancelled {
				return
			}
			h(en)
			if !cancelled {
				schedule(en.Now() + interval)
			}
		})
	}
	schedule(start)
	return func() { cancelled = true }
}
