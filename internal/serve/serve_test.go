package serve_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// marshalSim executes one plain simulation and serializes everything
// except Config, plus the per-tick trace stream.
func marshalSim(t *testing.T, cfg simnet.Config) (resultsJSON, traceOut []byte) {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf)
	cfg.Observer = tr.Observer()
	r, err := simnet.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	return marshalResults(t, r), buf.Bytes()
}

func marshalResults(t *testing.T, r *simnet.Results) []byte {
	t.Helper()
	data, err := json.Marshal(struct {
		*simnet.Results
		Config struct{}
	}{Results: r})
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return data
}

// TestServeDoesNotPerturbSim is the tentpole's determinism contract:
// the embedded simulation's Results and trace must be byte-identical
// with serving enabled vs disabled, serial and parallel.
func TestServeDoesNotPerturbSim(t *testing.T) {
	cases := []struct {
		name string
		cfg  simnet.Config
	}{
		{"serial", simnet.Config{N: 48, Seed: 7, Duration: 10, Warmup: 2}},
		{"parallel", simnet.Config{
			N: 48, Seed: 5, Duration: 10, Warmup: 2, IntraTickParallelism: 3,
		}},
		{"kinetic-incremental", simnet.Config{
			N: 48, Seed: 9, Duration: 10, Warmup: 2,
			Engine: simnet.EngineKinetic, Maintainer: simnet.MaintainerIncremental,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRes, wantTrace := marshalSim(t, tc.cfg)

			cfg := tc.cfg
			var buf bytes.Buffer
			tr := trace.New(&buf)
			cfg.Observer = tr.Observer()
			reg := obs.NewRegistry()
			res, err := serve.Run(serve.Config{
				Sim: cfg, Rate: 5000, Pace: 0.002, Seed: 42, Metrics: reg,
			})
			if err != nil {
				t.Fatalf("serve.Run: %v", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("trace close: %v", err)
			}
			if !bytes.Equal(marshalResults(t, res.Sim), wantRes) {
				t.Error("simulation Results diverge with serving enabled")
			}
			if !bytes.Equal(buf.Bytes(), wantTrace) {
				t.Error("simulation trace diverges with serving enabled")
			}
			if res.Requests == 0 {
				t.Error("no requests generated")
			}
			if res.Queries+res.Updates == 0 {
				t.Error("no requests served")
			}
			snap := reg.Snapshot()
			if snap.Counters[serve.MetricRequests] != res.Requests {
				t.Errorf("registry requests = %d, results say %d",
					snap.Counters[serve.MetricRequests], res.Requests)
			}
		})
	}
}

// TestServeBackpressure pins the bounded-queue contract: a rate far
// beyond what one tiny queue drains must shed rather than block or
// grow without bound.
func TestServeBackpressure(t *testing.T) {
	res, err := serve.Run(serve.Config{
		Sim:           simnet.Config{N: 32, Seed: 3, Duration: 3, Warmup: -1},
		Rate:          2e6,
		Shards:        1,
		QueueDepth:    8,
		Batch:         4,
		Pace:          0.02,
		UnavailWindow: -1,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("rate 2e6 into a depth-8 queue shed nothing (requests=%d)", res.Requests)
	}
	if res.Queries+res.Updates == 0 {
		t.Fatal("backpressure shed everything; queue never drained")
	}
}

// TestServeUnavailability pins handoff-window accounting: a mobile run
// with transfers must open windows and accumulate unavailability time.
func TestServeUnavailability(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := serve.Run(serve.Config{
		Sim:           simnet.Config{N: 64, Seed: 11, Duration: 20, Warmup: -1, Mu: 25},
		Rate:          20000,
		Pace:          0.002,
		UnavailWindow: 0.05,
		Seed:          5,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnavailWindows == 0 {
		t.Fatal("20 mobile ticks opened no handoff windows")
	}
	if res.UnavailSeconds <= 0 {
		t.Fatal("windows opened but no unavailability time accumulated")
	}
	if res.Sim.PhiRate+res.Sim.GammaRate <= 0 {
		t.Fatal("simulation recorded no handoff work; test premise broken")
	}
	snap := reg.Snapshot()
	if snap.Counters[serve.MetricWindows] != res.UnavailWindows {
		t.Errorf("registry windows = %d, results say %d",
			snap.Counters[serve.MetricWindows], res.UnavailWindows)
	}
}

// TestServeLatencyHistograms pins that served queries record latency.
func TestServeLatencyHistograms(t *testing.T) {
	res, err := serve.Run(serve.Config{
		Sim:  simnet.Config{N: 48, Seed: 7, Duration: 8, Warmup: -1},
		Rate: 10000, Pace: 0.002, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryLatency.Count == 0 {
		t.Fatal("no query latencies recorded")
	}
	q := res.QueryLatency
	if q.P50Seconds <= 0 || q.P99Seconds < q.P50Seconds || q.MaxSeconds < q.P99Seconds*0.8 {
		t.Fatalf("implausible latency stats: %+v", q)
	}
	if res.QPS <= 0 {
		t.Fatalf("qps = %v", res.QPS)
	}
}

func TestServeConfigValidate(t *testing.T) {
	sim := simnet.Config{N: 32, Seed: 1, Duration: 2, Warmup: -1}
	cases := []serve.Config{
		{Sim: sim, Rate: -5},
		{Sim: sim, QueryFraction: 2},
		{Sim: sim, Diurnal: 1.5},
		{Sim: sim, Shards: -1},
		{Sim: sim, QueueDepth: -1},
		{Sim: sim, Batch: -1},
		{Sim: simnet.Config{N: 1}},
	}
	for i, cfg := range cases {
		if _, err := serve.New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}
