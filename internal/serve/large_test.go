package serve_test

import (
	"testing"

	"repro/internal/serve"
	"repro/internal/simnet"
)

// TestServeLargeN is the scale acceptance check: lmserve sustains a
// configurable request rate against an N >= 10^4 live hierarchy and
// reports qps and latency quantiles.
func TestServeLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N serving run")
	}
	res, err := serve.Run(serve.Config{
		Sim:  simnet.Config{N: 10000, Seed: 2, Duration: 4, Warmup: -1},
		Rate: 20000, Pace: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.QPS <= 0 {
		t.Fatalf("queries = %d, qps = %v", res.Queries, res.QPS)
	}
	if res.QueryLatency.P99Seconds <= 0 {
		t.Fatalf("no p99: %+v", res.QueryLatency)
	}
	t.Logf("N=10000: %d requests, qps %.0f, p50 %.3gs p99 %.3gs, %d windows",
		res.Requests, res.QPS, res.QueryLatency.P50Seconds,
		res.QueryLatency.P99Seconds, res.UnavailWindows)
}
