// Package serve is the online location-service runtime: it embeds the
// simulation engine stack (mobility, link maintenance, hierarchy
// upkeep, CHLM tables) as a background event stream via
// simnet.Stepper, and serves location-query / location-update requests
// from a concurrent synthetic client population against the live
// snapshot — the offline→online shift the paper's §6 absorption
// argument implies but the batch runner cannot measure.
//
// Concurrency model: the engine goroutine advances simulation ticks
// under the write half of an RWMutex; shard workers and the request
// generator take the read half, so snapshot reads never overlap a
// tick. Requests flow through per-shard bounded queues with batched
// draining; a full queue sheds the request (counted, never blocked),
// which is the runtime's backpressure. All randomness on the serving
// side comes from its own rng streams, and the serving side never
// writes simulation state, so Results and traces are byte-identical
// with serving on or off (TestServeDoesNotPerturbSim).
//
// Unavailability: when a tick hands an owner's location entry to a new
// server (lm.Transfer), that owner's row is mid-handoff for a
// wall-clock window (Config.UnavailWindow). Queries arriving inside
// the window misroute: the worker counts the misroute, parks briefly
// (the client's retry backoff), and requeues the request, so
// handoff-induced unavailability surfaces as retries and tail latency
// rather than silent staleness.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	//lint:ignore forbiddenimport serving measures wall-clock request latency; simulated time still flows only through the DES clock
	"time"

	"repro/internal/lm"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Metric names the runtime records into Config.Metrics.
const (
	MetricRequests   = "serve.requests"
	MetricQueries    = "serve.queries"
	MetricUpdates    = "serve.updates"
	MetricShed       = "serve.shed"
	MetricMisroutes  = "serve.misroutes"
	MetricRetries    = "serve.retries"
	MetricForced     = "serve.forced" // retry budget exhausted; served mid-handoff
	MetricBatches    = "serve.batches"
	MetricQueryPkts  = "serve.query_packets"
	MetricUpdatePkts = "serve.update_packets"
	MetricWindows    = "serve.unavail_windows"
	MetricUnavailNS  = "serve.unavail_ns"
	MetricTicks      = "serve.ticks"
	MetricQPS        = "serve.qps"           // gauge
	MetricQueryLat   = "serve.query_latency" // histogram
	MetricUpdateLat  = "serve.update_latency"
)

// maxRetries bounds how often one query is requeued across handoff
// windows before it is served from the mid-handoff row anyway.
const maxRetries = 8

// Config parameterizes the runtime. Zero-valued fields take the
// documented defaults; negative values on fields that must be positive
// are rejected.
type Config struct {
	// Sim is the embedded simulation. Serving reads its live snapshot
	// but never perturbs it.
	Sim simnet.Config

	// Rate is the total request arrival rate per wall-clock second.
	// Default 1000.
	Rate float64
	// QueryFraction splits requests into location queries vs
	// location updates. Default 0.8; negative means exactly 0
	// (all updates).
	QueryFraction float64
	// Diurnal modulates the arrival rate sinusoidally with the given
	// depth in [0, 1]; 0 (default) is a flat Poisson process.
	Diurnal float64
	// DiurnalPeriod is the modulation period in wall seconds.
	// Default 60.
	DiurnalPeriod float64

	// Shards is the number of request queues/workers. Default 4.
	Shards int
	// QueueDepth bounds each shard queue; a full queue sheds.
	// Default 1024.
	QueueDepth int
	// Batch bounds how many queued requests one worker drains per
	// lock acquisition. Default 64.
	Batch int

	// Pace is the wall-clock delay between simulation ticks, in
	// seconds — how much serving time each tick's snapshot gets.
	// Default 0.005; negative means no pacing (ticks run back to
	// back).
	Pace float64
	// UnavailWindow is the wall-clock span an owner's row stays
	// mid-handoff after a transfer, in seconds. Default 0.002;
	// negative disables unavailability windows.
	UnavailWindow float64

	// Seed feeds the serving-side rng streams (request arrivals and
	// pair picks). Independent of Sim.Seed.
	Seed uint64

	// Metrics receives the runtime's counters, gauges, and latency
	// histograms. nil records into a private registry (Results is
	// always populated) that is simply not exported anywhere.
	Metrics *obs.Registry
}

// fdef mirrors simnet's float-field convention: 0 selects def,
// negative selects exactly 0.
func fdef(v, def float64) float64 {
	//lint:ignore floateq zero is the documented unset-field sentinel
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

func (c Config) withDefaults() Config {
	c.Rate = fdef(c.Rate, 1000)
	c.QueryFraction = fdef(c.QueryFraction, 0.8)
	c.DiurnalPeriod = fdef(c.DiurnalPeriod, 60)
	c.Pace = fdef(c.Pace, 0.005)
	c.UnavailWindow = fdef(c.UnavailWindow, 0.002)
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	return c
}

func (c Config) validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("serve: Rate must be positive (got %v)", c.Rate)
	}
	if c.QueryFraction > 1 {
		return fmt.Errorf("serve: QueryFraction must be <= 1 (got %v)", c.QueryFraction)
	}
	if c.Diurnal < 0 || c.Diurnal > 1 {
		return fmt.Errorf("serve: Diurnal must be in [0, 1] (got %v)", c.Diurnal)
	}
	if c.Shards < 1 {
		return fmt.Errorf("serve: Shards must be >= 1 (got %d)", c.Shards)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("serve: QueueDepth must be >= 1 (got %d)", c.QueueDepth)
	}
	if c.Batch < 1 {
		return fmt.Errorf("serve: Batch must be >= 1 (got %d)", c.Batch)
	}
	return nil
}

// request is one synthetic client request. t0 is the wall enqueue
// time; latency is measured end to end, so queue wait and retry
// backoff count.
type request struct {
	q, d    int // querier and destination node
	query   bool
	retries int
	t0      int64 // unix ns
}

// Results summarizes one serving run.
type Results struct {
	Sim         *simnet.Results `json:"sim"`
	WallSeconds float64         `json:"wall_seconds"`
	Ticks       int64           `json:"ticks"`

	Requests  int64   `json:"requests"`
	Queries   int64   `json:"queries"`
	Updates   int64   `json:"updates"`
	Shed      int64   `json:"shed"`
	Misroutes int64   `json:"misroutes"`
	Retries   int64   `json:"retries"`
	QPS       float64 `json:"qps"`

	QueryLatency  obs.HistStat `json:"query_latency"`
	UpdateLatency obs.HistStat `json:"update_latency"`

	UnavailWindows int64   `json:"unavail_windows"`
	UnavailSeconds float64 `json:"unavail_seconds"`
}

// Server is the runtime. Build with New, run with Serve.
type Server struct {
	cfg    Config
	simCfg simnet.Config // defaulted copy, for RTX/Detour
	st     *simnet.Stepper
	sel    *lm.Selector

	// rw serializes simulation ticks (write half, engine goroutine)
	// against snapshot readers (read half, generator and workers).
	rw      sync.RWMutex
	shards  []chan request
	unavail []atomic.Int64 // per-owner mid-handoff deadline, unix ns
	stopGen chan struct{}
	wg      sync.WaitGroup // shard workers
	genWG   sync.WaitGroup

	windowNS int64

	mRequests, mQueries, mUpdates *obs.Counter
	mShed, mMisroutes, mRetries   *obs.Counter
	mForced, mBatches, mTicks     *obs.Counter
	mWindows, mUnavailNS          *obs.Counter
	mQueryPkts, mUpdatePkts       *obs.Counter
	gQPS                          *obs.Gauge
	hQuery, hUpdate               *obs.Histogram
}

// New validates cfg and builds the runtime, including the embedded
// simulation's initial snapshot.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, windowNS: int64(cfg.UnavailWindow * 1e9)}

	// Chain the unavailability observer in front of any user observer:
	// each tick's transfers open (or extend) their owners' windows.
	simCfg := cfg.Sim
	userObs := simCfg.Observer
	simCfg.Observer = func(ev simnet.ObsEvent) {
		if userObs != nil {
			userObs(ev)
		}
		if s.windowNS <= 0 {
			return
		}
		now := time.Now().UnixNano()
		for i := range ev.Transfers {
			s.markUnavailable(ev.Transfers[i].Owner, now)
		}
	}
	st, err := simnet.NewStepper(simCfg)
	if err != nil {
		return nil, err
	}
	s.st = st
	s.simCfg = st.Config()
	s.sel = st.Selector()
	s.unavail = make([]atomic.Int64, len(st.Positions()))
	s.shards = make([]chan request, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = make(chan request, cfg.QueueDepth)
	}
	s.stopGen = make(chan struct{})

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.mRequests = reg.Counter(MetricRequests)
	s.mQueries = reg.Counter(MetricQueries)
	s.mUpdates = reg.Counter(MetricUpdates)
	s.mShed = reg.Counter(MetricShed)
	s.mMisroutes = reg.Counter(MetricMisroutes)
	s.mRetries = reg.Counter(MetricRetries)
	s.mForced = reg.Counter(MetricForced)
	s.mBatches = reg.Counter(MetricBatches)
	s.mTicks = reg.Counter(MetricTicks)
	s.mWindows = reg.Counter(MetricWindows)
	s.mUnavailNS = reg.Counter(MetricUnavailNS)
	s.mQueryPkts = reg.Counter(MetricQueryPkts)
	s.mUpdatePkts = reg.Counter(MetricUpdatePkts)
	s.gQPS = reg.Gauge(MetricQPS)
	s.hQuery = reg.Hist(MetricQueryLat)
	s.hUpdate = reg.Hist(MetricUpdateLat)
	return s, nil
}

// markUnavailable opens (or extends) owner's mid-handoff window.
// Called only from the engine goroutine; workers read the deadline
// atomically.
func (s *Server) markUnavailable(owner int, now int64) {
	if owner < 0 || owner >= len(s.unavail) {
		return
	}
	end := now + s.windowNS
	old := s.unavail[owner].Swap(end)
	if old <= now {
		s.mWindows.Inc()
		s.mUnavailNS.Add(s.windowNS)
	} else if end > old {
		s.mUnavailNS.Add(end - old)
	}
}

// Serve runs the simulation to its horizon while serving requests, and
// returns the combined results. It blocks until the run completes.
func (s *Server) Serve() (*Results, error) {
	start := time.Now()
	for i := range s.shards {
		s.wg.Add(1)
		go s.worker(s.shards[i])
	}
	s.genWG.Add(1)
	go s.generate(start)

	// Engine loop: ticks advance under the write lock; Pace wall
	// seconds of serving time between ticks.
	pace := time.Duration(s.cfg.Pace * float64(time.Second))
	ticks := int64(0)
	for {
		s.rw.Lock()
		ok := s.st.Step()
		s.rw.Unlock()
		if !ok {
			break
		}
		ticks++
		s.mTicks.Inc()
		if pace > 0 {
			time.Sleep(pace)
		}
	}

	close(s.stopGen)
	s.genWG.Wait()
	for i := range s.shards {
		close(s.shards[i])
	}
	s.wg.Wait()

	simRes, err := s.st.Results()
	if err != nil {
		return nil, err
	}
	s.st.Close()

	wall := time.Since(start).Seconds()
	served := s.mQueries.Value() + s.mUpdates.Value()
	qps := 0.0
	if wall > 0 {
		qps = float64(served) / wall
	}
	s.gQPS.Set(qps)

	res := &Results{
		Sim:            simRes,
		WallSeconds:    wall,
		Ticks:          ticks,
		Requests:       s.mRequests.Value(),
		Queries:        s.mQueries.Value(),
		Updates:        s.mUpdates.Value(),
		Shed:           s.mShed.Value(),
		Misroutes:      s.mMisroutes.Value(),
		Retries:        s.mRetries.Value(),
		QPS:            qps,
		QueryLatency:   s.hQuery.Stat(),
		UpdateLatency:  s.hUpdate.Stat(),
		UnavailWindows: s.mWindows.Value(),
		UnavailSeconds: float64(s.mUnavailNS.Value()) / 1e9,
	}
	return res, nil
}

// Run is New + Serve.
func Run(cfg Config) (*Results, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Serve()
}

// generate is the open-loop client population: Poisson bursts at a
// fixed cadence, dispatched to shard queues by destination. Runs until
// the engine loop closes stopGen.
func (s *Server) generate(start time.Time) {
	defer s.genWG.Done()
	const interval = 2 * time.Millisecond
	arr := workload.Arrivals{Rate: s.cfg.Rate, Diurnal: s.cfg.Diurnal, Period: s.cfg.DiurnalPeriod}
	src := rng.NewRoot(s.cfg.Seed).Stream("serve-arrivals")
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopGen:
			return
		case <-tick.C:
		}
		t := time.Since(start).Seconds()
		n := arr.Count(src, t, interval.Seconds())
		if n == 0 {
			continue
		}
		s.rw.RLock()
		nodes := s.st.Hierarchy().LevelNodes(0)
		if len(nodes) < 2 {
			s.rw.RUnlock()
			continue
		}
		now := time.Now().UnixNano()
		for i := 0; i < n; i++ {
			q := nodes[src.Intn(len(nodes))]
			d := nodes[src.Intn(len(nodes))]
			for d == q {
				d = nodes[src.Intn(len(nodes))]
			}
			req := request{q: q, d: d, query: src.Float64() < s.cfg.QueryFraction, t0: now}
			s.mRequests.Inc()
			s.dispatch(req)
		}
		s.rw.RUnlock()
	}
}

// dispatch routes a request to its destination's shard, shedding when
// the queue is full — bounded queues are the backpressure.
func (s *Server) dispatch(r request) {
	ch := s.shards[r.d%len(s.shards)]
	select {
	case ch <- r:
	default:
		s.mShed.Inc()
	}
}

// worker drains one shard queue in batches, resolving each request
// against the live snapshot under the read lock.
func (s *Server) worker(ch chan request) {
	defer s.wg.Done()
	hop := topology.NewEuclideanHops(s.st.Positions(), s.simCfg.RTX, s.simCfg.Detour)
	var scr lm.QueryScratch
	batch := make([]request, 0, s.cfg.Batch)
	retry := make([]request, 0, maxRetries)
	for {
		first, ok := <-ch
		if !ok {
			return
		}
		batch = append(batch[:0], first)
	drain:
		for len(batch) < s.cfg.Batch {
			select {
			case r, more := <-ch:
				if !more {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.mBatches.Inc()
		// Process the batch; requests that misroute into a handoff
		// window stay worker-local: park until the earliest window
		// expires (the client's retry backoff), then reprocess.
		work := batch
		for {
			retry = retry[:0]
			var parkUntil int64

			s.rw.RLock()
			h, ids, tbl := s.st.Hierarchy(), s.st.Identities(), s.st.Table()
			for _, r := range work {
				now := time.Now().UnixNano()
				if r.query {
					if dl := s.unavail[r.d].Load(); dl > now {
						// Mid-handoff: the query misroutes.
						s.mMisroutes.Inc()
						if r.retries < maxRetries {
							r.retries++
							s.mRetries.Inc()
							retry = append(retry, r)
							if parkUntil == 0 || dl < parkUntil {
								parkUntil = dl
							}
							continue
						}
						s.mForced.Inc()
					}
					res := lm.QueryWith(s.sel, h, ids, hop, r.q, r.d, &scr)
					s.mQueryPkts.Add(int64(res.Packets))
					s.mQueries.Inc()
					s.hQuery.Observe(float64(time.Now().UnixNano()-r.t0) / 1e9)
					continue
				}
				// Location update: the owner refreshes its entry with
				// each of its current per-level servers.
				pkts := 0
				for k := tbl.Levels(r.d); k >= 1; k-- {
					if sv := tbl.Server(r.d, k); sv >= 0 {
						pkts += hop.Hops(r.d, sv)
					}
				}
				s.mUpdatePkts.Add(int64(pkts))
				s.mUpdates.Inc()
				s.hUpdate.Observe(float64(time.Now().UnixNano()-r.t0) / 1e9)
			}
			s.rw.RUnlock()

			if len(retry) == 0 {
				break
			}
			if wait := parkUntil - time.Now().UnixNano(); wait > 0 {
				if maxWait := int64(5 * time.Millisecond); wait > maxWait {
					wait = maxWait
				}
				time.Sleep(time.Duration(wait))
			}
			work, retry = retry, work
		}
		batch, retry = work[:0], retry[:0]
	}
}
