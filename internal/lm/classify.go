package lm

import (
	"repro/internal/cluster"
)

// Classification of cluster-reorganization triggers into the paper's
// seven event classes (§5.2). The classes are defined per level k with
// respect to level-k clusters:
//
//	I   — a new level-k link forms between clusters (cluster migration)
//	II  — a level-k link breaks between clusters (cluster migration)
//	III — a cluster gains level-k status because a migrating
//	      level-(k-1) cluster elected it
//	IV  — a cluster loses level-k status because a migrating
//	      level-(k-1) cluster stopped electing it
//	V   — recursive election: the elector itself was just elected
//	VI  — recursive rejection: the elector itself was just rejected
//	VII — a level-k neighbor is elected level-(k+1) clusterhead
//
// The paper shows each class's frequency is O(1/h_k) per cluster link;
// experiment E10 measures the class rates directly from these counts.

// EventClass enumerates the trigger classes.
type EventClass int

// Event classes i–vii of §5.2.
const (
	EventLinkUp        EventClass = iota // i
	EventLinkDown                        // ii
	EventElection                        // iii
	EventRejection                       // iv
	EventRecursiveElec                   // v
	EventRecursiveRej                    // vi
	EventNeighborElec                    // vii
	numEventClasses
)

// String names the class with the paper's numbering.
func (e EventClass) String() string {
	switch e {
	case EventLinkUp:
		return "i:link-up"
	case EventLinkDown:
		return "ii:link-down"
	case EventElection:
		return "iii:election"
	case EventRejection:
		return "iv:rejection"
	case EventRecursiveElec:
		return "v:recursive-election"
	case EventRecursiveRej:
		return "vi:recursive-rejection"
	case EventNeighborElec:
		return "vii:neighbor-election"
	default:
		return "unknown"
	}
}

// EventClasses lists all classes in paper order.
func EventClasses() []EventClass {
	out := make([]EventClass, numEventClasses)
	for i := range out {
		out[i] = EventClass(i)
	}
	return out
}

// ClassCounts maps level k -> event class -> count for one tick.
type ClassCounts map[int]map[EventClass]int

// add increments one cell.
func (c ClassCounts) add(level int, class EventClass, n int) {
	if n == 0 {
		return
	}
	m := c[level]
	if m == nil {
		m = map[EventClass]int{}
		c[level] = m
	}
	m[class] += n
}

// Merge accumulates other into c.
func (c ClassCounts) Merge(other ClassCounts) {
	//lint:ignore maprange commutative integer accumulation; the result is order-free
	for level, m := range other {
		//lint:ignore maprange commutative integer accumulation; the result is order-free
		for class, n := range m {
			c.add(level, class, n)
		}
	}
}

// Total returns the sum over all levels and classes.
func (c ClassCounts) Total() int {
	t := 0
	//lint:ignore maprange commutative integer sum; the result is order-free
	for _, m := range c {
		//lint:ignore maprange commutative integer sum; the result is order-free
		for _, n := range m {
			t += n
		}
	}
	return t
}

// ClassifyReorg classifies one tick's reorganization triggers.
//
// Class levels follow the paper's convention: classes i/ii at level k
// concern level-k links; classes iii–vi at level k concern gain/loss
// of level-k status; class vii at level k concerns election of a
// level-(k+1) neighbor.
func ClassifyReorg(prevH, nextH *cluster.Hierarchy, d *cluster.Diff) ClassCounts {
	out := ClassCounts{}

	// i / ii: cluster-migration link events among persistent level-k
	// nodes where an endpoint is a level-(k+1) node (those are the
	// changes that alter level-(k+1) membership and so trigger
	// handoff).
	//lint:ignore maprange commutative integer counting per level; the result is order-free
	for k, evs := range d.MigrationLinkEvents {
		for _, ev := range evs {
			a, b := ev.Edge.Nodes()
			if ev.Up {
				if isLevelNode(nextH, k+1, a) || isLevelNode(nextH, k+1, b) {
					out.add(k, EventLinkUp, 1)
				}
			} else {
				if isLevelNode(prevH, k+1, a) || isLevelNode(prevH, k+1, b) {
					out.add(k, EventLinkDown, 1)
				}
			}
		}
	}

	// iii / v: elections. The election of v at level k is recursive
	// (v) when one of v's current electors was itself elected at level
	// k-1 in the same tick; otherwise it is migration-driven (iii).
	//lint:ignore maprange commutative integer counting per level; the result is order-free
	for k, elected := range d.Elections {
		newlyElectedBelow := toSet(d.Elections[k-1])
		for _, v := range elected {
			if k >= 2 && electorIn(nextH, k-1, v, newlyElectedBelow) {
				out.add(k, EventRecursiveElec, 1)
			} else {
				out.add(k, EventElection, 1)
			}
		}
	}

	// iv / vi: rejections, symmetric with the elector's own rejection.
	//lint:ignore maprange commutative integer counting per level; the result is order-free
	for k, rejected := range d.Rejections {
		rejectedBelow := toSet(d.Rejections[k-1])
		for _, v := range rejected {
			if k >= 2 && electorIn(prevH, k-1, v, rejectedBelow) {
				out.add(k, EventRecursiveRej, 1)
			} else {
				out.add(k, EventRejection, 1)
			}
		}
	}

	// vii: each election at level k+1 is an event for every level-k
	// neighbor of the new clusterhead.
	//lint:ignore maprange commutative integer counting per level; the result is order-free
	for k1, elected := range d.Elections {
		k := k1 - 1
		if k < 1 {
			continue
		}
		lvl := nextH.Level(k)
		if lvl == nil || lvl.Graph == nil {
			continue
		}
		for _, u := range elected {
			out.add(k, EventNeighborElec, len(lvl.Graph.Neighbors(u)))
		}
	}
	return out
}

func isLevelNode(h *cluster.Hierarchy, k, id int) bool {
	lvl := h.Level(k)
	return lvl != nil && lvl.IsNode(id)
}

// electorIn reports whether any node electing v at election level
// eLevel (i.e. among level-eLevel nodes choosing their level-(eLevel+1)
// head) is contained in set.
func electorIn(h *cluster.Hierarchy, eLevel, v int, set map[int]bool) bool {
	if len(set) == 0 {
		return false
	}
	lvl := h.Level(eLevel)
	if lvl == nil || lvl.Head == nil {
		return false
	}
	//lint:ignore maprange order-free existence scan with a single boolean outcome
	for u, hd := range lvl.Head {
		if hd == v && u != v && set[u] {
			return true
		}
	}
	return false
}

func toSet(xs []int) map[int]bool {
	if len(xs) == 0 {
		return nil
	}
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}
