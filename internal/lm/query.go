package lm

import (
	"repro/internal/cluster"
	"repro/internal/topology"
)

// Location query protocol (§3, and the query-cost remark in §6).
//
// A querier q looking for destination d does not know d's hierarchical
// address; it asks, level by level, the node that *would* be d's
// level-k server if d were in q's level-k cluster — computable from
// d's ID and q's own cluster alone, exactly as in GLS. The query
// succeeds at the first level k where q and d actually share a level-k
// cluster (that server holds d's entry). The paper argues this cost is
// of the same order as the q→d hop count and is absorbed into the
// session; experiment code verifies that proportionality.

// QueryResult describes one resolved location query.
type QueryResult struct {
	Found bool
	// Level at which the query resolved (the common-cluster level).
	Level int
	// Packets is the total query cost in packet transmissions: the
	// up-the-hierarchy probe chain plus the reply.
	Packets int
	// Server is the node that answered.
	Server int
}

// QueryScratch holds the reusable buffers of QueryWith. The zero
// value is ready to use; one scratch serves any number of sequential
// queries. Not safe for concurrent use — give each serving worker its
// own.
type QueryScratch struct {
	chainQ []int
	chainD []int
	keys   []uint64
}

// Query resolves the location of d for querier q on hierarchy h,
// costing transmissions with hop. Returns Found == false when q and d
// share no cluster at any level (distinct partitions).
func Query(s *Selector, h *cluster.Hierarchy, ids *cluster.Identities, hop topology.HopModel, q, d int) QueryResult {
	var scr QueryScratch
	return QueryWith(s, h, ids, hop, q, d, &scr)
}

// QueryWith is Query with caller-owned scratch buffers: the hot
// serving path resolves queries without per-call allocation.
func QueryWith(s *Selector, h *cluster.Hierarchy, ids *cluster.Identities, hop topology.HopModel, q, d int, scr *QueryScratch) QueryResult {
	if q == d {
		return QueryResult{Found: true, Level: 0, Packets: 0, Server: q}
	}
	scr.chainQ = h.AppendAncestorChain(q, scr.chainQ[:0])
	scr.chainD = h.AppendAncestorChain(d, scr.chainD[:0])
	chainQ, chainD := scr.chainQ, scr.chainD
	packets := 0
	for k := 1; k <= len(chainQ); k++ {
		// The candidate server inside q's level-k cluster.
		candidate := serverWithin(s, h, ids, chainQ[k-1], k, d, scr)
		if candidate < 0 {
			continue
		}
		packets += hop.Hops(q, candidate)
		if k <= len(chainD) && chainD[k-1] == chainQ[k-1] {
			// Shared cluster: candidate is d's real level-k server and
			// holds the entry; it replies to q.
			packets += hop.Hops(candidate, q)
			return QueryResult{Found: true, Level: k, Packets: packets, Server: candidate}
		}
		// Miss: the probe returns empty-handed (reply cost).
		packets += hop.Hops(candidate, q)
	}
	return QueryResult{Found: false, Packets: packets}
}

// serverWithin resolves the level-0 node that serves owner's level-k
// entry assuming owner's level-k cluster is the given cluster —
// q-side speculative resolution.
func serverWithin(s *Selector, h *cluster.Hierarchy, ids *cluster.Identities, clusterID, k, owner int, scr *QueryScratch) int {
	cur := clusterID
	for level := k; level >= 1; level-- {
		members := h.MembersAt(level, cur)
		if len(members) == 0 {
			return -1
		}
		scr.keys = appendMemberKeys(scr.keys[:0], ids, level, members)
		idx := s.Hash.Select(uint64(owner), level, scr.keys)
		cur = members[idx]
	}
	return cur
}
