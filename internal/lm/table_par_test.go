package lm

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/topology"
)

// tablesIdentical requires byte-identical tables: same owner list and
// row mapping, same per-row server and chain contents.
func tablesIdentical(t *testing.T, want, got *Table) {
	t.Helper()
	if len(want.owners) != len(got.owners) {
		t.Fatalf("owner count %d vs %d", len(want.owners), len(got.owners))
	}
	for i, v := range want.owners {
		if got.owners[i] != v {
			t.Fatalf("owner %d: %d vs %d", i, v, got.owners[i])
		}
		if got.index[v] != want.index[v] {
			t.Fatalf("owner %d: row %d vs %d", v, want.index[v], got.index[v])
		}
	}
	for row := range want.servers {
		ws, gs := want.servers[row], got.servers[row]
		wc, gc := want.chains[row], got.chains[row]
		if len(ws) != len(gs) || len(wc) != len(gc) {
			t.Fatalf("row %d: shape (%d,%d) vs (%d,%d)", row, len(ws), len(wc), len(gs), len(gc))
		}
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("row %d level %d: server %d vs %d", row, i+1, ws[i], gs[i])
			}
			if wc[i] != gc[i] {
				t.Fatalf("row %d level %d: chain %d vs %d", row, i+1, wc[i], gc[i])
			}
		}
	}
}

// tableSnapshots builds `ticks`+1 hierarchy snapshots of n drifting
// nodes with identity continuity across them.
func tableSnapshots(n, ticks int, seed uint64) ([]*cluster.Hierarchy, []*cluster.Identities) {
	src := rng.New(seed)
	d := geom.Disc{R: 420}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	tr := cluster.NewIdentityTracker()
	var hs []*cluster.Hierarchy
	var ids []*cluster.Identities
	var prevH *cluster.Hierarchy
	var prevIDs *cluster.Identities
	for tick := 0; tick <= ticks; tick++ {
		g := topology.BuildUnitDiskBrute(pos, 100)
		h, id := cluster.BuildWithIdentities(g, nodesUpTo(n), cluster.Config{}, prevH, prevIDs, tr, float64(tick))
		hs = append(hs, h)
		ids = append(ids, id)
		prevH, prevIDs = h, id
		for i := range pos {
			pos[i] = d.Clamp(pos[i].Add(geom.Vec{X: src.Range(-25, 25), Y: src.Range(-25, 25)}))
		}
	}
	return hs, ids
}

// TestUpdateTableParMatchesSerial: the parallel incremental update must
// be byte-identical to the serial one for every worker count, including
// worker counts exceeding the owner count.
func TestUpdateTableParMatchesSerial(t *testing.T) {
	for _, n := range []int{3, 40, 150} {
		hs, ids := tableSnapshots(n, 1, uint64(n))
		s := NewSelector(nil)
		base := s.BuildTable(hs[0], ids[0])
		serial := s.UpdateTable(base, hs[0], ids[0], hs[1], ids[1])
		for _, workers := range []int{1, 2, 3, 5, 8, 200} {
			p := par.NewPool(workers)
			parT := s.UpdateTableIntoPar(nil, nil, nil, base, hs[0], ids[0], hs[1], ids[1], nil, p)
			p.Close()
			tablesIdentical(t, serial, parT)
		}
	}
}

// TestUpdateTableParReuse drives the double-buffered loop shape: two
// recycled destination tables, one scratch pair, many ticks.
func TestUpdateTableParReuse(t *testing.T) {
	const n, ticks = 120, 6
	hs, ids := tableSnapshots(n, ticks, 9)
	s := NewSelector(nil)
	p := par.NewPool(3)
	defer p.Close()
	var sc UpdateScratch
	var psc UpdateParScratch
	prev := s.BuildTable(hs[0], ids[0])
	var spare [2]*Table
	for tick := 1; tick <= ticks; tick++ {
		serial := s.UpdateTable(prev, hs[tick-1], ids[tick-1], hs[tick], ids[tick])
		next := s.UpdateTableIntoPar(spare[tick%2], &sc, &psc,
			prev, hs[tick-1], ids[tick-1], hs[tick], ids[tick], nil, p)
		tablesIdentical(t, serial, next)
		spare[tick%2] = prev
		prev = next
	}
}

// TestUpdateTableParNilPool verifies the serial fallback.
func TestUpdateTableParNilPool(t *testing.T) {
	hs, ids := tableSnapshots(60, 1, 4)
	s := NewSelector(nil)
	base := s.BuildTable(hs[0], ids[0])
	serial := s.UpdateTable(base, hs[0], ids[0], hs[1], ids[1])
	parT := s.UpdateTableIntoPar(nil, nil, nil, base, hs[0], ids[0], hs[1], ids[1], nil, nil)
	tablesIdentical(t, serial, parT)
}
