package lm

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

// TestHashPropertyQuick: rendezvous selection is always a valid index
// and permutation-invariant in candidate order.
func TestHashPropertyQuick(t *testing.T) {
	r := Rendezvous{Salt: 3}
	f := func(owner uint32, raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]uint64, 0, len(raw))
		seen := map[uint64]bool{}
		for _, k := range raw {
			if !seen[uint64(k)] {
				keys = append(keys, uint64(k))
				seen[uint64(k)] = true
			}
		}
		idx := r.Select(uint64(owner), 2, keys)
		if idx < 0 || idx >= len(keys) {
			return false
		}
		winner := keys[idx]
		// Reverse the candidate order: same winner.
		rev := make([]uint64, len(keys))
		for i, k := range keys {
			rev[len(keys)-1-i] = k
		}
		return rev[r.Select(uint64(owner), 2, rev)] == winner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessorPropertyQuick(t *testing.T) {
	s := Successor{IDSpace: 1 << 16}
	f := func(owner uint16, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]uint64, len(raw))
		for i, k := range raw {
			keys[i] = uint64(k)
		}
		idx := s.Select(uint64(owner), 1, keys)
		return idx >= 0 && idx < len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDeterministic: identical table pairs must produce bitwise
// identical totals (map iteration must not leak into float sums).
func TestApplyDeterministic(t *testing.T) {
	const n = 120
	src := rng.New(41)
	d := geom.Disc{R: 420}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	g1 := topology.BuildUnitDiskBrute(pos, 100)
	for i := range pos {
		pos[i] = d.Clamp(pos[i].Add(geom.Vec{X: src.Range(-25, 25), Y: src.Range(-25, 25)}))
	}
	g2 := topology.BuildUnitDiskBrute(pos, 100)

	run := func() Totals {
		tr := cluster.NewIdentityTracker()
		h1, ids1 := cluster.BuildWithIdentities(g1, nodesUpTo(n), cluster.Config{}, nil, nil, tr, 0)
		h2, ids2 := cluster.BuildWithIdentities(g2, nodesUpTo(n), cluster.Config{}, h1, ids1, tr, 1)
		s := NewSelector(nil)
		t1 := s.BuildTable(h1, ids1)
		t2 := s.UpdateTable(t1, h1, ids1, h2, ids2)
		hop := topology.NewBFSHops(g2, 50)
		var tot Totals
		NewAccountant(hop).Apply(t1, t2, &tot)
		return tot
	}
	a, b := run(), run()
	if a.PhiTotal() != b.PhiTotal() || a.GammaTotal() != b.GammaTotal() ||
		a.UpdateTotal() != b.UpdateTotal() || a.RegTotal() != b.RegTotal() {
		t.Fatalf("accountant not deterministic: %+v vs %+v", a, b)
	}
}

// TestUpdatePacketsOnMigration: an owner that changes clusters sends a
// location update to its server, even when the server stays put.
func TestUpdatePacketsOnMigration(t *testing.T) {
	g1 := graphOf(8, [2]int{0, 5}, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	g2 := graphOf(8, [2]int{0, 5}, [2]int{1, 6}, [2]int{2, 6}, [2]int{5, 6})
	totals, _, _, _ := evolve(t, []int{0, 1, 2, 5, 6}, g1, g2)
	if totals.UpdateTotal() <= 0 {
		t.Fatal("no location updates for a migration")
	}
	var events int64
	for _, e := range totals.UpdateEvents {
		events += e
	}
	if events == 0 {
		t.Fatal("no update events counted")
	}
}

// TestNoUpdatesWithoutChange: identical snapshots yield zero overhead
// in every category.
func TestNoUpdatesWithoutChange(t *testing.T) {
	g := graphOf(8, [2]int{0, 5}, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	totals, transfers, _, _ := evolve(t, []int{0, 1, 2, 5, 6}, g, g)
	if len(transfers) != 0 {
		t.Fatalf("transfers on identical snapshots: %+v", transfers)
	}
	if totals.PhiTotal() != 0 || totals.GammaTotal() != 0 ||
		totals.RegTotal() != 0 || totals.UpdateTotal() != 0 {
		t.Fatalf("overhead without change: %+v", totals)
	}
}

// TestLiveAt enumerates live logical clusters from table chains.
func TestLiveAt(t *testing.T) {
	g := graphOf(8, [2]int{0, 5}, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	h, ids, _ := tracked(g, []int{0, 1, 2, 5, 6})
	s := NewSelector(nil)
	tbl := s.BuildTable(h, ids)
	live := tbl.LiveAt(1)
	if len(live) == 0 {
		t.Fatal("no live level-1 clusters")
	}
	// Every level-1 cluster's logical ID must appear.
	for _, head := range h.LevelNodes(1) {
		id, _ := ids.Logical(1, head)
		if !live[id] {
			t.Fatalf("cluster %d (logical %d) missing from LiveAt", head, id)
		}
	}
	if len(tbl.LiveAt(0)) != 0 {
		t.Fatal("LiveAt(0) should be empty")
	}
}

// TestChainAccessors covers Table.Chain and Levels edge cases.
func TestChainAccessors(t *testing.T) {
	g := graphOf(8, [2]int{0, 5}, [2]int{1, 5})
	h, ids, _ := tracked(g, []int{0, 1, 5})
	s := NewSelector(nil)
	tbl := s.BuildTable(h, ids)
	if c := tbl.Chain(0); len(c) == 0 {
		t.Fatal("empty chain for clustered node")
	}
	if c := tbl.Chain(99); c != nil {
		t.Fatalf("chain for unknown owner: %v", c)
	}
	if l := tbl.Levels(99); l != 0 {
		t.Fatalf("levels for unknown owner: %d", l)
	}
	if s := tbl.Server(99, 1); s != -1 {
		t.Fatalf("server for unknown owner: %d", s)
	}
	if len(tbl.Owners()) != 3 {
		t.Fatalf("owners = %v", tbl.Owners())
	}
}
