package lm

import (
	"slices"
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

func graphOf(n int, edges ...[2]int) *topology.Graph {
	g := topology.NewGraph(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func nodesUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// tracked builds a hierarchy plus fresh identities.
func tracked(g *topology.Graph, nodes []int) (*cluster.Hierarchy, *cluster.Identities, *cluster.IdentityTracker) {
	h := cluster.Build(g, nodes, cluster.Config{}, nil)
	tr := cluster.NewIdentityTracker()
	return h, tr.Init(h), tr
}

func randomHierarchy(n int, worldR, rtx float64, seed uint64) (*cluster.Hierarchy, *cluster.Identities, *topology.Graph) {
	src := rng.New(seed)
	d := geom.Disc{R: worldR}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	g := topology.BuildUnitDiskBrute(pos, rtx)
	h, ids, _ := tracked(g, nodesUpTo(n))
	return h, ids, g
}

func keysOf(members []int) []uint64 {
	keys := make([]uint64, len(members))
	for i, m := range members {
		keys[i] = uint64(m)
	}
	return keys
}

// --- hash tests ---

func TestRendezvousSelectsIndex(t *testing.T) {
	h := Rendezvous{Salt: 7}
	keys := keysOf([]int{3, 8, 15, 42})
	for owner := uint64(0); owner < 50; owner++ {
		for level := 1; level <= 4; level++ {
			got := h.Select(owner, level, keys)
			if got < 0 || got >= len(keys) {
				t.Fatalf("index %d out of range", got)
			}
			if got != h.Select(owner, level, keys) {
				t.Fatal("selection not deterministic")
			}
		}
	}
}

func TestRendezvousLoadBalance(t *testing.T) {
	h := Rendezvous{}
	keys := keysOf([]int{10, 20, 30, 40, 50})
	counts := map[int]int{}
	const owners = 5000
	for owner := 0; owner < owners; owner++ {
		counts[h.Select(uint64(owner), 2, keys)]++
	}
	want := owners / len(keys)
	for m, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("candidate %d load %d, expected near %d", m, c, want)
		}
	}
}

func TestRendezvousMinimalDisruption(t *testing.T) {
	// Removing one candidate must only move owners that mapped to it.
	h := Rendezvous{}
	keys := keysOf([]int{10, 20, 30, 40, 50})
	reduced := keysOf([]int{10, 20, 40, 50})
	for owner := 0; owner < 2000; owner++ {
		before := keys[h.Select(uint64(owner), 1, keys)]
		after := reduced[h.Select(uint64(owner), 1, reduced)]
		if before != 30 && before != after {
			t.Fatalf("owner %d moved from %d to %d though 30 was removed", owner, before, after)
		}
	}
}

func TestSuccessorRule(t *testing.T) {
	s := Successor{IDSpace: 100}
	keys := keysOf([]int{10, 40, 70})
	// Owner 15 -> least ID greater than 15 is 40.
	if got := keys[s.Select(15, 1, keys)]; got != 40 {
		t.Fatalf("Select(15) = %d, want 40", got)
	}
	// Wrap-around: owner 80 -> 10.
	if got := keys[s.Select(80, 1, keys)]; got != 10 {
		t.Fatalf("Select(80) = %d, want 10", got)
	}
	// Exactly at a candidate: owner 40 -> 70 (strictly greater).
	if got := keys[s.Select(40, 1, keys)]; got != 70 {
		t.Fatalf("Select(40) = %d, want 70", got)
	}
}

func TestSuccessorSkewVsRendezvousEquity(t *testing.T) {
	// The paper's remark: the GLS rule over small candidate sets with
	// clustered IDs concentrates load. With members {45,59,68,74,75,97}
	// (the paper's level-2 example), owners uniform over [0,100) hit 45
	// disproportionately because of the large gap below it.
	keys := keysOf([]int{45, 59, 68, 74, 75, 97})
	succ := Successor{IDSpace: 100}
	rdv := Rendezvous{}
	sCount := map[uint64]int{}
	rCount := map[uint64]int{}
	for owner := 0; owner < 100; owner++ {
		sCount[keys[succ.Select(uint64(owner), 1, keys)]]++
		rCount[keys[rdv.Select(uint64(owner), 1, keys)]]++
	}
	if sCount[45] < 40 {
		t.Fatalf("successor load on 45 = %d, expected the paper's skew (>=40)", sCount[45])
	}
	maxR := 0
	for _, c := range rCount {
		if c > maxR {
			maxR = c
		}
	}
	if maxR >= sCount[45] {
		t.Fatalf("rendezvous max load %d not better than successor skew %d", maxR, sCount[45])
	}
}

func contains(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

// --- selector / table tests ---

func TestServerForDescendsToCorrectCluster(t *testing.T) {
	h, ids, _ := randomHierarchy(150, 450, 110, 1)
	s := NewSelector(nil)
	for _, v := range h.LevelNodes(0) {
		chain := h.AncestorChain(v)
		for k := 1; k <= len(chain); k++ {
			srv := s.ServerFor(h, ids, v, k)
			if srv < 0 {
				t.Fatalf("no server for (%d,%d)", v, k)
			}
			// The server must be a level-0 descendant of the owner's
			// level-k cluster.
			if !contains(h.Descendants(k, chain[k-1]), srv) {
				t.Fatalf("server %d for (%d,%d) outside cluster %d", srv, v, k, chain[k-1])
			}
		}
		// Beyond the chain: no server.
		if got := s.ServerFor(h, ids, v, len(chain)+1); got != -1 {
			t.Fatalf("phantom server %d beyond chain", got)
		}
	}
}

func TestBuildTableMatchesServerFor(t *testing.T) {
	h, ids, _ := randomHierarchy(120, 420, 100, 2)
	s := NewSelector(nil)
	table := s.BuildTable(h, ids)
	for _, v := range h.LevelNodes(0) {
		for k := 1; k <= table.Levels(v); k++ {
			if table.Server(v, k) != s.ServerFor(h, ids, v, k) {
				t.Fatalf("table/ServerFor mismatch at (%d,%d)", v, k)
			}
		}
	}
	if table.EntryCount() == 0 {
		t.Fatal("no entries")
	}
}

func TestServerLoadIsLogarithmic(t *testing.T) {
	// Each node serves Θ(log|V|) entries on average (§3.2's closing
	// observation): total entries ≈ N·L, so mean load ≈ L.
	h, ids, _ := randomHierarchy(300, 600, 110, 3)
	s := NewSelector(nil)
	table := s.BuildTable(h, ids)
	load := table.Load()
	total := 0
	max := 0
	for _, c := range load {
		total += c
		if c > max {
			max = c
		}
	}
	n := len(h.LevelNodes(0))
	meanLoad := float64(total) / float64(n)
	L := float64(h.L())
	if meanLoad < L*0.5 || meanLoad > L*1.5 {
		t.Fatalf("mean load %v vs L %v", meanLoad, L)
	}
	if float64(max) > 12*meanLoad {
		t.Fatalf("max load %d vs mean %v: inequitable", max, meanLoad)
	}
}

func TestUpdateTableMatchesBuildTable(t *testing.T) {
	// The incremental dirty-subtree update must be exactly equivalent
	// to a full rebuild, across a sequence of perturbed topologies with
	// identity tracking.
	const n = 140
	src := rng.New(4)
	d := geom.Disc{R: 430}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	s := NewSelector(nil)
	tr := cluster.NewIdentityTracker()
	var prevH *cluster.Hierarchy
	var prevIDs *cluster.Identities
	var prevT *Table
	for step := 0; step < 25; step++ {
		g := topology.BuildUnitDiskBrute(pos, 100)
		h := cluster.Build(g, nodesUpTo(n), cluster.Config{}, nil)
		var ids *cluster.Identities
		var tbl *Table
		if prevH == nil {
			ids = tr.Init(h)
			tbl = s.BuildTable(h, ids)
		} else {
			ids = tr.Track(prevH, prevIDs, h)
			tbl = s.UpdateTable(prevT, prevH, prevIDs, h, ids)
		}
		want := s.BuildTable(h, ids)
		if diff := DiffTables(want, tbl); len(diff) != 0 {
			t.Fatalf("step %d: incremental table deviates: %+v", step, diff[0])
		}
		prevH, prevIDs, prevT = h, ids, tbl
		for i := range pos {
			pos[i] = d.Clamp(pos[i].Add(geom.Vec{X: src.Range(-20, 20), Y: src.Range(-20, 20)}))
		}
	}
}

func TestRelabelDoesNotMoveEntries(t *testing.T) {
	// The defining property of identity continuity: a clusterhead
	// change with identical membership produces zero table diff.
	//
	// Chain 1-2 with heads {2}; extend with node 9 adjacent to 2: the
	// cluster {1,2,9} relabels from head 2 to head 9... that changes
	// membership. Instead test: cluster {5,1} (head 5) where head
	// flips to a new max 9 replacing 5's role while the *other*
	// cluster {6,2} is untouched: entries of owners in {6,2} whose
	// servers live in their own cluster must not move.
	g1 := graphOf(10, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	h1, ids1, tr := tracked(g1, []int{1, 2, 5, 6})
	s := NewSelector(nil)
	t1 := s.BuildTable(h1, ids1)

	// Node 9 appears adjacent to 5 and 1: cluster {1,5,9} now led by 9
	// (relabel + one member added); cluster {2,6} untouched.
	g2 := graphOf(10, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6}, [2]int{9, 5}, [2]int{9, 1}, [2]int{9, 6})
	h2 := cluster.Build(g2, []int{1, 2, 5, 6, 9}, cluster.Config{}, nil)
	ids2 := tr.Track(h1, ids1, h2)
	t2 := s.UpdateTable(t1, h1, ids1, h2, ids2)

	// The logical ID of the {1,5}-descended cluster must persist.
	old5, ok1 := ids1.Logical(1, 5)
	newHead := h2.Ancestor(1, 1)
	new9, ok2 := ids2.Logical(1, newHead)
	if !ok1 || !ok2 || old5 != new9 {
		t.Fatalf("cluster identity not carried: %v(%v) -> %v(%v)", old5, ok1, new9, ok2)
	}
	// Node 2's level-1 entry (inside the untouched cluster) stays put.
	if t1.Server(2, 1) != t2.Server(2, 1) {
		t.Fatalf("untouched cluster's entry moved: %d -> %d", t1.Server(2, 1), t2.Server(2, 1))
	}
}

func TestDiffTables(t *testing.T) {
	g1 := graphOf(8, [2]int{1, 5}, [2]int{2, 6})
	h1, ids1, tr := tracked(g1, []int{1, 2, 5, 6})
	s := NewSelector(nil)
	t1 := s.BuildTable(h1, ids1)
	if d := DiffTables(t1, t1); len(d) != 0 {
		t.Fatalf("self-diff = %v", d)
	}
	// Node 1 moves to 6's cluster.
	g2 := graphOf(8, [2]int{1, 6}, [2]int{2, 6}, [2]int{5, 6})
	h2 := cluster.Build(g2, []int{1, 2, 5, 6}, cluster.Config{}, nil)
	ids2 := tr.Track(h1, ids1, h2)
	t2 := s.BuildTable(h2, ids2)
	d := DiffTables(t1, t2)
	if len(d) == 0 {
		t.Fatal("no table diff after topology change")
	}
	for i := 1; i < len(d); i++ {
		if d[i-1].Owner > d[i].Owner ||
			(d[i-1].Owner == d[i].Owner && d[i-1].Level >= d[i].Level) {
			t.Fatal("diff not ordered")
		}
	}
}

// TestDiffTablesEdgeCases pins the diff semantics at the boundaries
// the accountant depends on: a nil previous table, owners joining and
// leaving the network, chain-depth changes, and the caller-owned
// buffer form reproducing the allocating one.
func TestDiffTablesEdgeCases(t *testing.T) {
	g1 := graphOf(8, [2]int{1, 5}, [2]int{2, 6})
	h1, ids1, tr := tracked(g1, []int{1, 2, 5, 6})
	s := NewSelector(nil)
	t1 := s.BuildTable(h1, ids1)

	// nil prev: every live entry appears exactly once, from nowhere.
	d := appendTableDiffs(nil, nil, t1, nil)
	if len(d) != t1.EntryCount() {
		t.Fatalf("nil-prev diff has %d entries, table has %d", len(d), t1.EntryCount())
	}
	for _, td := range d {
		if td.OldServer != -1 || td.NewServer == -1 {
			t.Fatalf("nil-prev diff %+v should read -1 -> live", td)
		}
	}

	// Owner 2 leaves the network: all its entries retire to -1.
	g2 := graphOf(8, [2]int{1, 5})
	h2 := cluster.Build(g2, []int{1, 5, 6}, cluster.Config{}, nil)
	ids2 := tr.Track(h1, ids1, h2)
	t2 := s.BuildTable(h2, ids2)
	gone := 0
	for _, td := range DiffTables(t1, t2) {
		if td.Owner != 2 {
			continue
		}
		gone++
		if td.NewServer != -1 {
			t.Fatalf("departed owner still has a server: %+v", td)
		}
	}
	if gone == 0 {
		t.Fatal("departed owner produced no retirements")
	}
	// The reverse direction is the owner appearing: same entries, from -1.
	for _, td := range DiffTables(t2, t1) {
		if td.Owner == 2 && (td.OldServer != -1 || td.NewServer == -1) {
			t.Fatalf("appearing owner diff %+v should read -1 -> live", td)
		}
	}

	// Chain depth change: connecting the two clusters adds a level, so
	// the new top-level entries must appear as -1 -> live.
	g3 := graphOf(8, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	h3 := cluster.Build(g3, []int{1, 2, 5, 6}, cluster.Config{}, nil)
	ids3 := tr.Track(h1, ids1, h3)
	t3 := s.BuildTable(h3, ids3)
	if t3.Levels(1) <= t1.Levels(1) {
		t.Fatalf("merge did not deepen the hierarchy (%d vs %d levels)", t3.Levels(1), t1.Levels(1))
	}
	deeper := 0
	for _, td := range DiffTables(t1, t3) {
		if td.Level > t1.Levels(td.Owner) {
			deeper++
			if td.OldServer != -1 {
				t.Fatalf("new-depth diff %+v should come from -1", td)
			}
		}
	}
	if deeper == 0 {
		t.Fatal("no diffs at the new hierarchy depth")
	}

	// The buffer-reuse form must reproduce the allocating form exactly,
	// including after reuse with stale contents.
	want := DiffTables(t1, t3)
	seen := map[int]bool{7: true} // stale scratch to be cleared
	out := appendTableDiffs(nil, t2, t1, seen)
	out = appendTableDiffs(out[:0], t1, t3, seen)
	if !slices.Equal(out, want) {
		t.Fatalf("reused-buffer diff deviates:\n got %+v\nwant %+v", out, want)
	}
}

// --- accountant tests ---

// evolve builds consecutive snapshots with identity tracking and runs
// the accountant between them.
func evolve(t *testing.T, nodes []int, g1, g2 *topology.Graph) (*Totals, []Transfer, *Table, *Table) {
	t.Helper()
	h1, ids1, tr := tracked(g1, nodes)
	h2 := cluster.Build(g2, nodes, cluster.Config{}, nil)
	ids2 := tr.Track(h1, ids1, h2)
	s := NewSelector(nil)
	t1 := s.BuildTable(h1, ids1)
	t2 := s.UpdateTable(t1, h1, ids1, h2, ids2)
	hop := topology.NewBFSHops(g2, 10)
	var totals Totals
	transfers := NewAccountant(hop).Apply(t1, t2, &totals)
	return &totals, transfers, t1, t2
}

func TestAccountantPureMigrationIsPhi(t *testing.T) {
	// Clusters {0,1,5} (head 5) and {2,6} (head 6), bridged 5-6. Node 1
	// migrates from 5's cluster to 6's: both clusters persist -> φ at
	// level 1 for node 1's level-1 entry.
	g1 := graphOf(8, [2]int{0, 5}, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	g2 := graphOf(8, [2]int{0, 5}, [2]int{1, 6}, [2]int{2, 6}, [2]int{5, 6})
	totals, transfers, _, _ := evolve(t, []int{0, 1, 2, 5, 6}, g1, g2)
	if len(transfers) == 0 {
		t.Fatal("no transfers for a migration")
	}
	foundPhi := false
	for _, tr := range transfers {
		if tr.Owner == 1 && tr.Level == 1 {
			if tr.Cause != CauseMigration {
				t.Fatalf("owner-1 transfer cause = %v", tr.Cause)
			}
			foundPhi = true
		}
	}
	if !foundPhi {
		t.Fatalf("no level-1 transfer for node 1: %+v", transfers)
	}
	if totals.PhiTotal() == 0 {
		t.Fatal("φ total is zero")
	}
	if totals.MigrationEvents[1] == 0 {
		t.Fatal("migration event not counted")
	}
}

func TestAccountantClusterDeathIsGamma(t *testing.T) {
	// Cluster {1,2} (head 2) dissolves when 1 and 2 both join 4's
	// cluster: node 1 and 2's level-1 entries move due to
	// reorganization, not migration (their old cluster died).
	g1 := graphOf(6, [2]int{1, 2}, [2]int{3, 4}, [2]int{2, 4})
	g2 := graphOf(6, [2]int{1, 4}, [2]int{3, 4}, [2]int{2, 4})
	totals, transfers, _, _ := evolve(t, []int{1, 2, 3, 4}, g1, g2)
	for _, tr := range transfers {
		if tr.Owner == 1 && tr.Level == 1 && tr.Cause == CauseMigration {
			t.Fatalf("cluster-death transfer classified as migration: %+v", tr)
		}
	}
	if totals.GammaTotal() == 0 && totals.RegTotal() == 0 {
		t.Fatal("no γ or registration despite cluster death")
	}
}

func TestAccountantInitialRegistration(t *testing.T) {
	// From an unclustered state, new levels appear: entries with
	// From == -1 are registration overhead, not φ/γ.
	g1 := graphOf(6)
	g2 := graphOf(6, [2]int{1, 2}, [2]int{2, 3})
	totals, transfers, _, _ := evolve(t, []int{1, 2, 3}, g1, g2)
	if len(transfers) == 0 {
		t.Fatal("no registrations for newly formed hierarchy")
	}
	for _, tr := range transfers {
		if tr.From != -1 || tr.Cause != CauseRegistration {
			t.Fatalf("expected initial registration, got %+v", tr)
		}
	}
	if totals.PhiTotal() != 0 || totals.GammaTotal() != 0 {
		t.Fatalf("registration leaked into handoff: φ=%v γ=%v", totals.PhiTotal(), totals.GammaTotal())
	}
	if totals.RegTotal() == 0 {
		t.Fatal("no registration packets counted")
	}
}

func TestAccountantRelabelCostsNothing(t *testing.T) {
	// Membership-preserving head change: no packets in any category.
	// {3,5} head 5 plus {2,6} head 6; then 5 is replaced by 9 at the
	// same spot (5 leaves, 9 arrives adjacent to 3)... that changes
	// membership. True relabel without membership change is impossible
	// under LCA (the head is a member), so test the weaker property:
	// the *other* cluster's owners see zero transfers.
	g1 := graphOf(12, [2]int{3, 5}, [2]int{2, 6}, [2]int{5, 6})
	g2 := graphOf(12, [2]int{3, 5}, [2]int{3, 9}, [2]int{5, 9}, [2]int{2, 6}, [2]int{5, 6}, [2]int{9, 6})
	_, transfers, _, _ := evolve(t, []int{2, 3, 5, 6, 9}, g1, g2)
	for _, tr := range transfers {
		if tr.Owner == 2 && tr.Level == 1 && tr.Packets > 0 {
			t.Fatalf("owner 2's intra-cluster entry moved on neighbor relabel: %+v", tr)
		}
	}
}

func TestTotalsGrowAndSum(t *testing.T) {
	var tot Totals
	tot.grow(3)
	tot.PhiPackets[1] = 2
	tot.PhiPackets[3] = 3
	tot.GammaPackets[2] = 5
	tot.RegPackets[1] = 7
	if tot.PhiTotal() != 5 || tot.GammaTotal() != 5 || tot.RegTotal() != 7 {
		t.Fatalf("totals: φ=%v γ=%v reg=%v", tot.PhiTotal(), tot.GammaTotal(), tot.RegTotal())
	}
	if tot.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d", tot.MaxLevel())
	}
}

// --- classification tests (physical event classes, E10) ---

func TestClassifyMigrationLink(t *testing.T) {
	g1 := graphOf(8, [2]int{1, 5}, [2]int{2, 6})
	g2 := graphOf(8, [2]int{1, 5}, [2]int{2, 6}, [2]int{1, 2})
	h1 := cluster.Build(g1, []int{1, 2, 5, 6}, cluster.Config{}, nil)
	h2 := cluster.Build(g2, []int{1, 2, 5, 6}, cluster.Config{}, nil)
	d := cluster.ComputeDiff(h1, h2)
	cc := ClassifyReorg(h1, h2, d)
	if cc[1][EventLinkUp] != 1 {
		t.Fatalf("class i count = %d (%v)", cc[1][EventLinkUp], cc)
	}
	dRev := cluster.ComputeDiff(h2, h1)
	ccRev := ClassifyReorg(h2, h1, dRev)
	if ccRev[1][EventLinkDown] != 1 {
		t.Fatalf("class ii count = %d (%v)", ccRev[1][EventLinkDown], ccRev)
	}
}

func TestClassifyElectionAndRejection(t *testing.T) {
	g1 := graphOf(6, [2]int{1, 2}, [2]int{3, 4})
	g2 := graphOf(6, [2]int{1, 2}, [2]int{3, 4}, [2]int{1, 3})
	h1 := cluster.Build(g1, []int{1, 2, 3, 4}, cluster.Config{}, nil)
	h2 := cluster.Build(g2, []int{1, 2, 3, 4}, cluster.Config{}, nil)
	d := cluster.ComputeDiff(h1, h2)
	cc := ClassifyReorg(h1, h2, d)
	if cc[1][EventElection] == 0 {
		t.Fatalf("no class iii election: %v", cc)
	}
	dRev := cluster.ComputeDiff(h2, h1)
	ccRev := ClassifyReorg(h2, h1, dRev)
	if ccRev[1][EventRejection] == 0 {
		t.Fatalf("no class iv rejection: %v", ccRev)
	}
}

func TestClassCountsMergeAndTotal(t *testing.T) {
	a := ClassCounts{}
	a.add(1, EventElection, 2)
	b := ClassCounts{}
	b.add(1, EventElection, 3)
	b.add(2, EventLinkUp, 1)
	a.Merge(b)
	if a[1][EventElection] != 5 || a[2][EventLinkUp] != 1 {
		t.Fatalf("merge wrong: %v", a)
	}
	if a.Total() != 6 {
		t.Fatalf("total = %d", a.Total())
	}
}

func TestEventClassStrings(t *testing.T) {
	for _, c := range EventClasses() {
		if c.String() == "unknown" {
			t.Fatalf("class %d unnamed", c)
		}
	}
}

// --- query tests ---

func TestQueryResolvesAtCommonLevel(t *testing.T) {
	h, ids, g := randomHierarchy(200, 500, 110, 5)
	s := NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	src := rng.New(6)
	nodes := h.LevelNodes(0)
	checked := 0
	for i := 0; i < 200; i++ {
		q := nodes[src.Intn(len(nodes))]
		d := nodes[src.Intn(len(nodes))]
		res := Query(s, h, ids, hop, q, d)
		cq := h.AncestorChain(q)
		cd := h.AncestorChain(d)
		common := -1
		for k := 1; k <= len(cq) && k <= len(cd); k++ {
			if cq[k-1] == cd[k-1] {
				common = k
				break
			}
		}
		if q == d {
			common = 0
		}
		if common == -1 {
			if res.Found {
				t.Fatalf("query across partitions succeeded: q=%d d=%d", q, d)
			}
			continue
		}
		if !res.Found {
			t.Fatalf("query failed though common level %d exists (q=%d d=%d)", common, q, d)
		}
		if res.Level != common {
			t.Fatalf("resolved at level %d, common level %d", res.Level, common)
		}
		if common > 0 && res.Server != s.ServerFor(h, ids, d, common) {
			t.Fatalf("answered by %d, real server %d", res.Server, s.ServerFor(h, ids, d, common))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no connected pairs checked")
	}
}

func TestQuerySelf(t *testing.T) {
	h, ids, g := randomHierarchy(50, 300, 110, 7)
	s := NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	res := Query(s, h, ids, hop, 3, 3)
	if !res.Found || res.Packets != 0 || res.Level != 0 {
		t.Fatalf("self query = %+v", res)
	}
}

func BenchmarkBuildTable300(b *testing.B) {
	h, ids, _ := randomHierarchy(300, 600, 110, 1)
	s := NewSelector(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BuildTable(h, ids)
	}
}

func BenchmarkUpdateTableSmallPerturbation(b *testing.B) {
	const n = 300
	src := rng.New(2)
	d := geom.Disc{R: 600}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	g1 := topology.BuildUnitDiskBrute(pos, 110)
	h1, ids1, tr := tracked(g1, nodesUpTo(n))
	pos[7] = pos[7].Add(geom.Vec{X: 30, Y: 0})
	g2 := topology.BuildUnitDiskBrute(pos, 110)
	h2 := cluster.Build(g2, nodesUpTo(n), cluster.Config{}, nil)
	ids2 := tr.Track(h1, ids1, h2)
	s := NewSelector(nil)
	t1 := s.BuildTable(h1, ids1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateTable(t1, h1, ids1, h2, ids2)
	}
}
