package lm

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/topology"
)

func quickGraph(n int, raw []byte) *topology.Graph {
	g := topology.NewGraph(n)
	for i := 0; i+1 < len(raw); i += 2 {
		g.AddEdge(int(raw[i])%n, int(raw[i+1])%n)
	}
	return g
}

// TestQuickIncrementalEqualsFull: for arbitrary topology evolutions,
// the dirty-subtree incremental update must equal a full rebuild.
// This is the load-bearing correctness property of the LM maintenance
// path.
func TestQuickIncrementalEqualsFull(t *testing.T) {
	f := func(rawA, rawB []byte) bool {
		const n = 36
		tr := cluster.NewIdentityTracker()
		s := NewSelector(nil)
		g1 := quickGraph(n, rawA)
		h1, ids1 := cluster.BuildWithIdentities(g1, nodesUpTo(n), cluster.Config{}, nil, nil, tr, 0)
		t1 := s.BuildTable(h1, ids1)
		g2 := quickGraph(n, rawB)
		h2, ids2 := cluster.BuildWithIdentities(g2, nodesUpTo(n), cluster.Config{}, h1, ids1, tr, 1)
		incr := s.UpdateTable(t1, h1, ids1, h2, ids2)
		full := s.BuildTable(h2, ids2)
		return len(DiffTables(full, incr)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickServerInOwnersCluster: every assignment lands inside the
// owner's cluster at that level, for arbitrary graphs.
func TestQuickServerInOwnersCluster(t *testing.T) {
	f := func(raw []byte) bool {
		const n = 32
		tr := cluster.NewIdentityTracker()
		g := quickGraph(n, raw)
		h, ids := cluster.BuildWithIdentities(g, nodesUpTo(n), cluster.Config{}, nil, nil, tr, 0)
		s := NewSelector(nil)
		tbl := s.BuildTable(h, ids)
		for _, v := range tbl.Owners() {
			for k := 1; k <= tbl.Levels(v); k++ {
				srv := tbl.Server(v, k)
				if srv < 0 {
					return false
				}
				anc := h.Ancestor(v, k)
				found := false
				for _, d := range h.Descendants(k, anc) {
					if d == srv {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickApplyConservation: for arbitrary evolutions, every table
// diff is accounted exactly once across the four cause categories.
func TestQuickApplyConservation(t *testing.T) {
	f := func(rawA, rawB []byte) bool {
		const n = 30
		tr := cluster.NewIdentityTracker()
		s := NewSelector(nil)
		g1 := quickGraph(n, rawA)
		h1, ids1 := cluster.BuildWithIdentities(g1, nodesUpTo(n), cluster.Config{}, nil, nil, tr, 0)
		t1 := s.BuildTable(h1, ids1)
		g2 := quickGraph(n, rawB)
		h2, ids2 := cluster.BuildWithIdentities(g2, nodesUpTo(n), cluster.Config{}, h1, ids1, tr, 1)
		t2 := s.UpdateTable(t1, h1, ids1, h2, ids2)
		hop := topology.NewBFSHops(g2, 20)
		var tot Totals
		transfers := NewAccountant(hop).Apply(t1, t2, &tot)
		if len(transfers) != len(DiffTables(t1, t2)) {
			return false
		}
		var phi, gamma, reg, drop int64
		for _, tr := range transfers {
			switch tr.Cause {
			case CauseMigration:
				phi++
			case CauseReorg:
				gamma++
			case CauseRegistration:
				reg++
			case CauseDrop:
				drop++
			}
		}
		var accPhi, accGamma, accReg, accDrop int64
		for k := 0; k <= tot.MaxLevel(); k++ {
			accPhi += tot.PhiEntries[k]
			accGamma += tot.GammaEntries[k]
			accReg += tot.RegEntries[k]
			accDrop += tot.DropEntries[k]
		}
		return phi == accPhi && gamma == accGamma && reg == accReg && drop == accDrop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
