package lm

import (
	"fmt"
	"sort"
)

// Audit verifies the table's internal shape invariants — the facts
// every accessor assumes: one row per owner, a bijective owner->row
// index, sorted owner IDs, and servers/chains rows of equal depth. It
// returns the first violation found, or nil. This is the structural
// half of the invariant checker's table-owners check; the semantic
// half (rows match the hierarchy) lives in internal/invariant.
func (t *Table) Audit() error {
	if len(t.index) != len(t.owners) {
		return fmt.Errorf("lm: index has %d entries for %d owners", len(t.index), len(t.owners))
	}
	if len(t.servers) != len(t.owners) || len(t.chains) != len(t.owners) {
		return fmt.Errorf("lm: %d owners but %d server rows / %d chain rows",
			len(t.owners), len(t.servers), len(t.chains))
	}
	prev := -1
	for row, v := range t.owners {
		if v <= prev {
			return fmt.Errorf("lm: owners unsorted or duplicated at %d (row %d)", v, row)
		}
		prev = v
		got, ok := t.index[v]
		if !ok || got != row {
			return fmt.Errorf("lm: owner %d indexed to row %d, stored at row %d", v, got, row)
		}
		if len(t.servers[row]) != len(t.chains[row]) {
			return fmt.Errorf("lm: owner %d has %d server levels but %d chain levels",
				v, len(t.servers[row]), len(t.chains[row]))
		}
	}
	return nil
}

// CorruptServer deliberately misroutes one live server entry to a
// different live owner, simulating a handoff that failed to rehome the
// entry. It exists for the invariant checker's fault-injection tests:
// the corrupted entry is still a live node, so only the rebuild
// differential (table-rebuild-equal) can detect it. salt picks the
// victim row deterministically. Returns false when the table has no
// entry that can be misrouted to a distinct owner.
func (t *Table) CorruptServer(salt uint64) bool {
	if len(t.owners) < 2 {
		return false
	}
	for off := 0; off < len(t.owners); off++ {
		row := int((salt + uint64(off)) % uint64(len(t.owners)))
		for k, srv := range t.servers[row] {
			if srv < 0 {
				continue
			}
			wrong := t.nextOwner(int(srv))
			if wrong < 0 || wrong == int(srv) {
				continue
			}
			t.servers[row][k] = int32(wrong)
			return true
		}
	}
	return false
}

// nextOwner returns a live owner different from v, or -1.
func (t *Table) nextOwner(v int) int {
	i := sort.SearchInts(t.owners, v)
	if i < len(t.owners) && t.owners[i] == v {
		i++
	}
	if i >= len(t.owners) {
		i = 0
	}
	if t.owners[i] == v {
		return -1
	}
	return t.owners[i]
}
