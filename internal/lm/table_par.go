package lm

import (
	"repro/internal/cluster"
	"repro/internal/par"
)

// Parallel incremental table update. The owner rows are independent —
// each row reads only the two snapshots, the (read-only) dirty set,
// and prev — so they are sharded into contiguous owner ranges, each
// shard appending into its own flat chain/server buffers with its own
// hash-descent key buffer. The shard outputs are then concatenated in
// shard order, reproducing exactly the packing the serial
// UpdateTableInto produces: same owners, same index, same flat
// backings, same row views.

// UpdateParScratch holds the reusable per-shard buffers of
// UpdateTableIntoPar. Not safe for concurrent use by two updates.
type UpdateParScratch struct {
	shards []updateShardBuf
}

type updateShardBuf struct {
	chain  []uint64
	srv    []int32
	path   []uint64
	rowEnd []int // per-row end offset within this shard's buffers
	keyBuf []uint64
}

// UpdateTableIntoPar is UpdateTableInto fanned out over pool p. A nil
// or single-worker pool falls back to the serial update. psc (nil =
// allocate fresh) supplies the per-shard buffers; reusing one scratch
// across ticks amortizes them. known is the maintainer's dirty-cluster
// export (nil recomputes it; see UpdateTableInto). The result is
// byte-identical to the serial path.
//
//manet:hotpath
func (s *Selector) UpdateTableIntoPar(
	dst *Table, sc *UpdateScratch, psc *UpdateParScratch,
	prev *Table,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
	known *cluster.DirtyClusters,
	p *par.Pool,
) *Table {
	if p.Workers() == 1 {
		return s.UpdateTableInto(dst, sc, prev, prevH, prevIDs, nextH, nextIDs, known)
	}
	if dst == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the double-buffered table once
		dst = &Table{}
	}
	if dst == prev {
		panic("lm: UpdateTableIntoPar dst must not alias prev")
	}
	if sc == nil {
		//lint:ignore hotpath warm-up: callers reuse one scratch across ticks
		sc = &UpdateScratch{}
	}
	if psc == nil {
		//lint:ignore hotpath warm-up: callers reuse one parallel scratch across ticks
		psc = &UpdateParScratch{}
	}
	// The dirty-subtree analysis is cheap (per-cluster, not per-row) and
	// feeds every shard read-only, so it stays serial.
	var dirty, own dirtySet
	if known != nil {
		dirty = dirtySet(known.ByLevel)
		own = sc.ownFromKnown(dirty, prevH, prevIDs, nextH, nextIDs)
	} else {
		dirty = sc.dirtySubtrees(prevH, prevIDs, nextH, nextIDs)
		own = sc.own
	}
	rev := sc.buildRev(nextH, nextIDs, dirty, own)
	useAff := sc.affectedOwners(dirty, prev, prevH, prevIDs, nextH)
	owners := nextH.LevelNodes(0)
	dst.owners = owners
	if dst.index == nil {
		//lint:ignore hotpath warm-up: the first update builds the reused row index
		dst.index = make(map[int]int, len(owners))
	} else {
		clear(dst.index)
	}
	for row, v := range owners {
		dst.index[v] = row
	}

	// Dirty-row list: the rows needing a real recompute (affected by a
	// dirty subtree, or with no previous row to copy). Shard boundaries
	// split THIS list evenly, so election-heavy work balances even when
	// churn concentrates in one corner of the owner space; the clean
	// rows in between are wholesale copies of prev.
	sc.affRows = sc.affRows[:0]
	if useAff {
		for row, v := range owners {
			if !sc.affBits[v] {
				if _, ok := prev.index[v]; ok {
					continue
				}
			}
			sc.affRows = append(sc.affRows, row)
		}
	}

	// The shard count tracks the owner count, not the dirty-row count,
	// so the per-shard flat backings keep their steady-state capacity
	// across ticks instead of being regrown whenever churn fluctuates.
	shards := par.Shards(p.Workers(), len(owners))
	for len(psc.shards) < shards {
		psc.shards = append(psc.shards, updateShardBuf{})
	}
	affRows := sc.affRows

	// Fan out: each shard owns a contiguous owner-row range and fills
	// its own buffers. Without dirty-row analysis the ranges split the
	// owners evenly; with it, shard sh starts at the owner row of its
	// first assigned dirty row (shard 0 backfills from row 0, the last
	// shard runs to the end).
	//lint:ignore hotpath per-tick shard callback closure, counted in the tick alloc budget
	p.RunShards(shards, func(_, sh int) {
		lo, hi := par.Shard(len(owners), shards, sh)
		if useAff {
			lo = 0
			if sh > 0 {
				if aLo, _ := par.Shard(len(affRows), shards, sh); aLo < len(affRows) {
					lo = affRows[aLo]
				} else {
					lo = len(owners)
				}
			}
			hi = len(owners)
			if sh+1 < shards {
				if nLo, _ := par.Shard(len(affRows), shards, sh+1); nLo < len(affRows) {
					hi = affRows[nLo]
				}
			}
		}
		b := &psc.shards[sh]
		b.chain = b.chain[:0]
		b.srv = b.srv[:0]
		b.path = b.path[:0]
		b.rowEnd = b.rowEnd[:0]
		for _, v := range owners[lo:hi] {
			if useAff && !sc.affBits[v] {
				if r, ok := prev.index[v]; ok {
					b.chain = append(b.chain, prev.chains[r]...)
					b.srv = append(b.srv, prev.servers[r]...)
					b.path = append(b.path, prev.paths[r]...)
					b.rowEnd = append(b.rowEnd, len(b.chain))
					continue
				}
			}
			b.chain, b.srv, b.path, b.keyBuf = s.appendRow(
				v, dirty, rev, sc.revKeys, prev, nextH, nextIDs, b.chain, b.srv, b.path, b.keyBuf)
			b.rowEnd = append(b.rowEnd, len(b.chain))
		}
	})

	// Ordered merge: concatenating shard buffers in shard order yields
	// the serial packing.
	dst.servers = dst.servers[:0]
	dst.chains = dst.chains[:0]
	dst.paths = dst.paths[:0]
	dst.srvBack = dst.srvBack[:0]
	dst.chainBack = dst.chainBack[:0]
	dst.pathBack = dst.pathBack[:0]
	sc.rowEnd = sc.rowEnd[:0]
	for sh := 0; sh < shards; sh++ {
		b := &psc.shards[sh]
		base := len(dst.chainBack)
		dst.chainBack = append(dst.chainBack, b.chain...)
		dst.srvBack = append(dst.srvBack, b.srv...)
		dst.pathBack = append(dst.pathBack, b.path...)
		for _, end := range b.rowEnd {
			sc.rowEnd = append(sc.rowEnd, base+end)
		}
	}
	// Fix up the row views only after the backings stopped growing.
	// Path-column offsets derive from the chain lengths (see
	// UpdateTableInto).
	off, pOff := 0, 0
	for _, end := range sc.rowEnd {
		n := end - off
		pEnd := pOff + pathOff(n+1)
		dst.servers = append(dst.servers, dst.srvBack[off:end:end])
		dst.chains = append(dst.chains, dst.chainBack[off:end:end])
		dst.paths = append(dst.paths, dst.pathBack[pOff:pEnd:pEnd])
		off, pOff = end, pEnd
	}
	return dst
}
