package lm

import (
	"repro/internal/cluster"
	"repro/internal/par"
)

// Parallel incremental table update. The owner rows are independent —
// each row reads only the two snapshots, the (read-only) dirty set,
// and prev — so they are sharded into contiguous owner ranges, each
// shard appending into its own flat chain/server buffers with its own
// hash-descent key buffer. The shard outputs are then concatenated in
// shard order, reproducing exactly the packing the serial
// UpdateTableInto produces: same owners, same index, same flat
// backings, same row views.

// UpdateParScratch holds the reusable per-shard buffers of
// UpdateTableIntoPar. Not safe for concurrent use by two updates.
type UpdateParScratch struct {
	shards []updateShardBuf
}

type updateShardBuf struct {
	chain  []uint64
	srv    []int32
	rowEnd []int // per-row end offset within this shard's buffers
	keyBuf []uint64
}

// UpdateTableIntoPar is UpdateTableInto fanned out over pool p. A nil
// or single-worker pool falls back to the serial update. psc (nil =
// allocate fresh) supplies the per-shard buffers; reusing one scratch
// across ticks amortizes them. The result is byte-identical to the
// serial path.
//
//manet:hotpath
func (s *Selector) UpdateTableIntoPar(
	dst *Table, sc *UpdateScratch, psc *UpdateParScratch,
	prev *Table,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
	p *par.Pool,
) *Table {
	if p.Workers() == 1 {
		return s.UpdateTableInto(dst, sc, prev, prevH, prevIDs, nextH, nextIDs)
	}
	if dst == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the double-buffered table once
		dst = &Table{}
	}
	if dst == prev {
		panic("lm: UpdateTableIntoPar dst must not alias prev")
	}
	if sc == nil {
		//lint:ignore hotpath warm-up: callers reuse one scratch across ticks
		sc = &UpdateScratch{}
	}
	if psc == nil {
		//lint:ignore hotpath warm-up: callers reuse one parallel scratch across ticks
		psc = &UpdateParScratch{}
	}
	// The dirty-subtree analysis is cheap (per-cluster, not per-row) and
	// feeds every shard read-only, so it stays serial.
	dirty := sc.dirtySubtrees(prevH, prevIDs, nextH, nextIDs)
	owners := nextH.LevelNodes(0)
	dst.owners = owners
	if dst.index == nil {
		//lint:ignore hotpath warm-up: the first update builds the reused row index
		dst.index = make(map[int]int, len(owners))
	} else {
		clear(dst.index)
	}
	for row, v := range owners {
		dst.index[v] = row
	}

	shards := par.Shards(p.Workers(), len(owners))
	for len(psc.shards) < shards {
		psc.shards = append(psc.shards, updateShardBuf{})
	}

	// Fan out: each shard owns the contiguous owner range
	// Shard(len(owners), shards, sh) and fills its own buffers.
	//lint:ignore hotpath per-tick shard callback closure, counted in the tick alloc budget
	p.RunShards(shards, func(_, sh int) {
		lo, hi := par.Shard(len(owners), shards, sh)
		b := &psc.shards[sh]
		b.chain = b.chain[:0]
		b.srv = b.srv[:0]
		b.rowEnd = b.rowEnd[:0]
		for _, v := range owners[lo:hi] {
			b.chain, b.srv, b.keyBuf = s.appendRow(
				v, dirty, prev, nextH, nextIDs, b.chain, b.srv, b.keyBuf)
			b.rowEnd = append(b.rowEnd, len(b.chain))
		}
	})

	// Ordered merge: concatenating shard buffers in shard order yields
	// the serial packing.
	dst.servers = dst.servers[:0]
	dst.chains = dst.chains[:0]
	dst.srvBack = dst.srvBack[:0]
	dst.chainBack = dst.chainBack[:0]
	sc.rowEnd = sc.rowEnd[:0]
	for sh := 0; sh < shards; sh++ {
		b := &psc.shards[sh]
		base := len(dst.chainBack)
		dst.chainBack = append(dst.chainBack, b.chain...)
		dst.srvBack = append(dst.srvBack, b.srv...)
		for _, end := range b.rowEnd {
			sc.rowEnd = append(sc.rowEnd, base+end)
		}
	}
	// Fix up the row views only after both backings stopped growing.
	off := 0
	for _, end := range sc.rowEnd {
		dst.servers = append(dst.servers, dst.srvBack[off:end:end])
		dst.chains = append(dst.chains, dst.chainBack[off:end:end])
		off = end
	}
	return dst
}
