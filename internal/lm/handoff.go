package lm

import (
	"sort"

	"repro/internal/topology"
)

// Handoff accounting (paper §4 and §5).
//
// Between two consecutive hierarchy snapshots the server table is
// recomputed; every changed (owner, level) assignment is one LM entry
// transfer, costed in packet transmissions by a HopModel. Each
// transfer is attributed to a cause:
//
//   - Migration (φ): the trigger is an individual node crossing a
//     level-1 cluster boundary while the (logical) cluster population
//     stays intact — either the entry's owner migrated (its logical
//     ancestors changed) or its previous server migrated out of the
//     serving cluster, handing over the entries it stored (§4's two
//     directions).
//   - Reorganization (γ): everything else — cluster birth/death,
//     wholesale cluster moves across level-k links, and the internal
//     re-hashing they induce (§5's events i–vii).
//
// Because chains are *logical* (cluster.IdentityTracker), clusterhead
// relabels with stable membership produce no table diff and hence no
// phantom handoff. The paper's per-node-per-second φ_k and γ_k are
// these packet totals divided by |V|·T by the caller.

// Cause distinguishes the overhead families. The paper's φ and γ cover
// only *handoff* — relocation of existing LM entries between servers;
// first-time registrations (a level newly reachable above an owner, or
// a node rejoining the connected component) are location-registration
// overhead, which the paper delegates to its companion reference [17]
// and which is therefore tallied separately here.
type Cause int

// Causes.
const (
	CauseMigration    Cause = iota // φ: node migration (§4)
	CauseReorg                     // γ: cluster reorganization (§5)
	CauseRegistration              // first registration of an entry ([17], not φ/γ)
	CauseDrop                      // entry dropped with its level (free)
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseMigration:
		return "migration"
	case CauseReorg:
		return "reorg"
	case CauseRegistration:
		return "registration"
	default:
		return "drop"
	}
}

// Transfer is one accounted LM entry movement.
type Transfer struct {
	Owner   int
	Level   int
	From    int // previous server (-1: initial registration)
	To      int // new server (-1: entry dropped)
	Packets int
	Cause   Cause
}

// Totals accumulates handoff overhead per level and cause.
type Totals struct {
	// PhiPackets[k] / GammaPackets[k]: packet transmissions for
	// level-k entries (index 0 unused).
	PhiPackets   []float64
	GammaPackets []float64
	// PhiEntries / GammaEntries: entry-transfer counts.
	PhiEntries   []int64
	GammaEntries []int64
	// RegPackets / RegEntries: first-time registrations (reference
	// [17] overhead, reported separately from handoff).
	RegPackets []float64
	RegEntries []int64
	// UpdatePackets[k]: owner-driven location updates — after changing
	// its level-k cluster the owner sends its new hierarchical address
	// to its (possibly unchanged) level-k server. This is the
	// location-registration traffic of reference [17], also separate
	// from φ/γ handoff.
	UpdatePackets []float64
	UpdateEvents  []int64
	// DropEntries: entries that vanished with their level (free).
	DropEntries []int64
	// MigrationEvents[k]: logical node-level-k cluster changes
	// attributed to individual migration (the paper's f_k numerator).
	MigrationEvents []int64
	// MembershipEvents[k]: all logical level-k cluster changes.
	MembershipEvents []int64
}

// grow ensures the slices cover level k.
func (t *Totals) grow(k int) {
	for len(t.PhiPackets) <= k {
		t.PhiPackets = append(t.PhiPackets, 0)
		t.GammaPackets = append(t.GammaPackets, 0)
		t.PhiEntries = append(t.PhiEntries, 0)
		t.GammaEntries = append(t.GammaEntries, 0)
		t.RegPackets = append(t.RegPackets, 0)
		t.RegEntries = append(t.RegEntries, 0)
		t.UpdatePackets = append(t.UpdatePackets, 0)
		t.UpdateEvents = append(t.UpdateEvents, 0)
		t.DropEntries = append(t.DropEntries, 0)
		t.MigrationEvents = append(t.MigrationEvents, 0)
		t.MembershipEvents = append(t.MembershipEvents, 0)
	}
}

// MaxLevel returns the highest level with data.
func (t *Totals) MaxLevel() int { return len(t.PhiPackets) - 1 }

// PhiTotal returns Σ_k PhiPackets[k].
func (t *Totals) PhiTotal() float64 { return sum(t.PhiPackets) }

// GammaTotal returns Σ_k GammaPackets[k].
func (t *Totals) GammaTotal() float64 { return sum(t.GammaPackets) }

// RegTotal returns Σ_k RegPackets[k].
func (t *Totals) RegTotal() float64 { return sum(t.RegPackets) }

// UpdateTotal returns Σ_k UpdatePackets[k].
func (t *Totals) UpdateTotal() float64 { return sum(t.UpdatePackets) }

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// rootChange describes the lowest-level logical membership change of a
// node in one tick.
type rootChange struct {
	minLevel int
	pure     bool // individual level-1 migration between persistent clusters
}

// Accountant turns table diffs into classified packet counts. It owns
// reusable per-tick scratch, so it is not safe for concurrent use; the
// slice returned by Apply is valid only until the next Apply call.
type Accountant struct {
	Hop topology.HopModel

	roots     map[int]rootChange
	changedAt map[int]uint64
	prevLive1 map[uint64]bool
	nextLive1 map[uint64]bool
	seen      map[int]bool
	owners    []int
	diffs     []TableDiff
	transfers []Transfer
}

// NewAccountant returns an accountant using the given hop model.
func NewAccountant(hop topology.HopModel) *Accountant {
	return &Accountant{
		Hop:       hop,
		roots:     map[int]rootChange{},
		changedAt: map[int]uint64{},
		seen:      map[int]bool{},
	}
}

// Apply accounts one tick's handoff between consecutive tables. It
// returns the classified transfers — reused by the next Apply call, so
// callers that retain them must copy — and accumulates into totals.
//
//manet:hotpath
func (a *Accountant) Apply(prevT, nextT *Table, totals *Totals) []Transfer {
	roots, changedAt := a.chainChanges(prevT, nextT, totals)

	// Owner-driven location updates ([17]): an owner whose level-k
	// cluster changed refreshes its level-k entry at the current
	// server, whether or not the serving node moved. Owners are
	// visited in sorted order so float accumulation is deterministic.
	owners := a.owners[:0]
	for owner := range changedAt {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	a.owners = owners
	for _, owner := range owners {
		levels := changedAt[owner]
		for k := 1; levels>>uint(k) != 0; k++ {
			if levels&(1<<uint(k)) == 0 {
				continue
			}
			srv := nextT.Server(owner, k)
			if srv < 0 {
				continue
			}
			totals.grow(k)
			totals.UpdatePackets[k] += float64(a.Hop.Hops(owner, srv))
			totals.UpdateEvents[k]++
		}
	}

	a.diffs = appendTableDiffs(a.diffs[:0], prevT, nextT, a.seen)
	diffs := a.diffs
	transfers := a.transfers[:0]
	for _, td := range diffs {
		totals.grow(td.Level)
		var packets int
		var cause Cause
		switch {
		case td.OldServer >= 0 && td.NewServer >= 0:
			// Handoff proper: an existing entry relocates.
			packets = a.Hop.Hops(td.OldServer, td.NewServer)
			cause = CauseReorg
			if lv, ok := changedAt[td.Owner]; ok && lv&(1<<uint(td.Level)) != 0 {
				// Owner-side trigger: the owner's level-k cluster changed.
				if rc := roots[td.Owner]; rc.pure {
					cause = CauseMigration
				}
			} else {
				// Server-side trigger: the assignment moved without the
				// owner moving; attribute to the old server's own motion
				// when that motion was an individual migration.
				if rc, ok := roots[td.OldServer]; ok && rc.pure {
					cause = CauseMigration
				}
			}
			if cause == CauseMigration {
				totals.PhiPackets[td.Level] += float64(packets)
				totals.PhiEntries[td.Level]++
			} else {
				totals.GammaPackets[td.Level] += float64(packets)
				totals.GammaEntries[td.Level]++
			}
		case td.OldServer < 0 && td.NewServer >= 0:
			// First registration of this entry: location-registration
			// overhead ([17]), not handoff.
			packets = a.Hop.Hops(td.Owner, td.NewServer)
			cause = CauseRegistration
			totals.RegPackets[td.Level] += float64(packets)
			totals.RegEntries[td.Level]++
		default:
			// Entry dropped with the level; no transfer needed.
			cause = CauseDrop
			totals.DropEntries[td.Level]++
		}
		transfers = append(transfers, Transfer{
			Owner: td.Owner, Level: td.Level,
			From: td.OldServer, To: td.NewServer,
			Packets: packets, Cause: cause,
		})
	}
	a.transfers = transfers
	return transfers
}

// chainChanges extracts per-node logical membership changes between
// two tables: the root-change classification for φ/γ attribution, a
// per-node bitmask of changed levels, and the f_k event counters. The
// returned maps are accountant scratch, valid until the next call.
//
//manet:hotpath
func (a *Accountant) chainChanges(prevT, nextT *Table, totals *Totals) (map[int]rootChange, map[int]uint64) {
	if a.roots == nil { // zero-value Accountant (constructed without NewAccountant)
		//lint:ignore hotpath warm-up: zero-value Accountant builds its scratch maps once
		a.roots = map[int]rootChange{}
		//lint:ignore hotpath warm-up: zero-value Accountant builds its scratch maps once
		a.changedAt = map[int]uint64{}
		//lint:ignore hotpath warm-up: zero-value Accountant builds its scratch maps once
		a.seen = map[int]bool{}
	}
	roots := a.roots
	changedAt := a.changedAt
	clear(roots)
	clear(changedAt)
	if prevT == nil {
		return roots, changedAt
	}
	liveFilled := false // lazy level-1 liveness
	//lint:ignore hotpath non-escaping lazy-init closure, stack-allocated in practice
	live1 := func() (map[uint64]bool, map[uint64]bool) {
		if !liveFilled {
			a.prevLive1 = prevT.LiveAtInto(1, a.prevLive1)
			a.nextLive1 = nextT.LiveAtInto(1, a.nextLive1)
			liveFilled = true
		}
		return a.prevLive1, a.nextLive1
	}
	for _, v := range prevT.owners {
		pc := prevT.Chain(v)
		nc := nextT.Chain(v)
		depth := len(pc)
		if len(nc) > depth {
			depth = len(nc)
		}
		for i := 0; i < depth; i++ {
			var old, nw uint64
			haveOld, haveNew := i < len(pc), i < len(nc)
			if haveOld {
				old = pc[i]
			}
			if haveNew {
				nw = nc[i]
			}
			if haveOld == haveNew && old == nw {
				continue
			}
			k := i + 1
			totals.grow(k)
			totals.MembershipEvents[k]++
			changedAt[v] |= 1 << uint(k)
			rc, seen := roots[v]
			if !seen || k < rc.minLevel {
				pure := false
				if k == 1 && haveOld && haveNew {
					pl, nl := live1()
					pure = pl[nw] && nl[old]
				}
				roots[v] = rootChange{minLevel: k, pure: pure}
			}
		}
		if rc, ok := roots[v]; ok && rc.pure {
			// Count the pure migration at every level it touched.
			for k := 1; k <= depth; k++ {
				if changedAt[v]&(1<<uint(k)) != 0 {
					totals.grow(k)
					totals.MigrationEvents[k]++
				}
			}
		}
	}
	return roots, changedAt
}
