// Package lm implements the paper's primary contribution: clustered
// hierarchy location management (CHLM, §3.2) and the accounting of its
// handoff overhead (§4, §5).
//
// Each node v maintains one LM server per hierarchy level k = 1..L.
// The level-k server is found by hashing v against the member clusters
// of v's level-k cluster, then recursively against the members of the
// chosen cluster, down to a single level-0 node — the CHLM adaptation
// of GLS server selection. The paper's two requirements on the hash
// (unambiguous selection, equitable load) are met by rendezvous
// hashing; the GLS circular-successor rule of Eq. (5) is also
// implemented to demonstrate the load skew the paper warns about.
//
// Hashing is keyed on *stable logical cluster IDs* (see
// cluster.IdentityTracker), not on raw clusterhead IDs: a clusterhead
// relabel must not re-home entries whose clusters persist. Ablation A4
// measures the overhead explosion of naive head-ID keying.
package lm

import (
	"fmt"
)

// HashFamily selects one candidate from a list, deterministically.
// keys are the candidates' stable hash keys (logical cluster IDs, or
// level-0 node IDs at the leaf step of the descent); Select returns
// the index of the winner.
type HashFamily interface {
	// Select returns the winning index in keys (which must be
	// non-empty) for the given owner and level.
	Select(owner uint64, level int, keys []uint64) int
	// Name identifies the family in reports.
	Name() string
}

// Rendezvous is highest-random-weight hashing: the candidate
// minimizing FNV-1a(owner, level, key, salt) wins. Changing one
// candidate relocates only the owners that hashed to it, and load is
// equitable because the hash is uniform in all arguments — exactly the
// two CHLM requirements of §3.2.
type Rendezvous struct {
	Salt uint64
}

// Name implements HashFamily.
func (r Rendezvous) Name() string { return "rendezvous" }

// Select implements HashFamily.
func (r Rendezvous) Select(owner uint64, level int, keys []uint64) int {
	if len(keys) == 0 {
		panic("lm: Select with no candidates")
	}
	best := 0
	bestW := hash4(owner, uint64(level), keys[0], r.Salt)
	for i := 1; i < len(keys); i++ {
		w := hash4(owner, uint64(level), keys[i], r.Salt)
		if w < bestW || (w == bestW && keys[i] < keys[best]) {
			best, bestW = i, w
		}
	}
	return best
}

// Successor is the GLS rule of Eq. (5): choose the candidate z
// minimizing (z - owner - 1) mod IDSpace, i.e. the least key greater
// than the owner, wrapping circularly. The paper notes (§3.2) that
// applying this rule directly to CHLM's small, clustered candidate
// sets concentrates load ("a disproportionately large number of nodes
// ... selecting 45"); ablation A3 measures that skew.
type Successor struct {
	IDSpace int
}

// Name implements HashFamily.
func (s Successor) Name() string { return "successor" }

// Select implements HashFamily.
func (s Successor) Select(owner uint64, level int, keys []uint64) int {
	if len(keys) == 0 {
		panic("lm: Select with no candidates")
	}
	m := uint64(s.IDSpace)
	if s.IDSpace <= 0 {
		panic(fmt.Sprintf("lm: Successor.IDSpace = %d", s.IDSpace))
	}
	best := 0
	dist := func(k uint64) uint64 { return (k%m + m - owner%m - 1) % m }
	bestD := dist(keys[0])
	for i := 1; i < len(keys); i++ {
		if d := dist(keys[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// hash4 mixes four words with FNV-1a over their bytes followed by a
// finalizer, giving a uniform 64-bit weight.
func hash4(a, b, c, d uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x00000100000001B3
	)
	h := uint64(offset)
	for _, w := range [4]uint64{a, b, c, d} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xFF
			h *= prime
		}
	}
	// Final avalanche (splitmix64 mixer).
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

var (
	_ HashFamily = Rendezvous{}
	_ HashFamily = Successor{}
)
