package lm

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// Table is the complete server-assignment snapshot: for every owner
// node and hierarchy level k, the level-0 node currently serving the
// owner's level-k location entry (-1 where the hierarchy does not
// reach level k above the owner). It also records each owner's
// *logical* ancestor chain, which the incremental update and the
// handoff accountant consume: comparing logical chains distinguishes
// real cluster membership changes from head relabels.
type Table struct {
	owners  []int       // sorted level-0 node IDs
	index   map[int]int // owner -> row
	servers [][]int32   // [row][k-1] -> server node, -1 if none
	chains  [][]uint64  // [row][k-1] -> logical level-k ancestor
}

// Owners returns the sorted owner IDs covered by the table.
func (t *Table) Owners() []int { return t.owners }

// Server returns the level-k server of owner, or -1.
func (t *Table) Server(owner, k int) int {
	row, ok := t.index[owner]
	if !ok || k < 1 || k > len(t.servers[row]) {
		return -1
	}
	return int(t.servers[row][k-1])
}

// Chain returns owner's logical ancestor chain (shared slice; do not
// mutate), or nil.
func (t *Table) Chain(owner int) []uint64 {
	row, ok := t.index[owner]
	if !ok {
		return nil
	}
	return t.chains[row]
}

// Levels returns the number of levels allocated for owner's row.
func (t *Table) Levels(owner int) int {
	row, ok := t.index[owner]
	if !ok {
		return 0
	}
	return len(t.servers[row])
}

// Load returns, for every node that serves at least one entry, the
// number of (owner, level) entries it serves. This is the server-load
// distribution whose equity the paper requires.
func (t *Table) Load() map[int]int {
	load := map[int]int{}
	for _, row := range t.servers {
		for _, s := range row {
			if s >= 0 {
				load[int(s)]++
			}
		}
	}
	return load
}

// EntryCount returns the total number of live (owner, level) entries.
func (t *Table) EntryCount() int {
	n := 0
	for _, row := range t.servers {
		for _, s := range row {
			if s >= 0 {
				n++
			}
		}
	}
	return n
}

// LiveAt returns the set of logical cluster IDs appearing at level k
// in any owner's chain (every live cluster has at least one level-0
// descendant, so this enumerates the live clusters).
func (t *Table) LiveAt(k int) map[uint64]bool {
	out := map[uint64]bool{}
	if k < 1 {
		return out
	}
	for _, chain := range t.chains {
		if k <= len(chain) {
			out[chain[k-1]] = true
		}
	}
	return out
}

// Selector computes CHLM server assignments over a hierarchy with
// cluster identities.
type Selector struct {
	Hash HashFamily
}

// NewSelector returns a selector using the given hash family (nil
// means Rendezvous{}).
func NewSelector(h HashFamily) *Selector {
	if h == nil {
		h = Rendezvous{}
	}
	return &Selector{Hash: h}
}

// ServerFor resolves the level-0 node serving owner's level-k entry in
// hierarchy h: starting from the owner's level-k cluster, hash-select
// one member cluster per level down to a level-0 node (§3.2). Hash
// keys are logical cluster IDs (node IDs at the leaf step). Returns -1
// when the hierarchy does not reach level k above owner.
func (s *Selector) ServerFor(h *cluster.Hierarchy, ids *cluster.Identities, owner, k int) int {
	anc := h.Ancestor(owner, k)
	if anc < 0 {
		return -1
	}
	cur := anc
	for level := k; level >= 1; level-- {
		members := h.MembersAt(level, cur)
		if len(members) == 0 {
			// Structurally impossible in a valid hierarchy; fail loud.
			panic(fmt.Sprintf("lm: level-%d cluster %d has no members", level, cur))
		}
		idx := s.Hash.Select(uint64(owner), level, memberKeys(h, ids, level, members))
		cur = members[idx]
	}
	return cur
}

// memberKeys returns the hash keys of the level-(level-1) members of a
// level-`level` cluster: logical IDs for clusters, node IDs at level 1.
func memberKeys(h *cluster.Hierarchy, ids *cluster.Identities, level int, members []int) []uint64 {
	keys := make([]uint64, len(members))
	for i, m := range members {
		if level == 1 {
			keys[i] = uint64(m)
			continue
		}
		if id, ok := ids.Logical(level-1, m); ok {
			keys[i] = id
		} else {
			// Identity missing (should not happen for a tracked
			// snapshot); degrade to the physical ID.
			keys[i] = uint64(m)
		}
	}
	return keys
}

// BuildTable computes the full assignment table for h.
func (s *Selector) BuildTable(h *cluster.Hierarchy, ids *cluster.Identities) *Table {
	owners := h.LevelNodes(0)
	t := &Table{
		owners:  owners,
		index:   make(map[int]int, len(owners)),
		servers: make([][]int32, len(owners)),
		chains:  make([][]uint64, len(owners)),
	}
	for row, v := range owners {
		t.index[v] = row
		chain := ids.ChainOf(h, v)
		srv := make([]int32, len(chain))
		for i := range chain {
			srv[i] = int32(s.ServerFor(h, ids, v, i+1))
		}
		t.servers[row] = srv
		t.chains[row] = chain
	}
	return t
}

// UpdateTable computes the assignment table for next incrementally:
// rows are recomputed only for (owner, k) pairs whose logical level-k
// ancestor changed or whose ancestor's subtree had any membership
// change (the hash descent only inspects members lists inside that
// subtree, so everything else is provably unchanged). The result is
// always identical to BuildTable(nextH, nextIDs).
func (s *Selector) UpdateTable(
	prev *Table,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
) *Table {
	dirty := dirtySubtrees(prevH, prevIDs, nextH, nextIDs)
	owners := nextH.LevelNodes(0)
	t := &Table{
		owners:  owners,
		index:   make(map[int]int, len(owners)),
		servers: make([][]int32, len(owners)),
		chains:  make([][]uint64, len(owners)),
	}
	for row, v := range owners {
		t.index[v] = row
		chain := nextIDs.ChainOf(nextH, v)
		srv := make([]int32, len(chain))
		var prevChain []uint64
		var prevSrv []int32
		if prev != nil {
			if r, ok := prev.index[v]; ok {
				prevChain = prev.chains[r]
				prevSrv = prev.servers[r]
			}
		}
		for i, c := range chain {
			k := i + 1
			if i < len(prevChain) && prevChain[i] == c && !dirty.is(k, c) {
				srv[i] = prevSrv[i]
				continue
			}
			srv[i] = int32(s.ServerFor(nextH, nextIDs, v, k))
		}
		t.servers[row] = srv
		t.chains[row] = chain
	}
	return t
}

// dirtySet tracks logical clusters whose subtree membership changed,
// per level.
type dirtySet []map[uint64]bool

func (d dirtySet) is(k int, id uint64) bool {
	if k < 0 || k >= len(d) {
		return true // unknown level: be conservative
	}
	return d[k][id]
}

func (d dirtySet) mark(k int, id uint64) bool {
	if k < 0 || k >= len(d) {
		return false
	}
	if d[k][id] {
		return false
	}
	d[k][id] = true
	return true
}

// dirtySubtrees returns the logical clusters whose member-key sets
// differ between the two snapshots (including clusters present in only
// one), with dirtiness propagated to all ancestors in both snapshots.
func dirtySubtrees(
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
) dirtySet {
	maxL := prevH.L()
	if nextH.L() > maxL {
		maxL = nextH.L()
	}
	dirty := make(dirtySet, maxL+1)
	for k := range dirty {
		dirty[k] = map[uint64]bool{}
	}
	for k := 1; k <= maxL; k++ {
		pm := memberKeySets(prevH, prevIDs, k)
		nm := memberKeySets(nextH, nextIDs, k)
		//lint:ignore maprange order-free set marking; dirty membership is the only outcome
		for id, keys := range pm {
			nk, ok := nm[id]
			if !ok || !equalUints(keys, nk) {
				dirty.mark(k, id)
			}
		}
		//lint:ignore maprange order-free set marking; dirty membership is the only outcome
		for id := range nm {
			if _, ok := pm[id]; !ok {
				dirty.mark(k, id)
			}
		}
	}
	// Propagate upward in both snapshots: a descent from an ancestor
	// may pass through a dirty cluster. Snapshot the level's IDs in
	// sorted order first — propagateUp mutates the dirty set while we
	// walk it, and ranging over a map under mutation is unspecified.
	for k := 1; k <= maxL; k++ {
		ids := make([]uint64, 0, len(dirty[k]))
		for id := range dirty[k] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			propagateUp(prevH, prevIDs, k, id, dirty)
			propagateUp(nextH, nextIDs, k, id, dirty)
		}
	}
	return dirty
}

// memberKeySets maps each live logical level-k cluster to its sorted
// member hash keys.
func memberKeySets(h *cluster.Hierarchy, ids *cluster.Identities, k int) map[uint64][]uint64 {
	out := map[uint64][]uint64{}
	if k > h.L() {
		return out
	}
	for _, head := range h.LevelNodes(k) {
		id, ok := ids.Logical(k, head)
		if !ok {
			continue
		}
		members := h.MembersAt(k, head)
		keys := memberKeys(h, ids, k, members)
		sorted := append([]uint64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out[id] = sorted
	}
	return out
}

// propagateUp marks the ancestors of the level-k cluster with the
// given logical ID dirty, within one snapshot.
func propagateUp(h *cluster.Hierarchy, ids *cluster.Identities, k int, id uint64, dirty dirtySet) {
	// Find the physical head carrying this logical ID.
	head := -1
	for _, hd := range h.LevelNodes(k) {
		if lid, ok := ids.Logical(k, hd); ok && lid == id {
			head = hd
			break
		}
	}
	if head < 0 {
		return
	}
	cur := head
	for j := k; j < h.L(); j++ {
		lvl := h.Level(j)
		if lvl == nil || lvl.Member == nil {
			return
		}
		parent, ok := lvl.Member[cur]
		if !ok {
			return
		}
		pid, ok := ids.Logical(j+1, parent)
		if !ok {
			return
		}
		if !dirty.mark(j+1, pid) {
			return // already propagated through here
		}
		cur = parent
	}
}

func equalUints(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TableDiff reports every (owner, level) assignment change between two
// tables, ordered by (owner, level).
type TableDiff struct {
	Owner, Level         int
	OldServer, NewServer int // -1 when absent on that side
}

// DiffTables lists all assignment changes from prev to next.
func DiffTables(prev, next *Table) []TableDiff {
	var out []TableDiff
	seen := map[int]bool{}
	for _, v := range next.owners {
		seen[v] = true
		nRow := next.index[v]
		maxK := len(next.servers[nRow])
		inPrev := false
		if prev != nil {
			if r, ok := prev.index[v]; ok {
				inPrev = true
				if len(prev.servers[r]) > maxK {
					maxK = len(prev.servers[r])
				}
			}
		}
		for k := 1; k <= maxK; k++ {
			oldS := -1
			if inPrev {
				oldS = prev.Server(v, k)
			}
			newS := next.Server(v, k)
			if oldS != newS {
				out = append(out, TableDiff{Owner: v, Level: k, OldServer: oldS, NewServer: newS})
			}
		}
	}
	if prev != nil {
		for _, v := range prev.owners {
			if seen[v] {
				continue
			}
			for k := 1; k <= prev.Levels(v); k++ {
				if s := prev.Server(v, k); s >= 0 {
					out = append(out, TableDiff{Owner: v, Level: k, OldServer: s, NewServer: -1})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return out[i].Level < out[j].Level
	})
	return out
}
