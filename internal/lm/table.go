package lm

import (
	"fmt"
	"slices"

	"repro/internal/cluster"
)

// Table is the complete server-assignment snapshot: for every owner
// node and hierarchy level k, the level-0 node currently serving the
// owner's level-k location entry (-1 where the hierarchy does not
// reach level k above the owner). It also records each owner's
// *logical* ancestor chain, which the incremental update and the
// handoff accountant consume: comparing logical chains distinguishes
// real cluster membership changes from head relabels.
type Table struct {
	owners  []int       // sorted level-0 node IDs
	index   map[int]int // owner -> row
	servers [][]int32   // [row][k-1] -> server node, -1 if none
	chains  [][]uint64  // [row][k-1] -> logical level-k ancestor

	// Flat backing for the row slices when built by UpdateTableInto;
	// nil for tables built row-by-row. Owned by this table so that
	// double-buffered tables never share storage.
	srvBack   []int32
	chainBack []uint64
}

// Owners returns the sorted owner IDs covered by the table.
func (t *Table) Owners() []int { return t.owners }

// Server returns the level-k server of owner, or -1.
func (t *Table) Server(owner, k int) int {
	row, ok := t.index[owner]
	if !ok || k < 1 || k > len(t.servers[row]) {
		return -1
	}
	return int(t.servers[row][k-1])
}

// Chain returns owner's logical ancestor chain (shared slice; do not
// mutate), or nil.
func (t *Table) Chain(owner int) []uint64 {
	row, ok := t.index[owner]
	if !ok {
		return nil
	}
	return t.chains[row]
}

// Levels returns the number of levels allocated for owner's row.
func (t *Table) Levels(owner int) int {
	row, ok := t.index[owner]
	if !ok {
		return 0
	}
	return len(t.servers[row])
}

// Load returns, for every node that serves at least one entry, the
// number of (owner, level) entries it serves. This is the server-load
// distribution whose equity the paper requires.
func (t *Table) Load() map[int]int {
	load := map[int]int{}
	for _, row := range t.servers {
		for _, s := range row {
			if s >= 0 {
				load[int(s)]++
			}
		}
	}
	return load
}

// EntryCount returns the total number of live (owner, level) entries.
func (t *Table) EntryCount() int {
	n := 0
	for _, row := range t.servers {
		for _, s := range row {
			if s >= 0 {
				n++
			}
		}
	}
	return n
}

// LiveAt returns the set of logical cluster IDs appearing at level k
// in any owner's chain (every live cluster has at least one level-0
// descendant, so this enumerates the live clusters).
func (t *Table) LiveAt(k int) map[uint64]bool {
	return t.LiveAtInto(k, nil)
}

// LiveAtInto is LiveAt filling dst (cleared first; nil allocates) so
// per-tick consumers can reuse one map.
//
//manet:hotpath
func (t *Table) LiveAtInto(k int, dst map[uint64]bool) map[uint64]bool {
	if dst == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the reused liveness set once
		dst = map[uint64]bool{}
	} else {
		clear(dst)
	}
	if k < 1 {
		return dst
	}
	for _, chain := range t.chains {
		if k <= len(chain) {
			dst[chain[k-1]] = true
		}
	}
	return dst
}

// Selector computes CHLM server assignments over a hierarchy with
// cluster identities.
type Selector struct {
	Hash HashFamily
}

// NewSelector returns a selector using the given hash family (nil
// means Rendezvous{}).
func NewSelector(h HashFamily) *Selector {
	if h == nil {
		h = Rendezvous{}
	}
	return &Selector{Hash: h}
}

// ServerFor resolves the level-0 node serving owner's level-k entry in
// hierarchy h: starting from the owner's level-k cluster, hash-select
// one member cluster per level down to a level-0 node (§3.2). Hash
// keys are logical cluster IDs (node IDs at the leaf step). Returns -1
// when the hierarchy does not reach level k above owner.
func (s *Selector) ServerFor(h *cluster.Hierarchy, ids *cluster.Identities, owner, k int) int {
	anc := h.Ancestor(owner, k)
	if anc < 0 {
		return -1
	}
	cur := anc
	for level := k; level >= 1; level-- {
		members := h.MembersAt(level, cur)
		if len(members) == 0 {
			// Structurally impossible in a valid hierarchy; fail loud.
			panic(fmt.Sprintf("lm: level-%d cluster %d has no members", level, cur))
		}
		idx := s.Hash.Select(uint64(owner), level, memberKeys(h, ids, level, members))
		cur = members[idx]
	}
	return cur
}

// memberKeys returns the hash keys of the level-(level-1) members of a
// level-`level` cluster: logical IDs for clusters, node IDs at level 1.
func memberKeys(h *cluster.Hierarchy, ids *cluster.Identities, level int, members []int) []uint64 {
	return appendMemberKeys(make([]uint64, 0, len(members)), ids, level, members)
}

// appendMemberKeys appends the hash keys of members to dst — the
// allocation-free form used by the incremental update path.
func appendMemberKeys(dst []uint64, ids *cluster.Identities, level int, members []int) []uint64 {
	for _, m := range members {
		if level == 1 {
			dst = append(dst, uint64(m))
			continue
		}
		if id, ok := ids.Logical(level-1, m); ok {
			dst = append(dst, id)
		} else {
			// Identity missing (should not happen for a tracked
			// snapshot); degrade to the physical ID.
			dst = append(dst, uint64(m))
		}
	}
	return dst
}

// serverForBuf is ServerFor with a caller-owned key buffer and no
// intermediate allocations; it returns the server and the (possibly
// grown) buffer.
func (s *Selector) serverForBuf(
	h *cluster.Hierarchy, ids *cluster.Identities, owner, k int, buf []uint64,
) (int, []uint64) {
	cur := owner
	for j := 0; j < k; j++ {
		m, ok := h.Level(j).Member[cur]
		if !ok {
			return -1, buf
		}
		cur = m
	}
	for level := k; level >= 1; level-- {
		members := h.MembersAt(level, cur)
		if len(members) == 0 {
			// Structurally impossible in a valid hierarchy; fail loud.
			panic(fmt.Sprintf("lm: level-%d cluster %d has no members", level, cur))
		}
		buf = appendMemberKeys(buf[:0], ids, level, members)
		idx := s.Hash.Select(uint64(owner), level, buf)
		cur = members[idx]
	}
	return cur, buf
}

// BuildTable computes the full assignment table for h.
func (s *Selector) BuildTable(h *cluster.Hierarchy, ids *cluster.Identities) *Table {
	owners := h.LevelNodes(0)
	t := &Table{
		owners:  owners,
		index:   make(map[int]int, len(owners)),
		servers: make([][]int32, len(owners)),
		chains:  make([][]uint64, len(owners)),
	}
	for row, v := range owners {
		t.index[v] = row
		chain := ids.ChainOf(h, v)
		srv := make([]int32, len(chain))
		for i := range chain {
			srv[i] = int32(s.ServerFor(h, ids, v, i+1))
		}
		t.servers[row] = srv
		t.chains[row] = chain
	}
	return t
}

// UpdateTable computes the assignment table for next incrementally:
// rows are recomputed only for (owner, k) pairs whose logical level-k
// ancestor changed or whose ancestor's subtree had any membership
// change (the hash descent only inspects members lists inside that
// subtree, so everything else is provably unchanged). The result is
// always identical to BuildTable(nextH, nextIDs).
func (s *Selector) UpdateTable(
	prev *Table,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
) *Table {
	return s.UpdateTableInto(nil, nil, prev, prevH, prevIDs, nextH, nextIDs)
}

// UpdateScratch holds the reusable buffers of UpdateTableInto: the
// dirty-subtree sets, member-key comparison maps and their flat
// backings, and the hash-descent key buffer. Not safe for concurrent
// use.
type UpdateScratch struct {
	dirty          dirtySet
	pm, nm         map[uint64][]uint64
	pmBack, nmBack []uint64
	spans          []keySpan
	idsBuf         []uint64
	keyBuf         []uint64
	rowEnd         []int
}

type keySpan struct {
	id         uint64
	start, end int
}

// UpdateTableInto is UpdateTable with caller-owned storage: dst (nil =
// allocate fresh) is overwritten in place, its rows packed into flat
// backing arrays, and sc (nil = allocate fresh) supplies all interior
// scratch. dst must not alias prev and must no longer be referenced by
// any consumer — in a double-buffered loop, pass the table retired two
// ticks ago.
//
//manet:hotpath
func (s *Selector) UpdateTableInto(
	dst *Table, sc *UpdateScratch,
	prev *Table,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
) *Table {
	if dst == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the double-buffered table once
		dst = &Table{}
	}
	if dst == prev {
		panic("lm: UpdateTableInto dst must not alias prev")
	}
	if sc == nil {
		//lint:ignore hotpath warm-up: callers reuse one scratch across ticks
		sc = &UpdateScratch{}
	}
	dirty := sc.dirtySubtrees(prevH, prevIDs, nextH, nextIDs)
	owners := nextH.LevelNodes(0)
	dst.owners = owners
	if dst.index == nil {
		//lint:ignore hotpath warm-up: the first update builds the reused row index
		dst.index = make(map[int]int, len(owners))
	} else {
		clear(dst.index)
	}
	dst.servers = dst.servers[:0]
	dst.chains = dst.chains[:0]
	dst.srvBack = dst.srvBack[:0]
	dst.chainBack = dst.chainBack[:0]
	sc.rowEnd = sc.rowEnd[:0]
	for row, v := range owners {
		dst.index[v] = row
		dst.chainBack, dst.srvBack, sc.keyBuf = s.appendRow(
			v, dirty, prev, nextH, nextIDs, dst.chainBack, dst.srvBack, sc.keyBuf)
		sc.rowEnd = append(sc.rowEnd, len(dst.chainBack))
	}
	// Fix up the row views only after both backings stopped growing.
	off := 0
	for _, end := range sc.rowEnd {
		dst.servers = append(dst.servers, dst.srvBack[off:end:end])
		dst.chains = append(dst.chains, dst.chainBack[off:end:end])
		off = end
	}
	return dst
}

// appendRow computes owner v's table row — its logical ancestor chain
// and per-level servers — appending the chain to chainBack and the
// servers to srvBack, reusing prev's assignment wherever the logical
// ancestor is unchanged and its subtree is clean. It returns the three
// (possibly grown) buffers. The function only reads the snapshots, the
// dirty set, and prev, so disjoint owner ranges may run concurrently
// as long as each invocation owns its buffers.
func (s *Selector) appendRow(
	v int, dirty dirtySet, prev *Table,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
	chainBack []uint64, srvBack []int32, keyBuf []uint64,
) ([]uint64, []int32, []uint64) {
	start := len(chainBack)
	chainBack = nextIDs.AppendChainOf(nextH, v, chainBack)
	chain := chainBack[start:]
	var prevChain []uint64
	var prevSrv []int32
	if prev != nil {
		if r, ok := prev.index[v]; ok {
			prevChain = prev.chains[r]
			prevSrv = prev.servers[r]
		}
	}
	for i, c := range chain {
		k := i + 1
		if i < len(prevChain) && prevChain[i] == c && !dirty.is(k, c) {
			srvBack = append(srvBack, prevSrv[i])
			continue
		}
		var srv int
		srv, keyBuf = s.serverForBuf(nextH, nextIDs, v, k, keyBuf)
		srvBack = append(srvBack, int32(srv))
	}
	return chainBack, srvBack, keyBuf
}

// dirtySet tracks logical clusters whose subtree membership changed,
// per level.
type dirtySet []map[uint64]bool

func (d dirtySet) is(k int, id uint64) bool {
	if k < 0 || k >= len(d) {
		return true // unknown level: be conservative
	}
	return d[k][id]
}

func (d dirtySet) mark(k int, id uint64) bool {
	if k < 0 || k >= len(d) {
		return false
	}
	if d[k][id] {
		return false
	}
	d[k][id] = true
	return true
}

// dirtySubtrees returns the logical clusters whose member-key sets
// differ between the two snapshots (including clusters present in only
// one), with dirtiness propagated to all ancestors in both snapshots.
// The returned set aliases the scratch and is valid until its next
// call.
//
//manet:hotpath
func (sc *UpdateScratch) dirtySubtrees(
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
) dirtySet {
	maxL := prevH.L()
	if nextH.L() > maxL {
		maxL = nextH.L()
	}
	for len(sc.dirty) <= maxL {
		//lint:ignore hotpath amortized growth: one set per hierarchy level, reused after
		sc.dirty = append(sc.dirty, map[uint64]bool{})
	}
	dirty := sc.dirty[:maxL+1]
	for k := range dirty {
		clear(dirty[k])
	}
	if sc.pm == nil {
		//lint:ignore hotpath warm-up: the first call builds the reused member-key maps
		sc.pm = map[uint64][]uint64{}
		//lint:ignore hotpath warm-up: the first call builds the reused member-key maps
		sc.nm = map[uint64][]uint64{}
	}
	for k := 1; k <= maxL; k++ {
		var pm, nm map[uint64][]uint64
		pm, sc.pmBack = fillMemberKeySets(sc.pm, sc.pmBack, &sc.spans, prevH, prevIDs, k)
		nm, sc.nmBack = fillMemberKeySets(sc.nm, sc.nmBack, &sc.spans, nextH, nextIDs, k)
		//lint:ignore maprange order-free set marking; dirty membership is the only outcome
		for id, keys := range pm {
			nk, ok := nm[id]
			if !ok || !equalUints(keys, nk) {
				dirty.mark(k, id)
			}
		}
		//lint:ignore maprange order-free set marking; dirty membership is the only outcome
		for id := range nm {
			if _, ok := pm[id]; !ok {
				dirty.mark(k, id)
			}
		}
	}
	// Propagate upward in both snapshots: a descent from an ancestor
	// may pass through a dirty cluster. Snapshot the level's IDs in
	// sorted order first — propagateUp mutates the dirty set while we
	// walk it, and ranging over a map under mutation is unspecified.
	for k := 1; k <= maxL; k++ {
		sc.idsBuf = sc.idsBuf[:0]
		for id := range dirty[k] {
			sc.idsBuf = append(sc.idsBuf, id)
		}
		slices.Sort(sc.idsBuf)
		for _, id := range sc.idsBuf {
			propagateUp(prevH, prevIDs, k, id, dirty)
			propagateUp(nextH, nextIDs, k, id, dirty)
		}
	}
	return dirty
}

// fillMemberKeySets fills out (cleared first) with each live logical
// level-k cluster's sorted member hash keys, packing the key slices
// into the back array; it returns the map and the grown backing. The
// views are fixed up only after the backing stops growing, so slice
// growth cannot invalidate them.
func fillMemberKeySets(
	out map[uint64][]uint64, back []uint64, spans *[]keySpan,
	h *cluster.Hierarchy, ids *cluster.Identities, k int,
) (map[uint64][]uint64, []uint64) {
	clear(out)
	back = back[:0]
	*spans = (*spans)[:0]
	if k > h.L() {
		return out, back
	}
	for _, head := range h.LevelNodes(k) {
		id, ok := ids.Logical(k, head)
		if !ok {
			continue
		}
		start := len(back)
		back = appendMemberKeys(back, ids, k, h.MembersAt(k, head))
		slices.Sort(back[start:])
		*spans = append(*spans, keySpan{id: id, start: start, end: len(back)})
	}
	for _, sp := range *spans {
		out[sp.id] = back[sp.start:sp.end:sp.end]
	}
	return out, back
}

// propagateUp marks the ancestors of the level-k cluster with the
// given logical ID dirty, within one snapshot.
func propagateUp(h *cluster.Hierarchy, ids *cluster.Identities, k int, id uint64, dirty dirtySet) {
	// Find the physical head carrying this logical ID.
	head := -1
	for _, hd := range h.LevelNodes(k) {
		if lid, ok := ids.Logical(k, hd); ok && lid == id {
			head = hd
			break
		}
	}
	if head < 0 {
		return
	}
	cur := head
	for j := k; j < h.L(); j++ {
		lvl := h.Level(j)
		if lvl == nil || lvl.Member == nil {
			return
		}
		parent, ok := lvl.Member[cur]
		if !ok {
			return
		}
		pid, ok := ids.Logical(j+1, parent)
		if !ok {
			return
		}
		if !dirty.mark(j+1, pid) {
			return // already propagated through here
		}
		cur = parent
	}
}

func equalUints(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TableDiff reports every (owner, level) assignment change between two
// tables, ordered by (owner, level).
type TableDiff struct {
	Owner, Level         int
	OldServer, NewServer int // -1 when absent on that side
}

// DiffTables lists all assignment changes from prev to next.
func DiffTables(prev, next *Table) []TableDiff {
	return appendTableDiffs(nil, prev, next, nil)
}

// appendTableDiffs is DiffTables with caller-owned storage: changes
// are appended to out (pass out[:0] — the whole slice is sorted before
// returning) and seen (cleared first; nil allocates) is the visited-
// owner scratch.
//
//manet:hotpath
func appendTableDiffs(out []TableDiff, prev, next *Table, seen map[int]bool) []TableDiff {
	if seen == nil {
		//lint:ignore hotpath warm-up: nil seen allocates the visited-owner scratch once
		seen = make(map[int]bool, len(next.owners))
	} else {
		clear(seen)
	}
	for _, v := range next.owners {
		seen[v] = true
		nRow := next.index[v]
		maxK := len(next.servers[nRow])
		inPrev := false
		if prev != nil {
			if r, ok := prev.index[v]; ok {
				inPrev = true
				if len(prev.servers[r]) > maxK {
					maxK = len(prev.servers[r])
				}
			}
		}
		for k := 1; k <= maxK; k++ {
			oldS := -1
			if inPrev {
				oldS = prev.Server(v, k)
			}
			newS := next.Server(v, k)
			if oldS != newS {
				out = append(out, TableDiff{Owner: v, Level: k, OldServer: oldS, NewServer: newS})
			}
		}
	}
	if prev != nil {
		for _, v := range prev.owners {
			if seen[v] {
				continue
			}
			for k := 1; k <= prev.Levels(v); k++ {
				if s := prev.Server(v, k); s >= 0 {
					out = append(out, TableDiff{Owner: v, Level: k, OldServer: s, NewServer: -1})
				}
			}
		}
	}
	slices.SortFunc(out, func(a, b TableDiff) int {
		if a.Owner != b.Owner {
			return a.Owner - b.Owner
		}
		return a.Level - b.Level
	})
	return out
}
