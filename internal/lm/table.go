package lm

import (
	"fmt"
	"slices"

	"repro/internal/cluster"
)

// Table is the complete server-assignment snapshot: for every owner
// node and hierarchy level k, the level-0 node currently serving the
// owner's level-k location entry (-1 where the hierarchy does not
// reach level k above the owner). It also records each owner's
// *logical* ancestor chain, which the incremental update and the
// handoff accountant consume: comparing logical chains distinguishes
// real cluster membership changes from head relabels.
type Table struct {
	owners  []int       // sorted level-0 node IDs
	index   map[int]int // owner -> row
	servers [][]int32   // [row][k-1] -> server node, -1 if none
	chains  [][]uint64  // [row][k-1] -> logical level-k ancestor

	// Per-row descent-path memo: for each owner row, the winner keys of
	// every hash descent, column k occupying [k(k-1)/2, k(k+1)/2) in
	// level order k, k-1, ..., 1 (the last entry is the server's node
	// ID). Derived data — never compared by table differs/equality
	// checks — kept so the incremental update can re-trace a previous
	// descent without re-hashing own-clean steps.
	paths [][]uint64

	// Flat backing for the row slices when built by UpdateTableInto;
	// nil for tables built row-by-row. Owned by this table so that
	// double-buffered tables never share storage.
	srvBack   []int32
	chainBack []uint64
	pathBack  []uint64
}

// pathOff returns the offset of descent-path column k within a row's
// paths slice.
func pathOff(k int) int { return k * (k - 1) / 2 }

// Owners returns the sorted owner IDs covered by the table.
func (t *Table) Owners() []int { return t.owners }

// Server returns the level-k server of owner, or -1.
func (t *Table) Server(owner, k int) int {
	row, ok := t.index[owner]
	if !ok || k < 1 || k > len(t.servers[row]) {
		return -1
	}
	return int(t.servers[row][k-1])
}

// Chain returns owner's logical ancestor chain (shared slice; do not
// mutate), or nil.
func (t *Table) Chain(owner int) []uint64 {
	row, ok := t.index[owner]
	if !ok {
		return nil
	}
	return t.chains[row]
}

// Levels returns the number of levels allocated for owner's row.
func (t *Table) Levels(owner int) int {
	row, ok := t.index[owner]
	if !ok {
		return 0
	}
	return len(t.servers[row])
}

// Load returns, for every node that serves at least one entry, the
// number of (owner, level) entries it serves. This is the server-load
// distribution whose equity the paper requires.
func (t *Table) Load() map[int]int {
	load := map[int]int{}
	for _, row := range t.servers {
		for _, s := range row {
			if s >= 0 {
				load[int(s)]++
			}
		}
	}
	return load
}

// EntryCount returns the total number of live (owner, level) entries.
func (t *Table) EntryCount() int {
	n := 0
	for _, row := range t.servers {
		for _, s := range row {
			if s >= 0 {
				n++
			}
		}
	}
	return n
}

// LiveAt returns the set of logical cluster IDs appearing at level k
// in any owner's chain (every live cluster has at least one level-0
// descendant, so this enumerates the live clusters).
func (t *Table) LiveAt(k int) map[uint64]bool {
	return t.LiveAtInto(k, nil)
}

// LiveAtInto is LiveAt filling dst (cleared first; nil allocates) so
// per-tick consumers can reuse one map.
//
//manet:hotpath
func (t *Table) LiveAtInto(k int, dst map[uint64]bool) map[uint64]bool {
	if dst == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the reused liveness set once
		dst = map[uint64]bool{}
	} else {
		clear(dst)
	}
	if k < 1 {
		return dst
	}
	for _, chain := range t.chains {
		if k <= len(chain) {
			dst[chain[k-1]] = true
		}
	}
	return dst
}

// Selector computes CHLM server assignments over a hierarchy with
// cluster identities.
type Selector struct {
	Hash HashFamily
}

// NewSelector returns a selector using the given hash family (nil
// means Rendezvous{}).
func NewSelector(h HashFamily) *Selector {
	if h == nil {
		h = Rendezvous{}
	}
	return &Selector{Hash: h}
}

// ServerFor resolves the level-0 node serving owner's level-k entry in
// hierarchy h: starting from the owner's level-k cluster, hash-select
// one member cluster per level down to a level-0 node (§3.2). Hash
// keys are logical cluster IDs (node IDs at the leaf step). Returns -1
// when the hierarchy does not reach level k above owner.
func (s *Selector) ServerFor(h *cluster.Hierarchy, ids *cluster.Identities, owner, k int) int {
	anc := h.Ancestor(owner, k)
	if anc < 0 {
		return -1
	}
	cur := anc
	for level := k; level >= 1; level-- {
		members := h.MembersAt(level, cur)
		if len(members) == 0 {
			// Structurally impossible in a valid hierarchy; fail loud.
			panic(fmt.Sprintf("lm: level-%d cluster %d has no members", level, cur))
		}
		idx := s.Hash.Select(uint64(owner), level, memberKeys(h, ids, level, members))
		cur = members[idx]
	}
	return cur
}

// memberKeys returns the hash keys of the level-(level-1) members of a
// level-`level` cluster: logical IDs for clusters, node IDs at level 1.
func memberKeys(h *cluster.Hierarchy, ids *cluster.Identities, level int, members []int) []uint64 {
	return appendMemberKeys(make([]uint64, 0, len(members)), ids, level, members)
}

// appendMemberKeys appends the hash keys of members to dst — the
// allocation-free form used by the incremental update path.
func appendMemberKeys(dst []uint64, ids *cluster.Identities, level int, members []int) []uint64 {
	for _, m := range members {
		if level == 1 {
			dst = append(dst, uint64(m))
			continue
		}
		if id, ok := ids.Logical(level-1, m); ok {
			dst = append(dst, id)
		} else {
			// Identity missing (should not happen for a tracked
			// snapshot); degrade to the physical ID.
			dst = append(dst, uint64(m))
		}
	}
	return dst
}

// serverForBuf is ServerFor with a caller-owned key buffer and no
// intermediate allocations; it returns the server and the (possibly
// grown) buffer.
func (s *Selector) serverForBuf(
	h *cluster.Hierarchy, ids *cluster.Identities, owner, k int, buf, path []uint64,
) (int, []uint64) {
	cur := owner
	for j := 0; j < k; j++ {
		m, ok := h.Level(j).Member[cur]
		if !ok {
			return -1, buf
		}
		cur = m
	}
	return s.descendFrom(h, ids, owner, cur, k, buf, path)
}

// descendFrom runs the hash descent from the level-`level` cluster cur
// down to a level-0 node, recording the winner key of every step into
// path (nil = don't record).
func (s *Selector) descendFrom(
	h *cluster.Hierarchy, ids *cluster.Identities, owner, cur, level int, buf, path []uint64,
) (int, []uint64) {
	j := 0
	for ; level >= 1; level-- {
		members := h.MembersAt(level, cur)
		if len(members) == 0 {
			// Structurally impossible in a valid hierarchy; fail loud.
			panic(fmt.Sprintf("lm: level-%d cluster %d has no members", level, cur))
		}
		buf = appendMemberKeys(buf[:0], ids, level, members)
		idx := s.Hash.Select(uint64(owner), level, buf)
		if path != nil {
			path[j] = buf[idx]
		}
		j++
		cur = members[idx]
	}
	return cur, buf
}

// serverForBufIncr resolves owner's level-k server like serverForBuf,
// but re-traces the previous tick's hash descent (stored, the owner's
// previous path column) instead of paying for a full one. The caller
// guarantees the owner's logical level-k ancestor anc is unchanged
// (same chain entry) yet subtree-dirty. At each step, a cluster whose
// member-key set is unchanged ("own-clean") selects the same winner
// key as last tick — both hash families pick by key, not position —
// so the stored winner stands without hashing; an own-dirty cluster
// pays one Select over its cached key span. While the re-trace agrees
// with the stored path, the first sub-clean cluster proves the
// remaining descent identical and prevSrv stands; after the first
// divergent winner the stored path no longer applies and every
// remaining step pays its Select. The new path is written to pathDst
// (len k). rev/revKeys are the buildRev index; a key missing from it
// (an untracked identity) aborts the re-trace into a full recompute.
//
//manet:hotpath
func (s *Selector) serverForBufIncr(
	h *cluster.Hierarchy, ids *cluster.Identities, owner, k, prevSrv int,
	anc uint64, stored, pathDst []uint64,
	rev []map[uint64]revEntry, revKeys []uint64, buf []uint64,
) (int, []uint64) {
	q := anc
	tracking := true
	for level := k; level >= 1; level-- {
		j := k - level
		if level >= len(rev) {
			return s.serverForBuf(h, ids, owner, k, buf, pathDst)
		}
		e, ok := rev[level][q]
		if !ok {
			return s.serverForBuf(h, ids, owner, k, buf, pathDst)
		}
		if tracking {
			if !e.sub {
				// Same path so far and nothing at or below q changed:
				// the previous descent stands in full.
				copy(pathDst[j:], stored[j:])
				return prevSrv, buf
			}
			if !e.own {
				// Same member keys, same hash: last tick's winner.
				wk := stored[j]
				pathDst[j] = wk
				q = wk
				continue
			}
		}
		keys := revKeys[e.start:e.end]
		idx := s.Hash.Select(uint64(owner), level, keys)
		wk := keys[idx]
		pathDst[j] = wk
		if tracking && wk != stored[j] {
			tracking = false
		}
		q = wk
	}
	return int(q), buf
}

// BuildTable computes the full assignment table for h.
func (s *Selector) BuildTable(h *cluster.Hierarchy, ids *cluster.Identities) *Table {
	owners := h.LevelNodes(0)
	t := &Table{
		owners:  owners,
		index:   make(map[int]int, len(owners)),
		servers: make([][]int32, len(owners)),
		chains:  make([][]uint64, len(owners)),
		paths:   make([][]uint64, len(owners)),
	}
	var buf []uint64
	for row, v := range owners {
		t.index[v] = row
		chain := ids.ChainOf(h, v)
		n := len(chain)
		srv := make([]int32, n)
		path := make([]uint64, pathOff(n+1))
		for i := range chain {
			k := i + 1
			var sv int
			sv, buf = s.serverForBuf(h, ids, v, k, buf, path[pathOff(k):pathOff(k)+k])
			srv[i] = int32(sv)
		}
		t.servers[row] = srv
		t.chains[row] = chain
		t.paths[row] = path
	}
	return t
}

// UpdateTable computes the assignment table for next incrementally:
// rows are recomputed only for (owner, k) pairs whose logical level-k
// ancestor changed or whose ancestor's subtree had any membership
// change (the hash descent only inspects members lists inside that
// subtree, so everything else is provably unchanged). The result is
// always identical to BuildTable(nextH, nextIDs).
func (s *Selector) UpdateTable(
	prev *Table,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
) *Table {
	return s.UpdateTableInto(nil, nil, prev, prevH, prevIDs, nextH, nextIDs, nil)
}

// UpdateScratch holds the reusable buffers of UpdateTableInto: the
// dirty-subtree sets, member-key comparison maps and their flat
// backings, the hash-descent key buffer, and the affected-owner bitmap
// of the dirty-row analysis. Not safe for concurrent use.
type UpdateScratch struct {
	dirty          dirtySet
	own            dirtySet
	pm, nm         map[uint64][]uint64
	pmBack, nmBack []uint64
	spans          []keySpan
	idsBuf         []uint64
	keyBuf         []uint64
	rowEnd         []int

	// Per-tick reverse identity index (buildRev): for each level, live
	// logical ID -> cached member-key span into revKeys plus the
	// cluster's own/sub dirtiness, so each descent re-trace step costs
	// one map lookup and own-dirty Selects hash over prebuilt keys.
	rev     []map[uint64]revEntry
	revKeys []uint64

	// Dirty-row analysis (affectedOwners): affBits[v] marks owner v as
	// possibly changed; affRows lists the affected row indices (the
	// par shards fan out over it); walkN/walkL are the subtree DFS
	// stack.
	affBits      []bool
	affRows      []int
	walkN, walkL []int
}

type keySpan struct {
	id         uint64
	start, end int
}

// revEntry is one buildRev index entry: the cluster's member-key span
// within UpdateScratch.revKeys and its dirtiness classification (own =
// member-key set changed; sub = any change in the subtree).
type revEntry struct {
	start, end int32
	own, sub   bool
}

// UpdateTableInto is UpdateTable with caller-owned storage: dst (nil =
// allocate fresh) is overwritten in place, its rows packed into flat
// backing arrays, and sc (nil = allocate fresh) supplies all interior
// scratch. dst must not alias prev and must no longer be referenced by
// any consumer — in a double-buffered loop, pass the table retired two
// ticks ago.
//
// known, when non-nil, is the maintainer-exported dirty-cluster set
// (cluster.Maintainer.DirtyClusters) for exactly this snapshot pair;
// the O(N·L) dirty-subtree recomputation is then skipped, and whole
// owner rows are copied from prev wherever the owner is provably
// outside every dirty subtree.
//
//manet:hotpath
func (s *Selector) UpdateTableInto(
	dst *Table, sc *UpdateScratch,
	prev *Table,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
	known *cluster.DirtyClusters,
) *Table {
	if dst == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the double-buffered table once
		dst = &Table{}
	}
	if dst == prev {
		panic("lm: UpdateTableInto dst must not alias prev")
	}
	if sc == nil {
		//lint:ignore hotpath warm-up: callers reuse one scratch across ticks
		sc = &UpdateScratch{}
	}
	var dirty, own dirtySet
	if known != nil {
		dirty = dirtySet(known.ByLevel)
		own = sc.ownFromKnown(dirty, prevH, prevIDs, nextH, nextIDs)
	} else {
		dirty = sc.dirtySubtrees(prevH, prevIDs, nextH, nextIDs)
		own = sc.own
	}
	rev := sc.buildRev(nextH, nextIDs, dirty, own)
	useAff := sc.affectedOwners(dirty, prev, prevH, prevIDs, nextH)
	owners := nextH.LevelNodes(0)
	dst.owners = owners
	if dst.index == nil {
		//lint:ignore hotpath warm-up: the first update builds the reused row index
		dst.index = make(map[int]int, len(owners))
	} else {
		clear(dst.index)
	}
	dst.servers = dst.servers[:0]
	dst.chains = dst.chains[:0]
	dst.paths = dst.paths[:0]
	dst.srvBack = dst.srvBack[:0]
	dst.chainBack = dst.chainBack[:0]
	dst.pathBack = dst.pathBack[:0]
	sc.rowEnd = sc.rowEnd[:0]
	for row, v := range owners {
		dst.index[v] = row
		if useAff && (v >= len(sc.affBits) || !sc.affBits[v]) {
			if r, ok := prev.index[v]; ok {
				dst.chainBack = append(dst.chainBack, prev.chains[r]...)
				dst.srvBack = append(dst.srvBack, prev.servers[r]...)
				dst.pathBack = append(dst.pathBack, prev.paths[r]...)
				sc.rowEnd = append(sc.rowEnd, len(dst.chainBack))
				continue
			}
		}
		dst.chainBack, dst.srvBack, dst.pathBack, sc.keyBuf = s.appendRow(
			v, dirty, rev, sc.revKeys, prev, nextH, nextIDs,
			dst.chainBack, dst.srvBack, dst.pathBack, sc.keyBuf)
		sc.rowEnd = append(sc.rowEnd, len(dst.chainBack))
	}
	// Fix up the row views only after both backings stopped growing.
	// Path-column offsets derive from the chain lengths: a row with n
	// levels owns pathOff(n+1) memo entries.
	off, pOff := 0, 0
	for _, end := range sc.rowEnd {
		n := end - off
		pEnd := pOff + pathOff(n+1)
		dst.servers = append(dst.servers, dst.srvBack[off:end:end])
		dst.chains = append(dst.chains, dst.chainBack[off:end:end])
		dst.paths = append(dst.paths, dst.pathBack[pOff:pEnd:pEnd])
		off, pOff = end, pEnd
	}
	return dst
}

// buildRev fills sc.rev with per-level reverse identity indexes over
// the next snapshot: logical cluster ID -> prebuilt member-key span
// (into sc.revKeys) tagged with the cluster's own/sub dirtiness. The
// descent re-trace then follows stored winner keys with one map lookup
// per step and hashes over cached keys, never touching physical IDs.
// O(total clusters + total members) per tick.
//
//manet:hotpath
func (sc *UpdateScratch) buildRev(
	h *cluster.Hierarchy, ids *cluster.Identities, dirty, own dirtySet,
) []map[uint64]revEntry {
	L := h.L()
	for len(sc.rev) <= L {
		//lint:ignore hotpath amortized growth: one index per hierarchy level, reused after
		sc.rev = append(sc.rev, map[uint64]revEntry{})
	}
	rev := sc.rev[:L+1]
	sc.revKeys = sc.revKeys[:0]
	for k := 1; k <= L; k++ {
		m := rev[k]
		clear(m)
		for _, c := range h.LevelNodes(k) {
			q, ok := ids.Logical(k, c)
			if !ok {
				continue // untracked identity: re-traces reaching it fall back
			}
			start := len(sc.revKeys)
			sc.revKeys = appendMemberKeys(sc.revKeys, ids, k, h.MembersAt(k, c))
			if len(sc.revKeys) == start {
				// Structurally impossible in a valid hierarchy; fail loud.
				panic(fmt.Sprintf("lm: level-%d cluster %d has no members", k, c))
			}
			m[q] = revEntry{
				start: int32(start), end: int32(len(sc.revKeys)),
				own: own.is(k, q), sub: dirty.is(k, q),
			}
		}
	}
	return rev
}

// affectedOwners fills sc.affBits with the owners whose table row can
// differ from prev: the previous-snapshot level-0 descendants of every
// dirty top-level cluster. Dirtiness propagates to ancestors in both
// snapshots, so every dirty cluster sits under a dirty level-L cluster
// in the previous hierarchy, and an owner whose previous chain is
// entirely clean keeps its chain and all its servers (the hash descent
// for level k only inspects member lists inside the level-k ancestor's
// subtree, all of which are clean). Returns false when every row must
// be treated as affected: no previous table, or a hierarchy-depth
// change (a fresh top level can extend clean chains).
//
//manet:hotpath
func (sc *UpdateScratch) affectedOwners(
	dirty dirtySet, prev *Table,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy,
) bool {
	L := prevH.L()
	if prev == nil || len(prev.owners) == 0 || nextH.L() != L || L == 0 {
		return false
	}
	need := 0
	if n := prevH.LevelNodes(0); len(n) > 0 {
		need = n[len(n)-1] + 1
	}
	if n := nextH.LevelNodes(0); len(n) > 0 && n[len(n)-1]+1 > need {
		need = n[len(n)-1] + 1
	}
	for len(sc.affBits) < need {
		sc.affBits = append(sc.affBits, false)
	}
	clear(sc.affBits)
	nodes, lvls := sc.walkN[:0], sc.walkL[:0]
	for _, hd := range prevH.LevelNodes(L) {
		q, ok := prevIDs.Logical(L, hd)
		if !ok || dirty.is(L, q) {
			nodes = append(nodes, hd)
			lvls = append(lvls, L)
		}
	}
	for len(nodes) > 0 {
		u := nodes[len(nodes)-1]
		j := lvls[len(lvls)-1]
		nodes, lvls = nodes[:len(nodes)-1], lvls[:len(lvls)-1]
		if j == 0 {
			sc.affBits[u] = true
			continue
		}
		for _, c := range prevH.MembersAt(j, u) {
			nodes = append(nodes, c)
			lvls = append(lvls, j-1)
		}
	}
	sc.walkN, sc.walkL = nodes, lvls
	return true
}

// appendRow computes owner v's table row — its logical ancestor chain,
// per-level servers, and descent-path memo — appending the chain to
// chainBack, the servers to srvBack, and the paths to pathBack,
// reusing prev's assignment wherever the logical ancestor is unchanged
// and its subtree is clean, and re-tracing the previous descent
// (serverForBufIncr) when the ancestor is unchanged but its subtree
// was touched. It returns the four (possibly grown) buffers. The
// function only reads the snapshots, the dirty sets, rev, and prev, so
// disjoint owner ranges may run concurrently as long as each
// invocation owns its buffers.
func (s *Selector) appendRow(
	v int, dirty dirtySet, rev []map[uint64]revEntry, revKeys []uint64, prev *Table,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
	chainBack []uint64, srvBack []int32, pathBack, keyBuf []uint64,
) ([]uint64, []int32, []uint64, []uint64) {
	start := len(chainBack)
	chainBack = nextIDs.AppendChainOf(nextH, v, chainBack)
	chain := chainBack[start:]
	n := len(chain)
	pstart := len(pathBack)
	pathBack = slices.Grow(pathBack, pathOff(n+1))[:pstart+pathOff(n+1)]
	paths := pathBack[pstart:]
	var prevChain []uint64
	var prevSrv []int32
	var prevPath []uint64
	if prev != nil {
		if r, ok := prev.index[v]; ok {
			prevChain = prev.chains[r]
			prevSrv = prev.servers[r]
			if r < len(prev.paths) {
				prevPath = prev.paths[r]
			}
		}
	}
	for i, c := range chain {
		k := i + 1
		po := pathOff(k)
		col := paths[po : po+k]
		if i < len(prevChain) && prevChain[i] == c && po+k <= len(prevPath) {
			pcol := prevPath[po : po+k]
			if !dirty.is(k, c) {
				copy(col, pcol)
				srvBack = append(srvBack, prevSrv[i])
				continue
			}
			var srv int
			srv, keyBuf = s.serverForBufIncr(
				nextH, nextIDs, v, k, int(prevSrv[i]), c, pcol, col, rev, revKeys, keyBuf)
			if srv < 0 {
				clear(col)
			}
			srvBack = append(srvBack, int32(srv))
			continue
		}
		var srv int
		srv, keyBuf = s.serverForBuf(nextH, nextIDs, v, k, keyBuf, col)
		if srv < 0 {
			clear(col)
		}
		srvBack = append(srvBack, int32(srv))
	}
	return chainBack, srvBack, pathBack, keyBuf
}

// dirtySet tracks logical clusters whose subtree membership changed,
// per level.
type dirtySet []map[uint64]bool

func (d dirtySet) is(k int, id uint64) bool {
	if k < 0 || k >= len(d) {
		return true // unknown level: be conservative
	}
	return d[k][id]
}

func (d dirtySet) mark(k int, id uint64) bool {
	if k < 0 || k >= len(d) {
		return false
	}
	if d[k][id] {
		return false
	}
	d[k][id] = true
	return true
}

// sizedOwn returns sc.own sized and cleared for maxL levels.
//
//manet:hotpath
func (sc *UpdateScratch) sizedOwn(maxL int) dirtySet {
	for len(sc.own) <= maxL {
		//lint:ignore hotpath amortized growth: one set per hierarchy level, reused after
		sc.own = append(sc.own, map[uint64]bool{})
	}
	own := sc.own[:maxL+1]
	for k := range own {
		clear(own[k])
	}
	return own
}

// ownFromKnown classifies each maintainer-reported dirty cluster as
// own-changed — its member-key set differs between the snapshots, or
// it exists in only one — versus merely subtree-dirty (marked only
// because dirtiness propagated up from a descendant). The hash descent
// uses the distinction to re-trace the previous tick's path through
// own-clean clusters and stop at the first clean subtree. Only dirty
// clusters are compared, so the cost tracks the dirty set, not the
// hierarchy. The result aliases the scratch and is valid until the
// next own-set computation.
//
//manet:hotpath
func (sc *UpdateScratch) ownFromKnown(
	dirty dirtySet,
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
) dirtySet {
	maxL := prevH.L()
	if nextH.L() > maxL {
		maxL = nextH.L()
	}
	own := sc.sizedOwn(maxL)
	if sc.pm == nil {
		//lint:ignore hotpath warm-up: the first call builds the reused member-key maps
		sc.pm = map[uint64][]uint64{}
		//lint:ignore hotpath warm-up: the first call builds the reused member-key maps
		sc.nm = map[uint64][]uint64{}
	}
	for k := 1; k <= maxL; k++ {
		var pm, nm map[uint64][]uint64
		pm, sc.pmBack = fillMemberKeySets(sc.pm, sc.pmBack, &sc.spans, prevH, prevIDs, k, dirty)
		nm, sc.nmBack = fillMemberKeySets(sc.nm, sc.nmBack, &sc.spans, nextH, nextIDs, k, dirty)
		//lint:ignore maprange order-free set marking; own membership is the only outcome
		for id, keys := range pm {
			nk, ok := nm[id]
			if !ok || !equalUints(keys, nk) {
				own.mark(k, id)
			}
		}
		//lint:ignore maprange order-free set marking; own membership is the only outcome
		for id := range nm {
			if _, ok := pm[id]; !ok {
				own.mark(k, id)
			}
		}
	}
	return own
}

// dirtySubtrees returns the logical clusters whose member-key sets
// differ between the two snapshots (including clusters present in only
// one), with dirtiness propagated to all ancestors in both snapshots.
// The pre-propagation marks — the clusters whose own member-key set
// changed — are recorded in sc.own as a byproduct. The returned set
// aliases the scratch and is valid until its next call.
//
//manet:hotpath
func (sc *UpdateScratch) dirtySubtrees(
	prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	nextH *cluster.Hierarchy, nextIDs *cluster.Identities,
) dirtySet {
	maxL := prevH.L()
	if nextH.L() > maxL {
		maxL = nextH.L()
	}
	for len(sc.dirty) <= maxL {
		//lint:ignore hotpath amortized growth: one set per hierarchy level, reused after
		sc.dirty = append(sc.dirty, map[uint64]bool{})
	}
	dirty := sc.dirty[:maxL+1]
	for k := range dirty {
		clear(dirty[k])
	}
	own := sc.sizedOwn(maxL)
	if sc.pm == nil {
		//lint:ignore hotpath warm-up: the first call builds the reused member-key maps
		sc.pm = map[uint64][]uint64{}
		//lint:ignore hotpath warm-up: the first call builds the reused member-key maps
		sc.nm = map[uint64][]uint64{}
	}
	for k := 1; k <= maxL; k++ {
		var pm, nm map[uint64][]uint64
		pm, sc.pmBack = fillMemberKeySets(sc.pm, sc.pmBack, &sc.spans, prevH, prevIDs, k, nil)
		nm, sc.nmBack = fillMemberKeySets(sc.nm, sc.nmBack, &sc.spans, nextH, nextIDs, k, nil)
		//lint:ignore maprange order-free set marking; dirty membership is the only outcome
		for id, keys := range pm {
			nk, ok := nm[id]
			if !ok || !equalUints(keys, nk) {
				dirty.mark(k, id)
				own.mark(k, id)
			}
		}
		//lint:ignore maprange order-free set marking; dirty membership is the only outcome
		for id := range nm {
			if _, ok := pm[id]; !ok {
				dirty.mark(k, id)
				own.mark(k, id)
			}
		}
	}
	// Propagate upward in both snapshots: a descent from an ancestor
	// may pass through a dirty cluster. Snapshot the level's IDs in
	// sorted order first — propagateUp mutates the dirty set while we
	// walk it, and ranging over a map under mutation is unspecified.
	for k := 1; k <= maxL; k++ {
		sc.idsBuf = sc.idsBuf[:0]
		for id := range dirty[k] {
			sc.idsBuf = append(sc.idsBuf, id)
		}
		slices.Sort(sc.idsBuf)
		for _, id := range sc.idsBuf {
			propagateUp(prevH, prevIDs, k, id, dirty)
			propagateUp(nextH, nextIDs, k, id, dirty)
		}
	}
	return dirty
}

// fillMemberKeySets fills out (cleared first) with each live logical
// level-k cluster's sorted member hash keys, packing the key slices
// into the back array; it returns the map and the grown backing. The
// views are fixed up only after the backing stops growing, so slice
// growth cannot invalidate them. A non-nil `only` restricts the fill
// to clusters in that set (the own-classification of a known dirty
// set).
func fillMemberKeySets(
	out map[uint64][]uint64, back []uint64, spans *[]keySpan,
	h *cluster.Hierarchy, ids *cluster.Identities, k int, only dirtySet,
) (map[uint64][]uint64, []uint64) {
	clear(out)
	back = back[:0]
	*spans = (*spans)[:0]
	if k > h.L() {
		return out, back
	}
	for _, head := range h.LevelNodes(k) {
		id, ok := ids.Logical(k, head)
		if !ok {
			continue
		}
		if only != nil && !only.is(k, id) {
			continue
		}
		start := len(back)
		back = appendMemberKeys(back, ids, k, h.MembersAt(k, head))
		slices.Sort(back[start:])
		*spans = append(*spans, keySpan{id: id, start: start, end: len(back)})
	}
	for _, sp := range *spans {
		out[sp.id] = back[sp.start:sp.end:sp.end]
	}
	return out, back
}

// propagateUp marks the ancestors of the level-k cluster with the
// given logical ID dirty, within one snapshot.
func propagateUp(h *cluster.Hierarchy, ids *cluster.Identities, k int, id uint64, dirty dirtySet) {
	// Find the physical head carrying this logical ID.
	head := -1
	for _, hd := range h.LevelNodes(k) {
		if lid, ok := ids.Logical(k, hd); ok && lid == id {
			head = hd
			break
		}
	}
	if head < 0 {
		return
	}
	cur := head
	for j := k; j < h.L(); j++ {
		lvl := h.Level(j)
		if lvl == nil || lvl.Member == nil {
			return
		}
		parent, ok := lvl.Member[cur]
		if !ok {
			return
		}
		pid, ok := ids.Logical(j+1, parent)
		if !ok {
			return
		}
		if !dirty.mark(j+1, pid) {
			return // already propagated through here
		}
		cur = parent
	}
}

func equalUints(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TableDiff reports every (owner, level) assignment change between two
// tables, ordered by (owner, level).
type TableDiff struct {
	Owner, Level         int
	OldServer, NewServer int // -1 when absent on that side
}

// DiffTables lists all assignment changes from prev to next.
func DiffTables(prev, next *Table) []TableDiff {
	return appendTableDiffs(nil, prev, next, nil)
}

// appendTableDiffs is DiffTables with caller-owned storage: changes
// are appended to out (pass out[:0] — the whole slice is sorted before
// returning) and seen (cleared first; nil allocates) is the visited-
// owner scratch.
//
//manet:hotpath
func appendTableDiffs(out []TableDiff, prev, next *Table, seen map[int]bool) []TableDiff {
	if seen == nil {
		//lint:ignore hotpath warm-up: nil seen allocates the visited-owner scratch once
		seen = make(map[int]bool, len(next.owners))
	} else {
		clear(seen)
	}
	for _, v := range next.owners {
		seen[v] = true
		nRow := next.index[v]
		maxK := len(next.servers[nRow])
		inPrev := false
		if prev != nil {
			if r, ok := prev.index[v]; ok {
				inPrev = true
				if len(prev.servers[r]) > maxK {
					maxK = len(prev.servers[r])
				}
			}
		}
		for k := 1; k <= maxK; k++ {
			oldS := -1
			if inPrev {
				oldS = prev.Server(v, k)
			}
			newS := next.Server(v, k)
			if oldS != newS {
				out = append(out, TableDiff{Owner: v, Level: k, OldServer: oldS, NewServer: newS})
			}
		}
	}
	if prev != nil {
		for _, v := range prev.owners {
			if seen[v] {
				continue
			}
			for k := 1; k <= prev.Levels(v); k++ {
				if s := prev.Server(v, k); s >= 0 {
					out = append(out, TableDiff{Owner: v, Level: k, OldServer: s, NewServer: -1})
				}
			}
		}
	}
	slices.SortFunc(out, func(a, b TableDiff) int {
		if a.Owner != b.Owner {
			return a.Owner - b.Owner
		}
		return a.Level - b.Level
	})
	return out
}
