package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket geometry: geometric buckets spanning 100 ns to
// ~107 s with 4 buckets per doubling (2^(1/4) growth, ~19% relative
// error per bucket), plus an overflow bucket. Chosen so a request
// latency distribution's p50/p99 resolve to better than one bucket
// width without per-observation allocation.
const (
	histBuckets = 121
	histMinNS   = 100.0 // 1e-7 s
	histPerDbl  = 4
)

// Histogram is a fixed-geometry latency histogram. Safe for concurrent
// use (all state is atomic); all methods are nil-safe. Observations
// are recorded in nanoseconds; the exported statistics are in seconds,
// matching PhaseStat.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// histBucket maps a nanosecond value to its bucket index.
func histBucket(ns float64) int {
	if ns < histMinNS {
		return 0
	}
	b := 1 + int(math.Log2(ns/histMinNS)*histPerDbl)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// histUpper returns bucket b's upper bound in nanoseconds.
func histUpper(b int) float64 {
	return histMinNS * math.Exp2(float64(b)/histPerDbl)
}

// Observe records one duration in seconds.
func (h *Histogram) Observe(seconds float64) {
	if h == nil || seconds < 0 || math.IsNaN(seconds) {
		return
	}
	ns := seconds * 1e9
	h.counts[histBucket(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(ns))
	ins := int64(ns)
	for {
		old := h.maxNS.Load()
		if ins <= old || h.maxNS.CompareAndSwap(old, ins) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the q-quantile (q in [0, 1]) in seconds, as the
// upper bound of the bucket holding the q-th observation; 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= rank {
			return histUpper(b) / 1e9
		}
	}
	return float64(h.maxNS.Load()) / 1e9
}

// HistStat is the exported state of one histogram.
type HistStat struct {
	Count       int64   `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P90Seconds  float64 `json:"p90_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
}

// Stat summarizes the histogram. Concurrent observers may land between
// the component loads; the skew is at most a few in-flight samples.
func (h *Histogram) Stat() HistStat {
	var s HistStat
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	if s.Count > 0 {
		s.MeanSeconds = float64(h.sumNS.Load()) / float64(s.Count) / 1e9
	}
	s.MaxSeconds = float64(h.maxNS.Load()) / 1e9
	s.P50Seconds = h.Quantile(0.50)
	s.P90Seconds = h.Quantile(0.90)
	s.P99Seconds = h.Quantile(0.99)
	return s
}
