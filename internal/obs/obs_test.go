package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety drives the whole API through nil receivers: the
// instrumented hot paths rely on every one of these being a no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("g")
	g.Set(3.5)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %v", g.Value())
	}
	tm := r.Timer("t")
	sp := tm.Start()
	sp.Stop()
	if tm.Count() != 0 || tm.Seconds() != 0 || tm.MaxSeconds() != 0 {
		t.Error("nil timer accumulated")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Phases != nil {
		t.Error("nil registry snapshot not empty")
	}

	var p *Progress
	cell := p.CellStart(64, 1)
	cell.Done(nil)
	if s, f, fa := p.Counts(); s != 0 || f != 0 || fa != 0 {
		t.Error("nil progress counted")
	}
	if np := NewProgress(nil, 3, nil); np != nil {
		t.Error("NewProgress with no sinks should return nil")
	}
}

func TestRegistryAccumulates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim.ticks")
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if c2 := r.Counter("sim.ticks"); c2 != c {
		t.Error("Counter lookup not stable")
	}
	r.Gauge("sim.levels").Set(4)
	tm := r.Timer(PhaseTick)
	for i := 0; i < 3; i++ {
		tm.Start().Stop()
	}
	snap := r.Snapshot()
	if snap.Counters["sim.ticks"] != 10 {
		t.Errorf("counter = %d, want 10", snap.Counters["sim.ticks"])
	}
	if snap.Gauges["sim.levels"] != 4 {
		t.Errorf("gauge = %v, want 4", snap.Gauges["sim.levels"])
	}
	ps := snap.Phases[PhaseTick]
	if ps.Count != 3 {
		t.Errorf("phase count = %d, want 3", ps.Count)
	}
	if ps.Seconds < 0 || ps.MaxSeconds < 0 || ps.MaxSeconds > ps.Seconds {
		t.Errorf("phase timing implausible: %+v", ps)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("n").Inc()
				r.Timer("t").Start().Stop()
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["n"] != 1600 {
		t.Errorf("counter = %d, want 1600", snap.Counters["n"])
	}
	if snap.Phases["t"].Count != 1600 {
		t.Errorf("timer count = %d, want 1600", snap.Phases["t"].Count)
	}
}

// TestSnapshotJSONDeterministic pins the manifest's metrics encoding:
// repeated marshals of the same snapshot must be byte-identical
// (encoding/json sorts map keys).
func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		r.Counter(name).Inc()
		r.Timer("phase." + name).Start().Stop()
	}
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("snapshot encoding unstable:\n%s\n%s", a, b)
	}
	want := []string{"phase.alpha", "phase.beta", "phase.mid", "phase.omega", "phase.zeta"}
	got := r.Snapshot().PhaseNames()
	if len(got) != len(want) {
		t.Fatalf("PhaseNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PhaseNames = %v, want %v", got, want)
		}
	}
}

func TestManifestWriteFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.ticks").Add(42)
	r.Timer(PhaseTick).Start().Stop()

	m := NewManifest("testtool")
	m.Seed = 7
	m.Config = map[string]any{"n": 128}
	m.Finish(r)
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Tool != "testtool" || back.Seed != 7 {
		t.Errorf("round-trip lost fields: %+v", back)
	}
	if back.GitDescribe == "" || back.GoVersion == "" || back.GOMAXPROCS < 1 {
		t.Errorf("environment fields missing: %+v", back)
	}
	if back.Metrics.Counters["sim.ticks"] != 42 {
		t.Errorf("metrics not embedded: %+v", back.Metrics)
	}
	if back.WallSeconds < 0 {
		t.Errorf("wall seconds = %v", back.WallSeconds)
	}
}

func TestProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	p := NewProgress(&buf, 3, r)
	c1 := p.CellStart(64, 100)
	c2 := p.CellStart(64, 101)
	c1.Done(nil)
	c2.Done(os.ErrInvalid)
	if s, f, fa := p.Counts(); s != 2 || f != 2 || fa != 1 {
		t.Errorf("counts = %d/%d/%d, want 2/2/1", s, f, fa)
	}
	out := buf.String()
	if !strings.Contains(out, "1/3 cells done") || !strings.Contains(out, "2/3 cells done") {
		t.Errorf("progress lines missing counts:\n%s", out)
	}
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "seed=101") {
		t.Errorf("failure line missing:\n%s", out)
	}
	if !strings.Contains(out, "ETA") {
		t.Errorf("no ETA reported:\n%s", out)
	}
	snap := r.Snapshot()
	if snap.Counters[SweepCellsOK] != 1 || snap.Counters[SweepCellsFailed] != 1 {
		t.Errorf("sweep counters = %v", snap.Counters)
	}
	if snap.Phases[SweepCell].Count != 2 {
		t.Errorf("sweep.cell count = %d, want 2", snap.Phases[SweepCell].Count)
	}
}
