// Package obs is the run-observability layer of the harness: a
// lightweight metrics registry (counters, gauges, phase timers), a
// machine-readable run manifest, and sweep progress reporting.
//
// Everything in this package is purely observational. Metrics never
// feed back into simulation state or randomness, so a run with a
// registry attached produces byte-identical Results and traces to the
// same run without one (TestMetricsDoNotPerturbResults enforces this
// end to end). The package is also the only place outside dedicated
// wall-clock helpers that may import "time": simulation packages are
// barred from it by manetlint, and they interact with wall time only
// through the nil-safe Timer/Span API here.
//
// Nil-safety contract: every method on *Registry, *Counter, *Gauge,
// *Timer, Span, *Progress, and Cell is a no-op (or zero) on a nil
// receiver, so instrumented code needs no "is observability on?"
// branches — a nil registry costs a few predictable nil checks per
// tick and nothing else.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Phase names instrumented inside one simnet scan tick. PhaseTick
// brackets the whole tick; the others are disjoint sub-spans of it, so
// their totals sum to at most (and in practice almost exactly) the
// PhaseTick total.
const (
	PhaseTick    = "tick.total"
	PhaseAdvance = "tick.advance" // mobility, churn, spatial grid update
	PhaseRebuild = "tick.rebuild" // unit-disk graph rebuild
	PhaseCluster = "tick.cluster" // hierarchy (re)construction
	// PhaseClusterInc nests inside PhaseCluster: the incremental
	// maintainer's delta-driven portion of hierarchy maintenance
	// (Config.Maintainer == "incremental"); zero under the oracle.
	PhaseClusterInc = "tick.cluster_inc"
	PhaseDiff       = "tick.diff" // hierarchy diffing
	PhaseLMUpdate   = "tick.lm_update"
	PhaseMeasure    = "tick.measure" // handoff accounting and classifiers
	PhaseHops       = "tick.hops"    // intra-cluster hop sampling (BFS)
	PhaseInvariant  = "tick.invariant"
	PhaseObserver   = "tick.observer"
)

// Sweep-level metric names recorded by runner.Sweep through Progress.
const (
	SweepCell        = "sweep.cell" // per-cell wall time
	SweepCellsOK     = "sweep.cells_ok"
	SweepCellsFailed = "sweep.cells_failed"
)

// Invariant-checker metric names recorded by internal/invariant.
const (
	InvariantTicksChecked = "invariant.ticks_checked"
	InvariantViolations   = "invariant.violations"
)

// Counter is a monotonically accumulating integer metric. Safe for
// concurrent use; all methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric. Safe for concurrent use;
// all methods are nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set records v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry names and owns a run's metrics. Lookup methods create the
// metric on first use; the returned pointers are stable, so hot paths
// resolve them once and then update lock-free. A nil *Registry is
// valid and hands out nil metrics, which no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named phase timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// PhaseStat is the exported state of one phase timer.
type PhaseStat struct {
	Count      int64   `json:"count"`
	Seconds    float64 `json:"seconds"`
	MaxSeconds float64 `json:"max_seconds"`
}

// Snapshot is a point-in-time copy of a registry's metrics, with
// deterministic (sorted-key) JSON encoding.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]float64   `json:"gauges,omitempty"`
	Phases   map[string]PhaseStat `json:"phases,omitempty"`
	Hists    map[string]HistStat  `json:"hists,omitempty"`
}

// Snapshot copies the registry's current values. A nil registry yields
// the zero Snapshot. encoding/json marshals maps with sorted keys, so
// the encoded form is deterministic.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		//lint:ignore maprange map-to-map copy; the result is order-free
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		//lint:ignore maprange map-to-map copy; the result is order-free
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Phases = make(map[string]PhaseStat, len(r.timers))
		//lint:ignore maprange map-to-map copy; the result is order-free
		for name, t := range r.timers {
			s.Phases[name] = PhaseStat{
				Count:      t.Count(),
				Seconds:    t.Seconds(),
				MaxSeconds: t.MaxSeconds(),
			}
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistStat, len(r.hists))
		//lint:ignore maprange map-to-map copy; the result is order-free
		for name, h := range r.hists {
			s.Hists[name] = h.Stat()
		}
	}
	return s
}

// PhaseNames returns the snapshot's phase names, sorted.
func (s Snapshot) PhaseNames() []string {
	var names []string
	for name := range s.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
