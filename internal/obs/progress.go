package obs

import (
	"fmt"
	"io"
	"sync"
	//lint:ignore forbiddenimport wall-clock sweep progress reporting of the harness itself, never simulated time
	"time"
)

// Progress tracks a sweep's cells — started / finished / failed — and
// reports each completion with its wall time and an ETA for the rest.
// It optionally mirrors the same facts into a Registry (SweepCell,
// SweepCellsOK, SweepCellsFailed) so they land in the run manifest.
// Safe for concurrent use by the sweep's workers; a nil *Progress (and
// the Cells it hands out) no-ops everywhere.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	reg      *Registry
	total    int
	started  int
	finished int
	failed   int
	begin    time.Time
}

// NewProgress tracks total cells, printing one line per completion to
// w (nil w = track silently) and mirroring into reg (nil reg = don't).
// Returns nil — a valid no-op tracker — when both sinks are nil.
func NewProgress(w io.Writer, total int, reg *Registry) *Progress {
	if w == nil && reg == nil {
		return nil
	}
	return &Progress{w: w, reg: reg, total: total, begin: time.Now()}
}

// Cell is one in-flight sweep cell, produced by CellStart.
type Cell struct {
	p     *Progress
	n     int
	seed  uint64
	start time.Time
}

// CellStart records that the (N, seed) cell began executing.
func (p *Progress) CellStart(n int, seed uint64) Cell {
	if p == nil {
		return Cell{}
	}
	p.mu.Lock()
	p.started++
	p.mu.Unlock()
	return Cell{p: p, n: n, seed: seed, start: time.Now()}
}

// Done records the cell's outcome, printing its wall time and the
// sweep's progress and ETA.
func (c Cell) Done(err error) {
	p := c.p
	if p == nil {
		return
	}
	wall := time.Since(c.start)
	p.reg.Timer(SweepCell).Observe(wall)
	if err != nil {
		p.reg.Counter(SweepCellsFailed).Inc()
	} else {
		p.reg.Counter(SweepCellsOK).Inc()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.finished++
	if err != nil {
		p.failed++
	}
	if p.w == nil {
		return
	}
	status := "ok"
	if err != nil {
		status = "FAILED"
	}
	line := fmt.Sprintf("sweep: %d/%d cells done", p.finished, p.total)
	if p.failed > 0 {
		line += fmt.Sprintf(" (%d failed)", p.failed)
	}
	line += fmt.Sprintf("  N=%d seed=%d %s in %s",
		c.n, c.seed, status, wall.Round(time.Millisecond))
	if eta := p.etaLocked(); eta > 0 {
		line += fmt.Sprintf("  ETA %s", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
}

// etaLocked estimates the remaining wall time from the mean pace so
// far. Requires p.mu held; 0 means "no estimate" (nothing finished
// yet, or nothing remains).
func (p *Progress) etaLocked() time.Duration {
	if p.finished == 0 || p.finished >= p.total {
		return 0
	}
	elapsed := time.Since(p.begin)
	perCell := elapsed / time.Duration(p.finished)
	return perCell * time.Duration(p.total-p.finished)
}

// Counts returns (started, finished, failed).
func (p *Progress) Counts() (started, finished, failed int) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.started, p.finished, p.failed
}
