package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	//lint:ignore forbiddenimport wall-clock run stamping of the harness itself, never simulated time
	"time"
)

// Manifest is the machine-readable record of one harness invocation:
// what ran, where, for how long, and the metrics it accumulated. CLIs
// write it next to their results (-manifest out.json) so a slow, stuck
// or surprising run can be explained from its artifact instead of
// guessed at. The schema is documented in DESIGN.md §8.
type Manifest struct {
	Tool string   `json:"tool"`
	Args []string `json:"args,omitempty"`

	// Provenance: the source revision (git describe --always --dirty,
	// "unknown" outside a git checkout) and the toolchain.
	GitDescribe string `json:"git_describe"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`

	StartedAt   string  `json:"started_at"` // RFC3339, local time
	WallSeconds float64 `json:"wall_seconds"`

	// Seed and Config describe the run's inputs. Config must be a
	// plain-data value (maps/slices/scalars) so it marshals cleanly.
	Seed   uint64 `json:"seed,omitempty"`
	Config any    `json:"config,omitempty"`

	// Metrics is the registry snapshot at Finish time: counters,
	// gauges, and per-phase timing totals.
	Metrics Snapshot `json:"metrics"`

	start time.Time
}

// NewManifest starts a manifest for the named tool, stamping the
// start time, command-line arguments, toolchain, and git revision.
func NewManifest(tool string) *Manifest {
	now := time.Now()
	return &Manifest{
		Tool:        tool,
		Args:        os.Args[1:],
		GitDescribe: gitDescribe(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		StartedAt:   now.Format(time.RFC3339),
		start:       now,
	}
}

// Finish stamps the wall-clock duration and snapshots the registry
// (nil is fine: the metrics section is then empty). Call it once, just
// before writing the manifest.
func (m *Manifest) Finish(reg *Registry) {
	m.WallSeconds = time.Since(m.start).Seconds()
	m.Metrics = reg.Snapshot()
}

// WriteFile writes the manifest as indented JSON. The write goes
// through a temp file and rename, so a crash mid-write never leaves a
// half-written manifest at path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// gitDescribe identifies the working tree's revision, or "unknown"
// when git (or a repository) is unavailable.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return "unknown"
	}
	s := strings.TrimSpace(string(out))
	if s == "" {
		return "unknown"
	}
	return s
}
