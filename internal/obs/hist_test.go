package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1..100 ms uniformly: p50 ~ 50ms, p99 ~ 99ms, within one bucket
	// (~19%) of relative error.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q, want float64
	}{{0.50, 0.050}, {0.90, 0.090}, {0.99, 0.099}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want*0.8 || got > c.want*1.25 {
			t.Errorf("q%.0f = %v, want ~%v", c.q*100, got, c.want)
		}
	}
	st := h.Stat()
	if math.Abs(st.MeanSeconds-0.0505) > 0.002 {
		t.Errorf("mean = %v, want ~0.0505", st.MeanSeconds)
	}
	if math.Abs(st.MaxSeconds-0.100) > 1e-6 {
		t.Errorf("max = %v, want 0.100", st.MaxSeconds)
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not zero")
	}
	e := &Histogram{}
	if e.Quantile(0.99) != 0 || e.Stat().Count != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)          // below first bucket
	h.Observe(1e-9)       // below first bucket
	h.Observe(3600)       // overflow bucket
	h.Observe(-1)         // dropped
	h.Observe(math.NaN()) // dropped
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(0.01); q > 1e-6 {
		t.Errorf("p1 = %v, want sub-microsecond", q)
	}
}

func TestRegistryHist(t *testing.T) {
	r := NewRegistry()
	r.Hist("lat").Observe(0.01)
	if r.Hist("lat") != r.Hist("lat") {
		t.Fatal("histogram pointer not stable")
	}
	s := r.Snapshot()
	if s.Hists["lat"].Count != 1 {
		t.Fatalf("snapshot hists = %+v", s.Hists)
	}
	var nilReg *Registry
	if nilReg.Hist("x") != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
}
