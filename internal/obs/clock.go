package obs

// Wall-clock phase timing. This file (plus manifest.go and
// progress.go) confines the harness's wall-clock use to the obs
// package: simulated time flows exclusively through the DES clock, and
// manetlint's forbiddenimport rule keeps "time" out of simulation
// packages. The annotations waive the rule for these helpers alone.

import (
	"sync/atomic"
	//lint:ignore forbiddenimport wall-clock phase timing of the harness itself, never simulated time
	"time"
)

// Timer accumulates wall-time spans of one named phase: how many spans
// were recorded, their total, and the longest single span. Safe for
// concurrent use; all methods are nil-safe.
type Timer struct {
	count atomic.Int64
	ns    atomic.Int64
	maxNS atomic.Int64
}

// Span is one in-flight timed interval, produced by Timer.Start. The
// zero Span (from a nil Timer) is valid and Stop on it is a no-op.
type Span struct {
	t     *Timer
	start time.Time
}

// Start opens a span on the timer. Time flows from the monotonic
// clock, so suspends/NTP steps cannot produce negative spans.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// Stop closes the span, folding its elapsed wall time into the timer.
func (s Span) Stop() {
	if s.t == nil {
		return
	}
	s.t.Observe(time.Since(s.start))
}

// Observe folds one externally measured duration into the timer.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := d.Nanoseconds()
	t.count.Add(1)
	t.ns.Add(ns)
	for {
		old := t.maxNS.Load()
		if ns <= old || t.maxNS.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Count returns how many spans have been recorded.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Seconds returns the accumulated wall time in seconds. Under
// parallelism this is CPU-style time: concurrent spans all count, so
// the sum can exceed the run's wall-clock duration.
func (t *Timer) Seconds() float64 {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load()).Seconds()
}

// MaxSeconds returns the longest single recorded span in seconds.
func (t *Timer) MaxSeconds() float64 {
	if t == nil {
		return 0
	}
	return time.Duration(t.maxNS.Load()).Seconds()
}
