package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerate reports a fit attempted on data with no usable spread:
// every transformed abscissa coincides (e.g. a sweep over a single
// distinct N), so the slope is unidentifiable and R² is meaningless.
// Callers check it with errors.Is.
var ErrDegenerate = errors.New("degenerate fit: all N values coincide")

// Scaling-law fitting. The paper's headline claims are asymptotic
// (φ, γ = Θ(log²|V|)); the harness tests them by fitting measured
// overhead y(N) against a family of candidate growth models and
// comparing goodness of fit. The models are linear in their
// parameters, so ordinary least squares suffices:
//
//	log2:   y = a + b·(log N)²        — the paper's claim
//	log:    y = a + b·log N           — under-estimate
//	sqrt:   y = a + b·√N              — e.g. flat-LM update cost
//	linear: y = a + b·N               — e.g. flooding-based LM
//	power:  log y = a + b·log N       — free-exponent power law
//
// For asymptotic shape comparison, R² on its own favors models with
// heavier tails, so the harness reports every fit and the per-model
// residuals, and EXPERIMENTS.md records which model wins.

// Model identifies a candidate scaling law.
type Model string

// Candidate models.
const (
	ModelLog2   Model = "a+b·log²N"
	ModelLog    Model = "a+b·logN"
	ModelSqrt   Model = "a+b·√N"
	ModelLinear Model = "a+b·N"
	ModelPower  Model = "c·N^p"
)

// Fit is a fitted two-parameter model.
type Fit struct {
	Model Model
	A, B  float64 // intercept and slope in the transformed space
	R2    float64 // coefficient of determination in the fitted space
	RMSE  float64 // root-mean-square error in the original y space
}

// Eval evaluates the fitted model at n.
func (f Fit) Eval(n float64) float64 {
	switch f.Model {
	case ModelLog2:
		l := math.Log(n)
		return f.A + f.B*l*l
	case ModelLog:
		return f.A + f.B*math.Log(n)
	case ModelSqrt:
		return f.A + f.B*math.Sqrt(n)
	case ModelLinear:
		return f.A + f.B*n
	case ModelPower:
		return math.Exp(f.A) * math.Pow(n, f.B)
	default:
		return math.NaN()
	}
}

// String renders the fit for reports.
func (f Fit) String() string {
	if f.Model == ModelPower {
		return fmt.Sprintf("%s: c=%.4g p=%.3f (R²=%.4f, RMSE=%.4g)",
			f.Model, math.Exp(f.A), f.B, f.R2, f.RMSE)
	}
	return fmt.Sprintf("%s: a=%.4g b=%.4g (R²=%.4f, RMSE=%.4g)",
		f.Model, f.A, f.B, f.R2, f.RMSE)
}

// leastSquares fits y = a + b·x and returns a, b, R².
func leastSquares(x, y []float64) (a, b, r2 float64) {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	// Relative guard: den is the x-variance scaled by n²; roundoff in
	// sxx leaves it a tiny nonzero value when all x coincide, which an
	// exact-zero test misses and which would produce a garbage slope.
	den := n*sxx - sx*sx
	if den <= 1e-12*n*sxx {
		return sy / n, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := a + b*x[i]
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	//lint:ignore floateq exact-zero guard before division (degenerate fit)
	if ssTot == 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2
}

// FitModel fits one candidate model to (n, y) points. Points with
// non-finite coordinates, non-positive n, or non-positive y for the
// power model are rejected with an error: a single NaN sample would
// otherwise poison every sum in the regression and leave RMSE NaN,
// which silently scrambled FitAll's report ordering.
func FitModel(m Model, ns, ys []float64) (Fit, error) {
	if len(ns) != len(ys) || len(ns) < 3 {
		return Fit{}, fmt.Errorf("stats: need >=3 points, got %d/%d", len(ns), len(ys))
	}
	x := make([]float64, len(ns))
	y := make([]float64, len(ys))
	for i, n := range ns {
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return Fit{}, fmt.Errorf("stats: non-finite N %v", n)
		}
		if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return Fit{}, fmt.Errorf("stats: non-finite y %v at N=%v", ys[i], n)
		}
		if n <= 0 {
			return Fit{}, fmt.Errorf("stats: non-positive N %v", n)
		}
		switch m {
		case ModelLog2:
			l := math.Log(n)
			x[i] = l * l
			y[i] = ys[i]
		case ModelLog:
			x[i] = math.Log(n)
			y[i] = ys[i]
		case ModelSqrt:
			x[i] = math.Sqrt(n)
			y[i] = ys[i]
		case ModelLinear:
			x[i] = n
			y[i] = ys[i]
		case ModelPower:
			if ys[i] <= 0 {
				return Fit{}, fmt.Errorf("stats: power fit needs positive y, got %v", ys[i])
			}
			x[i] = math.Log(n)
			y[i] = math.Log(ys[i])
		default:
			return Fit{}, fmt.Errorf("stats: unknown model %q", m)
		}
	}
	minX, maxX := x[0], x[0]
	for _, v := range x[1:] {
		if v < minX {
			minX = v
		}
		if v > maxX {
			maxX = v
		}
	}
	scale := math.Max(math.Abs(minX), math.Abs(maxX))
	if maxX-minX <= 1e-9*scale {
		return Fit{}, fmt.Errorf("stats: %w (model %s)", ErrDegenerate, m)
	}
	a, b, r2 := leastSquares(x, y)
	f := Fit{Model: m, A: a, B: b, R2: r2}
	var ss float64
	for i := range ns {
		d := f.Eval(ns[i]) - ys[i]
		ss += d * d
	}
	f.RMSE = math.Sqrt(ss / float64(len(ns)))
	return f, nil
}

// FitAll fits every candidate model and returns the fits sorted by
// ascending RMSE in the original space (best first). Models that fail
// (e.g. power law on zero data, any non-finite sample) are skipped.
//
// The sort is NaN-stable: sort.Slice's order is unspecified when the
// comparator is inconsistent, which `RMSE <` is in the presence of
// NaN. FitModel now rejects the non-finite inputs that produced NaN
// RMSEs, and as defense in depth the comparator ranks any residual
// non-finite RMSE after every finite one, with the fixed candidate
// order (stable sort) breaking ties — so report ordering is
// deterministic no matter what.
func FitAll(ns, ys []float64) []Fit {
	var out []Fit
	for _, m := range []Model{ModelLog2, ModelLog, ModelSqrt, ModelLinear, ModelPower} {
		if f, err := FitModel(m, ns, ys); err == nil {
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := out[i].RMSE, out[j].RMSE
		fi, fj := !math.IsNaN(ri) && !math.IsInf(ri, 0), !math.IsNaN(rj) && !math.IsInf(rj, 0)
		if fi != fj {
			return fi // finite RMSEs rank before non-finite ones
		}
		return ri < rj
	})
	return out
}

// PowerExponent is a convenience: the fitted exponent p of y ≈ c·N^p.
// A polylogarithmic quantity has p → 0 as N grows; a Θ(√N) one has
// p ≈ 0.5. Returns an error when the fit is impossible.
func PowerExponent(ns, ys []float64) (float64, error) {
	f, err := FitModel(ModelPower, ns, ys)
	if err != nil {
		return 0, err
	}
	return f.B, nil
}
