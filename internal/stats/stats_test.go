package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestWelfordAgainstNaive(t *testing.T) {
	src := rng.New(1)
	var w Welford
	var xs []float64
	for i := 0; i < 10000; i++ {
		x := src.Norm()*3 + 7
		xs = append(xs, x)
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-6 {
		t.Fatalf("variance %v vs %v", w.Variance(), variance)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("zero-value Welford not zeroed")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Fatalf("single obs: mean %v var %v", w.Mean(), w.Variance())
	}
}

func TestWelfordMerge(t *testing.T) {
	src := rng.New(2)
	var all, a, b Welford
	for i := 0; i < 5000; i++ {
		x := src.Float64() * 100
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-6 {
		t.Fatalf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
	// Merging into empty copies.
	var empty Welford
	empty.Merge(all)
	if empty.Mean() != all.Mean() || empty.N() != all.N() {
		t.Fatal("merge into empty broken")
	}
}

func TestWelfordMergeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var whole, left, right Welford
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			x = math.Mod(x, 1e6)
			whole.Add(x)
			if i < len(xs)/2 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(right)
		return left.N() == whole.N() &&
			math.Abs(left.Mean()-whole.Mean()) < 1e-6 &&
			math.Abs(left.Variance()-whole.Variance()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1.0, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(100) // overflow
	h.Add(-1)  // clamps to bucket 0
	buckets, overflow := h.Counts()
	if overflow != 1 {
		t.Fatalf("overflow = %d", overflow)
	}
	if buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d", buckets[0])
	}
	if h.Total() != 12 {
		t.Fatalf("total = %d", h.Total())
	}
	// Median lands near 5.
	q := h.Quantile(0.5)
	if q < 3 || q > 7 {
		t.Fatalf("median = %v", q)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(0.5, 100)
	src := rng.New(3)
	for i := 0; i < 10000; i++ {
		h.Add(src.Exp(0.2))
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("zz") != 0 {
		t.Fatal("counter values wrong")
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestPerLevel(t *testing.T) {
	var p PerLevel
	p.Add(2, 10)
	p.Add(2, 20)
	p.Add(0, 1)
	if p.Max() != 2 {
		t.Fatalf("Max = %d", p.Max())
	}
	if got := p.Level(2).Mean(); got != 15 {
		t.Fatalf("level-2 mean = %v", got)
	}
	if got := p.Level(1).N(); got != 0 {
		t.Fatalf("level-1 N = %d", got)
	}
	if got := p.Level(9).N(); got != 0 {
		t.Fatalf("absent level N = %d", got)
	}
}

// --- fit tests ---

func genSeries(f func(n float64) float64) (ns, ys []float64) {
	for _, n := range []float64{64, 128, 256, 512, 1024, 2048, 4096} {
		ns = append(ns, n)
		ys = append(ys, f(n))
	}
	return
}

func TestFitRecoversLog2(t *testing.T) {
	ns, ys := genSeries(func(n float64) float64 {
		l := math.Log(n)
		return 3 + 0.7*l*l
	})
	f, err := FitModel(ModelLog2, ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.A-3) > 1e-6 || math.Abs(f.B-0.7) > 1e-6 {
		t.Fatalf("recovered a=%v b=%v", f.A, f.B)
	}
	if f.R2 < 0.999999 {
		t.Fatalf("R² = %v", f.R2)
	}
}

func TestFitRecoversPower(t *testing.T) {
	ns, ys := genSeries(func(n float64) float64 { return 2 * math.Pow(n, 0.5) })
	f, err := FitModel(ModelPower, ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.B-0.5) > 1e-9 {
		t.Fatalf("exponent = %v", f.B)
	}
	if math.Abs(f.Eval(256)-2*16) > 1e-6 {
		t.Fatalf("Eval(256) = %v", f.Eval(256))
	}
}

func TestFitAllPrefersTrueModel(t *testing.T) {
	// Pure log² data: the log² model must beat sqrt and linear.
	ns, ys := genSeries(func(n float64) float64 {
		l := math.Log(n)
		return 0.5 * l * l
	})
	fits := FitAll(ns, ys)
	if len(fits) < 4 {
		t.Fatalf("only %d fits", len(fits))
	}
	rank := map[Model]int{}
	for i, f := range fits {
		rank[f.Model] = i
	}
	if rank[ModelLog2] > rank[ModelSqrt] || rank[ModelLog2] > rank[ModelLinear] {
		t.Fatalf("log² ranked %d, sqrt %d, linear %d", rank[ModelLog2], rank[ModelSqrt], rank[ModelLinear])
	}
	// And the converse: sqrt data is not best-fit by log².
	ns2, ys2 := genSeries(func(n float64) float64 { return 2 * math.Sqrt(n) })
	fits2 := FitAll(ns2, ys2)
	if fits2[0].Model == ModelLog2 {
		t.Fatal("log² spuriously won on √N data")
	}
}

func TestPowerExponentDiscriminates(t *testing.T) {
	// Polylog data yields a small exponent; linear data yields ~1.
	ns, ys := genSeries(func(n float64) float64 {
		l := math.Log(n)
		return l * l
	})
	p, err := PowerExponent(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.45 {
		t.Fatalf("polylog exponent = %v, want small", p)
	}
	ns2, ys2 := genSeries(func(n float64) float64 { return 3 * n })
	p2, _ := PowerExponent(ns2, ys2)
	if math.Abs(p2-1) > 1e-9 {
		t.Fatalf("linear exponent = %v", p2)
	}
}

func TestFitModelErrors(t *testing.T) {
	if _, err := FitModel(ModelLog2, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("too few points accepted")
	}
	if _, err := FitModel(ModelPower, []float64{1, 2, 3}, []float64{1, 0, 2}); err == nil {
		t.Fatal("power fit accepted non-positive y")
	}
	if _, err := FitModel(ModelLog, []float64{-1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("non-positive N accepted")
	}
	if _, err := FitModel(Model("bogus"), []float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestFitRejectsNonFinite is the regression test for NaN poisoning:
// one non-finite sample used to flow through the OLS sums, leave RMSE
// NaN on every model, and let sort.Slice order FitAll's report
// arbitrarily. Non-finite inputs are now rejected per model, so FitAll
// deterministically returns no fits (and never a non-finite RMSE).
func TestFitRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		ns, ys []float64
	}{
		{"nan-y", []float64{64, 128, 256, 512}, []float64{1, nan, 3, 4}},
		{"inf-y", []float64{64, 128, 256, 512}, []float64{1, math.Inf(1), 3, 4}},
		{"neg-inf-y", []float64{64, 128, 256, 512}, []float64{1, math.Inf(-1), 3, 4}},
		{"nan-n", []float64{64, nan, 256, 512}, []float64{1, 2, 3, 4}},
		{"inf-n", []float64{64, math.Inf(1), 256, 512}, []float64{1, 2, 3, 4}},
	}
	for _, tc := range cases {
		for _, m := range []Model{ModelLog2, ModelLog, ModelSqrt, ModelLinear, ModelPower} {
			if _, err := FitModel(m, tc.ns, tc.ys); err == nil {
				t.Errorf("%s: model %s accepted non-finite input", tc.name, m)
			}
		}
		fits := FitAll(tc.ns, tc.ys)
		if len(fits) != 0 {
			t.Errorf("%s: FitAll returned %d fits on non-finite data", tc.name, len(fits))
		}
		for _, f := range fits {
			if math.IsNaN(f.RMSE) || math.IsInf(f.RMSE, 0) {
				t.Errorf("%s: non-finite RMSE %v escaped for model %s", tc.name, f.RMSE, f.Model)
			}
		}
	}
}

// TestFitAllOrderDeterministic pins FitAll's report ordering: repeated
// calls on identical data must agree fit-for-fit, and RMSE must be
// ascending over the finite prefix.
func TestFitAllOrderDeterministic(t *testing.T) {
	ns := []float64{64, 128, 256, 512, 1024}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		l := math.Log(n)
		ys[i] = 0.3 + 0.05*l*l
	}
	first := FitAll(ns, ys)
	if len(first) == 0 {
		t.Fatal("no fits")
	}
	for i := 1; i < len(first); i++ {
		if first[i].RMSE < first[i-1].RMSE {
			t.Fatalf("RMSE not ascending: %v then %v", first[i-1], first[i])
		}
	}
	for trial := 0; trial < 10; trial++ {
		again := FitAll(ns, ys)
		if len(again) != len(first) {
			t.Fatalf("trial %d: %d fits vs %d", trial, len(again), len(first))
		}
		for i := range first {
			if again[i].Model != first[i].Model {
				t.Fatalf("trial %d: order differs at %d: %s vs %s",
					trial, i, again[i].Model, first[i].Model)
			}
		}
	}
}

// TestFitDegenerateSingleN is the regression test for fits over a
// sweep with one distinct N: these used to return NaN R² or garbage
// slopes from a near-zero OLS denominator; now every model reports
// ErrDegenerate and FitAll returns no fits.
func TestFitDegenerateSingleN(t *testing.T) {
	ns := []float64{128, 128, 128, 128}
	ys := []float64{1.0, 1.1, 0.9, 1.05}
	for _, m := range []Model{ModelLog2, ModelLog, ModelSqrt, ModelLinear, ModelPower} {
		_, err := FitModel(m, ns, ys)
		if !errors.Is(err, ErrDegenerate) {
			t.Fatalf("model %s: err = %v, want ErrDegenerate", m, err)
		}
	}
	if fits := FitAll(ns, ys); len(fits) != 0 {
		t.Fatalf("FitAll returned %d fits on degenerate data", len(fits))
	}
	if _, err := PowerExponent(ns, ys); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("PowerExponent err = %v, want ErrDegenerate", err)
	}
	// Distinct N values must still fit fine.
	if _, err := FitModel(ModelLog, []float64{64, 128, 256}, []float64{1, 2, 3}); err != nil {
		t.Fatalf("non-degenerate fit failed: %v", err)
	}
}

func TestFitNoisyLog2StillWins(t *testing.T) {
	src := rng.New(4)
	var ns, ys []float64
	for _, n := range []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		l := math.Log(n)
		for rep := 0; rep < 5; rep++ {
			ns = append(ns, n)
			ys = append(ys, (1+0.05*src.Norm())*0.8*l*l)
		}
	}
	fits := FitAll(ns, ys)
	best := fits[0].Model
	if best != ModelLog2 && best != ModelLog && best != ModelPower {
		t.Fatalf("noisy log² best fit = %v", best)
	}
	// The power exponent must be clearly sub-sqrt.
	p, _ := PowerExponent(ns, ys)
	if p > 0.4 {
		t.Fatalf("noisy log² exponent = %v", p)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
}
