package stats_test

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ExampleFitAll shows the scaling-law discrimination the harness uses
// for the paper's Θ(log²N) claims: on clean log² data, the log² model
// wins and the free power-law exponent is far below 0.5.
func ExampleFitAll() {
	var ns, ys []float64
	for _, n := range []float64{64, 256, 1024, 4096, 16384} {
		l := math.Log(n)
		ns = append(ns, n)
		ys = append(ys, 0.5*l*l)
	}
	best := stats.FitAll(ns, ys)[0]
	fmt.Println("best model:", best.Model)
	p, _ := stats.PowerExponent(ns, ys)
	fmt.Println("power exponent below 0.5:", p < 0.5)
	// Output:
	// best model: a+b·log²N
	// power exponent below 0.5: true
}

// ExampleWelford demonstrates streaming moments with merging, the
// parallel-reduction primitive of the sweep harness.
func ExampleWelford() {
	var a, b stats.Welford
	for i := 1; i <= 4; i++ {
		a.Add(float64(i))
	}
	for i := 5; i <= 8; i++ {
		b.Add(float64(i))
	}
	a.Merge(b)
	fmt.Println("n:", a.N())
	fmt.Println("mean:", a.Mean())
	// Output:
	// n: 8
	// mean: 4.5
}
