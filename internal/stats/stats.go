// Package stats provides the statistical machinery for the benchmark
// harness: streaming moments (Welford), histograms, per-level counter
// tables, and least-squares fitting of candidate scaling laws used to
// test the paper's Θ(log²|V|) claims against power-law alternatives.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in one pass, numerically
// stably. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add accumulates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w Welford) N() int { return w.n }

// Mean returns the sample mean (0 when empty).
func (w Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 when n < 2).
func (w Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval for the mean.
func (w Welford) CI95() float64 { return 1.96 * w.StdErr() }

// Merge combines another accumulator into w (parallel reduction).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// Histogram is a fixed-width bucket histogram over [0, width*buckets),
// with an overflow bucket.
type Histogram struct {
	width    float64
	counts   []int64
	overflow int64
	total    int64
	sum      float64
}

// NewHistogram creates a histogram with the given bucket width and
// bucket count.
func NewHistogram(width float64, buckets int) *Histogram {
	if width <= 0 || buckets <= 0 {
		panic("stats: histogram needs positive width and buckets")
	}
	return &Histogram{width: width, counts: make([]int64, buckets)}
}

// Add records one observation (negative values clamp to bucket 0).
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	if x < 0 {
		h.counts[0]++
		return
	}
	i := int(x / h.width)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Total returns the observation count.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns an approximate quantile (q in [0,1]) using bucket
// midpoints; overflow observations return +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			return (float64(i) + 0.5) * h.width
		}
	}
	return math.Inf(1)
}

// Counts returns a copy of the bucket counts plus the overflow count.
func (h *Histogram) Counts() (buckets []int64, overflow int64) {
	return append([]int64(nil), h.counts...), h.overflow
}

// Counter is a labeled monotone counter set with deterministic
// iteration order.
type Counter struct {
	m map[string]float64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{m: map[string]float64{}} }

// Add increments label by delta.
func (c *Counter) Add(label string, delta float64) { c.m[label] += delta }

// Get returns the current value of label.
func (c *Counter) Get(label string) float64 { return c.m[label] }

// Labels returns all labels, sorted.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PerLevel accumulates a Welford series indexed by small non-negative
// integers (hierarchy levels).
type PerLevel struct {
	levels []Welford
}

// Add accumulates x at level k, growing as needed.
func (p *PerLevel) Add(k int, x float64) {
	for len(p.levels) <= k {
		p.levels = append(p.levels, Welford{})
	}
	p.levels[k].Add(x)
}

// Level returns the accumulator for level k (zero value when absent).
func (p *PerLevel) Level(k int) Welford {
	if k < 0 || k >= len(p.levels) {
		return Welford{}
	}
	return p.levels[k]
}

// Max returns the highest level with data.
func (p *PerLevel) Max() int { return len(p.levels) - 1 }

// String renders means per level for diagnostics.
func (p *PerLevel) String() string {
	s := "["
	for k, w := range p.levels {
		if k > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%.4g", k, w.Mean())
	}
	return s + "]"
}
