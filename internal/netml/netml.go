// Package netml is a message-level network layer on top of the
// discrete-event engine: packets traverse the level-0 graph hop by
// hop, each transmission taking PerHopDelay seconds, with the route
// recomputed at every hop against the *current* topology (so mobility
// during flight reroutes or strands packets, as in a real MANET).
//
// The packet-count accounting of the lm package answers "how much
// traffic"; this layer answers "how long does a handoff take" —
// experiment E19 measures LM entry-transfer latency per hierarchy
// level, which the paper's model implies is Θ(h_k · per-hop delay).
package netml

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Delivery reports the fate of one message.
type Delivery struct {
	OK      bool
	Hops    int
	Latency float64 // seconds from send to delivery (or failure)
}

// Network forwards messages over a mutable topology.
type Network struct {
	PerHopDelay float64
	// MaxHops bounds forwarding to catch routing loops or unreachable
	// destinations under churn (default 4·diameter estimate).
	MaxHops int

	engine  *sim.Engine
	graph   *topology.Graph
	scratch *topology.BFSScratch

	sent      int
	delivered int
	failed    int
}

// New builds a network layer over engine and an initial graph.
func New(engine *sim.Engine, g *topology.Graph, perHopDelay float64, maxHops int) *Network {
	if perHopDelay <= 0 {
		panic("netml: per-hop delay must be positive")
	}
	if maxHops <= 0 {
		maxHops = 256
	}
	return &Network{
		PerHopDelay: perHopDelay,
		MaxHops:     maxHops,
		engine:      engine,
		graph:       g,
		scratch:     topology.NewBFSScratch(g.IDSpace()),
	}
}

// Rebind points the layer at a new topology snapshot (same ID space).
// In-flight messages reroute from their current position.
func (nw *Network) Rebind(g *topology.Graph) { nw.graph = g }

// Stats reports sent/delivered/failed message counts.
func (nw *Network) Stats() (sent, delivered, failed int) {
	return nw.sent, nw.delivered, nw.failed
}

// Send schedules hop-by-hop delivery of one message from src to dst
// and invokes done exactly once on delivery or failure. done runs in
// engine context at the virtual completion time.
func (nw *Network) Send(src, dst int, done func(Delivery)) {
	nw.sent++
	start := nw.engine.Now()
	if src == dst {
		nw.delivered++
		done(Delivery{OK: true})
		return
	}
	var step func(cur, hops int)
	step = func(cur, hops int) {
		if hops >= nw.MaxHops {
			nw.failed++
			done(Delivery{OK: false, Hops: hops, Latency: nw.engine.Now() - start})
			return
		}
		next := nw.nextHop(cur, dst)
		if next < 0 {
			nw.failed++
			done(Delivery{OK: false, Hops: hops, Latency: nw.engine.Now() - start})
			return
		}
		nw.engine.ScheduleAfter(nw.PerHopDelay, "netml-hop", func(*sim.Engine) {
			if next == dst {
				nw.delivered++
				done(Delivery{OK: true, Hops: hops + 1, Latency: nw.engine.Now() - start})
				return
			}
			step(next, hops+1)
		})
	}
	step(src, 0)
}

// nextHop returns the neighbor of cur on a shortest path to dst in the
// current graph, or -1 when unreachable. Deterministic: the smallest
// qualifying neighbor wins.
func (nw *Network) nextHop(cur, dst int) int {
	if nw.graph.HasEdge(cur, dst) {
		return dst
	}
	// Distance field from dst; pick the neighbor strictly closer.
	dists := nw.scratch.DistancesFrom(nw.graph, dst, nil)
	dCur, ok := dists[cur]
	if !ok {
		return -1
	}
	best := -1
	for _, nb := range nw.graph.Neighbors(cur) {
		if d, ok := dists[nb]; ok && d == dCur-1 {
			if best == -1 || nb < best {
				best = nb
			}
		}
	}
	return best
}

// String renders counters for diagnostics.
func (nw *Network) String() string {
	return fmt.Sprintf("netml{sent %d delivered %d failed %d}", nw.sent, nw.delivered, nw.failed)
}
