package netml

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func pathGraph(n int) *topology.Graph {
	g := topology.NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestDeliveryAlongPath(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, pathGraph(6), 0.5, 0)
	var got Delivery
	nw.Send(0, 5, func(d Delivery) { got = d })
	e.Run()
	if !got.OK || got.Hops != 5 {
		t.Fatalf("delivery = %+v", got)
	}
	if math.Abs(got.Latency-2.5) > 1e-9 {
		t.Fatalf("latency = %v, want 2.5", got.Latency)
	}
	sent, delivered, failed := nw.Stats()
	if sent != 1 || delivered != 1 || failed != 0 {
		t.Fatalf("stats = %d/%d/%d", sent, delivered, failed)
	}
}

func TestSelfDelivery(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, pathGraph(3), 1, 0)
	var got Delivery
	nw.Send(2, 2, func(d Delivery) { got = d })
	e.Run()
	if !got.OK || got.Hops != 0 || got.Latency != 0 {
		t.Fatalf("self delivery = %+v", got)
	}
}

func TestUnreachableFails(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(0, 1) // 2,3 disconnected
	e := sim.NewEngine()
	nw := New(e, g, 1, 0)
	var got Delivery
	ran := false
	nw.Send(0, 3, func(d Delivery) { got = d; ran = true })
	e.Run()
	if !ran || got.OK {
		t.Fatalf("unreachable delivery = %+v (ran=%v)", got, ran)
	}
}

func TestMaxHopsBound(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, pathGraph(50), 0.1, 10)
	var got Delivery
	nw.Send(0, 49, func(d Delivery) { got = d })
	e.Run()
	if got.OK {
		t.Fatal("delivery beyond MaxHops")
	}
	if got.Hops != 10 {
		t.Fatalf("gave up after %d hops, want 10", got.Hops)
	}
}

func TestReroutingMidFlight(t *testing.T) {
	// Start on a long path; mid-flight, a shortcut appears and the
	// packet uses it.
	g1 := pathGraph(8) // 0..7
	e := sim.NewEngine()
	nw := New(e, g1, 1.0, 0)
	var got Delivery
	nw.Send(0, 7, func(d Delivery) { got = d })
	// Before the packet reaches node 2 (it decides its next hop on
	// arrival at t=2.0), rebind to a graph with shortcut edge 2-7.
	e.ScheduleAt(1.5, "shortcut", func(*sim.Engine) {
		g2 := pathGraph(8)
		g2.AddEdge(2, 7)
		nw.Rebind(g2)
	})
	e.Run()
	if !got.OK {
		t.Fatalf("delivery failed: %+v", got)
	}
	if got.Hops != 3 {
		t.Fatalf("hops = %d, want 3 (2 on the path + shortcut)", got.Hops)
	}
}

func TestStrandedByPartitionMidFlight(t *testing.T) {
	g1 := pathGraph(6)
	e := sim.NewEngine()
	nw := New(e, g1, 1.0, 0)
	var got Delivery
	ran := false
	nw.Send(0, 5, func(d Delivery) { got = d; ran = true })
	// Cut the path ahead of the packet at t=1.5 (packet at node 1).
	e.ScheduleAt(1.5, "cut", func(*sim.Engine) {
		g2 := topology.NewGraph(6)
		g2.AddEdge(0, 1)
		g2.AddEdge(1, 2)
		// 3-4-5 separated.
		g2.AddEdge(3, 4)
		g2.AddEdge(4, 5)
		nw.Rebind(g2)
	})
	e.Run()
	if !ran || got.OK {
		t.Fatalf("stranded packet delivered: %+v", got)
	}
}

func TestConcurrentMessages(t *testing.T) {
	e := sim.NewEngine()
	nw := New(e, pathGraph(20), 0.25, 0)
	delivered := 0
	for i := 0; i < 10; i++ {
		src, dst := i, 19-i
		nw.Send(src, dst, func(d Delivery) {
			if d.OK {
				delivered++
			}
		})
	}
	e.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d of 10", delivered)
	}
}

func TestDeterministicNextHop(t *testing.T) {
	// Diamond: 0-1-3, 0-2-3. Smallest qualifying neighbor (1) wins.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	e := sim.NewEngine()
	nw := New(e, g, 1, 0)
	if next := nw.nextHop(0, 3); next != 1 {
		t.Fatalf("nextHop = %d, want 1", next)
	}
}

func TestBadDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero delay accepted")
		}
	}()
	New(sim.NewEngine(), pathGraph(2), 0, 0)
}
