package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module loads and type-checks the packages of a single Go module from
// source. Imports inside the module are resolved against the module
// tree itself; everything else (the standard library) is delegated to
// the compiler's source importer, so the loader needs no export data
// and no dependencies outside the standard library. It is the offline
// stand-in for golang.org/x/tools/go/packages: the driver feeds its
// output into Pass values exactly as the real framework would.
type Module struct {
	Root string // absolute module root directory (the one holding go.mod)
	Path string // module path declared in go.mod

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string // full import path, e.g. repro/internal/cluster
	RelPath    string // path relative to the module root ("" for the root package)
	Dir        string
	Name       string

	Files     []*ast.File // non-test files, parsed with comments
	TestFiles []*ast.File // _test.go files (parsed, not type-checked)

	Types      *types.Package
	Info       *types.Info
	TypeErrors []types.Error // collected type-checker diagnostics
	ParseErrs  []error       // scanner/parser diagnostics

	// Imports are the module-internal packages this package imports,
	// in sorted import-path order (the driver analyzes them first so
	// facts flow bottom-up).
	Imports []*Package
}

// NewModule opens the module rooted at dir (which must contain go.mod).
func NewModule(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Module{
		Root:    root,
		Path:    modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// FileSet exposes the position table shared by every loaded package.
func (m *Module) FileSet() *token.FileSet { return m.fset }

// Import implements types.Importer so the type-checker can resolve the
// imports of any package we feed it.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.Load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: type information for %s unavailable", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// Load parses and type-checks the package with the given module-local
// import path, memoizing the result. Parse and type errors do not make
// Load fail: they are collected on the returned Package so callers can
// report them as findings.
func (m *Module) Load(path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, m.Path), "/")
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	pkg := &Package{ImportPath: path, RelPath: rel, Dir: dir}

	goFiles, testGoFiles, err := listGoFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	if len(goFiles) == 0 && len(testGoFiles) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	for _, name := range goFiles {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if f != nil {
			pkg.Files = append(pkg.Files, f)
			if pkg.Name == "" {
				pkg.Name = f.Name.Name
			}
		}
		if err != nil {
			pkg.ParseErrs = append(pkg.ParseErrs, err)
		}
	}
	for _, name := range testGoFiles {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if f != nil {
			pkg.TestFiles = append(pkg.TestFiles, f)
		}
		if err != nil {
			pkg.ParseErrs = append(pkg.ParseErrs, err)
		}
	}

	if len(pkg.Files) > 0 {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: m,
			Error: func(err error) {
				if te, ok := err.(types.Error); ok {
					pkg.TypeErrors = append(pkg.TypeErrors, te)
				}
			},
		}
		// Check returns an error on any diagnostic; partial type
		// information is still recorded in info, which is all the
		// analyzers need. The diagnostics themselves become findings.
		tpkg, _ := conf.Check(path, m.fset, pkg.Files, info)
		pkg.Types = tpkg
		pkg.Info = info
	}

	// Record module-internal imports so the driver can analyze the
	// dependency closure bottom-up (fact propagation order).
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if (p == m.Path || strings.HasPrefix(p, m.Path+"/")) && !seen[p] {
				seen[p] = true
			}
		}
	}
	var impPaths []string
	for p := range seen {
		impPaths = append(impPaths, p)
	}
	sort.Strings(impPaths)
	for _, p := range impPaths {
		dep, err := m.Load(p)
		if err == nil {
			pkg.Imports = append(pkg.Imports, dep)
		}
	}

	m.pkgs[path] = pkg
	return pkg, nil
}

// listGoFiles returns the buildable non-test and test Go file names in
// dir, honoring build constraints for the current platform.
func listGoFiles(dir string) (goFiles, testGoFiles []string, err error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); !ok {
			return nil, nil, err
		}
	}
	if bp == nil {
		return nil, nil, nil
	}
	goFiles = append(goFiles, bp.GoFiles...)
	testGoFiles = append(testGoFiles, bp.TestGoFiles...)
	testGoFiles = append(testGoFiles, bp.XTestGoFiles...)
	sort.Strings(goFiles)
	sort.Strings(testGoFiles)
	return goFiles, testGoFiles, nil
}

// Expand resolves package patterns to module-local import paths.
// Supported forms: "./..." (whole module), "dir/..." (subtree), a
// directory path, or a full import path inside the module. Directory
// patterns are interpreted relative to base (typically the caller's
// working directory).
func (m *Module) Expand(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all":
			pat = "./..."
			fallthrough
		case strings.HasSuffix(pat, "..."):
			dir := strings.TrimSuffix(pat, "...")
			dir = strings.TrimSuffix(dir, "/")
			if dir == "" || dir == "." {
				dir = base
			} else if !filepath.IsAbs(dir) {
				dir = filepath.Join(base, dir)
			}
			paths, err := m.walk(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case pat == m.Path || strings.HasPrefix(pat, m.Path+"/"):
			add(pat)
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(base, dir)
			}
			p, err := m.dirImportPath(dir)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (m *Module) dirImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(m.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, m.Path)
	}
	if rel == "." {
		return m.Path, nil
	}
	return m.Path + "/" + filepath.ToSlash(rel), nil
}

// walk finds every directory under dir containing at least one .go
// file, skipping testdata, vendor, and hidden directories.
func (m *Module) walk(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		p, err := m.dirImportPath(filepath.Dir(path))
		if err != nil {
			return err
		}
		if len(out) == 0 || out[len(out)-1] != p {
			out = append(out, p)
		}
		return nil
	})
	return out, err
}

func (m *Module) relFile(filename string) string {
	if rel, err := filepath.Rel(m.Root, filename); err == nil {
		return filepath.ToSlash(rel)
	}
	return filename
}
