// Package analysis is a self-contained, offline reimplementation of
// the golang.org/x/tools/go/analysis API surface this repository
// needs. The build environment has no module proxy access, so x/tools
// cannot be vendored; instead this package mirrors its core contract —
// Analyzer, Pass, Diagnostic, and Fact — closely enough that every
// analyzer under internal/lint (and its analysistest golden tests)
// would compile against the real framework with only import-path
// changes once the dependency becomes available.
//
// Deliberate deviations from x/tools, all additive:
//
//   - Pass.TestFiles carries the package's parsed _test.go files so
//     import-hygiene analyzers can see them (the upstream framework
//     models test files as separate packages, which the offline module
//     loader does not type-check).
//   - Diagnostics with Category "strict" cannot be waived by a
//     //lint:ignore directive (enforced by the drivers, not here).
//   - Facts are propagated in-process by reference between packages of
//     one driver run; the unitchecker driver serializes them with gob,
//     keyed by a simplified object path (package-level functions and
//     methods only — the only objects this repository attaches facts
//     to).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// An Analyzer is one named static check. It is run once per package;
// Requires lists analyzers whose results feed it, and FactTypes
// declares the fact types it reads and writes across packages.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation; the first line is used as a
	// one-line summary.
	Doc string

	// Run applies the analyzer to a package. It may report diagnostics
	// via pass.Report and return a result for dependent analyzers.
	Run func(*Pass) (any, error)

	// Requires lists analyzers that must run first on the same package;
	// their results are available through Pass.ResultOf.
	Requires []*Analyzer

	// ResultType is the dynamic type of Run's result (checked by the
	// driver when non-nil).
	ResultType reflect.Type

	// FactTypes declares the pointer types of facts this analyzer
	// exports or imports. An analyzer with facts runs on the whole
	// dependency closure of the checked packages.
	FactTypes []Fact

	// RunDespiteErrors lets the analyzer run on packages with type
	// errors. Analyzers that rely on complete type information should
	// leave it false.
	RunDespiteErrors bool
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the material of one package and
// collects its diagnostics and facts.
type Pass struct {
	Analyzer *Analyzer

	Fset       *token.FileSet
	Files      []*ast.File // the package's non-test source files
	TestFiles  []*ast.File // parsed _test.go files (deviation; see package doc)
	PkgPath    string      // import path; set even when Pkg is nil (test-only package)
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypeErrors []types.Error

	// ResultOf holds the results of the analyzers named in Requires.
	ResultOf map[*Analyzer]any

	// Report emits one diagnostic. The driver populates it.
	Report func(Diagnostic)

	facts factStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportStrictf reports a diagnostic that //lint:ignore cannot waive
// (Category "strict"; a repository extension, see the package doc).
func (p *Pass) ReportStrictf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: CategoryStrict, Message: fmt.Sprintf(format, args...)})
}

// CategoryStrict marks a diagnostic as not waivable by annotation.
const CategoryStrict = "strict"

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional; "strict" findings cannot be ignored
	Message  string
}

// A Fact is a piece of analyzer state attached to a package or object
// and visible to later passes over dependent packages. Fact types must
// be pointers, and gob-encodable when used with the unitchecker
// driver.
type Fact interface {
	AFact() // dummy marker method
}

// factStore is the driver-provided fact plumbing of one pass.
type factStore struct {
	importObjectFact  func(obj types.Object, fact Fact) bool
	exportObjectFact  func(obj types.Object, fact Fact)
	importPackageFact func(pkg *types.Package, fact Fact) bool
	exportPackageFact func(fact Fact)
}

// SetFactPlumbing installs the driver's fact callbacks. Drivers only.
func (p *Pass) SetFactPlumbing(
	importObj func(types.Object, Fact) bool, exportObj func(types.Object, Fact),
	importPkg func(*types.Package, Fact) bool, exportPkg func(Fact),
) {
	p.facts = factStore{importObj, exportObj, importPkg, exportPkg}
}

// ImportObjectFact copies the fact of the given type attached to obj
// into fact and reports whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts.importObjectFact == nil {
		return false
	}
	return p.facts.importObjectFact(obj, fact)
}

// ExportObjectFact attaches fact to obj for passes over dependent
// packages. obj must belong to this pass's package.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts.exportObjectFact == nil {
		panic("analysis: ExportObjectFact outside a driver run")
	}
	p.facts.exportObjectFact(obj, fact)
}

// ImportPackageFact copies the fact of the given type attached to pkg
// into fact and reports whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts.importPackageFact == nil {
		return false
	}
	return p.facts.importPackageFact(pkg, fact)
}

// ExportPackageFact attaches fact to this pass's package.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts.exportPackageFact == nil {
		panic("analysis: ExportPackageFact outside a driver run")
	}
	p.facts.exportPackageFact(fact)
}

// Validate checks the analyzer graph for the errors the real framework
// rejects: empty or duplicate names, nil Run, require cycles, and
// non-pointer fact types.
func Validate(analyzers []*Analyzer) error {
	const (
		white = iota // unvisited
		grey         // on stack
		black        // done
	)
	color := map[*Analyzer]int{}
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		if a == nil {
			return fmt.Errorf("analysis: nil analyzer")
		}
		switch color[a] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: require cycle through %s", a.Name)
		}
		color[a] = grey
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q must have a name and a Run function", a.Name)
		}
		for _, f := range a.FactTypes {
			if reflect.TypeOf(f).Kind() != reflect.Ptr {
				return fmt.Errorf("analysis: %s: fact type %T is not a pointer", a.Name, f)
			}
		}
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		color[a] = black
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return err
		}
	}
	return nil
}
