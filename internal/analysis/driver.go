package analysis

import (
	"fmt"
	"go/ast"
	"go/scanner"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position, the driver's
// rendered form of a Diagnostic. File paths are module-root-relative
// and slash-separated.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`

	strict bool // not waivable by //lint:ignore
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// SortFindings orders findings by file, line, column, then rule.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// Driver applies a suite of analyzers to module packages: it loads the
// dependency closure of the requested packages, runs the analyzers
// bottom-up so facts flow from dependencies to dependents, and applies
// the repository's //lint:ignore suppression layer (per-rule scope,
// strict findings unwaivable, stale directives reported).
type Driver struct {
	Analyzers []*Analyzer
}

// Run analyzes the packages matched by patterns in the module rooted
// at root; directory patterns resolve relative to base. Findings are
// reported only for the matched packages (dependencies are analyzed
// for facts alone) and returned sorted. A non-nil error means the
// module itself could not be loaded; per-file parse and type problems
// become "typecheck" findings instead.
func (d *Driver) Run(root, base string, patterns []string) ([]Finding, error) {
	if err := Validate(d.Analyzers); err != nil {
		return nil, err
	}
	m, err := NewModule(root)
	if err != nil {
		return nil, err
	}
	paths, err := m.Expand(base, patterns)
	if err != nil {
		return nil, err
	}

	requested := map[string]bool{}
	var order []*Package
	seen := map[*Package]bool{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, dep := range p.Imports {
			visit(dep)
		}
		order = append(order, p)
	}
	for _, p := range paths {
		pkg, err := m.Load(p)
		if err != nil {
			return nil, err
		}
		requested[p] = true
		visit(pkg)
	}

	seq := Sequence(d.Analyzers)
	bank := newFactBank()
	var all []Finding
	for _, pkg := range order {
		all = append(all, d.runPackage(m, pkg, seq, bank, requested[pkg.ImportPath])...)
	}
	SortFindings(all)
	return all, nil
}

// Sequence flattens the analyzer graph into a run order where every
// analyzer follows its Requires.
func Sequence(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := map[*Analyzer]bool{}
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// runPackage runs the analyzer sequence over one package. Diagnostics
// are collected (and the suppression layer applied) only when report
// is true; facts are exported into bank either way.
func (d *Driver) runPackage(m *Module, pkg *Package, seq []*Analyzer, bank *factBank, report bool) []Finding {
	type ruled struct {
		rule string
		f    Finding
	}
	var raw []ruled

	if report {
		for _, err := range pkg.ParseErrs {
			if list, ok := err.(scanner.ErrorList); ok {
				for _, e := range list {
					raw = append(raw, ruled{"typecheck", Finding{
						File: m.relFile(e.Pos.Filename), Line: e.Pos.Line, Col: e.Pos.Column,
						Rule: "typecheck", Message: e.Msg,
					}})
				}
				continue
			}
			raw = append(raw, ruled{"typecheck", Finding{
				File: pkg.RelPathOrDot(), Line: 1, Col: 1, Rule: "typecheck", Message: err.Error(),
			}})
		}
		for _, te := range pkg.TypeErrors {
			pos := m.fset.Position(te.Pos)
			raw = append(raw, ruled{"typecheck", Finding{
				File: m.relFile(pos.Filename), Line: pos.Line, Col: pos.Column,
				Rule: "typecheck", Message: te.Msg,
			}})
		}
	}

	results := map[*Analyzer]any{}
	for _, a := range seq {
		if len(pkg.TypeErrors) > 0 && !a.RunDespiteErrors {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       m.fset,
			Files:      pkg.Files,
			TestFiles:  pkg.TestFiles,
			PkgPath:    pkg.ImportPath,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			TypeErrors: pkg.TypeErrors,
			ResultOf:   map[*Analyzer]any{},
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		rule := a.Name
		pass.Report = func(diag Diagnostic) {
			if !report {
				return
			}
			pos := m.fset.Position(diag.Pos)
			raw = append(raw, ruled{rule, Finding{
				File: m.relFile(pos.Filename), Line: pos.Line, Col: pos.Column,
				Rule: rule, Message: diag.Message,
				strict: diag.Category == CategoryStrict,
			}})
		}
		bank.plumb(pass)
		res, err := a.Run(pass)
		if err != nil {
			raw = append(raw, ruled{rule, Finding{
				File: pkg.RelPathOrDot(), Line: 1, Col: 1, Rule: rule,
				Message: fmt.Sprintf("analyzer failed: %v", err), strict: true,
			}})
			continue
		}
		results[a] = res
	}

	if !report {
		return nil
	}

	active := map[string]bool{"typecheck": true}
	for _, a := range seq {
		active[a.Name] = true
	}
	allFiles := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
	directives := CollectIgnores(m.fset, m.Root, allFiles)
	matched := make([]map[string]bool, len(directives))
	for i := range matched {
		matched[i] = map[string]bool{}
	}

	var out []Finding
	for _, r := range raw {
		suppressed := false
		if !r.f.strict {
			for i, dir := range directives {
				if dir.File != r.f.File {
					continue
				}
				if dir.Line != r.f.Line && dir.Line != r.f.Line-1 {
					continue
				}
				for _, rule := range dir.Rules {
					if rule == r.rule {
						matched[i][rule] = true
						suppressed = true
					}
				}
			}
		}
		if !suppressed {
			out = append(out, r.f)
		}
	}

	// A directive that waived nothing is debt that can only grow stale:
	// report it so the annotation inventory only ever shrinks. Rules
	// outside the active analyzer set are left alone (a partial run
	// must not condemn another analyzer's annotations).
	for i, dir := range directives {
		for _, rule := range dir.Rules {
			if active[rule] && !matched[i][rule] {
				out = append(out, Finding{
					File: dir.File, Line: dir.Line, Col: dir.Col,
					Rule: "ignorecheck",
					Message: fmt.Sprintf(
						"stale //lint:ignore %s: no %s finding on this or the next line; remove the directive", rule, rule),
					strict: true,
				})
			}
		}
	}
	return out
}

// RelPathOrDot names the package directory for findings without a
// position ("." for the module root).
func (p *Package) RelPathOrDot() string {
	if p.RelPath == "" {
		return "."
	}
	return p.RelPath
}

// ------------------------------------------------------------- ignores

// IgnorePrefix starts a suppression directive. The syntax is
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// covering findings of the listed rules on the directive's line and
// the line below. The reason is mandatory; the rule list must name
// specific rules — a bare directive (or the old catch-all "all") no
// longer waives anything and is itself reported by ignorecheck.
const IgnorePrefix = "//lint:ignore"

// IgnoreDirective is one parsed, well-formed suppression directive.
type IgnoreDirective struct {
	File  string // module-root-relative
	Line  int
	Col   int
	Rules []string
	Pos   token.Pos
}

// ParseIgnoreComment splits a //lint:ignore comment into its rule list
// and reason. ok is false when the comment is not an ignore directive
// at all; a directive with a missing rule list or reason returns
// ok true with empty fields so the caller can report it malformed.
func ParseIgnoreComment(text string) (rules []string, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, IgnorePrefix)
	if !found {
		return nil, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, "", true
	}
	return strings.Split(fields[0], ","), strings.Join(fields[1:], " "), true
}

// CollectIgnores scans every comment in files for well-formed ignore
// directives. File paths in the result are relative to root (slash
// form). Malformed directives are skipped here — reporting them is the
// ignorecheck analyzer's job.
func CollectIgnores(fset *token.FileSet, root string, files []*ast.File) []IgnoreDirective {
	var out []IgnoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				rules, reason, ok := ParseIgnoreComment(cm.Text)
				if !ok || len(rules) == 0 || reason == "" {
					continue
				}
				pos := fset.Position(cm.Pos())
				file := pos.Filename
				if rel, err := filepath.Rel(root, file); err == nil {
					file = filepath.ToSlash(rel)
				}
				out = append(out, IgnoreDirective{
					File: file, Line: pos.Line, Col: pos.Column,
					Rules: rules, Pos: cm.Pos(),
				})
			}
		}
	}
	return out
}
