// Package analysistest runs analyzers over testdata fixture modules
// and checks their diagnostics against expectations written in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	// want "regexp" "another regexp"
//
// on the line the diagnostic is reported at. Every expectation must be
// matched by a distinct diagnostic on that line and every diagnostic
// must match an expectation, otherwise the test fails with both lists.
//
// Fixtures live under <dir>/src, which must be a valid module
// (a go.mod naming the fixture module path); patterns are package
// directories relative to that module root. The analyzers run through
// the production driver, so the //lint:ignore suppression layer and
// stale-directive detection behave exactly as in cmd/manetlint.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run applies one analyzer to the fixture packages named by patterns
// under dir/src and checks // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	RunSuite(t, dir, []*analysis.Analyzer{a}, patterns...)
}

// RunSuite is Run for several analyzers at once (diagnostics from all
// of them participate in matching) — used by fixtures that exercise
// cross-analyzer behavior such as stale-ignore detection.
func RunSuite(t *testing.T, dir string, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	src := filepath.Join(dir, "src")
	m, err := analysis.NewModule(src)
	if err != nil {
		t.Fatalf("analysistest: open fixture module: %v", err)
	}
	paths := make([]string, len(patterns))
	for i, p := range patterns {
		paths[i] = m.Path + "/" + p
	}

	d := &analysis.Driver{Analyzers: analyzers}
	findings, err := d.Run(src, src, paths)
	if err != nil {
		t.Fatalf("analysistest: driver: %v", err)
	}

	wants := collectWants(t, m, paths)

	got := map[lineKey][]analysis.Finding{}
	for _, f := range findings {
		k := lineKey{f.File, f.Line}
		got[k] = append(got[k], f)
	}

	for _, k := range sortedKeys(wants) {
		ws := wants[k]
		diags := got[k]
		used := make([]bool, len(diags))
		for _, w := range ws {
			matched := false
			for i, d := range diags {
				if !used[i] && w.re.MatchString(d.Message) {
					used[i] = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no diagnostic matches want %q (got %s)",
					k.file, k.line, w.re.String(), renderDiags(diags))
			}
		}
		for i, d := range diags {
			if !used[i] {
				t.Errorf("%s:%d: unexpected diagnostic: %s: %s", k.file, k.line, d.Rule, d.Message)
			}
		}
		delete(got, k)
	}
	for _, k := range sortedKeys(got) {
		t.Errorf("%s:%d: unexpected diagnostic(s) with no want comment: %s", k.file, k.line, renderDiags(got[k]))
	}
}

// lineKey addresses one source line of the fixture module.
type lineKey struct {
	file string
	line int
}

// sortedKeys returns the keys of a lineKey-keyed map in source order.
func sortedKeys[V any](m map[lineKey]V) []lineKey {
	keys := make([]lineKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	return keys
}

type want struct {
	re *regexp.Regexp
}

func renderDiags(diags []analysis.Finding) string {
	if len(diags) == 0 {
		return "none"
	}
	var parts []string
	for _, d := range diags {
		parts = append(parts, fmt.Sprintf("%s: %q", d.Rule, d.Message))
	}
	return strings.Join(parts, "; ")
}

// collectWants scans the source files of the requested packages for
// // want comments.
func collectWants(t *testing.T, m *analysis.Module, paths []string) map[lineKey][]want {
	t.Helper()
	out := map[lineKey][]want{}
	for _, p := range paths {
		pkg, err := m.Load(p)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", p, err)
		}
		for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...) {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					rest, ok := wantPayload(cm.Text)
					if !ok {
						continue
					}
					pos := m.FileSet().Position(cm.Pos())
					rel, err := filepath.Rel(m.Root, pos.Filename)
					if err != nil {
						rel = pos.Filename
					}
					k := lineKey{filepath.ToSlash(rel), pos.Line}
					for _, pat := range splitWantPatterns(rest) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", k.file, k.line, pat, err)
						}
						out[k] = append(out[k], want{re})
					}
				}
			}
		}
	}
	return out
}

// wantPayload extracts the expectation list from a want comment. The
// line form `// want ...` is the default; the block form
// `/* want ... */` exists for diagnostics reported on a line that is
// itself a line comment (e.g. ignorecheck findings on //lint:ignore
// directives), where a trailing line comment cannot be attached.
func wantPayload(text string) (string, bool) {
	if rest, ok := strings.CutPrefix(text, "// want "); ok {
		return rest, true
	}
	if rest, ok := strings.CutPrefix(text, "/* want "); ok {
		if trimmed, ok := strings.CutSuffix(rest, "*/"); ok {
			return strings.TrimSpace(trimmed), true
		}
	}
	return "", false
}

// splitWantPatterns parses the payload of a want comment: a sequence
// of double-quoted Go strings or backquoted raw strings.
func splitWantPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return append(out, s) // unterminated; surface as-is
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				unq = s[1:end]
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(out, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return append(out, s)
		}
	}
	return out
}
