package analysis

import (
	"go/types"
	"reflect"
)

// factBank is the in-process fact store of one driver run. Fact
// identity is (object, concrete fact type) — the same keying the real
// framework uses — and propagation is by reference: the loader shares
// *types.Package values between importer and importee, so an object
// seen from a dependent package is the very object the fact was
// exported on.
type factBank struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

func newFactBank() *factBank {
	return &factBank{obj: map[objFactKey]Fact{}, pkg: map[pkgFactKey]Fact{}}
}

// plumb wires a pass's fact methods to this bank.
func (b *factBank) plumb(pass *Pass) {
	current := pass.Pkg
	pass.SetFactPlumbing(
		func(obj types.Object, fact Fact) bool {
			stored, ok := b.obj[objFactKey{obj, reflect.TypeOf(fact)}]
			if ok {
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
			}
			return ok
		},
		func(obj types.Object, fact Fact) {
			b.obj[objFactKey{obj, reflect.TypeOf(fact)}] = fact
		},
		func(pkg *types.Package, fact Fact) bool {
			stored, ok := b.pkg[pkgFactKey{pkg, reflect.TypeOf(fact)}]
			if ok {
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
			}
			return ok
		},
		func(fact Fact) {
			b.pkg[pkgFactKey{current, reflect.TypeOf(fact)}] = fact
		},
	)
}

// ObjectFactsOf returns the facts attached to top-level objects (and
// methods) of pkg, for serialization by the unitchecker driver.
func (b *factBank) ObjectFactsOf(pkg *types.Package) map[types.Object][]Fact {
	out := map[types.Object][]Fact{}
	//lint:ignore maprange result is itself a map; grouping is order-insensitive
	for k, f := range b.obj {
		if k.obj.Pkg() == pkg {
			out[k.obj] = append(out[k.obj], f)
		}
	}
	return out
}
