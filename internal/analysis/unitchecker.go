package analysis

// Unitchecker mode: run the analyzer suite on a single compilation
// unit described by a JSON config file, the protocol `go vet -vettool`
// speaks. cmd/go typechecks nothing itself — it hands the tool a .cfg
// naming the unit's Go files plus export-data files for every
// dependency, and expects diagnostics on stderr (file:line:col:
// message) with a nonzero exit when any are found. Facts flow between
// units through "vetx" files: cmd/go tells us where each dependency's
// fact file lives (PackageVetx) and where to write ours (VetxOutput),
// and caches both. Objects are named across units by a simplified
// path — "F:Name" for package-level functions, "M:Type.Method" for
// methods, "V:Name" for package-level variables — resolved against the
// importer's view of the dependency.

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"reflect"
	"sort"
	"strings"
)

// VetConfig is the subset of cmd/go's vet config this driver reads.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxEntry is one serialized fact. Key "" addresses the package
// itself; otherwise it is a simplified object path.
type vetxEntry struct {
	Key  string
	Fact Fact
}

// RunUnitchecker analyzes the unit described by cfgFile and returns a
// process exit code (0 clean, 1 internal error, 2 findings).
func RunUnitchecker(analyzers []*Analyzer, cfgFile string) int {
	findings, err := runUnit(analyzers, cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manetlint: %v\n", err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	SortFindings(findings)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	return 2
}

func runUnit(analyzers []*Analyzer, cfgFile string) ([]Finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// cmd/go hands test variants ("pkg [pkg.test]", "pkg_test") to the
	// vettool as ordinary units with _test.go files mixed in. The native
	// driver keeps test files out of Pass.Files (analyzers exempt test
	// code), so split by suffix here; type-checking still sees the whole
	// unit.
	fset := token.NewFileSet()
	var files, nonTest, testFiles []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			nonTest = append(nonTest, f)
		}
	}
	if len(files) == 0 {
		return nil, nil
	}

	compilerImporter := importer.ForCompiler(fset, gcCompiler(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := &types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	var typeErrs []types.Error
	tc.Error = func(err error) {
		if te, ok := err.(types.Error); ok {
			typeErrs = append(typeErrs, te)
		}
	}
	pkg, _ := tc.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 && cfg.SucceedOnTypecheckFailure {
		return nil, nil
	}

	bank := newVetFactBank(analyzers)
	if err := bank.load(cfg, imp); err != nil {
		return nil, err
	}

	seq := Sequence(analyzers)
	var findings []Finding
	results := map[*Analyzer]any{}
	ignores := CollectIgnores(fset, cfg.Dir, files)
	matched := make([]map[string]bool, len(ignores))
	for i := range matched {
		matched[i] = map[string]bool{}
	}
	active := map[string]bool{"typecheck": true}
	for _, a := range seq {
		active[a.Name] = true
	}
	report := func(a *Analyzer, d Diagnostic) {
		pos := fset.Position(d.Pos)
		f := Finding{
			File: relUnitFile(cfg.Dir, pos.Filename), Line: pos.Line, Col: pos.Column,
			Rule: a.Name, Message: d.Message, strict: d.Category == CategoryStrict,
		}
		if !f.strict {
			for i, dir := range ignores {
				if dir.File != f.File || (dir.Line != f.Line && dir.Line != f.Line-1) {
					continue
				}
				for _, rule := range dir.Rules {
					if rule == f.Rule {
						matched[i][rule] = true
						return
					}
				}
			}
		}
		findings = append(findings, f)
	}

	for _, a := range seq {
		if len(typeErrs) > 0 && !a.RunDespiteErrors {
			continue
		}
		pass := &Pass{
			Analyzer: a, Fset: fset, Files: nonTest, TestFiles: testFiles,
			PkgPath: cfg.ImportPath, Pkg: pkg, TypesInfo: info, TypeErrors: typeErrs,
			ResultOf: map[*Analyzer]any{},
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		ana := a
		pass.Report = func(d Diagnostic) { report(ana, d) }
		bank.plumb(pass, pkg)
		res, err := a.Run(pass)
		if err != nil {
			findings = append(findings, Finding{
				File: cfg.ImportPath, Line: 1, Col: 1, Rule: a.Name,
				Message: fmt.Sprintf("analyzer failed: %v", err), strict: true,
			})
			continue
		}
		results[a] = res
	}

	for i, dir := range ignores {
		for _, rule := range dir.Rules {
			if active[rule] && !matched[i][rule] {
				findings = append(findings, Finding{
					File: dir.File, Line: dir.Line, Col: dir.Col, Rule: "ignorecheck",
					Message: fmt.Sprintf("stale //lint:ignore %s: no %s finding on this or the next line; remove the directive", rule, rule),
					strict:  true,
				})
			}
		}
	}

	if cfg.VetxOutput != "" {
		if err := bank.save(cfg.VetxOutput, pkg); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return findings, nil
}

func gcCompiler(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

func relUnitFile(dir, name string) string {
	if dir != "" && strings.HasPrefix(name, dir+string(os.PathSeparator)) {
		return strings.ReplaceAll(name[len(dir)+1:], string(os.PathSeparator), "/")
	}
	return name
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// vetFactBank is the fact store for unitchecker mode: facts on
// imported objects come from dependency vetx files, facts exported
// here are written to VetxOutput for dependents.
type vetFactBank struct {
	factTypes map[string]reflect.Type // gob name -> concrete type
	imported  map[string]Fact         // pkgPath \x00 objKey \x00 typeName
	exported  map[objFactKey]Fact
	exportPkg map[pkgFactKey]Fact
}

func newVetFactBank(analyzers []*Analyzer) *vetFactBank {
	b := &vetFactBank{
		factTypes: map[string]reflect.Type{},
		imported:  map[string]Fact{},
		exported:  map[objFactKey]Fact{},
		exportPkg: map[pkgFactKey]Fact{},
	}
	for _, a := range Sequence(analyzers) {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			gob.Register(f)
			b.factTypes[t.String()] = t
		}
	}
	return b
}

func (b *vetFactBank) key(pkgPath, objKey string, t reflect.Type) string {
	return pkgPath + "\x00" + objKey + "\x00" + t.String()
}

// load decodes every dependency's vetx file.
func (b *vetFactBank) load(cfg VetConfig, imp types.Importer) error {
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		// The native driver analyzes module packages only, so stdlib
		// callees carry no facts there; drop stdlib vetx facts to keep
		// the two modes reporting identically.
		if cfg.Standard[p] {
			continue
		}
		f, err := os.Open(cfg.PackageVetx[p])
		if err != nil {
			continue // missing facts for a dep degrade analysis, not correctness
		}
		var entries []vetxEntry
		err = gob.NewDecoder(f).Decode(&entries)
		f.Close()
		if err != nil {
			continue
		}
		for _, e := range entries {
			t := reflect.TypeOf(e.Fact)
			b.imported[b.key(p, e.Key, t)] = e.Fact
		}
	}
	return nil
}

// objKey flattens a package-level object to its cross-unit name;
// "" means the object is not addressable across units.
func objKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch o := obj.(type) {
	case *types.Func:
		sig := o.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj() == nil {
				return ""
			}
			return "M:" + named.Obj().Name() + "." + o.Name()
		}
		return "F:" + o.Name()
	case *types.Var:
		if o.Parent() == o.Pkg().Scope() {
			return "V:" + o.Name()
		}
	}
	return ""
}

// plumb wires the Pass fact accessors for unitchecker mode.
func (b *vetFactBank) plumb(pass *Pass, current *types.Package) {
	pass.SetFactPlumbing(
		func(obj types.Object, ptr Fact) bool {
			t := reflect.TypeOf(ptr)
			if obj != nil && current != nil && obj.Pkg() == current {
				if stored, ok := b.exported[objFactKey{obj, t}]; ok {
					reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(stored).Elem())
					return true
				}
				return false
			}
			k := objKey(obj)
			if k == "" || obj.Pkg() == nil {
				return false
			}
			if stored, ok := b.imported[b.key(obj.Pkg().Path(), k, t)]; ok {
				reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(stored).Elem())
				return true
			}
			return false
		},
		func(obj types.Object, fact Fact) {
			b.exported[objFactKey{obj, reflect.TypeOf(fact)}] = fact
		},
		func(pkg *types.Package, ptr Fact) bool {
			t := reflect.TypeOf(ptr)
			if pkg == current {
				if stored, ok := b.exportPkg[pkgFactKey{pkg, t}]; ok {
					reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(stored).Elem())
					return true
				}
				return false
			}
			if pkg == nil {
				return false
			}
			if stored, ok := b.imported[b.key(pkg.Path(), "", t)]; ok {
				reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(stored).Elem())
				return true
			}
			return false
		},
		func(fact Fact) {
			if current != nil {
				b.exportPkg[pkgFactKey{current, reflect.TypeOf(fact)}] = fact
			}
		},
	)
}

// save writes the unit's exported facts as its vetx file.
func (b *vetFactBank) save(path string, current *types.Package) error {
	var entries []vetxEntry
	//lint:ignore maprange entries are sorted by key before encoding
	for k, fact := range b.exported {
		if key := objKey(k.obj); key != "" {
			entries = append(entries, vetxEntry{Key: key, Fact: fact})
		}
	}
	//lint:ignore maprange entries are sorted by key before encoding
	for k, fact := range b.exportPkg {
		if k.pkg == current {
			entries = append(entries, vetxEntry{Key: "", Fact: fact})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(entries)
}
