package routing

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

func nodesUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func randomNet(n int, worldR, rtx float64, seed uint64) (*cluster.Hierarchy, *topology.Graph) {
	src := rng.New(seed)
	d := geom.Disc{R: worldR}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	g := topology.BuildUnitDiskBrute(pos, rtx)
	giant := topology.GiantComponent(g, nodesUpTo(n))
	h := cluster.Build(g, giant, cluster.Config{}, nil)
	return h, g
}

func TestFlatTableSize(t *testing.T) {
	if FlatTableSize(100) != 99 || FlatTableSize(0) != 0 {
		t.Fatal("flat table size wrong")
	}
}

func TestHierTableSmallerThanFlat(t *testing.T) {
	h, _ := randomNet(400, 650, 110, 1)
	n := len(h.LevelNodes(0))
	mean := MeanHierTableSize(h)
	if mean <= 0 {
		t.Fatal("no hierarchical table entries")
	}
	if mean >= float64(FlatTableSize(n))/2 {
		t.Fatalf("hier table %.1f not clearly below flat %d", mean, FlatTableSize(n))
	}
}

func TestHierPathChain(t *testing.T) {
	// Chain 1-2-3: route 1 -> 3 must traverse 2.
	g := topology.NewGraph(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	h := cluster.Build(g, []int{1, 2, 3}, cluster.Config{}, nil)
	r := NewRouter(h)
	p := r.HierPath(1, 3)
	if p == nil {
		t.Fatal("no path")
	}
	if err := r.ValidatePath(p, 1, 3); err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("path = %v", p)
	}
}

func TestHierPathSelf(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(1, 2)
	h := cluster.Build(g, []int{1, 2}, cluster.Config{}, nil)
	r := NewRouter(h)
	p := r.HierPath(1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v", p)
	}
	if r.HierPathLen(1, 1) != 0 {
		t.Fatal("self path length != 0")
	}
}

func TestHierPathUnreachable(t *testing.T) {
	g := topology.NewGraph(6)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	h := cluster.Build(g, []int{1, 2, 4, 5}, cluster.Config{}, nil)
	r := NewRouter(h)
	if p := r.HierPath(1, 5); p != nil {
		t.Fatalf("path across partition: %v", p)
	}
	if r.Stretch(1, 5) != -1 {
		t.Fatal("stretch defined across partition")
	}
}

func TestHierPathsValidAndBounded(t *testing.T) {
	h, _ := randomNet(300, 600, 115, 2)
	r := NewRouter(h)
	nodes := h.LevelNodes(0)
	src := rng.New(3)
	valid := 0
	for i := 0; i < 300; i++ {
		s := nodes[src.Intn(len(nodes))]
		d := nodes[src.Intn(len(nodes))]
		p := r.HierPath(s, d)
		if p == nil {
			continue
		}
		if err := r.ValidatePath(p, s, d); err != nil {
			t.Fatalf("invalid path %v: %v", p, err)
		}
		flat := r.FlatPathLen(s, d)
		if flat < 0 {
			t.Fatal("flat unreachable but hierarchical reachable")
		}
		if len(p)-1 < flat {
			t.Fatalf("hierarchical path %d shorter than shortest %d", len(p)-1, flat)
		}
		valid++
	}
	if valid < 250 {
		t.Fatalf("only %d/300 pairs routed", valid)
	}
}

func TestStretchModerate(t *testing.T) {
	h, _ := randomNet(300, 600, 115, 4)
	r := NewRouter(h)
	nodes := h.LevelNodes(0)
	src := rng.New(5)
	var sum float64
	count := 0
	for i := 0; i < 400; i++ {
		s := nodes[src.Intn(len(nodes))]
		d := nodes[src.Intn(len(nodes))]
		if s == d {
			continue
		}
		st := r.Stretch(s, d)
		if st < 0 {
			continue
		}
		if st < 1 {
			t.Fatalf("stretch %v < 1", st)
		}
		sum += st
		count++
	}
	if count == 0 {
		t.Fatal("no stretch samples")
	}
	mean := sum / float64(count)
	// Hierarchical routing on unit-disk graphs typically stretches
	// paths by a small constant factor; guard against pathology.
	if mean > 3 {
		t.Fatalf("mean stretch %v implausibly high", mean)
	}
}

func TestTableSizeScaling(t *testing.T) {
	// Hierarchical table entries grow far slower than N.
	sizes := map[int]float64{}
	for _, n := range []int{100, 400} {
		h, _ := randomNet(n, 650, 130, 6)
		sizes[n] = MeanHierTableSize(h)
	}
	if sizes[400] > sizes[100]*3 {
		t.Fatalf("hier table grew %vx for 4x nodes", sizes[400]/sizes[100])
	}
}

func BenchmarkHierPath(b *testing.B) {
	h, _ := randomNet(300, 600, 115, 1)
	r := NewRouter(h)
	nodes := h.LevelNodes(0)
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := nodes[src.Intn(len(nodes))]
		d := nodes[src.Intn(len(nodes))]
		r.HierPath(s, d)
	}
}
