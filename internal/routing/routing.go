// Package routing implements strict hierarchical routing over the
// clustered hierarchy (§2.1, following Steenstrup's description the
// paper cites as [14]) and a flat link-state baseline. It measures the
// two quantities the paper's motivation rests on: per-node routing
// table size — Θ(log|V|) hierarchical vs Θ(|V|) flat, the
// Kleinrock–Kamoun reduction — and the path stretch hierarchical
// forwarding pays for it.
package routing

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// FlatTableSize returns the per-node routing table entry count of a
// flat link-state protocol: one entry per other destination.
func FlatTableSize(n int) int {
	if n <= 0 {
		return 0
	}
	return n - 1
}

// HierTableSize returns node v's routing table entry count under
// strict hierarchical routing: one entry per sibling cluster at every
// level of v's ancestor chain (the node's "hierarchical map", §2.1),
// plus its level-0 neighbors.
func HierTableSize(h *cluster.Hierarchy, v int) int {
	entries := len(h.Level(0).Graph.Neighbors(v))
	chain := h.AncestorChain(v)
	for k := 1; k <= len(chain); k++ {
		// All members of the level-k cluster except v's own
		// level-(k-1) cluster.
		entries += len(h.MembersAt(k, chain[k-1])) - 1
	}
	return entries
}

// MeanHierTableSize averages HierTableSize over all nodes.
func MeanHierTableSize(h *cluster.Hierarchy) float64 {
	nodes := h.LevelNodes(0)
	if len(nodes) == 0 {
		return 0
	}
	total := 0
	for _, v := range nodes {
		total += HierTableSize(h, v)
	}
	return float64(total) / float64(len(nodes))
}

// Router computes concrete forwarding paths.
//
// A Router is reusable across hierarchy snapshots: Rebind points it at
// the next snapshot while keeping every internal buffer, so steady-state
// path computations (HierPathLen, FlatPathLen, Stretch) allocate
// nothing. All BFS state is epoch-stamped — membership sets and visit
// marks are slices indexed by level-0 node ID (cluster IDs at every
// level are level-0 IDs of their heads), invalidated by bumping a
// counter instead of clearing. Not safe for concurrent use; give each
// serving worker its own Router.
type Router struct {
	h       *cluster.Hierarchy
	g       *topology.Graph // level-0 graph
	scratch *topology.BFSScratch

	// Epoch-stamped BFS scratch shared by clusterGraphPath,
	// borderEdge, and intraClusterPath (each call bumps cur and
	// restamps the sets it needs).
	cur    uint32
	allow  []uint32 // allowed-set membership stamp
	target []uint32 // borderEdge destination-set stamp
	seen   []uint32 // BFS visit stamp
	parent []int32  // BFS parent links

	queue  []int32 // BFS frontier
	cpath  []int   // clusterGraphPath output buffer
	seg    []int   // intraClusterPath output buffer
	path   []int   // HierPathLen's path buffer
	chainS []int   // commonLevel ancestor chains
	chainD []int
	chainT []int // ancestorAt's chain buffer
	desc   []int // descendants ping-pong buffers
	desc2  []int
}

// NewRouter builds a router over one hierarchy snapshot.
func NewRouter(h *cluster.Hierarchy) *Router {
	r := &Router{}
	r.Rebind(h)
	return r
}

// Rebind points the router at a new hierarchy snapshot, reusing every
// internal buffer. The ID space may grow between snapshots; buffers
// are re-sized (and epochs reset) only then.
func (r *Router) Rebind(h *cluster.Hierarchy) {
	r.h = h
	r.g = h.Level(0).Graph
	if n := r.g.IDSpace(); len(r.allow) < n {
		r.scratch = topology.NewBFSScratch(n)
		r.allow = make([]uint32, n)
		r.target = make([]uint32, n)
		r.seen = make([]uint32, n)
		r.parent = make([]int32, n)
		r.cur = 0
	}
}

// FlatPathLen returns the true shortest-path hop count, or -1 when
// unreachable.
func (r *Router) FlatPathLen(s, d int) int {
	return r.scratch.HopCount(r.g, s, d, nil)
}

// HierPath computes the path a strictly hierarchically routed packet
// takes from s to d: at each stage the packet is routed toward the
// destination's highest differing cluster, descending the hierarchy as
// it enters shared clusters, with intra-cluster segments confined to
// the cluster being traversed. Returns nil when s and d share no
// cluster.
func (r *Router) HierPath(s, d int) []int {
	p, ok := r.hierPathInto(nil, s, d)
	if !ok {
		return nil
	}
	return p
}

// hierPathInto is HierPath into a caller-owned buffer; ok reports
// whether a path exists. The returned slice is the (possibly grown)
// buffer either way, so callers can keep it for reuse.
func (r *Router) hierPathInto(dst []int, s, d int) ([]int, bool) {
	if s == d {
		return append(dst, s), true
	}
	common := r.commonLevel(s, d)
	if common < 0 {
		return dst, false
	}
	path := append(dst, s)
	cur := s
	for level := common; level >= 1; level-- {
		// Inside the shared level-`level` cluster, walk the
		// level-(level-1) cluster graph from cur's cluster to d's
		// cluster, crossing border edges.
		target := r.ancestorAt(d, level-1)
		curCluster := r.ancestorAt(cur, level-1)
		if curCluster == target {
			continue
		}
		shared := r.ancestorAt(d, level)
		cpath := r.clusterGraphPath(level-1, shared, level, curCluster, target)
		if cpath == nil {
			return path, false // transient inconsistency; treat as unreachable
		}
		for i := 0; i+1 < len(cpath); i++ {
			from, to := cpath[i], cpath[i+1]
			a, b := r.borderEdge(level-1, from, to)
			if a < 0 {
				return path, false
			}
			// Walk inside the current cluster to the border node.
			seg := r.intraClusterPath(cur, a, level-1, from)
			if seg == nil {
				return path, false
			}
			path = append(path, seg[1:]...)
			if a != b {
				path = append(path, b)
			}
			cur = b
		}
	}
	// Final intra-level-1-cluster leg (or same-node).
	if cur != d {
		seg := r.intraClusterPath(cur, d, 0, -1)
		if seg == nil {
			return path, false
		}
		path = append(path, seg[1:]...)
	}
	return path, true
}

// HierPathLen returns the hierarchical path hop count, or -1. Unlike
// HierPath it reuses an internal path buffer and allocates nothing in
// steady state.
func (r *Router) HierPathLen(s, d int) int {
	p, ok := r.hierPathInto(r.path[:0], s, d)
	r.path = p
	if !ok {
		return -1
	}
	return len(p) - 1
}

// Stretch returns the ratio of hierarchical to shortest path length
// for a reachable pair, or -1 when either is unreachable.
func (r *Router) Stretch(s, d int) float64 {
	flat := r.FlatPathLen(s, d)
	hier := r.HierPathLen(s, d)
	if flat <= 0 || hier < 0 {
		return -1
	}
	return float64(hier) / float64(flat)
}

// commonLevel returns the smallest k with shared level-k cluster, or -1.
func (r *Router) commonLevel(s, d int) int {
	r.chainS = r.h.AppendAncestorChain(s, r.chainS[:0])
	r.chainD = r.h.AppendAncestorChain(d, r.chainD[:0])
	cs, cd := r.chainS, r.chainD
	min := len(cs)
	if len(cd) < min {
		min = len(cd)
	}
	for k := 1; k <= min; k++ {
		if cs[k-1] == cd[k-1] {
			return k
		}
	}
	return -1
}

// ancestorAt returns v's level-j cluster; for j == 0 it is v itself.
func (r *Router) ancestorAt(v, j int) int {
	if j == 0 {
		return v
	}
	r.chainT = r.h.AppendAncestorChain(v, r.chainT[:0])
	if j > len(r.chainT) {
		return -1
	}
	return r.chainT[j-1]
}

// nextEpoch bumps the stamp epoch, clearing the stamp arrays on the
// (astronomically rare) uint32 wrap so stale stamps can never alias.
func (r *Router) nextEpoch() uint32 {
	r.cur++
	if r.cur == 0 {
		for i := range r.allow {
			r.allow[i] = 0
			r.target[i] = 0
			r.seen[i] = 0
		}
		r.cur = 1
	}
	return r.cur
}

// descendants returns the level-0 descendants of the level-k cluster c
// into a reused buffer (unsorted, unlike Hierarchy.Descendants — every
// use here is order-independent). Valid until the next descendants call.
func (r *Router) descendants(k, c int) []int {
	cur := append(r.desc[:0], c)
	other := r.desc2[:0]
	if k >= len(r.h.Levels) {
		return cur[:0]
	}
	for lvl := k - 1; lvl >= 0; lvl-- {
		other = other[:0]
		for _, cc := range cur {
			other = append(other, r.h.Levels[lvl].Members[cc]...)
		}
		cur, other = other, cur
	}
	r.desc, r.desc2 = cur, other
	return cur
}

// clusterGraphPath BFS-walks the level-j cluster graph restricted to
// members of the shared level-(j+1) cluster, from cluster a to b.
func (r *Router) clusterGraphPath(j, shared, sharedLevel, a, b int) []int {
	lvl := r.h.Level(j)
	if lvl == nil || lvl.Graph == nil {
		return nil
	}
	cur := r.nextEpoch()
	for _, m := range r.h.MembersAt(sharedLevel, shared) {
		r.allow[m] = cur
	}
	if r.allow[a] != cur || r.allow[b] != cur {
		return nil
	}
	// BFS with parent tracking over the level-j graph.
	r.seen[a] = cur
	r.parent[a] = int32(a)
	r.queue = append(r.queue[:0], int32(a))
	for head := 0; head < len(r.queue); head++ {
		v := int(r.queue[head])
		if v == b {
			break
		}
		for _, w := range lvl.Graph.Neighbors(v) {
			if r.allow[w] != cur || r.seen[w] == cur {
				continue
			}
			r.seen[w] = cur
			r.parent[w] = int32(v)
			r.queue = append(r.queue, int32(w))
		}
	}
	if r.seen[b] != cur {
		return nil
	}
	rev := r.cpath[:0]
	for v := b; ; v = int(r.parent[v]) {
		rev = append(rev, v)
		if v == int(r.parent[v]) {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	r.cpath = rev
	return rev
}

// borderEdge finds a level-0 edge (a, b) with a inside cluster `from`
// and b inside cluster `to` (both level-j clusters); returns the
// smallest such pair, or (-1, -1).
func (r *Router) borderEdge(j, from, to int) (int, int) {
	cur := r.nextEpoch()
	for _, v := range r.descendants(j, to) {
		r.target[v] = cur
	}
	bestA, bestB := -1, -1
	for _, a := range r.descendants(j, from) {
		for _, b := range r.g.Neighbors(a) {
			if r.target[b] == cur {
				if bestA == -1 || a < bestA || (a == bestA && b < bestB) {
					bestA, bestB = a, b
				}
			}
		}
	}
	return bestA, bestB
}

// intraClusterPath walks level-0 hops from s to d restricted to the
// level-0 descendants of the level-j cluster c (j == 0 or c == -1
// means no restriction).
func (r *Router) intraClusterPath(s, d, j, c int) []int {
	if s == d {
		r.seg = append(r.seg[:0], s)
		return r.seg
	}
	cur := r.nextEpoch()
	restricted := false
	if j >= 1 && c >= 0 {
		restricted = true
		for _, v := range r.descendants(j, c) {
			r.allow[v] = cur
		}
		if r.allow[s] != cur || r.allow[d] != cur {
			return nil
		}
	}
	// BFS with parents on the level-0 graph.
	r.seen[s] = cur
	r.parent[s] = int32(s)
	r.queue = append(r.queue[:0], int32(s))
	found := false
	for head := 0; head < len(r.queue) && !found; head++ {
		v := int(r.queue[head])
		for _, w := range r.g.Neighbors(v) {
			if r.seen[w] == cur {
				continue
			}
			if w != d && restricted && r.allow[w] != cur {
				continue
			}
			r.seen[w] = cur
			r.parent[w] = int32(v)
			if w == d {
				found = true
				break
			}
			r.queue = append(r.queue, int32(w))
		}
	}
	if !found {
		return nil
	}
	rev := r.seg[:0]
	for v := d; ; v = int(r.parent[v]) {
		rev = append(rev, v)
		if v == int(r.parent[v]) {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	r.seg = rev
	return rev
}

// ValidatePath checks that p is a connected level-0 walk from s to d.
func (r *Router) ValidatePath(p []int, s, d int) error {
	if len(p) == 0 {
		return fmt.Errorf("routing: empty path")
	}
	if p[0] != s || p[len(p)-1] != d {
		return fmt.Errorf("routing: path endpoints %d..%d, want %d..%d", p[0], p[len(p)-1], s, d)
	}
	for i := 0; i+1 < len(p); i++ {
		if !r.g.HasEdge(p[i], p[i+1]) {
			return fmt.Errorf("routing: hop %d: no edge (%d,%d)", i, p[i], p[i+1])
		}
	}
	return nil
}
