// Package routing implements strict hierarchical routing over the
// clustered hierarchy (§2.1, following Steenstrup's description the
// paper cites as [14]) and a flat link-state baseline. It measures the
// two quantities the paper's motivation rests on: per-node routing
// table size — Θ(log|V|) hierarchical vs Θ(|V|) flat, the
// Kleinrock–Kamoun reduction — and the path stretch hierarchical
// forwarding pays for it.
package routing

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// FlatTableSize returns the per-node routing table entry count of a
// flat link-state protocol: one entry per other destination.
func FlatTableSize(n int) int {
	if n <= 0 {
		return 0
	}
	return n - 1
}

// HierTableSize returns node v's routing table entry count under
// strict hierarchical routing: one entry per sibling cluster at every
// level of v's ancestor chain (the node's "hierarchical map", §2.1),
// plus its level-0 neighbors.
func HierTableSize(h *cluster.Hierarchy, v int) int {
	entries := len(h.Level(0).Graph.Neighbors(v))
	chain := h.AncestorChain(v)
	for k := 1; k <= len(chain); k++ {
		// All members of the level-k cluster except v's own
		// level-(k-1) cluster.
		entries += len(h.MembersAt(k, chain[k-1])) - 1
	}
	return entries
}

// MeanHierTableSize averages HierTableSize over all nodes.
func MeanHierTableSize(h *cluster.Hierarchy) float64 {
	nodes := h.LevelNodes(0)
	if len(nodes) == 0 {
		return 0
	}
	total := 0
	for _, v := range nodes {
		total += HierTableSize(h, v)
	}
	return float64(total) / float64(len(nodes))
}

// Router computes concrete forwarding paths.
type Router struct {
	h       *cluster.Hierarchy
	g       *topology.Graph // level-0 graph
	scratch *topology.BFSScratch
}

// NewRouter builds a router over one hierarchy snapshot.
func NewRouter(h *cluster.Hierarchy) *Router {
	g := h.Level(0).Graph
	return &Router{h: h, g: g, scratch: topology.NewBFSScratch(g.IDSpace())}
}

// FlatPathLen returns the true shortest-path hop count, or -1 when
// unreachable.
func (r *Router) FlatPathLen(s, d int) int {
	return r.scratch.HopCount(r.g, s, d, nil)
}

// HierPath computes the path a strictly hierarchically routed packet
// takes from s to d: at each stage the packet is routed toward the
// destination's highest differing cluster, descending the hierarchy as
// it enters shared clusters, with intra-cluster segments confined to
// the cluster being traversed. Returns nil when s and d share no
// cluster.
func (r *Router) HierPath(s, d int) []int {
	if s == d {
		return []int{s}
	}
	common := r.commonLevel(s, d)
	if common < 0 {
		return nil
	}
	path := []int{s}
	cur := s
	for level := common; level >= 1; level-- {
		// Inside the shared level-`level` cluster, walk the
		// level-(level-1) cluster graph from cur's cluster to d's
		// cluster, crossing border edges.
		target := r.ancestorAt(d, level-1)
		curCluster := r.ancestorAt(cur, level-1)
		if curCluster == target {
			continue
		}
		shared := r.ancestorAt(d, level)
		cpath := r.clusterGraphPath(level-1, shared, level, curCluster, target)
		if cpath == nil {
			return nil // transient inconsistency; treat as unreachable
		}
		for i := 0; i+1 < len(cpath); i++ {
			from, to := cpath[i], cpath[i+1]
			a, b := r.borderEdge(level-1, from, to)
			if a < 0 {
				return nil
			}
			// Walk inside the current cluster to the border node.
			seg := r.intraClusterPath(cur, a, level-1, from)
			if seg == nil {
				return nil
			}
			path = append(path, seg[1:]...)
			if a != b {
				path = append(path, b)
			}
			cur = b
		}
	}
	// Final intra-level-1-cluster leg (or same-node).
	if cur != d {
		seg := r.intraClusterPath(cur, d, 0, -1)
		if seg == nil {
			return nil
		}
		path = append(path, seg[1:]...)
	}
	return path
}

// HierPathLen returns the hierarchical path hop count, or -1.
func (r *Router) HierPathLen(s, d int) int {
	p := r.HierPath(s, d)
	if p == nil {
		return -1
	}
	return len(p) - 1
}

// Stretch returns the ratio of hierarchical to shortest path length
// for a reachable pair, or -1 when either is unreachable.
func (r *Router) Stretch(s, d int) float64 {
	flat := r.FlatPathLen(s, d)
	hier := r.HierPathLen(s, d)
	if flat <= 0 || hier < 0 {
		return -1
	}
	return float64(hier) / float64(flat)
}

// commonLevel returns the smallest k with shared level-k cluster, or -1.
func (r *Router) commonLevel(s, d int) int {
	cs := r.h.AncestorChain(s)
	cd := r.h.AncestorChain(d)
	min := len(cs)
	if len(cd) < min {
		min = len(cd)
	}
	for k := 1; k <= min; k++ {
		if cs[k-1] == cd[k-1] {
			return k
		}
	}
	return -1
}

// ancestorAt returns v's level-j cluster; for j == 0 it is v itself.
func (r *Router) ancestorAt(v, j int) int {
	if j == 0 {
		return v
	}
	return r.h.Ancestor(v, j)
}

// clusterGraphPath BFS-walks the level-j cluster graph restricted to
// members of the shared level-(j+1) cluster, from cluster a to b.
func (r *Router) clusterGraphPath(j, shared, sharedLevel, a, b int) []int {
	lvl := r.h.Level(j)
	if lvl == nil || lvl.Graph == nil {
		return nil
	}
	allowed := map[int]bool{}
	for _, m := range r.h.MembersAt(sharedLevel, shared) {
		allowed[m] = true
	}
	if !allowed[a] || !allowed[b] {
		return nil
	}
	// BFS with parent tracking over the level-j graph.
	parent := map[int]int{a: a}
	queue := []int{a}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if v == b {
			break
		}
		for _, w := range lvl.Graph.Neighbors(v) {
			if !allowed[w] {
				continue
			}
			if _, seen := parent[w]; seen {
				continue
			}
			parent[w] = v
			queue = append(queue, w)
		}
	}
	if _, ok := parent[b]; !ok {
		return nil
	}
	var rev []int
	for v := b; ; v = parent[v] {
		rev = append(rev, v)
		if v == parent[v] {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// borderEdge finds a level-0 edge (a, b) with a inside cluster `from`
// and b inside cluster `to` (both level-j clusters); returns the
// smallest such pair, or (-1, -1).
func (r *Router) borderEdge(j, from, to int) (int, int) {
	descFrom := r.h.Descendants(j, from)
	inTo := map[int]bool{}
	for _, v := range r.h.Descendants(j, to) {
		inTo[v] = true
	}
	bestA, bestB := -1, -1
	for _, a := range descFrom {
		for _, b := range r.g.Neighbors(a) {
			if inTo[b] {
				if bestA == -1 || a < bestA || (a == bestA && b < bestB) {
					bestA, bestB = a, b
				}
			}
		}
	}
	return bestA, bestB
}

// intraClusterPath walks level-0 hops from s to d restricted to the
// level-0 descendants of the level-j cluster c (j == 0 or c == -1
// means no restriction).
func (r *Router) intraClusterPath(s, d, j, c int) []int {
	if s == d {
		return []int{s}
	}
	var restrict func(int) bool
	if j >= 1 && c >= 0 {
		allowed := map[int]bool{}
		for _, v := range r.h.Descendants(j, c) {
			allowed[v] = true
		}
		if !allowed[s] || !allowed[d] {
			return nil
		}
		restrict = func(v int) bool { return allowed[v] }
	}
	// BFS with parents on the level-0 graph.
	parent := map[int]int{s: s}
	queue := []int{s}
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		v := queue[head]
		for _, w := range r.g.Neighbors(v) {
			if _, seen := parent[w]; seen {
				continue
			}
			if w != d && restrict != nil && !restrict(w) {
				continue
			}
			parent[w] = v
			if w == d {
				found = true
				break
			}
			queue = append(queue, w)
		}
	}
	if !found {
		return nil
	}
	var rev []int
	for v := d; ; v = parent[v] {
		rev = append(rev, v)
		if v == parent[v] {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ValidatePath checks that p is a connected level-0 walk from s to d.
func (r *Router) ValidatePath(p []int, s, d int) error {
	if len(p) == 0 {
		return fmt.Errorf("routing: empty path")
	}
	if p[0] != s || p[len(p)-1] != d {
		return fmt.Errorf("routing: path endpoints %d..%d, want %d..%d", p[0], p[len(p)-1], s, d)
	}
	for i := 0; i+1 < len(p); i++ {
		if !r.g.HasEdge(p[i], p[i+1]) {
			return fmt.Errorf("routing: hop %d: no edge (%d,%d)", i, p[i], p[i+1])
		}
	}
	return nil
}
