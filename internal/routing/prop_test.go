package routing_test

import (
	"testing"

	"repro/internal/invariant/prop"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/simnet"
)

// TestHierPathPropertiesOnCorpus replays the shrunk fuzz corpus
// scenarios and, on every tick, checks the Router's core contract on
// sampled pairs: HierPath output always passes ValidatePath, agrees
// with the buffered HierPathLen, and is never shorter than the true
// shortest path (hierarchical routing pays stretch, never gains).
func TestHierPathPropertiesOnCorpus(t *testing.T) {
	corpus, err := prop.ReadCorpus("../invariant/prop/testdata/regress")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Skip("no regression corpus")
	}
	for name, repro := range corpus {
		repro := repro
		t.Run(name, func(t *testing.T) {
			sc := repro.Scenario
			cfg := sc.Config(0, "", "")
			cfg.CheckLevel = "" // invariant checking is prop's own test
			src := rng.NewRoot(sc.Seed).Stream("routing-prop")
			var router *routing.Router
			checked := 0
			cfg.Observer = func(ev simnet.ObsEvent) {
				nodes := ev.Hierarchy.LevelNodes(0)
				if len(nodes) < 2 {
					return
				}
				if router == nil {
					router = routing.NewRouter(ev.Hierarchy)
				} else {
					router.Rebind(ev.Hierarchy)
				}
				for i := 0; i < 16; i++ {
					q := nodes[src.Intn(len(nodes))]
					d := nodes[src.Intn(len(nodes))]
					p := router.HierPath(q, d)
					n := router.HierPathLen(q, d)
					if p == nil {
						if n != -1 {
							t.Errorf("t=%v: HierPath(%d,%d) = nil but HierPathLen = %d", ev.Time, q, d, n)
						}
						continue
					}
					checked++
					if err := router.ValidatePath(p, q, d); err != nil {
						t.Errorf("t=%v: HierPath(%d,%d): %v", ev.Time, q, d, err)
					}
					if n != len(p)-1 {
						t.Errorf("t=%v: HierPathLen(%d,%d) = %d, HierPath has %d hops", ev.Time, q, d, n, len(p)-1)
					}
					flat := router.FlatPathLen(q, d)
					if flat < 0 {
						t.Errorf("t=%v: hier path exists but (%d,%d) flat-unreachable", ev.Time, q, d)
					} else if n < flat {
						t.Errorf("t=%v: HierPathLen(%d,%d) = %d < FlatPathLen = %d", ev.Time, q, d, n, flat)
					}
				}
			}
			if _, err := simnet.Run(cfg); err != nil {
				// The single-node corpus entry pins the config-rejection
				// path; there is nothing to route.
				t.Skipf("config rejected: %v", err)
			}
			if t.Failed() {
				t.FailNow()
			}
			t.Logf("validated %d hierarchical paths", checked)
		})
	}
}
