package gls

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func testGrid() *Grid {
	// World square of side 800 starting at (-400,-400), cells of 100:
	// levels: 100, 200, 400, 800 -> 4 levels.
	return NewGrid(geom.Disc{R: 400}, 100)
}

func TestNewGridLevels(t *testing.T) {
	g := testGrid()
	if g.Levels != 4 {
		t.Fatalf("Levels = %d, want 4", g.Levels)
	}
	if g.side(1) != 100 || g.side(4) != 800 {
		t.Fatalf("sides = %v, %v", g.side(1), g.side(4))
	}
}

func TestSquareOfNesting(t *testing.T) {
	g := testGrid()
	src := rng.New(1)
	d := geom.Disc{R: 390}
	for i := 0; i < 2000; i++ {
		p := d.Sample(src)
		chain := g.Chain(p)
		if len(chain) != g.Levels {
			t.Fatalf("chain length %d", len(chain))
		}
		// Nesting: each square's index halves (integer) at the next level.
		for l := 1; l < len(chain); l++ {
			if chain[l].Ix != chain[l-1].Ix/2 || chain[l].Iy != chain[l-1].Iy/2 {
				t.Fatalf("chain not nested at level %d: %v", l, chain)
			}
		}
		// Top square is (0,0).
		top := chain[len(chain)-1]
		if top.Ix != 0 || top.Iy != 0 {
			t.Fatalf("top square = %v", top)
		}
	}
}

func TestSiblingsAreTheOtherThree(t *testing.T) {
	g := testGrid()
	src := rng.New(2)
	d := geom.Disc{R: 390}
	for i := 0; i < 500; i++ {
		p := d.Sample(src)
		for level := 1; level < g.Levels; level++ {
			own := g.SquareOf(level, p)
			sibs := g.Siblings(level, p)
			seen := map[SquareID]bool{own: true}
			for _, s := range sibs {
				if s == own {
					t.Fatalf("own square among siblings")
				}
				if seen[s] {
					t.Fatalf("duplicate sibling %v", s)
				}
				seen[s] = true
				// Sibling shares the parent square.
				if s.Ix/2 != own.Ix/2 || s.Iy/2 != own.Iy/2 {
					t.Fatalf("sibling %v outside parent of %v", s, own)
				}
			}
		}
	}
}

func layout(n int, seed uint64) ([]geom.Vec, *Index, *Grid) {
	src := rng.New(seed)
	d := geom.Disc{R: 390}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	g := testGrid()
	return pos, NewIndex(g, pos), g
}

func TestNodesInAggregation(t *testing.T) {
	pos, idx, g := layout(300, 3)
	// Every node appears in exactly one square per level, and NodesIn
	// of the containing square includes it.
	for v, p := range pos {
		for level := 1; level <= g.Levels; level++ {
			sq := g.SquareOf(level, p)
			found := false
			for _, m := range idx.NodesIn(sq) {
				if m == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d missing from its %v", v, sq)
			}
		}
	}
	// Top square contains everyone.
	top := SquareID{Level: g.Levels, Ix: 0, Iy: 0}
	if got := len(idx.NodesIn(top)); got != 300 {
		t.Fatalf("top square holds %d of 300", got)
	}
}

func TestSuccessorRule(t *testing.T) {
	if got := successor(10, 100, []int{5, 20, 40}); got != 20 {
		t.Fatalf("successor = %d, want 20", got)
	}
	// Wrap.
	if got := successor(50, 100, []int{5, 20, 40}); got != 5 {
		t.Fatalf("wrap successor = %d, want 5", got)
	}
	// Owner excluded.
	if got := successor(20, 100, []int{20, 30}); got != 30 {
		t.Fatalf("self-excluding successor = %d", got)
	}
	if got := successor(7, 100, nil); got != -1 {
		t.Fatalf("empty successor = %d", got)
	}
}

func TestServersForStructure(t *testing.T) {
	pos, idx, g := layout(400, 4)
	sa := idx.ServersFor(42, 400)
	if len(sa.Servers) != g.Levels-1 {
		t.Fatalf("server rows = %d, want %d", len(sa.Servers), g.Levels-1)
	}
	// Every chosen server lies in the corresponding sibling square.
	p := pos[42]
	for level := 1; level < g.Levels; level++ {
		sibs := g.Siblings(level, p)
		for i, srv := range sa.Servers[level-1] {
			if srv < 0 {
				continue
			}
			if srv == 42 {
				t.Fatal("owner serving itself")
			}
			sq := g.SquareOf(level, pos[srv])
			if sq != sibs[i] {
				t.Fatalf("server %d at %v, expected square %v", srv, sq, sibs[i])
			}
		}
	}
}

func TestLoadRoughlyBalanced(t *testing.T) {
	_, idx, _ := layout(500, 5)
	table := BuildTable(idx, 500)
	load := table.Load()
	total, max := 0, 0
	for _, c := range load {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / 500
	if mean <= 0 {
		t.Fatal("no load")
	}
	if float64(max) > 20*mean {
		t.Fatalf("max load %d vs mean %.2f", max, mean)
	}
}

func TestDiffCountZeroForSame(t *testing.T) {
	_, idx, _ := layout(200, 6)
	table := BuildTable(idx, 200)
	changed, cost := DiffCount(table, table, func(a, b int) int { return 1 })
	if changed != 0 || cost != 0 {
		t.Fatalf("self diff = %d changes, cost %d", changed, cost)
	}
}

func TestDiffCountDetectsMovement(t *testing.T) {
	pos, idx, g := layout(200, 7)
	t1 := BuildTable(idx, 200)
	// Move one node across the world.
	pos2 := append([]geom.Vec(nil), pos...)
	pos2[13] = geom.Vec{X: -pos[13].X, Y: -pos[13].Y}
	idx2 := NewIndex(g, pos2)
	t2 := BuildTable(idx2, 200)
	changed, cost := DiffCount(t1, t2, func(a, b int) int { return 2 })
	if changed == 0 || cost == 0 {
		t.Fatal("teleporting a node changed nothing")
	}
	if cost < changed {
		t.Fatalf("cost %d < changes %d at 2 hops each", cost, changed)
	}
}

func BenchmarkBuildTable500(b *testing.B) {
	_, idx, _ := layout(500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTable(idx, 500)
	}
}

func TestQueryResolves(t *testing.T) {
	pos, idx, g := layout(300, 8)
	hop := func(a, b int) int {
		d := pos[a].Dist(pos[b])
		h := int(d / 100)
		if h < 1 {
			h = 1
		}
		return h
	}
	_ = g
	resolved := 0
	var totalPkts int
	for q := 0; q < 100; q++ {
		d := (q*37 + 13) % 300
		if q == d {
			continue
		}
		res := idx.Query(q, d, 300, hop)
		if !res.Found {
			t.Fatalf("query %d->%d failed inside one world square", q, d)
		}
		if res.Level < 1 || res.Level > g.Levels {
			t.Fatalf("resolved at impossible level %d", res.Level)
		}
		resolved++
		totalPkts += res.Packets
	}
	if resolved == 0 || totalPkts == 0 {
		t.Fatal("no queries accounted")
	}
}

func TestQuerySelf(t *testing.T) {
	_, idx, _ := layout(50, 9)
	res := idx.Query(7, 7, 50, func(a, b int) int { return 1 })
	if !res.Found || res.Packets != 0 || res.Level != 0 {
		t.Fatalf("self query = %+v", res)
	}
}

func TestQueryCostGrowsWithDistance(t *testing.T) {
	// Queries between far-apart nodes resolve at higher levels and
	// cost more on average.
	pos, idx, _ := layout(400, 10)
	hop := func(a, b int) int {
		h := int(pos[a].Dist(pos[b]) / 100)
		if h < 1 {
			h = 1
		}
		return h
	}
	var nearSum, farSum, nearN, farN float64
	for q := 0; q < 400; q += 3 {
		d := (q*53 + 29) % 400
		if q == d {
			continue
		}
		res := idx.Query(q, d, 400, hop)
		if !res.Found {
			continue
		}
		if pos[q].Dist(pos[d]) < 200 {
			nearSum += float64(res.Packets)
			nearN++
		} else if pos[q].Dist(pos[d]) > 500 {
			farSum += float64(res.Packets)
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Skip("not enough near/far pairs")
	}
	if farSum/farN <= nearSum/nearN {
		t.Fatalf("far queries (%v) not costlier than near (%v)", farSum/farN, nearSum/nearN)
	}
}
