// Package gls implements the Grid Location Service (Li, Jannotti,
// De Couto, Karger & Morris, MobiCom 2000) that the paper's §3.1
// describes and that CHLM adapts. It serves two purposes here:
// reproducing the paper's Fig. 2 (the grid hierarchy around a node)
// and acting as the comparison baseline for experiment E14.
//
// The world is a square recursively divided: level-1 squares have side
// l; a level-(i+1) square is the 2×2 group of level-i squares aligned
// to side l·2^i. A node v recruits, in each of the 3 sibling squares
// of its own square at every level, the node with the least ID greater
// than v (circular, Eq. 5) as its level-i location server.
package gls

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Grid fixes the grid geometry: the origin (lower-left corner of the
// indexed world), the level-1 cell side l, and the number of levels.
// The world side is l·2^(Levels-1); level indexes run 1..Levels.
type Grid struct {
	Origin geom.Vec
	Cell   float64
	Levels int
}

// NewGrid builds a grid whose world square covers the given disc with
// level-1 cells of side cell.
func NewGrid(region geom.Disc, cell float64) *Grid {
	if cell <= 0 {
		panic("gls: cell side must be positive")
	}
	min, side := region.BoundingSquare()
	levels := 1
	for cell*float64(int(1)<<(levels-1)) < side {
		levels++
	}
	return &Grid{Origin: min, Cell: cell, Levels: levels}
}

// SquareID identifies one grid square at a level.
type SquareID struct {
	Level  int
	Ix, Iy int
}

// String formats the square for diagnostics.
func (s SquareID) String() string {
	return fmt.Sprintf("L%d(%d,%d)", s.Level, s.Ix, s.Iy)
}

// side returns the square side at the given level.
func (g *Grid) side(level int) float64 {
	return g.Cell * float64(int(1)<<(level-1))
}

// SquareOf returns the level-i square containing p.
func (g *Grid) SquareOf(level int, p geom.Vec) SquareID {
	s := g.side(level)
	ix := int((p.X - g.Origin.X) / s)
	iy := int((p.Y - g.Origin.Y) / s)
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	return SquareID{Level: level, Ix: ix, Iy: iy}
}

// Siblings returns the 3 level-i squares that share p's level-(i+1)
// square with p's own level-i square — the squares in which a node
// recruits its level-i location servers.
func (g *Grid) Siblings(level int, p geom.Vec) [3]SquareID {
	own := g.SquareOf(level, p)
	// The level-(i+1) square groups cells (2a, 2b)..(2a+1, 2b+1).
	baseX := own.Ix &^ 1
	baseY := own.Iy &^ 1
	var out [3]SquareID
	i := 0
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			sq := SquareID{Level: level, Ix: baseX + dx, Iy: baseY + dy}
			if sq == own {
				continue
			}
			out[i] = sq
			i++
		}
	}
	return out
}

// Chain returns, for Fig. 2, the nested squares containing p at every
// level, innermost first.
func (g *Grid) Chain(p geom.Vec) []SquareID {
	out := make([]SquareID, 0, g.Levels)
	for level := 1; level <= g.Levels; level++ {
		out = append(out, g.SquareOf(level, p))
	}
	return out
}

// Index buckets nodes by grid square at every level for fast
// square-membership queries. All levels are materialized eagerly so
// that per-tick table rebuilds cost O(N·L·log) rather than O(N²).
type Index struct {
	grid *Grid
	// members[level-1][square] -> sorted node IDs
	members []map[SquareID][]int
	pos     []geom.Vec
}

// NewIndex builds the square index for the given positions.
func NewIndex(grid *Grid, pos []geom.Vec) *Index {
	idx := &Index{
		grid:    grid,
		members: make([]map[SquareID][]int, grid.Levels),
		pos:     pos,
	}
	for level := 1; level <= grid.Levels; level++ {
		m := map[SquareID][]int{}
		for v, p := range pos {
			sq := grid.SquareOf(level, p)
			m[sq] = append(m[sq], v)
		}
		//lint:ignore maprange each member slice is sorted independently; order cannot escape
		for _, ids := range m {
			sort.Ints(ids)
		}
		idx.members[level-1] = m
	}
	return idx
}

// NodesIn returns the sorted node IDs inside a square (any level).
// The returned slice is shared; do not mutate.
func (idx *Index) NodesIn(sq SquareID) []int {
	if sq.Level < 1 || sq.Level > idx.grid.Levels {
		return nil
	}
	return idx.members[sq.Level-1][sq]
}

// successor returns the node in candidates (sorted ascending) with
// least ID strictly greater than owner, wrapping circularly (Eq. 5);
// -1 when no other node exists. The owner itself is skipped.
func successor(owner, idSpace int, candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	// First candidate > owner, else wrap to the smallest.
	i := sort.SearchInts(candidates, owner+1)
	for probe := 0; probe < len(candidates); probe++ {
		z := candidates[(i+probe)%len(candidates)]
		if z != owner {
			return z
		}
	}
	return -1
}

// ServerAssignment lists one node's location servers: Servers[i-1]
// holds up to 3 level-i servers (one per sibling square; -1 where a
// sibling square is empty).
type ServerAssignment struct {
	Owner   int
	Servers [][3]int
}

// ServersFor computes owner's full GLS server set.
func (idx *Index) ServersFor(owner, idSpace int) ServerAssignment {
	p := idx.pos[owner]
	sa := ServerAssignment{Owner: owner}
	for level := 1; level < idx.grid.Levels; level++ {
		sibs := idx.grid.Siblings(level, p)
		var row [3]int
		for i, sq := range sibs {
			row[i] = successor(owner, idSpace, idx.NodesIn(sq))
		}
		sa.Servers = append(sa.Servers, row)
	}
	return sa
}

// Table is the full GLS assignment for all nodes.
type Table struct {
	Assignments []ServerAssignment
}

// BuildTable computes every node's server set.
func BuildTable(idx *Index, n int) *Table {
	t := &Table{Assignments: make([]ServerAssignment, n)}
	for v := 0; v < n; v++ {
		t.Assignments[v] = idx.ServersFor(v, n)
	}
	return t
}

// Load returns entries served per node.
func (t *Table) Load() map[int]int {
	load := map[int]int{}
	for _, sa := range t.Assignments {
		for _, row := range sa.Servers {
			for _, s := range row {
				if s >= 0 {
					load[s]++
				}
			}
		}
	}
	return load
}

// DiffCount counts changed (owner, level, slot) assignments between
// two tables and reports, via cost, the summed transfer cost of the
// changes using hops(oldServer -> newServer), hops(owner -> newServer)
// for fresh assignments.
func DiffCount(prev, next *Table, hops func(a, b int) int) (changed int, cost int) {
	n := len(next.Assignments)
	for v := 0; v < n; v++ {
		var prevRows [][3]int
		if v < len(prev.Assignments) {
			prevRows = prev.Assignments[v].Servers
		}
		nextRows := next.Assignments[v].Servers
		max := len(nextRows)
		if len(prevRows) > max {
			max = len(prevRows)
		}
		for i := 0; i < max; i++ {
			var po, no [3]int
			po = [3]int{-1, -1, -1}
			no = [3]int{-1, -1, -1}
			if i < len(prevRows) {
				po = prevRows[i]
			}
			if i < len(nextRows) {
				no = nextRows[i]
			}
			for s := 0; s < 3; s++ {
				if po[s] == no[s] {
					continue
				}
				changed++
				switch {
				case po[s] >= 0 && no[s] >= 0:
					cost += hops(po[s], no[s])
				case no[s] >= 0:
					cost += hops(v, no[s])
				}
			}
		}
	}
	return changed, cost
}

// QueryResult describes one resolved GLS location query.
type QueryResult struct {
	Found   bool
	Level   int // grid level at which the query resolved
	Packets int
}

// Query models a GLS location lookup: the querier probes, level by
// level, the node that would be d's location server within its own
// grid square (computable from d's ID alone, Eq. 5), succeeding at the
// first level where q's square coincides with d's — that square holds
// a server with d's entry. Probe and reply are costed with hop. This
// is a simplified cost model of the GLS spiral search: it preserves
// the level-by-level escalation and the distance proportionality.
func (idx *Index) Query(q, d, idSpace int, hop func(a, b int) int) QueryResult {
	if q == d {
		return QueryResult{Found: true, Level: 0}
	}
	pq, pd := idx.pos[q], idx.pos[d]
	packets := 0
	for i := 1; i <= idx.grid.Levels; i++ {
		sqQ := idx.grid.SquareOf(i, pq)
		cand := successor(d, idSpace, idx.NodesIn(sqQ))
		if cand >= 0 && cand != q {
			packets += hop(q, cand) + hop(cand, q)
		}
		if sqQ == idx.grid.SquareOf(i, pd) {
			return QueryResult{Found: true, Level: i, Packets: packets}
		}
	}
	return QueryResult{Found: false, Packets: packets}
}
