package workload

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/lm"
	"repro/internal/rng"
	"repro/internal/topology"
)

func testNet(n int, seed uint64) (*cluster.Hierarchy, *cluster.Identities, *topology.Graph) {
	src := rng.New(seed)
	// Radius scaled so the giant component covers nearly all nodes.
	d := geom.Disc{R: 110 * 3.1}
	if n >= 150 {
		d.R = 110 * 4.5
	}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	g := topology.BuildUnitDiskBrute(pos, 110)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	giant := topology.GiantComponent(g, all)
	tr := cluster.NewIdentityTracker()
	h, ids := cluster.BuildWithIdentities(g, giant, cluster.Config{}, nil, nil, tr, 0)
	return h, ids, g
}

func TestGeneratorProducesSessions(t *testing.T) {
	h, ids, g := testNet(200, 1)
	gen := NewGenerator(Config{Rate: 0.1, PacketsPerSession: 10}, rng.New(2))
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	var st Stats
	for tick := 0; tick < 50; tick++ {
		gen.Tick(1.0, h, ids, sel, hop, &st)
	}
	// Expected ~0.1*200*50 = 1000 sessions.
	if st.Sessions < 800 || st.Sessions > 1200 {
		t.Fatalf("sessions = %d, want ~1000", st.Sessions)
	}
	if st.QueryPkts.N() == 0 {
		t.Fatal("no successful sessions")
	}
	if st.Failed > st.Sessions/5 {
		t.Fatalf("%d/%d sessions failed on a connected giant", st.Failed, st.Sessions)
	}
	// §6: query cost is a small fraction of session traffic.
	if ratio := st.QueryToRoute.Mean(); ratio <= 0 || ratio > 1 {
		t.Fatalf("query/route ratio = %v", ratio)
	}
	if st.Stretch.Mean() < 1 {
		t.Fatalf("stretch = %v < 1", st.Stretch.Mean())
	}
}

func TestPoissonCarryDeterministic(t *testing.T) {
	h, ids, g := testNet(100, 3)
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	run := func() int {
		gen := NewGenerator(Config{Rate: 0.033}, rng.New(7))
		var st Stats
		for tick := 0; tick < 30; tick++ {
			gen.Tick(1.0, h, ids, sel, hop, &st)
		}
		return st.Sessions
	}
	if run() != run() {
		t.Fatal("workload not deterministic")
	}
}

func TestFractionalRateAccumulates(t *testing.T) {
	h, ids, g := testNet(50, 4)
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	gen := NewGenerator(Config{Rate: 0.001}, rng.New(5))
	var st Stats
	// 0.001*50 = 0.05 sessions per tick: needs carry to ever fire.
	for tick := 0; tick < 400; tick++ {
		gen.Tick(1.0, h, ids, sel, hop, &st)
	}
	if st.Sessions < 10 || st.Sessions > 30 {
		t.Fatalf("sessions = %d, want ~20", st.Sessions)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Rate <= 0 || cfg.PacketsPerSession <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}
