package workload

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/lm"
	"repro/internal/rng"
	"repro/internal/topology"
)

func testNet(n int, seed uint64) (*cluster.Hierarchy, *cluster.Identities, *topology.Graph) {
	src := rng.New(seed)
	// Radius scaled so the giant component covers nearly all nodes.
	d := geom.Disc{R: 110 * 3.1}
	if n >= 150 {
		d.R = 110 * 4.5
	}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	g := topology.BuildUnitDiskBrute(pos, 110)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	giant := topology.GiantComponent(g, all)
	tr := cluster.NewIdentityTracker()
	h, ids := cluster.BuildWithIdentities(g, giant, cluster.Config{}, nil, nil, tr, 0)
	return h, ids, g
}

// pairNet is a connected two-node network: the smallest case where the
// old q == d "continue" drop bias was largest (~50% of draws).
func pairNet() (*cluster.Hierarchy, *cluster.Identities, *topology.Graph) {
	pos := []geom.Vec{{X: 0, Y: 0}, {X: 50, Y: 0}}
	g := topology.BuildUnitDiskBrute(pos, 110)
	tr := cluster.NewIdentityTracker()
	h, ids := cluster.BuildWithIdentities(g, []int{0, 1}, cluster.Config{}, nil, nil, tr, 0)
	return h, ids, g
}

func TestGeneratorProducesSessions(t *testing.T) {
	h, ids, g := testNet(200, 1)
	gen := MustNewGenerator(Config{Rate: 0.1, PacketsPerSession: 10}, rng.New(2))
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	var st Stats
	for tick := 0; tick < 50; tick++ {
		gen.Tick(1.0, h, ids, sel, hop, &st)
	}
	// Expected ~0.1*200*50 = 1000 sessions (Poisson sd ~32).
	if st.Sessions < 800 || st.Sessions > 1200 {
		t.Fatalf("sessions = %d, want ~1000", st.Sessions)
	}
	if st.QueryPkts.N() == 0 {
		t.Fatal("no successful sessions")
	}
	if st.Failed > st.Sessions/5 {
		t.Fatalf("%d/%d sessions failed on a connected giant", st.Failed, st.Sessions)
	}
	// §6: query cost is a small fraction of session traffic.
	if ratio := st.QueryToRoute.Mean(); ratio <= 0 || ratio > 1 {
		t.Fatalf("query/route ratio = %v", ratio)
	}
	if st.Stretch.Mean() < 1 {
		t.Fatalf("stretch = %v < 1", st.Stretch.Mean())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	h, ids, g := testNet(100, 3)
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	run := func() int {
		gen := MustNewGenerator(Config{Rate: 0.033}, rng.New(7))
		var st Stats
		for tick := 0; tick < 30; tick++ {
			gen.Tick(1.0, h, ids, sel, hop, &st)
		}
		return st.Sessions
	}
	if run() != run() {
		t.Fatal("workload not deterministic")
	}
}

func TestFractionalRateAccumulates(t *testing.T) {
	h, ids, g := testNet(50, 4)
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 100)
	gen := MustNewGenerator(Config{Rate: 0.001}, rng.New(5))
	var st Stats
	// 0.001*50 = 0.05 expected sessions per tick: sub-1 means still
	// fire through genuine Poisson draws (mean 20 over 400 ticks).
	for tick := 0; tick < 400; tick++ {
		gen.Tick(1.0, h, ids, sel, hop, &st)
	}
	if st.Sessions < 8 || st.Sessions > 36 {
		t.Fatalf("sessions = %d, want ~20", st.Sessions)
	}
}

// TestPoissonArrivals pins that per-tick session counts are genuinely
// Poisson-dispersed: the old floor(rate·dt·N)+carry scheme had
// variance ~0, a Poisson process has variance == mean.
func TestPoissonArrivals(t *testing.T) {
	h, ids, g := pairNet()
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 10)
	gen := MustNewGenerator(Config{Rate: 2.0, PacketsPerSession: 1}, rng.New(9))
	const (
		ticks = 2000
		mean  = 4.0 // 2.0 * 2 nodes * dt 1
	)
	var st Stats
	prev := 0
	var sum, sumSq float64
	for tick := 0; tick < ticks; tick++ {
		gen.Tick(1.0, h, ids, sel, hop, &st)
		c := float64(st.Sessions - prev)
		prev = st.Sessions
		sum += c
		sumSq += c * c
	}
	m := sum / ticks
	v := sumSq/ticks - m*m
	if math.Abs(m-mean) > 0.3 {
		t.Fatalf("mean per-tick sessions = %v, want ~%v", m, mean)
	}
	if ratio := v / m; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("variance/mean = %v, want ~1 (Poisson dispersion)", ratio)
	}
}

// TestNoSelfPairDropBias pins the q == d redraw: at N = 2 the old
// "continue without redraw" dropped ~half of all arrivals.
func TestNoSelfPairDropBias(t *testing.T) {
	h, ids, g := pairNet()
	sel := lm.NewSelector(nil)
	hop := topology.NewBFSHops(g, 10)
	gen := MustNewGenerator(Config{Rate: 0.5, PacketsPerSession: 1}, rng.New(6))
	var st Stats
	const ticks = 500
	for tick := 0; tick < ticks; tick++ {
		gen.Tick(1.0, h, ids, sel, hop, &st)
	}
	// Expected 0.5*2*500 = 500 sessions; the drop bug realized ~250.
	if st.Sessions < 430 || st.Sessions > 570 {
		t.Fatalf("sessions = %d, want ~500 (self-pair drop bias?)", st.Sessions)
	}
	if st.Failed != 0 {
		t.Fatalf("%d failed sessions on a connected pair", st.Failed)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
		want    Config
	}{
		{"defaults", Config{}, false, Config{Rate: 0.01, PacketsPerSession: 20}},
		{"explicit", Config{Rate: 0.5, PacketsPerSession: 7}, false, Config{Rate: 0.5, PacketsPerSession: 7}},
		{"zero rate defaulted", Config{PacketsPerSession: 3}, false, Config{Rate: 0.01, PacketsPerSession: 3}},
		{"negative rate", Config{Rate: -0.1}, true, Config{}},
		{"negative packets", Config{PacketsPerSession: -1}, true, Config{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.cfg.validate()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("validate(%+v): want error, got %+v", tc.cfg, got)
				}
				if _, err := NewGenerator(tc.cfg, rng.New(1)); err == nil {
					t.Fatalf("NewGenerator(%+v): want error", tc.cfg)
				}
				return
			}
			if err != nil {
				t.Fatalf("validate(%+v): %v", tc.cfg, err)
			}
			if got != tc.want {
				t.Fatalf("validate(%+v) = %+v, want %+v", tc.cfg, got, tc.want)
			}
		})
	}
}

// TestTickAllocs pins the steady-state allocation budget of the serve
// hot path: after warm-up, a Tick (Poisson draw, query resolution,
// flat+hier path computation) must not allocate.
func TestTickAllocs(t *testing.T) {
	h, ids, g := testNet(200, 1)
	sel := lm.NewSelector(nil)
	pos := make([]geom.Vec, g.IDSpace())
	hop := topology.NewEuclideanHops(pos, 110, 1.3)
	gen := MustNewGenerator(Config{Rate: 0.2, PacketsPerSession: 10}, rng.New(2))
	var st Stats
	// Warm up the router, scratch, and stat buffers.
	for tick := 0; tick < 20; tick++ {
		gen.Tick(1.0, h, ids, sel, hop, &st)
	}
	avg := testing.AllocsPerRun(50, func() {
		gen.Tick(1.0, h, ids, sel, hop, &st)
	})
	if avg > 0.5 {
		t.Fatalf("Tick allocates %.1f objects/op in steady state, want 0", avg)
	}
}
