package workload

import (
	"math"

	"repro/internal/rng"
)

// Arrivals converts a base event rate into per-interval Poisson counts,
// with optional diurnal (sinusoidal) modulation — the open-loop request
// process the serve runtime drives its synthetic client population
// with. The zero modulation fields give a flat (homogeneous) process.
type Arrivals struct {
	// Rate is the mean event rate per second.
	Rate float64
	// Diurnal is the modulation depth in [0, 1]: the instantaneous
	// rate swings between Rate·(1-Diurnal) and Rate·(1+Diurnal).
	Diurnal float64
	// Period is the modulation period in seconds.
	Period float64
}

// RateAt returns the instantaneous rate at time t.
func (a Arrivals) RateAt(t float64) float64 {
	if a.Diurnal <= 0 || a.Period <= 0 {
		return a.Rate
	}
	return a.Rate * (1 + a.Diurnal*math.Sin(2*math.Pi*t/a.Period))
}

// Count draws the Poisson event count for the interval [t, t+dt),
// integrating the modulated rate at the interval midpoint (exact for a
// flat process; midpoint-accurate for dt << Period).
func (a Arrivals) Count(src *rng.Source, t, dt float64) int {
	mean := a.RateAt(t+dt/2) * dt
	if mean <= 0 {
		return 0
	}
	return src.Poisson(mean)
}
