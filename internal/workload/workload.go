// Package workload generates communication sessions over a simulated
// network and accounts their location-query cost against their data
// traffic — the paper's closing argument (§6) that a location query
// "is of the same order of magnitude as the hop count between the
// requesting node and the target node, and occurs only once per
// communication session", so query overhead is absorbed into the
// session.
//
// Sessions arrive as a Poisson process; each picks a uniform
// source/destination pair in the giant component, pays one CHLM query,
// and then transfers PacketsPerSession data packets along the strict
// hierarchical route.
package workload

import (
	"repro/internal/cluster"
	"repro/internal/lm"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Config parameterizes the session generator.
type Config struct {
	// Rate is the session arrival rate per node per second.
	Rate float64
	// PacketsPerSession is the data packets each session transfers.
	PacketsPerSession int
}

func (c Config) withDefaults() Config {
	//lint:ignore floateq zero is the documented unset-field sentinel
	if c.Rate == 0 {
		c.Rate = 0.01
	}
	if c.PacketsPerSession == 0 {
		c.PacketsPerSession = 20
	}
	return c
}

// Stats aggregates session outcomes.
type Stats struct {
	Sessions     int
	Failed       int // no shared cluster (partition) or no route
	QueryPkts    stats.Welford
	RoutePkts    stats.Welford
	QueryToRoute stats.Welford // per-session query/route ratio
	Stretch      stats.Welford // hierarchical vs shortest path
}

// Generator produces sessions against hierarchy snapshots.
type Generator struct {
	cfg Config
	src *rng.Source
	// carry accumulates fractional expected sessions between ticks.
	carry float64
}

// NewGenerator builds a generator drawing randomness from src.
func NewGenerator(cfg Config, src *rng.Source) *Generator {
	return &Generator{cfg: cfg.withDefaults(), src: src}
}

// Tick runs the sessions that arrive in an interval of dt seconds over
// the given snapshot, accumulating into st.
func (g *Generator) Tick(
	dt float64,
	h *cluster.Hierarchy,
	ids *cluster.Identities,
	sel *lm.Selector,
	hop topology.HopModel,
	st *Stats,
) {
	nodes := h.LevelNodes(0)
	if len(nodes) < 2 {
		return
	}
	g.carry += g.cfg.Rate * dt * float64(len(nodes))
	n := int(g.carry)
	g.carry -= float64(n)
	if n == 0 {
		return
	}
	router := routing.NewRouter(h)
	for i := 0; i < n; i++ {
		q := nodes[g.src.Intn(len(nodes))]
		d := nodes[g.src.Intn(len(nodes))]
		if q == d {
			continue
		}
		st.Sessions++
		res := lm.Query(sel, h, ids, hop, q, d)
		if !res.Found {
			st.Failed++
			continue
		}
		flat := router.FlatPathLen(q, d)
		hier := router.HierPathLen(q, d)
		if hier < 0 || flat <= 0 {
			st.Failed++
			continue
		}
		route := float64(hier * g.cfg.PacketsPerSession)
		st.QueryPkts.Add(float64(res.Packets))
		st.RoutePkts.Add(route)
		if route > 0 {
			st.QueryToRoute.Add(float64(res.Packets) / route)
		}
		st.Stretch.Add(float64(hier) / float64(flat))
	}
}
