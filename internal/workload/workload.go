// Package workload generates communication sessions over a simulated
// network and accounts their location-query cost against their data
// traffic — the paper's closing argument (§6) that a location query
// "is of the same order of magnitude as the hop count between the
// requesting node and the target node, and occurs only once per
// communication session", so query overhead is absorbed into the
// session.
//
// Sessions arrive as a Poisson process (the per-tick count is an exact
// Poisson draw on the generator's rng stream, not a deterministic
// floor); each picks a uniform source/destination pair of distinct
// nodes in the giant component, pays one CHLM query, and then
// transfers PacketsPerSession data packets along the strict
// hierarchical route.
package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/lm"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Config parameterizes the session generator. Zero fields take the
// documented defaults; negative values are rejected by validate.
type Config struct {
	// Rate is the session arrival rate per node per second.
	// Default 0.01.
	Rate float64
	// PacketsPerSession is the data packets each session transfers.
	// Default 20.
	PacketsPerSession int
}

// validate applies the repo's config convention: zero means "use the
// default", negative is an error.
func (c Config) validate() (Config, error) {
	if c.Rate < 0 {
		return c, fmt.Errorf("workload: Rate must be >= 0, got %v", c.Rate)
	}
	if c.PacketsPerSession < 0 {
		return c, fmt.Errorf("workload: PacketsPerSession must be >= 0, got %d", c.PacketsPerSession)
	}
	//lint:ignore floateq zero is the documented unset-field sentinel
	if c.Rate == 0 {
		c.Rate = 0.01
	}
	if c.PacketsPerSession == 0 {
		c.PacketsPerSession = 20
	}
	return c, nil
}

// Stats aggregates session outcomes.
type Stats struct {
	Sessions     int
	Failed       int // no shared cluster (partition) or no route
	QueryPkts    stats.Welford
	RoutePkts    stats.Welford
	QueryToRoute stats.Welford // per-session query/route ratio
	Stretch      stats.Welford // hierarchical vs shortest path
}

// Generator produces sessions against hierarchy snapshots. It owns a
// reusable Router and query scratch, so steady-state ticks do not
// allocate. Not safe for concurrent use; give each serving worker its
// own generator over its own rng stream.
type Generator struct {
	cfg    Config
	src    *rng.Source
	router *routing.Router
	scr    lm.QueryScratch
}

// NewGenerator builds a generator drawing randomness from src. It
// rejects negative config fields.
func NewGenerator(cfg Config, src *rng.Source) (*Generator, error) {
	v, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	return &Generator{cfg: v, src: src}, nil
}

// MustNewGenerator is NewGenerator for callers with known-good configs.
func MustNewGenerator(cfg Config, src *rng.Source) *Generator {
	g, err := NewGenerator(cfg, src)
	if err != nil {
		panic(err)
	}
	return g
}

// Router returns the generator's reusable router, rebound to h. Shared
// with Tick, valid until the next Tick or Router call.
func (g *Generator) Router(h *cluster.Hierarchy) *routing.Router {
	if g.router == nil {
		g.router = routing.NewRouter(h)
	} else {
		g.router.Rebind(h)
	}
	return g.router
}

// Tick runs the sessions that arrive in an interval of dt seconds over
// the given snapshot, accumulating into st. The session count is a
// Poisson draw with mean Rate·dt·N; a self-pair (q == d) redraws the
// destination rather than dropping the session, so the realized rate
// carries no 1/N bias.
func (g *Generator) Tick(
	dt float64,
	h *cluster.Hierarchy,
	ids *cluster.Identities,
	sel *lm.Selector,
	hop topology.HopModel,
	st *Stats,
) {
	nodes := h.LevelNodes(0)
	if len(nodes) < 2 {
		return
	}
	n := g.src.Poisson(g.cfg.Rate * dt * float64(len(nodes)))
	if n == 0 {
		return
	}
	router := g.Router(h)
	for i := 0; i < n; i++ {
		q := nodes[g.src.Intn(len(nodes))]
		d := nodes[g.src.Intn(len(nodes))]
		for d == q {
			d = nodes[g.src.Intn(len(nodes))]
		}
		st.Sessions++
		res := lm.QueryWith(sel, h, ids, hop, q, d, &g.scr)
		if !res.Found {
			st.Failed++
			continue
		}
		flat := router.FlatPathLen(q, d)
		hier := router.HierPathLen(q, d)
		if hier < 0 || flat <= 0 {
			st.Failed++
			continue
		}
		route := float64(hier * g.cfg.PacketsPerSession)
		st.QueryPkts.Add(float64(res.Packets))
		st.RoutePkts.Add(route)
		if route > 0 {
			st.QueryToRoute.Add(float64(res.Packets) / route)
		}
		st.Stretch.Add(float64(hier) / float64(flat))
	}
}
