package mobility

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// TestRandomDirectionBoundaryExactHeadingChange pins behavior when a
// heading change lands exactly on an advance boundary: the node must
// arrive at the expiry point under the old heading and depart it under
// the new one, with no zero-step stall (regression for the dead
// `continue` in the old step-granularity loop).
func TestRandomDirectionBoundaryExactHeadingChange(t *testing.T) {
	d := testDisc()
	r := NewRandomDirection(d, 10, 5, rng.New(7))
	pos := r.Init(3)
	for k := 0; k < 200; k++ {
		l := r.legs[0]
		if l.t1 < l.until {
			// This leg ends in a boundary reflection; consume it and
			// keep looking for a heading expiry.
			r.AdvanceTo(l.t1, pos)
			continue
		}
		// l.t1 == l.until: a heading expiry. Advance EXACTLY onto it.
		arrive := l.posAt(r.Mu, l.t1)
		r.AdvanceTo(l.t1, pos)
		if pos[0] != arrive {
			t.Fatalf("position at exact expiry: got %v want %v", pos[0], arrive)
		}
		nl := r.legs[0]
		if nl.t0 != l.t1 || nl.origin != arrive {
			t.Fatalf("fresh leg must start at the expiry instant: t0=%v origin=%v (want %v at %v)",
				nl.t0, nl.origin, arrive, l.t1)
		}
		if nl.dir == l.dir {
			t.Fatalf("heading did not change at expiry")
		}
		// Departing the boundary instant must follow the NEW heading.
		dt := math.Min(0.25, (nl.t1-nl.t0)/2)
		if dt <= 0 {
			t.Fatalf("fresh leg has no extent: t0=%v t1=%v", nl.t0, nl.t1)
		}
		r.AdvanceTo(l.t1+dt, pos)
		want := arrive.Add(nl.dir.Scale(r.Mu * dt))
		if pos[0].Dist(want) > 1e-9 {
			t.Fatalf("position after exact-boundary heading change: got %v want %v", pos[0], want)
		}
		return
	}
	t.Fatalf("no heading expiry found in 200 legs")
}

// TestRandomDirectionGranularityIndependent asserts a node's
// trajectory no longer depends on the advance step size (the old
// integrator reflected at step ends, so finer stepping changed where
// reflections landed). A single node is used so the shared stream's
// draw order is the same under any stepping; multi-node runs draw in
// (time-interleaved) call-pattern order by design.
func TestRandomDirectionGranularityIndependent(t *testing.T) {
	d := testDisc()
	a := NewRandomDirection(d, 25, 3, rng.New(11))
	b := NewRandomDirection(d, 25, 3, rng.New(11))
	posA := a.Init(1)
	posB := b.Init(1)
	for step := 1; step <= 400; step++ {
		a.AdvanceTo(float64(step)*0.25, posA)
	}
	b.AdvanceTo(100, posB)
	if posA[0] != posB[0] {
		t.Fatalf("stepped %v != jumped %v", posA[0], posB[0])
	}
}

// TestGroupMobilityBoundedStep is the regression for the boundary
// clamping bug: in a region smaller than 2·GroupRadius the reference
// region used to keep its full radius, so members clamped against the
// disc boundary every advance and apparent speeds exceeded Mu+MemberMu.
func TestGroupMobilityBoundedStep(t *testing.T) {
	d := geom.Disc{R: 150} // R < 2·GroupRadius: the old code never shrank
	g := NewGroupMobility(d, 10, 200, 8, rng.New(3))
	pos := g.Init(32)
	prev := make([]geom.Vec, len(pos))
	copy(prev, pos)
	const dt = 1.0
	bound := (g.Mu + g.MemberMu) * dt * (1 + 1e-9)
	for step := 1; step <= 300; step++ {
		g.AdvanceTo(float64(step)*dt, pos)
		for i, p := range pos {
			if moved := p.Dist(prev[i]); moved > bound {
				t.Fatalf("step %d node %d moved %.6f > bound %.6f", step, i, moved, bound)
			}
			if !d.Contains(p) {
				t.Fatalf("step %d node %d left the region: %v", step, i, p)
			}
			prev[i] = p
		}
	}
}

// TestWaypointPauseTable is the table-driven Pause > 0 coverage:
// position during the pause window, rollover across multiple expired
// legs in a single AdvanceTo, and AdvanceTo called twice at the same t.
func TestWaypointPauseTable(t *testing.T) {
	d := testDisc()
	cases := []struct {
		name      string
		mu, pause float64
		n         int
	}{
		{"short-pause", 20, 1.5, 16},
		{"long-pause", 5, 40, 16},
		{"pause-dominates-travel", 200, 10, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/position-during-pause", func(t *testing.T) {
			w := NewWaypoint(d, tc.mu, rng.New(5))
			w.Pause = tc.pause
			pos := w.Init(tc.n)
			start := make([]geom.Vec, tc.n)
			copy(start, pos)
			// Initial legs depart at t = Pause: every instant before
			// that must hold the initial position exactly.
			for _, frac := range []float64{0.1, 0.5, 0.999} {
				w.AdvanceTo(frac*tc.pause, pos)
				for i, p := range pos {
					if p != start[i] {
						t.Fatalf("node %d moved during pause at t=%.3f: %v != %v",
							i, frac*tc.pause, p, start[i])
					}
				}
			}
			// After departure the node must have left the waypoint.
			w.AdvanceTo(tc.pause+0.5, pos)
			moved := 0
			for i, p := range pos {
				if p != start[i] {
					moved++
				}
			}
			if moved == 0 {
				t.Fatalf("no node departed after the pause expired")
			}
		})
		t.Run(tc.name+"/multi-leg-rollover", func(t *testing.T) {
			// One giant jump must cross many (leg+pause) cycles and
			// land byte-identically to a finely stepped twin. A single
			// node keeps the shared stream's draw order identical
			// under both steppings (per-leg, in time order).
			a := NewWaypoint(d, tc.mu, rng.New(9))
			a.Pause = tc.pause
			b := NewWaypoint(d, tc.mu, rng.New(9))
			b.Pause = tc.pause
			posA := a.Init(1)
			posB := b.Init(1)
			const horizon = 1000.0
			a.AdvanceTo(horizon, posA)
			for step := 1; step <= 2000; step++ {
				b.AdvanceTo(float64(step)*horizon/2000, posB)
			}
			if posA[0] != posB[0] {
				t.Fatalf("jumped %v != stepped %v", posA[0], posB[0])
			}
		})
		t.Run(tc.name+"/advance-twice-same-t", func(t *testing.T) {
			w := NewWaypoint(d, tc.mu, rng.New(13))
			w.Pause = tc.pause
			twin := NewWaypoint(d, tc.mu, rng.New(13))
			twin.Pause = tc.pause
			pos := w.Init(tc.n)
			posT := twin.Init(tc.n)
			// Land exactly on a leg boundary for node 0 so the repeat
			// call exercises the just-rolled state.
			tEdge := w.legs[0].t1
			w.AdvanceTo(tEdge, pos)
			first := make([]geom.Vec, tc.n)
			copy(first, pos)
			w.AdvanceTo(tEdge, pos)
			for i := range pos {
				if pos[i] != first[i] {
					t.Fatalf("node %d drifted on repeated AdvanceTo(%v)", i, tEdge)
				}
			}
			// The repeat call must not consume randomness: a twin that
			// advanced once must stay in lockstep afterwards.
			twin.AdvanceTo(tEdge, posT)
			w.AdvanceTo(tEdge+123, pos)
			twin.AdvanceTo(tEdge+123, posT)
			for i := range pos {
				if pos[i] != posT[i] {
					t.Fatalf("node %d: repeated same-t advance perturbed the RNG", i)
				}
			}
		})
	}
}

// TestSegmentMatchesAdvance checks the Kinetic contract on every
// model: after AdvanceTo(t), Segment(i) extrapolates positions that
// match a later AdvanceTo for any instant within the segment's
// validity window, and |V| stays within MaxSpeed.
func TestSegmentMatchesAdvance(t *testing.T) {
	d := testDisc()
	models := []struct {
		name string
		m    Kinetic
	}{
		{"waypoint", NewWaypoint(d, 10, rng.New(21))},
		{"waypoint-pause", func() Kinetic {
			w := NewWaypoint(d, 10, rng.New(22))
			w.Pause = 3
			return w
		}()},
		{"direction", NewRandomDirection(d, 15, 4, rng.New(23))},
		{"static", NewStationary(d, rng.New(24))},
		{"group", NewGroupMobility(d, 10, 120, 8, rng.New(25))},
		{"gauss-markov", NewGaussMarkov(d, 10, 0.75, 1, rng.New(26))},
		{"manhattan", NewManhattan(d, 10, 0, rng.New(27))},
		{"hotspot", NewHotspot(d, 10, 5, 0, 0, rng.New(28))},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			const n = 40
			pos := tc.m.Init(n)
			vmax := tc.m.MaxSpeed()
			now := 0.0
			for step := 0; step < 200; step++ {
				now += 0.37
				tc.m.AdvanceTo(now, pos)
				segs := make([]Segment, n)
				next := now + 0.37
				for i := 0; i < n; i++ {
					segs[i] = tc.m.Segment(i)
					s := segs[i]
					if s.T0 != now && !math.IsInf(s.T1, 1) {
						t.Fatalf("node %d segment not anchored at now: T0=%v now=%v", i, s.T0, now)
					}
					if s.T1 <= s.T0 && !math.IsInf(s.T1, 1) {
						t.Fatalf("node %d empty segment [%v,%v]", i, s.T0, s.T1)
					}
					if v := s.V.Len(); v > vmax*(1+1e-9) {
						t.Fatalf("node %d |V|=%.4f exceeds MaxSpeed %.4f", i, v, vmax)
					}
					if s.At(now).Dist(pos[i]) > 1e-9 {
						t.Fatalf("node %d segment anchor %v != position %v", i, s.At(now), pos[i])
					}
					if s.T1 < next {
						next = s.T1
					}
				}
				if next <= now {
					continue
				}
				probe := now + (next-now)*0.5
				tc.m.AdvanceTo(probe, pos)
				for i := 0; i < n; i++ {
					if got, want := pos[i], segs[i].At(probe); got.Dist(want) > 1e-6 {
						t.Fatalf("node %d at t=%v: advanced %v != segment %v", i, probe, got, want)
					}
				}
				now = probe
			}
		})
	}
}
