package mobility

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func testDisc() geom.Disc { return geom.Disc{R: 1000} }

func TestWaypointStaysInRegion(t *testing.T) {
	d := testDisc()
	w := NewWaypoint(d, 10, rng.New(1))
	pos := w.Init(100)
	for step := 1; step <= 500; step++ {
		w.AdvanceTo(float64(step), pos)
		for i, p := range pos {
			if !d.Contains(p) {
				t.Fatalf("step %d: node %d at %v escaped region", step, i, p)
			}
		}
	}
}

func TestWaypointSpeedExact(t *testing.T) {
	// Between waypoint arrivals, displacement per unit time must be
	// exactly mu. Sample with a fine dt and check |Δp|/dt <= mu, with
	// equality when no waypoint was reached inside the interval.
	d := testDisc()
	mu := 7.0
	w := NewWaypoint(d, mu, rng.New(2))
	const n = 50
	pos := w.Init(n)
	prev := make([]geom.Vec, n)
	copy(prev, pos)
	const dt = 0.25
	atSpeed := 0
	total := 0
	for step := 1; step <= 2000; step++ {
		w.AdvanceTo(float64(step)*dt, pos)
		for i := range pos {
			v := pos[i].Dist(prev[i]) / dt
			if v > mu*(1+1e-9) {
				t.Fatalf("node %d moved at %v > mu %v", i, v, mu)
			}
			total++
			if math.Abs(v-mu) < 1e-9 {
				atSpeed++
			}
		}
		copy(prev, pos)
	}
	// The vast majority of intervals contain no waypoint arrival.
	if frac := float64(atSpeed) / float64(total); frac < 0.95 {
		t.Fatalf("only %.3f of intervals at exact speed", frac)
	}
}

func TestWaypointDeterminism(t *testing.T) {
	d := testDisc()
	run := func() []geom.Vec {
		w := NewWaypoint(d, 12, rng.New(42))
		pos := w.Init(30)
		for s := 1; s <= 100; s++ {
			w.AdvanceTo(float64(s), pos)
		}
		return pos
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWaypointBackwardsPanics(t *testing.T) {
	w := NewWaypoint(testDisc(), 5, rng.New(3))
	pos := w.Init(1)
	w.AdvanceTo(10, pos)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards AdvanceTo did not panic")
		}
	}()
	w.AdvanceTo(5, pos)
}

func TestWaypointPause(t *testing.T) {
	d := testDisc()
	w := NewWaypoint(d, 1000, rng.New(4)) // fast: reaches waypoints quickly
	w.Pause = 5
	pos := w.Init(20)
	// With a large pause and high speed, nodes spend most time parked;
	// verify at least some node is exactly at its leg origin at some
	// sampled instant (i.e. pausing works and position is stable).
	stable := 0
	prev := make([]geom.Vec, len(pos))
	for s := 1; s <= 400; s++ {
		copy(prev, pos)
		w.AdvanceTo(float64(s)*0.5, pos)
		for i := range pos {
			if pos[i] == prev[i] {
				stable++
			}
		}
	}
	if stable == 0 {
		t.Fatal("no paused intervals observed with Pause=5")
	}
}

func TestWaypointLongHorizonSkip(t *testing.T) {
	// Jumping far ahead in one call must land inside the region and
	// remain deterministic with respect to fine-grained stepping of a
	// separate identical model? (Not required: consuming randomness
	// differs.) We only require region containment and no panic.
	d := testDisc()
	w := NewWaypoint(d, 20, rng.New(5))
	pos := w.Init(10)
	w.AdvanceTo(1e5, pos)
	for i, p := range pos {
		if !d.Contains(p) {
			t.Fatalf("node %d escaped after long skip: %v", i, p)
		}
	}
}

func TestRandomDirectionStaysInRegion(t *testing.T) {
	d := testDisc()
	m := NewRandomDirection(d, 15, 30, rng.New(6))
	pos := m.Init(60)
	for s := 1; s <= 1000; s++ {
		m.AdvanceTo(float64(s), pos)
		for i, p := range pos {
			if !d.Contains(p) {
				t.Fatalf("step %d: node %d at %v outside", s, i, p)
			}
		}
	}
}

func TestRandomDirectionMoves(t *testing.T) {
	d := testDisc()
	m := NewRandomDirection(d, 15, 30, rng.New(7))
	pos := m.Init(10)
	start := make([]geom.Vec, len(pos))
	copy(start, pos)
	m.AdvanceTo(100, pos)
	moved := 0
	for i := range pos {
		if pos[i].Dist(start[i]) > 1 {
			moved++
		}
	}
	if moved < 8 {
		t.Fatalf("only %d/10 nodes moved", moved)
	}
}

func TestStationary(t *testing.T) {
	d := testDisc()
	m := NewStationary(d, rng.New(8))
	pos := m.Init(25)
	orig := make([]geom.Vec, len(pos))
	copy(orig, pos)
	m.AdvanceTo(1000, pos)
	for i := range pos {
		if pos[i] != orig[i] {
			t.Fatalf("stationary node %d moved", i)
		}
		if !d.Contains(pos[i]) {
			t.Fatalf("stationary node %d outside region", i)
		}
	}
	if m.Speed() != 0 {
		t.Fatalf("stationary speed = %v", m.Speed())
	}
}

func TestWaypointMeanDisplacementMatchesMu(t *testing.T) {
	// Over a long window the path length per node equals mu*T; sampled
	// displacement integrated over fine steps approximates it.
	d := testDisc()
	mu := 10.0
	w := NewWaypoint(d, mu, rng.New(9))
	const n = 40
	pos := w.Init(n)
	prev := make([]geom.Vec, n)
	copy(prev, pos)
	var pathLen float64
	const dt = 0.5
	const T = 500.0
	for s := 1; float64(s)*dt <= T; s++ {
		w.AdvanceTo(float64(s)*dt, pos)
		for i := range pos {
			pathLen += pos[i].Dist(prev[i])
		}
		copy(prev, pos)
	}
	perNodeRate := pathLen / n / T
	// Sampling under-counts slightly at waypoint turns; allow 3%.
	if perNodeRate < mu*0.97 || perNodeRate > mu*1.001 {
		t.Fatalf("measured path rate %v, want ~%v", perNodeRate, mu)
	}
}

func BenchmarkWaypointAdvance1000(b *testing.B) {
	d := testDisc()
	w := NewWaypoint(d, 10, rng.New(1))
	pos := w.Init(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.AdvanceTo(float64(i+1), pos)
	}
}

func TestGroupMobilityStaysInRegion(t *testing.T) {
	d := testDisc()
	m := NewGroupMobility(d, 10, 120, 16, rng.New(31))
	pos := m.Init(100)
	for s := 1; s <= 400; s++ {
		m.AdvanceTo(float64(s), pos)
		for i, p := range pos {
			if !d.Contains(p) {
				t.Fatalf("step %d: node %d at %v outside", s, i, p)
			}
		}
	}
}

func TestGroupMobilityCohesion(t *testing.T) {
	// Members stay within ~2*GroupRadius of their group mates (ref
	// offset is bounded by the radius on both sides).
	d := testDisc()
	const radius = 100.0
	m := NewGroupMobility(d, 10, radius, 10, rng.New(32))
	pos := m.Init(60)
	for s := 1; s <= 200; s++ {
		m.AdvanceTo(float64(s), pos)
	}
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			if m.GroupOf(i) != m.GroupOf(j) {
				continue
			}
			if dd := pos[i].Dist(pos[j]); dd > 2*radius+1e-6 {
				t.Fatalf("groupmates %d,%d separated by %v", i, j, dd)
			}
		}
	}
}

func TestGroupMobilityGroupsMove(t *testing.T) {
	d := testDisc()
	m := NewGroupMobility(d, 15, 80, 12, rng.New(33))
	pos := m.Init(48)
	start := append([]geom.Vec(nil), pos...)
	m.AdvanceTo(120, pos)
	moved := 0
	for i := range pos {
		if pos[i].Dist(start[i]) > 50 {
			moved++
		}
	}
	if moved < 40 {
		t.Fatalf("only %d/48 nodes moved substantially", moved)
	}
}

func TestGroupMobilityDeterminism(t *testing.T) {
	d := testDisc()
	run := func() []geom.Vec {
		m := NewGroupMobility(d, 10, 100, 8, rng.New(34))
		pos := m.Init(32)
		for s := 1; s <= 60; s++ {
			m.AdvanceTo(float64(s), pos)
		}
		return pos
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d diverged", i)
		}
	}
}
