package mobility

import (
	"repro/internal/geom"
	"repro/internal/rng"
)

// Hotspot is a hotspot/pause mobility model: a fixed set of attraction
// discs ("hotspots" — gathering points, buildings, water sources) is
// placed at Init, and each node repeatedly pauses at its current
// hotspot for an exponentially distributed dwell time, then travels in
// a straight line at speed μ to a uniform point inside a freshly drawn
// hotspot. The resulting spatial distribution is strongly clustered —
// most nodes sit inside a hotspot at any instant — which stresses the
// clustering layer in the opposite direction from the uniform models:
// dense stable clusters connected by sparse transit corridors.
//
// Motion is waypoint-style piecewise linear (pause legs have zero
// velocity, travel legs constant velocity), so the model satisfies the
// Kinetic contract with MaxSpeed = μ.
type Hotspot struct {
	Region     geom.Disc
	Mu         float64 // travel speed, m/s
	Spots      int     // hotspot count (0 = max(3, n/24), resolved at Init)
	SpotRadius float64 // hotspot disc radius, m (0 = Region.R/6)
	MeanPause  float64 // mean dwell time at a hotspot, s

	src     *rng.Source
	centers []geom.Vec
	legs    []leg
	now     float64
}

// NewHotspot builds a hotspot model over region with travel speed mu
// and mean dwell meanPause. spots and spotRadius zero select the
// defaults documented on the fields.
func NewHotspot(region geom.Disc, mu, meanPause float64, spots int, spotRadius float64, src *rng.Source) *Hotspot {
	if mu <= 0 {
		panic("mobility: hotspot speed must be positive")
	}
	if meanPause <= 0 {
		panic("mobility: hotspot mean pause must be positive")
	}
	if spots < 0 || spotRadius < 0 {
		panic("mobility: hotspot count and radius must be non-negative")
	}
	return &Hotspot{
		Region: region, Mu: mu, Spots: spots,
		SpotRadius: spotRadius, MeanPause: meanPause, src: src,
	}
}

// Speed returns μ.
func (h *Hotspot) Speed() float64 { return h.Mu }

// MaxSpeed returns μ (pauses only go slower).
func (h *Hotspot) MaxSpeed() float64 { return h.Mu }

// Init places the hotspots and scatters nodes inside them. Hotspot
// centers are sampled in the shrunk disc of radius R − r so every
// hotspot disc lies inside the region; nodes start at a uniform point
// of a uniformly chosen hotspot, already dwelling.
func (h *Hotspot) Init(n int) []geom.Vec {
	spots := h.Spots
	if spots == 0 {
		spots = n / 24
		if spots < 3 {
			spots = 3
		}
	}
	r := h.SpotRadius
	//lint:ignore floateq zero is the documented default-radius sentinel
	if r == 0 {
		r = h.Region.R / 6
	}
	if r > h.Region.R/2 {
		r = h.Region.R / 2
	}
	core := geom.Disc{C: h.Region.C, R: h.Region.R - r}
	h.centers = make([]geom.Vec, spots)
	for i := range h.centers {
		h.centers[i] = core.Sample(h.src)
	}
	h.SpotRadius = r
	h.Spots = spots

	h.legs = make([]leg, n)
	pos := make([]geom.Vec, n)
	for i := range pos {
		spot := h.src.Intn(spots)
		pos[i] = h.spotDisc(spot).Sample(h.src)
		h.legs[i] = h.newLeg(pos[i], 0)
	}
	h.now = 0
	return pos
}

// spotDisc returns hotspot j's attraction disc.
func (h *Hotspot) spotDisc(j int) geom.Disc {
	return geom.Disc{C: h.centers[j], R: h.SpotRadius}
}

// newLeg draws the node's next dwell-and-travel leg from position
// `from` at time t: an exponential pause, then a straight run to a
// uniform point in a uniformly chosen hotspot.
func (h *Hotspot) newLeg(from geom.Vec, t float64) leg {
	pause := h.src.Exp(1 / h.MeanPause)
	spot := h.src.Intn(h.Spots)
	dest := h.spotDisc(spot).Sample(h.src)
	depart := t + pause
	return leg{origin: from, dest: dest, t0: depart, t1: depart + from.Dist(dest)/h.Mu}
}

// AdvanceTo moves every node to time t.
func (h *Hotspot) AdvanceTo(t float64, pos []geom.Vec) {
	if t < h.now {
		panic("mobility: AdvanceTo moved backwards")
	}
	for i := range h.legs {
		l := &h.legs[i]
		for t >= l.t1 {
			*l = h.newLeg(l.dest, l.t1)
		}
		if t < l.t0 {
			pos[i] = l.origin // dwelling at the hotspot
		} else {
			pos[i] = l.at(t)
		}
	}
	h.now = t
}

// Segment returns node i's current linear piece: the dwell at the
// origin (zero velocity until departure at t0) or the travel leg
// toward the next hotspot (arriving at t1). Valid until the next
// AdvanceTo.
func (h *Hotspot) Segment(i int) Segment {
	l := &h.legs[i]
	if h.now < l.t0 {
		return Segment{P: l.origin, T0: h.now, T1: l.t0}
	}
	v := l.dest.Sub(l.origin).Scale(1 / (l.t1 - l.t0))
	return Segment{P: l.at(h.now), V: v, T0: h.now, T1: l.t1}
}

// Centers returns the hotspot centers (for tests and analysis).
func (h *Hotspot) Centers() []geom.Vec { return h.centers }

var _ Kinetic = (*Hotspot)(nil)
