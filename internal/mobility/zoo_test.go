package mobility

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// TestZooStaysInRegion: the zoo models never leave their domain —
// Gauss–Markov and hotspot stay inside the deployment disc, Manhattan
// inside the street grid's bounding square (its corner streets lie
// outside the disc proper by construction).
func TestZooStaysInRegion(t *testing.T) {
	d := testDisc()
	const eps = 1e-6
	t.Run("gauss-markov", func(t *testing.T) {
		g := NewGaussMarkov(d, 10, 0.75, 1, rng.New(41))
		pos := g.Init(32)
		for step := 1; step <= 400; step++ {
			g.AdvanceTo(float64(step)*0.5, pos)
			for i, p := range pos {
				if p.Dist(d.C) > d.R+eps {
					t.Fatalf("step %d node %d left the disc: %v", step, i, p)
				}
			}
		}
	})
	t.Run("hotspot", func(t *testing.T) {
		h := NewHotspot(d, 10, 5, 0, 0, rng.New(43))
		pos := h.Init(32)
		for step := 1; step <= 400; step++ {
			h.AdvanceTo(float64(step)*0.5, pos)
			for i, p := range pos {
				if p.Dist(d.C) > d.R+eps {
					t.Fatalf("step %d node %d left the disc: %v", step, i, p)
				}
			}
		}
	})
	t.Run("manhattan", func(t *testing.T) {
		m := NewManhattan(d, 10, 0, rng.New(47))
		pos := m.Init(32)
		side := float64(m.k) * m.spacing
		for step := 1; step <= 400; step++ {
			m.AdvanceTo(float64(step)*0.5, pos)
			for i, p := range pos {
				if p.X < m.min.X-eps || p.X > m.min.X+side+eps ||
					p.Y < m.min.Y-eps || p.Y > m.min.Y+side+eps {
					t.Fatalf("step %d node %d left the grid square: %v", step, i, p)
				}
			}
		}
	})
}

// TestZooGranularityIndependent: a zoo node's trajectory must not
// depend on the advance step size — one giant jump lands exactly where
// fine stepping does. A single node keeps the shared stream's draw
// order identical under both steppings (multi-node runs draw in
// time-interleaved call-pattern order by design, like the other
// models).
func TestZooGranularityIndependent(t *testing.T) {
	d := testDisc()
	cases := []struct {
		name string
		mk   func(seed uint64) Model
	}{
		{"gauss-markov", func(s uint64) Model { return NewGaussMarkov(d, 15, 0.75, 1, rng.New(s)) }},
		{"manhattan", func(s uint64) Model { return NewManhattan(d, 25, 0, rng.New(s)) }},
		{"hotspot", func(s uint64) Model { return NewHotspot(d, 25, 4, 0, 0, rng.New(s)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.mk(53)
			b := tc.mk(53)
			posA := a.Init(1)
			posB := b.Init(1)
			for step := 1; step <= 400; step++ {
				a.AdvanceTo(float64(step)*0.25, posA)
			}
			b.AdvanceTo(100, posB)
			if posA[0] != posB[0] {
				t.Fatalf("stepped %v != jumped %v", posA[0], posB[0])
			}
		})
	}
}

// TestZooDeterminism: same seed, same trajectory, for every zoo model,
// including multi-node runs (node-order draw discipline).
func TestZooDeterminism(t *testing.T) {
	d := testDisc()
	cases := []struct {
		name string
		mk   func(seed uint64) Model
	}{
		{"gauss-markov", func(s uint64) Model { return NewGaussMarkov(d, 10, 0.75, 1, rng.New(s)) }},
		{"manhattan", func(s uint64) Model { return NewManhattan(d, 10, 0, rng.New(s)) }},
		{"hotspot", func(s uint64) Model { return NewHotspot(d, 10, 5, 0, 0, rng.New(s)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.mk(59)
			b := tc.mk(59)
			posA := a.Init(24)
			posB := b.Init(24)
			for step := 1; step <= 100; step++ {
				tt := float64(step) * 0.7
				a.AdvanceTo(tt, posA)
				b.AdvanceTo(tt, posB)
				for i := range posA {
					if posA[i] != posB[i] {
						t.Fatalf("step %d node %d diverged: %v != %v", step, i, posA[i], posB[i])
					}
				}
			}
		})
	}
}

// TestGaussMarkovSpeedClamped pins the MaxSpeed-honesty fix: even with
// a pathologically large speed innovation the clamp keeps every
// segment's |V| within Cap, so the kinetic engine's candidate-ring
// formula (rings from MaxSpeed·interval) never under-scans. Without
// the clamp the Gaussian innovation has unbounded support and this
// test fails within a few epochs.
func TestGaussMarkovSpeedClamped(t *testing.T) {
	d := testDisc()
	g := NewGaussMarkov(d, 10, 0.75, 1, rng.New(61))
	g.SigmaS = 500 // innovations far beyond the cap on most epochs
	const n = 24
	pos := g.Init(n)
	vmax := g.MaxSpeed()
	prev := make([]geom.Vec, n)
	copy(prev, pos)
	const dt = 0.5
	for step := 1; step <= 400; step++ {
		g.AdvanceTo(float64(step)*dt, pos)
		for i := 0; i < n; i++ {
			if v := g.Segment(i).V.Len(); v > vmax*(1+1e-9) {
				t.Fatalf("step %d node %d segment |V|=%.4f exceeds cap %.4f", step, i, v, vmax)
			}
			// Displacement is the integral of |V| over legs, so it obeys
			// the same bound.
			if moved := pos[i].Dist(prev[i]); moved > vmax*dt*(1+1e-9) {
				t.Fatalf("step %d node %d moved %.4f > cap bound %.4f", step, i, moved, vmax*dt)
			}
			prev[i] = pos[i]
		}
	}
}

// TestManhattanOnStreet: every position a Manhattan node ever occupies
// lies exactly on a street — one coordinate a whole multiple of the
// spacing (up to float dust accumulated over a leg).
func TestManhattanOnStreet(t *testing.T) {
	d := testDisc()
	m := NewManhattan(d, 20, 0, rng.New(67))
	pos := m.Init(32)
	onStreet := func(p geom.Vec) bool {
		ux := (p.X - m.min.X) / m.spacing
		uy := (p.Y - m.min.Y) / m.spacing
		return math.Abs(ux-math.Round(ux)) < 1e-9*float64(m.k) ||
			math.Abs(uy-math.Round(uy)) < 1e-9*float64(m.k)
	}
	for i, p := range pos {
		if !onStreet(p) {
			t.Fatalf("node %d starts off-street: %v", i, p)
		}
	}
	for step := 1; step <= 400; step++ {
		m.AdvanceTo(float64(step)*0.37, pos)
		for i, p := range pos {
			if !onStreet(p) {
				t.Fatalf("step %d node %d off-street: %v", step, i, p)
			}
		}
	}
}

// TestManhattanBlockDefault: the zero block sentinel selects side/8
// (an 8×8 grid over the bounding square).
func TestManhattanBlockDefault(t *testing.T) {
	m := NewManhattan(testDisc(), 10, 0, rng.New(71))
	if m.Blocks() != 8 {
		t.Fatalf("default grid is %d blocks per axis, want 8", m.Blocks())
	}
}

// TestHotspotClustered: with dwell long relative to travel, most nodes
// sit inside a hotspot disc at any sampled instant, and every dwelling
// node (zero-velocity segment) is exactly inside one. This pins the
// clustered spatial structure the model exists to produce.
func TestHotspotClustered(t *testing.T) {
	d := testDisc()
	// Travel across the disc takes ≤ 2000/100 = 20 s; mean dwell 60 s,
	// so in steady state dwellers dominate.
	h := NewHotspot(d, 100, 60, 5, 150, rng.New(73))
	const n = 48
	pos := h.Init(n)
	inSpot := func(p geom.Vec) bool {
		for _, c := range h.Centers() {
			if p.Dist(c) <= h.SpotRadius+1e-6 {
				return true
			}
		}
		return false
	}
	samples, inside := 0, 0
	for step := 1; step <= 200; step++ {
		h.AdvanceTo(float64(step)*1.5, pos)
		for i := 0; i < n; i++ {
			samples++
			if inSpot(pos[i]) {
				inside++
			}
			if s := h.Segment(i); s.V == (geom.Vec{}) && !inSpot(pos[i]) {
				t.Fatalf("step %d node %d dwells outside every hotspot: %v", step, i, pos[i])
			}
		}
	}
	if frac := float64(inside) / float64(samples); frac < 0.5 {
		t.Fatalf("only %.1f%% of samples inside a hotspot, want a clustered majority", 100*frac)
	}
}
