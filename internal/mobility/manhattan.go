package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Manhattan is the Manhattan-grid mobility model (ETSI UMTS / Bai et
// al. '03): nodes travel along the lines of a street grid at constant
// speed μ, and at every intersection continue straight with
// probability 1/2 or turn left/right with probability 1/4 each (among
// the directions that stay on the grid; a dead end forces a U-turn).
// Motion is geographically constrained — unlike the open-field models,
// two nodes on parallel streets can never close below the street
// spacing — which changes the link-event mix the location-management
// layer sees.
//
// The grid spans the bounding square of the deployment disc with
// K = max(1, round(side/Block)) blocks per axis (K+1 streets), so
// corner streets may lie outside the disc proper; the spatial index
// covers the full square, so this is purely a density statement.
// Motion is exactly piecewise linear (legs run between adjacent
// intersections), so the model satisfies the Kinetic contract, with
// MaxSpeed = μ.
type Manhattan struct {
	Region geom.Disc
	Mu     float64 // node speed, m/s
	Block  float64 // target street spacing, m

	src     *rng.Source
	min     geom.Vec // lower-left corner of the street grid
	k       int      // blocks per axis; streets at indices 0..k
	spacing float64  // actual street spacing: side/k
	legs    []manLeg
	now     float64
}

// Street directions, encoded so turning is index arithmetic.
const (
	dirEast  = 0 // +x
	dirWest  = 1 // -x
	dirNorth = 2 // +y
	dirSouth = 3 // -y
)

// manLeg is one street leg: from origin at t0 toward the intersection
// (ix, iy), arriving at t1.
type manLeg struct {
	origin geom.Vec
	ix, iy int // target intersection indices, in [0, k]
	dir    int
	t0, t1 float64
}

// turnLeft/turnRight map a direction to its left/right neighbor.
var (
	turnLeft  = [4]int{dirNorth, dirSouth, dirWest, dirEast}
	turnRight = [4]int{dirSouth, dirNorth, dirEast, dirWest}
	reverse   = [4]int{dirWest, dirEast, dirSouth, dirNorth}
	dirVec    = [4]geom.Vec{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}
)

// NewManhattan builds a Manhattan-grid model over the bounding square
// of region with speed mu and target street spacing block (0 selects
// side/8).
func NewManhattan(region geom.Disc, mu, block float64, src *rng.Source) *Manhattan {
	if mu <= 0 {
		panic("mobility: manhattan speed must be positive")
	}
	if block < 0 {
		panic("mobility: manhattan block must be non-negative")
	}
	min, side := region.BoundingSquare()
	//lint:ignore floateq zero is the documented default-block sentinel
	if block == 0 {
		block = side / 8
	}
	k := int(math.Round(side / block))
	if k < 1 {
		k = 1
	}
	return &Manhattan{
		Region: region, Mu: mu, Block: block,
		src: src, min: min, k: k, spacing: side / float64(k),
	}
}

// Speed returns μ.
func (m *Manhattan) Speed() float64 { return m.Mu }

// MaxSpeed returns μ (constant street speed).
func (m *Manhattan) MaxSpeed() float64 { return m.Mu }

// intersection returns the exact position of intersection (ix, iy),
// recomputed from indices so legs never accumulate float drift.
func (m *Manhattan) intersection(ix, iy int) geom.Vec {
	return geom.Vec{
		X: m.min.X + float64(ix)*m.spacing,
		Y: m.min.Y + float64(iy)*m.spacing,
	}
}

// valid reports whether moving one block from (ix, iy) in direction d
// stays on the grid.
func (m *Manhattan) valid(ix, iy, d int) bool {
	switch d {
	case dirEast:
		return ix < m.k
	case dirWest:
		return ix > 0
	case dirNorth:
		return iy < m.k
	default:
		return iy > 0
	}
}

// stepIdx returns the intersection one block from (ix, iy) along d.
func stepIdx(ix, iy, d int) (int, int) {
	switch d {
	case dirEast:
		return ix + 1, iy
	case dirWest:
		return ix - 1, iy
	case dirNorth:
		return ix, iy + 1
	default:
		return ix, iy - 1
	}
}

// Init scatters n nodes uniformly along the streets: each picks an
// orientation, a street, a position along it, and a travel sense.
func (m *Manhattan) Init(n int) []geom.Vec {
	m.legs = make([]manLeg, n)
	out := make([]geom.Vec, n)
	side := float64(m.k) * m.spacing
	for i := range m.legs {
		l := &m.legs[i]
		horiz := m.src.Intn(2) == 0
		street := m.src.Intn(m.k + 1)
		u := m.src.Float64() * side
		forward := m.src.Intn(2) == 0
		// Index of the block the node stands in, and the target
		// intersection one step in the travel sense.
		blk := int(u / m.spacing)
		if blk >= m.k {
			blk = m.k - 1
		}
		if horiz {
			l.origin = geom.Vec{X: m.min.X + u, Y: m.min.Y + float64(street)*m.spacing}
			if forward {
				l.dir, l.ix, l.iy = dirEast, blk+1, street
			} else {
				l.dir, l.ix, l.iy = dirWest, blk, street
			}
		} else {
			l.origin = geom.Vec{X: m.min.X + float64(street)*m.spacing, Y: m.min.Y + u}
			if forward {
				l.dir, l.ix, l.iy = dirNorth, street, blk+1
			} else {
				l.dir, l.ix, l.iy = dirSouth, street, blk
			}
		}
		l.t0 = 0
		l.t1 = l.origin.Dist(m.intersection(l.ix, l.iy)) / m.Mu
		out[i] = l.origin
	}
	m.now = 0
	return out
}

// nextDir draws the turn decision at intersection (ix, iy) arriving
// with direction d: straight with weight 2, left and right with weight
// 1 each, restricted to directions that stay on the grid; a dead end
// (no candidate valid) forces a U-turn. One uniform draw decides.
func (m *Manhattan) nextDir(ix, iy, d int) int {
	cand := [3]int{d, turnLeft[d], turnRight[d]}
	weight := [3]float64{2, 1, 1}
	total := 0.0
	for c := 0; c < 3; c++ {
		if m.valid(ix, iy, cand[c]) {
			total += weight[c]
		}
	}
	//lint:ignore floateq total sums exact small-integer weights (2/1/1), so zero is exact: no valid candidate
	if total == 0 {
		return reverse[d]
	}
	r := m.src.Float64() * total
	for c := 0; c < 3; c++ {
		if !m.valid(ix, iy, cand[c]) {
			continue
		}
		if r < weight[c] {
			return cand[c]
		}
		r -= weight[c]
	}
	// Float dust put r exactly at total; take the last valid candidate.
	for c := 2; c >= 0; c-- {
		if m.valid(ix, iy, cand[c]) {
			return cand[c]
		}
	}
	return reverse[d]
}

// rollLeg replaces an expired leg with the next street block.
func (m *Manhattan) rollLeg(l *manLeg) {
	at := m.intersection(l.ix, l.iy)
	d := m.nextDir(l.ix, l.iy, l.dir)
	nx, ny := stepIdx(l.ix, l.iy, d)
	l.origin = at
	l.dir = d
	l.ix, l.iy = nx, ny
	l.t0 = l.t1
	l.t1 = l.t0 + m.spacing/m.Mu
}

// AdvanceTo moves every node to time t.
func (m *Manhattan) AdvanceTo(t float64, pos []geom.Vec) {
	if t < m.now {
		panic("mobility: AdvanceTo moved backwards")
	}
	for i := range m.legs {
		l := &m.legs[i]
		for t >= l.t1 {
			m.rollLeg(l)
		}
		pos[i] = l.origin.Add(dirVec[l.dir].Scale(m.Mu * (t - l.t0)))
	}
	m.now = t
}

// Segment returns node i's current street leg, ending at the next
// intersection. Valid until the next AdvanceTo.
func (m *Manhattan) Segment(i int) Segment {
	l := &m.legs[i]
	return Segment{
		P:  l.origin.Add(dirVec[l.dir].Scale(m.Mu * (m.now - l.t0))),
		V:  dirVec[l.dir].Scale(m.Mu),
		T0: m.now, T1: l.t1,
	}
}

// Blocks reports the grid dimension K (blocks per axis), for tests.
func (m *Manhattan) Blocks() int { return m.k }

var _ Kinetic = (*Manhattan)(nil)
