package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// GaussMarkov is the Gauss–Markov mobility model (Liang & Haas '99;
// Camp et al. '02 survey): each node carries a speed and heading state
// that relaxes toward a mean with tunable memory. Every Tau seconds
// the state updates as
//
//	s ← α·s + (1−α)·μ  + √(1−α²)·σ_s·N(0,1)
//	θ ← α·θ + (1−α)·θ̄ + √(1−α²)·σ_θ·N(0,1)
//
// so trajectories are temporally correlated — unlike random waypoint,
// a node's velocity now predicts its velocity a few seconds out, which
// is exactly the correlation structure the paper's uncorrelated-motion
// analysis assumes away.
//
// The updated speed is hard-clamped to [0, Cap]. The clamp is what
// makes MaxSpeed honest: without it the Gaussian innovation has
// unbounded support, |V| can exceed any finite bound, and the kinetic
// engine's candidate-ring formula (rings from MaxSpeed·interval, see
// internal/kinetic.New) under-scans — a latent assumption the
// unit-speed models never exercised.
//
// Between updates motion is exactly linear, and boundary handling
// reuses the random-direction machinery: each leg ends at the next
// update epoch or at the closed-form boundary-crossing instant,
// whichever comes first, so the model satisfies the Kinetic contract
// with no step-size-dependent behavior. Near the edge the mean heading
// θ̄ steers toward the region center (the standard edge treatment), so
// nodes do not pile up on the boundary.
type GaussMarkov struct {
	Region geom.Disc
	Mu     float64 // mean speed μ, m/s
	Alpha  float64 // memory parameter α in [0, 1)
	SigmaS float64 // speed innovation std dev σ_s, m/s
	SigmaT float64 // heading innovation std dev σ_θ, rad
	Tau    float64 // state update period, s
	Cap    float64 // hard speed clamp = MaxSpeed, m/s

	src   *rng.Source
	nodes []gmNode
	now   float64
}

// gmNode is one node's Gauss–Markov state plus its current linear leg.
type gmNode struct {
	speed float64 // current speed, in [0, Cap]
	theta float64 // current heading, rad
	mean  float64 // mean heading θ̄ (edge-steered)
	leg   gmLeg
}

// gmLeg is one linear piece: from origin at t0 with velocity vel until
// t1 = min(until, boundary-exit instant), where until is the next
// Gauss–Markov update epoch. t1 < until means a boundary reflection.
type gmLeg struct {
	origin geom.Vec
	vel    geom.Vec
	t0, t1 float64
	until  float64
}

// edgeFrac is the center-distance fraction beyond which the mean
// heading steers toward the region center.
const edgeFrac = 0.85

// NewGaussMarkov builds a Gauss–Markov model over region with mean
// speed mu, memory alpha in [0, 1), and update period tau. Zero-value
// tuning fields take defaults: σ_s = μ/2, σ_θ = 0.4 rad, speed cap
// 2μ.
func NewGaussMarkov(region geom.Disc, mu, alpha, tau float64, src *rng.Source) *GaussMarkov {
	if mu <= 0 {
		panic("mobility: gauss-markov speed must be positive")
	}
	if alpha < 0 || alpha >= 1 {
		panic("mobility: gauss-markov alpha must be in [0, 1)")
	}
	if tau <= 0 {
		panic("mobility: gauss-markov tau must be positive")
	}
	return &GaussMarkov{
		Region: region, Mu: mu, Alpha: alpha, Tau: tau,
		SigmaS: mu / 2, SigmaT: 0.4, Cap: 2 * mu,
		src: src,
	}
}

// Speed returns the mean speed μ.
func (g *GaussMarkov) Speed() float64 { return g.Mu }

// MaxSpeed returns the hard speed clamp: |V| never exceeds it on any
// segment the model produces (enforced by the clamp in the state
// update, tested by TestGaussMarkovSpeedClamped).
func (g *GaussMarkov) MaxSpeed() float64 { return g.Cap }

// clampSpeed applies the hard cap that keeps MaxSpeed honest.
func (g *GaussMarkov) clampSpeed(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > g.Cap {
		return g.Cap
	}
	return s
}

// Init places n nodes uniformly with stationary-mean speeds and
// uniform headings.
func (g *GaussMarkov) Init(n int) []geom.Vec {
	g.nodes = make([]gmNode, n)
	out := make([]geom.Vec, n)
	for i := range g.nodes {
		nd := &g.nodes[i]
		p := g.Region.Sample(g.src)
		nd.theta = g.src.Range(0, 2*math.Pi)
		nd.mean = nd.theta
		nd.speed = g.clampSpeed(g.Mu + g.SigmaS*g.src.Norm())
		nd.leg = gmLeg{origin: p, t0: 0, until: g.Tau}
		nd.leg.vel = headingVec(nd.theta).Scale(nd.speed)
		nd.leg.t1 = g.legEnd(&nd.leg)
		out[i] = p
	}
	g.now = 0
	return out
}

// headingVec returns the unit vector at angle theta.
func headingVec(theta float64) geom.Vec {
	return geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)}
}

// legEnd returns the end time of the leg: the update epoch, or the
// exact boundary-crossing instant if the velocity would leave the
// region first. Zero velocity never crosses.
func (g *GaussMarkov) legEnd(l *gmLeg) float64 {
	span := l.until - l.t0
	if span <= 0 {
		return l.t0
	}
	end := l.origin.Add(l.vel.Scale(span))
	u := g.Region.SegmentCircleExit(l.origin, end)
	return l.t0 + u*span
}

// rollLeg replaces an expired leg (t >= t1) with its successor. At an
// update epoch (t1 >= until) the Gauss–Markov recursion advances the
// node's speed and heading, with the mean heading steered toward the
// center when the node sits in the outer (1−edgeFrac) annulus; at a
// boundary crossing (t1 < until) the node reflects inward with a
// random perturbation to avoid boundary cycling, exactly like
// RandomDirection. Every case makes progress: reflections always point
// strictly inward and epochs advance until by Tau.
func (g *GaussMarkov) rollLeg(nd *gmNode) {
	l := &nd.leg
	p := l.origin.Add(l.vel.Scale(l.t1 - l.t0))
	if l.t1 >= l.until {
		if p.Dist(g.Region.C) > edgeFrac*g.Region.R {
			in := g.Region.C.Sub(p)
			nd.mean = math.Atan2(in.Y, in.X)
		}
		a := g.Alpha
		q := math.Sqrt(1 - a*a)
		nd.speed = g.clampSpeed(a*nd.speed + (1-a)*g.Mu + q*g.SigmaS*g.src.Norm())
		nd.theta = a*nd.theta + (1-a)*nd.mean + q*g.SigmaT*g.src.Norm()
		l.until = l.t1 + g.Tau
	} else {
		inward := g.Region.C.Sub(p).Normalize()
		dir := inward.Add(randomHeadingFrom(g.src).Scale(0.5)).Normalize()
		nd.theta = math.Atan2(dir.Y, dir.X)
		nd.mean = nd.theta
	}
	l.origin = p
	l.t0 = l.t1
	l.vel = headingVec(nd.theta).Scale(nd.speed)
	l.t1 = g.legEnd(l)
}

// randomHeadingFrom draws a uniform unit heading from src.
func randomHeadingFrom(src *rng.Source) geom.Vec {
	return headingVec(src.Range(0, 2*math.Pi))
}

// AdvanceTo integrates motion to time t with exact boundary
// reflection.
func (g *GaussMarkov) AdvanceTo(t float64, pos []geom.Vec) {
	if t < g.now {
		panic("mobility: AdvanceTo moved backwards")
	}
	for i := range g.nodes {
		nd := &g.nodes[i]
		for t >= nd.leg.t1 {
			g.rollLeg(nd)
		}
		pos[i] = nd.leg.origin.Add(nd.leg.vel.Scale(t - nd.leg.t0))
	}
	g.now = t
}

// Segment returns node i's current linear piece, ending at the next
// state update or boundary reflection. Valid until the next AdvanceTo.
func (g *GaussMarkov) Segment(i int) Segment {
	l := &g.nodes[i].leg
	return Segment{
		P: l.origin.Add(l.vel.Scale(g.now - l.t0)), V: l.vel,
		T0: g.now, T1: l.t1,
	}
}

var _ Kinetic = (*GaussMarkov)(nil)
