// Package mobility implements the node mobility models used by the
// paper. The primary model is random waypoint (Broch et al., MobiCom
// '98) with zero pause time and fixed speed μ, exactly as assumed in
// §1.2 of the paper; a random-direction model, an RPGM group model and
// a stationary model are provided for ablations and tests.
//
// Models expose piecewise-linear kinematics: a node's position is an
// analytic function of time between waypoint decisions, so the
// simulator can advance all nodes to an arbitrary instant without
// accumulating per-tick integration error. The Kinetic sub-interface
// exposes that structure directly — each node's current linear segment
// — which is what the event-driven engine (internal/kinetic) schedules
// against.
package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Model drives the motion of a set of nodes inside a disc region.
type Model interface {
	// Init places n nodes and returns their initial positions.
	Init(n int) []geom.Vec
	// AdvanceTo moves all nodes to absolute time t (monotonically
	// increasing across calls) and writes positions into pos.
	AdvanceTo(t float64, pos []geom.Vec)
	// Speed returns the configured node speed μ in m/s (mean speed for
	// models with varying speed).
	Speed() float64
}

// Segment is one linear piece of a node's trajectory: position P and
// velocity V at anchor time T0, valid until T1 (the node moves as
// P + V·(t-T0) for t in [T0, T1]). A paused node exposes a zero
// velocity with T1 at the pause expiry; a stationary node exposes
// T1 = +Inf.
type Segment struct {
	P      geom.Vec // position at T0
	V      geom.Vec // velocity, m/s
	T0, T1 float64  // validity interval
}

// At returns the position at time t (t should lie in [T0, T1]).
func (s Segment) At(t float64) geom.Vec {
	return s.P.Add(s.V.Scale(t - s.T0))
}

// Kinetic is the sub-interface of Model exposed by models whose motion
// is exactly piecewise linear, which is what the event-driven engine
// requires. Segment(i) is anchored at the model's current time and is
// valid only until the next AdvanceTo call; the returned T1 is the
// earliest future instant at which node i's velocity may change (a
// waypoint arrival, pause expiry, heading change, or boundary
// reflection). AdvanceTo must remain the only mutator, and all models
// here draw randomness in node order inside AdvanceTo, so trajectories
// depend only on the sequence of times passed to AdvanceTo — never on
// who reads segments in between. MaxSpeed bounds |V| over every
// segment the model can ever produce.
type Kinetic interface {
	Model
	Segment(i int) Segment
	MaxSpeed() float64
}

// leg is one linear segment of travel: from origin at time t0 toward
// dest, arriving at time t1.
type leg struct {
	origin geom.Vec
	dest   geom.Vec
	t0, t1 float64
}

func (l *leg) at(t float64) geom.Vec {
	if t >= l.t1 {
		return l.dest
	}
	//lint:ignore floateq degenerate leg has t1 assigned equal to t0, never computed
	if l.t1 == l.t0 {
		return l.dest
	}
	frac := (t - l.t0) / (l.t1 - l.t0)
	return l.origin.Lerp(l.dest, frac)
}

// Waypoint is the random waypoint model: each node repeatedly picks a
// uniform destination in the disc and travels there in a straight line
// at speed μ with zero pause, per the paper's assumption.
type Waypoint struct {
	Region geom.Disc
	Mu     float64 // node speed, m/s
	Pause  float64 // pause at each waypoint, s (paper: 0)

	src  *rng.Source
	legs []leg
	now  float64
}

// NewWaypoint builds a random waypoint model over region at speed mu
// m/s with zero pause, drawing randomness from src.
func NewWaypoint(region geom.Disc, mu float64, src *rng.Source) *Waypoint {
	if mu <= 0 {
		panic("mobility: waypoint speed must be positive")
	}
	return &Waypoint{Region: region, Mu: mu, src: src}
}

// Speed returns μ.
func (w *Waypoint) Speed() float64 { return w.Mu }

// MaxSpeed returns μ (travel speed; pauses only go slower).
func (w *Waypoint) MaxSpeed() float64 { return w.Mu }

// Init samples n uniform initial positions and initial waypoints.
//
// Note: sampling the initial position uniformly (rather than from the
// RWP stationary distribution) means the spatial distribution drifts
// toward the well-known center-weighted RWP steady state during a
// warm-up period; experiment runners discard that warm-up.
func (w *Waypoint) Init(n int) []geom.Vec {
	pos := make([]geom.Vec, n)
	w.legs = make([]leg, n)
	for i := range pos {
		pos[i] = w.Region.Sample(w.src)
		w.legs[i] = w.newLeg(pos[i], 0)
	}
	w.now = 0
	return pos
}

func (w *Waypoint) newLeg(from geom.Vec, t float64) leg {
	dest := w.Region.Sample(w.src)
	dist := from.Dist(dest)
	depart := t + w.Pause
	return leg{origin: from, dest: dest, t0: depart, t1: depart + dist/w.Mu}
}

// AdvanceTo moves every node to time t.
func (w *Waypoint) AdvanceTo(t float64, pos []geom.Vec) {
	if t < w.now {
		panic("mobility: AdvanceTo moved backwards")
	}
	for i := range w.legs {
		l := &w.legs[i]
		for t >= l.t1 {
			*l = w.newLeg(l.dest, l.t1)
		}
		if t < l.t0 {
			pos[i] = l.origin // pausing at the waypoint
		} else {
			pos[i] = l.at(t)
		}
	}
	w.now = t
}

// Segment returns node i's current linear piece: the pause at the
// origin waypoint (zero velocity until departure at t0) or the travel
// leg toward dest (arriving at t1). Valid until the next AdvanceTo.
func (w *Waypoint) Segment(i int) Segment {
	l := &w.legs[i]
	if w.now < l.t0 {
		return Segment{P: l.origin, T0: w.now, T1: l.t0}
	}
	v := l.dest.Sub(l.origin).Scale(1 / (l.t1 - l.t0))
	return Segment{P: l.at(w.now), V: v, T0: w.now, T1: l.t1}
}

// RandomDirection is the random direction model: each node travels in
// a uniformly random heading for an exponentially distributed duration,
// reflecting off the region boundary. Unlike random waypoint it has a
// uniform stationary spatial distribution, so it serves as a robustness
// check that results are not artifacts of RWP center-weighting.
//
// Motion is maintained as exact linear legs: each leg ends either at
// the heading's expiry instant or at the precise boundary-crossing
// instant (solved in closed form), whichever comes first. A heading
// change that lands exactly on an advance boundary is therefore just a
// leg whose t1 equals the advance time — the roll loop consumes it like
// any other expired leg, with no step-size-dependent special case.
type RandomDirection struct {
	Region   geom.Disc
	Mu       float64
	MeanLegT float64 // mean leg duration, s

	src  *rng.Source
	legs []dirLeg
	now  float64
}

// dirLeg is one linear piece of a random-direction trajectory: travel
// from origin at t0 with unit heading dir until t1, where t1 =
// min(until, boundary-exit time) and until is the instant the current
// heading expires.
type dirLeg struct {
	origin geom.Vec
	dir    geom.Vec // unit heading
	t0, t1 float64
	until  float64 // heading expiry; t1 < until means a boundary reflection at t1
}

func (l *dirLeg) posAt(mu, t float64) geom.Vec {
	return l.origin.Add(l.dir.Scale(mu * (t - l.t0)))
}

// NewRandomDirection builds a random-direction model. meanLegT is the
// mean duration between heading changes.
func NewRandomDirection(region geom.Disc, mu, meanLegT float64, src *rng.Source) *RandomDirection {
	if mu <= 0 || meanLegT <= 0 {
		panic("mobility: random direction needs positive mu and meanLegT")
	}
	return &RandomDirection{Region: region, Mu: mu, MeanLegT: meanLegT, src: src}
}

// Speed returns μ.
func (r *RandomDirection) Speed() float64 { return r.Mu }

// MaxSpeed returns μ.
func (r *RandomDirection) MaxSpeed() float64 { return r.Mu }

// Init places n nodes uniformly with random headings.
func (r *RandomDirection) Init(n int) []geom.Vec {
	r.legs = make([]dirLeg, n)
	out := make([]geom.Vec, n)
	for i := range r.legs {
		l := &r.legs[i]
		l.origin = r.Region.Sample(r.src)
		l.dir = r.randomHeading()
		l.t0 = 0
		l.until = r.src.Exp(1 / r.MeanLegT)
		l.t1 = r.legEnd(l)
		out[i] = l.origin
	}
	r.now = 0
	return out
}

func (r *RandomDirection) randomHeading() geom.Vec {
	theta := r.src.Range(0, 2*math.Pi)
	return geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)}
}

// legEnd returns the end time of the leg: the heading expiry, or the
// exact boundary-crossing instant if the heading would leave the
// region first.
func (r *RandomDirection) legEnd(l *dirLeg) float64 {
	span := l.until - l.t0
	if span <= 0 {
		return l.t0
	}
	end := l.origin.Add(l.dir.Scale(r.Mu * span))
	u := r.Region.SegmentCircleExit(l.origin, end)
	return l.t0 + u*span
}

// rollLeg replaces an expired leg (t >= t1) with its successor. At a
// heading expiry (t1 >= until) the node draws a fresh heading and
// duration; at a boundary crossing (t1 < until) it reflects inward
// with a random perturbation to avoid boundary cycling. A heading
// expiry landing exactly on the boundary-crossing instant counts as a
// heading expiry; if the fresh heading points outward the successor
// leg is zero-length and the next roll reflects it — every case makes
// progress, there is no step-granularity special case.
func (r *RandomDirection) rollLeg(l *dirLeg) {
	p := l.posAt(r.Mu, l.t1)
	if l.t1 >= l.until {
		l.dir = r.randomHeading()
		l.until = l.t1 + r.src.Exp(1/r.MeanLegT)
	} else {
		inward := r.Region.C.Sub(p).Normalize()
		l.dir = inward.Add(r.randomHeading().Scale(0.5)).Normalize()
	}
	l.origin = p
	l.t0 = l.t1
	l.t1 = r.legEnd(l)
}

// AdvanceTo integrates motion to time t with exact boundary reflection.
func (r *RandomDirection) AdvanceTo(t float64, pos []geom.Vec) {
	if t < r.now {
		panic("mobility: AdvanceTo moved backwards")
	}
	for i := range r.legs {
		l := &r.legs[i]
		for t >= l.t1 {
			r.rollLeg(l)
		}
		pos[i] = l.posAt(r.Mu, t)
	}
	r.now = t
}

// Segment returns node i's current linear piece, ending at the next
// heading change or boundary reflection. Valid until the next
// AdvanceTo.
func (r *RandomDirection) Segment(i int) Segment {
	l := &r.legs[i]
	return Segment{P: l.posAt(r.Mu, r.now), V: l.dir.Scale(r.Mu), T0: r.now, T1: l.t1}
}

// Stationary keeps all nodes fixed; useful for static-topology
// experiments (hierarchy structure, hop-count scaling) and tests.
type Stationary struct {
	Region geom.Disc
	src    *rng.Source
	fixed  []geom.Vec
}

// NewStationary builds a stationary placement model.
func NewStationary(region geom.Disc, src *rng.Source) *Stationary {
	return &Stationary{Region: region, src: src}
}

// Speed returns 0.
func (s *Stationary) Speed() float64 { return 0 }

// MaxSpeed returns 0.
func (s *Stationary) MaxSpeed() float64 { return 0 }

// Init places n nodes uniformly.
func (s *Stationary) Init(n int) []geom.Vec {
	s.fixed = make([]geom.Vec, n)
	for i := range s.fixed {
		s.fixed[i] = s.Region.Sample(s.src)
	}
	out := make([]geom.Vec, n)
	copy(out, s.fixed)
	return out
}

// AdvanceTo copies the fixed positions.
func (s *Stationary) AdvanceTo(t float64, pos []geom.Vec) {
	copy(pos, s.fixed)
}

// Segment returns a zero-velocity segment that never expires.
func (s *Stationary) Segment(i int) Segment {
	return Segment{P: s.fixed[i], T1: math.Inf(1)}
}

// compile-time interface checks
var (
	_ Kinetic = (*Waypoint)(nil)
	_ Kinetic = (*RandomDirection)(nil)
	_ Kinetic = (*Stationary)(nil)
)

// GroupMobility is the reference-point group mobility model (RPGM,
// Hong et al. '99): nodes are partitioned into groups; each group's
// reference point travels by random waypoint, and members wander
// within GroupRadius of it. The paper's §2.1 cites HSR's group
// mobility support as a motivation for hierarchical routing — under
// RPGM, clusters align with groups, so cluster membership churn is
// driven by group meetings rather than individual crossings (ablation
// A6 measures the effect on handoff overhead).
type GroupMobility struct {
	Region      geom.Disc
	Mu          float64 // reference-point speed, m/s
	GroupSize   int     // nodes per group (last group may be smaller)
	GroupRadius float64 // member wander radius around the reference point
	MemberMu    float64 // member wander speed (default Mu/2)

	src       *rng.Source
	refs      *Waypoint // reference points
	refPos    []geom.Vec
	offsets   *Waypoint // member offsets, in a zero-centered disc
	offPos    []geom.Vec
	group     []int // node -> group index
	n         int
	memberMu  float64 // effective member speed
	effRadius float64 // effective wander radius after region-fitting
}

// NewGroupMobility builds an RPGM model: ceil(n/groupSize) groups over
// region with reference speed mu.
func NewGroupMobility(region geom.Disc, mu, groupRadius float64, groupSize int, src *rng.Source) *GroupMobility {
	if mu <= 0 || groupRadius <= 0 || groupSize <= 0 {
		panic("mobility: group mobility needs positive mu, radius and size")
	}
	return &GroupMobility{
		Region: region, Mu: mu, GroupSize: groupSize, GroupRadius: groupRadius,
		MemberMu: mu / 2, src: src,
	}
}

// Speed returns the reference-point speed μ.
func (g *GroupMobility) Speed() float64 { return g.Mu }

// MaxSpeed bounds a member's speed: reference speed plus wander speed
// (a member position is the sum of two waypoint trajectories, and Init
// sizes the regions so the boundary clamp never binds).
func (g *GroupMobility) MaxSpeed() float64 { return g.Mu + g.memberMu }

// Init places groups and members. The reference region and the wander
// radius are sized so their sum never exceeds the region radius: the
// wander radius is capped at R/2 and the reference region shrinks by
// exactly that amount. Members therefore never clamp against the disc
// boundary, which keeps per-step displacement bounded by
// (Mu+MemberMu)·dt and member motion exactly piecewise linear (the
// kinetic engine's bounded-velocity assumption).
func (g *GroupMobility) Init(n int) []geom.Vec {
	g.n = n
	groups := (n + g.GroupSize - 1) / g.GroupSize
	g.effRadius = g.GroupRadius
	if g.effRadius > g.Region.R/2 {
		g.effRadius = g.Region.R / 2
	}
	refRegion := g.Region
	refRegion.R -= g.effRadius
	g.refs = NewWaypoint(refRegion, g.Mu, g.src.Split())
	g.refPos = g.refs.Init(groups)
	g.memberMu = g.MemberMu
	if g.memberMu <= 0 {
		g.memberMu = g.Mu / 2
	}
	g.offsets = NewWaypoint(geom.Disc{R: g.effRadius}, g.memberMu, g.src.Split())
	g.offPos = g.offsets.Init(n)
	g.group = make([]int, n)
	out := make([]geom.Vec, n)
	for i := 0; i < n; i++ {
		g.group[i] = i / g.GroupSize
		out[i] = g.Region.Clamp(g.refPos[g.group[i]].Add(g.offPos[i]))
	}
	return out
}

// AdvanceTo moves reference points and member offsets to time t. The
// Clamp is belt-and-braces against float dust: Init sizes the two
// regions so |ref| + |offset| <= R, so it never moves a point by more
// than a rounding error.
func (g *GroupMobility) AdvanceTo(t float64, pos []geom.Vec) {
	g.refs.AdvanceTo(t, g.refPos)
	g.offsets.AdvanceTo(t, g.offPos)
	for i := 0; i < g.n; i++ {
		pos[i] = g.Region.Clamp(g.refPos[g.group[i]].Add(g.offPos[i]))
	}
}

// Segment composes the reference point's segment with the member's
// offset segment: positions and velocities add, and the composite is
// valid until the earlier of the two expiries.
func (g *GroupMobility) Segment(i int) Segment {
	rs := g.refs.Segment(g.group[i])
	os := g.offsets.Segment(i)
	t1 := rs.T1
	if os.T1 < t1 {
		t1 = os.T1
	}
	return Segment{P: rs.P.Add(os.P), V: rs.V.Add(os.V), T0: rs.T0, T1: t1}
}

// GroupOf reports the group index of a node (for tests and analysis).
func (g *GroupMobility) GroupOf(v int) int { return g.group[v] }

var _ Kinetic = (*GroupMobility)(nil)
