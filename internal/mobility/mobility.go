// Package mobility implements the node mobility models used by the
// paper. The primary model is random waypoint (Broch et al., MobiCom
// '98) with zero pause time and fixed speed μ, exactly as assumed in
// §1.2 of the paper; a random-direction model and a stationary model
// are provided for ablations and tests.
//
// Models expose piecewise-linear kinematics: a node's position is an
// analytic function of time between waypoint decisions, so the
// simulator can advance all nodes to an arbitrary instant without
// accumulating per-tick integration error.
package mobility

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Model drives the motion of a set of nodes inside a disc region.
type Model interface {
	// Init places n nodes and returns their initial positions.
	Init(n int) []geom.Vec
	// AdvanceTo moves all nodes to absolute time t (monotonically
	// increasing across calls) and writes positions into pos.
	AdvanceTo(t float64, pos []geom.Vec)
	// Speed returns the configured node speed μ in m/s (mean speed for
	// models with varying speed).
	Speed() float64
}

// leg is one linear segment of travel: from origin at time t0 toward
// dest, arriving at time t1.
type leg struct {
	origin geom.Vec
	dest   geom.Vec
	t0, t1 float64
}

func (l *leg) at(t float64) geom.Vec {
	if t >= l.t1 {
		return l.dest
	}
	//lint:ignore floateq degenerate leg has t1 assigned equal to t0, never computed
	if l.t1 == l.t0 {
		return l.dest
	}
	frac := (t - l.t0) / (l.t1 - l.t0)
	return l.origin.Lerp(l.dest, frac)
}

// Waypoint is the random waypoint model: each node repeatedly picks a
// uniform destination in the disc and travels there in a straight line
// at speed μ with zero pause, per the paper's assumption.
type Waypoint struct {
	Region geom.Disc
	Mu     float64 // node speed, m/s
	Pause  float64 // pause at each waypoint, s (paper: 0)

	src  *rng.Source
	legs []leg
	now  float64
}

// NewWaypoint builds a random waypoint model over region at speed mu
// m/s with zero pause, drawing randomness from src.
func NewWaypoint(region geom.Disc, mu float64, src *rng.Source) *Waypoint {
	if mu <= 0 {
		panic("mobility: waypoint speed must be positive")
	}
	return &Waypoint{Region: region, Mu: mu, src: src}
}

// Speed returns μ.
func (w *Waypoint) Speed() float64 { return w.Mu }

// Init samples n uniform initial positions and initial waypoints.
//
// Note: sampling the initial position uniformly (rather than from the
// RWP stationary distribution) means the spatial distribution drifts
// toward the well-known center-weighted RWP steady state during a
// warm-up period; experiment runners discard that warm-up.
func (w *Waypoint) Init(n int) []geom.Vec {
	pos := make([]geom.Vec, n)
	w.legs = make([]leg, n)
	for i := range pos {
		pos[i] = w.Region.Sample(w.src)
		w.legs[i] = w.newLeg(pos[i], 0)
	}
	w.now = 0
	return pos
}

func (w *Waypoint) newLeg(from geom.Vec, t float64) leg {
	dest := w.Region.Sample(w.src)
	dist := from.Dist(dest)
	depart := t + w.Pause
	return leg{origin: from, dest: dest, t0: depart, t1: depart + dist/w.Mu}
}

// AdvanceTo moves every node to time t.
func (w *Waypoint) AdvanceTo(t float64, pos []geom.Vec) {
	if t < w.now {
		panic("mobility: AdvanceTo moved backwards")
	}
	for i := range w.legs {
		l := &w.legs[i]
		for t >= l.t1 {
			*l = w.newLeg(l.dest, l.t1)
		}
		if t < l.t0 {
			pos[i] = l.origin // pausing at the waypoint
		} else {
			pos[i] = l.at(t)
		}
	}
	w.now = t
}

// RandomDirection is the random direction model: each node travels in
// a uniformly random heading for an exponentially distributed duration,
// reflecting off the region boundary. Unlike random waypoint it has a
// uniform stationary spatial distribution, so it serves as a robustness
// check that results are not artifacts of RWP center-weighting.
type RandomDirection struct {
	Region   geom.Disc
	Mu       float64
	MeanLegT float64 // mean leg duration, s

	src      *rng.Source
	dirs     []geom.Vec
	until    []float64 // time current heading expires
	position []geom.Vec
	now      float64
}

// NewRandomDirection builds a random-direction model. meanLegT is the
// mean duration between heading changes.
func NewRandomDirection(region geom.Disc, mu, meanLegT float64, src *rng.Source) *RandomDirection {
	if mu <= 0 || meanLegT <= 0 {
		panic("mobility: random direction needs positive mu and meanLegT")
	}
	return &RandomDirection{Region: region, Mu: mu, MeanLegT: meanLegT, src: src}
}

// Speed returns μ.
func (r *RandomDirection) Speed() float64 { return r.Mu }

// Init places n nodes uniformly with random headings.
func (r *RandomDirection) Init(n int) []geom.Vec {
	r.position = make([]geom.Vec, n)
	r.dirs = make([]geom.Vec, n)
	r.until = make([]float64, n)
	for i := range r.position {
		r.position[i] = r.Region.Sample(r.src)
		r.dirs[i] = r.randomHeading()
		r.until[i] = r.src.Exp(1 / r.MeanLegT)
	}
	r.now = 0
	out := make([]geom.Vec, n)
	copy(out, r.position)
	return out
}

func (r *RandomDirection) randomHeading() geom.Vec {
	theta := r.src.Range(0, 2*math.Pi)
	return geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)}
}

// AdvanceTo integrates motion to time t with boundary reflection.
func (r *RandomDirection) AdvanceTo(t float64, pos []geom.Vec) {
	if t < r.now {
		panic("mobility: AdvanceTo moved backwards")
	}
	for i := range r.position {
		cur := r.now
		for cur < t {
			step := t - cur
			if r.until[i] < cur+step {
				step = r.until[i] - cur
				if step < 0 {
					step = 0
				}
			}
			next := r.position[i].Add(r.dirs[i].Scale(r.Mu * step))
			if !r.Region.Contains(next) {
				// Reflect: clamp to boundary, reverse with a random
				// inward perturbation to avoid boundary cycling.
				next = r.Region.Clamp(next)
				inward := r.Region.C.Sub(next).Normalize()
				r.dirs[i] = inward.Add(r.randomHeading().Scale(0.5)).Normalize()
			}
			r.position[i] = next
			cur += step
			if cur >= r.until[i] {
				r.dirs[i] = r.randomHeading()
				r.until[i] = cur + r.src.Exp(1/r.MeanLegT)
			}
			//lint:ignore floateq zero step means the min() below selected the event boundary exactly
			if step == 0 && cur < t {
				// Heading change fired exactly at cur; continue the
				// remaining interval with the fresh heading.
				continue
			}
		}
		pos[i] = r.position[i]
	}
	r.now = t
}

// Stationary keeps all nodes fixed; useful for static-topology
// experiments (hierarchy structure, hop-count scaling) and tests.
type Stationary struct {
	Region geom.Disc
	src    *rng.Source
	fixed  []geom.Vec
}

// NewStationary builds a stationary placement model.
func NewStationary(region geom.Disc, src *rng.Source) *Stationary {
	return &Stationary{Region: region, src: src}
}

// Speed returns 0.
func (s *Stationary) Speed() float64 { return 0 }

// Init places n nodes uniformly.
func (s *Stationary) Init(n int) []geom.Vec {
	s.fixed = make([]geom.Vec, n)
	for i := range s.fixed {
		s.fixed[i] = s.Region.Sample(s.src)
	}
	out := make([]geom.Vec, n)
	copy(out, s.fixed)
	return out
}

// AdvanceTo copies the fixed positions.
func (s *Stationary) AdvanceTo(t float64, pos []geom.Vec) {
	copy(pos, s.fixed)
}

// compile-time interface checks
var (
	_ Model = (*Waypoint)(nil)
	_ Model = (*RandomDirection)(nil)
	_ Model = (*Stationary)(nil)
)

// GroupMobility is the reference-point group mobility model (RPGM,
// Hong et al. '99): nodes are partitioned into groups; each group's
// reference point travels by random waypoint, and members wander
// within GroupRadius of it. The paper's §2.1 cites HSR's group
// mobility support as a motivation for hierarchical routing — under
// RPGM, clusters align with groups, so cluster membership churn is
// driven by group meetings rather than individual crossings (ablation
// A6 measures the effect on handoff overhead).
type GroupMobility struct {
	Region      geom.Disc
	Mu          float64 // reference-point speed, m/s
	GroupSize   int     // nodes per group (last group may be smaller)
	GroupRadius float64 // member wander radius around the reference point
	MemberMu    float64 // member wander speed (default Mu/2)

	src     *rng.Source
	refs    *Waypoint // reference points
	refPos  []geom.Vec
	offsets *Waypoint // member offsets, in a zero-centered disc
	offPos  []geom.Vec
	group   []int // node -> group index
	n       int
}

// NewGroupMobility builds an RPGM model: ceil(n/groupSize) groups over
// region with reference speed mu.
func NewGroupMobility(region geom.Disc, mu, groupRadius float64, groupSize int, src *rng.Source) *GroupMobility {
	if mu <= 0 || groupRadius <= 0 || groupSize <= 0 {
		panic("mobility: group mobility needs positive mu, radius and size")
	}
	return &GroupMobility{
		Region: region, Mu: mu, GroupSize: groupSize, GroupRadius: groupRadius,
		MemberMu: mu / 2, src: src,
	}
}

// Speed returns the reference-point speed μ.
func (g *GroupMobility) Speed() float64 { return g.Mu }

// Init places groups and members.
func (g *GroupMobility) Init(n int) []geom.Vec {
	g.n = n
	groups := (n + g.GroupSize - 1) / g.GroupSize
	// Reference points roam a slightly shrunken region so member
	// offsets rarely clamp at the boundary.
	refRegion := g.Region
	if refRegion.R > g.GroupRadius*2 {
		refRegion.R -= g.GroupRadius
	}
	g.refs = NewWaypoint(refRegion, g.Mu, g.src.Split())
	g.refPos = g.refs.Init(groups)
	memberMu := g.MemberMu
	if memberMu <= 0 {
		memberMu = g.Mu / 2
	}
	g.offsets = NewWaypoint(geom.Disc{R: g.GroupRadius}, memberMu, g.src.Split())
	g.offPos = g.offsets.Init(n)
	g.group = make([]int, n)
	out := make([]geom.Vec, n)
	for i := 0; i < n; i++ {
		g.group[i] = i / g.GroupSize
		out[i] = g.Region.Clamp(g.refPos[g.group[i]].Add(g.offPos[i]))
	}
	return out
}

// AdvanceTo moves reference points and member offsets to time t.
func (g *GroupMobility) AdvanceTo(t float64, pos []geom.Vec) {
	g.refs.AdvanceTo(t, g.refPos)
	g.offsets.AdvanceTo(t, g.offPos)
	for i := 0; i < g.n; i++ {
		pos[i] = g.Region.Clamp(g.refPos[g.group[i]].Add(g.offPos[i]))
	}
}

// GroupOf reports the group index of a node (for tests and analysis).
func (g *GroupMobility) GroupOf(v int) int { return g.group[v] }

var _ Model = (*GroupMobility)(nil)
