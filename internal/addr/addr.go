// Package addr provides hierarchical addresses for nodes in a
// clustered hierarchy. A node's hierarchical address is the chain of
// cluster IDs containing it, from its level-1 cluster up to the top of
// the hierarchy (§2.1 of the paper: every datagram carries the
// destination's hierarchical address, and forwarding decisions are
// made on it alone).
package addr

import (
	"strconv"
	"strings"

	"repro/internal/cluster"
)

// Address identifies a node and the cluster chain containing it.
// Chain[k-1] is the node's level-k cluster head ID; the last element
// is the top-level cluster.
type Address struct {
	Node  int
	Chain []int
}

// Of extracts the hierarchical address of level-0 node v from a
// hierarchy snapshot.
func Of(h *cluster.Hierarchy, v int) Address {
	return Address{Node: v, Chain: h.AncestorChain(v)}
}

// Levels returns the number of cluster levels in the address.
func (a Address) Levels() int { return len(a.Chain) }

// ClusterAt returns the level-k cluster ID (k >= 1), or -1 when the
// address does not reach level k.
func (a Address) ClusterAt(k int) int {
	if k < 1 || k > len(a.Chain) {
		return -1
	}
	return a.Chain[k-1]
}

// String renders the address top-down, e.g. "100.85.37.63" for node 63
// in level-1 cluster 37, level-2 cluster 85, level-3 cluster 100 —
// matching the paper's Fig. 1 notation.
func (a Address) String() string {
	var sb strings.Builder
	for i := len(a.Chain) - 1; i >= 0; i-- {
		sb.WriteString(strconv.Itoa(a.Chain[i]))
		sb.WriteByte('.')
	}
	sb.WriteString(strconv.Itoa(a.Node))
	return sb.String()
}

// Equal reports whether two addresses are identical.
func (a Address) Equal(b Address) bool {
	if a.Node != b.Node || len(a.Chain) != len(b.Chain) {
		return false
	}
	for i := range a.Chain {
		if a.Chain[i] != b.Chain[i] {
			return false
		}
	}
	return true
}

// CommonLevel returns the smallest k such that a and b lie in the same
// level-k cluster: 0 when a and b are the same node, and -1 when the
// addresses share no cluster at any level (distinct partitions). This
// is the level at which hierarchical routing between the two nodes
// resolves.
func CommonLevel(a, b Address) int {
	if a.Node == b.Node {
		return 0
	}
	min := len(a.Chain)
	if len(b.Chain) < min {
		min = len(b.Chain)
	}
	for k := 1; k <= min; k++ {
		if a.Chain[k-1] == b.Chain[k-1] {
			return k
		}
	}
	return -1
}

// DivergenceLevels counts how many levels of a's chain differ from
// b's, i.e. the number of LM servers that would need updating if a
// node's address changed from a to b. Chains of different lengths
// count the missing levels as differing.
func DivergenceLevels(a, b Address) int {
	max := len(a.Chain)
	if len(b.Chain) > max {
		max = len(b.Chain)
	}
	diff := 0
	for k := 1; k <= max; k++ {
		if a.ClusterAt(k) != b.ClusterAt(k) {
			diff++
		}
	}
	return diff
}
