package addr

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// buildChainHierarchy: 1-2-3 chain produces clusters {1,2}->2, {3}->3,
// then level-1 edge (2,3) yields top cluster 3.
func buildChainHierarchy() *cluster.Hierarchy {
	g := topology.NewGraph(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	return cluster.Build(g, []int{1, 2, 3}, cluster.Config{}, nil)
}

func TestOfAndString(t *testing.T) {
	h := buildChainHierarchy()
	a1 := Of(h, 1)
	if a1.Node != 1 {
		t.Fatalf("node = %d", a1.Node)
	}
	if a1.ClusterAt(1) != 2 {
		t.Fatalf("level-1 cluster of 1 = %d, want 2", a1.ClusterAt(1))
	}
	if a1.ClusterAt(2) != 3 {
		t.Fatalf("level-2 cluster of 1 = %d, want 3", a1.ClusterAt(2))
	}
	if a1.ClusterAt(3) != -1 || a1.ClusterAt(0) != -1 {
		t.Fatal("out-of-range ClusterAt should be -1")
	}
	if got := a1.String(); got != "3.2.1" {
		t.Fatalf("String = %q, want 3.2.1", got)
	}
	if a1.Levels() != 2 {
		t.Fatalf("Levels = %d", a1.Levels())
	}
}

func TestCommonLevel(t *testing.T) {
	h := buildChainHierarchy()
	a1, a2, a3 := Of(h, 1), Of(h, 2), Of(h, 3)
	if got := CommonLevel(a1, a1); got != 0 {
		t.Fatalf("self common level = %d", got)
	}
	// 1 and 2 share the level-1 cluster (head 2).
	if got := CommonLevel(a1, a2); got != 1 {
		t.Fatalf("CommonLevel(1,2) = %d", got)
	}
	// 1 and 3 only meet at level 2.
	if got := CommonLevel(a1, a3); got != 2 {
		t.Fatalf("CommonLevel(1,3) = %d", got)
	}
	// Symmetry.
	if CommonLevel(a1, a3) != CommonLevel(a3, a1) {
		t.Fatal("CommonLevel not symmetric")
	}
}

func TestCommonLevelDisjoint(t *testing.T) {
	// Two separate components never share a cluster.
	g := topology.NewGraph(6)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	h := cluster.Build(g, []int{1, 2, 4, 5}, cluster.Config{}, nil)
	a, b := Of(h, 1), Of(h, 4)
	if got := CommonLevel(a, b); got != -1 {
		t.Fatalf("disjoint common level = %d", got)
	}
}

func TestEqual(t *testing.T) {
	h := buildChainHierarchy()
	a := Of(h, 1)
	b := Of(h, 1)
	if !a.Equal(b) {
		t.Fatal("identical addresses not equal")
	}
	c := Of(h, 2)
	if a.Equal(c) {
		t.Fatal("distinct addresses equal")
	}
	// Same node, different chain.
	d := Address{Node: 1, Chain: []int{9}}
	if a.Equal(d) {
		t.Fatal("differing chains equal")
	}
}

func TestDivergenceLevels(t *testing.T) {
	a := Address{Node: 1, Chain: []int{2, 3, 9}}
	b := Address{Node: 1, Chain: []int{2, 7, 9}}
	if got := DivergenceLevels(a, b); got != 1 {
		t.Fatalf("divergence = %d, want 1", got)
	}
	// Different lengths: the missing level counts.
	c := Address{Node: 1, Chain: []int{2, 3}}
	if got := DivergenceLevels(a, c); got != 1 {
		t.Fatalf("divergence with shorter chain = %d, want 1", got)
	}
	if got := DivergenceLevels(a, a); got != 0 {
		t.Fatalf("self divergence = %d", got)
	}
}
