package addr_test

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cluster"
	"repro/internal/topology"
)

// ExampleCommonLevel reproduces the paper's addressing idea on a tiny
// chain: nodes 1 and 3 share no level-1 cluster but meet at level 2.
func ExampleCommonLevel() {
	g := topology.NewGraph(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	h := cluster.Build(g, []int{1, 2, 3}, cluster.Config{}, nil)

	a1 := addr.Of(h, 1)
	a3 := addr.Of(h, 3)
	fmt.Println("address of 1:", a1)
	fmt.Println("address of 3:", a3)
	fmt.Println("common level:", addr.CommonLevel(a1, a3))
	// Output:
	// address of 1: 3.2.1
	// address of 3: 3.3.3
	// common level: 2
}
