// Package geom provides the 2-D geometry primitives used by the
// simulator: vectors, distances, and sampling of the circular
// deployment region assumed by the paper (§1.2).
package geom

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Vec is a point or displacement in the plane, in meters.
type Vec struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean norm |v|.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns |v|² without a square root.
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Dist2 returns the squared distance between v and w.
func (v Vec) Dist2(w Vec) float64 { return v.Sub(w).Len2() }

// Normalize returns v/|v|, or the zero vector if |v| == 0.
func (v Vec) Normalize() Vec {
	l := v.Len()
	//lint:ignore floateq exact-zero guard before division
	if l == 0 {
		return Vec{}
	}
	return v.Scale(1 / l)
}

// Lerp returns the linear interpolation v + t·(w-v).
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y)}
}

// String formats the vector for diagnostics.
func (v Vec) String() string { return fmt.Sprintf("(%.2f, %.2f)", v.X, v.Y) }

// Disc is a circular region centered at C with radius R. It is the
// deployment area of the network: the paper assumes nodes uniformly
// distributed over a circle whose area grows linearly with |V| so that
// density stays fixed.
type Disc struct {
	C Vec
	R float64
}

// DiscForDensity returns a disc centered at the origin sized so that n
// nodes yield the given node density (nodes per square meter).
func DiscForDensity(n int, density float64) Disc {
	if n <= 0 || density <= 0 {
		panic("geom: DiscForDensity requires positive n and density")
	}
	area := float64(n) / density
	return Disc{C: Vec{}, R: math.Sqrt(area / math.Pi)}
}

// Area returns the disc area.
func (d Disc) Area() float64 { return math.Pi * d.R * d.R }

// Contains reports whether p lies inside or on the disc boundary.
func (d Disc) Contains(p Vec) bool {
	return p.Dist2(d.C) <= d.R*d.R*(1+1e-12)
}

// Sample draws a uniform point inside the disc using the inverse-CDF
// radius transform (r = R·√u).
func (d Disc) Sample(src *rng.Source) Vec {
	r := d.R * math.Sqrt(src.Float64())
	theta := src.Range(0, 2*math.Pi)
	return Vec{d.C.X + r*math.Cos(theta), d.C.Y + r*math.Sin(theta)}
}

// Clamp returns the point inside the disc nearest to p (p itself when
// already inside).
func (d Disc) Clamp(p Vec) Vec {
	delta := p.Sub(d.C)
	l := delta.Len()
	if l <= d.R {
		return p
	}
	return d.C.Add(delta.Scale(d.R / l))
}

// BoundingSquare returns the axis-aligned square [minX,minY,side]
// enclosing the disc; the spatial index hashes into it.
func (d Disc) BoundingSquare() (min Vec, side float64) {
	return Vec{d.C.X - d.R, d.C.Y - d.R}, 2 * d.R
}

// SegmentCircleExit returns the parameter t in [0, 1] at which the
// segment from a to b first leaves the disc, or 1 if it never does.
// Used to truncate waypoint legs at the region boundary.
func (d Disc) SegmentCircleExit(a, b Vec) float64 {
	// Solve |a + t(b-a) - c|^2 = R^2 for the largest valid t <= 1.
	dir := b.Sub(a)
	f := a.Sub(d.C)
	A := dir.Len2()
	//lint:ignore floateq exact-zero guard before division
	if A == 0 {
		return 1
	}
	B := 2 * f.Dot(dir)
	C := f.Len2() - d.R*d.R
	disc := B*B - 4*A*C
	if disc < 0 {
		return 1
	}
	sq := math.Sqrt(disc)
	t := (-B + sq) / (2 * A) // the exit root
	if t < 0 {
		return 1
	}
	if t > 1 {
		return 1
	}
	return t
}
