package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecArithmetic(t *testing.T) {
	a := Vec{1, 2}
	b := Vec{3, -4}
	if got := a.Add(b); got != (Vec{4, -2}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec{-2, 6}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Fatalf("Dot = %v", got)
	}
	if got := b.Len(); !approx(got, 5, 1e-12) {
		t.Fatalf("Len = %v", got)
	}
	if got := b.Len2(); got != 25 {
		t.Fatalf("Len2 = %v", got)
	}
}

func TestDistConsistency(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Vec{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		b := Vec{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		d := a.Dist(b)
		d2 := a.Dist2(b)
		return approx(d*d, d2, 1e-6*(1+d2)) && d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	if got := (Vec{}).Normalize(); got != (Vec{}) {
		t.Fatalf("Normalize zero = %v", got)
	}
	v := Vec{3, 4}.Normalize()
	if !approx(v.Len(), 1, 1e-12) {
		t.Fatalf("normalized length %v", v.Len())
	}
}

func TestLerp(t *testing.T) {
	a := Vec{0, 0}
	b := Vec{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Vec{5, 10}) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
}

func TestDiscForDensity(t *testing.T) {
	d := DiscForDensity(1000, 0.001) // 1000 nodes at 0.001 /m² -> 1e6 m²
	if !approx(d.Area(), 1e6, 1) {
		t.Fatalf("area = %v, want 1e6", d.Area())
	}
	// Density invariance: doubling n doubles area.
	d2 := DiscForDensity(2000, 0.001)
	if !approx(d2.Area()/d.Area(), 2, 1e-9) {
		t.Fatalf("area ratio = %v", d2.Area()/d.Area())
	}
}

func TestDiscForDensityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	DiscForDensity(0, 1)
}

func TestDiscSampleUniform(t *testing.T) {
	src := rng.New(5)
	d := Disc{C: Vec{10, -5}, R: 100}
	const n = 50000
	inInner := 0
	for i := 0; i < n; i++ {
		p := d.Sample(src)
		if !d.Contains(p) {
			t.Fatalf("sample %v outside disc", p)
		}
		if p.Dist(d.C) <= d.R/2 {
			inInner++
		}
	}
	// Inner half-radius disc has 1/4 the area.
	frac := float64(inInner) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("inner fraction = %v, want ~0.25 (uniformity)", frac)
	}
}

func TestDiscClamp(t *testing.T) {
	d := Disc{C: Vec{}, R: 10}
	inside := Vec{3, 4}
	if got := d.Clamp(inside); got != inside {
		t.Fatalf("Clamp moved interior point: %v", got)
	}
	out := Vec{30, 40}
	got := d.Clamp(out)
	if !approx(got.Dist(d.C), 10, 1e-9) {
		t.Fatalf("clamped point at distance %v", got.Dist(d.C))
	}
	// Clamped point preserves direction.
	if !approx(got.X/got.Y, out.X/out.Y, 1e-9) {
		t.Fatalf("clamp changed direction: %v", got)
	}
}

func TestClampIdempotent(t *testing.T) {
	d := Disc{C: Vec{1, 2}, R: 7}
	src := rng.New(9)
	f := func(x, y float64) bool {
		p := Vec{math.Mod(x, 1000), math.Mod(y, 1000)}
		c := d.Clamp(p)
		return d.Contains(c) && c.Dist(d.Clamp(c)) < 1e-9
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundingSquare(t *testing.T) {
	d := Disc{C: Vec{5, 5}, R: 3}
	min, side := d.BoundingSquare()
	if min != (Vec{2, 2}) || side != 6 {
		t.Fatalf("bounding square = %v side %v", min, side)
	}
}

func TestSegmentCircleExit(t *testing.T) {
	d := Disc{C: Vec{}, R: 10}
	// Segment fully inside: never exits.
	if got := d.SegmentCircleExit(Vec{0, 0}, Vec{1, 1}); got != 1 {
		t.Fatalf("inside segment exit t = %v", got)
	}
	// Segment from center straight out to (20,0): exits at t=0.5.
	if got := d.SegmentCircleExit(Vec{0, 0}, Vec{20, 0}); !approx(got, 0.5, 1e-9) {
		t.Fatalf("exit t = %v, want 0.5", got)
	}
	// Exit point lies on the boundary.
	a, b := Vec{-5, 0}, Vec{25, 0}
	tExit := d.SegmentCircleExit(a, b)
	p := a.Lerp(b, tExit)
	if !approx(p.Dist(d.C), d.R, 1e-9) {
		t.Fatalf("exit point %v at distance %v", p, p.Dist(d.C))
	}
}

func TestSegmentCircleExitProperty(t *testing.T) {
	d := Disc{C: Vec{}, R: 50}
	src := rng.New(77)
	for i := 0; i < 2000; i++ {
		a := d.Sample(src)
		b := Vec{src.Range(-200, 200), src.Range(-200, 200)}
		tExit := d.SegmentCircleExit(a, b)
		if tExit < 0 || tExit > 1 {
			t.Fatalf("exit t out of range: %v", tExit)
		}
		// Any point strictly before the exit stays inside (within tol).
		mid := a.Lerp(b, tExit*0.999)
		if mid.Dist(d.C) > d.R*(1+1e-6) {
			t.Fatalf("point before exit is outside: dist %v", mid.Dist(d.C))
		}
	}
}

func BenchmarkDiscSample(b *testing.B) {
	src := rng.New(1)
	d := Disc{R: 1000}
	var sink Vec
	for i := 0; i < b.N; i++ {
		sink = d.Sample(src)
	}
	_ = sink
}
