// Package analytic evaluates the paper's closed-form overhead model so
// the harness can overlay predicted curves on measured ones. The
// paper's derivation chain (Sections 1.2, 4 and 5):
//
//	c_k  = Π α_j ≈ α^k                        (Eq. 2)
//	h_k  = Θ(√c_k)                            (Eq. 3)
//	f_0  = Θ(μ/R_TX) = Θ(1)                   (Eq. 4)
//	f_k  = Θ(f_0/h_k)                         (Eqs. 7–9)
//	φ_k  = Θ(f_k·h_k·L) = Θ(f_0·L)            (Eq. 6a)
//	φ    = Σ_k φ_k = Θ(L²) = Θ(log²|V|)       (Eq. 6c)
//	g'_k = Θ(1/h_k)  ⇒  γ_k = Θ(L)            (Eqs. 10–14)
//	γ    = Θ(log²|V|)                         (§5.3)
//
// The Θ constants are free; Calibrate pins them from one measured
// reference point so predictions can be drawn at other N.
package analytic

import "math"

// Model holds the structural constants of the paper's analysis.
type Model struct {
	// Alpha is the mean cluster arity α (nodes aggregate by α per
	// level); the paper treats it as Θ(1).
	Alpha float64
	// F0 is the level-0 link change rate per node per second (Eq. 4).
	F0 float64
	// H1 is the mean hop count across a level-1 cluster; h_k scales
	// as H1·α^{(k-1)/2} from it (Eq. 3).
	H1 float64
	// CPhi and CGamma absorb the Θ constants of Eq. 6 and Eq. 10.
	CPhi   float64
	CGamma float64
}

// Default returns a model with unit constants and the given arity.
func Default(alpha float64) Model {
	if alpha <= 1 {
		alpha = 3
	}
	return Model{Alpha: alpha, F0: 1, H1: 1, CPhi: 1, CGamma: 1}
}

// Levels returns L(N) = log_α N, the hierarchy depth the analysis
// assumes (Θ(log|V|)).
func (m Model) Levels(n float64) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log(n) / math.Log(m.Alpha)
}

// Ck returns c_k = α^k (Eq. 2 with uniform arity).
func (m Model) Ck(k int) float64 { return math.Pow(m.Alpha, float64(k)) }

// Hk returns h_k = H1·√(c_k/c_1) (Eq. 3).
func (m Model) Hk(k int) float64 {
	if k < 1 {
		return 0
	}
	return m.H1 * math.Sqrt(m.Ck(k)/m.Ck(1))
}

// Fk returns f_k = F0/h_k (Eq. 8-9), the level-k migration frequency
// per node.
func (m Model) Fk(k int) float64 {
	h := m.Hk(k)
	//lint:ignore floateq exact-zero guard before division
	if h == 0 {
		return m.F0
	}
	return m.F0 / h
}

// PhiK returns φ_k = CPhi·f_k·h_k·L(N) (Eq. 6a) for a network of n
// nodes. Note f_k·h_k = F0, so φ_k is level-independent — the heart of
// the paper's argument.
func (m Model) PhiK(n float64, k int) float64 {
	return m.CPhi * m.Fk(k) * m.Hk(k) * m.Levels(n)
}

// Phi returns φ(N) = Σ_{k=1..L} φ_k = CPhi·F0·L² (Eq. 6c).
func (m Model) Phi(n float64) float64 {
	L := m.Levels(n)
	return m.CPhi * m.F0 * L * L
}

// GammaK returns γ_k = CGamma·g'_k·c_k·h_k·L / c_k = CGamma·F0·L per
// level (Eqs. 10–14 with g'_k = F0/h_k and the |E_k| ∝ 1/c_k
// cancellation of Eq. 13).
func (m Model) GammaK(n float64, k int) float64 {
	return m.CGamma * m.F0 * m.Levels(n)
}

// Gamma returns γ(N) = CGamma·F0·L².
func (m Model) Gamma(n float64) float64 {
	L := m.Levels(n)
	return m.CGamma * m.F0 * L * L
}

// Total returns φ(N) + γ(N), the paper's headline Θ(log²|V|) bound.
func (m Model) Total(n float64) float64 { return m.Phi(n) + m.Gamma(n) }

// Calibrate pins CPhi and CGamma so the model passes through one
// measured reference point (n, φ, γ). It returns the calibrated copy.
func (m Model) Calibrate(n, phi, gamma float64) Model {
	L := m.Levels(n)
	if L > 0 && m.F0 > 0 {
		m.CPhi = phi / (m.F0 * L * L)
		m.CGamma = gamma / (m.F0 * L * L)
	}
	return m
}

// FlatLMUpdate returns the per-node-per-second update cost of the
// strawman flat location service the paper's motivation implies: every
// level-0 link change triggers a location update over the network
// diameter Θ(√N), so cost = F0·√N. Used as the comparison curve in
// E15.
func (m Model) FlatLMUpdate(n float64) float64 {
	return m.F0 * math.Sqrt(n)
}
