package analytic

import (
	"math"
	"testing"
)

func TestLevelsLogarithmic(t *testing.T) {
	m := Default(4)
	if got := m.Levels(4); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Levels(4) = %v", got)
	}
	if got := m.Levels(256); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Levels(256) = %v", got)
	}
	if m.Levels(1) != 0 {
		t.Fatal("Levels(1) != 0")
	}
}

func TestHkSqrtScaling(t *testing.T) {
	m := Default(4)
	m.H1 = 2
	if got := m.Hk(1); got != 2 {
		t.Fatalf("Hk(1) = %v", got)
	}
	// Each level multiplies h by sqrt(alpha) = 2.
	if got := m.Hk(2); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Hk(2) = %v", got)
	}
	if got := m.Hk(3); math.Abs(got-8) > 1e-9 {
		t.Fatalf("Hk(3) = %v", got)
	}
}

func TestPhiKLevelIndependent(t *testing.T) {
	// f_k·h_k = F0 cancels: φ_k identical across k (the paper's core
	// cancellation).
	m := Default(3)
	m.F0 = 0.4
	for k := 2; k <= 6; k++ {
		if math.Abs(m.PhiK(1e4, k)-m.PhiK(1e4, 1)) > 1e-12 {
			t.Fatalf("φ_%d = %v != φ_1 = %v", k, m.PhiK(1e4, k), m.PhiK(1e4, 1))
		}
	}
}

func TestPhiIsLogSquared(t *testing.T) {
	m := Default(3)
	// φ(N²)/φ(N) = (2 log N)²/(log N)² = 4 exactly.
	n := 100.0
	ratio := m.Phi(n*n) / m.Phi(n)
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("φ(N²)/φ(N) = %v, want 4", ratio)
	}
	if m.Gamma(n*n)/m.Gamma(n) != ratio {
		t.Fatal("γ scaling differs from φ scaling")
	}
}

func TestFkDecreasesWithLevel(t *testing.T) {
	m := Default(4)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		f := m.Fk(k)
		if f >= prev {
			t.Fatalf("f_%d = %v not decreasing", k, f)
		}
		prev = f
	}
}

func TestCalibrate(t *testing.T) {
	m := Default(3.5)
	m.F0 = 0.8
	cal := m.Calibrate(512, 0.123, 0.456)
	if math.Abs(cal.Phi(512)-0.123) > 1e-9 {
		t.Fatalf("calibrated φ(512) = %v", cal.Phi(512))
	}
	if math.Abs(cal.Gamma(512)-0.456) > 1e-9 {
		t.Fatalf("calibrated γ(512) = %v", cal.Gamma(512))
	}
	if math.Abs(cal.Total(512)-(0.123+0.456)) > 1e-9 {
		t.Fatalf("calibrated total = %v", cal.Total(512))
	}
}

func TestFlatLMUpdateBeatenAsymptotically(t *testing.T) {
	// For large N the flat Θ(√N) cost exceeds the hierarchical
	// Θ(log²N) cost even with unfavorable constants.
	m := Default(3)
	m.CPhi, m.CGamma = 5, 5
	if m.Total(1e9) >= m.FlatLMUpdate(1e9) {
		t.Fatalf("hierarchical %v not below flat %v at N=1e9",
			m.Total(1e9), m.FlatLMUpdate(1e9))
	}
	// And the gap widens with N.
	gap6 := m.FlatLMUpdate(1e9) / m.Total(1e9)
	gap12 := m.FlatLMUpdate(1e12) / m.Total(1e12)
	if gap12 <= gap6 {
		t.Fatalf("crossover gap not widening: %v vs %v", gap6, gap12)
	}
}

func TestDefaultGuardsAlpha(t *testing.T) {
	m := Default(0.5)
	if m.Alpha <= 1 {
		t.Fatal("Default did not guard alpha")
	}
}
