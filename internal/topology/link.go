package topology

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/spatial"
)

// LinkModel abstracts the level-0 link predicate: given the current
// node positions, which unordered pairs are connected this scan. The
// unit-disk model of the paper's §1.2 is one implementation; lossy
// radio models (path loss + shadowing with hysteresis) are another.
//
// Kinetic-compatibility contract: Kinetic() reports whether the model
// is exactly the memoryless unit-disk predicate dist(a,b) <= Radius(),
// evaluated with the same float operations as a grid scan. Only then
// may the event-driven engine (internal/kinetic) maintain the edge set
// from motion certificates — its correctness rests on the link state
// being a pure threshold on current squared distance. Models that keep
// per-pair state (hysteresis) or use any other predicate must return
// false, and Config validation falls back to the scan engine.
//
// Determinism contract: BuildInto must produce byte-identical graphs
// (adjacency order and sorted edge list) for the same positions across
// serial and parallel builds, and across fresh and reused destination
// storage. Stateful models must evolve their state identically in all
// of those cases — state may be read during a build but only updated
// from the finished, deterministic edge set.
type LinkModel interface {
	// Name returns the registry key of the model (e.g. "unitdisk").
	Name() string
	// Kinetic reports event-driven-engine compatibility (see the
	// kinetic-compatibility contract above).
	Kinetic() bool
	// Radius returns the maximum distance at which the model can ever
	// report a link: the grid candidate-scan radius. Pairs farther
	// apart are never examined.
	Radius() float64
	// BuildInto rebuilds the level-0 graph over positions into g (nil
	// allocates; non-nil is Reset and refilled, allocation-free in
	// steady state). idx must already index every node. A nil or
	// single-worker pool builds serially; otherwise the build is
	// sharded over p with byte-identical output.
	BuildInto(g *Graph, n int, pos []geom.Vec, idx *spatial.Grid, p *par.Pool, sc *BuildScratch) *Graph
}

// buildLinksInto is the serial core of every link-model build: the
// grid emits each unordered pair within radius exactly once (row-major
// over owner cells); pairs passing keep (nil = all) land in adjacency
// lists in emission order and in the bulk edge list, sorted once at
// the end. BuildUnitDiskInto is this with keep == nil.
//
//manet:hotpath
func buildLinksInto(g *Graph, n int, pos []geom.Vec, radius float64, idx *spatial.Grid, keep func(a, b int) bool) *Graph {
	if g == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the double-buffered graph once
		g = NewGraph(n)
	} else {
		g.Reset(n)
	}
	//lint:ignore hotpath per-tick accessor closure, counted in the tick alloc budget
	at := func(i int) geom.Vec { return pos[i] }
	//lint:ignore hotpath per-tick emit closure, counted in the tick alloc budget
	idx.ForEachPair(radius, at, func(a, b int) {
		if keep != nil && !keep(a, b) {
			return
		}
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
		g.bulk = append(g.bulk, MakeEdgeKey(a, b))
	})
	slices.Sort(g.bulk)
	return g
}

// buildLinksIntoPar is buildLinksInto fanned out over pool p, sharded
// by grid row ranges exactly like BuildUnitDiskIntoPar (which is this
// with keep == nil): per-shard enumeration, ordered concat reproducing
// the serial emission order, parallel adjacency fill by node range.
// keep may be invoked concurrently from shard workers and must be safe
// for concurrent calls (read-only state).
//
//manet:hotpath
func buildLinksIntoPar(
	g *Graph, n int, pos []geom.Vec, radius float64, idx *spatial.Grid,
	p *par.Pool, sc *BuildScratch, keep func(a, b int) bool,
) *Graph {
	if p.Workers() == 1 {
		return buildLinksInto(g, n, pos, radius, idx, keep)
	}
	if g == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the double-buffered graph once
		g = NewGraph(n)
	} else {
		g.Reset(n)
	}
	if sc == nil {
		//lint:ignore hotpath warm-up: callers reuse one scratch across ticks
		sc = &BuildScratch{}
	}
	shards := par.Shards(p.Workers(), idx.Rows())
	for len(sc.shards) < shards {
		sc.shards = append(sc.shards, nil)
	}
	//lint:ignore hotpath per-tick accessor closure, counted in the tick alloc budget
	at := func(i int) geom.Vec { return pos[i] }

	// Phase 1: enumerate surviving pairs per row-range shard.
	//lint:ignore hotpath per-tick shard callback closure, counted in the tick alloc budget
	p.RunShards(shards, func(_, s int) {
		lo, hi := par.Shard(idx.Rows(), shards, s)
		buf := sc.shards[s][:0]
		//lint:ignore hotpath per-shard emit closure, counted in the tick alloc budget
		idx.ForEachPairRows(radius, lo, hi, at, func(a, b int) {
			if keep != nil && !keep(a, b) {
				return
			}
			buf = append(buf, MakeEdgeKey(a, b))
		})
		sc.shards[s] = buf
	})

	// Phase 2: ordered merge — concatenating in shard order yields the
	// serial scan's emission order.
	for s := 0; s < shards; s++ {
		g.bulk = append(g.bulk, sc.shards[s]...)
	}

	// Phase 3: fill adjacency rows from the emission sequence. Worker
	// w owns the contiguous node range Shard(n, W, w), so all writes
	// are disjoint and each list grows in emission order — exactly the
	// serial insertion order.
	//lint:ignore hotpath per-tick worker callback closure, counted in the tick alloc budget
	p.Run(func(w int) {
		lo, hi := par.Shard(n, p.Workers(), w)
		if lo == hi {
			return
		}
		for _, k := range g.bulk {
			a, b := k.Nodes()
			if a >= lo && a < hi {
				g.adj[a] = append(g.adj[a], b)
			}
			if b >= lo && b < hi {
				g.adj[b] = append(g.adj[b], a)
			}
		}
	})

	slices.Sort(g.bulk)
	return g
}

// UnitDisk is the paper's link model: a link exists iff the pair is
// within RTX. Memoryless and threshold-exact, so it is the one model
// the event-driven kinetic engine can maintain.
type UnitDisk struct {
	RTX float64 // transmission radius, m
}

// NewUnitDisk returns the unit-disk link model with radius rtx.
func NewUnitDisk(rtx float64) UnitDisk {
	if rtx <= 0 {
		panic("topology: unit-disk radius must be positive")
	}
	return UnitDisk{RTX: rtx}
}

// Name returns "unitdisk".
func (u UnitDisk) Name() string { return "unitdisk" }

// Kinetic reports true: the predicate is exactly dist <= RTX.
func (u UnitDisk) Kinetic() bool { return true }

// Radius returns RTX.
func (u UnitDisk) Radius() float64 { return u.RTX }

// BuildInto rebuilds the unit-disk graph (serial or sharded).
//
//manet:hotpath
func (u UnitDisk) BuildInto(g *Graph, n int, pos []geom.Vec, idx *spatial.Grid, p *par.Pool, sc *BuildScratch) *Graph {
	return buildLinksIntoPar(g, n, pos, u.RTX, idx, p, sc, nil)
}

// shadowGamma decorrelates per-pair shadowing streams: the edge key is
// spread by a splitmix64-style odd multiplier before seeding, so
// adjacent keys do not produce adjacent stream states.
const shadowGamma = 0x9E3779B97F4A7C15

// LogShadow is a log-distance path-loss link model with lognormal
// shadowing and RSSI hysteresis. Received power at distance d falls as
// 10·η·log10(d/RTX) dB below the nominal sensitivity threshold plus a
// per-pair shadowing offset X ~ N(0, σ²) dB (clamped to ±3σ), constant
// for the pair's lifetime (deterministic in the pair key and the model
// seed, and symmetric by construction: link(a,b) == link(b,a)).
//
// Hysteresis: the margin M dB is split around the nominal threshold,
// which in the distance domain gives each pair two radii
//
//	d_make  = RTX · 10^((x - M/2)/(10η))   (link forms below this)
//	d_break = RTX · 10^((x + M/2)/(10η))   (link drops above this)
//
// with x the pair's shadowing offset in dB (sign chosen so positive x
// extends range). d_make < d_break whenever M > 0, so a pair sitting
// in the dead band keeps its previous state and a threshold-straddling
// RSSI cannot flap the link on and off every scan.
//
// The model keeps per-pair link state, so it declares itself
// non-kinetic: Config validation rejects the event-driven engine and
// runs it under the scan engine only. State is updated only from the
// finished edge set of each build, never during one, so serial and
// parallel builds (which may evaluate pairs in different orders and on
// different goroutines) read an identical, frozen snapshot.
type LogShadow struct {
	rtx    float64 // nominal (unshadowed, zero-margin) radius, m
	eta    float64 // path-loss exponent η
	sigma  float64 // shadowing std dev σ, dB
	margin float64 // hysteresis margin M, dB
	seed   uint64  // shadowing stream seed

	rtx2   float64 // RTX²
	dscale float64 // ln10/(5η): dB -> d² exponent scale
	mHi    float64 // exp(dscale · M/2): break/make threshold² ratio, halved
	radius float64 // max d_break over the clamped shadow range

	linked map[EdgeKey]struct{} // pairs up as of the last finished build
}

// NewLogShadow builds the lossy link model. rtx is the nominal radius
// (where the unshadowed received power crosses the sensitivity
// threshold), eta the path-loss exponent (> 0), sigmaDB the shadowing
// standard deviation in dB (>= 0), marginDB the hysteresis margin in
// dB (>= 0), and seed the per-pair shadowing stream seed.
func NewLogShadow(rtx, eta, sigmaDB, marginDB float64, seed uint64) *LogShadow {
	if rtx <= 0 {
		panic("topology: logshadow radius must be positive")
	}
	if eta <= 0 {
		panic("topology: logshadow path-loss exponent must be positive")
	}
	if sigmaDB < 0 || marginDB < 0 {
		panic("topology: logshadow sigma and margin must be non-negative")
	}
	m := &LogShadow{
		rtx: rtx, eta: eta, sigma: sigmaDB, margin: marginDB, seed: seed,
		rtx2:   rtx * rtx,
		dscale: math.Ln10 / (5 * eta),
	}
	m.mHi = math.Exp(m.dscale * marginDB / 2)
	m.radius = rtx * math.Pow(10, (3*sigmaDB+marginDB/2)/(10*eta))
	return m
}

// Name returns "logshadow".
func (m *LogShadow) Name() string { return "logshadow" }

// Kinetic reports false: hysteresis keeps per-pair state, which the
// certificate-driven engine cannot maintain.
func (m *LogShadow) Kinetic() bool { return false }

// Radius returns the largest possible break distance — RTX scaled by
// the most favorable clamped shadow plus the upper hysteresis margin.
// The grid candidate scan uses this, so no linkable pair escapes it.
func (m *LogShadow) Radius() float64 { return m.radius }

// shadow returns the pair's deterministic shadowing offset in dB:
// a standard normal drawn from a stack-local rng.Source seeded by
// (seed, key), clamped to ±3, scaled by σ. Symmetric in the pair by
// construction (EdgeKey is canonical) and allocation-free.
func (m *LogShadow) shadow(k EdgeKey) float64 {
	s := rng.NewLocal(m.seed ^ uint64(k)*shadowGamma)
	x := s.Norm()
	if x > 3 {
		x = 3
	} else if x < -3 {
		x = -3
	}
	return x * m.sigma
}

// pairUp evaluates the hysteresis predicate for one candidate pair
// against the state frozen at the last build. Safe for concurrent
// calls: it only reads.
//
//manet:hotpath
func (m *LogShadow) pairUp(pa, pb geom.Vec, k EdgeKey) bool {
	d2 := pa.Dist2(pb)
	e := m.rtx2 * math.Exp(m.dscale*m.shadow(k))
	if _, up := m.linked[k]; up {
		return d2 <= e*m.mHi // break threshold²
	}
	return d2 <= e/m.mHi // make threshold²
}

// BuildInto rebuilds the lossy graph (serial or sharded) and then
// refreshes the hysteresis state from the finished edge set.
//
//manet:hotpath
func (m *LogShadow) BuildInto(g *Graph, n int, pos []geom.Vec, idx *spatial.Grid, p *par.Pool, sc *BuildScratch) *Graph {
	//lint:ignore hotpath per-tick predicate closure, counted in the tick alloc budget
	keep := func(a, b int) bool {
		return m.pairUp(pos[a], pos[b], MakeEdgeKey(a, b))
	}
	g = buildLinksIntoPar(g, n, pos, m.radius, idx, p, sc, keep)
	if m.linked == nil {
		//lint:ignore hotpath warm-up: the state map is allocated once per model
		m.linked = make(map[EdgeKey]struct{}, len(g.bulk))
	} else {
		clear(m.linked)
	}
	for _, k := range g.bulk {
		m.linked[k] = struct{}{}
	}
	return g
}

// Thresholds reports the pair's make/break distances (m), for tests
// and diagnostics.
func (m *LogShadow) Thresholds(a, b int) (dMake, dBreak float64) {
	x := m.shadow(MakeEdgeKey(a, b))
	dMake = m.rtx * math.Pow(10, (x-m.margin/2)/(10*m.eta))
	dBreak = m.rtx * math.Pow(10, (x+m.margin/2)/(10*m.eta))
	return
}

// Linked reports the pair's hysteresis state as of the last build, for
// tests and diagnostics.
func (m *LogShadow) Linked(a, b int) bool {
	_, ok := m.linked[MakeEdgeKey(a, b)]
	return ok
}

// compile-time interface checks
var (
	_ LinkModel = UnitDisk{}
	_ LinkModel = (*LogShadow)(nil)
)

// String formats the model for diagnostics.
func (m *LogShadow) String() string {
	return fmt.Sprintf("logshadow(rtx=%g, eta=%g, sigma=%gdB, margin=%gdB)", m.rtx, m.eta, m.sigma, m.margin)
}
