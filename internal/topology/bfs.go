package topology

import "sort"

// BFS utilities: hop counts, components, and a reusable traversal
// scratch that avoids reallocating visit arrays on hot paths.

// BFSScratch holds reusable traversal state for graphs whose node IDs
// lie in [0, n).
type BFSScratch struct {
	dist  []int32
	queue []int32
	epoch []uint32
	cur   uint32
}

// NewBFSScratch allocates scratch for an ID space of size n.
func NewBFSScratch(n int) *BFSScratch {
	return &BFSScratch{
		dist:  make([]int32, n),
		queue: make([]int32, 0, n),
		epoch: make([]uint32, n),
	}
}

// HopCount returns the minimum hop count from src to dst in g, or -1
// if dst is unreachable. Restrict, when non-nil, limits the traversal
// to vertices for which restrict returns true (src and dst are always
// allowed); this is how intra-cluster hop counts are measured.
func (s *BFSScratch) HopCount(g *Graph, src, dst int, restrict func(int) bool) int {
	if src == dst {
		return 0
	}
	s.cur++
	s.queue = s.queue[:0]
	s.queue = append(s.queue, int32(src))
	s.epoch[src] = s.cur
	s.dist[src] = 0
	for head := 0; head < len(s.queue); head++ {
		v := int(s.queue[head])
		d := s.dist[v]
		for _, w := range g.Neighbors(v) {
			if s.epoch[w] == s.cur {
				continue
			}
			if w == dst {
				return int(d) + 1
			}
			if restrict != nil && !restrict(w) {
				continue
			}
			s.epoch[w] = s.cur
			s.dist[w] = d + 1
			s.queue = append(s.queue, int32(w))
		}
	}
	return -1
}

// DistancesFrom computes hop counts from src to every reachable vertex,
// returning a map. Restrict as in HopCount.
func (s *BFSScratch) DistancesFrom(g *Graph, src int, restrict func(int) bool) map[int]int {
	out := map[int]int{src: 0}
	s.cur++
	s.queue = s.queue[:0]
	s.queue = append(s.queue, int32(src))
	s.epoch[src] = s.cur
	s.dist[src] = 0
	for head := 0; head < len(s.queue); head++ {
		v := int(s.queue[head])
		d := s.dist[v]
		for _, w := range g.Neighbors(v) {
			if s.epoch[w] == s.cur {
				continue
			}
			if restrict != nil && !restrict(w) {
				continue
			}
			s.epoch[w] = s.cur
			s.dist[w] = d + 1
			s.queue = append(s.queue, int32(w))
			out[w] = int(d) + 1
		}
	}
	return out
}

// Components returns the connected components over the given vertex
// set, each sorted ascending, ordered by their smallest vertex.
func Components(g *Graph, vertices []int) [][]int {
	n := g.IDSpace()
	seen := make([]bool, n)
	inSet := make([]bool, n)
	for _, v := range vertices {
		inSet[v] = true
	}
	var comps [][]int
	// Iterate in sorted order for determinism.
	sorted := append([]int(nil), vertices...)
	sortInts(sorted)
	var queue []int
	for _, start := range sorted {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue = queue[:0]
		queue = append(queue, start)
		comp := []int{start}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if !inSet[w] || seen[w] {
					continue
				}
				seen[w] = true
				queue = append(queue, w)
				comp = append(comp, w)
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

// GiantComponent returns the largest connected component over all
// vertices 0..n-1 that appear in g's adjacency (isolated vertices form
// singleton components). Ties break toward the smaller leading vertex.
func GiantComponent(g *Graph, vertices []int) []int {
	comps := Components(g, vertices)
	var best []int
	for _, c := range comps {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}

// ComponentScratch holds reusable buffers for repeated giant-component
// queries over graphs sharing one ID space. The slice returned by
// Giant aliases the scratch and is valid only until the next call.
type ComponentScratch struct {
	seen   []bool
	inSet  []bool
	sorted []int
	queue  []int
	comp   []int
	best   []int
}

// Giant returns the largest connected component over the given vertex
// set, matching GiantComponent's semantics (ties break toward the
// smaller leading vertex; result sorted ascending). The returned slice
// is owned by the scratch.
//
//manet:hotpath
func (s *ComponentScratch) Giant(g *Graph, vertices []int) []int {
	n := g.IDSpace()
	if cap(s.seen) < n {
		//lint:ignore hotpath amortized scratch growth when the id space expands
		s.seen = make([]bool, n)
		//lint:ignore hotpath amortized scratch growth when the id space expands
		s.inSet = make([]bool, n)
	}
	s.seen = s.seen[:n]
	s.inSet = s.inSet[:n]
	for i := range s.seen {
		s.seen[i] = false
		s.inSet[i] = false
	}
	for _, v := range vertices {
		s.inSet[v] = true
	}
	s.sorted = append(s.sorted[:0], vertices...)
	sortInts(s.sorted)
	s.best = s.best[:0]
	for _, start := range s.sorted {
		if s.seen[start] {
			continue
		}
		s.seen[start] = true
		s.queue = append(s.queue[:0], start)
		s.comp = append(s.comp[:0], start)
		for head := 0; head < len(s.queue); head++ {
			v := s.queue[head]
			for _, w := range g.Neighbors(v) {
				if !s.inSet[w] || s.seen[w] {
					continue
				}
				s.seen[w] = true
				s.queue = append(s.queue, w)
				s.comp = append(s.comp, w)
			}
		}
		if len(s.comp) > len(s.best) {
			s.best, s.comp = s.comp, s.best
		}
	}
	sortInts(s.best)
	return s.best
}

// IsConnected reports whether the given vertex set is a single
// connected component in g.
func IsConnected(g *Graph, vertices []int) bool {
	if len(vertices) <= 1 {
		return true
	}
	comps := Components(g, vertices)
	return len(comps) == 1
}

func sortInts(a []int) { sort.Ints(a) }
