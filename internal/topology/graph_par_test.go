package topology

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/spatial"
)

// graphsIdentical requires byte-identical graphs: same adjacency
// content AND order per node, same sorted edge list.
func graphsIdentical(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.IDSpace() != got.IDSpace() {
		t.Fatalf("id space %d vs %d", want.IDSpace(), got.IDSpace())
	}
	if want.EdgeCount() != got.EdgeCount() {
		t.Fatalf("edge count %d vs %d", want.EdgeCount(), got.EdgeCount())
	}
	we := want.Edges()
	ge := got.Edges()
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("edge list diverges at %d: %v vs %v", i, we[i], ge[i])
		}
	}
	for v := 0; v < want.IDSpace(); v++ {
		wn, gn := want.Neighbors(v), got.Neighbors(v)
		if len(wn) != len(gn) {
			t.Fatalf("node %d: degree %d vs %d", v, len(wn), len(gn))
		}
		for i := range wn {
			if wn[i] != gn[i] {
				t.Fatalf("node %d: adjacency order diverges at %d: %v vs %v", v, i, wn, gn)
			}
		}
	}
}

func buildFixture(n int, rtx float64, seed uint64) ([]geom.Vec, *spatial.Grid) {
	pos := layout(n, 500, seed)
	idx := spatial.NewGridForDisc(geom.Disc{R: 500}, rtx, n)
	for i, p := range pos {
		idx.Insert(i, p)
	}
	return pos, idx
}

// TestBuildUnitDiskParMatchesSerial is the ordered-merge contract for
// the parallel graph build: for every (n, workers) combination —
// including n smaller than the worker count and node/row counts that
// do not divide evenly into shards — the parallel build must be
// byte-identical to the serial one.
func TestBuildUnitDiskParMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 3, 17, 100, 401} {
		pos, idx := buildFixture(n, 90, uint64(n))
		serial := BuildUnitDisk(n, pos, 90, idx)
		for _, workers := range []int{1, 2, 3, 5, 8, 32} {
			p := par.NewPool(workers)
			parg := BuildUnitDiskIntoPar(nil, n, pos, 90, idx, p, nil)
			p.Close()
			graphsIdentical(t, serial, parg)
		}
	}
}

// TestBuildUnitDiskParReuse checks the scratch/double-buffer path:
// alternating builds into recycled storage with a reused BuildScratch
// must still match serial builds, including after node positions move.
func TestBuildUnitDiskParReuse(t *testing.T) {
	const n, rtx = 200, 80.0
	pos, idx := buildFixture(n, rtx, 7)
	p := par.NewPool(3)
	defer p.Close()
	var sc BuildScratch
	var spare *Graph
	src := rng.New(99)
	for tick := 0; tick < 5; tick++ {
		for i := range pos {
			pos[i].X += src.Range(-20, 20)
			pos[i].Y += src.Range(-20, 20)
			idx.Update(i, pos[i])
		}
		serial := BuildUnitDisk(n, pos, rtx, idx)
		spare = BuildUnitDiskIntoPar(spare, n, pos, rtx, idx, p, &sc)
		graphsIdentical(t, serial, spare)
	}
}

// TestBuildUnitDiskParNilPool verifies the nil-pool fallback.
func TestBuildUnitDiskParNilPool(t *testing.T) {
	pos, idx := buildFixture(50, 90, 3)
	serial := BuildUnitDisk(50, pos, 90, idx)
	parg := BuildUnitDiskIntoPar(nil, 50, pos, 90, idx, nil, nil)
	graphsIdentical(t, serial, parg)
}

// TestAddEdgeAfterBulkBuild checks the mixed-store path: incremental
// edges layered over a bulk-built graph dedup against the bulk list
// and stay visible through every accessor.
func TestAddEdgeAfterBulkBuild(t *testing.T) {
	pos, idx := buildFixture(30, 90, 5)
	g := BuildUnitDisk(30, pos, 90, idx)
	edges := g.Edges()
	if len(edges) == 0 {
		t.Fatal("fixture produced no edges")
	}
	a, b := edges[0].Nodes()
	before := g.EdgeCount()
	degA := g.Degree(a)
	g.AddEdge(a, b) // duplicate of a bulk edge: must be ignored
	if g.EdgeCount() != before || g.Degree(a) != degA {
		t.Fatal("duplicate AddEdge over bulk edge changed the graph")
	}
	// Find a non-adjacent pair and connect it incrementally.
	u, v := -1, -1
	for x := 0; x < 30 && u < 0; x++ {
		for y := x + 1; y < 30; y++ {
			if !g.HasEdge(x, y) {
				u, v = x, y
				break
			}
		}
	}
	if u < 0 {
		t.Skip("fixture is a complete graph")
	}
	g.AddEdge(u, v)
	if !g.HasEdge(u, v) {
		t.Fatal("incremental edge not visible via HasEdge")
	}
	if g.EdgeCount() != before+1 {
		t.Fatalf("EdgeCount = %d, want %d", g.EdgeCount(), before+1)
	}
	all := g.Edges()
	if len(all) != before+1 {
		t.Fatalf("Edges() length = %d, want %d", len(all), before+1)
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("Edges() not strictly ascending over mixed stores")
		}
	}
}
