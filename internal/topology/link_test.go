package topology

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/spatial"
)

// lossyFixture builds a grid sized for the model's candidate radius
// with every node inserted.
func lossyFixture(n int, pos []geom.Vec, radius float64) *spatial.Grid {
	idx := spatial.NewGridForDisc(geom.Disc{R: 500}, radius, n)
	for i, p := range pos {
		idx.Insert(i, p)
	}
	return idx
}

// TestLogShadowThresholdsSymmetricDeterministic: the per-pair
// shadowing draw is a pure function of (model seed, canonical pair
// key) — symmetric in the pair, identical across model instances with
// the same seed, and different across seeds.
func TestLogShadowThresholdsSymmetricDeterministic(t *testing.T) {
	a := NewLogShadow(100, 3, 4, 3, 42)
	b := NewLogShadow(100, 3, 4, 3, 42)
	other := NewLogShadow(100, 3, 4, 3, 43)
	distinct := false
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			mkIJ, brIJ := a.Thresholds(i, j)
			mkJI, brJI := a.Thresholds(j, i)
			if mkIJ != mkJI || brIJ != brJI {
				t.Fatalf("pair (%d,%d): asymmetric thresholds %v/%v vs %v/%v",
					i, j, mkIJ, brIJ, mkJI, brJI)
			}
			mkB, brB := b.Thresholds(i, j)
			if mkIJ != mkB || brIJ != brB {
				t.Fatalf("pair (%d,%d): same seed, different thresholds", i, j)
			}
			if mkIJ >= brIJ {
				t.Fatalf("pair (%d,%d): d_make %v >= d_break %v (margin 3 dB)", i, j, mkIJ, brIJ)
			}
			if brIJ > a.Radius()*(1+1e-12) {
				t.Fatalf("pair (%d,%d): d_break %v exceeds candidate radius %v", i, j, brIJ, a.Radius())
			}
			if mkO, _ := other.Thresholds(i, j); mkO != mkIJ {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Fatal("different seeds produced identical shadowing for every pair")
	}
}

// TestLogShadowZeroMarginZeroSigmaIsUnitDisk: with shadowing and
// hysteresis off, the lossy model degenerates to the exact unit-disk
// predicate — byte-identical graphs on any layout.
func TestLogShadowZeroMarginZeroSigmaIsUnitDisk(t *testing.T) {
	const n, rtx = 150, 90.0
	pos := layout(n, 500, 17)
	idx := lossyFixture(n, pos, rtx)
	m := NewLogShadow(rtx, 3, 0, 0, 7)
	if m.Radius() != rtx {
		t.Fatalf("degenerate radius %v, want %v", m.Radius(), rtx)
	}
	got := m.BuildInto(nil, n, pos, idx, nil, nil)
	want := BuildUnitDisk(n, pos, rtx, idx)
	graphsIdentical(t, want, got)
}

// TestLogShadowNoFlap walks one pair through the hysteresis state
// machine: link up requires closing below d_make; once up it survives
// anywhere below d_break (including the dead band where it would
// re-form if probed fresh — and where a marginless model flaps); it
// drops only beyond d_break, and stays down back in the dead band.
func TestLogShadowNoFlap(t *testing.T) {
	const rtx = 100.0
	m := NewLogShadow(rtx, 3, 4, 3, 99)
	dMake, dBreak := m.Thresholds(0, 1)
	mid := (dMake + dBreak) / 2 // strictly inside the dead band

	pos := []geom.Vec{{}, {X: dBreak * 1.05}}
	idx := lossyFixture(2, pos, m.Radius())
	scan := func(d float64) bool {
		pos[1] = geom.Vec{X: d}
		idx.Update(1, pos[1])
		g := m.BuildInto(nil, 2, pos, idx, nil, nil)
		return g.EdgeCount() == 1
	}

	steps := []struct {
		name string
		d    float64
		up   bool
	}{
		{"start beyond break", dBreak * 1.05, false},
		{"dead band while down stays down", mid, false},
		{"dead band again (no flap up)", mid * 0.999, false},
		{"below make forms", dMake * 0.95, true},
		{"dead band while up stays up", mid, true},
		{"straddling jitter +", mid * 1.001, true},
		{"straddling jitter -", mid * 0.999, true},
		{"beyond break drops", dBreak * 1.05, false},
		{"dead band after drop stays down", mid, false},
	}
	for _, s := range steps {
		if up := scan(s.d); up != s.up {
			t.Fatalf("%s: at d=%.3f (make %.3f break %.3f) link up=%v, want %v",
				s.name, s.d, dMake, dBreak, up, s.up)
		}
	}
}

// TestLogShadowFreshVsReuse: building into recycled storage must be
// byte-identical to fresh allocation at every tick, with the model's
// hysteresis state evolving identically (twin models, same seed, same
// motion).
func TestLogShadowFreshVsReuse(t *testing.T) {
	const n, rtx = 120, 90.0
	fresh := NewLogShadow(rtx, 3, 4, 3, 11)
	reuse := NewLogShadow(rtx, 3, 4, 3, 11)
	pos := layout(n, 500, 23)
	idx := lossyFixture(n, pos, fresh.Radius())
	src := rng.New(31)
	var spare *Graph
	for tick := 0; tick < 6; tick++ {
		for i := range pos {
			pos[i].X += src.Range(-15, 15)
			pos[i].Y += src.Range(-15, 15)
			idx.Update(i, pos[i])
		}
		want := fresh.BuildInto(nil, n, pos, idx, nil, nil)
		spare = reuse.BuildInto(spare, n, pos, idx, nil, nil)
		graphsIdentical(t, want, spare)
	}
}

// TestLogShadowParMatchesSerial: the sharded build must match the
// serial one byte-for-byte at every tick for every worker count, with
// hysteresis state staying in lockstep (the parallel build reads a
// frozen state snapshot and refreshes it from the same finished edge
// set).
func TestLogShadowParMatchesSerial(t *testing.T) {
	const n, rtx = 150, 90.0
	serialM := NewLogShadow(rtx, 3, 4, 3, 13)
	workers := []int{2, 3, 8}
	parMs := make([]*LogShadow, len(workers))
	pools := make([]*par.Pool, len(workers))
	for i, w := range workers {
		parMs[i] = NewLogShadow(rtx, 3, 4, 3, 13)
		pools[i] = par.NewPool(w)
		defer pools[i].Close()
	}
	pos := layout(n, 500, 29)
	idx := lossyFixture(n, pos, serialM.Radius())
	src := rng.New(37)
	scratches := make([]BuildScratch, len(workers))
	for tick := 0; tick < 5; tick++ {
		for i := range pos {
			pos[i].X += src.Range(-15, 15)
			pos[i].Y += src.Range(-15, 15)
			idx.Update(i, pos[i])
		}
		serial := serialM.BuildInto(nil, n, pos, idx, nil, nil)
		for i := range workers {
			parg := parMs[i].BuildInto(nil, n, pos, idx, pools[i], &scratches[i])
			graphsIdentical(t, serial, parg)
		}
	}
}

// TestLogShadowHysteresisWidensOverMarginless: relative to a
// zero-margin twin, hysteresis only ever disagrees inside the dead
// band, and there only by keeping stale state (links it formed earlier
// that the marginless predicate would now drop, or vice versa) — the
// candidate radius still bounds everything.
func TestLogShadowHysteresisWidensOverMarginless(t *testing.T) {
	const rtx = 100.0
	m := NewLogShadow(rtx, 3, 4, 6, 5)
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			dMake, dBreak := m.Thresholds(i, j)
			want := math.Pow(10, 6.0/(10*3)) // 10^(M/(10η))
			if got := dBreak / dMake; math.Abs(got-want) > 1e-9 {
				t.Fatalf("pair (%d,%d): dead-band ratio %v, want %v", i, j, got, want)
			}
		}
	}
}
