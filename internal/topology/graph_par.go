package topology

import (
	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/spatial"
)

// Parallel unit-disk construction. The scan is sharded by grid row
// ranges: each shard enumerates the pairs owned by its rows into its
// own edge buffer (spatial.Grid.ForEachPairRows guarantees every pair
// lands in exactly one shard, in scan order), the buffers are
// concatenated in shard order — reproducing the serial emission order
// exactly — and the adjacency lists are then filled from that sequence
// by node-range workers writing disjoint rows. The resulting graph is
// byte-identical to the serial BuildUnitDiskInto: same adjacency
// order, same sorted edge list.

// BuildScratch holds the reusable per-shard buffers of
// BuildUnitDiskIntoPar. Not safe for concurrent use by two builds.
type BuildScratch struct {
	shards [][]EdgeKey
}

// BuildUnitDiskIntoPar is BuildUnitDiskInto fanned out over pool p.
// A nil or single-worker pool falls back to the serial build. sc (nil
// = allocate fresh) supplies the per-shard edge buffers; reusing one
// scratch across ticks makes the steady-state build allocation-free.
// It is the predicate-free instance of the generalized sharded link
// build (see link.go).
//
//manet:hotpath
func BuildUnitDiskIntoPar(
	g *Graph, n int, pos []geom.Vec, rtx float64, idx *spatial.Grid,
	p *par.Pool, sc *BuildScratch,
) *Graph {
	return buildLinksIntoPar(g, n, pos, rtx, idx, p, sc, nil)
}
