package topology

import (
	"slices"

	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/spatial"
)

// Parallel unit-disk construction. The scan is sharded by grid row
// ranges: each shard enumerates the pairs owned by its rows into its
// own edge buffer (spatial.Grid.ForEachPairRows guarantees every pair
// lands in exactly one shard, in scan order), the buffers are
// concatenated in shard order — reproducing the serial emission order
// exactly — and the adjacency lists are then filled from that sequence
// by node-range workers writing disjoint rows. The resulting graph is
// byte-identical to the serial BuildUnitDiskInto: same adjacency
// order, same sorted edge list.

// BuildScratch holds the reusable per-shard buffers of
// BuildUnitDiskIntoPar. Not safe for concurrent use by two builds.
type BuildScratch struct {
	shards [][]EdgeKey
}

// BuildUnitDiskIntoPar is BuildUnitDiskInto fanned out over pool p.
// A nil or single-worker pool falls back to the serial build. sc (nil
// = allocate fresh) supplies the per-shard edge buffers; reusing one
// scratch across ticks makes the steady-state build allocation-free.
//
//manet:hotpath
func BuildUnitDiskIntoPar(
	g *Graph, n int, pos []geom.Vec, rtx float64, idx *spatial.Grid,
	p *par.Pool, sc *BuildScratch,
) *Graph {
	if p.Workers() == 1 {
		return BuildUnitDiskInto(g, n, pos, rtx, idx)
	}
	if g == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the double-buffered graph once
		g = NewGraph(n)
	} else {
		g.Reset(n)
	}
	if sc == nil {
		//lint:ignore hotpath warm-up: callers reuse one scratch across ticks
		sc = &BuildScratch{}
	}
	shards := par.Shards(p.Workers(), idx.Rows())
	for len(sc.shards) < shards {
		sc.shards = append(sc.shards, nil)
	}
	//lint:ignore hotpath per-tick accessor closure, counted in the tick alloc budget
	at := func(i int) geom.Vec { return pos[i] }

	// Phase 1: enumerate pairs per row-range shard.
	//lint:ignore hotpath per-tick shard callback closure, counted in the tick alloc budget
	p.RunShards(shards, func(_, s int) {
		lo, hi := par.Shard(idx.Rows(), shards, s)
		buf := sc.shards[s][:0]
		//lint:ignore hotpath per-shard emit closure, counted in the tick alloc budget
		idx.ForEachPairRows(rtx, lo, hi, at, func(a, b int) {
			buf = append(buf, MakeEdgeKey(a, b))
		})
		sc.shards[s] = buf
	})

	// Phase 2: ordered merge — concatenating in shard order yields the
	// serial scan's emission order.
	for s := 0; s < shards; s++ {
		g.bulk = append(g.bulk, sc.shards[s]...)
	}

	// Phase 3: fill adjacency rows from the emission sequence. Worker
	// w owns the contiguous node range Shard(n, W, w), so all writes
	// are disjoint and each list grows in emission order — exactly the
	// serial insertion order.
	//lint:ignore hotpath per-tick worker callback closure, counted in the tick alloc budget
	p.Run(func(w int) {
		lo, hi := par.Shard(n, p.Workers(), w)
		if lo == hi {
			return
		}
		for _, k := range g.bulk {
			a, b := k.Nodes()
			if a >= lo && a < hi {
				g.adj[a] = append(g.adj[a], b)
			}
			if b >= lo && b < hi {
				g.adj[b] = append(g.adj[b], a)
			}
		}
	})

	slices.Sort(g.bulk)
	return g
}
