// Package topology maintains the level-0 network graph: the unit-disk
// graph induced by node positions and the transmission radius R_TX
// (§1.2 of the paper), plus the graph algorithms the rest of the stack
// needs (BFS hop counts, connected components, degree statistics) and
// link-event diffing between successive scans.
package topology

import (
	"fmt"
	"slices"

	"repro/internal/geom"
	"repro/internal/spatial"
)

// EdgeKey packs an unordered node pair (a < b) into a map key.
type EdgeKey uint64

// MakeEdgeKey returns the canonical key for the pair {a, b}.
func MakeEdgeKey(a, b int) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

// Nodes unpacks the pair.
func (k EdgeKey) Nodes() (a, b int) {
	return int(k >> 32), int(uint32(k))
}

// String formats the edge for diagnostics.
func (k EdgeKey) String() string {
	a, b := k.Nodes()
	return fmt.Sprintf("(%d,%d)", a, b)
}

// Graph is an undirected graph over nodes 0..n-1 with adjacency lists
// and an edge set. It is the representation for every level of the
// clustered hierarchy (level 0 uses dense int IDs; higher levels use
// the level-0 IDs of clusterheads, which remain < n).
//
// Edges live in one of two stores: `edges`, a hash set fed by AddEdge
// (the incremental path used by cluster lifting and tests), and
// `bulk`, a sorted key slice filled by the bulk unit-disk builders —
// which skip the hash set entirely so the hot link scan does no map
// work and the parallel builder can assemble the graph from per-shard
// buffers. All read accessors consult both stores, so mixing AddEdge
// into a bulk-built graph remains correct.
type Graph struct {
	n     int
	adj   [][]int // node ID -> neighbor IDs, in insertion order
	edges map[EdgeKey]struct{}
	bulk  []EdgeKey // sorted; bulk-built edges
}

// NewGraph returns an empty graph over id space [0, n).
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// Reset empties the graph for reuse over id space [0, n), retaining
// all allocated storage (adjacency slices, edge list, hash buckets).
// Together with BuildUnitDiskInto this lets the simulation loop
// double-buffer graphs instead of reallocating one per scan.
//
//manet:hotpath
func (g *Graph) Reset(n int) {
	g.n = n
	if g.edges != nil {
		clear(g.edges)
	}
	g.bulk = g.bulk[:0]
	if cap(g.adj) < n {
		//lint:ignore hotpath amortized capacity growth when the id space expands
		g.adj = append(g.adj[:cap(g.adj)], make([][]int, n-cap(g.adj))...)
	}
	g.adj = g.adj[:n]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
}

// IDSpace returns the exclusive upper bound of node IDs.
func (g *Graph) IDSpace() int { return g.n }

// AddEdge inserts the undirected edge {a, b}; duplicate inserts and
// self-loops are ignored. Both endpoints must lie in [0, IDSpace()).
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		return
	}
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic(fmt.Sprintf("topology: edge (%d,%d) outside id space [0,%d)", a, b, g.n))
	}
	k := MakeEdgeKey(a, b)
	if g.inBulk(k) {
		return
	}
	if g.edges == nil {
		g.edges = make(map[EdgeKey]struct{})
	}
	if _, ok := g.edges[k]; ok {
		return
	}
	g.edges[k] = struct{}{}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// inBulk reports whether k is in the sorted bulk edge list.
func (g *Graph) inBulk(k EdgeKey) bool {
	if len(g.bulk) == 0 {
		return false
	}
	_, ok := slices.BinarySearch(g.bulk, k)
	return ok
}

// HasEdge reports whether {a, b} is present.
func (g *Graph) HasEdge(a, b int) bool {
	k := MakeEdgeKey(a, b)
	if _, ok := g.edges[k]; ok {
		return true
	}
	return g.inBulk(k)
}

// Neighbors returns the adjacency list of v (shared slice; do not
// mutate).
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= len(g.adj) {
		return nil
	}
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.Neighbors(v)) }

// EdgeCount returns |E|.
func (g *Graph) EdgeCount() int { return len(g.edges) + len(g.bulk) }

// Edges returns all edge keys in ascending order (deterministic).
func (g *Graph) Edges() []EdgeKey {
	return g.AppendEdges(make([]EdgeKey, 0, g.EdgeCount()))
}

// Equal reports whether g and o have the same edge set, regardless of
// which store (bulk or incremental) each edge lives in.
func (g *Graph) Equal(o *Graph) bool {
	if g == nil || o == nil {
		return g == o
	}
	if g.EdgeCount() != o.EdgeCount() {
		return false
	}
	equal := true
	g.ForEachEdge(func(e EdgeKey) {
		if equal {
			a, b := e.Nodes()
			equal = o.HasEdge(a, b)
		}
	})
	return equal
}

// ForEachEdge invokes fn once per edge. Bulk-built edges are visited
// in ascending key order; incrementally added edges follow in
// unspecified order, so fn must be order-free unless the graph is
// known to be bulk-built (use AppendEdges for a sorted view).
func (g *Graph) ForEachEdge(fn func(EdgeKey)) {
	for _, k := range g.bulk {
		fn(k)
	}
	//lint:ignore maprange callers are documented order-free; sorted traversal goes through AppendEdges
	for k := range g.edges {
		fn(k)
	}
}

// MeanDegree returns 2|E| / |V'| over the given vertex set.
func (g *Graph) MeanDegree(vertices []int) float64 {
	if len(vertices) == 0 {
		return 0
	}
	total := 0
	for _, v := range vertices {
		total += len(g.adj[v])
	}
	return float64(total) / float64(len(vertices))
}

// BuildUnitDisk constructs the unit-disk graph over positions: an edge
// joins every pair within rtx of each other. idx must be built with
// cell side >= rtx and already contain every node.
func BuildUnitDisk(n int, pos []geom.Vec, rtx float64, idx *spatial.Grid) *Graph {
	return BuildUnitDiskInto(nil, n, pos, rtx, idx)
}

// BuildUnitDiskInto is BuildUnitDisk with caller-owned storage: when g
// is non-nil it is Reset and refilled in place, so a loop that keeps
// two graphs alive (previous and current scan) allocates nothing in
// steady state. A nil g allocates a fresh graph.
//
// The build takes the bulk path: the grid emits each in-range pair
// exactly once, so edges bypass the dedup hash set — adjacency lists
// grow in grid emission order (row-major over owner cells) and the
// edge keys are collected and sorted once at the end. It is the
// predicate-free instance of the generalized link build (see link.go).
//
//manet:hotpath
func BuildUnitDiskInto(g *Graph, n int, pos []geom.Vec, rtx float64, idx *spatial.Grid) *Graph {
	return buildLinksInto(g, n, pos, rtx, idx, nil)
}

// BuildFromSortedEdgesInto materializes a graph from an ascending edge
// key list (the kinetic tracker's incrementally maintained edge set):
// g is Reset (or allocated when nil), the keys are copied into the
// bulk store, and adjacency lists are filled in key order. The caller
// must pass keys sorted ascending with no duplicates.
//
//manet:hotpath
func BuildFromSortedEdgesInto(g *Graph, n int, edges []EdgeKey) *Graph {
	if g == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the double-buffered graph once
		g = NewGraph(n)
	} else {
		g.Reset(n)
	}
	g.bulk = append(g.bulk, edges...)
	for _, k := range edges {
		a, b := k.Nodes()
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
	}
	return g
}

// BuildUnitDiskBrute is the O(n²) reference construction, used by
// tests and tiny static scenarios.
func BuildUnitDiskBrute(pos []geom.Vec, rtx float64) *Graph {
	g := NewGraph(len(pos))
	r2 := rtx * rtx
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist2(pos[j]) <= r2 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// LinkEvent is a single level-0 link state change detected between two
// successive scans.
type LinkEvent struct {
	Edge EdgeKey
	Up   bool // true: link created; false: link broken
}

// AppendEdges appends all edge keys in ascending order to dst and
// returns the extended slice (pass dst[:0] to reuse its capacity).
func (g *Graph) AppendEdges(dst []EdgeKey) []EdgeKey {
	base := len(dst)
	dst = append(dst, g.bulk...)
	if len(g.edges) > 0 {
		for k := range g.edges {
			dst = append(dst, k)
		}
		slices.Sort(dst[base:])
	}
	return dst
}

// DiffEdges compares the edge sets of prev and next and returns the
// link events, deterministically ordered (downs then ups, each by key).
func DiffEdges(prev, next *Graph) []LinkEvent {
	var s DiffScratch
	out := s.Diff(prev, next)
	// Detach from the scratch so the result owns its storage.
	return append([]LinkEvent(nil), out...)
}

// DiffScratch holds reusable buffers for edge-set diffing. The slice
// returned by Diff aliases the scratch and is valid only until the
// next Diff call; callers that retain events must copy them.
type DiffScratch struct {
	prevKeys, nextKeys []EdgeKey
	ups                []EdgeKey
	out                []LinkEvent
}

// Diff compares the edge sets of prev and next and returns the link
// events, deterministically ordered (downs then ups, each by key).
// The returned slice is owned by the scratch.
func (s *DiffScratch) Diff(prev, next *Graph) []LinkEvent {
	s.prevKeys = prev.AppendEdges(s.prevKeys[:0])
	s.nextKeys = next.AppendEdges(s.nextKeys[:0])
	s.ups = s.ups[:0]
	s.out = s.out[:0]
	// Merge-walk the two sorted key lists: keys only in prev are downs
	// (emitted immediately, already in order), keys only in next are
	// ups (buffered so downs precede them).
	i, j := 0, 0
	for i < len(s.prevKeys) && j < len(s.nextKeys) {
		switch {
		case s.prevKeys[i] == s.nextKeys[j]:
			i++
			j++
		case s.prevKeys[i] < s.nextKeys[j]:
			s.out = append(s.out, LinkEvent{Edge: s.prevKeys[i], Up: false})
			i++
		default:
			s.ups = append(s.ups, s.nextKeys[j])
			j++
		}
	}
	for ; i < len(s.prevKeys); i++ {
		s.out = append(s.out, LinkEvent{Edge: s.prevKeys[i], Up: false})
	}
	s.ups = append(s.ups, s.nextKeys[j:]...)
	for _, k := range s.ups {
		s.out = append(s.out, LinkEvent{Edge: k, Up: true})
	}
	return s.out
}
