// Package topology maintains the level-0 network graph: the unit-disk
// graph induced by node positions and the transmission radius R_TX
// (§1.2 of the paper), plus the graph algorithms the rest of the stack
// needs (BFS hop counts, connected components, degree statistics) and
// link-event diffing between successive scans.
package topology

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/geom"
	"repro/internal/spatial"
)

// EdgeKey packs an unordered node pair (a < b) into a map key.
type EdgeKey uint64

// MakeEdgeKey returns the canonical key for the pair {a, b}.
func MakeEdgeKey(a, b int) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

// Nodes unpacks the pair.
func (k EdgeKey) Nodes() (a, b int) {
	return int(k >> 32), int(uint32(k))
}

// String formats the edge for diagnostics.
func (k EdgeKey) String() string {
	a, b := k.Nodes()
	return fmt.Sprintf("(%d,%d)", a, b)
}

// Graph is an undirected graph over nodes 0..n-1 with adjacency lists
// and an edge set. It is the representation for every level of the
// clustered hierarchy (level 0 uses dense int IDs; higher levels use
// the level-0 IDs of clusterheads, which remain < n).
type Graph struct {
	n     int
	adj   map[int][]int
	edges map[EdgeKey]struct{}
}

// NewGraph returns an empty graph over id space [0, n).
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make(map[int][]int), edges: make(map[EdgeKey]struct{})}
}

// Reset empties the graph for reuse over id space [0, n), retaining
// all allocated storage (adjacency slices and hash buckets). Together
// with BuildUnitDiskInto this lets the simulation loop double-buffer
// graphs instead of reallocating one per scan.
func (g *Graph) Reset(n int) {
	g.n = n
	clear(g.edges)
	//lint:ignore maprange per-key truncation; no order-sensitive state escapes
	for k, s := range g.adj {
		g.adj[k] = s[:0]
	}
}

// IDSpace returns the exclusive upper bound of node IDs.
func (g *Graph) IDSpace() int { return g.n }

// AddEdge inserts the undirected edge {a, b}; duplicate inserts and
// self-loops are ignored.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		return
	}
	k := MakeEdgeKey(a, b)
	if _, ok := g.edges[k]; ok {
		return
	}
	g.edges[k] = struct{}{}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// HasEdge reports whether {a, b} is present.
func (g *Graph) HasEdge(a, b int) bool {
	_, ok := g.edges[MakeEdgeKey(a, b)]
	return ok
}

// Neighbors returns the adjacency list of v (shared slice; do not
// mutate).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// EdgeCount returns |E|.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// Edges returns all edge keys in ascending order (deterministic).
func (g *Graph) Edges() []EdgeKey {
	out := make([]EdgeKey, 0, len(g.edges))
	for k := range g.edges {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeSet exposes the underlying edge set for diffing (read-only).
func (g *Graph) EdgeSet() map[EdgeKey]struct{} { return g.edges }

// MeanDegree returns 2|E| / |V'| over the given vertex set.
func (g *Graph) MeanDegree(vertices []int) float64 {
	if len(vertices) == 0 {
		return 0
	}
	total := 0
	for _, v := range vertices {
		total += len(g.adj[v])
	}
	return float64(total) / float64(len(vertices))
}

// BuildUnitDisk constructs the unit-disk graph over positions: an edge
// joins every pair within rtx of each other. idx must be built with
// cell side >= rtx and already contain every node.
func BuildUnitDisk(n int, pos []geom.Vec, rtx float64, idx *spatial.Grid) *Graph {
	g := NewGraph(n)
	at := func(i int) geom.Vec { return pos[i] }
	idx.ForEachPair(rtx, at, func(a, b int) {
		g.AddEdge(a, b)
	})
	return g
}

// BuildUnitDiskInto is BuildUnitDisk with caller-owned storage: when g
// is non-nil it is Reset and refilled in place, so a loop that keeps
// two graphs alive (previous and current scan) allocates nothing in
// steady state. A nil g allocates a fresh graph.
func BuildUnitDiskInto(g *Graph, n int, pos []geom.Vec, rtx float64, idx *spatial.Grid) *Graph {
	if g == nil {
		g = NewGraph(n)
	} else {
		g.Reset(n)
	}
	at := func(i int) geom.Vec { return pos[i] }
	idx.ForEachPair(rtx, at, func(a, b int) {
		g.AddEdge(a, b)
	})
	return g
}

// BuildUnitDiskBrute is the O(n²) reference construction, used by
// tests and tiny static scenarios.
func BuildUnitDiskBrute(pos []geom.Vec, rtx float64) *Graph {
	g := NewGraph(len(pos))
	r2 := rtx * rtx
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist2(pos[j]) <= r2 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// LinkEvent is a single level-0 link state change detected between two
// successive scans.
type LinkEvent struct {
	Edge EdgeKey
	Up   bool // true: link created; false: link broken
}

// AppendEdges appends all edge keys in ascending order to dst and
// returns the extended slice (pass dst[:0] to reuse its capacity).
func (g *Graph) AppendEdges(dst []EdgeKey) []EdgeKey {
	base := len(dst)
	//lint:ignore maprange keys are collected and sorted below
	for k := range g.edges {
		dst = append(dst, k)
	}
	tail := dst[base:]
	slices.Sort(tail)
	return dst
}

// DiffEdges compares the edge sets of prev and next and returns the
// link events, deterministically ordered (downs then ups, each by key).
func DiffEdges(prev, next *Graph) []LinkEvent {
	var s DiffScratch
	out := s.Diff(prev, next)
	// Detach from the scratch so the result owns its storage.
	return append([]LinkEvent(nil), out...)
}

// DiffScratch holds reusable buffers for edge-set diffing. The slice
// returned by Diff aliases the scratch and is valid only until the
// next Diff call; callers that retain events must copy them.
type DiffScratch struct {
	prevKeys, nextKeys []EdgeKey
	ups                []EdgeKey
	out                []LinkEvent
}

// Diff compares the edge sets of prev and next and returns the link
// events, deterministically ordered (downs then ups, each by key).
// The returned slice is owned by the scratch.
func (s *DiffScratch) Diff(prev, next *Graph) []LinkEvent {
	s.prevKeys = prev.AppendEdges(s.prevKeys[:0])
	s.nextKeys = next.AppendEdges(s.nextKeys[:0])
	s.ups = s.ups[:0]
	s.out = s.out[:0]
	// Merge-walk the two sorted key lists: keys only in prev are downs
	// (emitted immediately, already in order), keys only in next are
	// ups (buffered so downs precede them).
	i, j := 0, 0
	for i < len(s.prevKeys) && j < len(s.nextKeys) {
		switch {
		case s.prevKeys[i] == s.nextKeys[j]:
			i++
			j++
		case s.prevKeys[i] < s.nextKeys[j]:
			s.out = append(s.out, LinkEvent{Edge: s.prevKeys[i], Up: false})
			i++
		default:
			s.ups = append(s.ups, s.nextKeys[j])
			j++
		}
	}
	for ; i < len(s.prevKeys); i++ {
		s.out = append(s.out, LinkEvent{Edge: s.prevKeys[i], Up: false})
	}
	s.ups = append(s.ups, s.nextKeys[j:]...)
	for _, k := range s.ups {
		s.out = append(s.out, LinkEvent{Edge: k, Up: true})
	}
	return s.out
}
