package topology

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/spatial"
)

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(a16, b16 uint16) bool {
		a, b := int(a16), int(b16)
		if a == b {
			return true
		}
		k := MakeEdgeKey(a, b)
		x, y := k.Nodes()
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return x == lo && y == hi && MakeEdgeKey(b, a) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(10)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1) // duplicate
	g.AddEdge(3, 3) // self loop ignored
	g.AddEdge(2, 5)
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	if !g.HasEdge(2, 1) || g.HasEdge(1, 5) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(2) != 2 || g.Degree(1) != 1 || g.Degree(9) != 0 {
		t.Fatal("Degree wrong")
	}
	nbrs := append([]int(nil), g.Neighbors(2)...)
	sort.Ints(nbrs)
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 5 {
		t.Fatalf("Neighbors(2) = %v", nbrs)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := NewGraph(100)
	src := rng.New(1)
	for i := 0; i < 200; i++ {
		g.AddEdge(src.Intn(100), src.Intn(100))
	}
	a := g.Edges()
	b := g.Edges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Edges() order not deterministic")
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatal("Edges() not strictly ascending")
		}
	}
}

func layout(n int, worldR float64, seed uint64) []geom.Vec {
	src := rng.New(seed)
	d := geom.Disc{R: worldR}
	ps := make([]geom.Vec, n)
	for i := range ps {
		ps[i] = d.Sample(src)
	}
	return ps
}

func TestUnitDiskGridMatchesBrute(t *testing.T) {
	const n = 400
	const rtx = 90.0
	pos := layout(n, 800, 2)
	idx := spatial.NewGridForDisc(geom.Disc{R: 800}, rtx, n)
	for i, p := range pos {
		idx.Insert(i, p)
	}
	fast := BuildUnitDisk(n, pos, rtx, idx)
	slow := BuildUnitDiskBrute(pos, rtx)
	if fast.EdgeCount() != slow.EdgeCount() {
		t.Fatalf("edge counts differ: %d vs %d", fast.EdgeCount(), slow.EdgeCount())
	}
	for _, k := range slow.Edges() {
		a, b := k.Nodes()
		if !fast.HasEdge(a, b) {
			t.Fatalf("missing edge %v", k)
		}
	}
}

func TestDiffEdges(t *testing.T) {
	prev := NewGraph(10)
	prev.AddEdge(0, 1)
	prev.AddEdge(1, 2)
	prev.AddEdge(3, 4)
	next := NewGraph(10)
	next.AddEdge(1, 2) // kept
	next.AddEdge(4, 5) // new
	next.AddEdge(0, 2) // new

	ev := DiffEdges(prev, next)
	if len(ev) != 4 {
		t.Fatalf("got %d events: %v", len(ev), ev)
	}
	// Downs first, ascending.
	if ev[0].Up || ev[1].Up || !ev[2].Up || !ev[3].Up {
		t.Fatalf("event order wrong: %v", ev)
	}
	if ev[0].Edge != MakeEdgeKey(0, 1) || ev[1].Edge != MakeEdgeKey(3, 4) {
		t.Fatalf("down edges wrong: %v", ev)
	}
	if ev[2].Edge != MakeEdgeKey(0, 2) || ev[3].Edge != MakeEdgeKey(4, 5) {
		t.Fatalf("up edges wrong: %v", ev)
	}
}

func TestDiffEdgesEmpty(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	if ev := DiffEdges(g, g); len(ev) != 0 {
		t.Fatalf("self-diff produced events: %v", ev)
	}
}

// path graph 0-1-2-...-n-1
func pathGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestHopCountPath(t *testing.T) {
	g := pathGraph(10)
	s := NewBFSScratch(10)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := j - i
			if want < 0 {
				want = -want
			}
			if got := s.HopCount(g, i, j, nil); got != want {
				t.Fatalf("HopCount(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestHopCountUnreachable(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	s := NewBFSScratch(4)
	if got := s.HopCount(g, 0, 3, nil); got != -1 {
		t.Fatalf("unreachable HopCount = %d", got)
	}
}

func TestHopCountRestricted(t *testing.T) {
	// 0-1-2 and 0-3-4-2: restricting out node 1 forces the long way.
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	s := NewBFSScratch(5)
	if got := s.HopCount(g, 0, 2, nil); got != 2 {
		t.Fatalf("unrestricted = %d", got)
	}
	notOne := func(v int) bool { return v != 1 }
	if got := s.HopCount(g, 0, 2, notOne); got != 3 {
		t.Fatalf("restricted = %d", got)
	}
}

func TestDistancesFrom(t *testing.T) {
	g := pathGraph(6)
	s := NewBFSScratch(6)
	d := s.DistancesFrom(g, 2, nil)
	want := map[int]int{0: 2, 1: 1, 2: 0, 3: 1, 4: 2, 5: 3}
	if len(d) != len(want) {
		t.Fatalf("distances = %v", d)
	}
	for k, v := range want {
		if d[k] != v {
			t.Fatalf("dist[%d] = %d, want %d", k, d[k], v)
		}
	}
}

func TestScratchReuseEpochs(t *testing.T) {
	// Repeated queries on the same scratch must not leak state.
	g := pathGraph(50)
	s := NewBFSScratch(50)
	for rep := 0; rep < 300; rep++ {
		if got := s.HopCount(g, 0, 49, nil); got != 49 {
			t.Fatalf("rep %d: HopCount = %d", rep, got)
		}
	}
}

func TestComponents(t *testing.T) {
	g := NewGraph(8)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	comps := Components(g, all)
	if len(comps) != 5 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component = %v", comps[0])
	}
	giant := GiantComponent(g, all)
	if len(giant) != 3 {
		t.Fatalf("giant = %v", giant)
	}
	if IsConnected(g, all) {
		t.Fatal("disconnected graph reported connected")
	}
	if !IsConnected(g, []int{0, 1, 2}) {
		t.Fatal("connected subset reported disconnected")
	}
}

func TestComponentsRestrictedToVertexSet(t *testing.T) {
	// Vertices outside the set must not act as bridges.
	g := pathGraph(5) // 0-1-2-3-4
	comps := Components(g, []int{0, 2, 4})
	if len(comps) != 3 {
		t.Fatalf("restricted components = %v", comps)
	}
}

func TestEuclideanHops(t *testing.T) {
	pos := []geom.Vec{{X: 0, Y: 0}, {X: 250, Y: 0}, {X: 10, Y: 0}}
	h := NewEuclideanHops(pos, 100, 1.0)
	if got := h.Hops(0, 0); got != 0 {
		t.Fatalf("self hops = %d", got)
	}
	if got := h.Hops(0, 1); got != 3 {
		t.Fatalf("hops(0,1) = %d, want ceil(250/100)=3", got)
	}
	if got := h.Hops(0, 2); got != 1 {
		t.Fatalf("hops(0,2) = %d, want minimum 1", got)
	}
	// Detour scales.
	h2 := NewEuclideanHops(pos, 100, 1.5)
	if got := h2.Hops(0, 1); got != 4 {
		t.Fatalf("detour hops = %d, want ceil(375/100)=4", got)
	}
}

func TestBFSHops(t *testing.T) {
	g := pathGraph(6)
	h := NewBFSHops(g, 99)
	if got := h.Hops(0, 5); got != 5 {
		t.Fatalf("BFS hops = %d", got)
	}
	if got := h.Hops(3, 3); got != 0 {
		t.Fatalf("self hops = %d", got)
	}
	g2 := NewGraph(6)
	h.Rebind(g2)
	if got := h.Hops(0, 5); got != 99 {
		t.Fatalf("fallback hops = %d", got)
	}
}

func TestEuclideanVsBFSCalibration(t *testing.T) {
	// On a connected random unit-disk graph the Euclidean estimate with
	// detour 1.3 should be within a factor ~2 of true BFS hops for most
	// pairs, and never below ceil(d/RTX) (the geometric lower bound).
	const n = 300
	const rtx = 120.0
	pos := layout(n, 700, 11)
	g := BuildUnitDiskBrute(pos, rtx)
	giant := GiantComponent(g, seq(n))
	if len(giant) < n/2 {
		t.Skip("layout too sparse for calibration test")
	}
	bfs := NewBFSHops(g, 1000)
	euc := NewEuclideanHops(pos, rtx, 1.3)
	src := rng.New(12)
	within := 0
	total := 0
	for i := 0; i < 300; i++ {
		a := giant[src.Intn(len(giant))]
		b := giant[src.Intn(len(giant))]
		if a == b {
			continue
		}
		hb := bfs.Hops(a, b)
		he := euc.Hops(a, b)
		if he < 1 {
			t.Fatalf("estimate below 1: %d", he)
		}
		total++
		if he <= 2*hb+2 && hb <= 3*he {
			within++
		}
	}
	if frac := float64(within) / float64(total); frac < 0.9 {
		t.Fatalf("only %.2f of pairs within calibration band", frac)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMeanDegree(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if got := g.MeanDegree([]int{0, 1, 2, 3}); got != 1.0 {
		t.Fatalf("MeanDegree = %v", got)
	}
	if got := g.MeanDegree(nil); got != 0 {
		t.Fatalf("MeanDegree(nil) = %v", got)
	}
}

func BenchmarkBuildUnitDisk1000(b *testing.B) {
	const n = 1000
	const rtx = 100.0
	pos := layout(n, 600, 3)
	idx := spatial.NewGridForDisc(geom.Disc{R: 600}, rtx, n)
	for i, p := range pos {
		idx.Insert(i, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildUnitDisk(n, pos, rtx, idx)
	}
}

func BenchmarkHopCount(b *testing.B) {
	pos := layout(1000, 600, 4)
	g := BuildUnitDiskBrute(pos, 100)
	s := NewBFSScratch(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HopCount(g, i%1000, (i*7)%1000, nil)
	}
}
