package topology

import (
	"math"

	"repro/internal/geom"
)

// HopModel estimates the packet-transmission cost (level-0 hop count)
// of moving one LM entry between two nodes. The paper counts handoff
// overhead in packet transmissions, each transmission covering one
// level-0 hop.
//
// Two implementations are provided:
//
//   - BFSHops measures the true shortest path on the current graph —
//     exact, O(E) per query; used by tests and small runs.
//   - EuclideanHops estimates hops as ceil(distance/R_TX) scaled by a
//     detour factor — Θ-exact for random unit-disk graphs at fixed
//     density (Kleinrock & Silvester [2]) and O(1) per query; the
//     default for large sweeps.
type HopModel interface {
	// Hops returns the estimated hop count between nodes a and b.
	// A result of 0 means a == b (no transmissions needed).
	Hops(a, b int) int
}

// EuclideanHops estimates hops from straight-line distance.
type EuclideanHops struct {
	Pos    []geom.Vec // live position slice (shared with the simulator)
	RTX    float64
	Detour float64 // multiplicative path-stretch factor, e.g. 1.3
}

// NewEuclideanHops builds the estimator over the live position slice.
func NewEuclideanHops(pos []geom.Vec, rtx, detour float64) *EuclideanHops {
	if rtx <= 0 {
		panic("topology: RTX must be positive")
	}
	if detour < 1 {
		detour = 1
	}
	return &EuclideanHops{Pos: pos, RTX: rtx, Detour: detour}
}

// Hops implements HopModel.
func (e *EuclideanHops) Hops(a, b int) int {
	if a == b {
		return 0
	}
	d := e.Pos[a].Dist(e.Pos[b])
	h := int(math.Ceil(d * e.Detour / e.RTX))
	if h < 1 {
		h = 1
	}
	return h
}

// BFSHops measures exact shortest-path hop counts on a graph snapshot.
// Unreachable pairs cost as if routed across the network diameter
// estimate (they correspond to transient partitions).
type BFSHops struct {
	G        *Graph
	Fallback int // cost charged for unreachable pairs
	scratch  *BFSScratch
}

// NewBFSHops builds an exact hop model over g.
func NewBFSHops(g *Graph, fallback int) *BFSHops {
	return &BFSHops{G: g, Fallback: fallback, scratch: NewBFSScratch(g.IDSpace())}
}

// Rebind points the model at a new graph snapshot (same ID space).
func (b *BFSHops) Rebind(g *Graph) { b.G = g }

// Hops implements HopModel.
func (b *BFSHops) Hops(x, y int) int {
	if x == y {
		return 0
	}
	h := b.scratch.HopCount(b.G, x, y, nil)
	if h < 0 {
		return b.Fallback
	}
	return h
}

var (
	_ HopModel = (*EuclideanHops)(nil)
	_ HopModel = (*BFSHops)(nil)
)
