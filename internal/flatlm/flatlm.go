// Package flatlm implements the non-hierarchical location-management
// baselines the paper's motivation argues against. Both are driven by
// the same mobility trace as CHLM so the comparison in experiment E16
// is apples-to-apples:
//
//   - HomeAgent: every node registers its position with a single
//     rendezvous node (hashed from its ID). An update costs the
//     unicast distance to the agent — Θ(√N) hops on average — and is
//     sent whenever the node has moved more than UpdateDistance since
//     its last report. This is the textbook Θ(√N)-per-update flat
//     location service.
//
//   - Flooding: a node floods its new position network-wide after
//     moving UpdateDistance; one flood costs |V| transmissions
//     (every node rebroadcasts once). Queries are free. This is the
//     Θ(N) proactive extreme (DSDV-style dissemination).
//
// Neither depends on the clustered hierarchy; they bound the design
// space from below (flooding: zero lookup cost, huge updates) and the
// middle (home agent: cheap-ish updates, remote lookups).
package flatlm

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/topology"
)

// Scheme is a flat location-management baseline fed by position
// snapshots.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Tick feeds the current positions; returns the control packets
	// this scheme emitted for this step.
	Tick(pos []geom.Vec) float64
	// QueryCost returns the lookup cost for querier q resolving
	// destination d at the current positions.
	QueryCost(q, d int) float64
}

// HomeAgent is the single-rendezvous baseline.
type HomeAgent struct {
	UpdateDistance float64 // meters moved before a new registration
	Hop            topology.HopModel

	agents   []int // agent[owner] = serving node (hashed, static ID-based)
	lastSent []geom.Vec
	started  bool
}

// NewHomeAgent builds the baseline for n nodes. Agents are assigned by
// a fixed hash of the owner ID, giving an even static load.
func NewHomeAgent(n int, updateDistance float64, hop topology.HopModel) *HomeAgent {
	if n <= 0 || updateDistance <= 0 {
		panic("flatlm: HomeAgent needs positive n and update distance")
	}
	h := &HomeAgent{
		UpdateDistance: updateDistance,
		Hop:            hop,
		agents:         make([]int, n),
		lastSent:       make([]geom.Vec, n),
	}
	for v := range h.agents {
		// Deterministic agent assignment: splitmix of the owner ID.
		z := uint64(v) * 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		agent := int(z % uint64(n))
		if agent == v {
			agent = (agent + 1) % n
		}
		h.agents[v] = agent
	}
	return h
}

// Name implements Scheme.
func (h *HomeAgent) Name() string { return "home-agent" }

// Agent returns the rendezvous node of owner v.
func (h *HomeAgent) Agent(v int) int { return h.agents[v] }

// Tick implements Scheme.
func (h *HomeAgent) Tick(pos []geom.Vec) float64 {
	if len(pos) != len(h.agents) {
		panic(fmt.Sprintf("flatlm: %d positions for %d nodes", len(pos), len(h.agents)))
	}
	var packets float64
	if !h.started {
		h.started = true
		for v, p := range pos {
			h.lastSent[v] = p
			packets += float64(h.Hop.Hops(v, h.agents[v]))
		}
		return packets
	}
	for v, p := range pos {
		if p.Dist(h.lastSent[v]) >= h.UpdateDistance {
			h.lastSent[v] = p
			packets += float64(h.Hop.Hops(v, h.agents[v]))
		}
	}
	return packets
}

// QueryCost implements Scheme: ask d's agent, agent replies with d's
// location (querier then reaches d directly; that traffic belongs to
// the session, as in the paper's query argument).
func (h *HomeAgent) QueryCost(q, d int) float64 {
	agent := h.agents[d]
	return float64(h.Hop.Hops(q, agent) + h.Hop.Hops(agent, q))
}

// Flooding is the network-wide dissemination baseline.
type Flooding struct {
	UpdateDistance float64
	n              int
	lastSent       []geom.Vec
	started        bool
}

// NewFlooding builds the flooding baseline for n nodes.
func NewFlooding(n int, updateDistance float64) *Flooding {
	if n <= 0 || updateDistance <= 0 {
		panic("flatlm: Flooding needs positive n and update distance")
	}
	return &Flooding{UpdateDistance: updateDistance, n: n, lastSent: make([]geom.Vec, n)}
}

// Name implements Scheme.
func (f *Flooding) Name() string { return "flooding" }

// Tick implements Scheme: each update floods once through every node.
func (f *Flooding) Tick(pos []geom.Vec) float64 {
	if len(pos) != f.n {
		panic(fmt.Sprintf("flatlm: %d positions for %d nodes", len(pos), f.n))
	}
	var packets float64
	if !f.started {
		f.started = true
		copy(f.lastSent, pos)
		return float64(f.n) * float64(f.n)
	}
	for v, p := range pos {
		if p.Dist(f.lastSent[v]) >= f.UpdateDistance {
			f.lastSent[v] = p
			packets += float64(f.n)
		}
	}
	return packets
}

// QueryCost implements Scheme: everyone already knows everyone.
func (f *Flooding) QueryCost(q, d int) float64 { return 0 }

var (
	_ Scheme = (*HomeAgent)(nil)
	_ Scheme = (*Flooding)(nil)
)
