package flatlm

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

func positions(n int, r float64, seed uint64) []geom.Vec {
	src := rng.New(seed)
	d := geom.Disc{R: r}
	out := make([]geom.Vec, n)
	for i := range out {
		out[i] = d.Sample(src)
	}
	return out
}

func TestHomeAgentAssignment(t *testing.T) {
	pos := positions(100, 500, 1)
	hop := topology.NewEuclideanHops(pos, 100, 1.3)
	h := NewHomeAgent(100, 50, hop)
	load := map[int]int{}
	for v := 0; v < 100; v++ {
		a := h.Agent(v)
		if a == v {
			t.Fatalf("node %d is its own agent", v)
		}
		if a < 0 || a >= 100 {
			t.Fatalf("agent out of range: %d", a)
		}
		load[a]++
	}
	// Deterministic.
	h2 := NewHomeAgent(100, 50, hop)
	for v := 0; v < 100; v++ {
		if h.Agent(v) != h2.Agent(v) {
			t.Fatal("agent assignment not deterministic")
		}
	}
	// No extreme hot spot.
	for a, c := range load {
		if c > 12 {
			t.Fatalf("agent %d serves %d owners", a, c)
		}
	}
}

func TestHomeAgentFirstTickRegistersAll(t *testing.T) {
	pos := positions(60, 400, 2)
	hop := topology.NewEuclideanHops(pos, 100, 1.3)
	h := NewHomeAgent(60, 50, hop)
	if pkts := h.Tick(pos); pkts <= 0 {
		t.Fatalf("initial registration cost %v", pkts)
	}
	// No movement: no further updates.
	if pkts := h.Tick(pos); pkts != 0 {
		t.Fatalf("stationary tick cost %v", pkts)
	}
}

func TestHomeAgentUpdatesOnThreshold(t *testing.T) {
	pos := positions(30, 400, 3)
	hop := topology.NewEuclideanHops(pos, 100, 1.3)
	h := NewHomeAgent(30, 50, hop)
	h.Tick(pos)
	// Move one node just under the threshold: no update.
	pos[5] = pos[5].Add(geom.Vec{X: 49, Y: 0})
	if pkts := h.Tick(pos); pkts != 0 {
		t.Fatalf("sub-threshold move cost %v", pkts)
	}
	// Cross the threshold.
	pos[5] = pos[5].Add(geom.Vec{X: 2, Y: 0})
	if pkts := h.Tick(pos); pkts <= 0 {
		t.Fatal("threshold crossing emitted nothing")
	}
	// And the reference point resets: staying put costs nothing.
	if pkts := h.Tick(pos); pkts != 0 {
		t.Fatal("reference point not reset")
	}
}

func TestHomeAgentQueryCost(t *testing.T) {
	pos := positions(40, 400, 4)
	hop := topology.NewEuclideanHops(pos, 100, 1.3)
	h := NewHomeAgent(40, 50, hop)
	h.Tick(pos)
	c := h.QueryCost(3, 17)
	if c <= 0 {
		t.Fatalf("query cost %v", c)
	}
}

func TestFloodingCosts(t *testing.T) {
	pos := positions(50, 400, 5)
	f := NewFlooding(50, 50)
	if pkts := f.Tick(pos); pkts != 50*50 {
		t.Fatalf("initial flood cost %v, want %v", pkts, 50*50)
	}
	if pkts := f.Tick(pos); pkts != 0 {
		t.Fatalf("stationary flood cost %v", pkts)
	}
	pos[9] = pos[9].Add(geom.Vec{X: 60, Y: 0})
	if pkts := f.Tick(pos); pkts != 50 {
		t.Fatalf("single update flood cost %v, want 50", pkts)
	}
	if f.QueryCost(1, 2) != 0 {
		t.Fatal("flooding queries should be free")
	}
}

func TestFloodingScalesWithN(t *testing.T) {
	// Per-node flooding cost grows linearly with N for the same
	// per-node update rate: the Θ(N) pathology.
	cost := func(n int) float64 {
		pos := positions(n, 500, 6)
		f := NewFlooding(n, 50)
		f.Tick(pos)
		for i := range pos {
			pos[i] = pos[i].Add(geom.Vec{X: 60, Y: 0})
		}
		return f.Tick(pos) / float64(n)
	}
	if c2, c1 := cost(200), cost(100); c2 < c1*1.8 {
		t.Fatalf("flooding per-node cost did not scale: %v vs %v", c1, c2)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHomeAgent(0, 50, nil) },
		func() { NewHomeAgent(10, 0, nil) },
		func() { NewFlooding(0, 50) },
		func() { NewFlooding(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad config accepted")
				}
			}()
			fn()
		}()
	}
}
