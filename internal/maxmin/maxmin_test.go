package maxmin

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

// electMap runs the slice-based Elect and folds the positional result
// back into a node->head map for assertion convenience.
func electMap(c Clusterer, nodes []int, g *topology.Graph) map[int]int {
	heads := c.Elect(nil, nodes, g, func(int) int { return -1 })
	m := make(map[int]int, len(nodes))
	for i, v := range nodes {
		m[v] = heads[i]
	}
	return m
}

func nodesUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func randomGraph(n int, worldR, rtx float64, seed uint64) *topology.Graph {
	src := rng.New(seed)
	d := geom.Disc{R: worldR}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	return topology.BuildUnitDiskBrute(pos, rtx)
}

func TestStarElectsCenterOrCovers(t *testing.T) {
	// Star with max-ID center: rule 1 elects the center for d=1.
	g := topology.NewGraph(10)
	for _, v := range []int{1, 2, 3, 4} {
		g.AddEdge(9, v)
	}
	head := electMap(Clusterer{D: 1}, []int{1, 2, 3, 4, 9}, g)
	for _, v := range []int{1, 2, 3, 4, 9} {
		if head[v] != 9 {
			t.Fatalf("head(%d) = %d, want 9", v, head[v])
		}
	}
}

func TestReachBound(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		g := randomGraph(150, 450, 100, uint64(d))
		nodes := nodesUpTo(150)
		head := electMap(Clusterer{D: d}, nodes, g)
		scratch := topology.NewBFSScratch(150)
		for _, v := range nodes {
			h, ok := head[v]
			if !ok {
				t.Fatalf("d=%d: node %d has no head", d, v)
			}
			if h == v {
				continue
			}
			hops := scratch.HopCount(g, v, h, nil)
			if hops < 0 || hops > d {
				t.Fatalf("d=%d: node %d at %d hops from head %d", d, v, hops, h)
			}
			if head[h] != h {
				t.Fatalf("d=%d: head %d does not head itself", d, h)
			}
		}
	}
}

func TestFewerHeadsWithLargerD(t *testing.T) {
	g := randomGraph(200, 500, 100, 7)
	nodes := nodesUpTo(200)
	countHeads := func(d int) int {
		head := electMap(Clusterer{D: d}, nodes, g)
		heads := map[int]bool{}
		for _, h := range head {
			heads[h] = true
		}
		return len(heads)
	}
	h1, h2 := countHeads(1), countHeads(2)
	if h2 >= h1 {
		t.Fatalf("d=2 produced %d heads vs %d for d=1; expected more aggregation", h2, h1)
	}
}

func TestDeterminism(t *testing.T) {
	g := randomGraph(120, 420, 100, 3)
	nodes := nodesUpTo(120)
	a := electMap(Clusterer{D: 2}, nodes, g)
	b := electMap(Clusterer{D: 2}, nodes, g)
	for _, v := range nodes {
		if a[v] != b[v] {
			t.Fatalf("non-deterministic head for %d", v)
		}
	}
}

func TestIsolatedSelfHeads(t *testing.T) {
	g := topology.NewGraph(5)
	head := electMap(Clusterer{D: 2}, []int{0, 1, 2}, g)
	for _, v := range []int{0, 1, 2} {
		if head[v] != v {
			t.Fatalf("isolated node %d headed by %d", v, head[v])
		}
	}
}

func TestHierarchyIntegration(t *testing.T) {
	// Build a full hierarchy with the max-min elector and validate.
	g := randomGraph(180, 480, 105, 11)
	nodes := nodesUpTo(180)
	h := cluster.Build(g, nodes, cluster.Config{Elector: Clusterer{D: 2}, Reach: 2}, nil)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.L() < 1 {
		t.Fatal("no clustering")
	}
	// d=2 aggregates at least as fast as LCA.
	lca := cluster.Build(g, nodes, cluster.Config{}, nil)
	if len(h.LevelNodes(1)) > len(lca.LevelNodes(1)) {
		t.Fatalf("maxmin d=2 level-1 count %d > LCA %d", len(h.LevelNodes(1)), len(lca.LevelNodes(1)))
	}
}

func TestRespectsNodeSubset(t *testing.T) {
	// Nodes outside the set must not influence the election.
	g := topology.NewGraph(10)
	g.AddEdge(1, 9) // 9 is NOT in the node set
	g.AddEdge(1, 2)
	head := electMap(Clusterer{D: 1}, []int{1, 2}, g)
	if head[1] == 9 || head[2] == 9 {
		t.Fatalf("out-of-set node elected: %v", head)
	}
}

func BenchmarkElect200D2(b *testing.B) {
	g := randomGraph(200, 500, 100, 1)
	nodes := nodesUpTo(200)
	c := Clusterer{D: 2}
	prev := func(int) int { return -1 }
	var dst []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.Elect(dst[:0], nodes, g, prev)
	}
}
