// Package maxmin implements max-min d-cluster formation (Amis,
// Prakash, Vuong & Huynh, INFOCOM 2000), the generalization of the
// linked cluster algorithm the paper cites in §2.2: clusterheads are
// elected so that every node is within d hops of its head, using 2d
// flooding rounds (d of floodmax, d of floodmin) and O(d) messages per
// node.
//
// It plugs into the hierarchy builder as a cluster.Elector (ablation
// A2), with cluster.Config.Reach set to D.
package maxmin

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// Clusterer elects clusterheads with the max-min d-hop rules.
type Clusterer struct {
	// D is the hop radius; every node ends up within D hops of its
	// clusterhead. D = 1 degenerates to an LCA-like election.
	D int
}

// Name implements cluster.Elector.
func (c Clusterer) Name() string { return "maxmin" }

// Elect implements cluster.Elector. prevHead is ignored: max-min as
// published is memoryless. The 2d flooding rounds inherently build
// per-round logs, so this elector allocates; it is an ablation, not a
// steady-state hot path.
func (c Clusterer) Elect(dst []int, nodes []int, g *topology.Graph, prevHead func(int) int) []int {
	head := c.elect(nodes, g)
	for _, v := range nodes {
		dst = append(dst, head[v])
	}
	return dst
}

// CloneElector implements cluster.CloneableElector (stateless).
func (c Clusterer) CloneElector() cluster.Elector { return c }

func (c Clusterer) elect(nodes []int, g *topology.Graph) map[int]int {
	d := c.D
	if d < 1 {
		d = 1
	}
	n := len(nodes)
	idx := make(map[int]int, n)
	for i, v := range nodes {
		idx[v] = i
	}

	// Phase 1: floodmax for d rounds. maxLog[r][i] is node i's winner
	// after round r (round 0 = own id).
	maxLog := make([][]int, d+1)
	maxLog[0] = append([]int(nil), nodes...)
	for r := 1; r <= d; r++ {
		prev := maxLog[r-1]
		cur := make([]int, n)
		for i, v := range nodes {
			best := prev[i]
			for _, w := range g.Neighbors(v) {
				if j, ok := idx[w]; ok && prev[j] > best {
					best = prev[j]
				}
			}
			cur[i] = best
		}
		maxLog[r] = cur
	}

	// Phase 2: floodmin for d rounds, seeded with the floodmax result.
	minLog := make([][]int, d+1)
	minLog[0] = maxLog[d]
	for r := 1; r <= d; r++ {
		prev := minLog[r-1]
		cur := make([]int, n)
		for i, v := range nodes {
			best := prev[i]
			for _, w := range g.Neighbors(v) {
				if j, ok := idx[w]; ok && prev[j] < best {
					best = prev[j]
				}
			}
			cur[i] = best
		}
		minLog[r] = cur
	}

	// Selection rules, per node.
	head := make(map[int]int, n)
	for i, v := range nodes {
		// Rule 1: v saw its own id during floodmin -> v is a head.
		rule1 := false
		for r := 1; r <= d; r++ {
			if minLog[r][i] == v {
				rule1 = true
				break
			}
		}
		if rule1 {
			head[v] = v
			continue
		}
		// Rule 2: "node pairs" — ids that appeared at v in both
		// phases; elect the minimum such id.
		seenMax := map[int]bool{}
		for r := 1; r <= d; r++ {
			seenMax[maxLog[r][i]] = true
		}
		pair := -1
		for r := 1; r <= d; r++ {
			w := minLog[r][i]
			if seenMax[w] && (pair == -1 || w < pair) {
				pair = w
			}
		}
		if pair != -1 {
			head[v] = pair
			continue
		}
		// Rule 3: the floodmax winner.
		head[v] = maxLog[d][i]
	}

	c.repair(nodes, g, idx, head)
	return head
}

// repair enforces the structural properties the hierarchy builder
// needs: every elected head heads itself, and every member can reach
// its head within D hops. Violations (possible on adversarial
// topologies for the textbook rules) fall back to the nearest
// self-elected head within D hops, or self-election.
func (c Clusterer) repair(nodes []int, g *topology.Graph, idx map[int]int, head map[int]int) {
	d := c.D
	if d < 1 {
		d = 1
	}
	heads := map[int]bool{}
	for _, v := range nodes {
		if head[v] == v {
			heads[v] = true
		}
	}
	// Heads elected by others must self-head.
	for _, v := range nodes {
		if h := head[v]; h != v && !heads[h] {
			head[h] = h
			heads[h] = true
		}
	}
	// Members must reach their head within d hops through the node
	// set; otherwise re-home.
	inSet := func(w int) bool { _, ok := idx[w]; return ok }
	scratch := topology.NewBFSScratch(g.IDSpace())
	sorted := append([]int(nil), nodes...)
	sort.Ints(sorted)
	for _, v := range sorted {
		h := head[v]
		if h == v {
			continue
		}
		if hops := scratch.HopCount(g, v, h, inSet); hops >= 0 && hops <= d {
			continue
		}
		// Find nearest head within d hops.
		dists := scratch.DistancesFrom(g, v, inSet)
		best, bestD := -1, d+1
		//lint:ignore maprange argmin with a total (dist, ID) tiebreak; the result is order-free
		for w, dist := range dists {
			if heads[w] && dist <= d && (best == -1 || dist < bestD || (dist == bestD && w < best)) {
				best, bestD = w, dist
			}
		}
		if best >= 0 {
			head[v] = best
		} else {
			head[v] = v
			heads[v] = true
		}
	}
}

var (
	_ cluster.Elector          = Clusterer{}
	_ cluster.CloneableElector = Clusterer{}
)
