// Package par provides the simulator's intra-tick parallelism
// primitives: a bounded pool of persistent workers, deterministic
// shard fan-out, and panic capture.
//
// Determinism contract. Parallel phases in this repo never race on
// outputs: work is split into shards whose outputs go to disjoint,
// shard-indexed storage, and the shards are merged in shard order
// afterwards. Which *worker goroutine* executes which shard is fixed
// (strided assignment, see Pool.RunShards), so per-worker scratch
// buffers are reused safely and the only nondeterminism left is
// instruction interleaving — invisible once outputs are disjoint.
// Every parallel phase built on this package must therefore produce
// results byte-identical to its serial equivalent; the simnet
// determinism tests enforce that end to end.
package par

import (
	"fmt"
	"runtime"
)

// PanicError wraps a recovered panic value together with the stack of
// the panicking goroutine, so a panic on a worker can cross goroutine
// boundaries without losing its origin.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", p.Value, p.Stack)
}

// Recover runs fn and converts a panic into a *PanicError. A nil
// return means fn completed normally. runtime.Goexit is not recovered.
func Recover(fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Value: v, Stack: buf}
		}
	}()
	fn()
	return nil
}

// Pool is a fixed set of persistent worker goroutines executing
// fan-out calls. A Pool is safe for use by one dispatcher at a time
// (calls to Run/RunShards must not overlap); the simulation loop owns
// one pool per run. Close releases the workers.
//
// A nil *Pool is valid and means "no parallelism": Run and RunShards
// execute inline on the caller's goroutine with worker index 0.
type Pool struct {
	workers int
	cmd     []chan func()
	done    chan workerResult
	closed  bool
}

type workerResult struct {
	worker int
	err    error
}

// NewPool starts a pool of the given size (values < 1 are clamped to
// 1). The pool holds exactly `workers` goroutines until Close.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		cmd:     make([]chan func(), workers),
		done:    make(chan workerResult, workers),
	}
	for w := 0; w < workers; w++ {
		p.cmd[w] = make(chan func())
		go p.worker(w, p.cmd[w])
	}
	return p
}

func (p *Pool) worker(id int, cmd chan func()) {
	for fn := range cmd {
		p.done <- workerResult{worker: id, err: Recover(fn)}
	}
}

// Workers returns the pool size (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close stops the worker goroutines. The pool must be idle. Close is
// idempotent and nil-safe.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	for _, c := range p.cmd {
		close(c)
	}
}

// Run executes fn(w) once per worker w in [0, Workers()) and waits for
// all of them. If any invocation panics, Run re-panics with the
// *PanicError of the lowest worker index (a deterministic choice) after
// every worker has finished, so the pool is reusable afterwards.
//
//manet:hotpath
func (p *Pool) Run(fn func(worker int)) {
	if p == nil {
		fn(0)
		return
	}
	for w := 0; w < p.workers; w++ {
		w := w
		//lint:ignore hotpath per-dispatch worker closure, counted in the tick alloc budget
		p.cmd[w] <- func() { fn(w) }
	}
	p.wait(p.workers)
}

// RunShards executes fn(worker, shard) for every shard in [0, shards).
// Shards are assigned statically by stride: worker w runs shards
// w, w+W, w+2W, … in increasing order. The assignment is deterministic,
// so fn may use per-worker scratch and write per-shard outputs without
// synchronization. Panics propagate as in Run.
//
//manet:hotpath
func (p *Pool) RunShards(shards int, fn func(worker, shard int)) {
	if shards <= 0 {
		return
	}
	if p == nil {
		for s := 0; s < shards; s++ {
			fn(0, s)
		}
		return
	}
	w := p.workers
	if shards < w {
		w = shards
	}
	for i := 0; i < w; i++ {
		i := i
		//lint:ignore hotpath per-dispatch worker closure, counted in the tick alloc budget
		p.cmd[i] <- func() {
			for s := i; s < shards; s += p.workers {
				fn(i, s)
			}
		}
	}
	p.wait(w)
}

// wait collects n completions and re-panics the captured panic of the
// lowest worker index, a deterministic choice. All workers are drained
// before panicking so the pool stays reusable.
func (p *Pool) wait(n int) {
	var first error
	firstW := -1
	for i := 0; i < n; i++ {
		r := <-p.done
		if r.err != nil && (firstW < 0 || r.worker < firstW) {
			first, firstW = r.err, r.worker
		}
	}
	if first != nil {
		panic(first)
	}
}

// Shards picks a shard count for fanning `items` units of work over
// `workers`: a few shards per worker so uneven per-shard cost balances
// out under the strided assignment, capped by the item count and never
// below 1.
func Shards(workers, items int) int {
	s := workers * 4
	if s > items {
		s = items
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Shard returns the half-open range [lo, hi) of the i-th of `parts`
// contiguous, maximally even shards over [0, n). Empty shards (when
// parts > n) return lo == hi.
func Shard(n, parts, i int) (lo, hi int) {
	if parts <= 0 {
		panic("par: Shard with non-positive parts")
	}
	q, r := n/parts, n%parts
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}
