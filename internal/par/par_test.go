package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestShardCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 1}, {1, 1}, {1, 4}, {4, 4}, {5, 4}, {7, 3}, {100, 7}, {3, 8},
	} {
		covered := make([]int, tc.n)
		prevHi := 0
		for i := 0; i < tc.parts; i++ {
			lo, hi := Shard(tc.n, tc.parts, i)
			if lo != prevHi {
				t.Fatalf("Shard(%d,%d,%d): lo=%d, want %d (contiguous)", tc.n, tc.parts, i, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("Shard(%d,%d,%d): hi=%d < lo=%d", tc.n, tc.parts, i, hi, lo)
			}
			for j := lo; j < hi; j++ {
				covered[j]++
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("Shard(%d,%d,·): covers [0,%d), want [0,%d)", tc.n, tc.parts, prevHi, tc.n)
		}
		for j, c := range covered {
			if c != 1 {
				t.Fatalf("Shard(%d,%d,·): index %d covered %d times", tc.n, tc.parts, j, c)
			}
		}
	}
}

func TestShardBalance(t *testing.T) {
	// Shards differ in size by at most one.
	lo0, hi0 := Shard(10, 3, 0)
	lo2, hi2 := Shard(10, 3, 2)
	if (hi0-lo0)-(hi2-lo2) > 1 {
		t.Fatalf("unbalanced shards: %d vs %d", hi0-lo0, hi2-lo2)
	}
}

func TestPoolRunEveryWorker(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var hits [4]int32
	p.Run(func(w int) { atomic.AddInt32(&hits[w], 1) })
	for w, h := range hits {
		if h != 1 {
			t.Fatalf("worker %d ran %d times, want 1", w, h)
		}
	}
}

// TestRunShardsOrderedMerge is the ordered-merge contract: per-shard
// outputs concatenated in shard order must equal the serial order, and
// each worker must see its strided shards in increasing order (so
// per-worker scratch reuse is well defined).
func TestRunShardsOrderedMerge(t *testing.T) {
	const shards = 13
	for _, workers := range []int{1, 2, 3, 5, 16} {
		p := NewPool(workers)
		out := make([][]int, shards) // per-shard output buffers
		perWorker := make([][]int, p.Workers())
		p.RunShards(shards, func(w, s int) {
			// Disjoint, shard-indexed output.
			out[s] = []int{s * 10, s*10 + 1}
			perWorker[w] = append(perWorker[w], s)
		})
		p.Close()
		var merged []int
		for s := 0; s < shards; s++ {
			merged = append(merged, out[s]...)
		}
		for i, v := range merged {
			want := (i/2)*10 + i%2
			if v != want {
				t.Fatalf("workers=%d: merged[%d]=%d, want %d", workers, i, v, want)
			}
		}
		for w, ss := range perWorker {
			for i, s := range ss {
				if want := w + i*p.Workers(); s != want {
					t.Fatalf("workers=%d: worker %d saw shard %d at position %d, want %d",
						workers, w, s, i, want)
				}
			}
		}
	}
}

func TestRunShardsFewerShardsThanWorkers(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var n int32
	p.RunShards(3, func(w, s int) {
		if w != s {
			t.Errorf("shard %d ran on worker %d", s, w)
		}
		atomic.AddInt32(&n, 1)
	})
	if n != 3 {
		t.Fatalf("ran %d shards, want 3", n)
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers = %d, want 1", p.Workers())
	}
	var order []int
	p.Run(func(w int) { order = append(order, -1-w) })
	p.RunShards(3, func(w, s int) { order = append(order, s) })
	p.Close() // must not panic
	want := []int{-1, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPoolPanicPropagation(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	err := Recover(func() {
		p.RunShards(6, func(w, s int) {
			if s == 2 || s == 4 {
				panic("boom at shard 2")
			}
		})
	})
	if err == nil {
		t.Fatal("expected panic to propagate")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "boom at shard 2") {
		t.Fatalf("panic error lost its value: %v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error lost its stack")
	}
	// The pool must remain usable after a captured panic.
	var ok int32
	p.Run(func(w int) { atomic.AddInt32(&ok, 1) })
	if ok != 3 {
		t.Fatalf("pool unusable after panic: ran %d workers, want 3", ok)
	}
}

func TestRecoverNormalReturn(t *testing.T) {
	if err := Recover(func() {}); err != nil {
		t.Fatalf("Recover of clean fn = %v, want nil", err)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}
