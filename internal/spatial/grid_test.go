package spatial

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// randomLayout places n nodes uniformly in a disc and returns positions.
func randomLayout(n int, r float64, seed uint64) []geom.Vec {
	src := rng.New(seed)
	d := geom.Disc{R: r}
	ps := make([]geom.Vec, n)
	for i := range ps {
		ps[i] = d.Sample(src)
	}
	return ps
}

// bruteNeighbors is the O(n²) oracle.
func bruteNeighbors(ps []geom.Vec, id int, r float64) []int {
	var out []int
	for i, p := range ps {
		if i != id && ps[id].Dist(p) <= r {
			out = append(out, i)
		}
	}
	return out
}

func buildGrid(ps []geom.Vec, r float64) *Grid {
	d := geom.Disc{R: 1000}
	g := NewGridForDisc(d, r, len(ps))
	for i, p := range ps {
		g.Insert(i, p)
	}
	return g
}

func TestNeighborsMatchesBrute(t *testing.T) {
	const n = 300
	const r = 120.0
	ps := randomLayout(n, 900, 1)
	g := buildGrid(ps, r)
	pos := func(i int) geom.Vec { return ps[i] }
	for id := 0; id < n; id++ {
		got := g.Neighbors(nil, id, ps[id], r, pos)
		want := bruteNeighbors(ps, id, r)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("node %d: got %d neighbors, want %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d: neighbors %v != %v", id, got, want)
			}
		}
	}
}

func TestForEachPairMatchesBrute(t *testing.T) {
	const n = 250
	const r = 100.0
	ps := randomLayout(n, 800, 2)
	g := buildGrid(ps, r)
	pos := func(i int) geom.Vec { return ps[i] }

	type pair struct{ a, b int }
	got := map[pair]int{}
	g.ForEachPair(r, pos, func(a, b int) {
		if a >= b {
			t.Fatalf("pair not ordered: (%d,%d)", a, b)
		}
		got[pair{a, b}]++
	})
	want := map[pair]bool{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ps[i].Dist(ps[j]) <= r {
				want[pair{i, j}] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("pair count %d, want %d", len(got), len(want))
	}
	for p, c := range got {
		if c != 1 {
			t.Fatalf("pair %v visited %d times", p, c)
		}
		if !want[p] {
			t.Fatalf("spurious pair %v", p)
		}
	}
}

// TestLargeRadiusMatchesBrute is the regression test for the silent
// 3×3-only scan: with a query radius of 2.5× the cell side, both
// Neighbors and ForEachPair used to drop every pair more than one cell
// ring apart. The multi-ring scan must match the O(n²) oracle exactly.
func TestLargeRadiusMatchesBrute(t *testing.T) {
	const n = 250
	const cell = 100.0
	const r = 2.5 * cell
	ps := randomLayout(n, 800, 3)
	g := buildGrid(ps, cell) // cells sized for cell, queried at r > cell
	pos := func(i int) geom.Vec { return ps[i] }

	for id := 0; id < n; id++ {
		got := g.Neighbors(nil, id, ps[id], r, pos)
		want := bruteNeighbors(ps, id, r)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("node %d: got %d neighbors, want %d (r=%.0f, cell=%.0f)",
				id, len(got), len(want), r, cell)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d: neighbors %v != %v", id, got, want)
			}
		}
	}

	type pair struct{ a, b int }
	got := map[pair]int{}
	g.ForEachPair(r, pos, func(a, b int) {
		got[pair{a, b}]++
	})
	want := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ps[i].Dist(ps[j]) <= r {
				want++
				if got[pair{i, j}] != 1 {
					t.Fatalf("pair (%d,%d) visited %d times, want 1", i, j, got[pair{i, j}])
				}
			}
		}
	}
	if len(got) != want {
		t.Fatalf("pair count %d, want %d", len(got), want)
	}
}

func TestUpdateRelocates(t *testing.T) {
	ps := []geom.Vec{{X: 0, Y: 0}, {X: 500, Y: 500}}
	g := buildGrid(ps, 100)
	pos := func(i int) geom.Vec { return ps[i] }

	// Initially not neighbors.
	if nbrs := g.Neighbors(nil, 0, ps[0], 100, pos); len(nbrs) != 0 {
		t.Fatalf("unexpected neighbors %v", nbrs)
	}
	// Move node 1 next to node 0.
	ps[1] = geom.Vec{X: 50, Y: 0}
	g.Update(1, ps[1])
	nbrs := g.Neighbors(nil, 0, ps[0], 100, pos)
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("after update neighbors = %v, want [1]", nbrs)
	}
}

func TestUpdateSameCellNoop(t *testing.T) {
	ps := []geom.Vec{{X: 0, Y: 0}}
	g := buildGrid(ps, 100)
	// Small move within the same cell must keep the node findable.
	ps[0] = geom.Vec{X: 1, Y: 1}
	g.Update(0, ps[0])
	if !g.Contains(0) {
		t.Fatal("node lost after same-cell update")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestRemove(t *testing.T) {
	ps := randomLayout(50, 400, 3)
	g := buildGrid(ps, 100)
	for i := 0; i < 50; i += 2 {
		g.Remove(i)
	}
	if g.Len() != 25 {
		t.Fatalf("Len after removal = %d", g.Len())
	}
	pos := func(i int) geom.Vec { return ps[i] }
	g.ForEachPair(100, pos, func(a, b int) {
		if a%2 == 0 || b%2 == 0 {
			t.Fatalf("removed node in pair (%d,%d)", a, b)
		}
	})
	// Removing twice is a no-op.
	g.Remove(0)
}

func TestInsertTwicePanics(t *testing.T) {
	g := NewGrid(geom.Vec{}, 100, 10, 4)
	g.Insert(1, geom.Vec{X: 5, Y: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	g.Insert(1, geom.Vec{X: 6, Y: 6})
}

func TestOutOfBoundsClamped(t *testing.T) {
	// Points outside the indexed square are clamped to edge cells and
	// must remain findable.
	g := NewGrid(geom.Vec{}, 100, 10, 2)
	p0 := geom.Vec{X: -50, Y: -50}
	p1 := geom.Vec{X: -45, Y: -52}
	g.Insert(0, p0)
	g.Insert(1, p1)
	ps := []geom.Vec{p0, p1}
	pos := func(i int) geom.Vec { return ps[i] }
	nbrs := g.Neighbors(nil, 0, p0, 10, pos)
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("out-of-bounds neighbors = %v", nbrs)
	}
}

func TestBoundaryDistanceExactlyR(t *testing.T) {
	// Pairs at exactly distance r are included (<= semantics).
	ps := []geom.Vec{{X: 0, Y: 0}, {X: 100, Y: 0}}
	g := buildGrid(ps, 100)
	pos := func(i int) geom.Vec { return ps[i] }
	count := 0
	g.ForEachPair(100, pos, func(a, b int) { count++ })
	if count != 1 {
		t.Fatalf("pair at exactly r counted %d times", count)
	}
}

func TestCellStats(t *testing.T) {
	ps := randomLayout(100, 400, 4)
	g := buildGrid(ps, 100)
	nonEmpty, maxOcc := g.CellStats()
	if nonEmpty == 0 || maxOcc == 0 {
		t.Fatalf("CellStats = %d, %d", nonEmpty, maxOcc)
	}
	if maxOcc > 100 {
		t.Fatalf("impossible occupancy %d", maxOcc)
	}
}

func TestManyUpdatesConsistency(t *testing.T) {
	// Random walk all nodes; index must always match brute force.
	const n = 120
	const r = 80.0
	ps := randomLayout(n, 500, 5)
	g := buildGrid(ps, r)
	src := rng.New(6)
	pos := func(i int) geom.Vec { return ps[i] }
	for step := 0; step < 20; step++ {
		for i := range ps {
			ps[i] = ps[i].Add(geom.Vec{X: src.Range(-60, 60), Y: src.Range(-60, 60)})
			g.Update(i, ps[i])
		}
		for id := 0; id < n; id += 7 {
			got := g.Neighbors(nil, id, ps[id], r, pos)
			want := bruteNeighbors(ps, id, r)
			if len(got) != len(want) {
				t.Fatalf("step %d node %d: %d vs %d neighbors", step, id, len(got), len(want))
			}
		}
	}
}

func BenchmarkForEachPair1000(b *testing.B) {
	const n = 1000
	const r = 100.0
	// Density chosen for ~8 neighbors each.
	ps := randomLayout(n, 600, 7)
	g := buildGrid(ps, r)
	pos := func(i int) geom.Vec { return ps[i] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		g.ForEachPair(r, pos, func(a, b int) { cnt++ })
	}
}

func BenchmarkNeighbors(b *testing.B) {
	const n = 1000
	ps := randomLayout(n, 600, 8)
	g := buildGrid(ps, 100)
	pos := func(i int) geom.Vec { return ps[i] }
	buf := make([]int, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Neighbors(buf[:0], i%n, ps[i%n], 100, pos)
	}
}
