// Package spatial provides a uniform-grid spatial index over node
// positions. With cell side equal to the transmission radius R_TX, the
// neighbors of a node within R_TX are all found in its 3×3 cell
// neighborhood, so a full link scan over |V| nodes costs O(|V|·d̄)
// instead of O(|V|²).
package spatial

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Grid is a uniform spatial hash of node IDs (0..n-1) to cells.
// Positions are supplied by the caller on every operation so the grid
// never holds stale coordinates.
type Grid struct {
	min      geom.Vec // lower-left corner of the indexed square
	cell     float64  // cell side length
	cols     int
	rows     int
	cells    [][]int32 // cell -> node IDs
	location []int32   // node -> cell index, -1 if absent
}

// NewGrid creates a grid covering the square with lower corner min and
// the given side, using cells of side cell, sized for capacity nodes.
func NewGrid(min geom.Vec, side, cell float64, capacity int) *Grid {
	if side <= 0 || cell <= 0 {
		panic("spatial: side and cell must be positive")
	}
	cols := int(side/cell) + 1
	g := &Grid{
		min:      min,
		cell:     cell,
		cols:     cols,
		rows:     cols,
		cells:    make([][]int32, cols*cols),
		location: make([]int32, capacity),
	}
	for i := range g.location {
		g.location[i] = -1
	}
	return g
}

// NewGridForDisc sizes a grid to cover disc with cells of side cell.
func NewGridForDisc(d geom.Disc, cell float64, capacity int) *Grid {
	min, side := d.BoundingSquare()
	return NewGrid(min, side, cell, capacity)
}

// cellIndex maps a position to its (clamped) cell index.
func (g *Grid) cellIndex(p geom.Vec) int32 {
	cx := int((p.X - g.min.X) / g.cell)
	cy := int((p.Y - g.min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return int32(cy*g.cols + cx)
}

// Insert places node id at position p. The id must not already be
// present and must be < capacity.
func (g *Grid) Insert(id int, p geom.Vec) {
	if g.location[id] != -1 {
		panic(fmt.Sprintf("spatial: node %d inserted twice", id))
	}
	c := g.cellIndex(p)
	g.cells[c] = append(g.cells[c], int32(id))
	g.location[id] = c
}

// Update moves node id to position p, relocating it across cells if
// needed. It is a no-op when the cell is unchanged.
func (g *Grid) Update(id int, p geom.Vec) {
	old := g.location[id]
	if old == -1 {
		g.Insert(id, p)
		return
	}
	c := g.cellIndex(p)
	if c == old {
		return
	}
	g.removeFromCell(id, old)
	g.cells[c] = append(g.cells[c], int32(id))
	g.location[id] = c
}

// Remove deletes node id from the index.
func (g *Grid) Remove(id int) {
	c := g.location[id]
	if c == -1 {
		return
	}
	g.removeFromCell(id, c)
	g.location[id] = -1
}

func (g *Grid) removeFromCell(id int, c int32) {
	cell := g.cells[c]
	for i, v := range cell {
		if v == int32(id) {
			cell[i] = cell[len(cell)-1]
			g.cells[c] = cell[:len(cell)-1]
			return
		}
	}
	panic(fmt.Sprintf("spatial: node %d not found in its cell", id))
}

// Contains reports whether id is currently indexed.
func (g *Grid) Contains(id int) bool { return g.location[id] != -1 }

// rings returns how many cell rings around a cell can hold points
// within radius r of it. One ring (the 3×3 neighborhood) suffices only
// while r <= cell side; larger radii need ceil(r/cell) rings.
//
// Coverage audit: k = ceil(r/cell) is exact, not merely conservative.
// Two points in cells k+1 apart on an axis satisfy |Δx| > k·cell
// STRICTLY (cell membership is a half-open interval [lo, hi), so the
// far point sits at >= lo and the near point at < hi of non-adjacent
// cells), hence d > k·cell >= r and the pair can never pass d² <= r².
// The strictness argument requires positions to lie inside the
// indexed square — cellIndex clamps outliers into border cells, which
// would break it — and every mobility model keeps nodes inside the
// deployment disc's bounding square (Manhattan uses the square
// itself), so the bound holds for radii beyond the cell side too
// (logshadow's widened candidate radius relies on this).
func (g *Grid) rings(r float64) int {
	k := int(math.Ceil(r / g.cell))
	if k < 1 {
		k = 1
	}
	return k
}

// cellsApart reports whether two cells (dx, dy) apart are too far for
// any of their points to lie within r of each other: the minimum
// point-to-point distance between the cells exceeds r.
func (g *Grid) cellsApart(dx, dy int, r float64) bool {
	gx := float64(abs(dx) - 1)
	gy := float64(abs(dy) - 1)
	if gx < 0 {
		gx = 0
	}
	if gy < 0 {
		gy = 0
	}
	return (gx*gx+gy*gy)*g.cell*g.cell > r*r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Neighbors appends to dst the IDs of all indexed nodes other than id
// whose position (per pos) is within radius r of p, and returns dst.
// Radii larger than the cell side widen the scan to enough rings.
func (g *Grid) Neighbors(dst []int, id int, p geom.Vec, r float64, pos func(int) geom.Vec) []int {
	r2 := r * r
	k := g.rings(r)
	c := g.cellIndex(p)
	cx := int(c) % g.cols
	cy := int(c) / g.cols
	for dy := -k; dy <= k; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -k; dx <= k; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols || g.cellsApart(dx, dy, r) {
				continue
			}
			for _, other := range g.cells[y*g.cols+x] {
				o := int(other)
				if o == id {
					continue
				}
				if p.Dist2(pos(o)) <= r2 {
					dst = append(dst, o)
				}
			}
		}
	}
	return dst
}

// Rows returns the number of cell rows in the grid — the shard axis
// for parallel pair scans (see ForEachPairRows).
func (g *Grid) Rows() int { return g.rows }

// ForEachPair invokes fn once for every unordered pair (a, b), a < b,
// of indexed nodes within radius r of each other. This is the bulk
// link-scan primitive. Radii larger than the cell side widen the scan
// to enough rings (ceil(r/cell)).
func (g *Grid) ForEachPair(r float64, pos func(int) geom.Vec, fn func(a, b int)) {
	g.ForEachPairRows(r, 0, g.rows, pos, fn)
}

// ForEachPairRows is ForEachPair restricted to owner cells in rows
// [rowLo, rowHi). Every pair is owned by exactly one cell — the
// lexicographically first of the two cells in row-major order — so
// scanning disjoint row ranges that cover [0, Rows()) reports every
// pair exactly once, each pair in exactly one range, in the same
// relative order as the full ForEachPair scan. Rows at or beyond rowHi
// are read (a pair may span the boundary) but never owned, so
// concurrent scans over disjoint ranges are safe as long as the grid
// is not mutated.
func (g *Grid) ForEachPairRows(r float64, rowLo, rowHi int, pos func(int) geom.Vec, fn func(a, b int)) {
	r2 := r * r
	k := g.rings(r)
	if rowLo < 0 {
		rowLo = 0
	}
	if rowHi > g.rows {
		rowHi = g.rows
	}
	for cy := rowLo; cy < rowHi; cy++ {
		for cx := 0; cx < g.cols; cx++ {
			cell := g.cells[cy*g.cols+cx]
			if len(cell) == 0 {
				continue
			}
			// Intra-cell pairs.
			for i := 0; i < len(cell); i++ {
				pi := pos(int(cell[i]))
				for j := i + 1; j < len(cell); j++ {
					if pi.Dist2(pos(int(cell[j]))) <= r2 {
						a, b := int(cell[i]), int(cell[j])
						if a > b {
							a, b = b, a
						}
						fn(a, b)
					}
				}
			}
			// Cross-cell pairs: pair with the "forward" half-plane of the
			// k-ring neighborhood (dy > 0, plus dy == 0 ∧ dx > 0) so each
			// cell pair is visited exactly once. For k = 1 these are the
			// classic E, SW, S, SE offsets.
			for dy := 0; dy <= k; dy++ {
				dxMin := -k
				if dy == 0 {
					dxMin = 1
				}
				for dx := dxMin; dx <= k; dx++ {
					x, y := cx+dx, cy+dy
					if x < 0 || x >= g.cols || y < 0 || y >= g.rows || g.cellsApart(dx, dy, r) {
						continue
					}
					other := g.cells[y*g.cols+x]
					for _, a := range cell {
						pa := pos(int(a))
						for _, b := range other {
							if pa.Dist2(pos(int(b))) <= r2 {
								u, v := int(a), int(b)
								if u > v {
									u, v = v, u
								}
								fn(u, v)
							}
						}
					}
				}
			}
		}
	}
}

// CellSide returns the cell side length.
func (g *Grid) CellSide() float64 { return g.cell }

// NextCrossing returns the earliest time at or after now at which a
// point at p moving with constant velocity v enters a different cell,
// or +Inf if it never does (zero velocity, or heading off the indexed
// square — edge cells clamp, so leaving the square changes nothing).
// The returned instant may equal now when p sits exactly on a cell
// boundary; callers that schedule events must enforce strict progress
// themselves.
func (g *Grid) NextCrossing(p, v geom.Vec, now float64) float64 {
	c := g.cellIndex(p)
	cx := int(c) % g.cols
	cy := int(c) / g.cols
	next := math.Inf(1)
	if v.X > 0 && cx < g.cols-1 {
		if dt := (g.min.X + float64(cx+1)*g.cell - p.X) / v.X; dt >= 0 && now+dt < next {
			next = now + dt
		}
	} else if v.X < 0 && cx > 0 {
		if dt := (g.min.X + float64(cx)*g.cell - p.X) / v.X; dt >= 0 && now+dt < next {
			next = now + dt
		}
	}
	if v.Y > 0 && cy < g.rows-1 {
		if dt := (g.min.Y + float64(cy+1)*g.cell - p.Y) / v.Y; dt >= 0 && now+dt < next {
			next = now + dt
		}
	} else if v.Y < 0 && cy > 0 {
		if dt := (g.min.Y + float64(cy)*g.cell - p.Y) / v.Y; dt >= 0 && now+dt < next {
			next = now + dt
		}
	}
	return next
}

// ForEachNearbyNode invokes fn for every indexed node other than id
// whose cell lies within `rings` cells (Chebyshev distance) of id's
// own cell. No distance filtering is applied — this is the raw
// candidate enumeration for the kinetic tracker, which evaluates exact
// distances itself. id must be indexed.
func (g *Grid) ForEachNearbyNode(id, rings int, fn func(other int)) {
	c := g.location[id]
	if c == -1 {
		panic(fmt.Sprintf("spatial: ForEachNearbyNode on unindexed node %d", id))
	}
	cx := int(c) % g.cols
	cy := int(c) / g.cols
	for dy := -rings; dy <= rings; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -rings; dx <= rings; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			for _, other := range g.cells[y*g.cols+x] {
				if o := int(other); o != id {
					fn(o)
				}
			}
		}
	}
}

// Len reports the number of indexed nodes.
func (g *Grid) Len() int {
	n := 0
	for _, l := range g.location {
		if l != -1 {
			n++
		}
	}
	return n
}

// CellStats returns the number of non-empty cells and the maximum
// occupancy, for diagnostics.
func (g *Grid) CellStats() (nonEmpty, maxOccupancy int) {
	for _, c := range g.cells {
		if len(c) > 0 {
			nonEmpty++
			if len(c) > maxOccupancy {
				maxOccupancy = len(c)
			}
		}
	}
	return
}
