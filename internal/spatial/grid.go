// Package spatial provides a uniform-grid spatial index over node
// positions. With cell side equal to the transmission radius R_TX, the
// neighbors of a node within R_TX are all found in its 3×3 cell
// neighborhood, so a full link scan over |V| nodes costs O(|V|·d̄)
// instead of O(|V|²).
package spatial

import (
	"fmt"

	"repro/internal/geom"
)

// Grid is a uniform spatial hash of node IDs (0..n-1) to cells.
// Positions are supplied by the caller on every operation so the grid
// never holds stale coordinates.
type Grid struct {
	min      geom.Vec // lower-left corner of the indexed square
	cell     float64  // cell side length
	cols     int
	rows     int
	cells    [][]int32 // cell -> node IDs
	location []int32   // node -> cell index, -1 if absent
}

// NewGrid creates a grid covering the square with lower corner min and
// the given side, using cells of side cell, sized for capacity nodes.
func NewGrid(min geom.Vec, side, cell float64, capacity int) *Grid {
	if side <= 0 || cell <= 0 {
		panic("spatial: side and cell must be positive")
	}
	cols := int(side/cell) + 1
	g := &Grid{
		min:      min,
		cell:     cell,
		cols:     cols,
		rows:     cols,
		cells:    make([][]int32, cols*cols),
		location: make([]int32, capacity),
	}
	for i := range g.location {
		g.location[i] = -1
	}
	return g
}

// NewGridForDisc sizes a grid to cover disc with cells of side cell.
func NewGridForDisc(d geom.Disc, cell float64, capacity int) *Grid {
	min, side := d.BoundingSquare()
	return NewGrid(min, side, cell, capacity)
}

// cellIndex maps a position to its (clamped) cell index.
func (g *Grid) cellIndex(p geom.Vec) int32 {
	cx := int((p.X - g.min.X) / g.cell)
	cy := int((p.Y - g.min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return int32(cy*g.cols + cx)
}

// Insert places node id at position p. The id must not already be
// present and must be < capacity.
func (g *Grid) Insert(id int, p geom.Vec) {
	if g.location[id] != -1 {
		panic(fmt.Sprintf("spatial: node %d inserted twice", id))
	}
	c := g.cellIndex(p)
	g.cells[c] = append(g.cells[c], int32(id))
	g.location[id] = c
}

// Update moves node id to position p, relocating it across cells if
// needed. It is a no-op when the cell is unchanged.
func (g *Grid) Update(id int, p geom.Vec) {
	old := g.location[id]
	if old == -1 {
		g.Insert(id, p)
		return
	}
	c := g.cellIndex(p)
	if c == old {
		return
	}
	g.removeFromCell(id, old)
	g.cells[c] = append(g.cells[c], int32(id))
	g.location[id] = c
}

// Remove deletes node id from the index.
func (g *Grid) Remove(id int) {
	c := g.location[id]
	if c == -1 {
		return
	}
	g.removeFromCell(id, c)
	g.location[id] = -1
}

func (g *Grid) removeFromCell(id int, c int32) {
	cell := g.cells[c]
	for i, v := range cell {
		if v == int32(id) {
			cell[i] = cell[len(cell)-1]
			g.cells[c] = cell[:len(cell)-1]
			return
		}
	}
	panic(fmt.Sprintf("spatial: node %d not found in its cell", id))
}

// Contains reports whether id is currently indexed.
func (g *Grid) Contains(id int) bool { return g.location[id] != -1 }

// Neighbors appends to dst the IDs of all indexed nodes other than id
// whose position (per pos) is within radius r of p, and returns dst.
// Correct only when r <= cell side.
func (g *Grid) Neighbors(dst []int, id int, p geom.Vec, r float64, pos func(int) geom.Vec) []int {
	r2 := r * r
	c := g.cellIndex(p)
	cx := int(c) % g.cols
	cy := int(c) / g.cols
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			for _, other := range g.cells[y*g.cols+x] {
				o := int(other)
				if o == id {
					continue
				}
				if p.Dist2(pos(o)) <= r2 {
					dst = append(dst, o)
				}
			}
		}
	}
	return dst
}

// ForEachPair invokes fn once for every unordered pair (a, b), a < b,
// of indexed nodes within radius r of each other. This is the bulk
// link-scan primitive. Correct only when r <= cell side.
func (g *Grid) ForEachPair(r float64, pos func(int) geom.Vec, fn func(a, b int)) {
	r2 := r * r
	// For each cell, pair within the cell and with the 4 "forward"
	// neighbor cells (E, SW, S, SE) so each cell pair is visited once.
	offsets := [...][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for cy := 0; cy < g.rows; cy++ {
		for cx := 0; cx < g.cols; cx++ {
			cell := g.cells[cy*g.cols+cx]
			if len(cell) == 0 {
				continue
			}
			// Intra-cell pairs.
			for i := 0; i < len(cell); i++ {
				pi := pos(int(cell[i]))
				for j := i + 1; j < len(cell); j++ {
					if pi.Dist2(pos(int(cell[j]))) <= r2 {
						a, b := int(cell[i]), int(cell[j])
						if a > b {
							a, b = b, a
						}
						fn(a, b)
					}
				}
			}
			// Cross-cell pairs.
			for _, off := range offsets {
				x, y := cx+off[0], cy+off[1]
				if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
					continue
				}
				other := g.cells[y*g.cols+x]
				for _, a := range cell {
					pa := pos(int(a))
					for _, b := range other {
						if pa.Dist2(pos(int(b))) <= r2 {
							u, v := int(a), int(b)
							if u > v {
								u, v = v, u
							}
							fn(u, v)
						}
					}
				}
			}
		}
	}
}

// Len reports the number of indexed nodes.
func (g *Grid) Len() int {
	n := 0
	for _, l := range g.location {
		if l != -1 {
			n++
		}
	}
	return n
}

// CellStats returns the number of non-empty cells and the maximum
// occupancy, for diagnostics.
func (g *Grid) CellStats() (nonEmpty, maxOccupancy int) {
	for _, c := range g.cells {
		if len(c) > 0 {
			nonEmpty++
			if len(c) > maxOccupancy {
				maxOccupancy = len(c)
			}
		}
	}
	return
}
