// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// All randomness in a simulation flows from a single root seed through
// named streams, so that independent subsystems (mobility, placement,
// hashing salt, workload) draw from statistically independent sequences
// while remaining byte-for-byte reproducible across runs and platforms.
//
// The generator is splitmix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014), which passes BigCrush
// when used as a 64-bit generator and is trivially seekable/splittable.
package rng

import (
	"math"
)

// Source is a deterministic 64-bit PRNG stream. The zero value is a valid
// stream seeded with 0; prefer New or Root.Stream for anything real.
//
// Source is NOT safe for concurrent use; give each goroutine its own
// stream (see Split).
type Source struct {
	state     uint64
	spare     float64 // cached second Box-Muller variate
	haveSpare bool
}

// golden gamma, the splitmix64 increment.
const gamma = 0x9E3779B97F4A7C15

// New returns a stream seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// NewLocal returns a stream seeded with seed by value, for stack-local
// derived draws (e.g. a per-pair shadowing variate keyed on an edge)
// that must not heap-allocate. The value is a full independent Source;
// take its address to call methods.
func NewLocal(seed uint64) Source {
	return Source{state: seed}
}

// mix64 is the splitmix64 output function (variant 13).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	return mix64(s.state)
}

// Split derives an independent child stream. The child's sequence is
// uncorrelated with the parent's subsequent output because both the
// state and the derivation constant are passed through the mixer.
func (s *Source) Split() *Source {
	return &Source{state: mix64(s.Uint64()) ^ 0xA5A5A5A5A5A5A5A5}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return s.boundedUint64(n)
}

// boundedUint64 uses Lemire's multiply-shift rejection method for an
// unbiased bounded draw.
func (s *Source) boundedUint64(n uint64) uint64 {
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	threshold := -n % n // == (2^64 - n) mod n
	for {
		v := s.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal variate via the polar Box-Muller
// transform. One variate per call; the spare is cached.
func (s *Source) Norm() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		r := u*u + v*v
		//lint:ignore floateq polar rejection sampling excludes the exact origin
		if r >= 1 || r == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(r) / r)
		s.spare = v * f
		s.haveSpare = true
		return u * f
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// 1-Float64() is in (0,1], avoiding log(0).
	return -math.Log(1-s.Float64()) / rate
}

// Poisson returns a Poisson-distributed variate with the given mean.
// The sampler is exact (chunked Knuth: count uniform factors until the
// running product crosses e^-mean, consuming the exponent in steps of
// 500 so the product never underflows), deterministic, and costs
// O(mean) uniform draws. A mean of 0 returns 0; negative or non-finite
// means panic.
func (s *Source) Poisson(mean float64) int {
	if mean < 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		panic("rng: Poisson with negative or non-finite mean")
	}
	//lint:ignore floateq exact zero mean is the degenerate no-arrivals case
	if mean == 0 {
		return 0
	}
	const step = 500
	left := mean
	k := 0
	p := 1.0
	for {
		k++
		p *= s.Float64()
		for p < 1 && left > 0 {
			if left > step {
				p *= math.Exp(step)
				left -= step
			} else {
				p *= math.Exp(left)
				left = 0
			}
		}
		if p <= 1 && left <= 0 {
			return k - 1
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Root derives named streams from a single experiment seed. Identical
// (seed, name) pairs always yield identical streams, independent of the
// order in which streams are requested.
type Root struct {
	seed uint64
}

// NewRoot returns a stream factory for the given experiment seed.
func NewRoot(seed uint64) *Root {
	return &Root{seed: seed}
}

// Seed reports the root seed.
func (r *Root) Seed() uint64 { return r.seed }

// Stream returns the deterministic stream for a subsystem name.
func (r *Root) Stream(name string) *Source {
	h := hashString(name)
	return New(mix64(r.seed ^ h))
}

// StreamN returns the deterministic stream for (name, n), e.g. a
// per-node mobility stream.
func (r *Root) StreamN(name string, n int) *Source {
	h := hashString(name)
	return New(mix64(r.seed^h) + gamma*uint64(n+1))
}

// hashString is FNV-1a 64.
func hashString(s string) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x00000100000001B3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
