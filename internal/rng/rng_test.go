package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		if v := s.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const n = 200000
	rate := 2.5
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean = %v, want %v", mean, 1/rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRootStreamStability(t *testing.T) {
	r1 := NewRoot(99)
	r2 := NewRoot(99)
	// Request order must not matter.
	a := r1.Stream("mobility").Uint64()
	_ = r1.Stream("placement").Uint64()
	_ = r2.Stream("placement").Uint64()
	b := r2.Stream("mobility").Uint64()
	if a != b {
		t.Fatal("named streams depend on request order")
	}
}

func TestRootStreamsIndependent(t *testing.T) {
	r := NewRoot(123)
	a := r.Stream("a")
	b := r.Stream("b")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("streams a and b collided %d times", same)
	}
}

func TestStreamNDistinct(t *testing.T) {
	r := NewRoot(7)
	seen := map[uint64]int{}
	for i := 0; i < 500; i++ {
		v := r.StreamN("node", i).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("StreamN collision between node %d and %d", prev, i)
		}
		seen[v] = i
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("parent and split child collided %d times", same)
	}
}

func TestRangeProperty(t *testing.T) {
	s := New(41)
	f := func(lo, span float64) bool {
		lo = math.Mod(lo, 1e6)
		span = math.Abs(math.Mod(span, 1e6)) + 1e-9
		v := s.Range(lo, lo+span)
		return v >= lo && v < lo+span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUnbiasedSmall(t *testing.T) {
	// Property: for arbitrary small n, draws stay in range.
	s := New(43)
	f := func(n uint16) bool {
		m := uint64(n%1000) + 1
		return s.Uint64n(m) < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

func TestPoissonDistribution(t *testing.T) {
	// Small mean (plain Knuth path): sample moments and the zero-class
	// probability must match the Poisson law. Bounds are ~5 sigma of
	// the respective estimators, so a correct sampler passes for every
	// seed and an off-by-one or biased one fails decisively.
	s := New(101)
	const (
		mean = 4.2
		n    = 200000
	)
	var sum, sumSq float64
	zeros := 0
	for i := 0; i < n; i++ {
		k := s.Poisson(mean)
		if k < 0 {
			t.Fatalf("negative Poisson draw %d", k)
		}
		sum += float64(k)
		sumSq += float64(k) * float64(k)
		if k == 0 {
			zeros++
		}
	}
	m := sum / n
	v := sumSq/n - m*m
	if tol := 5 * math.Sqrt(mean/n); math.Abs(m-mean) > tol {
		t.Errorf("mean = %v, want %v +- %v", m, mean, tol)
	}
	if tol := 5 * math.Sqrt((mean+2*mean*mean)/n); math.Abs(v-mean) > tol {
		t.Errorf("variance = %v, want %v +- %v", v, mean, tol)
	}
	p0 := math.Exp(-mean)
	if tol := 5 * math.Sqrt(p0*(1-p0)/n); math.Abs(float64(zeros)/n-p0) > tol {
		t.Errorf("P(0) = %v, want %v +- %v", float64(zeros)/n, p0, tol)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	// Large mean exercises the chunked-exponent path (mean > 500 would
	// underflow the naive Knuth product).
	s := New(7)
	const (
		mean = 1800.0
		n    = 20000
	)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		k := float64(s.Poisson(mean))
		sum += k
		sumSq += k * k
	}
	m := sum / n
	v := sumSq/n - m*m
	if tol := 5 * math.Sqrt(mean/n); math.Abs(m-mean) > tol {
		t.Errorf("mean = %v, want %v +- %v", m, mean, tol)
	}
	if r := v / mean; r < 0.9 || r > 1.1 {
		t.Errorf("variance/mean = %v, want ~1", r)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	s := New(3)
	if k := s.Poisson(0); k != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", k)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Poisson(%v) did not panic", bad)
				}
			}()
			s.Poisson(bad)
		}()
	}
}
