package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simnet"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	cfg := simnet.Config{
		N: 50, Seed: 1, Duration: 20, Warmup: 5,
		Observer: tr.Observer(),
	}
	if _, err := simnet.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Records() == 0 {
		t.Fatal("no records written")
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != tr.Records() {
		t.Fatalf("read %d records, wrote %d", len(recs), tr.Records())
	}
	// Times strictly increasing; level sizes well-formed.
	for i, r := range recs {
		if i > 0 && r.Time <= recs[i-1].Time {
			t.Fatalf("times not increasing at %d", i)
		}
		if len(r.LevelSizes) != r.Levels+1 {
			t.Fatalf("record %d: %d level sizes for %d levels", i, len(r.LevelSizes), r.Levels)
		}
		// Level 0 covers the giant component: most (possibly all) of
		// the 50 nodes.
		if r.LevelSizes[0] < 25 || r.LevelSizes[0] > 50 {
			t.Fatalf("record %d: level-0 size %d", i, r.LevelSizes[0])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	recs, err := Read(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty read = %v, %v", recs, err)
	}
}
