package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/simnet"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	cfg := simnet.Config{
		N: 50, Seed: 1, Duration: 20, Warmup: 5,
		Observer: tr.Observer(),
	}
	if _, err := simnet.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Records() == 0 {
		t.Fatal("no records written")
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != tr.Records() {
		t.Fatalf("read %d records, wrote %d", len(recs), tr.Records())
	}
	// Times strictly increasing; level sizes well-formed.
	for i, r := range recs {
		if i > 0 && r.Time <= recs[i-1].Time {
			t.Fatalf("times not increasing at %d", i)
		}
		if len(r.LevelSizes) != r.Levels+1 {
			t.Fatalf("record %d: %d level sizes for %d levels", i, len(r.LevelSizes), r.Levels)
		}
		// Level 0 covers the giant component: most (possibly all) of
		// the 50 nodes.
		if r.LevelSizes[0] < 25 || r.LevelSizes[0] > 50 {
			t.Fatalf("record %d: level-0 size %d", i, r.LevelSizes[0])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	recs, err := Read(strings.NewReader("{\"t\":1}\nnot json\n"))
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if errors.Is(err, ErrTruncated) {
		t.Fatalf("terminated interior garbage misreported as truncation: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed prefix lost: got %d records", len(recs))
	}
}

// TestReadTruncatedFinalLine is the killed-run scenario: the final
// record is cut mid-write with no newline. Read must return the
// parsed prefix and flag the fragment with ErrTruncated.
func TestReadTruncatedFinalLine(t *testing.T) {
	in := "{\"t\":1,\"levels\":2}\n{\"t\":2,\"levels\":2}\n{\"t\":3,\"lev"
	recs, err := Read(strings.NewReader(in))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want the 2-record prefix", len(recs))
	}
	if recs[0].Time != 1 || recs[1].Time != 2 {
		t.Fatalf("prefix mangled: %+v", recs)
	}
}

// TestReadTruncatedAtRecordBoundary: the kill landed between a
// complete record and its newline. The record is intact, so it is
// kept and no error is reported.
func TestReadTruncatedAtRecordBoundary(t *testing.T) {
	in := "{\"t\":1,\"levels\":2}\n{\"t\":2,\"levels\":3}"
	recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if len(recs) != 2 || recs[1].Time != 2 {
		t.Fatalf("got %+v, want both records", recs)
	}
}

// TestReadInteriorCorruptionFatal: damage followed by further records
// is file corruption, not a crash tail — the error must not be
// ErrTruncated, and the prefix before the damage is still returned.
func TestReadInteriorCorruptionFatal(t *testing.T) {
	in := "{\"t\":1}\n{\"t\":2,BROKEN}\n{\"t\":3}\n"
	recs, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("interior corruption accepted")
	}
	if errors.Is(err, ErrTruncated) {
		t.Fatalf("interior corruption misreported as truncation: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("prefix = %d records, want 1", len(recs))
	}
}

func TestReadBlankTail(t *testing.T) {
	recs, err := Read(strings.NewReader("{\"t\":1}\n\n  \n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("blank tail: recs=%d err=%v", len(recs), err)
	}
}

func TestReadEmpty(t *testing.T) {
	recs, err := Read(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty read = %v, %v", recs, err)
	}
}
