// Package trace provides structured JSONL tracing of simulation runs:
// one JSON object per scan tick summarizing the hierarchy shape and
// the handoff activity. The format is line-oriented so shell tooling
// (jq, awk) can post-process long runs without loading them whole.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/lm"
	"repro/internal/simnet"
)

// TickRecord is the JSONL schema for one scan tick.
type TickRecord struct {
	Time          float64 `json:"t"`
	Levels        int     `json:"levels"`
	LevelSizes    []int   `json:"level_sizes"`
	Transfers     int     `json:"transfers"`
	PhiPackets    int     `json:"phi_packets"`
	GammaPackets  int     `json:"gamma_packets"`
	Elections     int     `json:"elections"`
	Rejections    int     `json:"rejections"`
	Memberships   int     `json:"membership_changes"`
	ClusterLinkUp int     `json:"cluster_link_events"`
}

// Tracer serializes tick records to a writer.
type Tracer struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// New builds a tracer over w.
func New(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw)}
}

// Observer returns a simnet observer callback that records every tick.
func (t *Tracer) Observer() func(simnet.ObsEvent) {
	return func(ev simnet.ObsEvent) {
		t.Record(ev)
	}
}

// Record serializes one tick.
func (t *Tracer) Record(ev simnet.ObsEvent) {
	if t.err != nil {
		return
	}
	rec := TickRecord{
		Time:   ev.Time,
		Levels: ev.Hierarchy.L(),
	}
	for k := 0; k <= ev.Hierarchy.L(); k++ {
		rec.LevelSizes = append(rec.LevelSizes, len(ev.Hierarchy.LevelNodes(k)))
	}
	rec.Transfers = len(ev.Transfers)
	for _, tr := range ev.Transfers {
		if tr.Cause == lm.CauseMigration {
			rec.PhiPackets += tr.Packets
		} else {
			rec.GammaPackets += tr.Packets
		}
	}
	if d := ev.Diff; d != nil {
		//lint:ignore maprange commutative integer sum; the result is order-free
		for _, e := range d.Elections {
			rec.Elections += len(e)
		}
		//lint:ignore maprange commutative integer sum; the result is order-free
		for _, r := range d.Rejections {
			rec.Rejections += len(r)
		}
		rec.Memberships = len(d.Memberships)
		//lint:ignore maprange commutative integer sum; the result is order-free
		for _, evs := range d.MigrationLinkEvents {
			rec.ClusterLinkUp += len(evs)
		}
	}
	if err := t.enc.Encode(&rec); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Close flushes buffered records and returns the first error seen.
func (t *Tracer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Records reports how many ticks were written.
func (t *Tracer) Records() int { return t.n }

// Read parses a JSONL trace back into records (for tests and tools).
func Read(r io.Reader) ([]TickRecord, error) {
	dec := json.NewDecoder(r)
	var out []TickRecord
	for {
		var rec TickRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}
