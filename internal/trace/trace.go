// Package trace provides structured JSONL tracing of simulation runs:
// one JSON object per scan tick summarizing the hierarchy shape and
// the handoff activity. The format is line-oriented so shell tooling
// (jq, awk) can post-process long runs without loading them whole.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/lm"
	"repro/internal/simnet"
)

// ErrTruncated reports a trace whose final line is an unparseable
// partial record — the signature of a run killed mid-write. Read
// still returns every complete record before it, so killed runs keep
// their measured prefix. Callers distinguish it with errors.Is.
var ErrTruncated = errors.New("trace: truncated trailing record")

// TickRecord is the JSONL schema for one scan tick.
type TickRecord struct {
	Time          float64 `json:"t"`
	Levels        int     `json:"levels"`
	LevelSizes    []int   `json:"level_sizes"`
	Transfers     int     `json:"transfers"`
	PhiPackets    int     `json:"phi_packets"`
	GammaPackets  int     `json:"gamma_packets"`
	Elections     int     `json:"elections"`
	Rejections    int     `json:"rejections"`
	Memberships   int     `json:"membership_changes"`
	ClusterLinkUp int     `json:"cluster_link_events"`
}

// Tracer serializes tick records to a writer.
type Tracer struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// New builds a tracer over w.
func New(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw)}
}

// Observer returns a simnet observer callback that records every tick.
func (t *Tracer) Observer() func(simnet.ObsEvent) {
	return func(ev simnet.ObsEvent) {
		t.Record(ev)
	}
}

// Record serializes one tick.
func (t *Tracer) Record(ev simnet.ObsEvent) {
	if t.err != nil {
		return
	}
	rec := TickRecord{
		Time:   ev.Time,
		Levels: ev.Hierarchy.L(),
	}
	for k := 0; k <= ev.Hierarchy.L(); k++ {
		rec.LevelSizes = append(rec.LevelSizes, len(ev.Hierarchy.LevelNodes(k)))
	}
	rec.Transfers = len(ev.Transfers)
	for _, tr := range ev.Transfers {
		if tr.Cause == lm.CauseMigration {
			rec.PhiPackets += tr.Packets
		} else {
			rec.GammaPackets += tr.Packets
		}
	}
	if d := ev.Diff; d != nil {
		//lint:ignore maprange commutative integer sum; the result is order-free
		for _, e := range d.Elections {
			rec.Elections += len(e)
		}
		//lint:ignore maprange commutative integer sum; the result is order-free
		for _, r := range d.Rejections {
			rec.Rejections += len(r)
		}
		rec.Memberships = len(d.Memberships)
		//lint:ignore maprange commutative integer sum; the result is order-free
		for _, evs := range d.MigrationLinkEvents {
			rec.ClusterLinkUp += len(evs)
		}
	}
	if err := t.enc.Encode(&rec); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Close flushes buffered records and returns the first error seen.
func (t *Tracer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Records reports how many ticks were written.
func (t *Tracer) Records() int { return t.n }

// Read parses a JSONL trace back into records (for tests and tools).
//
// Crash tolerance: a run killed mid-write leaves a partial final line
// with no newline terminator. Read returns the successfully parsed
// prefix together with an error wrapping ErrTruncated for that
// trailing fragment, instead of discarding the whole trace. A final
// line that parses completely is kept even without its newline (the
// kill landed exactly between the record and its terminator). Corrupt
// *interior* records — a garbage line followed by more lines — remain
// fatal: they mean the file is damaged, not merely cut short, though
// the prefix parsed so far is still returned alongside the error.
func Read(r io.Reader) ([]TickRecord, error) {
	br := bufio.NewReader(r)
	var out []TickRecord
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return out, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		terminated := err == nil
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			var rec TickRecord
			if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
				if !terminated {
					// Unterminated final line: the partial record a
					// killed run leaves behind.
					return out, fmt.Errorf("%w after %d records: %v", ErrTruncated, len(out), uerr)
				}
				return out, fmt.Errorf("trace: record %d: %w", len(out), uerr)
			}
			out = append(out, rec)
		}
		if !terminated {
			return out, nil
		}
	}
}
