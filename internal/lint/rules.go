package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// checker accumulates the raw findings of one package before ignore
// filtering.
type checker struct {
	m   *Module
	pkg *Package
	cfg Config

	findings []Finding
}

func (c *checker) add(f Finding) { c.findings = append(c.findings, f) }

func (c *checker) addf(pos token.Pos, rule, format string, args ...any) {
	c.add(posFinding(c.m, c.m.fset.Position(pos), rule, sprintf(format, args...)))
}

func (c *checker) addStrict(pos token.Pos, rule, format string, args ...any) {
	f := posFinding(c.m, c.m.fset.Position(pos), rule, sprintf(format, args...))
	f.strict = true
	c.add(f)
}

// ---------------------------------------------------------------- maprange

// maprange flags `for … range` over a map-typed value: the runtime
// randomizes map iteration order, so any order-sensitive use breaks
// trace reproducibility. The one allowed idiom is the key harvest
//
//	for k := range m { keys = append(keys, k) }
//
// whose body does nothing but collect keys for subsequent sorting.
func (c *checker) maprange(f *ast.File) {
	info := c.pkg.Info
	if info == nil {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		if isKeyHarvest(rs) {
			return true
		}
		c.addf(rs.Pos(), "maprange",
			"range over map %s has nondeterministic order; iterate sorted keys or annotate //lint:ignore maprange <reason>",
			types.ExprString(rs.X))
		return true
	})
}

// isKeyHarvest reports whether the range body is exactly
// `keys = append(keys, k)` with k the range key.
func isKeyHarvest(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	if !ok || arg1.Name != key.Name {
		return false
	}
	return types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0])
}

// ---------------------------------------------------------- forbiddenimport

// forbiddenImports enforces the import hygiene rules: no math/rand or
// crypto/rand inside RandScope (all randomness flows through
// internal/rng) and no time import anywhere (simulated time flows
// through the DES clock). Outside SimPackages a time import may be
// waived with //lint:ignore forbiddenimport <reason>; inside them the
// finding is strict.
func (c *checker) forbiddenImports(f *ast.File) {
	rel := c.pkg.RelPath
	inRandScope := false
	for _, prefix := range c.cfg.RandScope {
		if strings.HasPrefix(rel+"/", prefix) || strings.HasPrefix(rel, prefix) {
			inRandScope = true
		}
	}
	isSimPkg := false
	for _, p := range c.cfg.SimPackages {
		if rel == p {
			isSimPkg = true
		}
	}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if inRandScope {
			for _, bad := range c.cfg.RandForbidden {
				if path == bad {
					c.addStrict(imp.Pos(), "forbiddenimport",
						"import %q is forbidden under internal/: all randomness must flow through internal/rng", path)
				}
			}
		}
		if path == "time" && len(c.cfg.SimPackages) > 0 {
			if isSimPkg {
				c.addStrict(imp.Pos(), "forbiddenimport",
					"import \"time\" is forbidden in simulation package %s: all time must flow through the DES clock (annotations cannot waive this)", rel)
			} else {
				c.addf(imp.Pos(), "forbiddenimport",
					"import \"time\" couples the build to wall-clock time; route it through an annotated helper (//lint:ignore forbiddenimport <reason>)")
			}
		}
	}
}

// ----------------------------------------------------------------- floateq

// floateq flags == and != between floating-point operands: exact float
// comparison is sensitive to evaluation order and platform rounding,
// which is exactly the drift the determinism contract excludes.
// Approved epsilon helpers (function name containing an
// EpsilonMarkers substring) and the x != x NaN idiom are exempt, as
// are constant-only comparisons.
func (c *checker) floateq(f *ast.File) {
	info := c.pkg.Info
	if info == nil {
		return
	}
	for _, decl := range f.Decls {
		fd, isFunc := decl.(*ast.FuncDecl)
		if isFunc && c.isEpsilonHelper(fd.Name.Name) {
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := info.Types[be.X], info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant folded at compile time
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x: the NaN check idiom
			}
			c.addf(be.OpPos, "floateq",
				"floating-point %s comparison is exact; use an epsilon helper or annotate //lint:ignore floateq <reason>", be.Op)
			return true
		})
	}
}

func (c *checker) isEpsilonHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range c.cfg.EpsilonMarkers {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ------------------------------------------------------------------ rawrng

// rawrng flags construction of an rng stream by zero value, composite
// literal, or new(): streams must come from rng.New, Root.Stream,
// StreamN, or Split so that every draw is attributable to the
// experiment seed. The rng package itself is exempt.
func (c *checker) rawrng(f *ast.File) {
	info := c.pkg.Info
	if info == nil || c.pkg.Name == "rng" {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if isRngSource(info.TypeOf(n)) {
				c.addf(n.Pos(), "rawrng",
					"construct rng streams with rng.New, Root.Stream, or Split, not a composite literal")
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && isRngSource(info.TypeOf(n.Args[0])) {
					c.addf(n.Pos(), "rawrng",
						"construct rng streams with rng.New, Root.Stream, or Split, not new(rng.Source)")
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil && len(n.Values) == 0 && isRngSource(info.TypeOf(n.Type)) {
				c.addf(n.Pos(), "rawrng",
					"zero-value rng.Source is a seed-0 stream; construct streams with rng.New, Root.Stream, or Split")
			}
		}
		return true
	})
}

// isRngSource reports whether t is the (non-pointer) Source type of a
// package named rng.
func isRngSource(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Source" && obj.Pkg() != nil && obj.Pkg().Name() == "rng"
}

func isRngSourceOrPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isRngSource(t)
}

// --------------------------------------------------------------- sharedrng

// sharedrng flags a go statement whose function literal captures an
// rng stream from the enclosing scope: rng.Source is documented as not
// goroutine-safe, and concurrent draws are both racy and
// order-nondeterministic. Pass each goroutine its own Split() stream.
func (c *checker) sharedrng(f *ast.File) {
	info := c.pkg.Info
	if info == nil {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		reported := map[types.Object]bool{}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || reported[v] || !isRngSourceOrPtr(v.Type()) {
				return true
			}
			if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
				return true // declared inside the literal (param or local)
			}
			reported[v] = true
			c.addf(id.Pos(), "sharedrng",
				"goroutine captures rng stream %s from the enclosing scope; rng.Source is not goroutine-safe — pass each goroutine its own Split()", v.Name())
			return true
		})
		return true
	})
}

// ---------------------------------------------------------------- statemut

// statemut confines direct simulator-state mutation to tick-phase
// code. A write through a value of a Config.StateTypes type — field
// assignment, op-assignment, ++/--, or a write into an element of a
// state-typed field — is only legal inside a method declared on a
// state type or inside an allow-listed StateMutators function. Every
// other site is flagged: the runtime invariant checker reconciles
// before/after snapshots across tick phases, and an out-of-band
// mutation would invalidate exactly the reconciliation it relies on.
func (c *checker) statemut(f *ast.File) {
	info := c.pkg.Info
	if info == nil || len(c.cfg.StateTypes) == 0 {
		return
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if c.isStateMethod(fd) || c.isStateMutator(fd) {
			continue // tick-phase code: free to mutate its own state
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true // := declares locals, never state fields
				}
				for _, lhs := range n.Lhs {
					c.checkStateWrite(lhs, fd.Name.Name)
				}
			case *ast.IncDecStmt:
				c.checkStateWrite(n.X, fd.Name.Name)
			}
			return true
		})
	}
}

// checkStateWrite flags lhs if, after peeling index/deref/paren
// wrappers, it is a selector whose base is state-typed.
func (c *checker) checkStateWrite(lhs ast.Expr, fn string) {
	info := c.pkg.Info
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if c.isStateType(info.TypeOf(e.X)) {
				c.addf(lhs.Pos(), "statemut",
					"direct write to simulator state %s outside tick-phase code; mutate state only in the state type's methods or a registered mutator (%s is neither), or annotate //lint:ignore statemut <reason>",
					types.ExprString(e), fn)
				return
			}
			lhs = e.X
		default:
			return
		}
	}
}

// isStateMethod reports whether fd is declared on (a pointer to) one
// of the configured state types.
func (c *checker) isStateMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return c.isStateType(c.pkg.Info.TypeOf(fd.Recv.List[0].Type))
}

func (c *checker) isStateMutator(fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false
	}
	for _, name := range c.cfg.StateMutators {
		if fd.Name.Name == name {
			return true
		}
	}
	return false
}

// isStateType reports whether t (possibly behind a pointer) is one of
// cfg.StateTypes, each spelled "<pkg-path-suffix>.<TypeName>".
func (c *checker) isStateType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	for _, spec := range c.cfg.StateTypes {
		dot := strings.LastIndex(spec, ".")
		if dot < 0 || obj.Name() != spec[dot+1:] {
			continue
		}
		pkgSpec := spec[:dot]
		if path == pkgSpec || strings.HasSuffix(path, "/"+pkgSpec) {
			return true
		}
	}
	return false
}

// ------------------------------------------------------------------ shared

func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}

func filepathRel(base, target string) (string, error) {
	rel, err := filepath.Rel(base, target)
	if err != nil {
		return "", err
	}
	return filepath.ToSlash(rel), nil
}
