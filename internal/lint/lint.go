// Package lint is manetlint: a project-specific static analyzer that
// turns this repository's determinism contract into machine-checked
// invariants. Every Θ(log²|V|) overhead measurement the reproduction
// reports is only trustworthy if reruns with the same seed produce
// byte-for-byte identical traces, so the analyzer rejects the known
// sources of silent nondeterminism:
//
//	maprange        range over a map in non-test code (iteration order
//	                is randomized by the runtime)
//	forbiddenimport math/rand or crypto/rand under internal/ (all
//	                randomness flows through internal/rng), and time
//	                anywhere (all simulated time flows through the DES
//	                clock; wall-clock use needs an annotated helper)
//	floateq         == or != between floating-point operands outside
//	                approved epsilon helpers
//	rawrng          constructing an rng.Source by zero value or
//	                composite literal instead of rng.New, Root.Stream,
//	                or Split
//	sharedrng       a go statement whose function literal captures an
//	                rng stream from the enclosing scope (rng.Source is
//	                not goroutine-safe)
//	statemut        a direct field write to a simulator-state type
//	                (looper, stateRun) outside that type's own methods
//	                or the allow-listed setup constructors — state must
//	                only change inside tick phases, or the invariant
//	                checker's before/after reconciliation is meaningless
//	typecheck       parse or type errors (reported, never a panic)
//	badignore       a malformed //lint:ignore directive
//
// A site that is deliberately exempt carries an annotation on its own
// line or the line above:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory. Inside simulation packages the time import
// rule is strict: it cannot be waived by annotation.
package lint

import (
	"fmt"
	"go/ast"
	"go/scanner"
	"go/token"
	"sort"
	"strings"
)

// Config selects where each rule applies. The zero value disables the
// scoped rules; use DefaultConfig for this repository's policy.
type Config struct {
	// RandForbidden are import paths banned inside RandScope.
	RandForbidden []string
	// RandScope are module-relative path prefixes (slash form, e.g.
	// "internal/") where RandForbidden applies strictly (annotations
	// cannot waive it).
	RandScope []string
	// SimPackages are module-relative package paths where importing
	// "time" is strictly forbidden — no annotation waives it there.
	// Everywhere else in the module a time import is still flagged but
	// may carry a //lint:ignore forbiddenimport annotation.
	SimPackages []string
	// EpsilonMarkers are lowercase substrings; a function whose name
	// contains one is an approved epsilon helper and may compare
	// floats with == / !=.
	EpsilonMarkers []string
	// StateTypes are simulator-state types, each named as
	// "<package-path-suffix>.<TypeName>" (e.g. "internal/simnet.looper").
	// Direct field writes through a value of one of these types are
	// confined to the types' own methods (tick-phase code) and the
	// StateMutators allow list; anywhere else they are a statemut
	// finding. Empty disables the rule.
	StateTypes []string
	// StateMutators are names of plain functions (constructors/setup)
	// allowed to mutate StateTypes directly.
	StateMutators []string
}

// DefaultConfig is the policy enforced on this repository.
func DefaultConfig() Config {
	return Config{
		RandForbidden: []string{"math/rand", "math/rand/v2", "crypto/rand"},
		RandScope:     []string{"internal/"},
		SimPackages: []string{
			"internal/sim",
			"internal/simnet",
			"internal/cluster",
			"internal/lm",
			"internal/mobility",
			"internal/workload",
		},
		EpsilonMarkers: []string{"approx", "almost", "close", "eps"},
		StateTypes:     []string{"internal/simnet.looper", "internal/simnet.stateRun"},
		StateMutators:  []string{"setupRun", "newStateRun"},
	}
}

// Finding is one rule violation at a source position.
type Finding struct {
	File    string `json:"file"` // module-root-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`

	strict bool // not waivable by //lint:ignore
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Run lints the packages matched by patterns in the module rooted at
// root. Directory patterns resolve relative to base. The returned
// findings are sorted by position; a non-nil error means the module
// itself could not be loaded (findings still describe per-file parse
// and type problems).
func Run(root, base string, patterns []string, cfg Config) ([]Finding, error) {
	m, err := NewModule(root)
	if err != nil {
		return nil, err
	}
	paths, err := m.Expand(base, patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, p := range paths {
		pkg, err := m.Load(p)
		if err != nil {
			return nil, err
		}
		all = append(all, CheckPackage(m, pkg, cfg)...)
	}
	sortFindings(all)
	return all, nil
}

// CheckPackage runs every rule over one loaded package and returns the
// surviving (non-ignored) findings, unsorted.
func CheckPackage(m *Module, pkg *Package, cfg Config) []Finding {
	c := &checker{m: m, pkg: pkg, cfg: cfg}

	for _, err := range pkg.ParseErrs {
		if list, ok := err.(scanner.ErrorList); ok {
			for _, e := range list {
				c.add(posFinding(m, e.Pos, "typecheck", e.Msg))
			}
			continue
		}
		c.add(Finding{File: pkg.RelPathOrDot(), Line: 1, Col: 1, Rule: "typecheck", Message: err.Error()})
	}
	for _, te := range pkg.TypeErrors {
		c.addf(te.Pos, "typecheck", "%s", te.Msg)
	}

	ig := collectIgnores(m, pkg, c)
	for _, f := range pkg.Files {
		c.maprange(f)
		c.floateq(f)
		c.rawrng(f)
		c.sharedrng(f)
		c.statemut(f)
		c.forbiddenImports(f)
	}
	// Import hygiene applies to test files too: a _test.go pulling in
	// math/rand undermines the same reproducibility guarantees.
	for _, f := range pkg.TestFiles {
		c.forbiddenImports(f)
	}

	var out []Finding
	for _, f := range c.findings {
		if !f.strict && ig.covers(f.File, f.Line, f.Rule) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// RelPathOrDot names the package directory for findings without a
// position ("." for the module root).
func (p *Package) RelPathOrDot() string {
	if p.RelPath == "" {
		return "."
	}
	return p.RelPath
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

func posFinding(m *Module, pos token.Position, rule, msg string) Finding {
	return Finding{
		File:    m.relFile(pos.Filename),
		Line:    pos.Line,
		Col:     pos.Column,
		Rule:    rule,
		Message: msg,
	}
}

// ignoreSet records //lint:ignore directives: file → line → rules
// waived on that line and the next.
type ignoreSet map[string]map[int]map[string]bool

func (ig ignoreSet) covers(file string, line int, rule string) bool {
	lines := ig[file]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if rules := lines[l]; rules[rule] || rules["all"] {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectIgnores scans every comment in the package (test files
// included) for ignore directives, reporting malformed ones through c.
func collectIgnores(m *Module, pkg *Package, c *checker) ignoreSet {
	ig := ignoreSet{}
	files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
	files = append(files, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				rest, ok := strings.CutPrefix(cm.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					c.addf(cm.Pos(), "badignore",
						"malformed ignore directive: want %s <rule> <reason>", ignorePrefix)
					continue
				}
				pos := m.fset.Position(cm.Pos())
				file := m.relFile(pos.Filename)
				if ig[file] == nil {
					ig[file] = map[int]map[string]bool{}
				}
				if ig[file][pos.Line] == nil {
					ig[file][pos.Line] = map[string]bool{}
				}
				for _, rule := range strings.Split(fields[0], ",") {
					ig[file][pos.Line][rule] = true
				}
			}
		}
	}
	return ig
}

func (m *Module) relFile(filename string) string {
	if rel, err := filepathRel(m.Root, filename); err == nil {
		return rel
	}
	return filename
}
