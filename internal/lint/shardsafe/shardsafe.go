// Package shardsafe defines an Analyzer that enforces the determinism
// contract of internal/par at its call sites: a callback passed to
// par.Pool.Run or par.Pool.RunShards may write captured state only
// through worker- or shard-indexed slots, so every parallel phase's
// outputs stay disjoint and byte-identical to the serial path.
//
// Inside such a callback the analyzer flags:
//
//   - writes to shared captured variables (plain assignment or
//     op-assignment whose target peels down to captured state without
//     passing a shard-indexed slot);
//   - writes into captured maps (map access is not a slot: maps are
//     neither index-disjoint nor goroutine-safe), including clear and
//     delete;
//   - channel sends (arrival order is scheduling-dependent);
//   - non-atomic counter increments (++/--/+=) on captured state.
//
// A slice-element write with an index the analyzer cannot derive from
// the worker/shard parameter is still accepted when an enclosing if
// guards the index against a shard-derived bound — the row-range
// ownership idiom of topology.BuildUnitDiskIntoPar.
//
// The analyzer also checks the callback's enclosing function for shard
// slots that alias a shared backing array: assigning a two-index slice
// expression (base[lo:hi], no capacity bound) into a captured slot
// lets one shard's append bleed into its neighbor's region; use a
// three-index slice or dedicated buffers.
package shardsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc:  "confine par.Pool callback writes to worker/shard-indexed slots",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	if info == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isPoolFanout(info, call) {
					return true
				}
				fl, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
				if !ok {
					return true
				}
				checkAliasedSlots(pass, fd, fl)
				newCallbackChecker(pass, fl).check()
				return true
			})
		}
	}
	return nil, nil
}

// isPoolFanout reports whether call is par.Pool.Run or
// par.Pool.RunShards with a final func-literal-compatible argument.
func isPoolFanout(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Run" && sel.Sel.Name != "RunShards") || len(call.Args) == 0 {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Name() == "par"
}

// checkAliasedSlots scans the callback's enclosing function for
// assignments of two-index slice expressions into state the callback
// captures: slot setup like slots[i] = backing[lo:hi] leaves no
// capacity bound between adjacent shards.
func checkAliasedSlots(pass *analysis.Pass, fd *ast.FuncDecl, fl *ast.FuncLit) {
	info := pass.TypesInfo
	captured := capturedVars(info, fl)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == fl {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			se, ok := ast.Unparen(as.Rhs[i]).(*ast.SliceExpr)
			if !ok || se.Slice3 {
				continue
			}
			if _, isSlice := typeUnderlying(info, se.X).(*types.Slice); !isSlice {
				if _, isArr := typeUnderlying(info, se.X).(*types.Pointer); !isArr {
					continue
				}
			}
			base := baseVar(info, lhs)
			if base == nil || !captured[base] {
				continue
			}
			if _, indexed := ast.Unparen(lhs).(*ast.IndexExpr); !indexed {
				continue
			}
			pass.Reportf(as.Pos(),
				"shard slot %s aliases a shared backing array (two-index slice %s); a parallel append can overrun into the next shard — use a three-index slice [lo:hi:hi] or dedicated buffers",
				types.ExprString(lhs), types.ExprString(as.Rhs[i]))
		}
		return true
	})
}

func typeUnderlying(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// capturedVars returns the variables referenced by fl but declared
// outside it.
func capturedVars(info *types.Info, fl *ast.FuncLit) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(fl, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() && (v.Pos() < fl.Pos() || v.Pos() > fl.End()) {
			out[v] = true
		}
		return true
	})
	return out
}

// baseVar peels selectors, indexes, derefs, and parens down to the
// root identifier's variable.
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// callbackChecker analyzes one Run/RunShards callback body.
type callbackChecker struct {
	pass *analysis.Pass
	fl   *ast.FuncLit

	indexParams  map[*types.Var]bool // the worker/shard parameters
	shardDerived map[*types.Var]bool // locals data-derived from them
	dirtyLocals  map[*types.Var]bool // locals aliasing captured state
}

func newCallbackChecker(pass *analysis.Pass, fl *ast.FuncLit) *callbackChecker {
	c := &callbackChecker{
		pass:         pass,
		fl:           fl,
		indexParams:  map[*types.Var]bool{},
		shardDerived: map[*types.Var]bool{},
		dirtyLocals:  map[*types.Var]bool{},
	}
	info := pass.TypesInfo
	for _, field := range fl.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				c.indexParams[v] = true
				c.shardDerived[v] = true
			}
		}
	}
	return c
}

func (c *callbackChecker) check() {
	c.classifyLocals()
	c.walk(c.fl.Body, nil)
}

// classifyLocals runs two fixpoints over the callback body: which
// locals are shard-derived (assigned from expressions mentioning a
// worker/shard parameter), and which locals are dirty aliases of
// captured state (reference-typed values reached without a
// shard-indexed slot on the way).
func (c *callbackChecker) classifyLocals() {
	info := c.pass.TypesInfo
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.fl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			derived := false
			for _, rhs := range as.Rhs {
				if c.mentionsShardDerived(rhs) {
					derived = true
				}
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.ObjectOf(id).(*types.Var)
				if !ok || !c.declaredInside(v) {
					continue
				}
				if derived && !c.shardDerived[v] {
					c.shardDerived[v] = true
					changed = true
				}
				rhs := ast.Expr(nil)
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs != nil && isRefType(info.TypeOf(id)) && c.tainted(rhs) && !c.dirtyLocals[v] {
					c.dirtyLocals[v] = true
					changed = true
				}
			}
			return true
		})
	}
}

func (c *callbackChecker) declaredInside(v *types.Var) bool {
	return v.Pos() >= c.fl.Pos() && v.Pos() <= c.fl.End()
}

func (c *callbackChecker) mentionsShardDerived(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && c.shardDerived[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// tainted reports whether evaluating e can yield an alias into shared
// captured state: a reference to a captured (or dirty-local) variable
// not sanitized by a shard-derived index on the way. Function calls
// are assumed clean (a heuristic the package doc records).
func (c *callbackChecker) tainted(e ast.Expr) bool {
	info := c.pass.TypesInfo
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := info.ObjectOf(x).(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		if !c.declaredInside(v) {
			return true
		}
		return c.dirtyLocals[v]
	case *ast.ParenExpr:
		return c.tainted(x.X)
	case *ast.StarExpr:
		return c.tainted(x.X)
	case *ast.UnaryExpr:
		return c.tainted(x.X)
	case *ast.SelectorExpr:
		return c.tainted(x.X)
	case *ast.SliceExpr:
		return c.tainted(x.X)
	case *ast.IndexExpr:
		if c.mentionsShardDerived(x.Index) {
			return false // shard-indexed slot: this shard's private view
		}
		return c.tainted(x.X)
	}
	return false
}

// walk visits statements tracking the conditions of enclosing if
// statements (for the guarded-index idiom).
func (c *callbackChecker) walk(n ast.Node, guards []ast.Expr) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.IfStmt:
		c.walk(s.Init, guards)
		c.walk(s.Body, append(guards, s.Cond))
		c.walk(s.Else, guards)
		return
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.walkExpr(rhs, guards)
		}
		if s.Tok.IsOperator() && s.Tok.String() != ":=" && s.Tok.String() != "=" {
			// Op-assignment (+=, |=, …): a read-modify-write.
			for _, lhs := range s.Lhs {
				c.checkWrite(lhs, guards, "non-atomic op-assignment")
			}
			return
		}
		if s.Tok.String() == "=" {
			for _, lhs := range s.Lhs {
				c.checkWrite(lhs, guards, "write")
			}
		}
		return
	case *ast.IncDecStmt:
		c.checkWrite(s.X, guards, "non-atomic counter increment")
		return
	case *ast.SendStmt:
		c.pass.Reportf(s.Arrow,
			"channel send inside a par.Pool callback; arrival order is scheduling-dependent — collect per-shard outputs and merge in shard order")
		c.walkExpr(s.Value, guards)
		return
	case *ast.CallExpr:
		c.checkBuiltinMutation(s)
	}
	// Generic descent for every other node kind.
	children(n, func(child ast.Node) {
		c.walk(child, guards)
	})
}

// walkExpr descends into expressions that can contain statements
// (function literals) or further calls.
func (c *callbackChecker) walkExpr(e ast.Expr, guards []ast.Expr) {
	c.walk(e, guards)
}

// checkBuiltinMutation flags clear/delete on captured maps.
func (c *callbackChecker) checkBuiltinMutation(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if id.Name != "clear" && id.Name != "delete" {
		return
	}
	arg := call.Args[0]
	if _, isMap := typeUnderlying(c.pass.TypesInfo, arg).(*types.Map); !isMap {
		return
	}
	if c.tainted(arg) {
		c.pass.Reportf(call.Pos(),
			"%s on shared captured map %s inside a par.Pool callback; maps are not shard-indexed slots — use a per-worker map slot",
			id.Name, types.ExprString(arg))
	}
}

// checkWrite validates one write target inside the callback.
func (c *callbackChecker) checkWrite(lhs ast.Expr, guards []ast.Expr, kind string) {
	info := c.pass.TypesInfo
	e := ast.Unparen(lhs)
	sawShardIndex := false
	var unguardedIndexes []ast.Expr
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			if _, isMap := typeUnderlying(info, x.X).(*types.Map); isMap {
				if c.tainted(x.X) {
					c.pass.Reportf(lhs.Pos(),
						"map write to shared captured map %s inside a par.Pool callback; maps are not shard-indexed slots — use a per-worker map slot",
						types.ExprString(x.X))
				}
				return
			}
			if c.mentionsShardDerived(x.Index) {
				sawShardIndex = true
			} else {
				unguardedIndexes = append(unguardedIndexes, x.Index)
			}
			e = x.X
		case *ast.Ident:
			v, ok := info.ObjectOf(x).(*types.Var)
			if !ok {
				return
			}
			if c.declaredInside(v) && !c.dirtyLocals[v] {
				return // private local state
			}
			if sawShardIndex {
				return // worker/shard-indexed slot: disjoint by contract
			}
			if len(unguardedIndexes) > 0 && c.indexGuarded(unguardedIndexes, guards) {
				return // row-range ownership: index checked against a shard-derived bound
			}
			c.pass.Reportf(lhs.Pos(),
				"%s to shared captured state %s inside a par.Pool callback; route it through a worker/shard-indexed slot (or guard the index against a shard-derived bound)",
				kind, types.ExprString(lhs))
			return
		default:
			return
		}
	}
}

// indexGuarded reports whether some enclosing if condition compares a
// variable of one of the index expressions against a shard-derived
// value — the `if a >= lo && a < hi` ownership idiom.
func (c *callbackChecker) indexGuarded(indexes []ast.Expr, guards []ast.Expr) bool {
	info := c.pass.TypesInfo
	indexVars := map[*types.Var]bool{}
	for _, ix := range indexes {
		ast.Inspect(ix, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.ObjectOf(id).(*types.Var); ok {
					indexVars[v] = true
				}
			}
			return true
		})
	}
	for _, g := range guards {
		ok := false
		ast.Inspect(g, func(n ast.Node) bool {
			be, isCmp := n.(*ast.BinaryExpr)
			if !isCmp {
				return true
			}
			switch be.Op.String() {
			case "<", "<=", ">", ">=", "==":
			default:
				return true
			}
			left := c.mentionsAny(be.X, indexVars)
			right := c.mentionsAny(be.Y, indexVars)
			if (left && c.mentionsShardDerived(be.Y)) || (right && c.mentionsShardDerived(be.X)) {
				ok = true
			}
			return true
		})
		if ok {
			return true
		}
	}
	return false
}

func (c *callbackChecker) mentionsAny(e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// isRefType reports whether a value of type t can alias other state:
// slices, maps, pointers, and channels.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// children invokes fn for each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			fn(child)
		}
		return false
	})
}
