package shardsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/shardsafe"
)

func TestShardsafe(t *testing.T) {
	analysistest.Run(t, "testdata", shardsafe.Analyzer, "a")
}
