module fix.example/shardsafe

go 1.22
