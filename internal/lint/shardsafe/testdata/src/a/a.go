// Package a exercises the shardsafe analyzer: callbacks handed to
// par.Pool.Run / RunShards may write captured state only through
// worker- or shard-indexed slots.
package a

import "fix.example/shardsafe/par"

func violations(p *par.Pool, out []int, m map[int]int, ch chan int) {
	total := 0
	count := 0
	p.Run(func(w int) {
		out[w] = w // ok: worker-indexed slot
		total = w  // want `write to shared captured state total inside a par.Pool callback`
		total += w // want `non-atomic op-assignment to shared captured state total`
		count++    // want `non-atomic counter increment to shared captured state count`
		m[w] = w   // want `map write to shared captured map m`
		clear(m)   // want `clear on shared captured map m`
		ch <- w    // want `channel send inside a par.Pool callback`
	})
	_, _ = total, count
}

func guarded(p *par.Pool, rows []int, edges []int) {
	p.RunShards(4, func(_, sh int) {
		lo, hi := sh*8, sh*8+8
		for _, e := range edges {
			if e >= lo && e < hi {
				rows[e] = 1 // ok: index guarded against a shard-derived bound
			}
		}
	})
}

func aliased(p *par.Pool, slots [][]int, back []int) {
	for sh := 0; sh < 4; sh++ {
		lo, hi := sh*8, sh*8+8
		slots[sh] = back[lo:hi] // want `shard slot slots\[sh\] aliases a shared backing array`
	}
	p.RunShards(4, func(_, sh int) {
		slots[sh] = append(slots[sh], sh) // ok: shard-indexed slot
	})
}

func dedicated(p *par.Pool, slots [][]int, back []int) {
	for sh := 0; sh < 4; sh++ {
		lo, hi := sh*8, sh*8+8
		slots[sh] = back[lo:hi:hi] // ok: the three-index slice caps the slot
	}
	p.RunShards(4, func(_, sh int) {
		slots[sh] = append(slots[sh], sh)
	})
}
