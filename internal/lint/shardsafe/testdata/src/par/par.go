// Package par is a fixture stand-in for the real worker pool; the
// analyzer recognizes Pool.Run / Pool.RunShards by package, type, and
// method name.
package par

// Pool fans callbacks out over workers.
type Pool struct {
	n int
}

// NewPool returns a pool of n workers.
func NewPool(n int) *Pool { return &Pool{n: n} }

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.n }

// Run invokes fn once per worker.
func (p *Pool) Run(fn func(w int)) {
	for w := 0; w < p.n; w++ {
		fn(w)
	}
}

// RunShards invokes fn once per shard.
func (p *Pool) RunShards(shards int, fn func(w, s int)) {
	for s := 0; s < shards; s++ {
		fn(0, s)
	}
}
