// Package timeimport is outside the simulation packages: its time
// import is flagged unless annotated.
package timeimport

import "time"

// Elapsed uses wall-clock time without a waiver: flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
