package timeimport

//lint:ignore forbiddenimport wall-clock benchmark timing, never simulated time
import "time"

// Stamp is the annotated wall-clock helper pattern.
func Stamp() time.Time {
	return time.Now()
}
