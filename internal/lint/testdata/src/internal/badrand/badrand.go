// Package badrand imports forbidden randomness sources under
// internal/: both findings are strict.
package badrand

import (
	crand "crypto/rand"
	"math/rand"
)

// Draw mixes two forbidden generators.
func Draw() uint64 {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return rand.Uint64() + uint64(b[0])
}
