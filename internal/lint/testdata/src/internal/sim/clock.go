// Package sim is configured as a simulation package in the test
// config: its time import is strictly forbidden, and the annotation
// below must NOT waive it.
package sim

//lint:ignore forbiddenimport trying to waive the unwaivable
import "time"

// Tick leaks wall-clock time into simulated time.
func Tick() int64 {
	return int64(time.Second)
}
