// Package rng is a miniature stand-in for the repository's rng
// package, so the rawrng and sharedrng rules can be exercised without
// importing the real module from testdata.
package rng

// Source is a deterministic PRNG stream; not goroutine-safe.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next 64 bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return s.state
}

// Split derives an independent child stream.
func (s *Source) Split() *Source { return &Source{state: s.Uint64()} }

// Root derives named streams from one seed.
type Root struct{ seed uint64 }

// NewRoot returns a stream factory.
func NewRoot(seed uint64) *Root { return &Root{seed: seed} }

// Stream returns the stream for a subsystem name.
func (r *Root) Stream(name string) *Source { return New(r.seed + uint64(len(name))) }
