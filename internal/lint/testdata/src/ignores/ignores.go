// Package ignores exercises the annotation machinery itself:
// malformed directives and directives too far from the site.
package ignores

//lint:ignore maprange
// The directive above is malformed (no reason): badignore.

// TooFar has a directive separated from the site by a blank line, so
// the maprange finding below is still reported.
func TooFar(m map[int]int) int {
	total := 0
	//lint:ignore maprange this comment is not adjacent to the range

	for _, v := range m {
		total += v
	}
	return total
}
