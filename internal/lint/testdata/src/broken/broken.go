// Package broken fails type-checking: the analyzer must report the
// diagnostics as typecheck findings instead of panicking, and still
// run the syntactic rules.
package broken

// Sum refers to an undefined name.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total + missing
}
