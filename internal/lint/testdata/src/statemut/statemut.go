// Package statemut exercises the statemut rule: engine stands in for
// the simulator's looper/stateRun, and the test config registers
// statemut.engine as a state type with setup as its only allow-listed
// mutator.
package statemut

type engine struct {
	tick  int
	alive []bool
	peers map[int]int
	inner *engine
}

// step is a method on the state type: tick-phase code, every write is
// legal.
func (e *engine) step() {
	e.tick++
	e.alive[0] = true
	helper := func() { e.tick += 2 } // closure inside a state method: legal
	helper()
}

// setup is the allow-listed mutator: legal.
func setup(n int) *engine {
	e := &engine{peers: map[int]int{}}
	e.alive = make([]bool, n)
	for i := range e.alive {
		e.alive[i] = true
	}
	return e
}

// drive is neither a state method nor a registered mutator: every
// write through the engine must be flagged.
func drive(e *engine) {
	e.tick++                 // flagged: inc/dec
	e.tick = 7               // flagged: field assignment
	e.alive[1] = false       // flagged: element of a state-typed field
	e.peers[3] = 4           // flagged: map entry of a state-typed field
	e.inner.tick = 1         // flagged: nested state access
	go func() { e.tick-- }() // flagged: closure does not launder the write
}

// inspect only reads state: legal.
func inspect(e *engine) int {
	t := e.tick
	return t + len(e.alive)
}

// annotated carries a waiver and must not be reported.
func annotated(e *engine) {
	//lint:ignore statemut resetting between test cases
	e.tick = 0
}

// localMutation writes a plain local, not state: legal.
func localMutation() {
	x := 3
	x = 4
	_ = x
}
