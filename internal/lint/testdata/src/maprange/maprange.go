// Package maprange exercises the maprange rule: hits, the key-harvest
// idiom, the ignore annotation, and non-map ranges.
package maprange

import "sort"

// BadSum iterates a map directly: flagged even though the int sum is
// commutative, because the rule cannot prove the body order-free.
func BadSum(m map[int]int) int {
	total := 0
	for _, v := range m { // want a maprange finding here
		total += v
	}
	return total
}

// BadKeyed iterates keys and values in nondeterministic order.
func BadKeyed(m map[string]float64) []float64 {
	var out []float64
	for k, v := range m {
		_ = k
		out = append(out, v)
	}
	return out
}

// GoodHarvest collects keys then sorts: the harvest loop is the one
// allowed map-range idiom.
func GoodHarvest(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// GoodHarvestDiscard also harvests with an explicitly discarded value.
func GoodHarvestDiscard(m map[string]int) []string {
	var keys []string
	for k, _ := range m { // the value-discard form is part of the harvest idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Annotated carries a justification and is not flagged.
func Annotated(m map[int]bool) int {
	n := 0
	//lint:ignore maprange cardinality only; order cannot escape
	for range m {
		n++
	}
	return n
}

// SliceRange ranges over a slice: never flagged.
func SliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
