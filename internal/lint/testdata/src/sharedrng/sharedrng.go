// Package sharedrng exercises the sharedrng rule: goroutines whose
// function literals capture a stream from the enclosing scope are
// flagged; per-goroutine Split() children and parameters are not.
package sharedrng

import "testmod/internal/rng"

// BadCapture shares one stream across goroutines: flagged once per
// goroutine that captures it.
func BadCapture() {
	src := rng.New(7)
	done := make(chan struct{})
	go func() {
		_ = src.Uint64()
		close(done)
	}()
	<-done
}

// BadCaptureValue captures a value-typed stream: still flagged (the
// closure aliases the variable).
func BadCaptureValue() {
	var s = *rng.New(9)
	go func() {
		_ = s.Uint64()
	}()
}

// GoodParam passes each goroutine its own child stream as a parameter.
func GoodParam() {
	root := rng.New(7)
	for i := 0; i < 4; i++ {
		go func(s *rng.Source) {
			_ = s.Uint64()
		}(root.Split())
	}
}

// GoodLocal declares the stream inside the literal.
func GoodLocal() {
	go func() {
		s := rng.New(11)
		_ = s.Uint64()
	}()
}

// GoodNamedFunc launches a named function; only literals are scanned.
func GoodNamedFunc() {
	go drain(rng.New(3))
}

func drain(s *rng.Source) { _ = s.Uint64() }

// Annotated is waived with a reason.
func Annotated() {
	src := rng.New(7)
	go func() {
		//lint:ignore sharedrng single goroutine, parent never draws again
		_ = src.Uint64()
	}()
}
