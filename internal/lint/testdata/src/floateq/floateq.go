// Package floateq exercises the floateq rule: hits, epsilon helpers,
// the NaN idiom, constant folding, and annotations.
package floateq

// Bad compares two computed floats exactly: flagged.
func Bad(a, b float64) bool {
	return a == b
}

// BadNeq is the != form: flagged.
func BadNeq(a, b float32) bool {
	return a != b
}

// BadMixed compares a float to an int-typed-as-float expression.
func BadMixed(a float64, n int) bool {
	return a == float64(n)
}

// approxEqual is an approved epsilon helper (name marker "approx"):
// its exact comparisons are the implementation of the policy.
func approxEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// Close is approved via the "close" marker.
func Close(a, b float64) bool {
	return a == b || approxEqual(a, b, 1e-9)
}

// NaNCheck uses the x != x idiom: exempt.
func NaNCheck(x float64) bool {
	return x != x
}

// ConstFold compares two constants: resolved at compile time, exempt.
func ConstFold() bool {
	return 0.1+0.2 == 0.3
}

// Annotated carries a justification and is not flagged.
func Annotated(x float64) bool {
	//lint:ignore floateq zero is an exact sentinel set by the caller
	return x == 0
}

// IntCompare never involves floats: exempt.
func IntCompare(a, b int) bool {
	return a == b
}
