// Package rawrng exercises the rawrng rule: streams constructed by
// composite literal, zero value, or new() are flagged; the approved
// constructors are not.
package rawrng

import "testmod/internal/rng"

// BadLiteral constructs a stream by composite literal: flagged.
func BadLiteral() *rng.Source {
	return &rng.Source{}
}

// BadZeroVar declares a zero-value stream: flagged.
func BadZeroVar() uint64 {
	var s rng.Source
	return s.Uint64()
}

// BadNew allocates a seed-0 stream with new(): flagged.
func BadNew() *rng.Source {
	return new(rng.Source)
}

// GoodNew uses the constructor.
func GoodNew() *rng.Source {
	return rng.New(42)
}

// GoodStream derives a named stream from a root seed.
func GoodStream() *rng.Source {
	return rng.NewRoot(1).Stream("mobility")
}

// GoodSplit derives a child stream.
func GoodSplit(s *rng.Source) *rng.Source {
	return s.Split()
}

// Annotated is waived with a reason.
func Annotated() *rng.Source {
	//lint:ignore rawrng fuzz target wants the documented seed-0 stream
	return &rng.Source{}
}
