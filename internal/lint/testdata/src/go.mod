module testmod

go 1.22
