package rawrng_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/rawrng"
)

func TestRawrng(t *testing.T) {
	analysistest.Run(t, "testdata", rawrng.Analyzer, "a")
}
