module fix.example/rawrng

go 1.22
