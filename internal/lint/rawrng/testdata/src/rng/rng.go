// Package rng is a fixture stand-in for the real stream package; the
// analyzer recognizes Source by package and type name. The package
// itself is exempt from the construction rules.
package rng

// Source is a deterministic stream.
type Source struct {
	state uint64
}

// New returns a seeded stream.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 advances the stream.
func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

// Split derives an independent child stream.
func (s *Source) Split() Source { return Source{state: s.Uint64()} }
