// Package a exercises the rawrng analyzer: rng streams must come from
// the seeded constructors, never a literal, new(), or zero value.
package a

import "fix.example/rawrng/rng"

func bad() uint64 {
	s := rng.Source{}    // want `not a composite literal`
	p := new(rng.Source) // want `not new\(rng.Source\)`
	var z rng.Source     // want `zero-value rng.Source is a seed-0 stream`
	return s.Uint64() + p.Uint64() + z.Uint64()
}

func good() uint64 {
	s := rng.New(42)
	return s.Uint64()
}
