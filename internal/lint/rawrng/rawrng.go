// Package rawrng defines an Analyzer that flags construction of an rng
// stream by zero value, composite literal, or new(): streams must come
// from rng.New, Root.Stream, StreamN, or Split so that every draw is
// attributable to the experiment seed. The rng package itself is
// exempt.
package rawrng

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:             "rawrng",
	Doc:              "flag rng.Source values constructed outside rng.New / Root.Stream / Split",
	Run:              run,
	RunDespiteErrors: true,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	if info == nil || (pass.Pkg != nil && pass.Pkg.Name() == "rng") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if IsRngSource(info.TypeOf(n)) {
					pass.Reportf(n.Pos(),
						"construct rng streams with rng.New, Root.Stream, or Split, not a composite literal")
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && IsRngSource(info.TypeOf(n.Args[0])) {
						pass.Reportf(n.Pos(),
							"construct rng streams with rng.New, Root.Stream, or Split, not new(rng.Source)")
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil && len(n.Values) == 0 && IsRngSource(info.TypeOf(n.Type)) {
					pass.Reportf(n.Pos(),
						"zero-value rng.Source is a seed-0 stream; construct streams with rng.New, Root.Stream, or Split")
				}
			}
			return true
		})
	}
	return nil, nil
}

// IsRngSource reports whether t is the (non-pointer) Source type of a
// package named rng.
func IsRngSource(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Source" && obj.Pkg() != nil && obj.Pkg().Name() == "rng"
}

// IsRngSourceOrPtr is IsRngSource behind at most one pointer.
func IsRngSourceOrPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return IsRngSource(t)
}
