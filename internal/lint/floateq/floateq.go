// Package floateq defines an Analyzer that flags == and != between
// floating-point operands: exact float comparison is sensitive to
// evaluation order and platform rounding, which is exactly the drift
// the determinism contract excludes. Approved epsilon helpers
// (function name containing an EpsilonMarkers substring) and the
// x != x NaN idiom are exempt, as are constant-only comparisons.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// EpsilonMarkers are lowercase substrings; a function whose name
// contains one is an approved epsilon helper and may compare floats
// with == / !=. Overridable by tests.
var EpsilonMarkers = []string{"approx", "almost", "close", "eps"}

var Analyzer = &analysis.Analyzer{
	Name:             "floateq",
	Doc:              "flag exact floating-point == / != comparisons outside epsilon helpers",
	Run:              run,
	RunDespiteErrors: true,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	if info == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && isEpsilonHelper(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				tx, ty := info.Types[be.X], info.Types[be.Y]
				if !isFloat(tx.Type) && !isFloat(ty.Type) {
					return true
				}
				if tx.Value != nil && ty.Value != nil {
					return true // constant folded at compile time
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x: the NaN check idiom
				}
				pass.Reportf(be.OpPos,
					"floating-point %s comparison is exact; use an epsilon helper or annotate //lint:ignore floateq <reason>", be.Op)
				return true
			})
		}
	}
	return nil, nil
}

func isEpsilonHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range EpsilonMarkers {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
