package floateq_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "a")
}
