// Package a exercises the floateq analyzer: exact float comparison is
// flagged outside epsilon helpers, the NaN idiom, and constant folds.
package a

func bad(a, b float64) bool {
	return a == b // want `floating-point == comparison is exact`
}

func alsoBad(a, b float32) bool {
	return a != b // want `floating-point != comparison is exact`
}

func isNaN(x float64) bool {
	return x != x // ok: the NaN check idiom
}

func approxEq(a, b float64) bool {
	return a == b // ok: epsilon helpers may compare exactly
}

func folded() bool {
	return 1.5 == 3.0/2.0 // ok: constant-folded at compile time
}

func ints(a, b int) bool {
	return a == b // ok: not a float comparison
}
