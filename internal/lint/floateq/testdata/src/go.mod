module fix.example/floateq

go 1.22
