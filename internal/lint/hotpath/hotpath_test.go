package hotpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "a", "b")
}
