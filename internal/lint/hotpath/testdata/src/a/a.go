// Package a exercises the hotpath analyzer within one package (direct
// sites, the allocating-call fixpoint, waivers, the panic exemption)
// and across the boundary to package b (fact propagation).
package a

import "fix.example/hotpath/b"

// helper allocates; the fixpoint makes tick's call to it a finding.
func helper() []int {
	return []int{1, 2, 3}
}

//manet:hotpath
func tick(xs []int) int {
	buf := make([]int, 0, 8)             // want `make in hot path tick`
	m := map[int]bool{}                  // want `map literal in hot path tick`
	fn := func() int { return len(buf) } // want `variable-capturing closure in hot path tick`
	n := b.Hot(xs)                       // ok: hot callee, trusted by its annotation
	n += len(b.Alloc())                  // want `call to allocating function b.Alloc from hot path tick \(make\)`
	n += len(helper())                   // want `call to allocating function a.helper from hot path tick \(slice literal\)`
	n += fn()
	m[n] = true
	if buf == nil {
		//lint:ignore hotpath warm-up: the fixture waives this allocation
		buf = make([]int, 4)
	}
	if n < 0 {
		panic(len(make([]int, 1))) // ok: allocations inside panic arguments are exempt
	}
	return n + len(buf)
}
