// Package b is the downstream half of the cross-package fixture: its
// functions' AllocFacts cross the boundary into package a.
package b

// Alloc allocates; its exported AllocFact carries the reason.
func Alloc() []int {
	return make([]int, 4)
}

// Hot is trusted by annotation: callers treat it as non-allocating.
//
//manet:hotpath
func Hot(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
