module fix.example/hotpath

go 1.22
