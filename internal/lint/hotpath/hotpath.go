// Package hotpath defines an Analyzer that makes the repository's
// near-zero-alloc steady-state tick a compile-time property instead of
// a bench-time surprise. A function annotated
//
//	//manet:hotpath
//
// in its doc comment must not allocate: the analyzer flags make and
// new calls, escaping composite literals (&T{}, slice and map
// literals), variable-capturing closures, fmt calls, string<->[]byte
// conversions, and interface boxing of non-pointer values. Allocation
// status propagates: every function's "allocates" summary is exported
// as an analysis.Fact on its *types.Func, so a hot function calling an
// unannotated allocating function — in this package or any other — is
// itself a finding at the call site. Annotated callees are trusted
// (their own bodies are checked where they are declared).
//
// Known blind spots, by design: append (the zero-alloc tick relies on
// amortized capacity reuse), calls through interfaces and function
// values (no devirtualization), and standard-library calls other than
// fmt (no facts without source analysis; fmt is the one stdlib package
// hot code has historically reached for). Warm-up allocations behind a
// nil check and deliberately-allocating cold branches carry a
// //lint:ignore hotpath <reason> annotation with the allocation
// counted in the tick budget.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Directive marks a function as hot-path in its doc comment.
const Directive = "//manet:hotpath"

// AllocFact is the cross-package allocation summary of one function.
type AllocFact struct {
	Allocates bool   // the function (transitively) allocates
	Hot       bool   // annotated //manet:hotpath (trusted not to allocate)
	Reason    string // first allocation reason, for call-site messages
}

func (*AllocFact) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "hotpath",
	Doc:       "forbid allocations in //manet:hotpath functions, with cross-package fact propagation",
	Run:       run,
	FactTypes: []analysis.Fact{new(AllocFact)},
}

// site is one direct allocation inside a function.
type site struct {
	pos    token.Pos
	reason string
}

// callSite is one resolved static call inside a function.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// fnInfo is the per-function analysis state.
type fnInfo struct {
	decl      *ast.FuncDecl
	obj       *types.Func
	hot       bool
	direct    []site
	calls     []callSite
	allocates bool
	reason    string
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	if info == nil || pass.Pkg == nil {
		return nil, nil
	}

	byObj := map[*types.Func]*fnInfo{}
	var fns []*fnInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fn := &fnInfo{decl: fd, obj: obj, hot: isHot(fd)}
			collect(pass, fn)
			fn.allocates = len(fn.direct) > 0
			if fn.allocates {
				fn.reason = fn.direct[0].reason
			}
			byObj[obj] = fn
			fns = append(fns, fn)
		}
	}

	// calleeStatus resolves a callee's allocation summary: same-package
	// functions from the local table, everything else from facts.
	calleeStatus := func(callee *types.Func) (allocates bool, hot bool, reason string) {
		if local, ok := byObj[callee]; ok {
			return local.allocates, local.hot, local.reason
		}
		var fact AllocFact
		if pass.ImportObjectFact(callee, &fact) {
			return fact.Allocates, fact.Hot, fact.Reason
		}
		return false, false, ""
	}

	// Fixpoint: calling an allocating, unannotated function makes the
	// caller allocating too. Hot functions are pinned non-allocating —
	// their own bodies are where violations are reported.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if fn.allocates || fn.hot {
				continue
			}
			for _, c := range fn.calls {
				a, hot, reason := calleeStatus(c.callee)
				if a && !hot {
					fn.allocates = true
					fn.reason = "calls " + c.callee.Name()
					if reason != "" {
						fn.reason += " (" + reason + ")"
					}
					changed = true
					break
				}
			}
		}
	}

	for _, fn := range fns {
		if fn.hot {
			for _, s := range fn.direct {
				pass.Reportf(s.pos,
					"%s in hot path %s (//manet:hotpath functions must not allocate); hoist it to setup or annotate //lint:ignore hotpath <reason>",
					s.reason, fn.obj.Name())
			}
			for _, c := range fn.calls {
				a, hot, reason := calleeStatus(c.callee)
				if a && !hot {
					msg := "call to allocating function " + calleeName(c.callee) + " from hot path " + fn.obj.Name()
					if reason != "" {
						msg += " (" + reason + ")"
					}
					pass.Reportf(c.pos, "%s; annotate the callee //manet:hotpath or hoist the allocation", msg)
				}
			}
		}
		// Export the summary so dependent packages see through this
		// function. Hot functions export Allocates=false by decree: the
		// annotation is the contract, enforced at the declaration site.
		fact := &AllocFact{Allocates: fn.allocates && !fn.hot, Hot: fn.hot, Reason: fn.reason}
		if fact.Allocates || fact.Hot {
			pass.ExportObjectFact(fn.obj, fact)
		}
	}
	return nil, nil
}

func calleeName(f *types.Func) string {
	if f.Pkg() != nil && f.Pkg().Path() != "" {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// isHot reports whether the function's doc comment carries the
// //manet:hotpath directive.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// collect walks one function body recording direct allocation sites
// and resolved static calls. Sites inside nested function literals are
// attributed to the enclosing declaration: a closure created by a hot
// function runs as hot-path code. Allocations inside the arguments of
// a panic call are exempt — a panicking program has already left the
// hot path, and guard panics are how tick code reports corruption.
func collect(pass *analysis.Pass, fn *fnInfo) {
	info := pass.TypesInfo
	addrTaken := map[*ast.CompositeLit]bool{}

	type posRange struct{ lo, hi token.Pos }
	var panicArgs []posRange
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range call.Args {
					panicArgs = append(panicArgs, posRange{arg.Pos(), arg.End()})
				}
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicArgs {
			if pos >= r.lo && pos <= r.hi {
				return true
			}
		}
		return false
	}
	defer func() {
		kept := fn.direct[:0]
		for _, s := range fn.direct {
			if !inPanic(s.pos) {
				kept = append(kept, s)
			}
		}
		fn.direct = kept
		keptCalls := fn.calls[:0]
		for _, c := range fn.calls {
			if !inPanic(c.pos) {
				keptCalls = append(keptCalls, c)
			}
		}
		fn.calls = keptCalls
	}()

	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					addrTaken[cl] = true
					fn.direct = append(fn.direct, site{n.Pos(), "escaping composite literal (&" + typeLabel(info, cl) + "{})"})
				}
			}
		case *ast.CompositeLit:
			if addrTaken[n] {
				return true
			}
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				fn.direct = append(fn.direct, site{n.Pos(), "slice literal"})
			case *types.Map:
				fn.direct = append(fn.direct, site{n.Pos(), "map literal"})
			}
		case *ast.FuncLit:
			if capturesVariables(info, n) {
				fn.direct = append(fn.direct, site{n.Pos(), "variable-capturing closure"})
			}
		case *ast.CallExpr:
			collectCall(pass, fn, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(pass, fn, info.TypeOf(n.Lhs[i]), rhs)
				}
			}
		}
		return true
	})
}

// collectCall classifies one call expression: builtin allocators, fmt
// calls, allocating conversions, interface boxing of arguments, and
// statically-resolved callees for the fact fixpoint.
func collectCall(pass *analysis.Pass, fn *fnInfo, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkConversion(fn, tv.Type, info.TypeOf(call.Args[0]), call)
		return
	}

	switch funExpr := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[funExpr].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				fn.direct = append(fn.direct, site{call.Pos(), "make"})
			case "new":
				fn.direct = append(fn.direct, site{call.Pos(), "new"})
			}
			// append/copy/len/cap/delete/clear/panic: not flagged here;
			// panic arguments still go through boxing below.
			checkArgBoxing(pass, fn, call, nil)
			return
		}
		if callee, ok := info.Uses[funExpr].(*types.Func); ok {
			recordCallee(fn, call, callee)
		}
	case *ast.SelectorExpr:
		var callee *types.Func
		if sel, ok := info.Selections[funExpr]; ok {
			callee, _ = sel.Obj().(*types.Func)
		} else if obj, ok := info.Uses[funExpr.Sel].(*types.Func); ok {
			callee = obj // package-qualified function
		}
		if callee != nil {
			recordCallee(fn, call, callee)
		}
	}
	checkArgBoxing(pass, fn, call, nil)
}

// recordCallee files a statically-resolved callee: fmt is flagged
// directly, interface methods are skipped (no devirtualization), and
// everything else feeds the allocation fixpoint.
func recordCallee(fn *fnInfo, call *ast.CallExpr, callee *types.Func) {
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		fn.direct = append(fn.direct, site{call.Pos(), "fmt." + callee.Name() + " call"})
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return // dynamic dispatch: callee unknown
		}
	}
	fn.calls = append(fn.calls, callSite{call.Pos(), callee})
}

// checkConversion flags the conversions that copy their operand to the
// heap: string<->[]byte/[]rune and boxing into an interface type.
func checkConversion(fn *fnInfo, to, from types.Type, call *ast.CallExpr) {
	if to == nil || from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	toStr := isString(toU)
	fromStr := isString(fromU)
	_, toSlice := toU.(*types.Slice)
	_, fromSlice := fromU.(*types.Slice)
	if (toStr && fromSlice) || (toSlice && fromStr) {
		fn.direct = append(fn.direct, site{call.Pos(), "string conversion copies its operand"})
		return
	}
	if types.IsInterface(toU) && !types.IsInterface(fromU) && !isPointerLike(fromU) {
		fn.direct = append(fn.direct, site{call.Pos(), "interface boxing (conversion to " + to.String() + ")"})
	}
}

// checkArgBoxing flags call arguments boxed into interface parameters:
// a non-pointer concrete value passed where an interface is expected
// allocates its data word.
func checkArgBoxing(pass *analysis.Pass, fn *fnInfo, call *ast.CallExpr, _ *types.Func) {
	info := pass.TypesInfo
	sigTV, ok := info.Types[call.Fun]
	if !ok || sigTV.IsType() {
		return
	}
	sig, ok := sigTV.Type.(*types.Signature)
	if !ok {
		return // builtins (panic is exempt; see collect)
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			st, _ := params.At(params.Len() - 1).Type().(*types.Slice)
			if st == nil {
				continue
			}
			pt = st.Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || isPointerLike(at.Underlying()) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		fn.direct = append(fn.direct, site{arg.Pos(), "interface boxing (arg " + types.ExprString(arg) + ")"})
	}
}

func reportBoxedArg(fn *fnInfo, info *types.Info, arg ast.Expr, what string) {
	at := info.TypeOf(arg)
	if at == nil || types.IsInterface(at.Underlying()) || isPointerLike(at.Underlying()) {
		return
	}
	if tv, ok := info.Types[arg]; ok && tv.IsNil() {
		return
	}
	fn.direct = append(fn.direct, site{arg.Pos(), "interface boxing (" + what + " argument)"})
}

// checkBoxing flags assignments of concrete non-pointer values into
// interface-typed destinations.
func checkBoxing(pass *analysis.Pass, fn *fnInfo, dst types.Type, rhs ast.Expr) {
	info := pass.TypesInfo
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	at := info.TypeOf(rhs)
	if at == nil || types.IsInterface(at.Underlying()) || isPointerLike(at.Underlying()) {
		return
	}
	if tv, ok := info.Types[rhs]; ok && tv.IsNil() {
		return
	}
	fn.direct = append(fn.direct, site{rhs.Pos(), "interface boxing (assignment of " + types.ExprString(rhs) + ")"})
}

// capturesVariables reports whether the function literal references a
// variable declared outside itself but inside some function (package-
// level vars don't force a closure allocation).
func capturesVariables(info *types.Info, fl *ast.FuncLit) bool {
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true // declared inside the literal
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable
		}
		captures = true
		return false
	})
	return captures
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPointerLike reports whether boxing a value of this underlying type
// into an interface stores the value directly in the data word (no
// allocation): pointers, maps, channels, funcs, and unsafe pointers.
func isPointerLike(t types.Type) bool {
	switch t.(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// typeLabel renders a composite literal's type for a diagnostic,
// falling back to the literal's own type expression.
func typeLabel(info *types.Info, cl *ast.CompositeLit) string {
	if t := info.TypeOf(cl); t != nil {
		if named, ok := t.(*types.Named); ok && named.Obj() != nil {
			return named.Obj().Name()
		}
		return t.String()
	}
	if cl.Type != nil {
		return types.ExprString(cl.Type)
	}
	return "T"
}
