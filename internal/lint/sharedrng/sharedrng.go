// Package sharedrng defines an Analyzer that flags a go statement
// whose function literal captures an rng stream from the enclosing
// scope: rng.Source is documented as not goroutine-safe, and
// concurrent draws are both racy and order-nondeterministic. Pass each
// goroutine its own Split() stream.
package sharedrng

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/lint/rawrng"
)

var Analyzer = &analysis.Analyzer{
	Name:             "sharedrng",
	Doc:              "flag goroutines capturing an rng stream from the enclosing scope",
	Run:              run,
	RunDespiteErrors: true,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	if info == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			reported := map[types.Object]bool{}
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || reported[v] || !rawrng.IsRngSourceOrPtr(v.Type()) {
					return true
				}
				if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
					return true // declared inside the literal (param or local)
				}
				reported[v] = true
				pass.Reportf(id.Pos(),
					"goroutine captures rng stream %s from the enclosing scope; rng.Source is not goroutine-safe — pass each goroutine its own Split()", v.Name())
				return true
			})
			return true
		})
	}
	return nil, nil
}
