package sharedrng_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/sharedrng"
)

func TestSharedrng(t *testing.T) {
	analysistest.Run(t, "testdata", sharedrng.Analyzer, "a")
}
