module fix.example/sharedrng

go 1.22
