// Package a exercises the sharedrng analyzer: a goroutine must not
// capture an rng stream from the enclosing scope.
package a

import "fix.example/sharedrng/rng"

func bad(src *rng.Source) {
	done := make(chan struct{})
	go func() {
		_ = src.Uint64() // want `goroutine captures rng stream src`
		close(done)
	}()
	<-done
}

func good(src *rng.Source) {
	done := make(chan struct{})
	child := src.Split()
	go func(s rng.Source) { // ok: the goroutine owns its Split() child
		_ = s.Uint64()
		close(done)
	}(child)
	<-done
}
