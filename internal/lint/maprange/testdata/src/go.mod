module fix.example/maprange

go 1.22
