// Package a exercises the maprange analyzer: map iteration is flagged
// unless it is the key-harvest idiom or carries a scoped waiver.
package a

func bad(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `range over map m has nondeterministic order`
		out = append(out, v)
	}
	return out
}

func harvest(m map[int]int) []int {
	var keys []int
	for k := range m { // ok: the key-harvest idiom needs no waiver
		keys = append(keys, k)
	}
	return keys
}

func waived(m map[int]bool) int {
	n := 0
	//lint:ignore maprange commutative count; the result is order-free
	for range m {
		n++
	}
	return n
}
