// Package maprange defines an Analyzer that flags `for … range` over a
// map-typed value in non-test code: the runtime randomizes map
// iteration order, so any order-sensitive use breaks the repository's
// byte-identical trace reproducibility contract. The one allowed idiom
// is the key harvest
//
//	for k := range m { keys = append(keys, k) }
//
// whose body does nothing but collect keys for subsequent sorting.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:             "maprange",
	Doc:              "flag nondeterministic map iteration outside the sorted-key-harvest idiom",
	Run:              run,
	RunDespiteErrors: true,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	if info == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if isKeyHarvest(rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has nondeterministic order; iterate sorted keys or annotate //lint:ignore maprange <reason>",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil, nil
}

// isKeyHarvest reports whether the range body is exactly
// `keys = append(keys, k)` with k the range key.
func isKeyHarvest(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	if !ok || arg1.Name != key.Name {
		return false
	}
	return types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0])
}
