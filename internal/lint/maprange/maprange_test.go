package maprange_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, "testdata", maprange.Analyzer, "a")
}
