package ignorecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/ignorecheck"
)

func TestIgnorecheck(t *testing.T) {
	saved := ignorecheck.KnownRules
	ignorecheck.KnownRules = []string{"typecheck", "floateq", "ignorecheck"}
	t.Cleanup(func() { ignorecheck.KnownRules = saved })
	analysistest.Run(t, "testdata", ignorecheck.Analyzer, "a")
}
