// Package ignorecheck defines an Analyzer that polices the
// //lint:ignore directives themselves, so annotation debt can only
// shrink:
//
//   - a malformed directive (missing rule list or reason) is reported;
//   - a bare or catch-all directive ("all" / "*") that would silence
//     every rule is reported — ignores must be scoped per rule;
//   - a directive naming an unknown rule is reported.
//
// The fourth check — a well-formed directive that suppresses no
// current finding is stale — needs visibility across every analyzer's
// output, so it lives in the analysis driver; its findings carry this
// analyzer's name and are strict (an ignore cannot ignore its own
// staleness).
package ignorecheck

import (
	"go/ast"

	"repro/internal/analysis"
)

// KnownRules are the rule names a directive may reference. The suite
// (internal/lint) sets this to the full analyzer catalog; "typecheck"
// is always valid.
var KnownRules = []string{"typecheck"}

var Analyzer = &analysis.Analyzer{
	Name:             "ignorecheck",
	Doc:              "flag malformed, catch-all, unknown-rule, and (via the driver) stale //lint:ignore directives",
	Run:              run,
	RunDespiteErrors: true,
}

func run(pass *analysis.Pass) (any, error) {
	known := map[string]bool{"typecheck": true}
	for _, r := range KnownRules {
		known[r] = true
	}
	check := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				rules, reason, ok := analysis.ParseIgnoreComment(cm.Text)
				if !ok {
					continue
				}
				if len(rules) == 0 || reason == "" {
					pass.ReportStrictf(cm.Pos(),
						"malformed ignore directive: want %s <rule>[,<rule>...] <reason>", analysis.IgnorePrefix)
					continue
				}
				for _, rule := range rules {
					switch {
					case rule == "all" || rule == "*":
						pass.ReportStrictf(cm.Pos(),
							"catch-all //lint:ignore %s silences every rule; scope the directive to the specific rule it waives", rule)
					case !known[rule]:
						pass.ReportStrictf(cm.Pos(),
							"//lint:ignore names unknown rule %q; known rules: %s", rule, renderKnown())
					}
				}
			}
		}
	}
	for _, f := range pass.Files {
		check(f)
	}
	for _, f := range pass.TestFiles {
		check(f)
	}
	return nil, nil
}

func renderKnown() string {
	out := ""
	for i, r := range KnownRules {
		if i > 0 {
			out += ", "
		}
		out += r
	}
	return out
}
