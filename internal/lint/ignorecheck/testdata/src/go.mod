module fix.example/ignorecheck

go 1.22
