// Package a exercises the directive police: malformed, catch-all,
// unknown-rule, and stale //lint:ignore directives are all strict
// findings. The expectations use the block-comment want form because
// the diagnostics land on the directive comments themselves.
package a

/* want `malformed ignore directive` */ //lint:ignore floateq
var x1 = 1

/* want `catch-all //lint:ignore all silences every rule` */ //lint:ignore all blanket waivers hide debt
var x2 = 2

/* want `names unknown rule "nosuchrule"` */ //lint:ignore nosuchrule no analyzer has this name
var x3 = 3

/* want `stale //lint:ignore ignorecheck: no ignorecheck finding` */ //lint:ignore ignorecheck nothing on the next line needs waiving
var x4 = 4
