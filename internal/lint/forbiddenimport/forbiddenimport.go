// Package forbiddenimport defines an Analyzer enforcing the
// repository's import hygiene: no math/rand or crypto/rand inside the
// rand scope (all randomness flows through internal/rng) and no time
// import anywhere (simulated time flows through the DES clock).
// Outside the simulation packages a time import may be waived with
// //lint:ignore forbiddenimport <reason>; inside them the finding is
// strict and cannot be waived. Test files are checked too: a _test.go
// pulling in math/rand undermines the same reproducibility guarantees.
package forbiddenimport

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Policy vars, overridable by tests; the defaults are this
// repository's rules.
var (
	// RandForbidden are import paths banned inside RandScope.
	RandForbidden = []string{"math/rand", "math/rand/v2", "crypto/rand"}
	// RandScope are package-path segments (e.g. "internal") under which
	// RandForbidden applies strictly (annotations cannot waive it).
	RandScope = []string{"internal"}
	// SimPackages are package-path suffixes where importing "time" is
	// strictly forbidden — no annotation waives it there.
	SimPackages = []string{
		"internal/sim",
		"internal/simnet",
		"internal/cluster",
		"internal/lm",
		"internal/mobility",
		"internal/workload",
	}
)

var Analyzer = &analysis.Analyzer{
	Name:             "forbiddenimport",
	Doc:              "flag math/rand, crypto/rand, and time imports that bypass internal/rng and the DES clock",
	Run:              run,
	RunDespiteErrors: true,
}

func run(pass *analysis.Pass) (any, error) {
	pkgPath := pass.PkgPath
	if pkgPath == "" && pass.Pkg != nil {
		pkgPath = pass.Pkg.Path()
	}
	inRandScope := false
	for _, seg := range RandScope {
		if strings.Contains("/"+pkgPath+"/", "/"+seg+"/") {
			inRandScope = true
		}
	}
	isSimPkg := false
	for _, p := range SimPackages {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			isSimPkg = true
		}
	}
	check := func(f *ast.File) {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if inRandScope {
				for _, bad := range RandForbidden {
					if path == bad {
						pass.ReportStrictf(imp.Pos(),
							"import %q is forbidden under internal/: all randomness must flow through internal/rng", path)
					}
				}
			}
			if path == "time" && len(SimPackages) > 0 {
				if isSimPkg {
					pass.ReportStrictf(imp.Pos(),
						"import \"time\" is forbidden in simulation package %s: all time must flow through the DES clock (annotations cannot waive this)", pkgPath)
				} else {
					pass.Reportf(imp.Pos(),
						"import \"time\" couples the build to wall-clock time; route it through an annotated helper (//lint:ignore forbiddenimport <reason>)")
				}
			}
		}
	}
	for _, f := range pass.Files {
		check(f)
	}
	for _, f := range pass.TestFiles {
		check(f)
	}
	return nil, nil
}
