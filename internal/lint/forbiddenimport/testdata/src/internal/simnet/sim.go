// Package simnet matches the strict simulation-package list: time must
// flow through the DES clock and no annotation waives the import.
package simnet

import _ "time" // want `import "time" is forbidden in simulation package`
