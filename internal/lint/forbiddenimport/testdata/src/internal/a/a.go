// Package a sits under internal/, where the rand ban is strict: no
// annotation waives it.
package a

import _ "math/rand" // want `import "math/rand" is forbidden under internal/`
