// Package tools is outside the simulation scope, so its time import is
// a waivable finding.
package tools

import _ "time" // want `couples the build to wall-clock time`
