// Package tools2 waives its time import with a scoped directive, which
// therefore suppresses the finding and is not stale.
package tools2

//lint:ignore forbiddenimport wall-clock timestamps label profiling artifacts only
import _ "time"
