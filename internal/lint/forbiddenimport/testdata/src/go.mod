module fix.example/forbidden

go 1.22
