package forbiddenimport_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/forbiddenimport"
)

func TestForbiddenImport(t *testing.T) {
	analysistest.Run(t, "testdata", forbiddenimport.Analyzer,
		"internal/a", "internal/simnet", "tools", "tools2")
}
