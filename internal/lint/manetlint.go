// Package lint assembles the manetlint analyzer suite: the full
// catalog of repro's determinism and performance gates, each a
// standalone *analysis.Analyzer runnable on its own (or, via
// cmd/manetlint, as a multichecker or a `go vet -vettool`).
//
// See DESIGN.md §10 for the catalog with rationale per analyzer.
package lint

import (
	"repro/internal/analysis"
	"repro/internal/lint/floateq"
	"repro/internal/lint/forbiddenimport"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/ignorecheck"
	"repro/internal/lint/maprange"
	"repro/internal/lint/rawrng"
	"repro/internal/lint/shardsafe"
	"repro/internal/lint/sharedrng"
	"repro/internal/lint/statemut"
)

// Analyzers returns the full manetlint suite in reporting order. The
// slice is freshly allocated; callers may filter it.
func Analyzers() []*analysis.Analyzer {
	as := []*analysis.Analyzer{
		forbiddenimport.Analyzer,
		maprange.Analyzer,
		floateq.Analyzer,
		rawrng.Analyzer,
		sharedrng.Analyzer,
		statemut.Analyzer,
		hotpath.Analyzer,
		shardsafe.Analyzer,
		ignorecheck.Analyzer,
	}
	names := make([]string, 0, len(as))
	for _, a := range as {
		names = append(names, a.Name)
	}
	ignorecheck.KnownRules = append(names, "typecheck")
	return as
}
