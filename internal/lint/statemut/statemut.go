// Package statemut defines an Analyzer that confines direct
// simulator-state mutation to tick-phase code. A write through a value
// of a StateTypes type — field assignment, op-assignment, ++/--, or a
// write into an element of a state-typed field — is only legal inside
// a method declared on a state type or inside an allow-listed
// StateMutators function. Every other site is flagged: the runtime
// invariant checker reconciles before/after snapshots across tick
// phases, and an out-of-band mutation would invalidate exactly the
// reconciliation it relies on.
package statemut

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Policy vars, overridable by tests; the defaults are this
// repository's rules.
var (
	// StateTypes are simulator-state types, each named as
	// "<package-path-suffix>.<TypeName>" (e.g. "internal/simnet.looper").
	StateTypes = []string{"internal/simnet.looper", "internal/simnet.stateRun"}
	// StateMutators are names of plain functions (constructors/setup)
	// allowed to mutate StateTypes directly.
	StateMutators = []string{"setupRun", "newStateRun"}
)

var Analyzer = &analysis.Analyzer{
	Name:             "statemut",
	Doc:              "confine simulator-state writes to the state types' own methods and registered mutators",
	Run:              run,
	RunDespiteErrors: true,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	if info == nil || len(StateTypes) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isStateMethod(info, fd) || isStateMutator(fd) {
				continue // tick-phase code: free to mutate its own state
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok == token.DEFINE {
						return true // := declares locals, never state fields
					}
					for _, lhs := range n.Lhs {
						checkStateWrite(pass, lhs, fd.Name.Name)
					}
				case *ast.IncDecStmt:
					checkStateWrite(pass, n.X, fd.Name.Name)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkStateWrite flags lhs if, after peeling index/deref/paren
// wrappers, it is a selector whose base is state-typed.
func checkStateWrite(pass *analysis.Pass, lhs ast.Expr, fn string) {
	info := pass.TypesInfo
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if isStateType(info.TypeOf(e.X)) {
				pass.Reportf(lhs.Pos(),
					"direct write to simulator state %s outside tick-phase code; mutate state only in the state type's methods or a registered mutator (%s is neither), or annotate //lint:ignore statemut <reason>",
					types.ExprString(e), fn)
				return
			}
			lhs = e.X
		default:
			return
		}
	}
}

// isStateMethod reports whether fd is declared on (a pointer to) one
// of the configured state types.
func isStateMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return isStateType(info.TypeOf(fd.Recv.List[0].Type))
}

func isStateMutator(fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false
	}
	for _, name := range StateMutators {
		if fd.Name.Name == name {
			return true
		}
	}
	return false
}

// isStateType reports whether t (possibly behind a pointer) is one of
// StateTypes, each spelled "<pkg-path-suffix>.<TypeName>".
func isStateType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	for _, spec := range StateTypes {
		dot := strings.LastIndex(spec, ".")
		if dot < 0 || obj.Name() != spec[dot+1:] {
			continue
		}
		pkgSpec := spec[:dot]
		if path == pkgSpec || strings.HasSuffix(path, "/"+pkgSpec) {
			return true
		}
	}
	return false
}
