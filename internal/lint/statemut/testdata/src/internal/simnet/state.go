// Package simnet is a fixture stand-in matching the configured state
// types: writes to looper / stateRun fields are confined to their own
// methods and the registered mutators.
package simnet

type looper struct {
	tick int
	pos  []float64
}

type stateRun struct {
	ticks int
}

func (lp *looper) step() {
	lp.tick++ // ok: a state type mutating itself is tick-phase code
}

func newStateRun() *stateRun {
	st := &stateRun{}
	st.ticks = 0 // ok: registered mutator
	return st
}

func rogue(lp *looper, st *stateRun) {
	lp.tick++     // want `direct write to simulator state lp.tick outside tick-phase code`
	lp.pos[0] = 1 // want `direct write to simulator state lp.pos outside tick-phase code`
	st.ticks = 5  // want `direct write to simulator state st.ticks outside tick-phase code`
}

func waived(lp *looper) {
	//lint:ignore statemut test scaffolding resets the tick counter
	lp.tick = 0
}
