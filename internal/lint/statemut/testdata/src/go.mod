module fix.example/statemut

go 1.22
