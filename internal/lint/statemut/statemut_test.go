package statemut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/lint/statemut"
)

func TestStatemut(t *testing.T) {
	analysistest.Run(t, "testdata", statemut.Analyzer, "internal/simnet")
}
