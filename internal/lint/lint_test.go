package lint

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testConfig mirrors DefaultConfig but scopes the simulation packages
// to the testdata module.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SimPackages = []string{"internal/sim"}
	cfg.StateTypes = []string{"statemut.engine"}
	cfg.StateMutators = []string{"setup"}
	return cfg
}

func testdataModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("NewModule: %v", err)
	}
	return m
}

// checkGolden lints one testdata package and compares the rendered
// findings against testdata/<name>.golden.
func checkGolden(t *testing.T, m *Module, relPkg, goldenName string) {
	t.Helper()
	pkg, err := m.Load("testmod/" + relPkg)
	if err != nil {
		t.Fatalf("Load(%s): %v", relPkg, err)
	}
	findings := CheckPackage(m, pkg, testConfig())
	sortFindings(findings)

	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", goldenName+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", relPkg, got, want)
	}
}

func TestRuleMaprange(t *testing.T)   { checkGolden(t, testdataModule(t), "maprange", "maprange") }
func TestRuleFloateq(t *testing.T)    { checkGolden(t, testdataModule(t), "floateq", "floateq") }
func TestRuleRawrng(t *testing.T)     { checkGolden(t, testdataModule(t), "rawrng", "rawrng") }
func TestRuleSharedrng(t *testing.T)  { checkGolden(t, testdataModule(t), "sharedrng", "sharedrng") }
func TestRuleBadrand(t *testing.T)    { checkGolden(t, testdataModule(t), "internal/badrand", "badrand") }
func TestRuleSimTime(t *testing.T)    { checkGolden(t, testdataModule(t), "internal/sim", "simtime") }
func TestRuleTimeImport(t *testing.T) { checkGolden(t, testdataModule(t), "timeimport", "timeimport") }
func TestRuleIgnores(t *testing.T)    { checkGolden(t, testdataModule(t), "ignores", "ignores") }
func TestRuleStatemut(t *testing.T)   { checkGolden(t, testdataModule(t), "statemut", "statemut") }

// TestTypeErrorReported loads a package that fails type-checking: the
// analyzer must surface the diagnostics as typecheck findings (and
// still run syntactic rules) rather than panic.
func TestTypeErrorReported(t *testing.T) {
	checkGolden(t, testdataModule(t), "broken", "broken")
}

// TestParseErrorReported feeds the analyzer a file that does not even
// parse; the scanner diagnostics must become typecheck findings.
func TestParseErrorReported(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module brokenmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "bad", "bad.go"), "package bad\n\nfunc Oops( {\n")

	findings, err := Run(dir, dir, []string{"./..."}, testConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("want typecheck findings for a parse error, got none")
	}
	for _, f := range findings {
		if f.Rule != "typecheck" {
			t.Errorf("unexpected rule %q: %v", f.Rule, f)
		}
	}
}

// TestRunWholeTestdataModule runs the public entry point over the full
// testdata module twice and requires identical, sorted output — the
// linter itself must satisfy the determinism contract it enforces.
func TestRunWholeTestdataModule(t *testing.T) {
	root := filepath.Join("testdata", "src")
	first, err := Run(root, root, []string{"./..."}, testConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	second, err := Run(root, root, []string{"./..."}, testConfig())
	if err != nil {
		t.Fatalf("Run (second): %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("two identical runs produced different findings")
	}
	if len(first) == 0 {
		t.Fatal("testdata module should produce findings")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings not sorted: %v before %v", a, b)
		}
	}
}

// TestExpandPatterns covers the pattern grammar.
func TestExpandPatterns(t *testing.T) {
	m := testdataModule(t)
	paths, err := m.Expand(m.Root, []string{"./internal/..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	want := []string{"testmod/internal/badrand", "testmod/internal/rng", "testmod/internal/sim"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("Expand(./internal/...) = %v, want %v", paths, want)
	}
	if _, err := m.Expand(m.Root, []string{"../outside"}); err == nil {
		t.Error("Expand accepted a directory outside the module")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
