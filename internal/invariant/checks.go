package invariant

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// Checks returns the default check catalog, ordered cheap-to-expensive
// so a corrupt snapshot is named by the most specific structural check
// before the heavyweight differentials run. The Guards strings anchor
// each check to the paper claim it protects; DESIGN.md carries the
// full catalog table.
func Checks() []Check {
	return []Check{
		{
			Name:   "hierarchy-partition",
			Guards: "§2.1–2.2: clusters partition every level (premise of the c_k aggregation, Eq. 2)",
			Fn:     checkPartition,
		},
		{
			Name:   "hierarchy-reach",
			Guards: "Fig. 2, Eq. 10: every member within h_k hops of its clusterhead",
			Fn:     checkReach,
		},
		{
			Name:   "hierarchy-compression",
			Guards: "§2.2: each elected level strictly compresses, so L = Θ(log |V|)",
			Fn:     checkCompression,
		},
		{
			Name:   "alca-state",
			Guards: "Fig. 3: head state equals its elector count, so transitions decompose into unit steps",
			Fn:     checkALCAState,
		},
		{
			Name:   "diff-reconcile-nodes",
			Guards: "§4 events iii–vii: elections/rejections turn each prev level node set into next",
			Fn:     checkDiffNodes,
		},
		{
			Name:   "diff-reconcile-links",
			Guards: "§4 events i–ii vs iii–vii: link events reconcile the level graphs and classify correctly",
			Fn:     checkDiffLinks,
		},
		{
			Name:   "diff-reconcile-members",
			Guards: "§5: membership changes applied to prev ancestor chains reproduce next",
			Fn:     checkDiffMembers,
		},
		{
			Name:   "diff-reconcile-state",
			Guards: "Fig. 3 / Eq. 15a: recorded state deltas are exactly the persistent-head state changes",
			Fn:     checkDiffState,
		},
		{
			Name:   "table-owners",
			Guards: "§3.2: exactly one owner row per node; owners are exactly the covered (giant) nodes",
			Fn:     checkTableOwners,
		},
		{
			Name:   "table-chains",
			Guards: "§4: each owner's logical chain matches the identity-tracked ancestor chain",
			Fn:     checkTableChains,
		},
		{
			Name:   "table-no-dangling",
			Guards: "§4 handoff completeness: every server entry points at a live owner node",
			Fn:     checkTableDangling,
		},
		{
			Name:   "table-rebuild-equal",
			Guards: "§3.2 determinism: incremental table update equals a from-scratch rebuild",
			Fn:     checkTableRebuild,
		},
		{
			Name:   "kinetic-graph-equal",
			Guards: "§1.2 unit-disk: the event-maintained link set equals a fresh full scan",
			Fn:     checkKineticGraph,
		},
		{
			Name:   "incremental-hierarchy-equal",
			Guards: "§2, §4 determinism: delta-patched maintenance equals a fresh oracle rebuild",
			Fn:     checkIncrementalHierarchy,
		},
	}
}

// ------------------------------------------------------------ hierarchy

// checkPartition verifies that at every elected level the Member /
// Members structures describe a partition: each node belongs to
// exactly one cluster, each cluster is a level-(k+1) node whose sorted
// member list round-trips through Member, the member counts cover the
// level exactly, and every cluster head leads its own cluster.
func checkPartition(s *Snapshot) error {
	h := s.Next.Hier
	if h == nil || len(h.Levels) == 0 {
		return fmt.Errorf("empty hierarchy")
	}
	for k := 0; k+1 < len(h.Levels); k++ {
		lvl, up := h.Levels[k], h.Levels[k+1]
		if lvl.Member == nil {
			return fmt.Errorf("level %d missing election data below level %d", k, k+1)
		}
		for _, u := range lvl.Nodes {
			m, ok := lvl.Member[u]
			if !ok {
				return fmt.Errorf("level %d node %d has no cluster", k, u)
			}
			if !up.IsNode(m) {
				return fmt.Errorf("level %d node %d assigned to non-node cluster %d", k, u, m)
			}
		}
		if len(lvl.Member) != len(lvl.Nodes) {
			return fmt.Errorf("level %d Member has %d entries for %d nodes", k, len(lvl.Member), len(lvl.Nodes))
		}
		if len(lvl.Members) != len(up.Nodes) {
			return fmt.Errorf("level %d has %d member lists for %d clusters", k, len(lvl.Members), len(up.Nodes))
		}
		covered := 0
		for _, c := range up.Nodes {
			members := lvl.Members[c]
			if len(members) == 0 {
				return fmt.Errorf("level-%d cluster %d has no members", k+1, c)
			}
			prev := -1
			for _, u := range members {
				if u <= prev {
					return fmt.Errorf("level-%d cluster %d member list unsorted or duplicated at %d", k+1, c, u)
				}
				prev = u
				if lvl.Member[u] != c {
					return fmt.Errorf("level %d node %d in member list of %d but Member says %d", k, u, c, lvl.Member[u])
				}
			}
			covered += len(members)
			if lvl.Member[c] != c {
				return fmt.Errorf("head %d at level %d not in its own cluster", c, k)
			}
		}
		if covered != len(lvl.Nodes) {
			return fmt.Errorf("level %d member lists cover %d of %d nodes", k, covered, len(lvl.Nodes))
		}
	}
	return nil
}

// checkReach verifies the member-to-head hop bound h_k of the
// clustering that produced the hierarchy (Reach), mirroring the
// semantics of Hierarchy.Validate: Reach < 0 disables the check
// (grace-period electors transiently detach members) and the forced
// top level is exempt (its members need not be adjacent to the head).
func checkReach(s *Snapshot) error {
	h := s.Next.Hier
	if h == nil || h.Reach < 0 {
		return nil
	}
	for k := 0; k+1 < len(h.Levels); k++ {
		lvl := h.Levels[k]
		if lvl.Member == nil {
			continue // reported by hierarchy-partition
		}
		if h.ForcedTop && k == len(h.Levels)-2 {
			continue
		}
		var rc *cluster.ReachChecker
		for _, u := range lvl.Nodes {
			m := lvl.Member[u]
			if m == u {
				continue
			}
			if h.Reach == 1 {
				if !lvl.Graph.HasEdge(u, m) {
					return fmt.Errorf("level %d node %d not adjacent to its head %d", k, u, m)
				}
				continue
			}
			if rc == nil {
				rc = cluster.NewReachChecker(lvl.Graph)
			}
			if !rc.Within(u, m, h.Reach) {
				return fmt.Errorf("level %d node %d beyond reach %d of head %d", k, u, h.Reach, m)
			}
		}
	}
	return nil
}

// checkCompression verifies that every level carrying election data
// strictly compresses: |V_{k+1}| < |V_k|. Build drops the election
// data and stops exactly when a level fails to compress, so a
// non-compressing elected level means the recursion invariant (and
// with it L = Θ(log |V|)) is broken.
func checkCompression(s *Snapshot) error {
	h := s.Next.Hier
	for k := 0; k+1 < len(h.Levels); k++ {
		lvl, up := h.Levels[k], h.Levels[k+1]
		if lvl.Member == nil {
			continue
		}
		if len(up.Nodes) >= len(lvl.Nodes) {
			return fmt.Errorf("level %d does not compress: %d clusters over %d nodes",
				k, len(up.Nodes), len(lvl.Nodes))
		}
	}
	return nil
}

// ----------------------------------------------------------------- ALCA

// checkALCAState verifies the Fig. 3 state variable on both ends of
// the tick: a head's recorded State equals the number of *neighbors*
// electing it (self-election excluded), and across the tick the state
// change of every persistent head equals gained − lost electors
// recomputed from the two Head maps. Together these force every
// per-tick state change to decompose into unit elector flips — the
// unit-step transition premise of the paper's Fig. 3 chain (and the
// reason the Eq. 22 damping argument has no counterexamples).
func checkALCAState(s *Snapshot) error {
	if err := checkStateCounts(s.Next.Hier); err != nil {
		return err
	}
	if s.Prev == nil {
		return nil
	}
	ph, nh := s.Prev.Hier, s.Next.Hier
	for k := 0; k+1 < len(ph.Levels) && k+1 < len(nh.Levels); k++ {
		pl, nl := ph.Levels[k], nh.Levels[k]
		if pl.Head == nil || nl.Head == nil {
			continue
		}
		gained := map[int]int{}
		lost := map[int]int{}
		for _, u := range nl.Nodes {
			hd := nl.Head[u]
			if hd == u {
				continue
			}
			if !pl.IsNode(u) || pl.Head[u] != hd {
				gained[hd]++
			}
		}
		for _, u := range pl.Nodes {
			hd := pl.Head[u]
			if hd == u {
				continue
			}
			if !nl.IsNode(u) || nl.Head[u] != hd {
				lost[hd]++
			}
		}
		// Persistent heads: present in both snapshots' state maps.
		for _, hd := range nh.Levels[k+1].Nodes {
			oldS, ok := pl.State[hd]
			if !ok {
				continue
			}
			newS := nl.State[hd]
			if newS-oldS != gained[hd]-lost[hd] {
				return fmt.Errorf("level-%d head %d state moved %d->%d but elector flips say %+d gained %+d lost",
					k, hd, oldS, newS, gained[hd], lost[hd])
			}
		}
	}
	return nil
}

// checkStateCounts recomputes each level's State map from its Head map.
func checkStateCounts(h *cluster.Hierarchy) error {
	for k := 0; k+1 < len(h.Levels); k++ {
		lvl, up := h.Levels[k], h.Levels[k+1]
		if lvl.Head == nil {
			continue
		}
		want := map[int]int{}
		for _, u := range lvl.Nodes {
			if hd := lvl.Head[u]; hd != u {
				want[hd]++
			}
		}
		if len(lvl.State) != len(up.Nodes) {
			return fmt.Errorf("level %d State has %d entries for %d clusters", k, len(lvl.State), len(up.Nodes))
		}
		for _, hd := range up.Nodes {
			got, ok := lvl.State[hd]
			if !ok {
				return fmt.Errorf("level-%d head %d missing from State", k, hd)
			}
			if got != want[hd] {
				return fmt.Errorf("level-%d head %d State=%d but %d neighbors elect it", k, hd, got, want[hd])
			}
		}
	}
	return nil
}

// ----------------------------------------------------------------- diff

// checkDiffNodes verifies that for every level k >= 1 the recorded
// Elections[k] and Rejections[k] are exactly the set difference of the
// two snapshots' level-k node sets: applying them to prev reproduces
// next, with no spurious or missing events.
func checkDiffNodes(s *Snapshot) error {
	if s.Prev == nil || s.Diff == nil {
		return nil
	}
	ph, nh, d := s.Prev.Hier, s.Next.Hier, s.Diff
	for k := 1; k < maxLevels(s); k++ {
		pN := hierLevelNodes(ph, k)
		nN := hierLevelNodes(nh, k)
		el := d.Elections[k]
		rj := d.Rejections[k]
		i, j, ei, ri := 0, 0, 0, 0
		for i < len(pN) || j < len(nN) {
			switch {
			case j >= len(nN) || (i < len(pN) && pN[i] < nN[j]):
				if ri >= len(rj) || rj[ri] != pN[i] {
					return fmt.Errorf("level %d: node %d left the level but has no rejection event", k, pN[i])
				}
				ri++
				i++
			case i >= len(pN) || nN[j] < pN[i]:
				if ei >= len(el) || el[ei] != nN[j] {
					return fmt.Errorf("level %d: node %d joined the level but has no election event", k, nN[j])
				}
				ei++
				j++
			default:
				i++
				j++
			}
		}
		if ei != len(el) {
			return fmt.Errorf("level %d: spurious election event for node %d", k, el[ei])
		}
		if ri != len(rj) {
			return fmt.Errorf("level %d: spurious rejection event for node %d", k, rj[ri])
		}
	}
	return nil
}

// checkDiffLinks verifies the per-level link events against the two
// level graphs: every recorded event flips an edge in the right
// direction, every edge difference between the graphs is recorded
// exactly once, and each event is classified correctly — migration iff
// both endpoints are level-k nodes in both snapshots (paper events
// i–ii), structural otherwise (iii–vii).
func checkDiffLinks(s *Snapshot) error {
	if s.Prev == nil || s.Diff == nil {
		return nil
	}
	ph, nh, d := s.Prev.Hier, s.Next.Hier, s.Diff
	for k := 1; k < maxLevels(s); k++ {
		pl, nl := ph.Level(k), nh.Level(k)
		pg := hierLevelGraph(pl)
		ng := hierLevelGraph(nl)
		mig := d.MigrationLinkEvents[k]
		str := d.StructuralLinkEvents[k]
		if pg != nil && ng != nil && len(mig) == 0 && len(str) == 0 && pg.Equal(ng) {
			continue // fast path: identical graphs, no events — consistent
		}
		seen := make(map[topology.EdgeKey]bool, len(mig)+len(str))
		check := func(ev topology.LinkEvent, migClass bool) error {
			a, b := ev.Edge.Nodes()
			if _, dup := seen[ev.Edge]; dup {
				return fmt.Errorf("level %d: duplicate link event for %v", k, ev.Edge)
			}
			seen[ev.Edge] = ev.Up
			pHas := pg != nil && pg.HasEdge(a, b)
			nHas := ng != nil && ng.HasEdge(a, b)
			if ev.Up && (pHas || !nHas) {
				return fmt.Errorf("level %d: up event for %v but prev=%v next=%v", k, ev.Edge, pHas, nHas)
			}
			if !ev.Up && (!pHas || nHas) {
				return fmt.Errorf("level %d: down event for %v but prev=%v next=%v", k, ev.Edge, pHas, nHas)
			}
			persistent := pl != nil && nl != nil &&
				pl.IsNode(a) && pl.IsNode(b) && nl.IsNode(a) && nl.IsNode(b)
			if migClass != persistent {
				return fmt.Errorf("level %d: event %v classified migration=%v but endpoint persistence=%v",
					k, ev.Edge, migClass, persistent)
			}
			return nil
		}
		for _, ev := range mig {
			if err := check(ev, true); err != nil {
				return err
			}
		}
		for _, ev := range str {
			if err := check(ev, false); err != nil {
				return err
			}
		}
		// Completeness: every edge-set difference must carry an event.
		var missing error
		if ng != nil {
			ng.ForEachEdge(func(e topology.EdgeKey) {
				if missing != nil {
					return
				}
				a, b := e.Nodes()
				if pg != nil && pg.HasEdge(a, b) {
					return
				}
				if up, ok := seen[e]; !ok || !up {
					missing = fmt.Errorf("level %d: new edge %v has no up event", k, e)
				}
			})
		}
		if missing != nil {
			return missing
		}
		if pg != nil {
			pg.ForEachEdge(func(e topology.EdgeKey) {
				if missing != nil {
					return
				}
				a, b := e.Nodes()
				if ng != nil && ng.HasEdge(a, b) {
					return
				}
				if up, ok := seen[e]; !ok || up {
					missing = fmt.Errorf("level %d: lost edge %v has no down event", k, e)
				}
			})
		}
		if missing != nil {
			return missing
		}
	}
	return nil
}

// checkDiffMembers recomputes every per-node ancestor-chain change
// from the two hierarchies and requires Diff.Memberships to list
// exactly those changes in (level, node) order — the §5 membership
// events the handoff accountant consumes.
func checkDiffMembers(s *Snapshot) error {
	if s.Prev == nil || s.Diff == nil {
		return nil
	}
	ph, nh := s.Prev.Hier, s.Next.Hier
	var want []cluster.MembershipChange
	var pc, nc []int
	for _, v := range ph.Levels[0].Nodes {
		pc = ph.AppendAncestorChain(v, pc[:0])
		nc = nh.AppendAncestorChain(v, nc[:0])
		depth := len(pc)
		if len(nc) > depth {
			depth = len(nc)
		}
		for i := 0; i < depth; i++ {
			old, nw := -1, -1
			if i < len(pc) {
				old = pc[i]
			}
			if i < len(nc) {
				nw = nc[i]
			}
			if old != nw {
				want = append(want, cluster.MembershipChange{Node: v, Level: i + 1, Old: old, New: nw})
			}
		}
	}
	slices.SortFunc(want, func(a, b cluster.MembershipChange) int {
		if a.Level != b.Level {
			return a.Level - b.Level
		}
		return a.Node - b.Node
	})
	got := s.Diff.Memberships
	if len(got) != len(want) {
		return fmt.Errorf("diff records %d membership changes, snapshots imply %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("membership change %d: diff says %+v, snapshots imply %+v", i, got[i], want[i])
		}
	}
	return nil
}

// checkDiffState recomputes the persistent-head state deltas from the
// two hierarchies and requires Diff.StateDeltas to match exactly.
func checkDiffState(s *Snapshot) error {
	if s.Prev == nil || s.Diff == nil {
		return nil
	}
	ph, nh := s.Prev.Hier, s.Next.Hier
	var want []cluster.StateDelta
	var ids []int
	for k := 0; k+1 < len(ph.Levels) && k+1 < len(nh.Levels); k++ {
		pl, nl := ph.Levels[k], nh.Levels[k]
		if pl.State == nil || nl.State == nil {
			continue
		}
		ids = ids[:0]
		for id := range pl.State {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			nw, ok := nl.State[id]
			if !ok {
				continue
			}
			if old := pl.State[id]; old != nw {
				want = append(want, cluster.StateDelta{Level: k, Node: id, Old: old, New: nw})
			}
		}
	}
	got := s.Diff.StateDeltas
	if len(got) != len(want) {
		return fmt.Errorf("diff records %d state deltas, snapshots imply %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("state delta %d: diff says %+v, snapshots imply %+v", i, got[i], want[i])
		}
	}
	return nil
}

// ---------------------------------------------------------------- table

// checkTableOwners verifies the CHLM table's owner structure: the
// internal audit (one row per owner, index bijective, servers/chains
// aligned) plus the coverage contract — owners are exactly the level-0
// nodes the hierarchy covers.
func checkTableOwners(s *Snapshot) error {
	t := s.Next.Table
	if t == nil {
		return nil
	}
	if err := t.Audit(); err != nil {
		return err
	}
	want := s.Next.Hier.LevelNodes(0)
	got := t.Owners()
	if !slices.Equal(got, want) {
		return fmt.Errorf("table covers %d owners, hierarchy level 0 has %d nodes (or sets differ)",
			len(got), len(want))
	}
	return nil
}

// checkTableChains verifies each owner's logical ancestor chain in the
// table against a fresh identity lookup over the hierarchy — the
// continuity the handoff classification (φ vs γ) depends on.
func checkTableChains(s *Snapshot) error {
	t := s.Next.Table
	if t == nil {
		return nil
	}
	h, ids := s.Next.Hier, s.Next.IDs
	var buf []uint64
	for _, v := range t.Owners() {
		buf = ids.AppendChainOf(h, v, buf[:0])
		chain := t.Chain(v)
		if !slices.Equal(chain, buf) {
			return fmt.Errorf("owner %d chain %v does not match hierarchy chain %v", v, chain, buf)
		}
	}
	return nil
}

// checkTableDangling verifies that every server entry within an
// owner's chain depth resolves to a live owner node: after any
// handoff, no entry may point at a node outside the covered set and no
// entry inside the chain may be unassigned.
func checkTableDangling(s *Snapshot) error {
	t := s.Next.Table
	if t == nil {
		return nil
	}
	owners := t.Owners()
	for _, v := range owners {
		for k := 1; k <= t.Levels(v); k++ {
			srv := t.Server(v, k)
			if srv < 0 {
				return fmt.Errorf("owner %d level %d has no server despite a level-%d ancestor", v, k, k)
			}
			if i := sort.SearchInts(owners, srv); i >= len(owners) || owners[i] != srv {
				return fmt.Errorf("owner %d level %d server %d is not a live owner (dangling pointer)", v, k, srv)
			}
		}
	}
	return nil
}

// checkTableRebuild is the reuse-vs-scratch differential: the table
// produced by the incremental zero-alloc update path must be
// observably identical to a from-scratch BuildTable over the same
// snapshot. This is the check that catches stale reused rows — e.g. a
// handoff that failed to rehome an entry after a cluster change.
func checkTableRebuild(s *Snapshot) error {
	t := s.Next.Table
	if t == nil || s.Selector == nil {
		return nil
	}
	fresh := s.Selector.BuildTable(s.Next.Hier, s.Next.IDs)
	if !slices.Equal(t.Owners(), fresh.Owners()) {
		return fmt.Errorf("owner sets differ from a fresh rebuild (%d vs %d owners)",
			len(t.Owners()), len(fresh.Owners()))
	}
	for _, v := range t.Owners() {
		if !slices.Equal(t.Chain(v), fresh.Chain(v)) {
			return fmt.Errorf("owner %d chain %v differs from fresh rebuild %v", v, t.Chain(v), fresh.Chain(v))
		}
		if lt, lf := t.Levels(v), fresh.Levels(v); lt != lf {
			return fmt.Errorf("owner %d has %d levels, fresh rebuild has %d", v, lt, lf)
		}
		for k := 1; k <= t.Levels(v); k++ {
			if got, want := t.Server(v, k), fresh.Server(v, k); got != want {
				return fmt.Errorf("owner %d level %d server %d differs from fresh rebuild %d (stale handoff)",
					v, k, got, want)
			}
		}
	}
	return nil
}

// checkKineticGraph is the kinetic-vs-scan differential: the level-0
// graph maintained incrementally by the event engine (certificates +
// pair rechecks) must carry exactly the edge set of a fresh full
// unit-disk scan over the same positions. Only active under the
// kinetic engine (Snapshot.Graph / Snapshot.KineticRef set by the
// looper on checked ticks).
func checkKineticGraph(s *Snapshot) error {
	g, ref := s.Graph, s.KineticRef
	if g == nil || ref == nil {
		return nil
	}
	if g.Equal(ref) {
		return nil
	}
	// Name the first divergent edge in either direction for triage.
	var diverge topology.EdgeKey
	missing := false
	ref.ForEachEdge(func(e topology.EdgeKey) {
		if missing || diverge != 0 {
			return
		}
		if a, b := e.Nodes(); !g.HasEdge(a, b) {
			diverge, missing = e, true
		}
	})
	if !missing {
		g.ForEachEdge(func(e topology.EdgeKey) {
			if diverge != 0 {
				return
			}
			if a, b := e.Nodes(); !ref.HasEdge(a, b) {
				diverge = e
			}
		})
	}
	if missing {
		return fmt.Errorf("kinetic graph missing edge %v present in full rescan (%d vs %d edges)",
			diverge, g.EdgeCount(), ref.EdgeCount())
	}
	return fmt.Errorf("kinetic graph carries edge %v absent from full rescan (%d vs %d edges)",
		diverge, g.EdgeCount(), ref.EdgeCount())
}

// checkIncrementalHierarchy is the maintenance differential: the
// hierarchy and identities produced by the incremental (delta-patched)
// maintainer must be byte-identical to a fresh oracle rebuild over the
// same tick input — same levels, node sets, elections, level graphs,
// ALCA states, and logical IDs including the fresh-ID allocation
// order. The rebuild runs against pre-Maintain clones of the identity
// tracker and elector (taken by the looper before the live Maintain),
// so it sees exactly the state the incremental path saw without
// advancing either. Only active under the incremental maintainer on
// checked ticks.
func checkIncrementalHierarchy(s *Snapshot) error {
	in, tr := s.MaintainIn, s.MaintainTracker
	if in == nil || tr == nil {
		return nil
	}
	refH, refIDs := cluster.BuildWithIdentities(
		in.G0, in.Nodes, s.MaintainCfg, in.PrevH, in.PrevIDs, tr, in.Now)
	h := s.Next.Hier
	if err := hierEqual(h, refH); err != nil {
		return fmt.Errorf("hierarchy differs from oracle rebuild: %w", err)
	}
	for k := 1; k <= refH.L(); k++ {
		for _, hd := range refH.LevelNodes(k) {
			want, wok := refIDs.Logical(k, hd)
			got, gok := s.Next.IDs.Logical(k, hd)
			if wok != gok || want != got {
				return fmt.Errorf("level-%d cluster %d logical %d(%t) differs from oracle rebuild %d(%t)",
					k, hd, got, gok, want, wok)
			}
		}
	}
	return nil
}

// hierEqual reports the first structural difference between two
// hierarchy snapshots, or nil.
func hierEqual(got, want *cluster.Hierarchy) error {
	if got.L() != want.L() {
		return fmt.Errorf("L=%d vs %d", got.L(), want.L())
	}
	if got.Reach != want.Reach || got.ForcedTop != want.ForcedTop {
		return fmt.Errorf("reach/forcedtop (%d,%t) vs (%d,%t)",
			got.Reach, got.ForcedTop, want.Reach, want.ForcedTop)
	}
	for k := 0; k <= want.L(); k++ {
		g, w := got.Levels[k], want.Levels[k]
		if !slices.Equal(g.Nodes, w.Nodes) {
			return fmt.Errorf("level %d: %d nodes vs %d", k, len(g.Nodes), len(w.Nodes))
		}
		if (g.Graph == nil) != (w.Graph == nil) || (g.Graph != nil && !g.Graph.Equal(w.Graph)) {
			return fmt.Errorf("level %d: graphs differ", k)
		}
		if err := intMapEqual(g.Head, w.Head); err != nil {
			return fmt.Errorf("level %d Head: %w", k, err)
		}
		if err := intMapEqual(g.Member, w.Member); err != nil {
			return fmt.Errorf("level %d Member: %w", k, err)
		}
		if err := intMapEqual(g.State, w.State); err != nil {
			return fmt.Errorf("level %d State: %w", k, err)
		}
		if len(g.Members) != len(w.Members) {
			return fmt.Errorf("level %d Members: %d clusters vs %d", k, len(g.Members), len(w.Members))
		}
		//lint:ignore maprange equality check; order affects only which mismatch is reported
		for c, wm := range w.Members {
			if !slices.Equal(g.Members[c], wm) {
				return fmt.Errorf("level %d cluster %d member list differs", k, c)
			}
		}
	}
	return nil
}

// intMapEqual reports the first difference between two int maps (nil
// and empty are interchangeable), or nil.
func intMapEqual(got, want map[int]int) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d entries vs %d", len(got), len(want))
	}
	//lint:ignore maprange equality check; order affects only which mismatch is reported
	for k, wv := range want {
		if gv, ok := got[k]; !ok || gv != wv {
			return fmt.Errorf("key %d: %d vs %d", k, gv, wv)
		}
	}
	return nil
}

// ---------------------------------------------------------------- shared

func hierLevelNodes(h *cluster.Hierarchy, k int) []int {
	if l := h.Level(k); l != nil {
		return l.Nodes
	}
	return nil
}

func hierLevelGraph(l *cluster.Level) *topology.Graph {
	if l == nil {
		return nil
	}
	return l.Graph
}
