package invariant_test

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/invariant"
	"repro/internal/lm"
	"repro/internal/obs"
	"repro/internal/topology"
)

// buildState constructs a full derived-state snapshot (hierarchy,
// identities, LM table) over the given edge list.
func buildState(t *testing.T, n int, edges [][2]int) (*invariant.State, *lm.Selector) {
	t.Helper()
	g := topology.NewGraph(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	tracker := cluster.NewIdentityTracker()
	h, ids := cluster.BuildWithIdentities(
		g, topology.GiantComponent(g, nodes), cluster.Config{}, nil, nil, tracker, 0)
	sel := lm.NewSelector(nil)
	return &invariant.State{Hier: h, IDs: ids, Table: sel.BuildTable(h, ids)}, sel
}

// twoCliques is a 8-node topology with two 4-cliques and a bridge —
// small but deep enough to elect two levels.
func twoCliques(t *testing.T) (*invariant.State, *lm.Selector) {
	t.Helper()
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
		{3, 7},
	}
	return buildState(t, 8, edges)
}

func snapshotOf(st *invariant.State, sel *lm.Selector) *invariant.Snapshot {
	return &invariant.Snapshot{Tick: 1, Time: 1, Seed: 42, Next: st, Selector: sel}
}

// checkNames runs the catalog over s and returns the names of the
// checks that fired.
func checkNames(s *invariant.Snapshot) []string {
	var fired []string
	c := invariant.New(invariant.EveryTick, nil, func(v invariant.Violation) {
		fired = append(fired, v.Check)
	})
	c.CheckTick(s)
	return fired
}

func assertFired(t *testing.T, s *invariant.Snapshot, want string) {
	t.Helper()
	fired := checkNames(s)
	for _, name := range fired {
		if name == want {
			return
		}
	}
	t.Errorf("mutation not caught by %q (fired: %v)", want, fired)
}

func TestCleanStatePasses(t *testing.T) {
	st, sel := twoCliques(t)
	if fired := checkNames(snapshotOf(st, sel)); len(fired) != 0 {
		t.Fatalf("clean state flagged by %v", fired)
	}
	// And with an identical prev snapshot plus its (empty) diff.
	s := snapshotOf(st, sel)
	s.Prev = st
	s.Diff = cluster.ComputeDiff(st.Hier, st.Hier)
	if fired := checkNames(s); len(fired) != 0 {
		t.Fatalf("clean prev/next pair flagged by %v", fired)
	}
}

// TestEachCheckFires corrupts the snapshot one structure at a time and
// asserts the matching check (and not silence) reports it.
func TestEachCheckFires(t *testing.T) {
	t.Run("partition-missing-member", func(t *testing.T) {
		st, sel := twoCliques(t)
		delete(st.Hier.Levels[0].Member, 2)
		assertFired(t, snapshotOf(st, sel), "hierarchy-partition")
	})
	t.Run("partition-wrong-cluster", func(t *testing.T) {
		st, sel := twoCliques(t)
		lvl0 := st.Hier.Levels[0]
		// Reassign a node in Member without touching Members.
		lvl0.Member[0] = st.Hier.Levels[1].Nodes[len(st.Hier.Levels[1].Nodes)-1]
		assertFired(t, snapshotOf(st, sel), "hierarchy-partition")
	})
	t.Run("partition-head-not-own-cluster", func(t *testing.T) {
		st, sel := twoCliques(t)
		lvl1 := st.Hier.Levels[1]
		head, other := lvl1.Nodes[0], lvl1.Nodes[len(lvl1.Nodes)-1]
		// Move the head itself into another cluster, keeping the
		// partition otherwise consistent.
		moveMember(st.Hier.Levels[0], head, other)
		assertFired(t, snapshotOf(st, sel), "hierarchy-partition")
	})
	t.Run("reach-detached-member", func(t *testing.T) {
		// Two triangles bridged through a chain: pick a non-head node
		// and claim it is a member of a head it is not adjacent to,
		// keeping the partition itself valid.
		edges := [][2]int{
			{0, 1}, {0, 2}, {1, 2},
			{3, 4}, {3, 5}, {4, 5},
			{2, 5}, {5, 8}, {8, 9},
		}
		st, sel := buildState(t, 10, edges)
		lvl0 := st.Hier.Levels[0]
		victim, far := -1, -1
		for _, v := range lvl0.Nodes {
			if lvl0.Member[v] == v {
				continue // head; moving it breaks the partition instead
			}
			for _, c := range st.Hier.Levels[1].Nodes {
				if c != lvl0.Member[v] && !lvl0.Graph.HasEdge(v, c) {
					victim, far = v, c
				}
			}
		}
		if victim < 0 {
			t.Fatal("no non-head node with a non-adjacent foreign head")
		}
		moveMember(lvl0, victim, far)
		assertFired(t, snapshotOf(st, sel), "hierarchy-reach")
	})
	t.Run("alca-state-count", func(t *testing.T) {
		st, sel := twoCliques(t)
		head := st.Hier.Levels[1].Nodes[0]
		st.Hier.Levels[0].State[head]++
		assertFired(t, snapshotOf(st, sel), "alca-state")
	})
	t.Run("alca-unit-step", func(t *testing.T) {
		prev, sel := twoCliques(t)
		next, _ := twoCliques(t)
		// Forge the prev head state without any elector flip backing
		// it: the Head maps are identical across the tick, so the
		// decomposition (delta == gained - lost electors) must reject
		// the phantom state change. Only the cross-snapshot half of
		// alca-state can see this — next alone is self-consistent.
		head := prev.Hier.Levels[1].Nodes[0]
		prev.Hier.Levels[0].State[head]--
		s := snapshotOf(next, sel)
		s.Prev = prev
		s.Diff = cluster.ComputeDiff(prev.Hier, next.Hier)
		assertFired(t, s, "alca-state")
	})
	t.Run("diff-nodes-spurious-election", func(t *testing.T) {
		st, sel := twoCliques(t)
		s := snapshotOf(st, sel)
		s.Prev = st
		d := cluster.ComputeDiff(st.Hier, st.Hier)
		d.Elections = map[int][]int{1: {99}}
		s.Diff = d
		assertFired(t, s, "diff-reconcile-nodes")
	})
	t.Run("diff-links-missing-event", func(t *testing.T) {
		prev, sel := twoCliques(t)
		next, _ := buildState(t, 8, [][2]int{
			{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
			{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
			{3, 7}, {2, 6}, // extra bridge changes the level-1 graph
		})
		s := snapshotOf(next, sel)
		s.Prev = prev
		d := cluster.ComputeDiff(prev.Hier, next.Hier)
		d.MigrationLinkEvents = map[int][]topology.LinkEvent{}
		d.StructuralLinkEvents = map[int][]topology.LinkEvent{}
		s.Diff = d
		if prevG, nextG := prev.Hier.Levels[1].Graph, next.Hier.Levels[1].Graph; prevG.Equal(nextG) {
			t.Skip("level-1 graphs identical; topology change did not propagate")
		}
		assertFired(t, s, "diff-reconcile-links")
	})
	t.Run("diff-members-dropped", func(t *testing.T) {
		prev, sel := twoCliques(t)
		next, _ := buildState(t, 8, [][2]int{
			{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3},
			{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
			{2, 7}, {3, 7},
		})
		s := snapshotOf(next, sel)
		s.Prev = prev
		d := cluster.ComputeDiff(prev.Hier, next.Hier)
		if len(d.Memberships) == 0 {
			t.Skip("topology change produced no membership events")
		}
		d.Memberships = d.Memberships[:len(d.Memberships)-1]
		s.Diff = d
		assertFired(t, s, "diff-reconcile-members")
	})
	t.Run("diff-state-forged", func(t *testing.T) {
		st, sel := twoCliques(t)
		s := snapshotOf(st, sel)
		s.Prev = st
		d := cluster.ComputeDiff(st.Hier, st.Hier)
		head := st.Hier.Levels[1].Nodes[0]
		d.StateDeltas = append(d.StateDeltas, cluster.StateDelta{Level: 0, Node: head, Old: 1, New: 2})
		s.Diff = d
		assertFired(t, s, "diff-reconcile-state")
	})
	t.Run("table-misrouted-entry", func(t *testing.T) {
		st, sel := twoCliques(t)
		if !st.Table.CorruptServer(5) {
			t.Fatal("CorruptServer found nothing to corrupt")
		}
		assertFired(t, snapshotOf(st, sel), "table-rebuild-equal")
	})
	t.Run("table-missing-owner", func(t *testing.T) {
		st, sel := twoCliques(t)
		// Swap in a table built over a hierarchy missing one clique:
		// the owner set no longer matches the hierarchy's level 0.
		g := topology.NewGraph(8)
		for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}} {
			g.AddEdge(e[0], e[1])
		}
		small, smallIDs := cluster.BuildWithIdentities(
			g, topology.GiantComponent(g, []int{0, 1, 2, 3}), cluster.Config{},
			nil, nil, cluster.NewIdentityTracker(), 0)
		st.Table = sel.BuildTable(small, smallIDs)
		assertFired(t, snapshotOf(st, sel), "table-owners")
	})
}

// TestCheckPanicIsViolation pins runCheck's recover: a check that
// panics on unreachably corrupt state (here a nil hierarchy) reports a
// violation rather than crashing the harness.
func TestCheckPanicIsViolation(t *testing.T) {
	st, sel := twoCliques(t)
	st.Hier = nil
	var details []string
	c := invariant.New(invariant.EveryTick, nil, func(v invariant.Violation) {
		details = append(details, v.Detail)
	})
	if n := c.CheckTick(snapshotOf(st, sel)); n == 0 {
		t.Fatal("nil hierarchy produced no violations")
	}
	panicked := false
	for _, d := range details {
		if strings.Contains(d, "check panicked") {
			panicked = true
		}
	}
	if !panicked {
		t.Errorf("no check reported a recovered panic: %v", details)
	}
}

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []invariant.Level{invariant.Off, invariant.Sampled, invariant.EveryTick} {
		got, err := invariant.ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if got, err := invariant.ParseLevel(""); err != nil || got != invariant.Off {
		t.Errorf("ParseLevel(\"\") = %v, %v; want Off", got, err)
	}
	if _, err := invariant.ParseLevel("banana"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestShouldCheckCadence(t *testing.T) {
	every := invariant.New(invariant.EveryTick, nil, func(invariant.Violation) {})
	sampled := invariant.New(invariant.Sampled, nil, func(invariant.Violation) {})
	var off *invariant.Checker
	for tick := 0; tick < 40; tick++ {
		if !every.ShouldCheck(tick) {
			t.Fatalf("every-tick skipped tick %d", tick)
		}
		if off.ShouldCheck(tick) {
			t.Fatalf("nil checker wants tick %d", tick)
		}
		if got, want := sampled.ShouldCheck(tick), tick%16 == 1; got != want {
			t.Fatalf("sampled at tick %d = %v, want %v", tick, got, want)
		}
	}
	if invariant.New(invariant.Off, nil, nil) != nil {
		t.Error("New(Off) should return nil")
	}
}

func TestViolationCountersAndDump(t *testing.T) {
	st, sel := twoCliques(t)
	st.Table.CorruptServer(3)
	reg := obs.NewRegistry()
	var got invariant.Violation
	c := invariant.New(invariant.EveryTick, reg, func(v invariant.Violation) { got = v })
	if n := c.CheckTick(snapshotOf(st, sel)); n == 0 {
		t.Fatal("corrupt table produced no violations")
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.InvariantTicksChecked] != 1 {
		t.Errorf("ticks_checked = %d, want 1", snap.Counters[obs.InvariantTicksChecked])
	}
	if snap.Counters[obs.InvariantViolations] == 0 {
		t.Error("violations counter not incremented")
	}
	if got.Tick != 1 || got.Seed != 42 {
		t.Errorf("violation context = tick %d seed %d, want tick 1 seed 42", got.Tick, got.Seed)
	}
	if !strings.Contains(got.Dump, "next:") || !strings.Contains(got.Dump, "table:") {
		t.Errorf("dump missing sections:\n%s", got.Dump)
	}
	if !strings.Contains(got.Error(), "table-rebuild-equal") {
		t.Errorf("Error() does not name the check: %s", got.Error())
	}
}

// moveMember reassigns node v to cluster dst in both Member and
// Members, keeping the partition structurally valid so only the reach
// check can object.
func moveMember(lvl *cluster.Level, v, dst int) {
	old := lvl.Member[v]
	lvl.Member[v] = dst
	src := lvl.Members[old]
	for i, u := range src {
		if u == v {
			lvl.Members[old] = append(src[:i], src[i+1:]...)
			break
		}
	}
	members := append([]int(nil), lvl.Members[dst]...)
	members = append(members, v)
	for i := len(members) - 1; i > 0 && members[i] < members[i-1]; i-- {
		members[i], members[i-1] = members[i-1], members[i]
	}
	lvl.Members[dst] = members
}
