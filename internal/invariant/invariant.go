// Package invariant is the runtime invariant checker of the simulator:
// a registry of cheap structural checks over a scan tick's before and
// after state, each guarding one of the paper's structural premises —
// cluster membership partitions every level (§2.1–2.2), members stay
// within h_k hops of their head (Fig. 2, Eq. 10), ALCA state
// transitions decompose into unit steps (Fig. 3), the CHLM table has
// exactly one owner row per (node, level) with no dangling pointers
// after handoff (§3.2, §4), and the per-tick Diff reconciles the two
// snapshots event by event (§4–§5).
//
// The checker is threaded through simnet.Config.CheckLevel (off /
// sampled / every-tick). A violation carries the offending tick, seed,
// and a minimal state dump, and is counted in the run's obs registry
// (CounterTicksChecked / CounterViolations); delivery is through a
// callback so the fuzzing harness (invariant/prop) can collect,
// shrink, and replay failing scenarios.
package invariant

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/lm"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Level selects how often the checker runs.
type Level int

const (
	// Off disables all checks (the default).
	Off Level = iota
	// Sampled checks the first tick and every sampleStride-th after —
	// cheap enough to leave on in long experiments.
	Sampled
	// EveryTick checks every scan tick (tests, fuzzing, debugging).
	EveryTick
)

// sampleStride is the tick period of Sampled mode.
const sampleStride = 16

// Level names accepted by ParseLevel (and simnet.Config.CheckLevel).
const (
	LevelOff       = "off"
	LevelSampled   = "sampled"
	LevelEveryTick = "every-tick"
)

// ParseLevel maps a config string to a Level. The empty string means
// Off.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", LevelOff:
		return Off, nil
	case LevelSampled:
		return Sampled, nil
	case LevelEveryTick:
		return EveryTick, nil
	}
	return Off, fmt.Errorf("invariant: unknown check level %q (want %s|%s|%s)",
		s, LevelOff, LevelSampled, LevelEveryTick)
}

// String returns the ParseLevel-compatible name.
func (l Level) String() string {
	switch l {
	case Sampled:
		return LevelSampled
	case EveryTick:
		return LevelEveryTick
	}
	return LevelOff
}

// Violation is one failed check, with enough context to reproduce it:
// the check name, the offending tick and simulated time, the run seed,
// and a minimal dump of the state the check saw.
type Violation struct {
	Check  string  `json:"check"`
	Tick   int     `json:"tick"`
	Time   float64 `json:"time"`
	Seed   uint64  `json:"seed"`
	Detail string  `json:"detail"`
	Dump   string  `json:"dump,omitempty"`
}

// Error implements error.
func (v Violation) Error() string {
	return fmt.Sprintf("invariant %s violated at tick %d (t=%.2f, seed %d): %s\n%s",
		v.Check, v.Tick, v.Time, v.Seed, v.Detail, v.Dump)
}

// State bundles one snapshot of the simulator's derived state.
type State struct {
	Hier  *cluster.Hierarchy
	IDs   *cluster.Identities
	Table *lm.Table
}

// Snapshot is the per-tick input to the checker: the live (t-1)
// snapshot, the fresh (t) snapshot, and the Diff computed between
// them. Prev and Diff are nil for the setup snapshot (tick 0), which
// disables the cross-snapshot checks.
type Snapshot struct {
	Tick int
	Time float64
	Seed uint64

	Prev *State // nil at setup
	Next *State
	Diff *cluster.Diff // nil at setup

	// Selector, when set, enables the rebuild differential
	// (table-rebuild-equal): Next.Table must equal a from-scratch
	// BuildTable. This is the check that catches buffer-reuse
	// corruption in the zero-alloc incremental path.
	Selector *lm.Selector

	// Graph and KineticRef, when both set, enable the kinetic-graph
	// differential (kinetic-graph-equal): the event-maintained level-0
	// edge set must equal KineticRef, a fresh full scan over the same
	// positions. Populated only under the kinetic engine on checked
	// ticks; nil otherwise.
	Graph      *topology.Graph
	KineticRef *topology.Graph

	// MaintainIn and MaintainTracker, when both set, enable the
	// maintenance differential (incremental-hierarchy-equal): Next.Hier
	// and Next.IDs must equal a fresh oracle rebuild
	// (cluster.BuildWithIdentities) over the same tick input, run
	// against pre-Maintain clones of the identity tracker and the
	// elector (MaintainCfg.Elector holds the clone). Populated only
	// under the incremental maintainer on checked ticks; nil otherwise.
	MaintainIn      *cluster.MaintainInput
	MaintainCfg     cluster.Config
	MaintainTracker *cluster.IdentityTracker
}

// Check is one named invariant with the paper anchor it guards.
type Check struct {
	Name   string
	Guards string // the paper equation/figure this check protects
	Fn     func(*Snapshot) error
}

// Checker runs the check catalog at the configured level and reports
// violations. A nil *Checker is valid and never checks, so callers
// need no "is checking on?" branches.
type Checker struct {
	level       Level
	onViolation func(Violation)
	checks      []Check

	ticksChecked *obs.Counter
	violations   *obs.Counter
}

// New returns a checker at the given level, or nil for Off. Counters
// register in reg (nil-safe). onViolation receives each violation; a
// nil callback panics on the first violation with the full Violation
// as the panic value.
func New(level Level, reg *obs.Registry, onViolation func(Violation)) *Checker {
	if level == Off {
		return nil
	}
	return &Checker{
		level:        level,
		onViolation:  onViolation,
		checks:       Checks(),
		ticksChecked: reg.Counter(obs.InvariantTicksChecked),
		violations:   reg.Counter(obs.InvariantViolations),
	}
}

// ShouldCheck reports whether the given tick is due for checking.
func (c *Checker) ShouldCheck(tick int) bool {
	if c == nil {
		return false
	}
	if c.level == EveryTick {
		return true
	}
	return tick%sampleStride == 1
}

// CheckTick runs every check over the snapshot and returns the number
// of violations found. A check that panics (e.g. on state too corrupt
// to traverse) is itself reported as a violation of that check rather
// than tearing down the run.
func (c *Checker) CheckTick(s *Snapshot) int {
	if c == nil {
		return 0
	}
	c.ticksChecked.Inc()
	found := 0
	for i := range c.checks {
		chk := &c.checks[i]
		if err := runCheck(chk, s); err != nil {
			found++
			c.violations.Inc()
			c.report(Violation{
				Check:  chk.Name,
				Tick:   s.Tick,
				Time:   s.Time,
				Seed:   s.Seed,
				Detail: err.Error(),
				Dump:   Dump(s),
			})
		}
	}
	return found
}

func (c *Checker) report(v Violation) {
	if c.onViolation != nil {
		c.onViolation(v)
		return
	}
	panic(v)
}

// runCheck invokes one check, converting a panic inside it into an
// error so one corrupt structure cannot crash the whole harness.
func runCheck(chk *Check, s *Snapshot) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("check panicked: %v", r)
		}
	}()
	return chk.Fn(s)
}

// Dump renders the minimal state dump attached to violations: level
// populations and edge counts of both snapshots, diff event counts,
// and table size — enough to triage without attaching full snapshots.
func Dump(s *Snapshot) string {
	var b strings.Builder
	if s.Prev != nil {
		dumpHier(&b, "prev", s.Prev.Hier)
	}
	dumpHier(&b, "next", s.Next.Hier)
	if d := s.Diff; d != nil {
		el, rj, mig, str := 0, 0, 0, 0
		maxL := maxLevels(s)
		for k := 1; k <= maxL; k++ {
			el += len(d.Elections[k])
			rj += len(d.Rejections[k])
			mig += len(d.MigrationLinkEvents[k])
			str += len(d.StructuralLinkEvents[k])
		}
		fmt.Fprintf(&b, "  diff: elections=%d rejections=%d miglinks=%d strlinks=%d memberships=%d statedeltas=%d\n",
			el, rj, mig, str, len(d.Memberships), len(d.StateDeltas))
	}
	if t := s.Next.Table; t != nil {
		fmt.Fprintf(&b, "  table: owners=%d entries=%d\n", len(t.Owners()), t.EntryCount())
	}
	return b.String()
}

func dumpHier(b *strings.Builder, tag string, h *cluster.Hierarchy) {
	if h == nil {
		fmt.Fprintf(b, "  %s: <nil>\n", tag)
		return
	}
	fmt.Fprintf(b, "  %s: L=%d nodes=[", tag, h.L())
	for k, lvl := range h.Levels {
		if k > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(b, "%d", len(lvl.Nodes))
	}
	b.WriteString("] edges=[")
	for k, lvl := range h.Levels {
		if k > 0 {
			b.WriteByte('/')
		}
		if lvl.Graph != nil {
			fmt.Fprintf(b, "%d", lvl.Graph.EdgeCount())
		} else {
			b.WriteByte('-')
		}
	}
	b.WriteString("]\n")
}

func maxLevels(s *Snapshot) int {
	maxL := len(s.Next.Hier.Levels)
	if s.Prev != nil && len(s.Prev.Hier.Levels) > maxL {
		maxL = len(s.Prev.Hier.Levels)
	}
	return maxL
}
