package prop

import (
	"os"
	"testing"

	"repro/internal/simnet"
)

// FuzzScenario is the property-based fuzz target: arbitrary bytes
// become a scenario (FromParams), which must survive the full battery
// — every-tick invariant checks plus the serial/parallel/reuse
// differential. The f.Add seeds mirror the TestParallelMatchesSerial
// matrix plus the known-tricky degenerate configs; `go test` replays
// them (and testdata/fuzz, once the fuzzer has found anything)
// deterministically in tier-1, and `make fuzz` explores from there.
//
// On failure the scenario is shrunk to a minimal reproduction; set
// MANET_FUZZ_FAILURES to a directory to also persist it as a corpus
// file (the nightly CI job uploads that directory as an artifact).
func FuzzScenario(f *testing.F) {
	// Param order: seed, n, mobility, hop, degree, speed, churn,
	// topArity, ticks, elector, flags, link.
	f.Add(uint64(7), uint16(47), uint8(0), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(0), uint8(0))  // base waypoint run
	f.Add(uint64(11), uint16(47), uint8(0), uint8(0), uint8(12), uint8(9), uint8(1), uint8(0), uint8(8), uint8(0), uint8(0), uint8(0)) // churn
	f.Add(uint64(3), uint16(45), uint8(0), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(3), uint8(0))  // state+class tracking
	f.Add(uint64(5), uint16(47), uint8(0), uint8(1), uint8(9), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(16), uint8(0))  // BFS hop sampling
	f.Add(uint64(2), uint16(4), uint8(0), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(16), uint8(0))  // tiny N
	f.Add(uint64(1), uint16(0), uint8(0), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(0), uint8(0))   // N=1 (config rejection)
	f.Add(uint64(9), uint16(22), uint8(0), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(4), uint8(0))  // all nodes colocated
	f.Add(uint64(13), uint16(30), uint8(2), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(0), uint8(0)) // zero mobility
	f.Add(uint64(17), uint16(39), uint8(1), uint8(0), uint8(5), uint8(4), uint8(0), uint8(1), uint8(20), uint8(2), uint8(0), uint8(0)) // debounced elector, no top cap
	f.Add(uint64(19), uint16(43), uint8(4), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(0), uint8(0)) // Gauss–Markov mobility
	f.Add(uint64(23), uint16(41), uint8(5), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(0), uint8(0)) // Manhattan mobility
	f.Add(uint64(29), uint16(44), uint8(6), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(0), uint8(0)) // hotspot mobility
	f.Add(uint64(31), uint16(46), uint8(0), uint8(0), uint8(12), uint8(9), uint8(0), uint8(0), uint8(8), uint8(0), uint8(0), uint8(1)) // logshadow link (scan-only)

	f.Fuzz(func(t *testing.T, seed uint64, n uint16, mobility, hop, degree, speed, churn, topArity, ticks, elector, flags, link uint8) {
		sc := FromParams(seed, n, mobility, hop, degree, speed, churn, topArity, ticks, elector, flags, link)
		fail := CheckScenario(sc)
		if fail == nil {
			return
		}
		shrunk := Shrink(fail)
		if dir := os.Getenv("MANET_FUZZ_FAILURES"); dir != "" {
			if path, err := WriteRepro(dir, shrunk); err != nil {
				t.Logf("could not persist repro: %v", err)
			} else {
				t.Logf("shrunk repro written to %s", path)
			}
		}
		t.Fatalf("%v", shrunk)
	})
}

// TestRegressionCorpusReplays replays testdata/regress in tier-1: the
// parallel-determinism matrix plus the degenerate configs, each pinned
// to its expected outcome (all currently healthy — any Failure the
// fuzzer finds lands here via WriteRepro and stays as a regression).
func TestRegressionCorpusReplays(t *testing.T) {
	corpus, err := ReadCorpus("testdata/regress")
	if err != nil {
		t.Fatalf("ReadCorpus: %v", err)
	}
	if len(corpus) < 8 {
		t.Fatalf("regression corpus has %d entries, want >= 8", len(corpus))
	}
	names := make([]string, 0, len(corpus))
	for name := range corpus {
		names = append(names, name)
	}
	for _, name := range names {
		r := corpus[name]
		t.Run(name, func(t *testing.T) {
			fail := CheckScenario(r.Scenario)
			if r.Kind == "" {
				if fail != nil {
					t.Fatalf("pinned-healthy scenario now fails: %v", fail)
				}
				return
			}
			if fail == nil {
				t.Fatalf("pinned failure %s/%s no longer reproduces", r.Kind, r.Check)
			}
			if fail.Kind != r.Kind {
				t.Errorf("failure kind %q, corpus pins %q", fail.Kind, r.Kind)
			}
			if r.Check != "" && fail.Check != r.Check {
				t.Errorf("failed check %q, corpus pins %q", fail.Check, r.Check)
			}
		})
	}
}

// TestSeededFaultCaughtAndShrunk is the end-to-end acceptance
// demonstration: an intentionally seeded handoff bug (a periodically
// misrouted table entry) must be caught by the invariant battery,
// shrunk to a <= 200-tick reproduction, persisted, and replayed from
// the corpus file.
func TestSeededFaultCaughtAndShrunk(t *testing.T) {
	sc := Scenario{
		Seed: 7, N: 48, Ticks: 160,
		Fault: simnet.FaultHandoffMisroute,
	}
	fail := CheckScenario(sc)
	if fail == nil {
		t.Fatal("seeded handoff fault not caught")
	}
	if fail.Kind != KindViolation || fail.Check != "table-rebuild-equal" {
		t.Fatalf("fault caught as %s/%s, want violation/table-rebuild-equal", fail.Kind, fail.Check)
	}

	shrunk := Shrink(fail)
	if shrunk.Scenario.Ticks > 200 {
		t.Errorf("shrunk reproduction needs %d ticks, want <= 200", shrunk.Scenario.Ticks)
	}
	if shrunk.Scenario.N > sc.N {
		t.Errorf("shrinking grew N to %d", shrunk.Scenario.N)
	}

	// Persist and replay the shrunk reproduction from disk.
	dir := t.TempDir()
	path, err := WriteRepro(dir, shrunk)
	if err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	corpus, err := ReadCorpus(dir)
	if err != nil {
		t.Fatalf("ReadCorpus: %v", err)
	}
	if len(corpus) != 1 {
		t.Fatalf("corpus has %d entries, want 1 (%s)", len(corpus), path)
	}
	for _, r := range corpus {
		replay := CheckScenario(r.Scenario)
		if replay == nil {
			t.Fatal("persisted reproduction no longer fails on replay")
		}
		if replay.Kind != r.Kind || replay.Check != r.Check {
			t.Errorf("replay failed as %s/%s, corpus recorded %s/%s",
				replay.Kind, replay.Check, r.Kind, r.Check)
		}
	}
}

// TestShrinkTruncates pins the shrinker's tick-truncation: a failure
// at tick T must shrink to a run of at most T+1 ticks.
func TestShrinkTruncates(t *testing.T) {
	sc := Scenario{Seed: 7, N: 24, Ticks: 150, Fault: simnet.FaultHandoffMisroute}
	fail := CheckScenario(sc)
	if fail == nil {
		t.Fatal("fault not caught")
	}
	shrunk := Shrink(fail)
	if shrunk.Tick < 1 {
		t.Fatalf("shrunk failure lost its tick: %+v", shrunk)
	}
	if shrunk.Scenario.Ticks > shrunk.Tick+1 {
		t.Errorf("shrunk run is %d ticks for a tick-%d failure", shrunk.Scenario.Ticks, shrunk.Tick)
	}
}

// TestFromParamsTotal pins FromParams' totality: every byte pattern
// maps to a scenario that either runs clean or is a config error —
// never a panic or differential.
func TestFromParamsTotal(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive-ish sweep")
	}
	for i := 0; i < 8; i++ {
		b := uint8(i*37 + 1)
		sc := FromParams(uint64(i), uint16(i*31), b, b>>1, b, b>>2, b, b>>3, b, b>>4, b, b>>5)
		if fail := CheckScenario(sc); fail != nil {
			t.Errorf("FromParams case %d fails: %v", i, fail)
		}
	}
}
