// Package prop is the property-based scenario harness over the
// runtime invariant checker: it generates random simulation
// configurations from fuzz-provided bytes, runs short simulations with
// every-tick invariant checks, differentially compares the serial,
// parallel, zero-alloc-reuse, and kinetic-engine paths, and shrinks failing scenarios
// to a minimal (config, seed, tick) triple written as a regression
// corpus file (testdata/regress). FuzzScenario in fuzz_test.go is the
// Go-native fuzz target; `make fuzz` drives it locally and the nightly
// CI job gives it a five-minute budget.
package prop

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/invariant"
	"repro/internal/par"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Elector names accepted by Scenario.Elector ("" = memoryless LCA).
const (
	ElectorSticky    = "sticky"
	ElectorDebounced = "debounced"
)

// Scenario is one generated simulation configuration — the JSON-stable
// subset of simnet.Config the fuzzer explores, plus the fault knob the
// seeded-bug tests use. The zero value of each field selects the
// simnet default.
type Scenario struct {
	Seed  uint64 `json:"seed"`
	N     int    `json:"n"`
	Ticks int    `json:"ticks"`

	Mobility string  `json:"mobility,omitempty"`
	Link     string  `json:"link,omitempty"`
	HopModel string  `json:"hop_model,omitempty"`
	Degree   float64 `json:"degree,omitempty"`
	Mu       float64 `json:"mu,omitempty"`

	ChurnRate    float64 `json:"churn_rate,omitempty"`
	MeanDowntime float64 `json:"mean_downtime,omitempty"`

	TopArity int    `json:"top_arity,omitempty"`
	Elector  string `json:"elector,omitempty"`

	TrackStates  bool `json:"track_states,omitempty"`
	TrackClasses bool `json:"track_classes,omitempty"`
	// Colocated collapses the deployment disc so every node hears
	// every other — the all-nodes-colocated degenerate topology.
	Colocated   bool `json:"colocated,omitempty"`
	NaiveNaming bool `json:"naive_naming,omitempty"`

	SampleHops int `json:"sample_hops,omitempty"`
	HopPairs   int `json:"hop_pairs,omitempty"`

	Fault string `json:"fault,omitempty"`
}

// FromParams decodes raw fuzz inputs into a Scenario. Every input
// maps to a valid-shaped scenario (modulo N=1, which exercises the
// config-rejection path), so the fuzzer's whole input space is
// meaningful.
func FromParams(seed uint64, n uint16, mobility, hop, degree, speed, churn, topArity, ticks, elector, flags, link uint8) Scenario {
	sc := Scenario{
		Seed:  seed,
		N:     1 + int(n)%96,
		Ticks: 4 + int(ticks)%40,
		Mobility: []string{
			simnet.MobilityWaypoint, simnet.MobilityDirection,
			simnet.MobilityStatic, simnet.MobilityGroup,
			simnet.MobilityGaussMarkov, simnet.MobilityManhattan,
			simnet.MobilityHotspot,
		}[int(mobility)%7],
		Link:     []string{"", simnet.LinkLogShadow}[int(link)%2],
		HopModel: []string{simnet.HopEuclidean, simnet.HopBFS}[int(hop)%2],
		Degree:   float64(3 + int(degree)%13),
		Mu:       float64(1 + int(speed)%30),
		TopArity: []int{0, -1, 4}[int(topArity)%3],
		Elector:  []string{"", ElectorSticky, ElectorDebounced}[int(elector)%3],
	}
	if int(churn)%4 == 1 {
		sc.ChurnRate, sc.MeanDowntime = 0.02, 5
	}
	if flags&1 != 0 {
		sc.TrackStates = true
	}
	if flags&2 != 0 {
		sc.TrackClasses = true
	}
	if flags&4 != 0 {
		sc.Colocated = true
	}
	if flags&8 != 0 {
		sc.NaiveNaming = true
	}
	if flags&16 != 0 {
		sc.SampleHops, sc.HopPairs = 2, 8
	}
	return sc
}

// Config translates the scenario into a runnable simnet.Config with
// every-tick invariant checks, a 1 s scan so Ticks counts scan ticks
// directly, and no warmup (every tick is measured and traced). engine
// selects the link engine ("" = the simnet default, scan), maintainer
// the hierarchy-maintenance strategy ("" = oracle).
func (sc Scenario) Config(workers int, engine, maintainer string) simnet.Config {
	cfg := simnet.Config{
		N:                    sc.N,
		Seed:                 sc.Seed,
		ScanInterval:         1,
		Duration:             float64(sc.Ticks),
		Warmup:               -1,
		Mobility:             sc.Mobility,
		Link:                 sc.Link,
		HopModel:             sc.HopModel,
		Degree:               sc.Degree,
		Mu:                   sc.Mu,
		ChurnRate:            sc.ChurnRate,
		MeanDowntime:         sc.MeanDowntime,
		TopArity:             sc.TopArity,
		TrackStates:          sc.TrackStates,
		TrackClasses:         sc.TrackClasses,
		NaiveNaming:          sc.NaiveNaming,
		SampleHops:           sc.SampleHops,
		HopPairs:             sc.HopPairs,
		Fault:                sc.Fault,
		CheckLevel:           invariant.LevelEveryTick,
		IntraTickParallelism: workers,
		Engine:               engine,
		Maintainer:           maintainer,
	}
	if sc.Colocated {
		// A degree target of 2N guarantees the density puts every
		// node inside every other's radius: the complete graph.
		cfg.Degree = float64(2*sc.N) + 2
	}
	switch sc.Elector {
	case ElectorSticky:
		cfg.Elector = cluster.StickyLCA{}
	case ElectorDebounced:
		cfg.Elector = &cluster.DebouncedLCA{Grace: 3, LevelScale: 1.9}
	}
	return cfg
}

// Failure kinds reported by CheckScenario.
const (
	KindPanic        = "panic"        // a path panicked mid-run
	KindViolation    = "violation"    // an invariant check fired
	KindDifferential = "differential" // serial vs parallel paths diverged
)

// Failure is a failing scenario with the minimal reproduction context:
// the scenario itself, what failed, and the earliest tick it failed
// at. WriteRepro persists it as a regression corpus file.
type Failure struct {
	Scenario Scenario `json:"scenario"`
	Kind     string   `json:"kind"`
	Check    string   `json:"check,omitempty"` // violated invariant (Kind == violation)
	Tick     int      `json:"tick,omitempty"`  // earliest failing tick, when known
	Detail   string   `json:"detail,omitempty"`
}

// Error implements error.
func (f *Failure) Error() string {
	data, _ := json.Marshal(f.Scenario)
	return fmt.Sprintf("prop: %s (check=%q tick=%d): %s\nscenario: %s",
		f.Kind, f.Check, f.Tick, f.Detail, data)
}

// maxViolations bounds the violations retained per run; one is enough
// to fail and the earliest is what the shrinker keys on.
const maxViolations = 32

// runResult is one simulation attempt's outcome.
type runResult struct {
	configErr  error
	panicErr   error
	violations []invariant.Violation
	res        []byte // Results JSON (Config stripped: funcs don't marshal)
	trace      []byte // per-tick trace stream
}

// runScenario executes the scenario on one path (workers = 0 serial,
// > 1 parallel; engine "" scan or simnet.EngineKinetic; maintainer ""
// oracle or simnet.MaintainerIncremental) with every-tick checks,
// capturing violations, the serialized results, and the trace.
func runScenario(sc Scenario, workers int, engine, maintainer string) runResult {
	var out runResult
	cfg := sc.Config(workers, engine, maintainer)
	var buf bytes.Buffer
	tr := trace.New(&buf)
	cfg.Observer = tr.Observer()
	cfg.OnViolation = func(v invariant.Violation) {
		if len(out.violations) < maxViolations {
			out.violations = append(out.violations, v)
		}
	}
	var r *simnet.Results
	var err error
	if perr := par.Recover(func() { r, err = simnet.Run(cfg) }); perr != nil {
		out.panicErr = perr
		return out
	}
	if err != nil {
		out.configErr = err
		return out
	}
	if cerr := tr.Close(); cerr != nil {
		out.panicErr = fmt.Errorf("trace close: %w", cerr)
		return out
	}
	data, merr := json.Marshal(struct {
		*simnet.Results
		Config struct{}
	}{Results: r})
	if merr != nil {
		out.panicErr = fmt.Errorf("marshal results: %w", merr)
		return out
	}
	out.res = data
	out.trace = buf.Bytes()
	return out
}

// workerCounts are the parallel paths differentially compared against
// the serial run (the same counts TestParallelMatchesSerial pins).
var workerCounts = []int{2, 3}

// CheckScenario runs the scenario's property battery and returns the
// first failure, or nil:
//
//  1. the serial run must not panic;
//  2. if the config is rejected, every path must reject it with the
//     same error (a config-validation differential is still a bug);
//  3. every-tick invariant checks must stay silent on every path;
//  4. the parallel paths must produce byte-identical Results and
//     traces to the serial run (which also pins the zero-alloc reuse
//     path: every run after the first tick reuses retired storage);
//  5. the kinetic engine must produce byte-identical Results and
//     traces to the scan engine, with its own every-tick checks
//     (including the kinetic-graph-equal differential) silent — unless
//     the scenario's link model is scan-only (logshadow), in which case
//     the kinetic engine must *reject* the config instead of silently
//     running the wrong predicate;
//  6. the incremental maintainer must produce byte-identical Results
//     and traces to the oracle run on every path — serial and parallel
//     under the scan engine, serial under the kinetic engine (the
//     latter only for kinetic-compatible link models) — with its own
//     every-tick checks (including the incremental-hierarchy-equal
//     oracle differential) silent.
func CheckScenario(sc Scenario) *Failure {
	serial := runScenario(sc, 0, "", "")
	if serial.panicErr != nil {
		return &Failure{Scenario: sc, Kind: KindPanic, Detail: serial.panicErr.Error()}
	}
	if serial.configErr != nil {
		p := runScenario(sc, workerCounts[0], "", "")
		if p.configErr == nil || p.configErr.Error() != serial.configErr.Error() {
			return &Failure{
				Scenario: sc, Kind: KindDifferential,
				Detail: fmt.Sprintf("serial rejects config (%v) but %d workers says: %v",
					serial.configErr, workerCounts[0], p.configErr),
			}
		}
		return nil // invalid config, consistently rejected everywhere
	}
	if len(serial.violations) > 0 {
		v := serial.violations[0]
		return &Failure{
			Scenario: sc, Kind: KindViolation,
			Check: v.Check, Tick: v.Tick, Detail: v.Detail,
		}
	}
	for _, w := range workerCounts {
		p := runScenario(sc, w, "", "")
		if p.panicErr != nil {
			return &Failure{
				Scenario: sc, Kind: KindPanic,
				Detail: fmt.Sprintf("%d workers: %v", w, p.panicErr),
			}
		}
		if p.configErr != nil {
			return &Failure{
				Scenario: sc, Kind: KindDifferential,
				Detail: fmt.Sprintf("serial accepts config but %d workers rejects it: %v", w, p.configErr),
			}
		}
		if len(p.violations) > 0 {
			v := p.violations[0]
			return &Failure{
				Scenario: sc, Kind: KindViolation,
				Check: v.Check, Tick: v.Tick,
				Detail: fmt.Sprintf("%d workers only: %s", w, v.Detail),
			}
		}
		if !bytes.Equal(serial.trace, p.trace) {
			return &Failure{
				Scenario: sc, Kind: KindDifferential,
				Tick:   diffTick(serial.trace, p.trace),
				Detail: fmt.Sprintf("trace diverges between serial and %d workers", w),
			}
		}
		if !bytes.Equal(serial.res, p.res) {
			return &Failure{
				Scenario: sc, Kind: KindDifferential,
				Detail: fmt.Sprintf("results diverge between serial and %d workers", w),
			}
		}
	}
	linkName := sc.Link
	if linkName == "" {
		linkName = simnet.LinkUnitDisk
	}
	kineticOK := simnet.LinkKinetic(linkName)
	k := runScenario(sc, 0, simnet.EngineKinetic, "")
	if !kineticOK {
		// Scan-only link model: the kinetic tracker's certificates
		// assume the exact unit-disk predicate, so accepting this
		// config would silently run the wrong radio. Validation must
		// reject it.
		if k.panicErr != nil {
			return &Failure{
				Scenario: sc, Kind: KindPanic,
				Detail: fmt.Sprintf("kinetic engine (scan-only link): %v", k.panicErr),
			}
		}
		if k.configErr == nil {
			return &Failure{
				Scenario: sc, Kind: KindDifferential,
				Detail: fmt.Sprintf("kinetic engine accepted scan-only link model %q", linkName),
			}
		}
		return checkIncremental(sc, serial, false)
	}
	if k.panicErr != nil {
		return &Failure{
			Scenario: sc, Kind: KindPanic,
			Detail: fmt.Sprintf("kinetic engine: %v", k.panicErr),
		}
	}
	if k.configErr != nil {
		return &Failure{
			Scenario: sc, Kind: KindDifferential,
			Detail: fmt.Sprintf("scan accepts config but kinetic rejects it: %v", k.configErr),
		}
	}
	if len(k.violations) > 0 {
		v := k.violations[0]
		return &Failure{
			Scenario: sc, Kind: KindViolation,
			Check: v.Check, Tick: v.Tick,
			Detail: fmt.Sprintf("kinetic engine only: %s", v.Detail),
		}
	}
	if !bytes.Equal(serial.trace, k.trace) {
		return &Failure{
			Scenario: sc, Kind: KindDifferential,
			Tick:   diffTick(serial.trace, k.trace),
			Detail: "trace diverges between the scan and kinetic engines",
		}
	}
	if !bytes.Equal(serial.res, k.res) {
		return &Failure{
			Scenario: sc, Kind: KindDifferential,
			Detail: "results diverge between the scan and kinetic engines",
		}
	}
	return checkIncremental(sc, serial, true)
}

// checkIncremental runs the maintainer differential: oracle vs
// incremental across the serial/par × scan/kinetic matrix, each
// incremental run carrying its own every-tick checks. The kinetic leg
// is skipped for scan-only link models (kineticOK false) — validation
// rejects that combination, which CheckScenario asserts separately.
func checkIncremental(sc Scenario, serial runResult, kineticOK bool) *Failure {
	matrix := []struct {
		workers int
		engine  string
		label   string
	}{
		{0, "", "incremental serial/scan"},
		{workerCounts[0], "", "incremental par/scan"},
	}
	if kineticOK {
		matrix = append(matrix, struct {
			workers int
			engine  string
			label   string
		}{0, simnet.EngineKinetic, "incremental serial/kinetic"})
	}
	for _, m := range matrix {
		inc := runScenario(sc, m.workers, m.engine, simnet.MaintainerIncremental)
		if inc.panicErr != nil {
			return &Failure{
				Scenario: sc, Kind: KindPanic,
				Detail: fmt.Sprintf("%s: %v", m.label, inc.panicErr),
			}
		}
		if inc.configErr != nil {
			return &Failure{
				Scenario: sc, Kind: KindDifferential,
				Detail: fmt.Sprintf("oracle accepts config but %s rejects it: %v", m.label, inc.configErr),
			}
		}
		if len(inc.violations) > 0 {
			v := inc.violations[0]
			return &Failure{
				Scenario: sc, Kind: KindViolation,
				Check: v.Check, Tick: v.Tick,
				Detail: fmt.Sprintf("%s only: %s", m.label, v.Detail),
			}
		}
		if !bytes.Equal(serial.trace, inc.trace) {
			return &Failure{
				Scenario: sc, Kind: KindDifferential,
				Tick:   diffTick(serial.trace, inc.trace),
				Detail: fmt.Sprintf("trace diverges between oracle and %s", m.label),
			}
		}
		if !bytes.Equal(serial.res, inc.res) {
			return &Failure{
				Scenario: sc, Kind: KindDifferential,
				Detail: fmt.Sprintf("results diverge between oracle and %s", m.label),
			}
		}
	}
	return nil
}

// diffTick returns the 1-based index of the first differing trace
// line — the tick where two paths diverged (one trace line per tick).
func diffTick(a, b []byte) int {
	la := bytes.Split(a, []byte{'\n'})
	lb := bytes.Split(b, []byte{'\n'})
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return i + 1
		}
	}
	return n + 1
}
