package prop

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// shrinkBudget bounds the number of CheckScenario executions one
// Shrink may spend (each is up to three short simulations).
const shrinkBudget = 40

// Shrink greedily reduces a failing scenario while it keeps failing:
// truncate the run right after the failing tick, halve N, then strip
// optional features one at a time (non-default mobility and link
// models, churn, tracking, naming, hop sampling, elector, top cap).
// The result is the smallest
// (config, seed, tick) triple found within the budget; the original
// failure is returned unchanged if nothing smaller still fails.
func Shrink(f *Failure) *Failure {
	cur := f
	budget := shrinkBudget

	// try re-runs candidate and adopts it if it still fails.
	try := func(sc Scenario) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if nf := CheckScenario(sc); nf != nil {
			cur = nf
			return true
		}
		return false
	}

	truncate := func() {
		// Keep one tick past the failure so the failing tick itself
		// still executes under RunUntil's horizon.
		for cur.Tick >= 1 && cur.Tick+1 < cur.Scenario.Ticks {
			sc := cur.Scenario
			sc.Ticks = cur.Tick + 1
			if !try(sc) {
				break
			}
		}
	}

	truncate()
	for cur.Scenario.N > 2 {
		sc := cur.Scenario
		sc.N = sc.N / 2
		if !try(sc) {
			break
		}
	}
	simplify := []func(*Scenario){
		func(sc *Scenario) { sc.Mobility = "" },
		func(sc *Scenario) { sc.Link = "" },
		func(sc *Scenario) { sc.ChurnRate, sc.MeanDowntime = 0, 0 },
		func(sc *Scenario) { sc.TrackStates, sc.TrackClasses = false, false },
		func(sc *Scenario) { sc.NaiveNaming = false },
		func(sc *Scenario) { sc.SampleHops, sc.HopPairs = 0, 0 },
		func(sc *Scenario) { sc.Elector = "" },
		func(sc *Scenario) { sc.TopArity = 0 },
		func(sc *Scenario) { sc.Colocated = false },
	}
	for _, simp := range simplify {
		sc := cur.Scenario
		simp(&sc)
		if sc == cur.Scenario {
			continue // already minimal on this axis
		}
		try(sc)
	}
	truncate() // simplifications may have moved the failure earlier
	return cur
}

// WriteRepro persists a failure as a regression corpus file in dir
// (created if missing) and returns the file path. The name encodes the
// failure signature, so re-writing the same shrunk failure is
// idempotent.
func WriteRepro(dir string, f *Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	check := f.Check
	if check == "" {
		check = "x"
	}
	name := fmt.Sprintf("%s-%s-seed%d-n%d-t%d.json",
		f.Kind, sanitize(check), f.Scenario.Seed, f.Scenario.N, f.Tick)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Repro is one regression corpus entry: a scenario plus its expected
// outcome. Kind == "" means the scenario must pass (a known-tricky
// configuration pinned as healthy); otherwise CheckScenario must
// reproduce the recorded failure kind.
type Repro struct {
	Scenario Scenario `json:"scenario"`
	Kind     string   `json:"kind,omitempty"`
	Check    string   `json:"check,omitempty"`
	Tick     int      `json:"tick,omitempty"`
	Detail   string   `json:"detail,omitempty"`
	Note     string   `json:"note,omitempty"`
}

// ReadCorpus loads every *.json repro in dir, sorted by file name for
// deterministic replay order. A missing directory is an empty corpus.
func ReadCorpus(dir string) (map[string]Repro, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	corpus := make(map[string]Repro, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var r Repro
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("corpus %s: %w", name, err)
		}
		corpus[name] = r
	}
	return corpus, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		}
		return '_'
	}, s)
}
