package cluster

import "repro/internal/topology"

// Cluster identity continuity.
//
// ALCA names a cluster after its current clusterhead, so a head change
// renames the cluster even when its membership barely moves. The
// paper's §4/§5 analysis treats clusters as persistent entities whose
// membership evolves slowly (events need Θ(h_k) of physical motion);
// if the LM hash and the handoff accounting keyed on raw head IDs,
// every head relabel would masquerade as the destruction of one
// cluster and the birth of another, re-homing the entries of the whole
// subtree — an identity artifact, not data movement the model
// predicts. (Ablation A4 measures exactly that blow-up.)
//
// IdentityTracker therefore assigns every cluster a stable logical ID
// and carries it across snapshots by maximal level-0 descendant
// overlap: the successor cluster inheriting the plurality of a
// cluster's nodes keeps its logical ID; genuinely new clusters get
// fresh IDs. Merges and splits transfer the ID to the largest-overlap
// successor, so the minority side re-registers — which is precisely a
// reorganization handoff.

// Identities maps the physical clusters (head IDs) of one hierarchy
// snapshot to stable logical IDs, per level.
type Identities struct {
	// byLevel[k-1][head] is the logical ID of the level-k cluster led
	// by head in this snapshot.
	byLevel []map[int]uint64
}

// Logical returns the logical ID of the level-k cluster led by head,
// and whether it exists.
func (ids *Identities) Logical(k, head int) (uint64, bool) {
	if ids == nil || k < 1 || k > len(ids.byLevel) {
		return 0, false
	}
	id, ok := ids.byLevel[k-1][head]
	return id, ok
}

// Levels reports the number of cluster levels covered.
func (ids *Identities) Levels() int { return len(ids.byLevel) }

// ChainOf returns node v's logical ancestor chain: chain[0] is the
// logical ID of v's level-1 cluster, and so on. Nodes outside the
// hierarchy return nil.
func (ids *Identities) ChainOf(h *Hierarchy, v int) []uint64 {
	phys := h.AncestorChain(v)
	if phys == nil {
		return nil
	}
	out := make([]uint64, 0, len(phys))
	for i, head := range phys {
		id, ok := ids.Logical(i+1, head)
		if !ok {
			break
		}
		out = append(out, id)
	}
	return out
}

// AppendChainOf appends v's logical ancestor chain to dst and returns
// the extended slice — ChainOf without the per-call allocations, for
// hot paths that batch many chains into one backing array. Nodes
// outside the hierarchy append nothing.
func (ids *Identities) AppendChainOf(h *Hierarchy, v int, dst []uint64) []uint64 {
	cur := v
	for k := 0; k+1 < len(h.Levels); k++ {
		m, ok := h.Levels[k].Member[cur]
		if !ok {
			break
		}
		id, ok := ids.Logical(k+1, m)
		if !ok {
			break
		}
		dst = append(dst, id)
		cur = m
	}
	return dst
}

// LogicalEdge is an undirected level-k cluster adjacency in logical ID
// space (A < B).
type LogicalEdge struct {
	A, B uint64
}

// LogicalEdges returns the level-k cluster adjacencies of h under ids
// as a set. Used to measure g'_k free of relabeling artifacts.
func LogicalEdges(h *Hierarchy, ids *Identities, k int) map[LogicalEdge]struct{} {
	return LogicalEdgesInto(nil, h, ids, k)
}

// LogicalEdgesInto is LogicalEdges writing into dst (cleared first; nil
// allocates), so steady-state callers can reuse the map across ticks.
//
//manet:hotpath
func LogicalEdgesInto(dst map[LogicalEdge]struct{}, h *Hierarchy, ids *Identities, k int) map[LogicalEdge]struct{} {
	out := dst
	if out == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the reused edge set once
		out = map[LogicalEdge]struct{}{}
	} else {
		clear(out)
	}
	lvl := h.Level(k)
	if lvl == nil || k < 1 {
		return out
	}
	// Set-to-set transform; the result is order-free, so the
	// unspecified traversal order of incremental edges is fine.
	//lint:ignore hotpath per-call edge visitor closure, counted in the tick alloc budget
	lvl.Graph.ForEachEdge(func(e topology.EdgeKey) {
		pa, pb := e.Nodes()
		a, okA := ids.Logical(k, pa)
		b, okB := ids.Logical(k, pb)
		if !okA || !okB {
			return
		}
		if a > b {
			a, b = b, a
		}
		out[LogicalEdge{A: a, B: b}] = struct{}{}
	})
	return out
}

// IdentityTracker allocates logical IDs and carries them between
// snapshots.
type IdentityTracker struct {
	nextID uint64
	// Passthrough disables continuity: logical ID = head ID each
	// snapshot (the naive naming; ablation A4).
	Passthrough bool
}

// NewIdentityTracker returns a tracker with IDs starting at 1.
func NewIdentityTracker() *IdentityTracker { return &IdentityTracker{nextID: 1} }

// Clone duplicates the tracker's allocation state. Reference rebuilds
// (the invariant checker's oracle recompute) run on a clone so the
// fresh-ID counter of the live tracker is not advanced by a build whose
// result is discarded.
func (t *IdentityTracker) Clone() *IdentityTracker {
	c := *t
	return &c
}

// Init assigns fresh logical IDs to every cluster of the first
// snapshot (deterministically, by level then head ID).
func (t *IdentityTracker) Init(h *Hierarchy) *Identities {
	ids := &Identities{}
	for k := 1; k <= h.L(); k++ {
		m := map[int]uint64{}
		for _, head := range h.LevelNodes(k) {
			m[head] = t.alloc(head)
		}
		ids.byLevel = append(ids.byLevel, m)
	}
	return ids
}

func (t *IdentityTracker) alloc(head int) uint64 {
	if t.Passthrough {
		return uint64(head)
	}
	id := t.nextID
	t.nextID++
	return id
}

// Track assigns logical IDs to the clusters of next by matching them
// against prev on level-0 descendant overlap (greedy, largest overlap
// first; ties break toward smaller IDs for determinism). Prefer
// BuildWithIdentities in simulation loops — it additionally feeds the
// elector relabel-proof hysteresis; Track matches an already-built
// hierarchy.
func (t *IdentityTracker) Track(prevH *Hierarchy, prevIDs *Identities, nextH *Hierarchy) *Identities {
	if t.Passthrough {
		return t.Init(nextH)
	}
	prevLog := map[int][]uint64{}
	for _, v := range prevH.LevelNodes(0) {
		if c := prevIDs.ChainOf(prevH, v); c != nil {
			prevLog[v] = c
		}
	}
	nextChains := map[int][]int{}
	for _, v := range nextH.LevelNodes(0) {
		nextChains[v] = nextH.AncestorChain(v)
	}
	ids := &Identities{}
	for k := 1; k <= nextH.L(); k++ {
		newAnc := map[int]int{}
		//lint:ignore maprange map-to-map projection; the result is order-free
		for v, chain := range nextChains {
			if len(chain) >= k {
				newAnc[v] = chain[k-1]
			}
		}
		ids.byLevel = append(ids.byLevel, matchLevel(nil, t, k, nextH.LevelNodes(k), newAnc, prevLog))
	}
	return ids
}
