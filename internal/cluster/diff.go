package cluster

import (
	"slices"

	"repro/internal/topology"
)

// MembershipChange records that level-0 node Node moved from level-k
// cluster Old to New between two snapshots (Old or New is -1 when the
// hierarchy did not reach level k in that snapshot).
type MembershipChange struct {
	Node  int
	Level int // k >= 1
	Old   int
	New   int
}

// StateDelta records the ALCA state change of a persistent clusterhead
// between snapshots, for the Fig. 3 unit-transition measurement.
type StateDelta struct {
	Level int // election level k (state of a level-(k+1) node)
	Node  int
	Old   int
	New   int
}

// Diff captures every hierarchy change between two consecutive
// snapshots, organized the way the paper's Sections 4 and 5 consume
// them.
type Diff struct {
	// Elections[k] lists nodes that became level-k nodes (k >= 1).
	Elections map[int][]int
	// Rejections[k] lists nodes that lost level-k status (k >= 1).
	Rejections map[int][]int
	// MigrationLinkEvents[k] lists level-k link changes (k >= 1) whose
	// endpoints are level-k nodes in both snapshots — the paper's
	// "cluster migration" events (i) and (ii).
	MigrationLinkEvents map[int][]topology.LinkEvent
	// StructuralLinkEvents[k] lists the remaining level-k link changes,
	// consequences of clusterhead election/rejection (events iii–vii).
	StructuralLinkEvents map[int][]topology.LinkEvent
	// Memberships lists per-node ancestor changes, ordered by
	// (level, node).
	Memberships []MembershipChange
	// StateDeltas lists ALCA state changes of persistent heads.
	StateDeltas []StateDelta
}

// ComputeDiff extracts all change events between hierarchy snapshots
// prev and next (same level-0 node population).
func ComputeDiff(prev, next *Hierarchy) *Diff {
	var s DiffScratch
	return ComputeDiffInto(nil, prev, next, &s)
}

// DiffScratch holds the reusable buffers of ComputeDiffInto: the
// edge-diff scratch, ancestor-chain buffers, and pools for the
// per-level event slices harvested from recycled Diffs.
type DiffScratch struct {
	edges    topology.DiffScratch
	pc, nc   []int
	ints     [][]int
	evs      [][]topology.LinkEvent
	stateIDs []int
	emptyG   *topology.Graph
}

func (s *DiffScratch) getInts() []int {
	if n := len(s.ints); n > 0 {
		out := s.ints[n-1]
		s.ints = s.ints[:n-1]
		return out[:0]
	}
	return nil
}

func (s *DiffScratch) getEvs() []topology.LinkEvent {
	if n := len(s.evs); n > 0 {
		out := s.evs[n-1]
		s.evs = s.evs[:n-1]
		return out[:0]
	}
	return nil
}

//manet:hotpath
func (s *DiffScratch) empty() *topology.Graph {
	if s.emptyG == nil {
		//lint:ignore hotpath memoized empty graph, allocated once per scratch
		s.emptyG = topology.NewGraph(1)
	}
	return s.emptyG
}

// reset prepares d for refilling, harvesting its slices into the
// scratch pools. d must no longer be referenced by any consumer.
func (s *DiffScratch) reset(d *Diff) {
	if d.Elections == nil {
		d.Elections = map[int][]int{}
		d.Rejections = map[int][]int{}
		d.MigrationLinkEvents = map[int][]topology.LinkEvent{}
		d.StructuralLinkEvents = map[int][]topology.LinkEvent{}
		return
	}
	//lint:ignore maprange slice harvesting; only pooled capacity depends on order
	for _, v := range d.Elections {
		s.ints = append(s.ints, v)
	}
	//lint:ignore maprange slice harvesting; only pooled capacity depends on order
	for _, v := range d.Rejections {
		s.ints = append(s.ints, v)
	}
	//lint:ignore maprange slice harvesting; only pooled capacity depends on order
	for _, v := range d.MigrationLinkEvents {
		s.evs = append(s.evs, v)
	}
	//lint:ignore maprange slice harvesting; only pooled capacity depends on order
	for _, v := range d.StructuralLinkEvents {
		s.evs = append(s.evs, v)
	}
	clear(d.Elections)
	clear(d.Rejections)
	clear(d.MigrationLinkEvents)
	clear(d.StructuralLinkEvents)
	d.Memberships = d.Memberships[:0]
	d.StateDeltas = d.StateDeltas[:0]
}

// ComputeDiffInto is ComputeDiff with caller-owned storage: d (nil =
// allocate fresh) is reset and refilled, drawing slice storage from
// the scratch. A reused d must be dead to all consumers — the diff is
// valid only until the next ComputeDiffInto call with the same d or s.
//
//manet:hotpath
func ComputeDiffInto(d *Diff, prev, next *Hierarchy, s *DiffScratch) *Diff {
	if d == nil {
		//lint:ignore hotpath warm-up: nil dst allocates the reused diff once
		d = &Diff{}
	}
	//lint:ignore hotpath warm-up: the first reset builds the diff's category maps
	s.reset(d)
	maxL := len(prev.Levels)
	if len(next.Levels) > maxL {
		maxL = len(next.Levels)
	}

	// Node-set and link-set changes per level k >= 1. Level.Nodes is
	// sorted, so membership tests are binary searches and walking the
	// slices yields elections and rejections in ascending ID order.
	for k := 1; k < maxL; k++ {
		pl, nl := prev.Level(k), next.Level(k)
		//lint:ignore hotpath non-escaping membership predicate, stack-allocated in practice
		pIs := func(id int) bool { return pl != nil && pl.IsNode(id) }
		//lint:ignore hotpath non-escaping membership predicate, stack-allocated in practice
		nIs := func(id int) bool { return nl != nil && nl.IsNode(id) }
		el := s.getInts()
		for _, id := range levelNodes(nl) {
			if !pIs(id) {
				el = append(el, id)
			}
		}
		if len(el) > 0 {
			d.Elections[k] = el
		} else if el != nil {
			s.ints = append(s.ints, el)
		}
		rj := s.getInts()
		for _, id := range levelNodes(pl) {
			if !nIs(id) {
				rj = append(rj, id)
			}
		}
		if len(rj) > 0 {
			d.Rejections[k] = rj
		} else if rj != nil {
			s.ints = append(s.ints, rj)
		}

		// Link events.
		pg := levelGraph(pl)
		ng := levelGraph(nl)
		if pg == nil && ng == nil {
			continue
		}
		if pg == nil {
			pg = s.empty()
		}
		if ng == nil {
			ng = s.empty()
		}
		var mig, str []topology.LinkEvent
		for _, ev := range s.edges.Diff(pg, ng) {
			a, b := ev.Edge.Nodes()
			if pIs(a) && pIs(b) && nIs(a) && nIs(b) {
				if mig == nil {
					mig = s.getEvs()
				}
				mig = append(mig, ev)
			} else {
				if str == nil {
					str = s.getEvs()
				}
				str = append(str, ev)
			}
		}
		if len(mig) > 0 {
			d.MigrationLinkEvents[k] = mig
		}
		if len(str) > 0 {
			d.StructuralLinkEvents[k] = str
		}
	}

	// Per-node membership changes from ancestor chains.
	for _, v := range prev.Levels[0].Nodes {
		s.pc = prev.AppendAncestorChain(v, s.pc[:0])
		s.nc = next.AppendAncestorChain(v, s.nc[:0])
		depth := len(s.pc)
		if len(s.nc) > depth {
			depth = len(s.nc)
		}
		for i := 0; i < depth; i++ {
			old, nw := -1, -1
			if i < len(s.pc) {
				old = s.pc[i]
			}
			if i < len(s.nc) {
				nw = s.nc[i]
			}
			if old != nw {
				d.Memberships = append(d.Memberships, MembershipChange{
					Node: v, Level: i + 1, Old: old, New: nw,
				})
			}
		}
	}
	slices.SortFunc(d.Memberships, func(a, b MembershipChange) int {
		if a.Level != b.Level {
			return a.Level - b.Level
		}
		return a.Node - b.Node
	})

	// ALCA state deltas for heads persisting across snapshots.
	for k := 0; k+1 < len(prev.Levels) && k+1 < len(next.Levels); k++ {
		pl, nl := prev.Levels[k], next.Levels[k]
		if pl.State == nil || nl.State == nil {
			continue
		}
		s.stateIDs = s.stateIDs[:0]
		for id := range pl.State {
			s.stateIDs = append(s.stateIDs, id)
		}
		slices.Sort(s.stateIDs)
		for _, id := range s.stateIDs {
			if _, ok := nl.State[id]; !ok {
				continue
			}
			if pl.State[id] != nl.State[id] {
				d.StateDeltas = append(d.StateDeltas, StateDelta{
					Level: k, Node: id, Old: pl.State[id], New: nl.State[id],
				})
			}
		}
	}
	return d
}

// Empty reports whether the diff contains no changes at all.
func (d *Diff) Empty() bool {
	return len(d.Elections) == 0 && len(d.Rejections) == 0 &&
		len(d.MigrationLinkEvents) == 0 && len(d.StructuralLinkEvents) == 0 &&
		len(d.Memberships) == 0 && len(d.StateDeltas) == 0
}

func levelNodes(l *Level) []int {
	if l == nil {
		return nil
	}
	return l.Nodes
}

func levelGraph(l *Level) *topology.Graph {
	if l == nil {
		return nil
	}
	return l.Graph
}
