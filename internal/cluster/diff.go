package cluster

import (
	"sort"

	"repro/internal/topology"
)

// MembershipChange records that level-0 node Node moved from level-k
// cluster Old to New between two snapshots (Old or New is -1 when the
// hierarchy did not reach level k in that snapshot).
type MembershipChange struct {
	Node  int
	Level int // k >= 1
	Old   int
	New   int
}

// StateDelta records the ALCA state change of a persistent clusterhead
// between snapshots, for the Fig. 3 unit-transition measurement.
type StateDelta struct {
	Level int // election level k (state of a level-(k+1) node)
	Node  int
	Old   int
	New   int
}

// Diff captures every hierarchy change between two consecutive
// snapshots, organized the way the paper's Sections 4 and 5 consume
// them.
type Diff struct {
	// Elections[k] lists nodes that became level-k nodes (k >= 1).
	Elections map[int][]int
	// Rejections[k] lists nodes that lost level-k status (k >= 1).
	Rejections map[int][]int
	// MigrationLinkEvents[k] lists level-k link changes (k >= 1) whose
	// endpoints are level-k nodes in both snapshots — the paper's
	// "cluster migration" events (i) and (ii).
	MigrationLinkEvents map[int][]topology.LinkEvent
	// StructuralLinkEvents[k] lists the remaining level-k link changes,
	// consequences of clusterhead election/rejection (events iii–vii).
	StructuralLinkEvents map[int][]topology.LinkEvent
	// Memberships lists per-node ancestor changes, ordered by
	// (level, node).
	Memberships []MembershipChange
	// StateDeltas lists ALCA state changes of persistent heads.
	StateDeltas []StateDelta
}

// ComputeDiff extracts all change events between hierarchy snapshots
// prev and next (same level-0 node population).
func ComputeDiff(prev, next *Hierarchy) *Diff {
	d := &Diff{
		Elections:            map[int][]int{},
		Rejections:           map[int][]int{},
		MigrationLinkEvents:  map[int][]topology.LinkEvent{},
		StructuralLinkEvents: map[int][]topology.LinkEvent{},
	}
	maxL := len(prev.Levels)
	if len(next.Levels) > maxL {
		maxL = len(next.Levels)
	}

	// Node-set and link-set changes per level k >= 1.
	for k := 1; k < maxL; k++ {
		pl, nl := prev.Level(k), next.Level(k)
		pset := nodeSet(pl)
		nset := nodeSet(nl)
		// Level.Nodes is sorted, so walking the slices (rather than the
		// sets) yields elections and rejections in ascending ID order.
		for _, id := range levelNodes(nl) {
			if !pset[id] {
				d.Elections[k] = append(d.Elections[k], id)
			}
		}
		for _, id := range levelNodes(pl) {
			if !nset[id] {
				d.Rejections[k] = append(d.Rejections[k], id)
			}
		}
		if len(d.Elections[k]) == 0 {
			delete(d.Elections, k)
		}
		if len(d.Rejections[k]) == 0 {
			delete(d.Rejections, k)
		}

		// Link events.
		pg := levelGraph(pl)
		ng := levelGraph(nl)
		if pg == nil && ng == nil {
			continue
		}
		if pg == nil {
			pg = topology.NewGraph(graphIDSpace(ng))
		}
		if ng == nil {
			ng = topology.NewGraph(graphIDSpace(pg))
		}
		for _, ev := range topology.DiffEdges(pg, ng) {
			a, b := ev.Edge.Nodes()
			if pset[a] && pset[b] && nset[a] && nset[b] {
				d.MigrationLinkEvents[k] = append(d.MigrationLinkEvents[k], ev)
			} else {
				d.StructuralLinkEvents[k] = append(d.StructuralLinkEvents[k], ev)
			}
		}
	}

	// Per-node membership changes from ancestor chains.
	for _, v := range prev.Levels[0].Nodes {
		pc := prev.AncestorChain(v)
		nc := next.AncestorChain(v)
		depth := len(pc)
		if len(nc) > depth {
			depth = len(nc)
		}
		for i := 0; i < depth; i++ {
			old, nw := -1, -1
			if i < len(pc) {
				old = pc[i]
			}
			if i < len(nc) {
				nw = nc[i]
			}
			if old != nw {
				d.Memberships = append(d.Memberships, MembershipChange{
					Node: v, Level: i + 1, Old: old, New: nw,
				})
			}
		}
	}
	sort.Slice(d.Memberships, func(i, j int) bool {
		a, b := d.Memberships[i], d.Memberships[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		return a.Node < b.Node
	})

	// ALCA state deltas for heads persisting across snapshots.
	for k := 0; k+1 < len(prev.Levels) && k+1 < len(next.Levels); k++ {
		pl, nl := prev.Levels[k], next.Levels[k]
		if pl.State == nil || nl.State == nil {
			continue
		}
		ids := make([]int, 0, len(pl.State))
		for id := range pl.State {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if _, ok := nl.State[id]; !ok {
				continue
			}
			if pl.State[id] != nl.State[id] {
				d.StateDeltas = append(d.StateDeltas, StateDelta{
					Level: k, Node: id, Old: pl.State[id], New: nl.State[id],
				})
			}
		}
	}
	return d
}

// Empty reports whether the diff contains no changes at all.
func (d *Diff) Empty() bool {
	return len(d.Elections) == 0 && len(d.Rejections) == 0 &&
		len(d.MigrationLinkEvents) == 0 && len(d.StructuralLinkEvents) == 0 &&
		len(d.Memberships) == 0 && len(d.StateDeltas) == 0
}

func nodeSet(l *Level) map[int]bool {
	if l == nil {
		return map[int]bool{}
	}
	s := make(map[int]bool, len(l.Nodes))
	for _, id := range l.Nodes {
		s[id] = true
	}
	return s
}

func levelNodes(l *Level) []int {
	if l == nil {
		return nil
	}
	return l.Nodes
}

func levelGraph(l *Level) *topology.Graph {
	if l == nil {
		return nil
	}
	return l.Graph
}

func graphIDSpace(g *topology.Graph) int {
	if g == nil {
		return 1
	}
	return g.IDSpace()
}
