package cluster

// IncrementalMaintainer advances the previous hierarchy snapshot by the
// tick's link-event delta instead of rebuilding the ALCA fixed point
// from scratch, so steady-state per-tick cost tracks the link-event
// rate rather than N. The fast path (maintainIncremental) patches the
// previous snapshot level by level from a seed dirty set; whenever any
// precondition fails — no previous snapshot, no event delta, a
// non-neighborhood elector, a hierarchy-depth change mid-patch — it
// falls back to the full oracle rebuild, transactionally restoring the
// identity tracker and elector state mutated by the partial attempt.
// Either way the result is byte-identical to BuildWithIdentities over
// the same input (pinned by the incremental-hierarchy-equal invariant
// and the oracle differential tests).
type IncrementalMaintainer struct {
	cfg   Config
	cfgD  Config // cfg.withDefaults(), for termination checks
	tr    *IdentityTracker
	arena *Arena

	// Elector capabilities, type-asserted once at construction so the
	// per-tick fast path does no interface boxing.
	elNeigh      bool
	elMemoryless bool
	elStateful   StatefulElector
	elPending    PendingElector
	elRestore    RestorableElector

	// dirty is the LM-facing dirty-cluster set of the last Maintain;
	// valid only when dirtyValid (the fast path ran to completion).
	dirty      DirtyClusters
	dirtyValid bool

	// stats counts fast-path vs fallback Maintains, for reports.
	stats IncrementalStats

	inc incState
}

// IncrementalStats counts how the incremental maintainer resolved each
// Maintain call.
type IncrementalStats struct {
	// Incremental is the number of Maintains served by the fast path.
	Incremental int
	// Fallbacks is the number of Maintains that fell back to a full
	// rebuild (first tick, missing delta, unsupported elector, depth
	// change, or an oversized dirty set).
	Fallbacks int
}

// NewIncrementalMaintainer returns an incremental maintainer electing
// with cfg and naming clusters through tr.
func NewIncrementalMaintainer(cfg Config, tr *IdentityTracker) *IncrementalMaintainer {
	m := &IncrementalMaintainer{cfg: cfg, cfgD: cfg.withDefaults(), tr: tr, arena: NewArena()}
	el := m.cfgD.Elector
	_, m.elNeigh = el.(NeighborhoodElector)
	_, m.elMemoryless = el.(MemorylessLCA)
	m.elStateful, _ = el.(StatefulElector)
	m.elPending, _ = el.(PendingElector)
	m.elRestore, _ = el.(RestorableElector)
	return m
}

// Maintain implements Maintainer.
//
//manet:hotpath
func (m *IncrementalMaintainer) Maintain(in *MaintainInput) (*Hierarchy, *Identities) {
	if m.canIncremental(in) {
		//lint:ignore hotpath fast-path scratch maps and closures, counted in the tick alloc budget
		if h, ids, ok := m.maintainIncremental(in); ok {
			m.stats.Incremental++
			m.dirtyValid = true
			return h, ids
		}
	}
	m.stats.Fallbacks++
	m.dirtyValid = false
	//lint:ignore hotpath fallback rebuild; the fast path is the steady-state branch
	return BuildWithIdentitiesArena(
		m.arena, in.G0, in.Nodes, m.cfg, in.PrevH, in.PrevIDs, m.tr, in.Now)
}

// canIncremental reports whether the fast path's static preconditions
// hold: a previous snapshot to evolve, an event delta to seed from, a
// neighborhood-local elector (1-hop LCA family; stateful ones must also
// expose their pending set and support state rollback), and real
// identity tracking (Passthrough renames wholesale, which the patcher
// does not model).
//
//manet:hotpath
func (m *IncrementalMaintainer) canIncremental(in *MaintainInput) bool {
	if in.PrevH == nil || in.PrevIDs == nil || in.PrevG0 == nil || in.Events == nil {
		return false
	}
	if m.tr == nil || m.tr.Passthrough {
		return false
	}
	if !m.elNeigh {
		return false
	}
	if m.elStateful != nil && (m.elPending == nil || m.elRestore == nil) {
		return false
	}
	return true
}

// Retire implements Maintainer: retired snapshots become the next
// tick's patch base instead of going straight back to the arena.
//
//manet:hotpath
func (m *IncrementalMaintainer) Retire(h *Hierarchy, ids *Identities) {
	m.retireIncremental(h, ids)
}

// DirtyClusters implements Maintainer: valid after a fast-path
// Maintain, nil after a fallback (the LM update then computes its own
// dirty set from the snapshot pair).
func (m *IncrementalMaintainer) DirtyClusters() *DirtyClusters {
	if !m.dirtyValid {
		return nil
	}
	return &m.dirty
}

// Name implements Maintainer.
func (m *IncrementalMaintainer) Name() string { return "incremental" }

// Stats returns the fast-path/fallback counters.
func (m *IncrementalMaintainer) Stats() IncrementalStats { return m.stats }

var _ Maintainer = (*IncrementalMaintainer)(nil)
