package cluster

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/topology"
)

// Level is one stratum of the clustered hierarchy.
//
// Levels are indexed by k = 0..L. Level 0 holds every node and the
// unit-disk graph. For k >= 1, Nodes are the level-k nodes (clusterheads
// elected at level k-1, identified by their level-0 IDs), Graph is the
// level-k topology (E_k), and the election data describes how level-k
// nodes grouped into level-(k+1) clusters — present only when a level
// k+1 exists.
type Level struct {
	K     int
	Nodes []int           // sorted level-k node IDs
	Graph *topology.Graph // level-k topology over Nodes

	// Election results at this level (grouping level-k nodes into
	// level-(k+1) clusters). Empty maps on the top level.
	Head    map[int]int   // level-k node -> elected clusterhead
	Member  map[int]int   // level-k node -> level-(k+1) cluster it belongs to
	State   map[int]int   // level-(k+1) node -> # level-k *neighbors* electing it (ALCA state, Fig. 3)
	Members map[int][]int // level-(k+1) cluster -> sorted level-k members
}

// IsNode reports whether id is a level-k node at this level.
func (l *Level) IsNode(id int) bool {
	i := sort.SearchInts(l.Nodes, id)
	return i < len(l.Nodes) && l.Nodes[i] == id
}

// Hierarchy is a full clustered-hierarchy snapshot. Levels[0] is the
// physical network; Levels[len-1] is the top level (no further
// clustering performed there).
type Hierarchy struct {
	Levels []*Level
	// Reach is the member-to-head hop bound of the clustering that
	// produced this hierarchy (1 for LCA).
	Reach int
	// ForcedTop records that the final election level groups all
	// remaining clusters into one forced top cluster (see
	// Config.ForceTopAt); its members need not be adjacent to the
	// head.
	ForcedTop bool
}

// L returns the number of clustering levels: the highest k for which
// level-k clusters exist. A hierarchy with Levels = [level0, level1]
// has L = 1.
func (h *Hierarchy) L() int { return len(h.Levels) - 1 }

// Level returns the level-k stratum, or nil when k is out of range.
func (h *Hierarchy) Level(k int) *Level {
	if k < 0 || k >= len(h.Levels) {
		return nil
	}
	return h.Levels[k]
}

// Config controls hierarchy construction.
type Config struct {
	// MaxLevels caps recursion depth (safety net; the recursion
	// naturally terminates when a level no longer compresses).
	MaxLevels int
	// Elector is the clusterhead election rule; nil means MemorylessLCA.
	Elector Elector
	// Reach is the maximum hop distance between a member and its head
	// (1 for LCA, d for max-min d-hop clustering, -1 to disable the
	// check for electors that tolerate transient detachment, e.g.
	// DebouncedLCA). It only affects Validate; default 1.
	Reach int
	// ForceTopAt, when positive, stops the election recursion once a
	// level has at most this many nodes and closes the hierarchy with
	// a single forced top cluster containing all of them (the paper's
	// "desired number of cluster levels", §2.1). Election-driven
	// hierarchies have arity-2..3 top levels whose member lists churn
	// and whose handoffs cost Θ(√N) per node; a forced top with a
	// healthy arity removes that boundary pathology while keeping LM
	// queries resolvable network-wide.
	ForceTopAt int
}

func (c Config) withDefaults() Config {
	if c.MaxLevels <= 0 {
		c.MaxLevels = 24
	}
	if c.Elector == nil {
		c.Elector = MemorylessLCA{}
	}
	if c.Reach == 0 {
		c.Reach = 1
	}
	return c
}

// Build constructs the clustered hierarchy over the level-0 graph g0
// covering the given (sorted or unsorted) node set. prev, when
// non-nil, supplies the previous snapshot for hysteresis electors;
// levels are matched by index.
func Build(g0 *topology.Graph, nodes []int, cfg Config, prev *Hierarchy) *Hierarchy {
	cfg = cfg.withDefaults()
	base := append([]int(nil), nodes...)
	sort.Ints(base)

	h := &Hierarchy{Reach: cfg.Reach}
	curNodes := base
	curGraph := g0
	for k := 0; ; k++ {
		lvl := &Level{K: k, Nodes: curNodes, Graph: curGraph}
		h.Levels = append(h.Levels, lvl)

		if len(curNodes) <= 1 || k >= cfg.MaxLevels {
			break
		}
		if cfg.ForceTopAt > 0 && k >= 1 && len(curNodes) <= cfg.ForceTopAt {
			forceTop(h, lvl, curNodes, g0.IDSpace(), nil)
			break
		}

		prevHead := func(int) int { return -1 }
		if prev != nil {
			if pl := prev.Level(k); pl != nil && pl.Head != nil {
				heads := pl.Head
				prevHead = func(u int) int {
					if hd, ok := heads[u]; ok {
						return hd
					}
					return -1
				}
			}
		}

		heads := cfg.Elector.Elect(nil, curNodes, curGraph, prevHead)
		elect(lvl, heads, nil)

		nextNodes := keysSorted(lvl.Members)
		if len(nextNodes) == len(curNodes) {
			// No compression. This happens exactly when the level has
			// no edges (every node self-elects), so clustering has
			// converged; drop the trivial election data to keep the
			// invariant that only non-top levels carry it.
			lvl.Head, lvl.Member, lvl.Members, lvl.State = nil, nil, nil, nil
			break
		}
		curGraph = liftGraph(curGraph, lvl, g0.IDSpace(), nil)
		curNodes = nextNodes
	}
	return h
}

// forceTop groups every node of lvl into a single cluster headed by
// the maximum ID and appends the resulting one-node top level. Arena a
// (nil-safe) supplies recycled storage.
func forceTop(h *Hierarchy, lvl *Level, curNodes []int, idSpace int, a *Arena) {
	root := curNodes[len(curNodes)-1] // curNodes is sorted ascending
	heads := a.getHeadBuf()
	for range curNodes {
		heads = append(heads, root)
	}
	elect(lvl, heads, a)
	a.putHeadBuf(heads)
	top := a.getLevel()
	top.K = lvl.K + 1
	top.Nodes = append(a.getInts(), root)
	top.Graph = a.getGraph(idSpace)
	h.Levels = append(h.Levels, top)
	h.ForcedTop = true
}

// elect fills the election-derived fields of lvl from the positional
// heads slice (heads[i] is the head elected by lvl.Nodes[i]). Arena a
// (nil-safe) supplies recycled maps and member slices; pooled levels
// arrive with cleared non-nil maps.
//
//manet:hotpath
func elect(lvl *Level, heads []int, a *Arena) {
	if lvl.Head == nil {
		//lint:ignore hotpath warm-up: pooled levels reuse the cleared maps
		lvl.Head = make(map[int]int, len(lvl.Nodes))
	}
	if lvl.Member == nil {
		//lint:ignore hotpath warm-up: pooled levels reuse the cleared maps
		lvl.Member = make(map[int]int, len(lvl.Nodes))
		//lint:ignore hotpath warm-up: pooled levels reuse the cleared maps
		lvl.Members = make(map[int][]int)
		//lint:ignore hotpath warm-up: pooled levels reuse the cleared maps
		lvl.State = make(map[int]int)
	}

	headSet := a.getHeadSet(len(lvl.Nodes))
	for i, u := range lvl.Nodes {
		lvl.Head[u] = heads[i]
		headSet[heads[i]] = true
	}
	for i, u := range lvl.Nodes {
		m := heads[i]
		if headSet[u] {
			// A clusterhead belongs to its own cluster even if it
			// elected a higher-ID neighbor.
			m = u
		}
		lvl.Member[u] = m
		s, ok := lvl.Members[m]
		if !ok {
			s = a.getInts()
		}
		lvl.Members[m] = append(s, u)
	}
	//lint:ignore maprange each member slice is sorted independently; order cannot escape
	for _, members := range lvl.Members {
		slices.Sort(members)
	}
	// ALCA state: electors among *neighbors* (self-election excluded),
	// matching the paper's Fig. 3 state variable.
	for i, u := range lvl.Nodes {
		if hd := heads[i]; hd != u {
			lvl.State[hd]++
		}
	}
	// Heads with only a self-election have state 0.
	//lint:ignore maprange writes disjoint map entries; order cannot escape
	for hd := range lvl.Members {
		if _, ok := lvl.State[hd]; !ok {
			lvl.State[hd] = 0
		}
	}
}

// liftGraph builds the level-(k+1) topology: clusters X and Y are
// adjacent iff some level-k edge joins a member of X to a member of Y.
// Arena a (nil-safe) supplies a recycled graph.
func liftGraph(g *topology.Graph, lvl *Level, idSpace int, a *Arena) *topology.Graph {
	up := a.getGraph(idSpace)
	// AddEdge builds a set; the result is order-free, so the
	// unspecified traversal order of incremental edges is fine.
	g.ForEachEdge(func(k topology.EdgeKey) {
		a, b := k.Nodes()
		ca, cb := lvl.Member[a], lvl.Member[b]
		if ca != cb {
			up.AddEdge(ca, cb)
		}
	})
	return up
}

// keysSorted returns the keys of m in ascending order: the only way
// map contents may enter an order-sensitive computation.
func keysSorted[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// AncestorChain returns the cluster IDs containing level-0 node v at
// levels 1..L: chain[0] is v's level-1 cluster, chain[len-1] its
// top-level cluster. Nodes absent from the hierarchy return nil.
func (h *Hierarchy) AncestorChain(v int) []int {
	lvl0 := h.Levels[0]
	if _, ok := lvl0.Member[v]; !ok && len(h.Levels) > 1 {
		return nil
	}
	var chain []int
	cur := v
	for k := 0; k+1 < len(h.Levels); k++ {
		m, ok := h.Levels[k].Member[cur]
		if !ok {
			break
		}
		chain = append(chain, m)
		cur = m
	}
	return chain
}

// AppendAncestorChain appends v's ancestor chain (see AncestorChain)
// to dst and returns the extended slice — the allocation-free form for
// hot paths. Nodes absent from the hierarchy append nothing.
func (h *Hierarchy) AppendAncestorChain(v int, dst []int) []int {
	cur := v
	for k := 0; k+1 < len(h.Levels); k++ {
		m, ok := h.Levels[k].Member[cur]
		if !ok {
			break
		}
		dst = append(dst, m)
		cur = m
	}
	return dst
}

// Ancestor returns the ID of v's level-k cluster (k >= 1), or -1 when
// the hierarchy does not reach level k above v.
func (h *Hierarchy) Ancestor(v, k int) int {
	chain := h.AncestorChain(v)
	if k < 1 || k > len(chain) {
		return -1
	}
	return chain[k-1]
}

// Descendants returns all level-0 nodes contained in the level-k
// cluster with the given head ID, sorted ascending. For k == 0 it
// returns {cluster}.
func (h *Hierarchy) Descendants(k, cluster int) []int {
	if k == 0 {
		return []int{cluster}
	}
	if k >= len(h.Levels) {
		return nil
	}
	cur := []int{cluster}
	for lvl := k - 1; lvl >= 0; lvl-- {
		var next []int
		for _, c := range cur {
			next = append(next, h.Levels[lvl].Members[c]...)
		}
		cur = next
	}
	sort.Ints(cur)
	return cur
}

// MembersAt returns the sorted level-(k-1) members of the level-k
// cluster (k >= 1).
func (h *Hierarchy) MembersAt(k, cluster int) []int {
	if k < 1 || k > len(h.Levels) {
		return nil
	}
	return h.Levels[k-1].Members[cluster]
}

// LevelNodes returns the sorted level-k node IDs.
func (h *Hierarchy) LevelNodes(k int) []int {
	if k < 0 || k >= len(h.Levels) {
		return nil
	}
	return h.Levels[k].Nodes
}

// Alpha returns α_k = |V_{k-1}| / |V_k| for k in 1..L.
func (h *Hierarchy) Alpha(k int) float64 {
	if k < 1 || k >= len(h.Levels) {
		return 0
	}
	return float64(len(h.Levels[k-1].Nodes)) / float64(len(h.Levels[k].Nodes))
}

// Aggregation returns c_k = |V| / |V_k|.
func (h *Hierarchy) Aggregation(k int) float64 {
	if k < 0 || k >= len(h.Levels) {
		return 0
	}
	return float64(len(h.Levels[0].Nodes)) / float64(len(h.Levels[k].Nodes))
}

// Validate checks structural invariants and returns an error naming
// the first violation. Used by integration tests and the simulator's
// paranoid mode.
func (h *Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("cluster: empty hierarchy")
	}
	for k := 0; k+1 < len(h.Levels); k++ {
		lvl := h.Levels[k]
		up := h.Levels[k+1]
		if lvl.Member == nil {
			return fmt.Errorf("cluster: level %d missing election data", k)
		}
		// Every node has a member cluster that is a level-(k+1) node.
		for _, u := range lvl.Nodes {
			m, ok := lvl.Member[u]
			if !ok {
				return fmt.Errorf("cluster: level %d node %d has no cluster", k, u)
			}
			if !up.IsNode(m) {
				return fmt.Errorf("cluster: level %d node %d assigned to non-node cluster %d", k, u, m)
			}
			// Reach property: a non-head member is within Reach hops
			// of its head in the level topology (skipped for Reach < 0,
			// used by grace-period electors, and for the forced top
			// level, whose members need not be adjacent).
			forced := h.ForcedTop && k == len(h.Levels)-2
			if m != u && h.Reach == 1 && !forced && !lvl.Graph.HasEdge(u, m) {
				return fmt.Errorf("cluster: level %d node %d not adjacent to its head %d", k, u, m)
			}
			if m != u && h.Reach > 1 && !forced {
				scratch := NewReachChecker(lvl.Graph)
				if !scratch.Within(u, m, h.Reach) {
					return fmt.Errorf("cluster: level %d node %d beyond reach %d of head %d", k, u, h.Reach, m)
				}
			}
		}
		// Members lists partition the level's nodes. Iterate sorted so
		// the first violation reported is deterministic.
		count := 0
		for _, c := range keysSorted(lvl.Members) {
			members := lvl.Members[c]
			if !up.IsNode(c) {
				return fmt.Errorf("cluster: members list for non-node %d", c)
			}
			for _, u := range members {
				if lvl.Member[u] != c {
					return fmt.Errorf("cluster: member list mismatch for %d in %d", u, c)
				}
			}
			count += len(members)
		}
		if count != len(lvl.Nodes) {
			return fmt.Errorf("cluster: level %d members cover %d of %d nodes", k, count, len(lvl.Nodes))
		}
		// A head leads its own cluster.
		for _, c := range up.Nodes {
			if lvl.Member[c] != c {
				return fmt.Errorf("cluster: head %d at level %d not in own cluster", c, k)
			}
		}
	}
	return nil
}

// ReachChecker verifies bounded-hop membership for multi-hop
// clusterings (Reach > 1) during validation.
type ReachChecker struct {
	g       *topology.Graph
	scratch *topology.BFSScratch
}

// NewReachChecker builds a checker over g.
func NewReachChecker(g *topology.Graph) *ReachChecker {
	return &ReachChecker{g: g, scratch: topology.NewBFSScratch(g.IDSpace())}
}

// Within reports whether v is within maxHops of head in the graph.
func (r *ReachChecker) Within(v, head, maxHops int) bool {
	h := r.scratch.HopCount(r.g, v, head, nil)
	return h >= 0 && h <= maxHops
}
