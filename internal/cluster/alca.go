// Package cluster implements the recursive clustered hierarchy of the
// paper (§2): the asynchronous Linked Cluster Algorithm (ALCA, Baker &
// Ephremides [1]) applied recursively to produce an L-level hierarchy,
// plus snapshot diffing that extracts the election / rejection /
// migration / cluster-link events whose frequencies Sections 4 and 5
// of the paper analyze.
//
// Election semantics (paper §2.2): a level-k node u elects as its
// clusterhead the highest-ID node in its closed level-k neighborhood;
// v is a level-k clusterhead (hence a level-(k+1) node) iff at least
// one node elected it. A node that is itself a clusterhead belongs to
// its own cluster even if it elected a higher-ID neighbor.
//
// The simulator recomputes the clustering fixed point after every link
// scan ("oracle ALCA") and diffs consecutive snapshots; see DESIGN.md
// for why this observes the same event stream as a converged
// asynchronous execution.
package cluster

import (
	"repro/internal/topology"
)

// Elector chooses a clusterhead for every node of one level.
type Elector interface {
	// Elect returns, for each node in nodes, the elected clusterhead
	// (possibly the node itself). nodes is sorted ascending; g is the
	// level-k graph; prevHead is the node's clusterhead in the previous
	// snapshot at this level (or -1), enabling hysteresis variants.
	Elect(nodes []int, g *topology.Graph, prevHead func(int) int) map[int]int

	// Name identifies the elector for reports.
	Name() string
}

// MemorylessLCA is the paper's election rule: always elect the
// highest-ID node of the closed neighborhood. This is the rule under
// which the paper's Fig. 3 state-transition model and the §5 frequency
// analysis are formulated.
type MemorylessLCA struct{}

// Name implements Elector.
func (MemorylessLCA) Name() string { return "lca" }

// Elect implements Elector.
func (MemorylessLCA) Elect(nodes []int, g *topology.Graph, prevHead func(int) int) map[int]int {
	head := make(map[int]int, len(nodes))
	for _, u := range nodes {
		best := u
		for _, v := range g.Neighbors(u) {
			if v > best {
				best = v
			}
		}
		head[u] = best
	}
	return head
}

// StickyLCA is the hysteresis variant used as ablation A1: a node
// keeps its previously elected clusterhead for as long as that head
// remains in its closed neighborhood, and only re-elects (by max ID)
// when the link to the head is lost. This is closer to deployed LCA
// implementations and damps election churn; comparing overhead under
// the two electors isolates how much of γ is election-induced.
type StickyLCA struct{}

// Name implements Elector.
func (StickyLCA) Name() string { return "sticky-lca" }

// Elect implements Elector.
func (StickyLCA) Elect(nodes []int, g *topology.Graph, prevHead func(int) int) map[int]int {
	head := make(map[int]int, len(nodes))
	for _, u := range nodes {
		if prev := prevHead(u); prev >= 0 {
			if prev == u {
				// Was its own head: keep only while still locally
				// maximal-eligible, i.e. re-evaluate below.
			} else if g.HasEdge(u, prev) {
				head[u] = prev
				continue
			}
		}
		best := u
		for _, v := range g.Neighbors(u) {
			if v > best {
				best = v
			}
		}
		head[u] = best
	}
	return head
}

// ElectCtx is the richer election context available to stateful
// electors during tracked builds: the virtual time, the level, and the
// logical identity of each participating node (relabel-proof keys for
// hysteresis state).
type ElectCtx struct {
	Time  float64
	Level int
	Nodes []int
	Graph *topology.Graph
	// PrevHead returns, for a node, the current physical carrier of
	// the head it elected in the previous snapshot (-1 if none).
	PrevHead func(int) int
	// LogicalOf returns the stable identity of a level-k node in this
	// snapshot (the node ID itself at level 0).
	LogicalOf func(int) uint64
}

// StatefulElector is an Elector that needs the tracked-build context
// (time, logical identities). BuildWithIdentities prefers ElectTracked
// when implemented.
type StatefulElector interface {
	Elector
	ElectTracked(ctx *ElectCtx) map[int]int
}

// DebouncedLCA is StickyLCA plus a hysteresis timer: a node that loses
// the link to its current clusterhead *retains the affiliation* for up
// to Grace seconds before re-electing, absorbing border flaps (the
// cluster-maintenance damping used by hierarchical MANET systems such
// as MMWN [13]). This is the stabilized-clustering regime under which
// the paper's Θ(1/h_k) event-frequency premises hold: a cluster
// changes parents only after *sustained* separation, which requires
// Θ(h_k) of physical motion.
//
// Hierarchies built with a positive Grace can transiently contain
// members with no link to their head; use Config.Reach = -1 to skip
// the reach check in Validate.
type DebouncedLCA struct {
	Grace float64
	// LevelScale grows the grace period geometrically with the level:
	// grace(k) = Grace·LevelScale^k (0 or 1 = constant grace). Setting
	// LevelScale ≈ √α makes the hysteresis span scale like h_k, which
	// is exactly the paper's Θ(h_k)-displacement premise for level-k
	// reorganization events (§5.3).
	LevelScale float64
	// lost[(level, logical node)] = time the link to the current head
	// was first observed missing.
	lost map[debKey]float64
}

type debKey struct {
	level   int
	logical uint64
}

// NewDebouncedLCA returns a debounced elector with the given grace
// period in seconds.
func NewDebouncedLCA(grace float64) *DebouncedLCA {
	return &DebouncedLCA{Grace: grace, lost: map[debKey]float64{}}
}

// Name implements Elector.
func (d *DebouncedLCA) Name() string { return "debounced-lca" }

// Elect implements Elector (used in untracked builds, where no timing
// context exists): behaves like StickyLCA.
func (d *DebouncedLCA) Elect(nodes []int, g *topology.Graph, prevHead func(int) int) map[int]int {
	return StickyLCA{}.Elect(nodes, g, prevHead)
}

// ElectTracked implements StatefulElector.
func (d *DebouncedLCA) ElectTracked(ctx *ElectCtx) map[int]int {
	if d.lost == nil {
		d.lost = map[debKey]float64{}
	}
	grace := d.Grace
	//lint:ignore floateq 1 is the exact no-scaling sentinel, never computed
	if d.LevelScale > 0 && d.LevelScale != 1 {
		for i := 0; i < ctx.Level; i++ {
			grace *= d.LevelScale
		}
	}
	head := make(map[int]int, len(ctx.Nodes))
	for _, u := range ctx.Nodes {
		key := debKey{level: ctx.Level, logical: ctx.LogicalOf(u)}
		prev := ctx.PrevHead(u)
		switch {
		case prev >= 0 && (prev == u || ctx.Graph.HasEdge(u, prev)):
			// Head reachable: keep it.
			head[u] = prev
			delete(d.lost, key)
		case prev >= 0:
			// Head's cluster lives but the link is down: hold on for
			// the grace period before re-electing.
			since, ok := d.lost[key]
			if !ok {
				since = ctx.Time
				d.lost[key] = since
			}
			if ctx.Time-since <= grace {
				head[u] = prev
				continue
			}
			delete(d.lost, key)
			head[u] = argmaxClosed(u, ctx.Graph)
		default:
			// No previous head (first election or the head's cluster
			// died): elect afresh.
			delete(d.lost, key)
			head[u] = argmaxClosed(u, ctx.Graph)
		}
	}
	return head
}

// argmaxClosed returns the highest ID in u's closed neighborhood.
func argmaxClosed(u int, g *topology.Graph) int {
	best := u
	for _, v := range g.Neighbors(u) {
		if v > best {
			best = v
		}
	}
	return best
}

var (
	_ Elector         = MemorylessLCA{}
	_ Elector         = StickyLCA{}
	_ StatefulElector = (*DebouncedLCA)(nil)
)
