// Package cluster implements the recursive clustered hierarchy of the
// paper (§2): the asynchronous Linked Cluster Algorithm (ALCA, Baker &
// Ephremides [1]) applied recursively to produce an L-level hierarchy,
// plus snapshot diffing that extracts the election / rejection /
// migration / cluster-link events whose frequencies Sections 4 and 5
// of the paper analyze.
//
// Election semantics (paper §2.2): a level-k node u elects as its
// clusterhead the highest-ID node in its closed level-k neighborhood;
// v is a level-k clusterhead (hence a level-(k+1) node) iff at least
// one node elected it. A node that is itself a clusterhead belongs to
// its own cluster even if it elected a higher-ID neighbor.
//
// The simulator recomputes the clustering fixed point after every link
// scan ("oracle ALCA") and diffs consecutive snapshots; see DESIGN.md
// for why this observes the same event stream as a converged
// asynchronous execution.
package cluster

import (
	"maps"
	"slices"

	"repro/internal/topology"
)

// Elector chooses a clusterhead for every node of one level.
type Elector interface {
	// Elect appends, for each node of nodes in order, the elected
	// clusterhead (possibly the node itself) to dst and returns the
	// extended slice: result[i] is the head of nodes[i]. nodes is
	// sorted ascending; g is the level-k graph; prevHead is the node's
	// clusterhead in the previous snapshot at this level (or -1),
	// enabling hysteresis variants. Callers reuse dst's capacity across
	// ticks, keeping elections allocation-free in steady state.
	Elect(dst []int, nodes []int, g *topology.Graph, prevHead func(int) int) []int

	// Name identifies the elector for reports.
	Name() string
}

// MemorylessLCA is the paper's election rule: always elect the
// highest-ID node of the closed neighborhood. This is the rule under
// which the paper's Fig. 3 state-transition model and the §5 frequency
// analysis are formulated.
type MemorylessLCA struct{}

// Name implements Elector.
func (MemorylessLCA) Name() string { return "lca" }

// Elect implements Elector.
//
//manet:hotpath
func (MemorylessLCA) Elect(dst []int, nodes []int, g *topology.Graph, prevHead func(int) int) []int {
	for _, u := range nodes {
		dst = append(dst, argmaxClosed(u, g))
	}
	return dst
}

// StickyLCA is the hysteresis variant used as ablation A1: a node
// keeps its previously elected clusterhead for as long as that head
// remains in its closed neighborhood, and only re-elects (by max ID)
// when the link to the head is lost. This is closer to deployed LCA
// implementations and damps election churn; comparing overhead under
// the two electors isolates how much of γ is election-induced.
type StickyLCA struct{}

// Name implements Elector.
func (StickyLCA) Name() string { return "sticky-lca" }

// Elect implements Elector.
//
//manet:hotpath
func (StickyLCA) Elect(dst []int, nodes []int, g *topology.Graph, prevHead func(int) int) []int {
	for _, u := range nodes {
		if prev := prevHead(u); prev >= 0 {
			if prev == u {
				// Was its own head: keep only while still locally
				// maximal-eligible, i.e. re-evaluate below.
			} else if g.HasEdge(u, prev) {
				dst = append(dst, prev)
				continue
			}
		}
		dst = append(dst, argmaxClosed(u, g))
	}
	return dst
}

// ElectCtx is the richer election context available to stateful
// electors during tracked builds: the virtual time, the level, and the
// logical identity of each participating node (relabel-proof keys for
// hysteresis state).
type ElectCtx struct {
	Time  float64
	Level int
	Nodes []int
	Graph *topology.Graph
	// PrevHead returns, for a node, the current physical carrier of
	// the head it elected in the previous snapshot (-1 if none).
	PrevHead func(int) int
	// LogicalOf returns the stable identity of a level-k node in this
	// snapshot (the node ID itself at level 0).
	LogicalOf func(int) uint64
}

// StatefulElector is an Elector that needs the tracked-build context
// (time, logical identities). BuildWithIdentities prefers ElectTracked
// when implemented.
type StatefulElector interface {
	Elector
	// ElectTracked is Elect with the tracked-build context, in the same
	// append-to-dst form: result[i] is the head of ctx.Nodes[i].
	ElectTracked(dst []int, ctx *ElectCtx) []int
}

// DebouncedLCA is StickyLCA plus a hysteresis timer: a node that loses
// the link to its current clusterhead *retains the affiliation* for up
// to Grace seconds before re-electing, absorbing border flaps (the
// cluster-maintenance damping used by hierarchical MANET systems such
// as MMWN [13]). This is the stabilized-clustering regime under which
// the paper's Θ(1/h_k) event-frequency premises hold: a cluster
// changes parents only after *sustained* separation, which requires
// Θ(h_k) of physical motion.
//
// Hierarchies built with a positive Grace can transiently contain
// members with no link to their head; use Config.Reach = -1 to skip
// the reach check in Validate.
type DebouncedLCA struct {
	Grace float64
	// LevelScale grows the grace period geometrically with the level:
	// grace(k) = Grace·LevelScale^k (0 or 1 = constant grace). Setting
	// LevelScale ≈ √α makes the hysteresis span scale like h_k, which
	// is exactly the paper's Θ(h_k)-displacement premise for level-k
	// reorganization events (§5.3).
	LevelScale float64
	// lost[(level, logical node)] = time the link to the current head
	// was first observed missing.
	lost map[debKey]float64
}

type debKey struct {
	level   int
	logical uint64
}

// NewDebouncedLCA returns a debounced elector with the given grace
// period in seconds.
func NewDebouncedLCA(grace float64) *DebouncedLCA {
	return &DebouncedLCA{Grace: grace, lost: map[debKey]float64{}}
}

// Name implements Elector.
func (d *DebouncedLCA) Name() string { return "debounced-lca" }

// Elect implements Elector (used in untracked builds, where no timing
// context exists): behaves like StickyLCA.
//
//manet:hotpath
func (d *DebouncedLCA) Elect(dst []int, nodes []int, g *topology.Graph, prevHead func(int) int) []int {
	return StickyLCA{}.Elect(dst, nodes, g, prevHead)
}

// ElectTracked implements StatefulElector.
//
//manet:hotpath
func (d *DebouncedLCA) ElectTracked(dst []int, ctx *ElectCtx) []int {
	if d.lost == nil {
		//lint:ignore hotpath warm-up: the grace-timer map is allocated once and reused
		d.lost = map[debKey]float64{}
	}
	grace := d.Grace
	//lint:ignore floateq 1 is the exact no-scaling sentinel, never computed
	if d.LevelScale > 0 && d.LevelScale != 1 {
		for i := 0; i < ctx.Level; i++ {
			grace *= d.LevelScale
		}
	}
	for _, u := range ctx.Nodes {
		key := debKey{level: ctx.Level, logical: ctx.LogicalOf(u)}
		prev := ctx.PrevHead(u)
		switch {
		case prev >= 0 && (prev == u || ctx.Graph.HasEdge(u, prev)):
			// Head reachable: keep it.
			dst = append(dst, prev)
			delete(d.lost, key)
		case prev >= 0:
			// Head's cluster lives but the link is down: hold on for
			// the grace period before re-electing.
			since, ok := d.lost[key]
			if !ok {
				since = ctx.Time
				d.lost[key] = since
			}
			if ctx.Time-since <= grace {
				dst = append(dst, prev)
				continue
			}
			delete(d.lost, key)
			dst = append(dst, argmaxClosed(u, ctx.Graph))
		default:
			// No previous head (first election or the head's cluster
			// died): elect afresh.
			delete(d.lost, key)
			dst = append(dst, argmaxClosed(u, ctx.Graph))
		}
	}
	return dst
}

// argmaxClosed returns the highest ID in u's closed neighborhood.
//
//manet:hotpath
func argmaxClosed(u int, g *topology.Graph) int {
	best := u
	for _, v := range g.Neighbors(u) {
		if v > best {
			best = v
		}
	}
	return best
}

// CloneableElector is an Elector whose full hysteresis state can be
// duplicated. The invariant checker uses clones to rebuild reference
// snapshots without perturbing the live elector (a reference election
// must see the same memory the real one did, and must not advance it).
// Stateless electors return themselves.
type CloneableElector interface {
	Elector
	CloneElector() Elector
}

// CloneElector implements CloneableElector (stateless).
func (m MemorylessLCA) CloneElector() Elector { return m }

// CloneElector implements CloneableElector (stateless).
func (s StickyLCA) CloneElector() Elector { return s }

// CloneElector implements CloneableElector: the grace-timer map is
// deep-copied so elections on the clone cannot disturb the original.
func (d *DebouncedLCA) CloneElector() Elector {
	return &DebouncedLCA{Grace: d.Grace, LevelScale: d.LevelScale, lost: maps.Clone(d.lost)}
}

// RestorableElector is a CloneableElector whose state can be rolled
// back to an earlier clone. The incremental maintainer snapshots the
// elector before attempting a fast-path patch; if a dynamic
// precondition fails mid-flight it restores the snapshot so the oracle
// fallback re-runs the tick's elections against pristine state.
type RestorableElector interface {
	CloneableElector
	// RestoreElector resets the elector's hysteresis state to that of
	// snap, a value previously returned by CloneElector on the same
	// elector. The snapshot is consumed: it must not be restored twice.
	RestoreElector(snap Elector)
}

// RestoreElector implements RestorableElector (stateless).
func (MemorylessLCA) RestoreElector(Elector) {}

// RestoreElector implements RestorableElector (stateless).
func (StickyLCA) RestoreElector(Elector) {}

// RestoreElector implements RestorableElector: adopt the snapshot's
// grace-timer map (the clone's map is a private deep copy, so taking
// ownership is safe).
func (d *DebouncedLCA) RestoreElector(snap Elector) {
	s, ok := snap.(*DebouncedLCA)
	if !ok {
		panic("cluster: RestoreElector snapshot is not a *DebouncedLCA")
	}
	d.lost = s.lost
}

// NeighborhoodElector marks an Elector whose vote for node u depends
// only on u's closed 1-hop neighborhood (and, for stateful electors,
// per-node hysteresis keyed by u itself). The incremental maintainer
// requires this locality: re-electing just the dirty nodes' closed
// neighborhoods then reproduces the full election on clean nodes. The
// max-min d-hop family is NOT neighborhood-local and always falls back.
type NeighborhoodElector interface {
	Elector
	// NeighborhoodLocal is a marker; it has no behavior.
	NeighborhoodLocal()
}

// NeighborhoodLocal implements NeighborhoodElector.
func (MemorylessLCA) NeighborhoodLocal() {}

// NeighborhoodLocal implements NeighborhoodElector.
func (StickyLCA) NeighborhoodLocal() {}

// NeighborhoodLocal implements NeighborhoodElector.
func (*DebouncedLCA) NeighborhoodLocal() {}

// PendingElector is a StatefulElector whose output can change over time
// without any topology change (e.g. a grace timer expiring). The
// incremental maintainer must re-elect such nodes every tick even when
// no link event touches them; AppendPending names them.
type PendingElector interface {
	StatefulElector
	// AppendPending appends the logical IDs of level-k nodes currently
	// holding hysteresis state that can expire, sorted ascending, and
	// returns the extended slice.
	AppendPending(level int, dst []uint64) []uint64
}

// AppendPending implements PendingElector: every node with a running
// grace timer at this level.
func (d *DebouncedLCA) AppendPending(level int, dst []uint64) []uint64 {
	n := len(dst)
	//lint:ignore maprange level-filtered keys are sorted below; order cannot escape
	for k := range d.lost {
		if k.level == level {
			dst = append(dst, k.logical)
		}
	}
	slices.Sort(dst[n:])
	return dst
}

var (
	_ Elector          = MemorylessLCA{}
	_ Elector          = StickyLCA{}
	_ StatefulElector  = (*DebouncedLCA)(nil)
	_ CloneableElector = MemorylessLCA{}
	_ CloneableElector = StickyLCA{}
	_ CloneableElector = (*DebouncedLCA)(nil)
	_ PendingElector   = (*DebouncedLCA)(nil)

	_ NeighborhoodElector = MemorylessLCA{}
	_ NeighborhoodElector = StickyLCA{}
	_ NeighborhoodElector = (*DebouncedLCA)(nil)
)
