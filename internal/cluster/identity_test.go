package cluster

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

func trackedBuild(t *testing.T, g *topology.Graph, nodes []int, cfg Config,
	prevH *Hierarchy, prevIDs *Identities, tr *IdentityTracker, now float64) (*Hierarchy, *Identities) {
	t.Helper()
	h, ids := BuildWithIdentities(g, nodes, cfg, prevH, prevIDs, tr, now)
	if cfg.Reach >= 0 {
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return h, ids
}

func TestIdentitiesInitCoverAllClusters(t *testing.T) {
	g := graphOf(8, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	tr := NewIdentityTracker()
	h, ids := trackedBuild(t, g, []int{1, 2, 5, 6}, Config{}, nil, nil, tr, 0)
	for k := 1; k <= h.L(); k++ {
		for _, head := range h.LevelNodes(k) {
			if _, ok := ids.Logical(k, head); !ok {
				t.Fatalf("level-%d cluster %d has no identity", k, head)
			}
		}
	}
	if ids.Levels() != h.L() {
		t.Fatalf("ids cover %d levels, hierarchy has %d", ids.Levels(), h.L())
	}
}

func TestIdentityStableUnderNoChange(t *testing.T) {
	g := graphOf(8, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	tr := NewIdentityTracker()
	h1, ids1 := trackedBuild(t, g, []int{1, 2, 5, 6}, Config{}, nil, nil, tr, 0)
	h2, ids2 := trackedBuild(t, g, []int{1, 2, 5, 6}, Config{}, h1, ids1, tr, 1)
	for k := 1; k <= h1.L(); k++ {
		for _, head := range h1.LevelNodes(k) {
			a, _ := ids1.Logical(k, head)
			b, ok := ids2.Logical(k, head)
			if !ok || a != b {
				t.Fatalf("identity of level-%d cluster %d changed: %d -> %d", k, head, a, b)
			}
		}
	}
	_ = h2
}

func TestIdentitySurvivesRelabel(t *testing.T) {
	// Cluster {1,5} led by 5; node 9 joins and takes over headship.
	// The logical ID must carry from head 5 to head 9 (plurality of
	// members is retained).
	g1 := graphOf(12, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	tr := NewIdentityTracker()
	h1, ids1 := trackedBuild(t, g1, []int{1, 2, 5, 6}, Config{}, nil, nil, tr, 0)
	old, ok := ids1.Logical(1, 5)
	if !ok {
		t.Fatal("no identity for cluster 5")
	}
	g2 := graphOf(12, [2]int{1, 5}, [2]int{1, 9}, [2]int{5, 9}, [2]int{2, 6}, [2]int{5, 6}, [2]int{9, 6})
	h2, ids2 := trackedBuild(t, g2, []int{1, 2, 5, 6, 9}, Config{}, h1, ids1, tr, 1)
	newHead := h2.Ancestor(1, 1)
	if newHead != 9 {
		t.Fatalf("expected 9 to take over, head = %d", newHead)
	}
	id2, ok := ids2.Logical(1, newHead)
	if !ok || id2 != old {
		t.Fatalf("identity lost across relabel: %d -> %d", old, id2)
	}
}

func TestIdentityFreshForNewCluster(t *testing.T) {
	g1 := graphOf(10, [2]int{1, 5})
	tr := NewIdentityTracker()
	h1, ids1 := trackedBuild(t, g1, []int{1, 5}, Config{}, nil, nil, tr, 0)
	// A disjoint new pair appears.
	g2 := graphOf(10, [2]int{1, 5}, [2]int{2, 6})
	_, ids2 := trackedBuild(t, g2, []int{1, 2, 5, 6}, Config{}, h1, ids1, tr, 1)
	oldID, _ := ids1.Logical(1, 5)
	keptID, _ := ids2.Logical(1, 5)
	newID, ok := ids2.Logical(1, 6)
	if keptID != oldID {
		t.Fatalf("existing cluster's ID changed: %d -> %d", oldID, keptID)
	}
	if !ok || newID == oldID {
		t.Fatalf("new cluster did not get a fresh ID: %d", newID)
	}
}

func TestPassthroughUsesHeadIDs(t *testing.T) {
	g := graphOf(8, [2]int{1, 5}, [2]int{2, 6}, [2]int{5, 6})
	tr := NewIdentityTracker()
	tr.Passthrough = true
	h, ids := trackedBuild(t, g, []int{1, 2, 5, 6}, Config{}, nil, nil, tr, 0)
	for k := 1; k <= h.L(); k++ {
		for _, head := range h.LevelNodes(k) {
			id, _ := ids.Logical(k, head)
			if id != uint64(head) {
				t.Fatalf("passthrough id %d for head %d", id, head)
			}
		}
	}
}

func TestChainOfMatchesAncestors(t *testing.T) {
	pos := randomPositions(150, 450, 21)
	g := topology.BuildUnitDiskBrute(pos, 105)
	tr := NewIdentityTracker()
	h, ids := trackedBuild(t, g, nodesUpTo(150), Config{}, nil, nil, tr, 0)
	for _, v := range h.LevelNodes(0) {
		phys := h.AncestorChain(v)
		log := ids.ChainOf(h, v)
		if len(log) != len(phys) {
			t.Fatalf("node %d: logical chain %d levels, physical %d", v, len(log), len(phys))
		}
		for i := range phys {
			want, _ := ids.Logical(i+1, phys[i])
			if log[i] != want {
				t.Fatalf("node %d level %d: chain %d != %d", v, i+1, log[i], want)
			}
		}
	}
}

func TestTrackMatchesBuildWithIdentities(t *testing.T) {
	// Track (post-hoc matching) and BuildWithIdentities (interleaved)
	// agree for memoryless electors, where election does not depend on
	// identity state.
	src := rng.New(22)
	d := geom.Disc{R: 430}
	const n = 120
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	g1 := topology.BuildUnitDiskBrute(pos, 100)
	trA := NewIdentityTracker()
	trB := NewIdentityTracker()
	hA, idsA := BuildWithIdentities(g1, nodesUpTo(n), Config{}, nil, nil, trA, 0)
	hB := Build(g1, nodesUpTo(n), Config{}, nil)
	idsB := trB.Init(hB)

	for i := range pos {
		pos[i] = d.Clamp(pos[i].Add(geom.Vec{X: src.Range(-15, 15), Y: src.Range(-15, 15)}))
	}
	g2 := topology.BuildUnitDiskBrute(pos, 100)
	hA2, idsA2 := BuildWithIdentities(g2, nodesUpTo(n), Config{}, hA, idsA, trA, 1)
	hB2 := Build(g2, nodesUpTo(n), Config{}, hB)
	idsB2 := trB.Track(hB, idsB, hB2)

	// Same physical hierarchies...
	if hA2.L() != hB2.L() {
		t.Fatalf("levels differ: %d vs %d", hA2.L(), hB2.L())
	}
	// ...and identical identity *partitions* (IDs themselves may differ
	// in allocation order, so compare persistence patterns).
	for k := 1; k <= hA2.L(); k++ {
		for _, head := range hA2.LevelNodes(k) {
			a1, okA1 := idsA.Logical(k, head)
			a2, _ := idsA2.Logical(k, head)
			b1, okB1 := idsB.Logical(k, head)
			b2, _ := idsB2.Logical(k, head)
			persistedA := okA1 && a1 == a2
			persistedB := okB1 && b1 == b2
			if persistedA != persistedB {
				t.Fatalf("level %d head %d: persistence disagrees (interleaved %v, post-hoc %v)",
					k, head, persistedA, persistedB)
			}
		}
	}
}

func TestLogicalEdges(t *testing.T) {
	g := graphOf(8, [2]int{1, 5}, [2]int{2, 6}, [2]int{1, 2})
	tr := NewIdentityTracker()
	h, ids := trackedBuild(t, g, []int{1, 2, 5, 6}, Config{}, nil, nil, tr, 0)
	edges := LogicalEdges(h, ids, 1)
	if len(edges) != 1 {
		t.Fatalf("level-1 logical edges = %v", edges)
	}
	for e := range edges {
		if e.A >= e.B {
			t.Fatalf("edge not ordered: %+v", e)
		}
	}
}

// --- DebouncedLCA ---

func TestDebouncedRetainsLostHeadWithinGrace(t *testing.T) {
	tr := NewIdentityTracker()
	cfg := Config{Elector: NewDebouncedLCA(5), Reach: -1}
	// 1 elects 5.
	g1 := graphOf(10, [2]int{1, 5}, [2]int{0, 5})
	h1, ids1 := BuildWithIdentities(g1, []int{0, 1, 5}, cfg, nil, nil, tr, 0)
	if h1.Level(0).Head[1] != 5 {
		t.Fatalf("head(1) = %d", h1.Level(0).Head[1])
	}
	// Link 1-5 drops at t=1: within grace, 1 still claims 5.
	g2 := graphOf(10, [2]int{0, 5})
	h2, ids2 := BuildWithIdentities(g2, []int{0, 1, 5}, cfg, h1, ids1, tr, 1)
	if h2.Level(0).Head[1] != 5 {
		t.Fatalf("within grace head(1) = %d, want 5", h2.Level(0).Head[1])
	}
	// Still lost at t=10 (> grace 5): re-elects itself.
	h3, _ := BuildWithIdentities(g2, []int{0, 1, 5}, cfg, h2, ids2, tr, 10)
	if h3.Level(0).Head[1] != 1 {
		t.Fatalf("after grace head(1) = %d, want 1", h3.Level(0).Head[1])
	}
}

func TestDebouncedRecoversOnRelink(t *testing.T) {
	tr := NewIdentityTracker()
	cfg := Config{Elector: NewDebouncedLCA(5), Reach: -1}
	g1 := graphOf(10, [2]int{1, 5}, [2]int{0, 5})
	h1, ids1 := BuildWithIdentities(g1, []int{0, 1, 5}, cfg, nil, nil, tr, 0)
	gLost := graphOf(10, [2]int{0, 5})
	h2, ids2 := BuildWithIdentities(gLost, []int{0, 1, 5}, cfg, h1, ids1, tr, 1)
	// Link returns at t=3: the pending loss must be forgotten...
	h3, ids3 := BuildWithIdentities(g1, []int{0, 1, 5}, cfg, h2, ids2, tr, 3)
	if h3.Level(0).Head[1] != 5 {
		t.Fatalf("head after relink = %d", h3.Level(0).Head[1])
	}
	// ...so a second loss restarts the grace clock.
	h4, ids4 := BuildWithIdentities(gLost, []int{0, 1, 5}, cfg, h3, ids3, tr, 7)
	if h4.Level(0).Head[1] != 5 {
		t.Fatalf("head right after second loss = %d", h4.Level(0).Head[1])
	}
	h5, _ := BuildWithIdentities(gLost, []int{0, 1, 5}, cfg, h4, ids4, tr, 11)
	if h5.Level(0).Head[1] != 5 {
		t.Fatalf("head within second grace = %d", h5.Level(0).Head[1])
	}
}

func TestDebouncedLevelScale(t *testing.T) {
	d := &DebouncedLCA{Grace: 2, LevelScale: 3}
	// At level 2 the effective grace is 2*9 = 18.
	g := graphOf(4, [2]int{1, 2})
	ctx := &ElectCtx{
		Time: 10, Level: 2, Nodes: []int{3}, Graph: g,
		PrevHead:  func(int) int { return 2 }, // claims head 2, not adjacent
		LogicalOf: func(int) uint64 { return 7 },
	}
	head := d.ElectTracked(nil, ctx)
	if head[0] != 2 {
		t.Fatalf("lost head dropped before scaled grace: %v", head)
	}
	ctx.Time = 40 // 30s elapsed > 18
	head = d.ElectTracked(head[:0], ctx)
	if head[0] != 3 {
		t.Fatalf("lost head kept beyond scaled grace: %v", head)
	}
}

// --- forced top ---

func TestForcedTop(t *testing.T) {
	pos := randomPositions(200, 500, 23)
	g := topology.BuildUnitDiskBrute(pos, 120)
	giant := topology.GiantComponent(g, nodesUpTo(200))
	tr := NewIdentityTracker()
	cfg := Config{ForceTopAt: 12}
	h, ids := BuildWithIdentities(g, giant, cfg, nil, nil, tr, 0)
	if !h.ForcedTop {
		t.Skip("hierarchy never reached the cap (layout too small)")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	top := h.LevelNodes(h.L())
	if len(top) != 1 {
		t.Fatalf("forced top has %d nodes", len(top))
	}
	// The forced level's width respects the cap.
	below := h.LevelNodes(h.L() - 1)
	if len(below) > 12 {
		t.Fatalf("forced level has %d members > cap", len(below))
	}
	// Every giant node's chain reaches the top.
	for _, v := range giant {
		chain := h.AncestorChain(v)
		if len(chain) != h.L() {
			t.Fatalf("node %d chain depth %d, want %d", v, len(chain), h.L())
		}
		if chain[len(chain)-1] != top[0] {
			t.Fatalf("node %d top ancestor %d", v, chain[len(chain)-1])
		}
	}
	// The top has an identity.
	if _, ok := ids.Logical(h.L(), top[0]); !ok {
		t.Fatal("forced top has no identity")
	}
}

func TestForcedTopIdentityStableAcrossRootChange(t *testing.T) {
	// The top cluster keeps its logical ID even when its root (max ID)
	// changes, because it always holds the population plurality.
	tr := NewIdentityTracker()
	cfg := Config{ForceTopAt: 12}
	g1 := graphOf(12, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 4}, [2]int{4, 9})
	h1, ids1 := BuildWithIdentities(g1, []int{1, 2, 3, 4, 9}, cfg, nil, nil, tr, 0)
	if !h1.ForcedTop {
		t.Fatal("no forced top")
	}
	topID1, _ := ids1.Logical(h1.L(), h1.LevelNodes(h1.L())[0])
	// Node 9 (the max) leaves; root changes.
	g2 := graphOf(12, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 4})
	h2, ids2 := BuildWithIdentities(g2, []int{1, 2, 3, 4}, cfg, h1, ids1, tr, 1)
	if !h2.ForcedTop {
		t.Fatal("no forced top after change")
	}
	topID2, _ := ids2.Logical(h2.L(), h2.LevelNodes(h2.L())[0])
	if topID1 != topID2 {
		t.Fatalf("forced-top identity changed: %d -> %d", topID1, topID2)
	}
}
