package cluster

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

func graphOf(n int, edges ...[2]int) *topology.Graph {
	g := topology.NewGraph(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func nodesUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestElectStar(t *testing.T) {
	// Star centered at the max-ID node: everyone elects the center.
	g := graphOf(6, [2]int{5, 1}, [2]int{5, 2}, [2]int{5, 3}, [2]int{5, 4})
	h := Build(g, []int{1, 2, 3, 4, 5}, Config{}, nil)
	if h.L() < 1 {
		t.Fatal("no clustering performed")
	}
	lvl0 := h.Level(0)
	for _, u := range []int{1, 2, 3, 4, 5} {
		if lvl0.Member[u] != 5 {
			t.Fatalf("member(%d) = %d, want 5", u, lvl0.Member[u])
		}
	}
	if got := h.LevelNodes(1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("level-1 nodes = %v", got)
	}
	// Center's ALCA state counts its 4 neighbor electors.
	if lvl0.State[5] != 4 {
		t.Fatalf("state(5) = %d, want 4", lvl0.State[5])
	}
}

func TestElectChain(t *testing.T) {
	// 1-2-3: head(1)=2, head(2)=3, head(3)=3.
	g := graphOf(4, [2]int{1, 2}, [2]int{2, 3})
	h := Build(g, []int{1, 2, 3}, Config{}, nil)
	lvl0 := h.Level(0)
	if lvl0.Head[1] != 2 || lvl0.Head[2] != 3 || lvl0.Head[3] != 3 {
		t.Fatalf("heads = %v", lvl0.Head)
	}
	// 2 is a head (elected by 1) so it belongs to its own cluster.
	if lvl0.Member[1] != 2 || lvl0.Member[2] != 2 || lvl0.Member[3] != 3 {
		t.Fatalf("members = %v", lvl0.Member)
	}
	// Level-1 topology: clusters 2 and 3 are adjacent via edge (2,3).
	lvl1 := h.Level(1)
	if !lvl1.Graph.HasEdge(2, 3) {
		t.Fatal("level-1 clusters not adjacent")
	}
	// 2 is in ALCA state 1: the critical state.
	if lvl0.State[2] != 1 {
		t.Fatalf("state(2) = %d, want 1", lvl0.State[2])
	}
}

func TestElectPaperFig1Fragment(t *testing.T) {
	// Mirrors the paper's node-68 example: 68 is elected by 63 even
	// though 68 itself elects the larger neighbor 97.
	g := graphOf(98, [2]int{63, 68}, [2]int{68, 97})
	h := Build(g, []int{63, 68, 97}, Config{}, nil)
	lvl0 := h.Level(0)
	if lvl0.Head[63] != 68 {
		t.Fatalf("head(63) = %d, want 68", lvl0.Head[63])
	}
	if lvl0.Head[68] != 97 {
		t.Fatalf("head(68) = %d, want 97", lvl0.Head[68])
	}
	// Both 68 and 97 are clusterheads; 68 leads {63, 68}.
	if lvl0.Member[63] != 68 || lvl0.Member[68] != 68 || lvl0.Member[97] != 97 {
		t.Fatalf("members = %v", lvl0.Member)
	}
}

func TestIsolatedNodesSelfCluster(t *testing.T) {
	g := graphOf(3)
	h := Build(g, []int{0, 1, 2}, Config{}, nil)
	// No edges: no compression, single trivial level.
	if h.L() != 0 {
		t.Fatalf("L = %d for edgeless graph", h.L())
	}
	if h.Level(0).Head != nil {
		t.Fatal("trivial level kept election data")
	}
}

func TestRecursionTerminatesSingleTop(t *testing.T) {
	// Connected random unit-disk graph compresses to a single top node.
	pos := randomPositions(200, 500, 1)
	g := topology.BuildUnitDiskBrute(pos, 120)
	giant := topology.GiantComponent(g, nodesUpTo(200))
	h := Build(g, giant, Config{}, nil)
	top := h.LevelNodes(h.L())
	if len(top) != 1 {
		t.Fatalf("top level has %d nodes, want 1 (connected input)", len(top))
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.L() < 2 {
		t.Fatalf("only %d levels for 200 connected nodes", h.L())
	}
}

func randomPositions(n int, r float64, seed uint64) []geom.Vec {
	src := rng.New(seed)
	d := geom.Disc{R: r}
	ps := make([]geom.Vec, n)
	for i := range ps {
		ps[i] = d.Sample(src)
	}
	return ps
}

func TestValidateRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		pos := randomPositions(150, 450, seed)
		g := topology.BuildUnitDiskBrute(pos, 100)
		h := Build(g, nodesUpTo(150), Config{}, nil)
		if err := h.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Aggregation is monotone and alpha > 1 at every level.
		for k := 1; k <= h.L(); k++ {
			if a := h.Alpha(k); a <= 1 {
				t.Fatalf("seed %d: alpha_%d = %v", seed, k, a)
			}
			if c := h.Aggregation(k); c < h.Aggregation(k-1) {
				t.Fatalf("seed %d: c_k not monotone at %d", seed, k)
			}
		}
	}
}

func TestHeadIsMaxOfSomeonesNeighborhood(t *testing.T) {
	// Property: every elected head at level 0 is the max of the closed
	// neighborhood of at least one node.
	pos := randomPositions(120, 400, 3)
	g := topology.BuildUnitDiskBrute(pos, 100)
	h := Build(g, nodesUpTo(120), Config{}, nil)
	lvl0 := h.Level(0)
	if lvl0.Head == nil {
		t.Skip("trivial clustering")
	}
	for head := range lvl0.Members {
		found := false
		for _, u := range lvl0.Nodes {
			best := u
			for _, v := range g.Neighbors(u) {
				if v > best {
					best = v
				}
			}
			if best == head {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("head %d is nobody's closed-neighborhood max", head)
		}
	}
}

func TestAncestorChainConsistency(t *testing.T) {
	pos := randomPositions(150, 450, 5)
	g := topology.BuildUnitDiskBrute(pos, 110)
	h := Build(g, nodesUpTo(150), Config{}, nil)
	for _, v := range h.LevelNodes(0) {
		chain := h.AncestorChain(v)
		// chain[i] must be a level-(i+1) node and contain v among its
		// descendants.
		for i, c := range chain {
			k := i + 1
			if !h.Level(k).IsNode(c) {
				t.Fatalf("chain[%d] = %d not a level-%d node", i, c, k)
			}
			if !containsInt(h.Descendants(k, c), v) {
				t.Fatalf("node %d not among descendants of its level-%d cluster %d", v, k, c)
			}
			if h.Ancestor(v, k) != c {
				t.Fatalf("Ancestor(%d,%d) = %d, want %d", v, k, h.Ancestor(v, k), c)
			}
		}
	}
}

func TestDescendantsPartition(t *testing.T) {
	pos := randomPositions(130, 420, 7)
	g := topology.BuildUnitDiskBrute(pos, 100)
	h := Build(g, nodesUpTo(130), Config{}, nil)
	for k := 1; k <= h.L(); k++ {
		seen := map[int]int{}
		for _, c := range h.LevelNodes(k) {
			for _, v := range h.Descendants(k, c) {
				if prev, dup := seen[v]; dup {
					t.Fatalf("level %d: node %d in clusters %d and %d", k, v, prev, c)
				}
				seen[v] = c
			}
		}
		if len(seen) != len(h.LevelNodes(0)) {
			t.Fatalf("level %d: descendants cover %d of %d nodes", k, len(seen), len(h.LevelNodes(0)))
		}
	}
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

func TestBuildDeterminism(t *testing.T) {
	pos := randomPositions(140, 430, 9)
	g := topology.BuildUnitDiskBrute(pos, 105)
	h1 := Build(g, nodesUpTo(140), Config{}, nil)
	h2 := Build(g, nodesUpTo(140), Config{}, nil)
	if h1.L() != h2.L() {
		t.Fatal("non-deterministic level count")
	}
	for k := 0; k <= h1.L(); k++ {
		a, b := h1.LevelNodes(k), h2.LevelNodes(k)
		if len(a) != len(b) {
			t.Fatalf("level %d sizes differ", k)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("level %d node lists differ", k)
			}
		}
	}
}

func TestStickyLCARetainsHead(t *testing.T) {
	// Triangle 1-2-3 plus new arrival 9 adjacent to 1: memoryless LCA
	// re-elects 9 as 1's head; sticky keeps 3 while the 1-3 link lives.
	g1 := graphOf(10, [2]int{1, 2}, [2]int{2, 3}, [2]int{1, 3})
	hs := Build(g1, []int{1, 2, 3}, Config{Elector: StickyLCA{}}, nil)
	if hs.Level(0).Head[1] != 3 {
		t.Fatalf("initial sticky head(1) = %d", hs.Level(0).Head[1])
	}

	g2 := graphOf(10, [2]int{1, 2}, [2]int{2, 3}, [2]int{1, 3}, [2]int{1, 9})
	// Memoryless switches.
	hm := Build(g2, []int{1, 2, 3, 9}, Config{}, nil)
	if hm.Level(0).Head[1] != 9 {
		t.Fatalf("memoryless head(1) = %d, want 9", hm.Level(0).Head[1])
	}
	// Sticky retains 3.
	hs2 := Build(g2, []int{1, 2, 3, 9}, Config{Elector: StickyLCA{}}, hs)
	if hs2.Level(0).Head[1] != 3 {
		t.Fatalf("sticky head(1) = %d, want 3", hs2.Level(0).Head[1])
	}
	if err := hs2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStickyLCAReElectsOnLinkLoss(t *testing.T) {
	g1 := graphOf(10, [2]int{1, 3}, [2]int{1, 2})
	hs := Build(g1, []int{1, 2, 3}, Config{Elector: StickyLCA{}}, nil)
	if hs.Level(0).Head[1] != 3 {
		t.Fatalf("head(1) = %d", hs.Level(0).Head[1])
	}
	// Link 1-3 breaks: 1 must re-elect among remaining closed nbhd.
	g2 := graphOf(10, [2]int{1, 2})
	hs2 := Build(g2, []int{1, 2, 3}, Config{Elector: StickyLCA{}}, hs)
	if hs2.Level(0).Head[1] != 2 {
		t.Fatalf("after link loss head(1) = %d, want 2", hs2.Level(0).Head[1])
	}
}

func TestMaxLevelsCap(t *testing.T) {
	pos := randomPositions(200, 500, 11)
	g := topology.BuildUnitDiskBrute(pos, 120)
	h := Build(g, nodesUpTo(200), Config{MaxLevels: 2}, nil)
	if h.L() > 2 {
		t.Fatalf("L = %d exceeds cap", h.L())
	}
}

// --- Diff tests ---

func TestDiffEmpty(t *testing.T) {
	g := graphOf(6, [2]int{1, 2}, [2]int{2, 3})
	h1 := Build(g, []int{1, 2, 3}, Config{}, nil)
	h2 := Build(g, []int{1, 2, 3}, Config{}, nil)
	d := ComputeDiff(h1, h2)
	if !d.Empty() {
		t.Fatalf("diff of identical hierarchies not empty: %+v", d)
	}
}

func TestDiffMembershipChange(t *testing.T) {
	// 1 initially with head 2 (chain 1-2 .. 3 separate); then 1 moves
	// adjacent to 3 instead.
	g1 := graphOf(5, [2]int{1, 2}, [2]int{3, 4})
	g2 := graphOf(5, [2]int{1, 4}, [2]int{3, 4}, [2]int{2, 4})
	h1 := Build(g1, []int{1, 2, 3, 4}, Config{}, nil)
	h2 := Build(g2, []int{1, 2, 3, 4}, Config{}, nil)
	d := ComputeDiff(h1, h2)
	found := false
	for _, mc := range d.Memberships {
		if mc.Node == 1 && mc.Level == 1 {
			if mc.Old != 2 || mc.New != 4 {
				t.Fatalf("membership change = %+v", mc)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no level-1 membership change for node 1: %+v", d.Memberships)
	}
	// 2 lost clusterhead status (nobody elects it anymore).
	if !containsInt(d.Rejections[1], 2) {
		t.Fatalf("rejections = %v, want to include 2", d.Rejections[1])
	}
}

func TestDiffElection(t *testing.T) {
	// Initially 1 and 2 isolated; then they link: 2 becomes a head.
	g1 := graphOf(4)
	g2 := graphOf(4, [2]int{1, 2})
	h1 := Build(g1, []int{1, 2}, Config{}, nil)
	h2 := Build(g2, []int{1, 2}, Config{}, nil)
	d := ComputeDiff(h1, h2)
	if !containsInt(d.Elections[1], 2) {
		t.Fatalf("elections = %v", d.Elections)
	}
}

func TestDiffMigrationLinkEvent(t *testing.T) {
	// Two stable clusters {1,5} (head 5) and {2,6} (head 6). A new
	// level-0 edge (1,2) appears between low-ID members, so no election
	// changes (1's closed nbhd max stays 5, 2's stays 6) and the lifted
	// level-1 link (5,6) is a pure cluster-migration event (paper event
	// class i).
	g1 := graphOf(8, [2]int{1, 5}, [2]int{2, 6})
	g2 := graphOf(8, [2]int{1, 5}, [2]int{2, 6}, [2]int{1, 2})
	h1 := Build(g1, []int{1, 2, 5, 6}, Config{}, nil)
	h2 := Build(g2, []int{1, 2, 5, 6}, Config{}, nil)
	d := ComputeDiff(h1, h2)
	ev := d.MigrationLinkEvents[1]
	if len(ev) != 1 || !ev[0].Up || ev[0].Edge != topology.MakeEdgeKey(5, 6) {
		t.Fatalf("migration link events = %v (structural %v)", ev, d.StructuralLinkEvents[1])
	}
	// No level-1 election churn (the new level-1 link does legitimately
	// create a level-2 cluster above, which is a separate event).
	if len(d.Elections[1]) != 0 || len(d.Rejections[1]) != 0 {
		t.Fatalf("unexpected level-1 elections/rejections: %v / %v", d.Elections, d.Rejections)
	}
	if !containsInt(d.Elections[2], 6) {
		t.Fatalf("expected level-2 election of 6, got %v", d.Elections)
	}
	// The reverse diff yields the matching link-down event.
	dRev := ComputeDiff(h2, h1)
	evRev := dRev.MigrationLinkEvents[1]
	if len(evRev) != 1 || evRev[0].Up {
		t.Fatalf("reverse migration events = %v", evRev)
	}
}

func TestDiffStructuralLinkEvent(t *testing.T) {
	// Clusters {1,2} (head 2) and {3,4} (head 4). Edge (1,3) appears:
	// 1's closed-neighborhood max becomes 3, so 3 is *elected* as a new
	// clusterhead and the resulting level-1 link changes are
	// consequences of the election — structural (paper events iii/vii),
	// not cluster migration.
	g1 := graphOf(6, [2]int{1, 2}, [2]int{3, 4})
	g2 := graphOf(6, [2]int{1, 2}, [2]int{3, 4}, [2]int{1, 3})
	h1 := Build(g1, []int{1, 2, 3, 4}, Config{}, nil)
	h2 := Build(g2, []int{1, 2, 3, 4}, Config{}, nil)
	d := ComputeDiff(h1, h2)
	if !containsInt(d.Elections[1], 3) {
		t.Fatalf("elections = %v, want 3 elected", d.Elections)
	}
	if len(d.MigrationLinkEvents[1]) != 0 {
		t.Fatalf("expected no migration link events, got %v", d.MigrationLinkEvents[1])
	}
	if len(d.StructuralLinkEvents[1]) == 0 {
		t.Fatal("expected structural link events from election")
	}
}

func TestDiffStateDeltas(t *testing.T) {
	// Star center gains one elector: state 2 -> 3.
	g1 := graphOf(8, [2]int{7, 1}, [2]int{7, 2})
	g2 := graphOf(8, [2]int{7, 1}, [2]int{7, 2}, [2]int{7, 3})
	h1 := Build(g1, []int{1, 2, 3, 7}, Config{}, nil)
	h2 := Build(g2, []int{1, 2, 3, 7}, Config{}, nil)
	d := ComputeDiff(h1, h2)
	found := false
	for _, sd := range d.StateDeltas {
		if sd.Node == 7 && sd.Level == 0 {
			if sd.Old != 2 || sd.New != 3 {
				t.Fatalf("state delta = %+v", sd)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no state delta for node 7: %+v", d.StateDeltas)
	}
}

// --- StateTracker tests ---

func TestStateTrackerOccupancy(t *testing.T) {
	// Chain 1-2-3: head 2 is in state 1, head 3 in state 1 (elected by
	// 2 only). Observe twice; p_1 (level-1 nodes in state 1) == 1.
	g := graphOf(4, [2]int{1, 2}, [2]int{2, 3})
	h := Build(g, []int{1, 2, 3}, Config{}, nil)
	tr := NewStateTracker()
	tr.Observe(h)
	tr.Observe(h)
	p, n := tr.P1(1)
	if n == 0 || p != 1 {
		t.Fatalf("P1(1) = %v (n=%d), want 1", p, n)
	}
	if tr.Samples() != 2 {
		t.Fatalf("samples = %d", tr.Samples())
	}
}

func TestStateTrackerUnitTransitions(t *testing.T) {
	g1 := graphOf(8, [2]int{7, 1}, [2]int{7, 2})
	g2 := graphOf(8, [2]int{7, 1}, [2]int{7, 2}, [2]int{7, 3})
	h1 := Build(g1, []int{1, 2, 3, 7}, Config{}, nil)
	h2 := Build(g2, []int{1, 2, 3, 7}, Config{}, nil)
	tr := NewStateTracker()
	tr.ObserveDiff(ComputeDiff(h1, h2))
	frac, total := tr.UnitTransitionFraction()
	if total != 1 || frac != 1 {
		t.Fatalf("unit transitions = %v of %d", frac, total)
	}
	hist := tr.DeltaHistogram()
	if hist[1] != 1 {
		t.Fatalf("delta histogram = %v", hist)
	}
}

func TestQDistSumsBelowOne(t *testing.T) {
	// With p in (0,1) the q_j of Eq. (15a) telescope to Π p_{k-i} at
	// j = k-1, so ΣQ <= 1 always.
	pos := randomPositions(250, 550, 13)
	g := topology.BuildUnitDiskBrute(pos, 120)
	h := Build(g, nodesUpTo(250), Config{}, nil)
	tr := NewStateTracker()
	tr.Observe(h)
	for k := 2; k <= h.L(); k++ {
		if q := tr.QSum(k); q < 0 || q > 1+1e-9 {
			t.Fatalf("QSum(%d) = %v out of [0,1]", k, q)
		}
		if q1 := tr.Q1(k); q1 < 0 || q1 > 1 {
			t.Fatalf("Q1(%d) = %v", k, q1)
		}
	}
}

func BenchmarkBuildHierarchy500(b *testing.B) {
	pos := randomPositions(500, 700, 1)
	g := topology.BuildUnitDiskBrute(pos, 100)
	nodes := nodesUpTo(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, nodes, Config{}, nil)
	}
}

func BenchmarkComputeDiff500(b *testing.B) {
	pos := randomPositions(500, 700, 2)
	g1 := topology.BuildUnitDiskBrute(pos, 100)
	// Perturb positions slightly for a realistic diff.
	src := rng.New(3)
	pos2 := make([]geom.Vec, len(pos))
	for i, p := range pos {
		pos2[i] = geom.Vec{X: p.X + src.Range(-5, 5), Y: p.Y + src.Range(-5, 5)}
	}
	g2 := topology.BuildUnitDiskBrute(pos2, 100)
	nodes := nodesUpTo(500)
	h1 := Build(g1, nodes, Config{}, nil)
	h2 := Build(g2, nodes, Config{}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeDiff(h1, h2)
	}
}
