package cluster

import (
	"slices"

	"repro/internal/topology"
)

// Incremental elections. The LCA family is neighborhood-local: a
// node's vote depends only on its closed 1-hop neighborhood, its
// previous-head memory, and (for DebouncedLCA) a per-node grace timer.
// A node is therefore re-elected only when one of those inputs could
// have changed — the dirty set D_k:
//
//   - new level-k nodes (no stored election);
//   - endpoints of this level's link events (neighborhood changed; a
//     departed neighbor's edges all go down, so departures are covered);
//   - nodes whose logical ID changed (hysteresis is keyed by logical);
//   - previous members and neighbors of a head whose logical moved to
//     a different carrier or died (their prevHead translation changed
//     without any local event — the relabel corner);
//   - carriers of logicals holding a running grace timer (the timer
//     can expire with no topology change at all).
//
// Every other node's stored election is provably what the oracle would
// recompute, so Head/Member/State/Members are patched only around the
// dirty nodes, and the level-(k+1) input delta (node births/deaths,
// lifted link events via crossing-edge witness counts) is emitted for
// the next level.

// electPatch runs phases 4-8 of the per-level patch at non-terminal,
// non-forced level k: dirty-set seeding, elections, membership
// application, dirty chaining into level k+1, and the lifted-edge
// delta. Returns false when a structural guard trips.
func (m *IncrementalMaintainer) electPatch(in *MaintainInput, k int, lv *incLevel, blvl, plvl *Level, log []touchLevel) bool {
	st := &m.inc
	baseIDs := st.baseIDs
	tl := &log[k]
	lvUp := st.lvls[k+1]
	events := in.Events
	if k >= 1 {
		events = lv.ev
	}

	// Phase 4: the dirty election set D_k.
	dirty := st.dirtyBuf[:0]
	add := func(u int) {
		if !lv.dirtySet[u] && containsSortedInt(blvl.Nodes, u) {
			lv.dirtySet[u] = true
			dirty = append(dirty, u)
		}
	}
	for _, u := range lv.adds {
		add(u)
	}
	for _, e := range events {
		a, b := e.Edge.Nodes()
		add(a)
		add(b)
	}
	for _, u := range lv.logChanged {
		add(u)
	}
	if !m.elMemoryless && k >= 1 {
		// Relabel corner: a released logical now carried by a different
		// node (or by none) changes the prevHead translation of every
		// node that elected its old carrier, eventless. Those electors
		// are among the old carrier's previous members and neighbors —
		// plus grace-held electors, which the pending scan below covers.
		for _, q := range lv.released {
			ph := lv.relLog[q]
			if w, ok := lv.carrier[q]; ok && w == ph {
				continue
			}
			if ms, ok := plvl.Members[ph]; ok {
				for _, v := range ms {
					add(v)
				}
			}
			for _, v := range plvl.Graph.Neighbors(ph) {
				add(v)
			}
		}
	}
	if m.elPending != nil {
		st.u64Buf = m.elPending.AppendPending(k, st.u64Buf[:0])
		for _, lu := range st.u64Buf {
			if k == 0 {
				add(int(lu))
			} else if w, ok := lv.carrier[lu]; ok {
				add(w)
			}
		}
	}
	slices.Sort(dirty)
	st.dirtyBuf = dirty

	// Phase 5: re-elect the dirty nodes only.
	prevHead := m.buildPatchPrevHead(k, lv, blvl, in)
	heads := st.headBuf[:0]
	if m.elStateful != nil {
		logicalOf := func(u int) uint64 {
			if k == 0 {
				return uint64(u)
			}
			if l, ok := baseIDs.Logical(k, u); ok {
				return l
			}
			return uint64(u)
		}
		heads = m.elStateful.ElectTracked(heads, &ElectCtx{
			Time: in.Now, Level: k, Nodes: dirty, Graph: blvl.Graph,
			PrevHead: prevHead, LogicalOf: logicalOf,
		})
	} else {
		heads = m.cfgD.Elector.Elect(heads, dirty, blvl.Graph, prevHead)
	}
	st.headBuf = heads

	// Phase 6: apply. First the Head rewrites and the elector-count
	// deltas; candidates are the clusters whose state or existence may
	// change.
	if st.deltaState == nil {
		st.deltaState = map[int]int{}
		st.candSet = map[int]bool{}
		st.aliveOv = map[int]bool{}
		st.uSet = map[int]bool{}
	}
	clear(st.deltaState)
	clear(st.candSet)
	clear(st.aliveOv)
	clear(st.uSet)
	cands := st.candList[:0]
	cand := func(c int) {
		if !st.candSet[c] {
			st.candSet[c] = true
			cands = append(cands, c)
		}
	}
	uList := st.uList[:0]
	uAdd := func(u int) {
		if !st.uSet[u] {
			st.uSet[u] = true
			uList = append(uList, u)
		}
	}
	for i, u := range dirty {
		nh := heads[i]
		oh, had := blvl.Head[u]
		if had && oh == nh {
			continue
		}
		blvl.Head[u] = nh
		tl.nodes = append(tl.nodes, u)
		uAdd(u)
		if had {
			if oh != u {
				st.deltaState[oh]--
			}
			cand(oh)
		}
		if nh != u {
			st.deltaState[nh]++
		}
		cand(nh)
	}
	for _, u := range lv.rems {
		oh, had := blvl.Head[u]
		if !had {
			continue
		}
		delete(blvl.Head, u)
		tl.nodes = append(tl.nodes, u)
		uAdd(u)
		if oh != u {
			st.deltaState[oh]--
		}
		cand(oh)
	}

	// Cluster liveness, births, and state rewrites. A cluster lives
	// iff it has a non-self elector (state > 0) or elects itself.
	deaths := st.deathBuf[:0]
	for _, c := range cands {
		_, before := blvl.Members[c]
		oldState := blvl.State[c]
		after := oldState+st.deltaState[c] > 0
		if !after && containsSortedInt(blvl.Nodes, c) {
			if hd, ok := blvl.Head[c]; ok && hd == c {
				after = true
			}
		}
		st.aliveOv[c] = after
		switch {
		case after && !before: // birth
			blvl.Members[c] = m.arena.getInts()
			blvl.State[c] = oldState + st.deltaState[c]
			tl.clusters = append(tl.clusters, c)
			lvUp.adds = append(lvUp.adds, c)
			uAdd(c)
		case after:
			if ns := oldState + st.deltaState[c]; ns != oldState {
				if ns < 0 {
					return false // elector count corrupted
				}
				blvl.State[c] = ns
				tl.clusters = append(tl.clusters, c)
			}
		case before: // death (cleanup deferred until members moved out)
			deaths = append(deaths, c)
			uAdd(c)
		}
	}
	st.deathBuf = deaths

	// Membership moves for every node whose election or head status
	// changed, and the departed nodes.
	slices.Sort(uList)
	st.uList = uList
	moves := st.moveBuf[:0]
	for _, u := range uList {
		oldMem, hadOld := blvl.Member[u]
		newMem, hasNew := -1, false
		if containsSortedInt(blvl.Nodes, u) {
			headNow := false
			if ov, isCand := st.aliveOv[u]; isCand {
				headNow = ov
			} else {
				_, headNow = blvl.Members[u]
			}
			if headNow {
				newMem = u
			} else {
				newMem = blvl.Head[u]
			}
			hasNew = true
		}
		if hadOld == hasNew && (!hasNew || oldMem == newMem) {
			continue
		}
		if hadOld {
			blvl.Members[oldMem] = removeSortedInt(blvl.Members[oldMem], u)
			tl.clusters = append(tl.clusters, oldMem)
		}
		if hasNew {
			blvl.Member[u] = newMem
			blvl.Members[newMem] = insertSortedInt(blvl.Members[newMem], u)
			tl.clusters = append(tl.clusters, newMem)
		} else {
			delete(blvl.Member, u)
		}
		tl.nodes = append(tl.nodes, u)
		from, to := -1, -1
		if hadOld {
			from = oldMem
		}
		if hasNew {
			to = newMem
		}
		moves = append(moves, moveRec{u: u, from: from, to: to})
	}
	for _, c := range deaths {
		s := blvl.Members[c]
		if len(s) != 0 {
			return false // a dead cluster's members must all have moved
		}
		m.arena.putInts(s)
		delete(blvl.Members, c)
		delete(blvl.State, c)
		tl.clusters = append(tl.clusters, c)
		lvUp.rems = append(lvUp.rems, c)
	}
	slices.Sort(lvUp.adds)
	slices.Sort(lvUp.rems)
	if len(blvl.Members) == len(blvl.Nodes) {
		return false // no compression: the level would become terminal
	}

	// Phase 7: member-key dirtiness for level k+1 — direct seeds from
	// the moves, symmetric cross-marks (an alive changed cluster is
	// dirty in both snapshots), and upward chaining of this level's
	// dirty clusters through their parents.
	ddP := func(c int) {
		if !lvUp.ddPrev[c] {
			lvUp.ddPrev[c] = true
			lvUp.ddPrevL = append(lvUp.ddPrevL, c)
		}
	}
	ddN := func(c int) {
		if !lvUp.ddNext[c] {
			lvUp.ddNext[c] = true
			lvUp.ddNextL = append(lvUp.ddNextL, c)
		}
	}
	for _, mv := range moves {
		if mv.from >= 0 {
			ddP(mv.from)
			if _, alive := blvl.Members[mv.from]; alive {
				ddN(mv.from)
			}
		}
		if mv.to >= 0 {
			ddN(mv.to)
			if _, existed := plvl.Members[mv.to]; existed {
				ddP(mv.to)
			}
		}
	}
	for _, c := range lv.ddNextL {
		if pb, ok := blvl.Member[c]; ok {
			ddN(pb)
			if _, existed := plvl.Members[pb]; existed {
				ddP(pb)
			}
		}
	}
	for _, pc := range lv.ddPrevL {
		if pp, ok := plvl.Member[pc]; ok {
			ddP(pp)
			if _, alive := blvl.Members[pp]; alive {
				ddN(pp)
			}
		}
	}

	// Phase 8: the lifted-edge delta. An underlying edge's contribution
	// to the level-(k+1) crossing-pair witness counts changes only if
	// the edge itself flipped or an endpoint changed membership.
	ec := st.edgeCand[:0]
	for _, e := range events {
		ec = append(ec, e.Edge)
	}
	for _, mv := range moves {
		for _, v := range plvl.Graph.Neighbors(mv.u) {
			ec = append(ec, topology.MakeEdgeKey(mv.u, v))
		}
		for _, v := range blvl.Graph.Neighbors(mv.u) {
			ec = append(ec, topology.MakeEdgeKey(mv.u, v))
		}
	}
	slices.Sort(ec)
	ec = dedupEdgesInPlace(ec)
	pairs := st.pairCand[:0]
	for _, e := range ec {
		a, b := e.Nodes()
		if pma, ok := plvl.Member[a]; ok {
			if pmb, ok2 := plvl.Member[b]; ok2 && pma != pmb && plvl.Graph.HasEdge(a, b) {
				pk := topology.MakeEdgeKey(pma, pmb)
				lvUp.witness[pk]--
				pairs = append(pairs, pk)
			}
		}
		if bma, ok := blvl.Member[a]; ok {
			if bmb, ok2 := blvl.Member[b]; ok2 && bma != bmb && blvl.Graph.HasEdge(a, b) {
				pk := topology.MakeEdgeKey(bma, bmb)
				lvUp.witness[pk]++
				pairs = append(pairs, pk)
			}
		}
	}
	slices.Sort(pairs)
	pairs = dedupEdgesInPlace(pairs)
	downs, ups := st.downBuf[:0], st.upBuf[:0]
	for _, pk := range pairs {
		w := lvUp.witness[pk]
		if w < 0 {
			return false // witness count corrupted
		}
		present := w > 0
		if !present {
			delete(lvUp.witness, pk)
		}
		switch was := containsSortedEdge(lvUp.edges, pk); {
		case was && !present:
			downs = append(downs, pk)
		case !was && present:
			ups = append(ups, pk)
		}
	}
	for _, e := range downs {
		lvUp.ev = append(lvUp.ev, topology.LinkEvent{Edge: e, Up: false})
	}
	for _, e := range ups {
		lvUp.ev = append(lvUp.ev, topology.LinkEvent{Edge: e, Up: true})
	}
	st.candList, st.moveBuf = cands, moves
	st.edgeCand, st.pairCand, st.downBuf, st.upBuf = ec, pairs, downs, ups
	return true
}

// buildPatchPrevHead is the patch engine's analogue of buildPrevHead:
// for a level-k node, the current physical carrier of the head it
// elected in the previous snapshot, translated through this tick's
// identity match (including logicals just re-inherited from a
// different carrier).
func (m *IncrementalMaintainer) buildPatchPrevHead(k int, lv *incLevel, blvl *Level, in *MaintainInput) func(int) int {
	prevH, prevIDs := in.PrevH, in.PrevIDs
	baseIDs := m.inc.baseIDs
	if k == 0 {
		plvl := prevH.Level(0)
		if plvl == nil || plvl.Head == nil {
			return func(int) int { return -1 }
		}
		heads := plvl.Head
		cur := blvl.Nodes
		return func(u int) int {
			if hd, ok := heads[u]; ok && containsSortedInt(cur, hd) {
				return hd
			}
			return -1
		}
	}
	plvl := prevH.Level(k)
	if plvl == nil || plvl.Head == nil {
		return func(int) int { return -1 }
	}
	return func(u int) int {
		lu, ok := baseIDs.Logical(k, u)
		if !ok {
			return -1
		}
		// Previous carrier of u's logical: u itself, or the head the
		// logical was just released from.
		pu := -1
		if pl, ok := prevIDs.Logical(k, u); ok && pl == lu {
			pu = u
		} else if ph, ok := lv.relLog[lu]; ok {
			pu = ph
		}
		if pu < 0 {
			return -1
		}
		pw, ok := plvl.Head[pu]
		if !ok {
			return -1
		}
		lw, ok := prevIDs.Logical(k, pw)
		if !ok {
			return -1
		}
		if w, ok := lv.carrier[lw]; ok {
			return w
		}
		return -1
	}
}

// dedupEdgesInPlace removes adjacent duplicates from sorted s.
func dedupEdgesInPlace(s []topology.EdgeKey) []topology.EdgeKey {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}
