package cluster

// ALCA state-occupancy tracking (paper Fig. 3 and §5.3.2).
//
// The ALCA state of a level-k node is the number of its level-(k-1)
// neighbors currently electing it. The paper's recursive-rejection
// analysis depends on two measurable quantities:
//
//   - p_j: the probability that a level-j node is in state 1 (elected
//     by exactly one neighbor) — the "critical" state from which a
//     single migration demotes it;
//   - q_1 computed from the p_j via Eq. (15a), which Eq. (22) requires
//     to stay bounded away from 0 as |V| grows. The paper defers
//     measuring q_1 to future work; StateTracker performs it.

// StateTracker accumulates time-averaged ALCA state statistics across
// hierarchy snapshots.
type StateTracker struct {
	samples int
	// occ[m][s] counts observations of level-m nodes (m >= 1) in state s.
	occ map[int]map[int]int
	// deltaHist[d] counts state changes of magnitude d between
	// consecutive snapshots among persistent heads.
	deltaHist map[int]int
	// transitions counts all state changes; unitTransitions those with
	// |Δ| == 1.
	transitions     int
	unitTransitions int
}

// NewStateTracker returns an empty tracker.
func NewStateTracker() *StateTracker {
	return &StateTracker{
		occ:       map[int]map[int]int{},
		deltaHist: map[int]int{},
	}
}

// Observe accumulates the state occupancy of one hierarchy snapshot.
func (t *StateTracker) Observe(h *Hierarchy) {
	t.samples++
	for k := 0; k+1 < len(h.Levels); k++ {
		lvl := h.Levels[k]
		if lvl.State == nil {
			continue
		}
		m := k + 1 // node level whose states these are
		dist := t.occ[m]
		if dist == nil {
			dist = map[int]int{}
			t.occ[m] = dist
		}
		for _, id := range keysSorted(lvl.State) {
			dist[lvl.State[id]]++
		}
	}
}

// ObserveDiff accumulates the state-transition magnitudes of one diff.
func (t *StateTracker) ObserveDiff(d *Diff) {
	for _, sd := range d.StateDeltas {
		delta := sd.New - sd.Old
		if delta < 0 {
			delta = -delta
		}
		t.deltaHist[delta]++
		t.transitions++
		if delta == 1 {
			t.unitTransitions++
		}
	}
}

// Samples reports the number of snapshots observed.
func (t *StateTracker) Samples() int { return t.samples }

// Levels returns the node levels for which occupancy data exists,
// ascending.
func (t *StateTracker) Levels() []int {
	var out []int
	for m := 1; ; m++ {
		if _, ok := t.occ[m]; !ok {
			break
		}
		out = append(out, m)
	}
	return out
}

// P1 returns the time-averaged probability that a level-m node is in
// ALCA state 1, and the number of observations it is based on.
func (t *StateTracker) P1(m int) (p float64, n int) {
	return t.pState(m, 1)
}

// PState returns the time-averaged probability that a level-m node is
// in the given state.
func (t *StateTracker) PState(m, state int) (p float64, n int) {
	return t.pState(m, state)
}

func (t *StateTracker) pState(m, state int) (float64, int) {
	dist := t.occ[m]
	total := 0
	for _, s := range keysSorted(dist) {
		total += dist[s]
	}
	if total == 0 {
		return 0, 0
	}
	return float64(dist[state]) / float64(total), total
}

// MeanState returns the time-averaged ALCA state of level-m nodes.
func (t *StateTracker) MeanState(m int) float64 {
	dist := t.occ[m]
	total, sum := 0, 0
	for _, s := range keysSorted(dist) {
		total += dist[s]
		sum += s * dist[s]
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

// QDist evaluates Eq. (15a) for a level-k cluster (k >= 2) from the
// measured p_j: q_j for j = 1..k-1, where
//
//	q_j = (1 - p_{k-j-1}) · Π_{i=1..j} p_{k-i}   for j < k-1
//	q_j =                  Π_{i=1..j} p_{k-i}   for j = k-1
//
// Levels with no observations contribute p = 0.
func (t *StateTracker) QDist(k int) []float64 {
	if k < 2 {
		return nil
	}
	p := func(j int) float64 {
		v, _ := t.P1(j)
		return v
	}
	out := make([]float64, k-1)
	prod := 1.0
	for j := 1; j <= k-1; j++ {
		prod *= p(k - j)
		if j < k-1 {
			out[j-1] = (1 - p(k-j-1)) * prod
		} else {
			out[j-1] = prod
		}
	}
	return out
}

// Q1 returns q_1 for a level-k cluster per Eq. (15a): the probability
// that a recursive rejection chain starting below a critical level-k
// node stops after exactly one level. Eq. (22) requires it to remain
// bounded away from zero.
func (t *StateTracker) Q1(k int) float64 {
	q := t.QDist(k)
	if len(q) == 0 {
		return 0
	}
	return q[0]
}

// QSum returns Q = Σ q_j (Eq. 15b).
func (t *StateTracker) QSum(k int) float64 {
	sum := 0.0
	for _, q := range t.QDist(k) {
		sum += q
	}
	return sum
}

// UnitTransitionFraction reports the fraction of observed state
// changes with |Δ| == 1, validating the Fig. 3 adjacent-transition
// premise, plus the total number of transitions observed.
func (t *StateTracker) UnitTransitionFraction() (frac float64, total int) {
	if t.transitions == 0 {
		return 1, 0
	}
	return float64(t.unitTransitions) / float64(t.transitions), t.transitions
}

// DeltaHistogram returns a copy of the |Δstate| histogram.
func (t *StateTracker) DeltaHistogram() map[int]int {
	out := make(map[int]int, len(t.deltaHist))
	for _, k := range keysSorted(t.deltaHist) {
		out[k] = t.deltaHist[k]
	}
	return out
}

// OccupancyHistogram returns a copy of the state histogram for
// level-m nodes.
func (t *StateTracker) OccupancyHistogram(m int) map[int]int {
	out := make(map[int]int, len(t.occ[m]))
	for _, k := range keysSorted(t.occ[m]) {
		out[k] = t.occ[m][k]
	}
	return out
}
