package cluster

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/topology"
)

// evolveLayouts yields a sequence of perturbed unit-disk graphs.
func evolveLayouts(n, steps int, seed uint64) []*topology.Graph {
	src := rng.New(seed)
	d := geom.Disc{R: 430}
	pos := make([]geom.Vec, n)
	for i := range pos {
		pos[i] = d.Sample(src)
	}
	var out []*topology.Graph
	for s := 0; s < steps; s++ {
		out = append(out, topology.BuildUnitDiskBrute(pos, 100))
		for i := range pos {
			pos[i] = d.Clamp(pos[i].Add(geom.Vec{X: src.Range(-12, 12), Y: src.Range(-12, 12)}))
		}
	}
	return out
}

// TestTrackedBuildMatchesPlainBuildMemoryless: with a memoryless
// elector the interleaved identity matching cannot influence election,
// so BuildWithIdentities must produce the identical physical hierarchy
// to Build at every step.
func TestTrackedBuildMatchesPlainBuildMemoryless(t *testing.T) {
	const n = 130
	graphs := evolveLayouts(n, 15, 31)
	nodes := nodesUpTo(n)
	tr := NewIdentityTracker()
	var hT, hP *Hierarchy
	var ids *Identities
	for step, g := range graphs {
		if hT == nil {
			hT, ids = BuildWithIdentities(g, nodes, Config{}, nil, nil, tr, float64(step))
		} else {
			hT, ids = BuildWithIdentities(g, nodes, Config{}, hT, ids, tr, float64(step))
		}
		hP = Build(g, nodes, Config{}, hP)
		if hT.L() != hP.L() {
			t.Fatalf("step %d: levels %d vs %d", step, hT.L(), hP.L())
		}
		for k := 0; k <= hT.L(); k++ {
			a, b := hT.LevelNodes(k), hP.LevelNodes(k)
			if len(a) != len(b) {
				t.Fatalf("step %d level %d: %d vs %d nodes", step, k, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("step %d level %d: node lists differ", step, k)
				}
			}
		}
		if err := hT.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestTrackedStickySurvivesRelabel: the core purpose of interleaved
// tracking — a sticky affiliation must survive when the elected head's
// cluster relabels.
func TestTrackedStickySurvivesRelabel(t *testing.T) {
	tr := NewIdentityTracker()
	cfg := Config{Elector: StickyLCA{}}
	// Level-0: cluster A = {1,2,5} head 5; cluster B = {3,6} head 6;
	// A-B adjacent via 5-6. At level 1, 5 elects 6 (sticky start).
	g1 := graphOf(12, [2]int{1, 5}, [2]int{2, 5}, [2]int{3, 6}, [2]int{5, 6})
	h1, ids1 := BuildWithIdentities(g1, []int{1, 2, 3, 5, 6}, cfg, nil, nil, tr, 0)
	if h1.L() < 2 {
		t.Fatalf("L = %d", h1.L())
	}
	lvl1Head := h1.Level(1).Head
	if lvl1Head[5] != 6 {
		t.Fatalf("head(5)@1 = %d, want 6", lvl1Head[5])
	}
	prevLogical, ok := ids1.Logical(1, lvl1Head[5])
	if !ok {
		t.Fatal("elected head has no identity")
	}
	// Node 7 arrives near cluster B, perturbing local elections. Node
	// 5's level-1 affiliation must stay with the same *logical* cluster
	// (whatever physical node carries it now), not re-elect by raw max.
	g2 := graphOf(12, [2]int{1, 5}, [2]int{2, 5}, [2]int{3, 6}, [2]int{5, 6},
		[2]int{7, 6}, [2]int{7, 3}, [2]int{7, 5})
	h2, ids2 := BuildWithIdentities(g2, []int{1, 2, 3, 5, 6, 7}, cfg, h1, ids1, tr, 1)
	if h2.L() >= 2 {
		newHead := h2.Level(1).Head[5]
		newLogical, ok := ids2.Logical(1, newHead)
		if !ok || newLogical != prevLogical {
			t.Fatalf("sticky affiliation lost: logical %d -> %d (head %d)",
				prevLogical, newLogical, newHead)
		}
	}
}

func TestTrackedBuildMaxLevels(t *testing.T) {
	const n = 200
	graphs := evolveLayouts(n, 2, 33)
	tr := NewIdentityTracker()
	h, ids := BuildWithIdentities(graphs[0], nodesUpTo(n), Config{MaxLevels: 2}, nil, nil, tr, 0)
	if h.L() > 2 {
		t.Fatalf("L = %d exceeds cap", h.L())
	}
	if ids.Levels() > 2 {
		t.Fatalf("ids beyond cap: %d", ids.Levels())
	}
}

func TestTrackedBuildForcedTopWithDebounce(t *testing.T) {
	// The full stabilization stack must hold its invariants across an
	// evolving topology.
	const n = 180
	graphs := evolveLayouts(n, 20, 35)
	nodes := nodesUpTo(n)
	tr := NewIdentityTracker()
	cfg := Config{Elector: NewDebouncedLCA(8), Reach: -1, ForceTopAt: 10}
	var h *Hierarchy
	var ids *Identities
	for step, g := range graphs {
		giant := topology.GiantComponent(g, nodes)
		h, ids = BuildWithIdentities(g, giant, cfg, h, ids, tr, float64(step))
		if err := h.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if h.ForcedTop {
			top := h.LevelNodes(h.L())
			if len(top) != 1 {
				t.Fatalf("step %d: top size %d", step, len(top))
			}
		}
		// Identity maps must cover every cluster.
		for k := 1; k <= h.L(); k++ {
			for _, head := range h.LevelNodes(k) {
				if _, ok := ids.Logical(k, head); !ok {
					t.Fatalf("step %d: level-%d cluster %d unidentified", step, k, head)
				}
			}
		}
	}
}

func TestDebouncedNameAndUntrackedElect(t *testing.T) {
	d := NewDebouncedLCA(5)
	if d.Name() == "" {
		t.Fatal("unnamed elector")
	}
	// The untracked Elect path (static builds) behaves like sticky.
	g := graphOf(6, [2]int{1, 3})
	head := d.Elect(nil, []int{1, 3}, g, func(int) int { return -1 })
	if head[0] != 3 || head[1] != 3 {
		t.Fatalf("untracked elect = %v", head)
	}
}
