package cluster

import "slices"

// Incremental identity matching. The oracle's matchLevel greedily
// matches every level-k cluster to the previous snapshot by maximal
// level-0 descendant overlap. Under the patch engine only the
// member-dirty clusters (ddNext) can gain or lose a logical identity:
// a clean cluster's descendant set is byte-identical to its previous
// self (member-key dirtiness chains upward, so clean implies the whole
// subtree is unchanged), which makes its (own-logical, itself) pair an
// unbeatable exclusive singleton in the global greedy — no dirty
// cluster can produce a counted pair against a clean cluster's
// logical, in either direction. The greedy restricted to the dirty
// clusters and the released logicals (those of member-dirty or dead
// previous clusters) therefore reproduces the global assignment, and
// the fresh-ID allocation order (ascending over unmatched new heads)
// is preserved because the unmatched set is contained in the sorted
// dirty list. The proof obligations are guarded at runtime: a counted
// pair naming a non-released logical aborts the fast path.

// matchPatch re-matches the member-dirty level-k clusters against the
// released previous logicals, applies the resulting identity updates
// to baseIDs and the carrier map, records changed logicals for the
// election dirty set, and feeds the LM-facing dirty-cluster set.
func (m *IncrementalMaintainer) matchPatch(k int, lv *incLevel, tl *touchLevel, in *MaintainInput) bool {
	st := &m.inc
	prevIDs := in.PrevIDs
	baseIDs := st.baseIDs
	if k > len(baseIDs.byLevel) {
		return false
	}
	idm := baseIDs.byLevel[k-1]

	slices.Sort(lv.ddNextL)
	slices.Sort(lv.ddPrevL)
	dirtyNew := lv.ddNextL

	// Released logicals: those of previous clusters whose member keys
	// changed or that died. Everything else keeps its identity.
	for _, pc := range lv.ddPrevL {
		q, ok := prevIDs.Logical(k, pc)
		if !ok {
			return false // every previous cluster carries a logical
		}
		lv.relLog[q] = pc
		lv.released = append(lv.released, q)
	}
	slices.Sort(lv.released)

	// Dead clusters first: their identity rows disappear.
	for _, pc := range lv.rems {
		if _, ok := idm[pc]; ok {
			delete(idm, pc)
			tl.ids = append(tl.ids, pc)
		}
		if q, ok := prevIDs.Logical(k, pc); ok {
			if w, ok2 := lv.carrier[q]; ok2 && w == pc {
				delete(lv.carrier, q)
			}
		}
	}

	if len(dirtyNew) > 0 {
		if !m.assignLogicals(k, lv, dirtyNew, in) {
			return false
		}
		for _, h := range dirtyNew {
			newq, ok := st.assign[h]
			if !ok {
				return false
			}
			oldq, had := idm[h]
			if !had || oldq != newq {
				idm[h] = newq
				tl.ids = append(tl.ids, h)
				if had {
					lv.logChanged = append(lv.logChanged, h)
					if w, ok := lv.carrier[oldq]; ok && w == h {
						delete(lv.carrier, oldq)
					}
				}
			}
			lv.carrier[newq] = h
		}
	}

	// LM-facing dirty clusters: the previous and new logicals of every
	// member-dirty cluster, at this level (ancestor propagation is the
	// chaining that filled ddPrev/ddNext level by level).
	for _, pc := range lv.ddPrevL {
		if q, ok := prevIDs.Logical(k, pc); ok {
			m.dirty.mark(k, q)
		}
	}
	for _, h := range dirtyNew {
		if q, ok := baseIDs.Logical(k, h); ok {
			m.dirty.mark(k, q)
		}
	}
	return true
}

// assignLogicals fills st.assign with the logical ID of every cluster
// in the sorted dirty list M, reproducing the oracle's greedy.
func (m *IncrementalMaintainer) assignLogicals(k int, lv *incLevel, M []int, in *MaintainInput) bool {
	st := &m.inc
	prevIDs := in.PrevIDs
	if st.assign == nil {
		st.assign = map[int]uint64{}
	} else {
		clear(st.assign)
	}

	// Fast path — the steady-state shape at upper levels: exactly one
	// dirty cluster, re-inheriting (or not) its own released logical.
	// One previous-descendant witness decides the whole greedy, so the
	// walk early-exits after the first leaf that stayed.
	if len(M) == 1 && len(lv.released) == 1 {
		h := M[0]
		q := lv.released[0]
		if oldq, ok := prevIDs.Logical(k, h); ok && oldq == q {
			if m.hasPrevWitness(k, h, q, in) {
				st.assign[h] = q
			} else {
				st.assign[h] = m.tr.alloc(h)
			}
			return true
		}
	}

	counts, pairs, usedPrev := m.arena.matchScratch()
	for _, h := range M {
		m.countOverlap(k, h, in, counts)
	}
	for p := range counts {
		pairs = append(pairs, p)
	}
	slices.SortFunc(pairs, func(x, y matchPair) int {
		cx, cy := counts[x], counts[y]
		switch {
		case cx != cy:
			if cx > cy {
				return -1
			}
			return 1
		case x.prev != y.prev:
			if x.prev < y.prev {
				return -1
			}
			return 1
		default:
			return x.next - y.next
		}
	})
	m.arena.pairs = pairs
	for _, p := range pairs {
		if _, rel := lv.relLog[p.prev]; !rel {
			return false // proof guard: a clean cluster's logical surfaced
		}
		if usedPrev[p.prev] {
			continue
		}
		if _, taken := st.assign[p.next]; taken {
			continue
		}
		st.assign[p.next] = p.prev
		usedPrev[p.prev] = true
	}
	for _, h := range M {
		if _, ok := st.assign[h]; !ok {
			st.assign[h] = m.tr.alloc(h)
		}
	}
	return true
}

// countOverlap walks the current level-0 descendants of the level-k
// cluster h (through the patched base hierarchy) and counts, for each,
// the logical of its previous level-k ancestor.
func (m *IncrementalMaintainer) countOverlap(k, h int, in *MaintainInput, counts map[matchPair]int) {
	st := &m.inc
	base := st.base
	nodes, lvls := st.descBuf[:0], st.descLvl[:0]
	nodes = append(nodes, h)
	lvls = append(lvls, k)
	for len(nodes) > 0 {
		u := nodes[len(nodes)-1]
		j := lvls[len(lvls)-1]
		nodes, lvls = nodes[:len(nodes)-1], lvls[:len(lvls)-1]
		if j == 0 {
			if q, ok := prevLogicalAt(in, u, k); ok {
				counts[matchPair{prev: q, next: h}]++
			}
			continue
		}
		for _, c := range base.Levels[j-1].Members[u] {
			nodes = append(nodes, c)
			lvls = append(lvls, j-1)
		}
	}
	st.descBuf, st.descLvl = nodes, lvls
}

// hasPrevWitness reports whether any current level-0 descendant of the
// level-k cluster h had previous level-k logical q, early-exiting at
// the first witness.
func (m *IncrementalMaintainer) hasPrevWitness(k, h int, q uint64, in *MaintainInput) bool {
	st := &m.inc
	base := st.base
	nodes, lvls := st.descBuf[:0], st.descLvl[:0]
	nodes = append(nodes, h)
	lvls = append(lvls, k)
	found := false
	for len(nodes) > 0 && !found {
		u := nodes[len(nodes)-1]
		j := lvls[len(lvls)-1]
		nodes, lvls = nodes[:len(nodes)-1], lvls[:len(lvls)-1]
		if j == 0 {
			if ql, ok := prevLogicalAt(in, u, k); ok && ql == q {
				found = true
			}
			continue
		}
		for _, c := range base.Levels[j-1].Members[u] {
			nodes = append(nodes, c)
			lvls = append(lvls, j-1)
		}
	}
	st.descBuf, st.descLvl = nodes, lvls
	return found
}

// prevLogicalAt returns the logical ID of level-0 node v's level-k
// cluster in the previous snapshot.
func prevLogicalAt(in *MaintainInput, v, k int) (uint64, bool) {
	cur := v
	for j := 0; j < k; j++ {
		nxt, ok := in.PrevH.Levels[j].Member[cur]
		if !ok {
			return 0, false
		}
		cur = nxt
	}
	return in.PrevIDs.Logical(k, cur)
}
