package cluster

import "repro/internal/topology"

// patchAll advances base from the t-1 snapshot to t, level by level,
// mirroring the oracle's per-level order exactly: node set and level
// graph first, then identity matching (k >= 1), then the termination
// checks, then elections, membership application, dirty-set chaining
// and the lifted-edge delta for the level above. Returns false when
// the hierarchy's shape would change (depth, forced-top transition) or
// an internal consistency guard trips; the caller falls back.
func (m *IncrementalMaintainer) patchAll(in *MaintainInput) bool {
	st := &m.inc
	base := st.base
	prevH := in.PrevH
	L := prevH.L()
	log := st.touchLog(L)
	idSpace := in.G0.IDSpace()
	m.dirty.reset(L)

	// Reset per-tick scratch for every level up front: level k's
	// processing seeds level k+1's ev/adds/rems.
	for k := 0; k <= L; k++ {
		lv := st.lvls[k]
		lv.ev = lv.ev[:0]
		lv.adds, lv.rems = lv.adds[:0], lv.rems[:0]
		clear(lv.ddPrev)
		clear(lv.ddNext)
		lv.ddPrevL, lv.ddNextL = lv.ddPrevL[:0], lv.ddNextL[:0]
		lv.logChanged = lv.logChanged[:0]
		clear(lv.relLog)
		lv.released = lv.released[:0]
		clear(lv.dirtySet)
	}

	for k := 0; k <= L; k++ {
		lv := st.lvls[k]
		blvl, plvl := base.Levels[k], prevH.Levels[k]

		// Node set and level graph.
		if k == 0 {
			blvl.Nodes = append(blvl.Nodes[:0], in.Nodes...)
			blvl.Graph = in.G0
			lv.adds, lv.rems = diffSortedInto(plvl.Nodes, in.Nodes, lv.adds, lv.rems)
		} else {
			blvl.Nodes = mergeNodesInto(blvl.Nodes[:0], plvl.Nodes, lv.adds, lv.rems)
			st.applyEdgeDelta(lv)
			g := blvl.Graph
			if g == nil {
				g = m.arena.getGraph(idSpace)
			}
			blvl.Graph = topology.BuildFromSortedEdgesInto(g, idSpace, lv.edges)
		}

		// Identity matching for the freshly formed level-k clusters
		// (before the termination checks, like the oracle).
		if k >= 1 {
			if !m.matchPatch(k, lv, &log[k], in) {
				return false
			}
		}

		n := len(blvl.Nodes)
		if k == L && !prevH.ForcedTop {
			// The previous snapshot terminated here; the new one must
			// terminate the same way or the depth changes.
			if n <= 1 || k >= m.cfgD.MaxLevels {
				break
			}
			if k == 0 {
				// A connected 2+-node giant always compresses under
				// closed-neighborhood argmax, so the hierarchy would
				// deepen.
				return false
			}
			if m.cfgD.ForceTopAt > 0 && n <= m.cfgD.ForceTopAt {
				return false // would now close with a forced top
			}
			if len(lv.edges) > 0 {
				return false // the level would compress and deepen
			}
			// Still an edgeless non-compressing terminal. The oracle's
			// elections here are pure argmax self-elections (the
			// previous terminal carries no election data, so every
			// prevHead is -1) whose results are dropped and whose only
			// elector-state effects are deletes of keys that cannot
			// exist — a no-op, safely skipped.
			break
		}

		// Non-terminal level (or the forced election level): it must
		// keep electing, with the same forced/unforced shape.
		if n <= 1 || k >= m.cfgD.MaxLevels {
			return false // would terminate early; depth shrinks
		}
		trig := m.cfgD.ForceTopAt > 0 && k >= 1 && n <= m.cfgD.ForceTopAt
		forcedHere := prevH.ForcedTop && k == L-1
		if trig != forcedHere {
			return false // forced-top boundary crossed
		}
		if forcedHere {
			if !m.patchForcedTop(in, lv, blvl, log) {
				return false
			}
			break
		}
		if !m.electPatch(in, k, lv, blvl, plvl, log) {
			return false
		}
	}
	return true
}

// applyEdgeDelta advances lv.edges (sorted) by lv.ev (downs then ups,
// each ascending) in one merge pass, recycling the merge buffer's
// backing array with the old edge list's.
func (st *incState) applyEdgeDelta(lv *incLevel) {
	if len(lv.ev) == 0 {
		return
	}
	nDown := 0
	for nDown < len(lv.ev) && !lv.ev[nDown].Up {
		nDown++
	}
	downs, ups := lv.ev[:nDown], lv.ev[nDown:]
	tmp := st.mergeBuf[:0]
	di, ui := 0, 0
	for _, e := range lv.edges {
		for ui < len(ups) && ups[ui].Edge < e {
			tmp = append(tmp, ups[ui].Edge)
			ui++
		}
		if di < len(downs) && downs[di].Edge == e {
			di++
			continue
		}
		tmp = append(tmp, e)
	}
	for ; ui < len(ups); ui++ {
		tmp = append(tmp, ups[ui].Edge)
	}
	st.mergeBuf = lv.edges[:0]
	lv.edges = tmp
}

// patchForcedTop handles the forced-top election level k = L-1 and the
// top level L: every node elects the maximum ID, the top level is the
// single forced cluster, and the top identity is re-matched only when
// the top membership changed. Mirrors forceTop + the oracle's
// subsequent matchLevel(k+1) exactly.
func (m *IncrementalMaintainer) patchForcedTop(in *MaintainInput, lv *incLevel, blvl *Level, log []touchLevel) bool {
	st := &m.inc
	base := st.base
	prevH := in.PrevH
	L := prevH.L()
	tl := &log[L-1]
	n := len(blvl.Nodes)
	root := blvl.Nodes[n-1] // sorted ascending
	prevRoot := prevH.Levels[L].Nodes[0]
	lvTop := st.lvls[L]

	if changed := root != prevRoot || len(lv.adds) > 0 || len(lv.rems) > 0; changed {
		for _, u := range lv.rems {
			delete(blvl.Head, u)
			delete(blvl.Member, u)
			tl.nodes = append(tl.nodes, u)
		}
		if root != prevRoot {
			for _, u := range blvl.Nodes {
				blvl.Head[u] = root
				blvl.Member[u] = root
				tl.nodes = append(tl.nodes, u)
			}
			if s, ok := blvl.Members[prevRoot]; ok {
				m.arena.putInts(s)
				delete(blvl.Members, prevRoot)
			}
			delete(blvl.State, prevRoot)
			tl.clusters = append(tl.clusters, prevRoot)
		} else {
			for _, u := range lv.adds {
				blvl.Head[u] = root
				blvl.Member[u] = root
				tl.nodes = append(tl.nodes, u)
			}
		}
		s, ok := blvl.Members[root]
		if !ok {
			s = m.arena.getInts()
		}
		blvl.Members[root] = append(s[:0], blvl.Nodes...)
		blvl.State[root] = n - 1
		tl.clusters = append(tl.clusters, root)

		lvTop.ddNext[root] = true
		lvTop.ddNextL = append(lvTop.ddNextL, root)
		lvTop.ddPrev[prevRoot] = true
		lvTop.ddPrevL = append(lvTop.ddPrevL, prevRoot)
	} else if len(lv.ddNextL) > 0 || len(lv.ddPrevL) > 0 {
		// Top membership keys are unchanged but a member subtree is
		// dirty: chain the dirtiness to the top cluster so the
		// identity re-match and the LM dirty set both see it.
		lvTop.ddNext[root] = true
		lvTop.ddNextL = append(lvTop.ddNextL, root)
		lvTop.ddPrev[prevRoot] = true
		lvTop.ddPrevL = append(lvTop.ddPrevL, prevRoot)
	}
	if root != prevRoot {
		lvTop.adds = append(lvTop.adds, root)
		lvTop.rems = append(lvTop.rems, prevRoot)
	}

	topB := base.Levels[L]
	topB.Nodes = append(topB.Nodes[:0], root)
	if topB.Graph == nil {
		topB.Graph = m.arena.getGraph(in.G0.IDSpace())
	} else {
		topB.Graph.Reset(in.G0.IDSpace())
	}
	base.ForcedTop = true
	lvTop.edges = lvTop.edges[:0]

	return m.matchPatch(L, lvTop, &log[L], in)
}
