package cluster

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// Differential battery: IncrementalMaintainer must reproduce the
// oracle's snapshots, identities (including the fresh-ID sequence),
// and elector-state evolution, tick for tick, over evolving topologies
// with small per-tick deltas (the fast-path regime) interleaved with
// bursts (forcing fallback + resync).

// maintDriver runs one Maintainer in the simulation loop's
// double-buffer pattern (Retire the t-2 snapshot, then Maintain).
type maintDriver struct {
	mnt         Maintainer
	h, retH     *Hierarchy
	ids, retIDs *Identities
}

func (d *maintDriver) tick(in MaintainInput) (*Hierarchy, *Identities) {
	d.mnt.Retire(d.retH, d.retIDs)
	d.retH, d.retIDs = nil, nil
	in.PrevH, in.PrevIDs = d.h, d.ids
	nh, nids := d.mnt.Maintain(&in)
	d.retH, d.retIDs = d.h, d.ids
	d.h, d.ids = nh, nids
	return nh, nids
}

// edgeWorld evolves a random symmetric edge set by flipping pairs, and
// materializes each tick's graph into alternating buffers so the
// previous graph object stays alive (the MaintainInput contract).
type edgeWorld struct {
	n     int
	rng   *rng.Source
	has   map[topology.EdgeKey]bool
	bufs  [2]*topology.Graph
	cur   int
	diff  topology.DiffScratch
	giant topology.ComponentScratch
	all   []int
}

func newEdgeWorld(n int, seed int64, density float64) *edgeWorld {
	w := &edgeWorld{n: n, rng: rng.New(uint64(seed)), has: map[topology.EdgeKey]bool{}}
	for i := 0; i < n; i++ {
		w.all = append(w.all, i)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if w.rng.Float64() < density {
				w.has[topology.MakeEdgeKey(a, b)] = true
			}
		}
	}
	return w
}

// flip toggles m random pairs.
func (w *edgeWorld) flip(m int) {
	for i := 0; i < m; i++ {
		a := w.rng.Intn(w.n)
		b := w.rng.Intn(w.n)
		if a == b {
			continue
		}
		k := topology.MakeEdgeKey(a, b)
		if w.has[k] {
			delete(w.has, k)
		} else {
			w.has[k] = true
		}
	}
}

// graph builds the current edge set into the next buffer and returns
// (newGraph, prevGraph, events).
func (w *edgeWorld) graph() (*topology.Graph, *topology.Graph, []topology.LinkEvent) {
	w.cur ^= 1
	g := w.bufs[w.cur]
	if g == nil {
		g = topology.NewGraph(w.n)
		w.bufs[w.cur] = g
	} else {
		g.Reset(w.n)
	}
	for a := 0; a < w.n; a++ {
		for b := a + 1; b < w.n; b++ {
			if w.has[topology.MakeEdgeKey(a, b)] {
				g.AddEdge(a, b)
			}
		}
	}
	prev := w.bufs[w.cur^1]
	var events []topology.LinkEvent
	if prev != nil {
		events = w.diff.Diff(prev, g)
	}
	return g, prev, events
}

func intMapsEqual(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func intSlicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hierDiff reports the first difference between two snapshots, "" if
// none. nil and empty election maps are equivalent (pooled levels carry
// cleared maps where fresh ones carry nil).
func hierDiff(a, b *Hierarchy) string {
	if len(a.Levels) != len(b.Levels) {
		return fmt.Sprintf("levels %d vs %d", len(a.Levels), len(b.Levels))
	}
	if a.ForcedTop != b.ForcedTop {
		return fmt.Sprintf("forcedTop %v vs %v", a.ForcedTop, b.ForcedTop)
	}
	if a.Reach != b.Reach {
		return fmt.Sprintf("reach %d vs %d", a.Reach, b.Reach)
	}
	for k := range a.Levels {
		la, lb := a.Levels[k], b.Levels[k]
		if !intSlicesEqual(la.Nodes, lb.Nodes) {
			return fmt.Sprintf("level %d nodes %v vs %v", k, la.Nodes, lb.Nodes)
		}
		if (la.Graph == nil) != (lb.Graph == nil) {
			return fmt.Sprintf("level %d graph nil-ness", k)
		}
		if la.Graph != nil && !la.Graph.Equal(lb.Graph) {
			return fmt.Sprintf("level %d graph edge sets differ", k)
		}
		if !intMapsEqual(la.Head, lb.Head) {
			return fmt.Sprintf("level %d head %v vs %v", k, la.Head, lb.Head)
		}
		if !intMapsEqual(la.Member, lb.Member) {
			return fmt.Sprintf("level %d member %v vs %v", k, la.Member, lb.Member)
		}
		if !intMapsEqual(la.State, lb.State) {
			return fmt.Sprintf("level %d state %v vs %v", k, la.State, lb.State)
		}
		if len(la.Members) != len(lb.Members) {
			return fmt.Sprintf("level %d members keys %d vs %d", k, len(la.Members), len(lb.Members))
		}
		for c, s := range la.Members {
			if !intSlicesEqual(s, lb.Members[c]) {
				return fmt.Sprintf("level %d members[%d] %v vs %v", k, c, s, lb.Members[c])
			}
		}
	}
	return ""
}

func identsDiff(a, b *Identities) string {
	if len(a.byLevel) != len(b.byLevel) {
		return fmt.Sprintf("id levels %d vs %d", len(a.byLevel), len(b.byLevel))
	}
	for k := range a.byLevel {
		ma, mb := a.byLevel[k], b.byLevel[k]
		if len(ma) != len(mb) {
			return fmt.Sprintf("level %d id keys %d vs %d", k+1, len(ma), len(mb))
		}
		for hd, id := range ma {
			if oid, ok := mb[hd]; !ok || oid != id {
				return fmt.Sprintf("level %d id[%d] %d vs %d", k+1, hd, id, oid)
			}
		}
	}
	return ""
}

// memberSig maps each level-k logical cluster to the sorted logical IDs
// of its members (node IDs at k=1), for the dirty-set audit. Level-k
// clusters are formed by the election at level k-1, so their member
// lists live in Level(k-1).Members.
func memberSig(h *Hierarchy, ids *Identities, k int) map[uint64][]uint64 {
	sig := map[uint64][]uint64{}
	lvl := h.Level(k - 1)
	if lvl == nil || lvl.Members == nil {
		return sig
	}
	for hd, ms := range lvl.Members {
		q, ok := ids.Logical(k, hd)
		if !ok {
			continue
		}
		var s []uint64
		for _, u := range ms {
			if k == 1 {
				s = append(s, uint64(u))
			} else if lq, ok := ids.Logical(k-1, u); ok {
				s = append(s, lq)
			}
		}
		sortU64(s)
		sig[q] = s
	}
	return sig
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func u64SlicesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// auditDirty checks the DirtyClusters contract against the actual
// snapshot pair: every logical cluster whose member-key set changed
// (or that exists in only one snapshot) must be marked, and so must
// its ancestors in both snapshots.
func auditDirty(t *testing.T, tickNo int, dirty *DirtyClusters,
	prevH, nextH *Hierarchy, prevIDs, nextIDs *Identities) {
	t.Helper()
	maxL := prevH.L()
	if l := nextH.L(); l > maxL {
		maxL = l
	}
	marked := func(k int, q uint64) bool {
		return k >= 1 && k < len(dirty.ByLevel) && dirty.ByLevel[k][q]
	}
	// changed[k] holds the dirty logicals at level k (for the ancestor
	// pass below).
	changed := make([]map[uint64]bool, maxL+1)
	for k := 1; k <= maxL; k++ {
		changed[k] = map[uint64]bool{}
		ps := memberSig(prevH, prevIDs, k)
		ns := memberSig(nextH, nextIDs, k)
		for q, s := range ps {
			if !u64SlicesEqual(s, ns[q]) {
				changed[k][q] = true
			}
		}
		for q := range ns {
			if _, ok := ps[q]; !ok {
				changed[k][q] = true
			}
		}
		for q := range changed[k] {
			if !marked(k, q) {
				t.Fatalf("tick %d: level-%d cluster %d member set changed but not marked dirty", tickNo, k, q)
			}
		}
	}
	// Ancestor propagation in both snapshots: a dirty level-k cluster's
	// head is a level-k node; its parent is the level-(k+1) cluster the
	// level-k election assigns that head to.
	for _, side := range []struct {
		h   *Hierarchy
		ids *Identities
	}{{prevH, prevIDs}, {nextH, nextIDs}} {
		for k := 1; k < side.h.L(); k++ {
			lvl := side.h.Level(k - 1)
			up := side.h.Level(k)
			if lvl == nil || lvl.Members == nil || up == nil || up.Member == nil {
				continue
			}
			for hd := range lvl.Members {
				q, ok := side.ids.Logical(k, hd)
				if !ok || !(changed[k][q] || marked(k, q)) {
					continue
				}
				p, ok := up.Member[hd]
				if !ok {
					continue
				}
				pq, ok := side.ids.Logical(k+1, p)
				if !ok {
					continue
				}
				if !marked(k+1, pq) {
					t.Fatalf("tick %d: level-%d cluster %d dirty but ancestor %d at level %d unmarked",
						tickNo, k, q, pq, k+1)
				}
			}
		}
	}
}

// runDifferential drives oracle and incremental maintainers over the
// same topology sequence and compares everything every tick. Returns
// the incremental maintainer's stats.
func runDifferential(t *testing.T, cfgOracle, cfgInc Config, seed int64, n, ticks int, useGiant bool) IncrementalStats {
	t.Helper()
	w := newEdgeWorld(n, seed, 2.2/float64(n))
	oracle := &maintDriver{mnt: NewOracleMaintainer(cfgOracle, NewIdentityTracker())}
	incM := NewIncrementalMaintainer(cfgInc, NewIdentityTracker())
	inc := &maintDriver{mnt: incM}

	for i := 0; i < ticks; i++ {
		switch {
		case i == 0:
			// initial topology as-is
		case i%17 == 0:
			w.flip(1 + w.rng.Intn(12)) // burst: force structure changes
		default:
			w.flip(1 + w.rng.Intn(3))
		}
		g, prevG, events := w.graph()
		nodes := w.all
		if useGiant {
			nodes = w.giant.Giant(g, w.all)
		}
		now := float64(i)
		in := MaintainInput{G0: g, PrevG0: prevG, Nodes: nodes, Events: events, Now: now}
		ho, idso := oracle.tick(in)
		hi, idsi := inc.tick(in)
		if d := hierDiff(ho, hi); d != "" {
			t.Fatalf("tick %d (seed %d): hierarchy diverged: %s", i, seed, d)
		}
		if d := identsDiff(idso, idsi); d != "" {
			t.Fatalf("tick %d (seed %d): identities diverged: %s", i, seed, d)
		}
		if err := hi.Validate(); err != nil {
			t.Fatalf("tick %d (seed %d): invalid incremental hierarchy: %v", i, seed, err)
		}
		if dirty := incM.DirtyClusters(); dirty != nil && oracle.retH != nil {
			auditDirty(t, i, dirty, oracle.retH, ho, oracle.retIDs, idso)
		}
	}
	return incM.Stats()
}

func TestIncrementalMatchesOracle(t *testing.T) {
	cases := []struct {
		name      string
		mk        func() Config
		useGiant  bool
		wantsFast bool
	}{
		{"memoryless", func() Config { return Config{} }, false, true},
		{"memoryless-giant", func() Config { return Config{} }, true, true},
		{"sticky", func() Config { return Config{Elector: StickyLCA{}} }, false, true},
		{"debounced", func() Config {
			return Config{Elector: NewDebouncedLCA(2.5), Reach: -1}
		}, false, true},
		{"debounced-scaled-giant", func() Config {
			d := NewDebouncedLCA(1.5)
			d.LevelScale = 2
			return Config{Elector: d, Reach: -1}
		}, true, true},
		{"forcetop", func() Config { return Config{ForceTopAt: 4} }, false, true},
		{"forcetop-sticky-giant", func() Config {
			return Config{ForceTopAt: 5, Elector: StickyLCA{}}
		}, true, true},
		{"maxlevels", func() Config { return Config{MaxLevels: 2} }, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				st := runDifferential(t, tc.mk(), tc.mk(), seed, 48, 120, tc.useGiant)
				if tc.wantsFast && st.Incremental == 0 {
					t.Fatalf("seed %d: fast path never engaged (%d fallbacks)", seed, st.Fallbacks)
				}
			}
		})
	}
}

// TestIncrementalFallbackElectors: non-neighborhood electors must fall
// back every tick yet still match the oracle exactly.
func TestIncrementalFallbackElectors(t *testing.T) {
	mk := func() Config { return Config{Elector: maxMinStub{}, Reach: -1} }
	st := runDifferential(t, mk(), mk(), 7, 32, 40, false)
	if st.Incremental != 0 {
		t.Fatalf("non-neighborhood elector took the fast path %d times", st.Incremental)
	}
}

// maxMinStub is a deliberately non-local elector (no NeighborhoodElector
// marker): everyone elects the globally maximal node of the level.
type maxMinStub struct{}

func (maxMinStub) Name() string { return "global-max-stub" }

func (maxMinStub) Elect(dst []int, nodes []int, g *topology.Graph, prevHead func(int) int) []int {
	best := -1
	for _, u := range nodes {
		if u > best {
			best = u
		}
	}
	for range nodes {
		dst = append(dst, best)
	}
	return dst
}
