package cluster

import "repro/internal/topology"

// The incremental fast path: patch the previous snapshot by the tick's
// link-event delta instead of rebuilding the ALCA fixed point.
//
// The loop keeps two snapshots alive (t and t-1), so the maintainer
// owns a third object — the retired t-2 snapshot handed back via
// Retire — and turns it into the t snapshot in two steps:
//
//  1. replay: bring the t-2 object up to t-1 content by copying, from
//     in.PrevH, exactly the keys the previous tick's patch touched
//     (the touch log, ping-ponged across two generations). Clean keys
//     already hold the right values because the object was itself the
//     product of a patch two ticks ago.
//  2. patch: advance the object from t-1 to t level by level, seeding
//     per-level dirty sets from the tick's level-0 link events and
//     lifting the delta upward (incremental_level.go), re-matching
//     identities only for member-dirty clusters (incremental_match.go)
//     and re-electing only dirty neighborhoods (incremental_elect.go).
//     Every patch-phase mutation is logged for the next tick's replay.
//
// Any dynamic precondition failure (hierarchy depth change, forced-top
// transition, identity anomaly) aborts: the identity tracker's fresh-ID
// counter and the elector's hysteresis state are restored, the torn
// snapshot is recycled, and the caller falls back to the oracle
// rebuild. Correctness of the survivors is pinned by the
// incremental-hierarchy-equal invariant and the oracle differentials.

// incState is the incremental maintainer's persistent cross-tick
// state: the retired snapshot being recycled into the next one, the
// ping-ponged touch logs, per-level lifted-edge/witness/carrier state,
// and the reusable scratch of the patch engine.
type incState struct {
	// base is the retired t-2 snapshot (stored by Retire), patched in
	// place into the t snapshot. nil while handed out to the loop.
	base    *Hierarchy
	baseIDs *Identities
	// valid records that the previous Maintain was served by the fast
	// path, so base differs from in.PrevH only by the touch log. A
	// fallback or abort clears it; the next fast path then resyncs.
	valid bool
	// flip selects the touch generation being recorded; touch[flip^1]
	// is the previous tick's log, consumed by replay.
	flip  int
	touch [2][]touchLevel
	lvls  []*incLevel

	// Match scratch (incremental_match.go). Pair counting reuses the
	// arena's matchScratch; only the assignment map and the descendant
	// walk stacks live here.
	assign  map[int]uint64
	descBuf []int
	descLvl []int

	// Election scratch (incremental_elect.go).
	dirtyBuf   []int
	headBuf    []int
	deltaState map[int]int
	candSet    map[int]bool
	candList   []int
	aliveOv    map[int]bool
	uSet       map[int]bool
	uList      []int
	deathBuf   []int
	moveBuf    []moveRec
	u64Buf     []uint64

	// Lift scratch (incremental_elect.go).
	edgeCand []topology.EdgeKey
	pairCand []topology.EdgeKey
	downBuf  []topology.EdgeKey
	upBuf    []topology.EdgeKey
	mergeBuf []topology.EdgeKey
}

// touchLevel is one level's patch-phase mutation log: the map keys
// written or deleted while advancing the snapshot one tick. Values are
// not logged — replay copies them from the t-1 snapshot.
type touchLevel struct {
	nodes    []int // Head / Member keys
	clusters []int // State / Members keys
	ids      []int // Identities.byLevel[k-1] keys (k >= 1)
}

// incLevel is the per-level state of the patch engine. edges, witness
// and carrier persist across ticks (single generation, tracking the
// newest snapshot); the rest is per-tick scratch.
type incLevel struct {
	// edges is the authoritative sorted level-k edge list (k >= 1),
	// advanced each tick by the lifted event delta ev.
	edges []topology.EdgeKey
	// witness counts, for each level-k cluster pair, the number of
	// level-(k-1) edges crossing between the two clusters (k >= 1). A
	// pair is a level-k edge iff its witness count is positive.
	witness map[topology.EdgeKey]int32
	// carrier maps each live logical level-k cluster ID to the physical
	// head currently carrying it (k >= 1) — the persistent form of the
	// oracle's per-build carrier map.
	carrier map[uint64]int

	// Per-tick scratch.
	ev         []topology.LinkEvent // level-k link events (downs then ups, ascending)
	adds, rems []int                // level-k node-set delta, sorted
	ddPrev     map[int]bool         // prev-snapshot clusters with changed member keys
	ddNext     map[int]bool         // next-snapshot clusters with changed member keys
	ddPrevL    []int
	ddNextL    []int
	logChanged []int          // nodes whose logical ID changed this tick
	relLog     map[uint64]int // released logical -> its t-1 physical head
	released   []uint64       // sorted released logicals
	dirtySet   map[int]bool   // D_k election dedup
}

// moveRec is one level-k node's membership change during the patch:
// from/to are level-(k+1) clusters, -1 for none (node appeared or
// departed).
type moveRec struct{ u, from, to int }

// maintainIncremental is the fast path: patch the previous snapshot by
// the tick's link-event delta. ok=false means a dynamic precondition
// failed mid-flight; the caller then falls back to a full rebuild (all
// tracker and elector state mutated by the partial attempt has been
// restored, and the torn snapshot recycled).
func (m *IncrementalMaintainer) maintainIncremental(in *MaintainInput) (*Hierarchy, *Identities, bool) {
	st := &m.inc
	if st.base == nil || st.baseIDs == nil {
		return nil, nil, false
	}
	if st.valid && !st.replay(m.arena, in.PrevH, in.PrevIDs) {
		st.valid = false
	}
	if !st.valid {
		if !st.resync(m.arena, in.PrevH, in.PrevIDs) {
			m.arena.Recycle(st.base, st.baseIDs)
			st.base, st.baseIDs = nil, nil
			return nil, nil, false
		}
	}
	st.valid = false
	st.flip ^= 1

	savedNext := m.tr.nextID
	var elSnap Elector
	if m.elStateful != nil && m.elRestore != nil {
		elSnap = m.elRestore.CloneElector()
	}
	if !m.patchAll(in) {
		m.tr.nextID = savedNext
		if elSnap != nil {
			m.elRestore.RestoreElector(elSnap)
		}
		m.arena.Recycle(st.base, st.baseIDs)
		st.base, st.baseIDs = nil, nil
		return nil, nil, false
	}
	st.valid = true
	h, ids := st.base, st.baseIDs
	st.base, st.baseIDs = nil, nil // handed to the loop; returns via Retire
	return h, ids, true
}

// retireIncremental stores a retired snapshot as the patch base,
// recycling any unclaimed previous base first.
func (m *IncrementalMaintainer) retireIncremental(h *Hierarchy, ids *Identities) {
	st := &m.inc
	if h == nil || ids == nil {
		m.arena.Recycle(h, ids)
		return
	}
	if st.base != nil || st.baseIDs != nil {
		m.arena.Recycle(st.base, st.baseIDs)
		st.valid = false
	}
	st.base, st.baseIDs = h, ids
}

// replay brings base (t-2 content) up to prevH (t-1 content) by
// copying the keys recorded in the previous tick's touch log. Returns
// false when the shapes disagree (the previous tick cannot have been a
// structure-preserving patch), telling the caller to resync instead.
func (st *incState) replay(a *Arena, prevH *Hierarchy, prevIDs *Identities) bool {
	base, baseIDs := st.base, st.baseIDs
	log := st.touch[st.flip]
	if len(base.Levels) != len(prevH.Levels) || len(log) != len(prevH.Levels) {
		return false
	}
	if len(baseIDs.byLevel) != len(prevIDs.byLevel) {
		return false
	}
	if base.ForcedTop != prevH.ForcedTop {
		return false
	}
	for k, plvl := range prevH.Levels {
		blvl := base.Levels[k]
		blvl.Nodes = append(blvl.Nodes[:0], plvl.Nodes...)
		tl := &log[k]
		for _, u := range tl.nodes {
			if v, ok := plvl.Head[u]; ok {
				blvl.Head[u] = v
			} else {
				delete(blvl.Head, u)
			}
			if v, ok := plvl.Member[u]; ok {
				blvl.Member[u] = v
			} else {
				delete(blvl.Member, u)
			}
		}
		for _, c := range tl.clusters {
			if s, ok := plvl.Members[c]; ok {
				dst, had := blvl.Members[c]
				if !had {
					dst = a.getInts()
				}
				blvl.Members[c] = append(dst[:0], s...)
				blvl.State[c] = plvl.State[c]
			} else {
				if s, had := blvl.Members[c]; had {
					a.putInts(s)
					delete(blvl.Members, c)
				}
				delete(blvl.State, c)
			}
		}
		if k >= 1 {
			bm, pm := baseIDs.byLevel[k-1], prevIDs.byLevel[k-1]
			for _, hd := range tl.ids {
				if id, ok := pm[hd]; ok {
					bm[hd] = id
				} else {
					delete(bm, hd)
				}
			}
		}
	}
	return true
}

// resync rebuilds base as a full deep copy of prevH/prevIDs (recycling
// base's own storage through the arena first, so the copy reuses it),
// and recomputes the per-level edge lists, witness counts and carrier
// maps from scratch. Run whenever the previous tick was not a fast
// path. Returns false when prevH carries no snapshot to copy.
func (st *incState) resync(a *Arena, prevH *Hierarchy, prevIDs *Identities) bool {
	if len(prevH.Levels) == 0 {
		return false
	}
	a.Recycle(st.base, st.baseIDs)
	base := a.getHier()
	baseIDs := a.getIdents()
	base.Reach = prevH.Reach
	base.ForcedTop = prevH.ForcedTop
	for k, plvl := range prevH.Levels {
		lvl := a.getLevel()
		lvl.K = k
		lvl.Nodes = append(a.getInts(), plvl.Nodes...)
		lvl.Graph = nil // rebuilt by the patch (level 0 uses in.G0)
		if plvl.Head != nil {
			if lvl.Head == nil {
				lvl.Head = make(map[int]int, len(plvl.Head))
				lvl.Member = make(map[int]int, len(plvl.Member))
				lvl.Members = make(map[int][]int, len(plvl.Members))
				lvl.State = make(map[int]int, len(plvl.State))
			}
			//lint:ignore maprange map-to-map copy; the result is order-free
			for u, v := range plvl.Head {
				lvl.Head[u] = v
			}
			//lint:ignore maprange map-to-map copy; the result is order-free
			for u, v := range plvl.Member {
				lvl.Member[u] = v
			}
			//lint:ignore maprange map-to-map copy; the result is order-free
			for c, v := range plvl.State {
				lvl.State[c] = v
			}
			//lint:ignore maprange map-to-map copy; each value slice is copied whole
			for c, s := range plvl.Members {
				lvl.Members[c] = append(a.getInts(), s...)
			}
		} else {
			// Terminal level: no election data. Pooled maps may exist
			// (cleared); content equality is what matters, and Recycle
			// clears rather than nils, so empty maps are fine.
			if lvl.Head != nil {
				clear(lvl.Head)
				clear(lvl.Member)
				clear(lvl.State)
				//lint:ignore maprange slice harvesting; only pooled capacity depends on order
				for _, s := range lvl.Members {
					a.putInts(s)
				}
				clear(lvl.Members)
				lvl.Head, lvl.Member, lvl.Members, lvl.State = nil, nil, nil, nil
			}
		}
		base.Levels = append(base.Levels, lvl)
	}
	for k := 1; k <= prevH.L(); k++ {
		src := prevIDs.byLevel[k-1]
		m := a.getIDMap(len(src))
		//lint:ignore maprange map-to-map copy; the result is order-free
		for hd, id := range src {
			m[hd] = id
		}
		baseIDs.byLevel = append(baseIDs.byLevel, m)
	}
	st.base, st.baseIDs = base, baseIDs

	// Per-level persistent lift state.
	L := prevH.L()
	for len(st.lvls) <= L {
		st.lvls = append(st.lvls, &incLevel{
			witness:  map[topology.EdgeKey]int32{},
			carrier:  map[uint64]int{},
			ddPrev:   map[int]bool{},
			ddNext:   map[int]bool{},
			relLog:   map[uint64]int{},
			dirtySet: map[int]bool{},
		})
	}
	for k := 1; k <= L; k++ {
		lv := st.lvls[k]
		lv.edges = prevH.Levels[k].Graph.AppendEdges(lv.edges[:0])
		clear(lv.witness)
		below := prevH.Levels[k-1]
		below.Graph.ForEachEdge(func(e topology.EdgeKey) {
			pa, pb := e.Nodes()
			ca, okA := below.Member[pa]
			cb, okB := below.Member[pb]
			if okA && okB && ca != cb {
				lv.witness[topology.MakeEdgeKey(ca, cb)]++
			}
		})
		clear(lv.carrier)
		//lint:ignore maprange map inversion; the result is order-free
		for hd, id := range prevIDs.byLevel[k-1] {
			lv.carrier[id] = hd
		}
	}
	// Both touch generations describe patches of snapshots that no
	// longer exist; clear them.
	for g := range st.touch {
		for i := range st.touch[g] {
			tl := &st.touch[g][i]
			tl.nodes, tl.clusters, tl.ids = tl.nodes[:0], tl.clusters[:0], tl.ids[:0]
		}
		st.touch[g] = st.touch[g][:0]
	}
	return true
}

// touchLog returns this tick's touch log sized for L+1 levels, with
// every level's key lists reset.
func (st *incState) touchLog(L int) []touchLevel {
	log := st.touch[st.flip]
	for len(log) <= L {
		log = append(log, touchLevel{})
	}
	log = log[:L+1]
	for i := range log {
		tl := &log[i]
		tl.nodes, tl.clusters, tl.ids = tl.nodes[:0], tl.clusters[:0], tl.ids[:0]
	}
	st.touch[st.flip] = log
	return log
}

// diffSortedInto appends next\prev to adds and prev\next to rems (both
// inputs sorted ascending) and returns the extended slices.
func diffSortedInto(prev, next, adds, rems []int) ([]int, []int) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case prev[i] < next[j]:
			rems = append(rems, prev[i])
			i++
		default:
			adds = append(adds, next[j])
			j++
		}
	}
	rems = append(rems, prev[i:]...)
	adds = append(adds, next[j:]...)
	return adds, rems
}

// mergeNodesInto writes (prev + adds - rems) into dst (all sorted,
// adds/rems disjoint deltas of prev) and returns dst.
func mergeNodesInto(dst, prev, adds, rems []int) []int {
	ai, ri := 0, 0
	for _, v := range prev {
		for ai < len(adds) && adds[ai] < v {
			dst = append(dst, adds[ai])
			ai++
		}
		if ri < len(rems) && rems[ri] == v {
			ri++
			continue
		}
		dst = append(dst, v)
	}
	dst = append(dst, adds[ai:]...)
	return dst
}

// containsSortedInt reports whether sorted s contains v.
func containsSortedInt(s []int, v int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// containsSortedEdge reports whether sorted s contains e.
func containsSortedEdge(s []topology.EdgeKey, e topology.EdgeKey) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == e
}

// insertSortedInt inserts v into sorted s (no-op if present) and
// returns the slice.
func insertSortedInt(s []int, v int) []int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == v {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// removeSortedInt removes v from sorted s (no-op if absent) and
// returns the slice.
func removeSortedInt(s []int, v int) []int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s) || s[lo] != v {
		return s
	}
	copy(s[lo:], s[lo+1:])
	return s[:len(s)-1]
}
