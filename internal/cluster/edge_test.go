// Edge-case coverage for election/rejection cascades: the adversarial
// transitions the Eq. 22 damping argument must survive — simultaneous
// head loss at several adjacent levels, a single-node cluster at the
// top level, and rejection chains longer than two levels. Each case
// asserts the structural shape of the Diff AND runs the full invariant
// catalog over the transition: every state change must decompose into
// unit elector flips (Fig. 3), so no damping counterexample can hide
// in the cascade.
package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/invariant"
	"repro/internal/lm"
	"repro/internal/topology"
)

// chainOfCliques builds the 16-node tower: four 4-cliques bridged in a
// chain (3–7, 7–11, 11–15). Max-ID election cascades it to
//
//	L1 {3,7,11,15} → L2 {7,11,15} → L3 {11,15} → L4 {15}
//
// so node 15 is a head at four consecutive levels and the top-level
// cluster is a singleton.
func chainOfCliques(omit map[topology.EdgeKey]bool) *topology.Graph {
	g := topology.NewGraph(16)
	add := func(a, b int) {
		if !omit[topology.MakeEdgeKey(a, b)] {
			g.AddEdge(a, b)
		}
	}
	for base := 0; base < 16; base += 4 {
		for i := base; i < base+4; i++ {
			for j := i + 1; j < base+4; j++ {
				add(i, j)
			}
		}
	}
	add(3, 7)
	add(7, 11)
	add(11, 15)
	return g
}

func allNodes(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

// buildTower clusters g (giant component, memoryless LCA, no forced
// top) with identity continuity from prev.
func buildTower(g *topology.Graph, prevH *cluster.Hierarchy, prevIDs *cluster.Identities,
	tracker *cluster.IdentityTracker, now float64,
) (*cluster.Hierarchy, *cluster.Identities) {
	return cluster.BuildWithIdentities(
		g, topology.GiantComponent(g, allNodes(16)), cluster.Config{},
		prevH, prevIDs, tracker, now)
}

// levelNodes flattens h's per-level node counts for shape assertions.
func levelNodes(h *cluster.Hierarchy) []int {
	out := make([]int, len(h.Levels))
	for k, lvl := range h.Levels {
		out[k] = len(lvl.Nodes)
	}
	return out
}

// runInvariants runs the full catalog over the transition and fails
// the test on any violation — the Eq. 22 guarantee that even an
// adversarial cascade decomposes into unit elector flips.
func runInvariants(t *testing.T, prevH, nextH *cluster.Hierarchy,
	prevIDs, nextIDs *cluster.Identities, prevT, nextT *lm.Table, sel *lm.Selector,
) {
	t.Helper()
	d := cluster.ComputeDiff(prevH, nextH)
	c := invariant.New(invariant.EveryTick, nil, func(v invariant.Violation) {
		t.Errorf("invariant violated across the transition: %v", v)
	})
	c.CheckTick(&invariant.Snapshot{
		Tick: 1, Time: 1, Seed: 0,
		Prev:     &invariant.State{Hier: prevH, IDs: prevIDs, Table: prevT},
		Next:     &invariant.State{Hier: nextH, IDs: nextIDs, Table: nextT},
		Diff:     d,
		Selector: sel,
	})
}

func TestTowerShape(t *testing.T) {
	tracker := cluster.NewIdentityTracker()
	h, _ := buildTower(chainOfCliques(nil), nil, nil, tracker, 0)
	want := []int{16, 4, 3, 2, 1}
	got := levelNodes(h)
	if len(got) != len(want) {
		t.Fatalf("tower levels %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("tower levels %v, want %v", got, want)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// The top level is a single-node cluster: {15} leading {11,15}.
	top := h.Levels[len(h.Levels)-1]
	if len(top.Nodes) != 1 || top.Nodes[0] != 15 {
		t.Fatalf("top level = %v, want [15]", top.Nodes)
	}
	// And the tower also carries true singleton clusters mid-tower
	// (e.g. level-1 head 11 clusters alone at level 2).
	singleton := false
	for k := 0; k+1 < len(h.Levels); k++ {
		for _, c := range h.Levels[k+1].Nodes {
			if len(h.Levels[k].Members[c]) == 1 {
				singleton = true
			}
		}
	}
	if !singleton {
		t.Error("tower has no singleton cluster; edge case not exercised")
	}
}

// TestRejectionCascadeEdgeCases drives the tower through adversarial
// single-tick transitions and pins the rejection structure plus the
// invariant battery on each.
func TestRejectionCascadeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		omit [][2]int
		// rejectedLevels[v] = levels v must be rejected from,
		// simultaneously, in one tick.
		rejected map[int][]int
		// wantLevels is the next hierarchy's level population.
		wantLevels []int
	}{
		{
			// Isolating node 15 tears the head out of levels 1–4 at
			// once: simultaneous head loss at four adjacent levels and
			// a rejection chain of length 4 > 2. The clique {12,13,14}
			// also detaches from the giant component.
			name: "rejection-chain-length-4",
			omit: [][2]int{{11, 15}, {12, 15}, {13, 15}, {14, 15}},
			rejected: map[int][]int{
				15: {1, 2, 3, 4},
			},
			wantLevels: []int{12, 3, 2, 1},
		},
		{
			// Cutting the single 11–15 bridge splits the chain: the
			// right half {12..15} leaves the giant component, so head
			// 15 again vanishes from every level it led while head 11
			// is simultaneously promoted to the new top.
			name: "adjacent-level-head-loss",
			omit: [][2]int{{11, 15}},
			rejected: map[int][]int{
				15: {1, 2, 3, 4},
			},
			wantLevels: []int{12, 3, 2, 1},
		},
		{
			// Cutting 7–11 makes the two halves equal-sized; the giant
			// component tie-breaks to the {0..7} half, so heads 11 and
			// 15 vanish together — simultaneous loss at every level
			// both led, two overlapping rejection chains of length 3
			// and 4.
			name: "equal-split-adjacent-loss",
			omit: [][2]int{{7, 11}},
			rejected: map[int][]int{
				11: {1, 2, 3},
				15: {1, 2, 3, 4},
			},
			wantLevels: []int{8, 2, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tracker := cluster.NewIdentityTracker()
			sel := lm.NewSelector(nil)
			prevH, prevIDs := buildTower(chainOfCliques(nil), nil, nil, tracker, 0)
			prevT := sel.BuildTable(prevH, prevIDs)

			omit := map[topology.EdgeKey]bool{}
			for _, e := range tc.omit {
				omit[topology.MakeEdgeKey(e[0], e[1])] = true
			}
			nextH, nextIDs := buildTower(chainOfCliques(omit), prevH, prevIDs, tracker, 1)
			// The incremental (zero-alloc reuse) update path, which the
			// invariant battery then compares against a fresh rebuild.
			nextT := sel.UpdateTable(prevT, prevH, prevIDs, nextH, nextIDs)

			got := levelNodes(nextH)
			if len(got) != len(tc.wantLevels) {
				t.Fatalf("next levels %v, want %v", got, tc.wantLevels)
			}
			for k := range got {
				if got[k] != tc.wantLevels[k] {
					t.Fatalf("next levels %v, want %v", got, tc.wantLevels)
				}
			}

			d := cluster.ComputeDiff(prevH, nextH)
			for v, levels := range tc.rejected {
				for _, k := range levels {
					if !containsInt(d.Rejections[k], v) {
						t.Errorf("node %d not rejected at level %d (rejections: %v)",
							v, k, d.Rejections[k])
					}
				}
				if len(levels) > 2 {
					// The defining predicate of a rejection chain > 2:
					// the same node leaves more than two consecutive
					// levels in one tick.
					for i := 1; i < len(levels); i++ {
						if levels[i] != levels[i-1]+1 {
							t.Fatalf("rejection levels %v not consecutive", levels)
						}
					}
				}
			}

			runInvariants(t, prevH, nextH, prevIDs, nextIDs, prevT, nextT, sel)
		})
	}
}

// TestStableTowerTickIsQuiet pins the other direction: re-clustering
// an unchanged tower produces an empty diff, no rejections anywhere,
// and a clean invariant pass — the damping argument's fixed point.
func TestStableTowerTickIsQuiet(t *testing.T) {
	tracker := cluster.NewIdentityTracker()
	sel := lm.NewSelector(nil)
	prevH, prevIDs := buildTower(chainOfCliques(nil), nil, nil, tracker, 0)
	prevT := sel.BuildTable(prevH, prevIDs)
	nextH, nextIDs := buildTower(chainOfCliques(nil), prevH, prevIDs, tracker, 1)
	nextT := sel.UpdateTable(prevT, prevH, prevIDs, nextH, nextIDs)

	d := cluster.ComputeDiff(prevH, nextH)
	if !d.Empty() {
		t.Errorf("unchanged topology produced a non-empty diff: %+v", d)
	}
	runInvariants(t, prevH, nextH, prevIDs, nextIDs, prevT, nextT, sel)
}

// TestDebouncedElectorDepartedHead is the regression for a bug found
// by the scenario fuzzer (prop/testdata/regress/debounced-departed-head
// pins the original reproduction): buildPrevHead at level 0 used to
// return the raw previous head even after that node had left the
// covered node set, so DebouncedLCA's grace period kept electing the
// departed node and the hierarchy gained a level-1 "node" that was not
// a level-0 node. The previous-head memory must report no carrier for
// a departed head, forcing a fresh election.
func TestDebouncedElectorDepartedHead(t *testing.T) {
	star := func(withHead bool) *topology.Graph {
		g := topology.NewGraph(10)
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(i, j)
			}
		}
		if withHead {
			for i := 0; i < 4; i++ {
				g.AddEdge(i, 9)
			}
		}
		return g
	}
	cfg := cluster.Config{Elector: &cluster.DebouncedLCA{Grace: 100}, Reach: -1}
	tracker := cluster.NewIdentityTracker()
	build := func(g *topology.Graph, prevH *cluster.Hierarchy, prevIDs *cluster.Identities, now float64) (*cluster.Hierarchy, *cluster.Identities) {
		return cluster.BuildWithIdentities(
			g, topology.GiantComponent(g, allNodes(10)), cfg, prevH, prevIDs, tracker, now)
	}

	prevH, prevIDs := build(star(true), nil, nil, 0)
	if top := prevH.Levels[1].Nodes; len(top) != 1 || top[0] != 9 {
		t.Fatalf("initial head = %v, want [9]", top)
	}

	// Node 9 vanishes from the component while every survivor is still
	// well inside the 100 s grace window.
	nextH, _ := build(star(false), prevH, prevIDs, 1)
	if err := nextH.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(nextH.Levels); k++ {
		for _, u := range nextH.Levels[k].Nodes {
			if !nextH.Levels[k-1].IsNode(u) {
				t.Fatalf("level-%d node %d is not a level-%d node", k, u, k-1)
			}
		}
	}
	if containsInt(nextH.Levels[1].Nodes, 9) {
		t.Fatal("departed node 9 still elected clusterhead through the grace period")
	}
	if top := nextH.Levels[1].Nodes; len(top) != 1 || top[0] != 3 {
		t.Fatalf("re-election chose %v, want [3]", top)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
