package cluster

import "repro/internal/topology"

// Hierarchy maintenance strategies. The simulation loop historically
// rebuilt the full ALCA fixed point from scratch every scan tick
// ("oracle" maintenance): correct by construction but Θ(N·L) per tick
// regardless of how little the topology moved. The Maintainer interface
// abstracts that per-tick step so an incremental engine can advance the
// previous snapshot by the tick's link-event delta instead — see
// IncrementalMaintainer — while producing byte-identical hierarchies,
// identities, and election side effects.

// MaintainInput is one tick's input to a Maintainer: the fresh level-0
// graph, the covered (giant-component) node set, and the previous
// snapshot the new one evolves from.
type MaintainInput struct {
	// G0 is the current level-0 graph (full ID space).
	G0 *topology.Graph
	// PrevG0 is the previous tick's level-0 graph; nil on the first
	// build. It must still be alive (the loop's double buffer
	// guarantees this) — incremental maintenance walks prev
	// neighborhoods during lifted-edge accounting.
	PrevG0 *topology.Graph
	// Nodes is the sorted giant-component node set to cover.
	Nodes []int
	// Events is the level-0 link delta from PrevG0 to G0,
	// deterministically ordered (downs then ups, each ascending by edge
	// key) — the output order of topology.DiffScratch.Diff and
	// kinetic.Tracker.AppendEvents. nil when no delta source exists
	// (first tick, or a caller that never computed one); incremental
	// maintenance then falls back to a full rebuild.
	Events []topology.LinkEvent
	// PrevH / PrevIDs are the previous snapshot (nil on first build).
	PrevH   *Hierarchy
	PrevIDs *Identities
	// Now is the virtual time of this tick (grace-period electors).
	Now float64
}

// Maintainer produces the tick-t hierarchy snapshot from the tick-t
// topology and the tick-(t-1) snapshot. Implementations own their
// snapshot storage: the caller hands back retired snapshots via Retire
// (two-generation contract, exactly like Arena.Recycle).
type Maintainer interface {
	// Maintain builds the snapshot for in. The result must be
	// byte-identical to BuildWithIdentities over the same input,
	// including identity assignment order (fresh-ID sequence) and
	// elector state evolution.
	Maintain(in *MaintainInput) (*Hierarchy, *Identities)
	// Retire hands back a snapshot that is no longer referenced (the
	// t-2 snapshot in a double-buffered loop). nil-safe arguments.
	Retire(h *Hierarchy, ids *Identities)
	// DirtyClusters returns a conservative superset of the logical
	// clusters whose member-key sets changed in the last Maintain,
	// with dirtiness propagated to all ancestors in both snapshots —
	// the contract of the LM update's dirty-subtree analysis. nil means
	// "unknown": the LM update computes its own set.
	DirtyClusters() *DirtyClusters
	// Name identifies the maintainer for reports ("oracle",
	// "incremental").
	Name() string
}

// DirtyClusters is the maintainer-exported dirty-subtree set consumed
// by lm.UpdateTableInto: ByLevel[k][id] marks the logical level-k
// cluster id as having a changed member-key set (or an ancestor chain
// passing through one). Index 0 is unused (level-0 "clusters" are the
// nodes themselves).
type DirtyClusters struct {
	ByLevel []map[uint64]bool
}

// reset clears the set and sizes it for maxLevel levels.
func (d *DirtyClusters) reset(maxLevel int) {
	for len(d.ByLevel) <= maxLevel {
		d.ByLevel = append(d.ByLevel, map[uint64]bool{})
	}
	d.ByLevel = d.ByLevel[:maxLevel+1]
	for _, m := range d.ByLevel {
		clear(m)
	}
}

// mark records the level-k logical cluster as dirty; it reports
// whether the mark was new.
func (d *DirtyClusters) mark(k int, id uint64) bool {
	if k < 1 || k >= len(d.ByLevel) {
		return false
	}
	if d.ByLevel[k][id] {
		return false
	}
	d.ByLevel[k][id] = true
	return true
}

// OracleMaintainer is full-rebuild maintenance: every Maintain runs
// BuildWithIdentitiesArena from scratch over an internal arena. This is
// the reference semantics every other maintainer must reproduce.
type OracleMaintainer struct {
	cfg   Config
	tr    *IdentityTracker
	arena *Arena
}

// NewOracleMaintainer returns an oracle maintainer electing with cfg
// and naming clusters through tr.
func NewOracleMaintainer(cfg Config, tr *IdentityTracker) *OracleMaintainer {
	return &OracleMaintainer{cfg: cfg, tr: tr, arena: NewArena()}
}

// Maintain implements Maintainer.
//
//manet:hotpath
func (m *OracleMaintainer) Maintain(in *MaintainInput) (*Hierarchy, *Identities) {
	//lint:ignore hotpath elector per-level head maps and closures, counted in the tick alloc budget
	return BuildWithIdentitiesArena(
		m.arena, in.G0, in.Nodes, m.cfg, in.PrevH, in.PrevIDs, m.tr, in.Now)
}

// Retire implements Maintainer.
//
//manet:hotpath
func (m *OracleMaintainer) Retire(h *Hierarchy, ids *Identities) {
	m.arena.Recycle(h, ids)
}

// DirtyClusters implements Maintainer: the oracle has no delta
// knowledge, so the LM update computes its own dirty set.
func (m *OracleMaintainer) DirtyClusters() *DirtyClusters { return nil }

// Name implements Maintainer.
func (m *OracleMaintainer) Name() string { return "oracle" }

var _ Maintainer = (*OracleMaintainer)(nil)
