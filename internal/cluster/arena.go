package cluster

import (
	"slices"

	"repro/internal/topology"
)

// Arena recycles the storage of retired hierarchy snapshots so that
// steady-state rebuilds allocate (almost) nothing. The simulation loop
// keeps two snapshots alive — the one being built and its predecessor,
// which feeds identity matching and diffing — so the snapshot from two
// ticks ago is provably dead and its levels, graphs, identity maps and
// node slices can be cannibalized. Usage:
//
//	arena.Recycle(retiredH, retiredIDs) // snapshot from tick t-2
//	h, ids := BuildWithIdentitiesArena(arena, ...)
//
// An Arena is not safe for concurrent use. All methods are nil-safe:
// a nil *Arena degrades to fresh allocation everywhere.
type Arena struct {
	levels []*Level
	graphs []*topology.Graph
	idMaps []map[int]uint64
	ints   [][]int
	hiers  []*Hierarchy
	idents []*Identities

	// Per-build scratch, reset at the start of each build.
	prevLog   map[int][]uint64
	chainBack []uint64
	chainSpan []chainSpan
	electMaps []map[uint64]uint64
	electUsed int
	anc       map[int]int
	counts    map[matchPair]int
	pairs     []matchPair
	usedPrev  map[uint64]bool
	carrier   map[uint64]int
	headSet   map[int]bool
	headBuf   []int
}

type chainSpan struct {
	v          int
	start, end int
}

type matchPair struct {
	prev uint64
	next int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Recycle harvests the storage of a retired snapshot. The snapshot
// must no longer be referenced by anyone: its maps are cleared and its
// slices will be overwritten by the next build. The level-0 graph is
// NOT harvested — it is owned by the caller's graph double-buffer.
//
//manet:hotpath
func (a *Arena) Recycle(h *Hierarchy, ids *Identities) {
	if a == nil {
		return
	}
	if h != nil {
		for k, lvl := range h.Levels {
			if lvl.Nodes != nil {
				a.ints = append(a.ints, lvl.Nodes)
				lvl.Nodes = nil
			}
			if k > 0 && lvl.Graph != nil {
				a.graphs = append(a.graphs, lvl.Graph)
			}
			lvl.Graph = nil
			if lvl.Head != nil {
				clear(lvl.Head)
			}
			if lvl.Members != nil {
				//lint:ignore maprange slice harvesting; only pooled capacity depends on order
				for _, s := range lvl.Members {
					a.ints = append(a.ints, s)
				}
				clear(lvl.Members)
			}
			if lvl.Member != nil {
				clear(lvl.Member)
			}
			if lvl.State != nil {
				clear(lvl.State)
			}
			a.levels = append(a.levels, lvl)
		}
		h.Levels = h.Levels[:0]
		h.ForcedTop = false
		a.hiers = append(a.hiers, h)
	}
	if ids != nil {
		for _, m := range ids.byLevel {
			clear(m)
			a.idMaps = append(a.idMaps, m)
		}
		ids.byLevel = ids.byLevel[:0]
		a.idents = append(a.idents, ids)
	}
}

// beginBuild resets the per-build scratch.
func (a *Arena) beginBuild() {
	if a == nil {
		return
	}
	if a.prevLog == nil {
		a.prevLog = map[int][]uint64{}
	} else {
		clear(a.prevLog)
	}
	a.chainBack = a.chainBack[:0]
	a.chainSpan = a.chainSpan[:0]
	a.electUsed = 0
	if a.anc == nil {
		a.anc = map[int]int{}
	} else {
		clear(a.anc)
	}
}

func (a *Arena) getHier() *Hierarchy {
	if a == nil || len(a.hiers) == 0 {
		return &Hierarchy{}
	}
	h := a.hiers[len(a.hiers)-1]
	a.hiers = a.hiers[:len(a.hiers)-1]
	return h
}

func (a *Arena) getIdents() *Identities {
	if a == nil || len(a.idents) == 0 {
		return &Identities{}
	}
	ids := a.idents[len(a.idents)-1]
	a.idents = a.idents[:len(a.idents)-1]
	return ids
}

func (a *Arena) getLevel() *Level {
	if a == nil || len(a.levels) == 0 {
		return &Level{}
	}
	l := a.levels[len(a.levels)-1]
	a.levels = a.levels[:len(a.levels)-1]
	return l
}

func (a *Arena) getGraph(n int) *topology.Graph {
	if a == nil || len(a.graphs) == 0 {
		return topology.NewGraph(n)
	}
	g := a.graphs[len(a.graphs)-1]
	a.graphs = a.graphs[:len(a.graphs)-1]
	g.Reset(n)
	return g
}

func (a *Arena) getInts() []int {
	if a == nil || len(a.ints) == 0 {
		return nil
	}
	s := a.ints[len(a.ints)-1]
	a.ints = a.ints[:len(a.ints)-1]
	return s[:0]
}

// putInts returns a slice's backing capacity to the pool (the inverse
// of getInts, for callers that release individual slices outside a full
// Recycle).
func (a *Arena) putInts(s []int) {
	if a == nil || s == nil {
		return
	}
	a.ints = append(a.ints, s)
}

func (a *Arena) getIDMap(sizeHint int) map[int]uint64 {
	if a == nil || len(a.idMaps) == 0 {
		return make(map[int]uint64, sizeHint)
	}
	m := a.idMaps[len(a.idMaps)-1]
	a.idMaps = a.idMaps[:len(a.idMaps)-1]
	return m
}

func (a *Arena) getElectMap() map[uint64]uint64 {
	if a == nil {
		return map[uint64]uint64{}
	}
	if a.electUsed < len(a.electMaps) {
		m := a.electMaps[a.electUsed]
		a.electUsed++
		clear(m)
		return m
	}
	m := map[uint64]uint64{}
	a.electMaps = append(a.electMaps, m)
	a.electUsed++
	return m
}

//manet:hotpath
func (a *Arena) getHeadSet(sizeHint int) map[int]bool {
	if a == nil {
		//lint:ignore hotpath arena-less builds are the cold, allocate-fresh path
		return make(map[int]bool, sizeHint)
	}
	if a.headSet == nil {
		//lint:ignore hotpath warm-up: the head set is allocated once and reused
		a.headSet = make(map[int]bool, sizeHint)
	} else {
		clear(a.headSet)
	}
	return a.headSet
}

// getHeadBuf returns the reusable positional-heads buffer electors
// append into; hand the (possibly grown) slice back via putHeadBuf.
//
//manet:hotpath
func (a *Arena) getHeadBuf() []int {
	if a == nil {
		return nil
	}
	return a.headBuf[:0]
}

//manet:hotpath
func (a *Arena) putHeadBuf(s []int) {
	if a != nil {
		a.headBuf = s
	}
}

func (a *Arena) getCarrier() map[uint64]int {
	if a == nil {
		return map[uint64]int{}
	}
	if a.carrier == nil {
		a.carrier = map[uint64]int{}
	} else {
		clear(a.carrier)
	}
	return a.carrier
}

func (a *Arena) matchScratch() (map[matchPair]int, []matchPair, map[uint64]bool) {
	if a == nil {
		return map[matchPair]int{}, nil, map[uint64]bool{}
	}
	if a.counts == nil {
		a.counts = map[matchPair]int{}
		a.usedPrev = map[uint64]bool{}
	} else {
		clear(a.counts)
		clear(a.usedPrev)
	}
	a.pairs = a.pairs[:0]
	return a.counts, a.pairs, a.usedPrev
}

// appendKeysSorted appends m's keys to dst in ascending order.
func appendKeysSorted(dst []int, m map[int][]int) []int {
	for k := range m {
		dst = append(dst, k)
	}
	slices.Sort(dst)
	return dst
}
