package cluster

import (
	"sort"

	"repro/internal/topology"
)

// Tracked building: hierarchy construction interleaved with identity
// matching, so that election hysteresis survives clusterhead relabels.
//
// A hysteresis elector (StickyLCA) keys its memory on the head a node
// elected previously. At levels >= 1 the "nodes" are clusters whose
// physical name (head ID) churns; if memory were keyed on names, every
// relabel below would erase the affiliation and re-trigger argmax
// elections — the instability cascade that destroys the paper's
// Θ(1/h_k) event frequencies. BuildWithIdentities therefore matches
// each level's clusters to the previous snapshot (logical IDs) before
// electing that level, and translates "the head u elected last tick"
// through logical inheritance into this tick's physical node.
//
// MemorylessLCA ignores the memory entirely, giving the paper's
// literal re-election model; the A1 ablation contrasts the two.

// BuildWithIdentities builds the hierarchy for the current topology
// and assigns logical identities level by level. prevH/prevIDs may be
// nil for the first snapshot. The result is equivalent to Build
// followed by identity matching, except that the elector's hysteresis
// is fed relabel-proof previous-head information.
func BuildWithIdentities(
	g0 *topology.Graph,
	nodes []int,
	cfg Config,
	prevH *Hierarchy,
	prevIDs *Identities,
	tr *IdentityTracker,
	now float64,
) (*Hierarchy, *Identities) {
	cfg = cfg.withDefaults()
	base := append([]int(nil), nodes...)
	sort.Ints(base)

	// Previous logical chains per level-0 node, and previous elections
	// in logical space: prevElect[k][logical_u] = logical head u
	// elected at level k (k >= 1).
	prevLog := map[int][]uint64{}
	prevElect := map[int]map[uint64]uint64{}
	if prevH != nil && prevIDs != nil {
		for _, v := range prevH.LevelNodes(0) {
			if c := prevIDs.ChainOf(prevH, v); c != nil {
				prevLog[v] = c
			}
		}
		for k := 1; k <= prevH.L(); k++ {
			lvl := prevH.Level(k)
			if lvl == nil || lvl.Head == nil {
				continue
			}
			m := map[uint64]uint64{}
			//lint:ignore maprange map-to-map projection; the result is order-free
			for u, w := range lvl.Head {
				lu, okU := prevIDs.Logical(k, u)
				lw, okW := prevIDs.Logical(k, w)
				if okU && okW {
					m[lu] = lw
				}
			}
			prevElect[k] = m
		}
	}

	h := &Hierarchy{Reach: cfg.Reach}
	ids := &Identities{}
	// anc maps each level-0 node to its deepest known ancestor; it is
	// advanced one level per election round.
	anc := make(map[int]int, len(base))
	for _, v := range base {
		anc[v] = v
	}

	curNodes := base
	curGraph := g0
	for k := 0; ; k++ {
		lvl := &Level{K: k, Nodes: curNodes, Graph: curGraph}
		h.Levels = append(h.Levels, lvl)

		if k >= 1 {
			// Identity-match the freshly formed level-k clusters.
			ids.byLevel = append(ids.byLevel, matchLevel(tr, k, curNodes, anc, prevLog))
		}

		if len(curNodes) <= 1 || k >= cfg.MaxLevels {
			break
		}
		if cfg.ForceTopAt > 0 && k >= 1 && len(curNodes) <= cfg.ForceTopAt {
			forceTop(h, lvl, curNodes, g0.IDSpace())
			// Identity for the forced top level.
			root := curNodes[len(curNodes)-1]
			//lint:ignore maprange per-key update/delete; the result is order-free
			for v, a := range anc {
				if _, ok := lvl.Member[a]; ok {
					anc[v] = root
				} else {
					delete(anc, v)
				}
			}
			ids.byLevel = append(ids.byLevel, matchLevel(tr, k+1, []int{root}, anc, prevLog))
			break
		}

		prevHead := buildPrevHead(k, curNodes, ids, prevH, prevElect)
		var head map[int]int
		if se, ok := cfg.Elector.(StatefulElector); ok {
			logicalOf := func(u int) uint64 {
				if k == 0 {
					return uint64(u)
				}
				if l, ok := ids.Logical(k, u); ok {
					return l
				}
				return uint64(u)
			}
			head = se.ElectTracked(&ElectCtx{
				Time: now, Level: k, Nodes: curNodes, Graph: curGraph,
				PrevHead: prevHead, LogicalOf: logicalOf,
			})
		} else {
			head = cfg.Elector.Elect(curNodes, curGraph, prevHead)
		}
		elect(lvl, head)

		nextNodes := keysSorted(lvl.Members)
		if len(nextNodes) == len(curNodes) {
			// No compression: drop trivial election data and stop.
			lvl.Head, lvl.Member, lvl.Members, lvl.State = nil, nil, nil, nil
			break
		}
		// Advance ancestors to level k+1.
		//lint:ignore maprange per-key update/delete; the result is order-free
		for v, a := range anc {
			m, ok := lvl.Member[a]
			if !ok {
				delete(anc, v)
				continue
			}
			anc[v] = m
		}
		curGraph = liftGraph(curGraph, lvl, g0.IDSpace())
		curNodes = nextNodes
	}
	return h, ids
}

// buildPrevHead returns the elector-memory closure for level k: given
// a level-k node (cluster), the current physical node that carries the
// logical identity of the head it elected in the previous snapshot, or
// -1 when there is none.
func buildPrevHead(
	k int,
	curNodes []int,
	ids *Identities,
	prevH *Hierarchy,
	prevElect map[int]map[uint64]uint64,
) func(int) int {
	if k == 0 {
		// Level-0 nodes are persistent; use the raw previous election.
		if prevH == nil || prevH.Level(0) == nil || prevH.Level(0).Head == nil {
			return func(int) int { return -1 }
		}
		heads := prevH.Level(0).Head
		return func(u int) int {
			if hd, ok := heads[u]; ok {
				return hd
			}
			return -1
		}
	}
	elect := prevElect[k]
	if len(elect) == 0 {
		return func(int) int { return -1 }
	}
	// Reverse map: logical level-k ID -> current physical node.
	carrier := map[uint64]int{}
	for _, u := range curNodes {
		if l, ok := ids.Logical(k, u); ok {
			carrier[l] = u
		}
	}
	return func(u int) int {
		lu, ok := ids.Logical(k, u)
		if !ok {
			return -1
		}
		lw, ok := elect[lu]
		if !ok {
			return -1
		}
		if w, ok := carrier[lw]; ok {
			return w
		}
		return -1
	}
}

// matchLevel assigns logical IDs to the level-k clusters of the
// snapshot under construction by maximal level-0 overlap with the
// previous snapshot's logical clusters (greedy, largest overlap first,
// deterministic tie-breaks). Clusters inheriting no identity receive
// fresh IDs from tr.
func matchLevel(
	tr *IdentityTracker,
	k int,
	newHeads []int,
	newAnc map[int]int,
	prevLog map[int][]uint64,
) map[int]uint64 {
	if tr.Passthrough {
		m := make(map[int]uint64, len(newHeads))
		for _, h := range newHeads {
			m[h] = uint64(h)
		}
		return m
	}
	type pair struct {
		prev uint64
		next int
	}
	counts := map[pair]int{}
	//lint:ignore maprange commutative integer counting; the result is order-free
	for v, nh := range newAnc {
		pc, ok := prevLog[v]
		if !ok || len(pc) < k {
			continue
		}
		counts[pair{prev: pc[k-1], next: nh}]++
	}
	pairs := make([]pair, 0, len(counts))
	for p := range counts {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		ci, cj := counts[pairs[i]], counts[pairs[j]]
		if ci != cj {
			return ci > cj
		}
		if pairs[i].prev != pairs[j].prev {
			return pairs[i].prev < pairs[j].prev
		}
		return pairs[i].next < pairs[j].next
	})
	m := make(map[int]uint64, len(newHeads))
	usedPrev := map[uint64]bool{}
	for _, p := range pairs {
		if usedPrev[p.prev] {
			continue
		}
		if _, taken := m[p.next]; taken {
			continue
		}
		m[p.next] = p.prev
		usedPrev[p.prev] = true
	}
	for _, h := range newHeads {
		if _, ok := m[h]; !ok {
			m[h] = tr.alloc(h)
		}
	}
	return m
}
