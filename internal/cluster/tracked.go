package cluster

import (
	"slices"

	"repro/internal/topology"
)

// Tracked building: hierarchy construction interleaved with identity
// matching, so that election hysteresis survives clusterhead relabels.
//
// A hysteresis elector (StickyLCA) keys its memory on the head a node
// elected previously. At levels >= 1 the "nodes" are clusters whose
// physical name (head ID) churns; if memory were keyed on names, every
// relabel below would erase the affiliation and re-trigger argmax
// elections — the instability cascade that destroys the paper's
// Θ(1/h_k) event frequencies. BuildWithIdentities therefore matches
// each level's clusters to the previous snapshot (logical IDs) before
// electing that level, and translates "the head u elected last tick"
// through logical inheritance into this tick's physical node.
//
// MemorylessLCA ignores the memory entirely, giving the paper's
// literal re-election model; the A1 ablation contrasts the two.

// BuildWithIdentities builds the hierarchy for the current topology
// and assigns logical identities level by level. prevH/prevIDs may be
// nil for the first snapshot. The result is equivalent to Build
// followed by identity matching, except that the elector's hysteresis
// is fed relabel-proof previous-head information.
func BuildWithIdentities(
	g0 *topology.Graph,
	nodes []int,
	cfg Config,
	prevH *Hierarchy,
	prevIDs *Identities,
	tr *IdentityTracker,
	now float64,
) (*Hierarchy, *Identities) {
	return BuildWithIdentitiesArena(nil, g0, nodes, cfg, prevH, prevIDs, tr, now)
}

// BuildWithIdentitiesArena is BuildWithIdentities drawing all snapshot
// storage from the arena (nil arena = allocate fresh, identical to
// BuildWithIdentities). The returned hierarchy and identities own
// arena-recycled storage; hand them back via Arena.Recycle once they
// are two generations old.
func BuildWithIdentitiesArena(
	a *Arena,
	g0 *topology.Graph,
	nodes []int,
	cfg Config,
	prevH *Hierarchy,
	prevIDs *Identities,
	tr *IdentityTracker,
	now float64,
) (*Hierarchy, *Identities) {
	cfg = cfg.withDefaults()
	a.beginBuild()
	base := append(a.getInts(), nodes...)
	slices.Sort(base)

	// Previous logical chains per level-0 node, and previous elections
	// in logical space: prevElect[k][logical_u] = logical head u
	// elected at level k (k >= 1).
	var prevLog map[int][]uint64
	if a != nil {
		prevLog = a.prevLog
	} else {
		prevLog = map[int][]uint64{}
	}
	prevElect := map[int]map[uint64]uint64{}
	if prevH != nil && prevIDs != nil {
		if a != nil {
			// Chains share one flat backing array; views are fixed up
			// after all appends so growth cannot invalidate them.
			for _, v := range prevH.LevelNodes(0) {
				start := len(a.chainBack)
				a.chainBack = prevIDs.AppendChainOf(prevH, v, a.chainBack)
				if end := len(a.chainBack); end > start {
					a.chainSpan = append(a.chainSpan, chainSpan{v: v, start: start, end: end})
				}
			}
			for _, sp := range a.chainSpan {
				prevLog[sp.v] = a.chainBack[sp.start:sp.end:sp.end]
			}
		} else {
			for _, v := range prevH.LevelNodes(0) {
				if c := prevIDs.ChainOf(prevH, v); c != nil {
					prevLog[v] = c
				}
			}
		}
		for k := 1; k <= prevH.L(); k++ {
			lvl := prevH.Level(k)
			if lvl == nil || lvl.Head == nil {
				continue
			}
			m := a.getElectMap()
			//lint:ignore maprange map-to-map projection; the result is order-free
			for u, w := range lvl.Head {
				lu, okU := prevIDs.Logical(k, u)
				lw, okW := prevIDs.Logical(k, w)
				if okU && okW {
					m[lu] = lw
				}
			}
			prevElect[k] = m
		}
	}

	h := a.getHier()
	h.Reach = cfg.Reach
	ids := a.getIdents()
	// anc maps each level-0 node to its deepest known ancestor; it is
	// advanced one level per election round.
	var anc map[int]int
	if a != nil {
		anc = a.anc
	} else {
		anc = make(map[int]int, len(base))
	}
	for _, v := range base {
		anc[v] = v
	}

	curNodes := base
	curGraph := g0
	for k := 0; ; k++ {
		lvl := a.getLevel()
		lvl.K, lvl.Nodes, lvl.Graph = k, curNodes, curGraph
		h.Levels = append(h.Levels, lvl)

		if k >= 1 {
			// Identity-match the freshly formed level-k clusters.
			ids.byLevel = append(ids.byLevel, matchLevel(a, tr, k, curNodes, anc, prevLog))
		}

		if len(curNodes) <= 1 || k >= cfg.MaxLevels {
			break
		}
		if cfg.ForceTopAt > 0 && k >= 1 && len(curNodes) <= cfg.ForceTopAt {
			forceTop(h, lvl, curNodes, g0.IDSpace(), a)
			// Identity for the forced top level.
			root := curNodes[len(curNodes)-1]
			//lint:ignore maprange per-key update/delete; the result is order-free
			for v, an := range anc {
				if _, ok := lvl.Member[an]; ok {
					anc[v] = root
				} else {
					delete(anc, v)
				}
			}
			ids.byLevel = append(ids.byLevel, matchLevel(a, tr, k+1, h.Levels[k+1].Nodes, anc, prevLog))
			break
		}

		prevHead := buildPrevHead(a, k, curNodes, ids, prevH, prevElect)
		heads := a.getHeadBuf()
		if se, ok := cfg.Elector.(StatefulElector); ok {
			logicalOf := func(u int) uint64 {
				if k == 0 {
					return uint64(u)
				}
				if l, ok := ids.Logical(k, u); ok {
					return l
				}
				return uint64(u)
			}
			heads = se.ElectTracked(heads, &ElectCtx{
				Time: now, Level: k, Nodes: curNodes, Graph: curGraph,
				PrevHead: prevHead, LogicalOf: logicalOf,
			})
		} else {
			heads = cfg.Elector.Elect(heads, curNodes, curGraph, prevHead)
		}
		elect(lvl, heads, a)
		a.putHeadBuf(heads)

		nextNodes := appendKeysSorted(a.getInts(), lvl.Members)
		if len(nextNodes) == len(curNodes) {
			// No compression: drop trivial election data and stop.
			lvl.Head, lvl.Member, lvl.Members, lvl.State = nil, nil, nil, nil
			break
		}
		// Advance ancestors to level k+1.
		//lint:ignore maprange per-key update/delete; the result is order-free
		for v, an := range anc {
			m, ok := lvl.Member[an]
			if !ok {
				delete(anc, v)
				continue
			}
			anc[v] = m
		}
		curGraph = liftGraph(curGraph, lvl, g0.IDSpace(), a)
		curNodes = nextNodes
	}
	return h, ids
}

// buildPrevHead returns the elector-memory closure for level k: given
// a level-k node (cluster), the current physical node that carries the
// logical identity of the head it elected in the previous snapshot, or
// -1 when there is none. The closure is valid only for the duration of
// the level's election (it may capture arena scratch).
func buildPrevHead(
	a *Arena,
	k int,
	curNodes []int,
	ids *Identities,
	prevH *Hierarchy,
	prevElect map[int]map[uint64]uint64,
) func(int) int {
	if k == 0 {
		// Level-0 identities are the node IDs themselves, but the nodes
		// are only persistent while they remain covered: a previous head
		// that churned out or drifted off the giant component has no
		// current carrier and must report -1, or a grace-period elector
		// (DebouncedLCA) would keep electing the departed node and
		// promote a head that is not a level-0 node at all.
		if prevH == nil || prevH.Level(0) == nil || prevH.Level(0).Head == nil {
			return func(int) int { return -1 }
		}
		heads := prevH.Level(0).Head
		return func(u int) int {
			if hd, ok := heads[u]; ok {
				if _, live := slices.BinarySearch(curNodes, hd); live {
					return hd
				}
			}
			return -1
		}
	}
	elect := prevElect[k]
	if len(elect) == 0 {
		return func(int) int { return -1 }
	}
	// Reverse map: logical level-k ID -> current physical node.
	carrier := a.getCarrier()
	for _, u := range curNodes {
		if l, ok := ids.Logical(k, u); ok {
			carrier[l] = u
		}
	}
	return func(u int) int {
		lu, ok := ids.Logical(k, u)
		if !ok {
			return -1
		}
		lw, ok := elect[lu]
		if !ok {
			return -1
		}
		if w, ok := carrier[lw]; ok {
			return w
		}
		return -1
	}
}

// matchLevel assigns logical IDs to the level-k clusters of the
// snapshot under construction by maximal level-0 overlap with the
// previous snapshot's logical clusters (greedy, largest overlap first,
// deterministic tie-breaks). Clusters inheriting no identity receive
// fresh IDs from tr. Arena a (nil-safe) supplies counting scratch and
// the result map.
func matchLevel(
	a *Arena,
	tr *IdentityTracker,
	k int,
	newHeads []int,
	newAnc map[int]int,
	prevLog map[int][]uint64,
) map[int]uint64 {
	if tr.Passthrough {
		m := a.getIDMap(len(newHeads))
		for _, h := range newHeads {
			m[h] = uint64(h)
		}
		return m
	}
	counts, pairs, usedPrev := a.matchScratch()
	//lint:ignore maprange commutative integer counting; the result is order-free
	for v, nh := range newAnc {
		pc, ok := prevLog[v]
		if !ok || len(pc) < k {
			continue
		}
		counts[matchPair{prev: pc[k-1], next: nh}]++
	}
	for p := range counts {
		pairs = append(pairs, p)
	}
	slices.SortFunc(pairs, func(x, y matchPair) int {
		cx, cy := counts[x], counts[y]
		switch {
		case cx != cy:
			if cx > cy {
				return -1
			}
			return 1
		case x.prev != y.prev:
			if x.prev < y.prev {
				return -1
			}
			return 1
		default:
			return x.next - y.next
		}
	})
	if a != nil {
		a.pairs = pairs // return grown capacity to the arena
	}
	m := a.getIDMap(len(newHeads))
	for _, p := range pairs {
		if usedPrev[p.prev] {
			continue
		}
		if _, taken := m[p.next]; taken {
			continue
		}
		m[p.next] = p.prev
		usedPrev[p.prev] = true
	}
	for _, h := range newHeads {
		if _, ok := m[h]; !ok {
			m[h] = tr.alloc(h)
		}
	}
	return m
}
