package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// quickGraph builds a graph over [0, n) from arbitrary bytes.
func quickGraph(n int, raw []byte) *topology.Graph {
	g := topology.NewGraph(n)
	for i := 0; i+1 < len(raw); i += 2 {
		a := int(raw[i]) % n
		b := int(raw[i+1]) % n
		g.AddEdge(a, b)
	}
	return g
}

// TestQuickBuildAlwaysValid: every hierarchy built over an arbitrary
// graph satisfies the structural invariants.
func TestQuickBuildAlwaysValid(t *testing.T) {
	f := func(raw []byte) bool {
		const n = 40
		g := quickGraph(n, raw)
		h := Build(g, nodesUpTo(n), Config{}, nil)
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiffSymmetry: elections in one direction are rejections in
// the other, level by level.
func TestQuickDiffSymmetry(t *testing.T) {
	f := func(rawA, rawB []byte) bool {
		const n = 30
		g1 := quickGraph(n, rawA)
		g2 := quickGraph(n, rawB)
		h1 := Build(g1, nodesUpTo(n), Config{}, nil)
		h2 := Build(g2, nodesUpTo(n), Config{}, nil)
		fwd := ComputeDiff(h1, h2)
		rev := ComputeDiff(h2, h1)
		for k, e := range fwd.Elections {
			r := rev.Rejections[k]
			if len(e) != len(r) {
				return false
			}
			for i := range e {
				if e[i] != r[i] {
					return false
				}
			}
		}
		for k, e := range fwd.Rejections {
			r := rev.Elections[k]
			if len(e) != len(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIdentityPartition: logical IDs within one snapshot are
// unique per level (an ID names exactly one cluster).
func TestQuickIdentityPartition(t *testing.T) {
	f := func(rawA, rawB []byte) bool {
		const n = 35
		tr := NewIdentityTracker()
		g1 := quickGraph(n, rawA)
		h1, ids1 := BuildWithIdentities(g1, nodesUpTo(n), Config{}, nil, nil, tr, 0)
		g2 := quickGraph(n, rawB)
		h2, ids2 := BuildWithIdentities(g2, nodesUpTo(n), Config{}, h1, ids1, tr, 1)
		for _, pair := range []struct {
			h   *Hierarchy
			ids *Identities
		}{{h1, ids1}, {h2, ids2}} {
			for k := 1; k <= pair.h.L(); k++ {
				seen := map[uint64]bool{}
				for _, head := range pair.h.LevelNodes(k) {
					id, ok := pair.ids.Logical(k, head)
					if !ok || seen[id] {
						return false
					}
					seen[id] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDescendantsCount: Σ over level-k clusters of descendant
// counts equals |V₀| at every level.
func TestQuickDescendantsCount(t *testing.T) {
	f := func(raw []byte) bool {
		const n = 40
		g := quickGraph(n, raw)
		h := Build(g, nodesUpTo(n), Config{}, nil)
		for k := 1; k <= h.L(); k++ {
			total := 0
			for _, c := range h.LevelNodes(k) {
				total += len(h.Descendants(k, c))
			}
			if total != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
