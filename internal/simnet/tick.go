package simnet

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/invariant"
	"repro/internal/kinetic"
	"repro/internal/lm"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/spatial"
	"repro/internal/topology"
)

// phaseTimers is the looper's pre-resolved observability instrument:
// one timer per tick phase plus the tick-level counters and gauges,
// looked up once at setup so the hot loop never touches the registry's
// lock. With Metrics unset every field is nil and each instrumentation
// point costs one nil check (obs types are nil-safe no-ops).
type phaseTimers struct {
	tick       *obs.Timer
	advance    *obs.Timer
	rebuild    *obs.Timer
	cluster    *obs.Timer
	clusterInc *obs.Timer
	diff       *obs.Timer
	lmUpdate   *obs.Timer
	measure    *obs.Timer
	hops       *obs.Timer
	invariant  *obs.Timer
	observer   *obs.Timer

	ticks         *obs.Counter
	measuredTicks *obs.Counter
	transfers     *obs.Counter
	levels        *obs.Gauge
}

func newPhaseTimers(reg *obs.Registry) phaseTimers {
	if reg == nil {
		return phaseTimers{}
	}
	return phaseTimers{
		tick:       reg.Timer(obs.PhaseTick),
		advance:    reg.Timer(obs.PhaseAdvance),
		rebuild:    reg.Timer(obs.PhaseRebuild),
		cluster:    reg.Timer(obs.PhaseCluster),
		clusterInc: reg.Timer(obs.PhaseClusterInc),
		diff:       reg.Timer(obs.PhaseDiff),
		lmUpdate:   reg.Timer(obs.PhaseLMUpdate),
		measure:    reg.Timer(obs.PhaseMeasure),
		hops:       reg.Timer(obs.PhaseHops),
		invariant:  reg.Timer(obs.PhaseInvariant),
		observer:   reg.Timer(obs.PhaseObserver),

		ticks:         reg.Counter("sim.ticks"),
		measuredTicks: reg.Counter("sim.measured_ticks"),
		transfers:     reg.Counter("sim.transfers"),
		levels:        reg.Gauge("sim.levels"),
	}
}

// looper is the steady-state scan tick with all of its double-buffered
// storage. The reuse contract is two-generational: at tick t, the t-1
// snapshot is still live (it feeds identity matching, diffing, the
// incremental table update and the event counters), so only storage
// retired at the END of tick t-1 — i.e. the t-2 snapshot — is
// recycled. Concretely:
//
//   - spareGraph / spareTable hold the graph and LM table of tick t-2;
//     BuildUnitDiskInto and UpdateTableInto overwrite them in place.
//   - retiredH / retiredIDs hold the t-2 hierarchy and identities;
//     Arena.Recycle harvests them before the t build. The level-0
//     graph inside retiredH is skipped — it is spareGraph, already
//     owned by the graph double-buffer.
//   - diff and the scratches (diffScratch, linkScratch, giantScr,
//     updScratch, and the accountant's internals) are reused every
//     tick; their outputs are dead once the tick's accounting and the
//     Observer callback return (see the ObsEvent lifetime note).
//
// In a post-warmup tick with no churn this leaves only the elector's
// per-level head maps and a few closures as per-tick allocations —
// see BenchmarkTick* in bench_test.go and TestSteadyStateTickAllocs.
type looper struct {
	cfg        Config
	clusterCfg cluster.Config
	model      mobility.Model
	// link is the level-0 link model (Config.Link). The scan engine
	// rebuilds through it every tick; the kinetic engine bypasses it
	// (validation guarantees the kinetic engine only runs with the
	// unit-disk model, whose predicate the tracker maintains).
	link       topology.LinkModel
	grid       *spatial.Grid
	region     geom.Disc
	pos        []geom.Vec
	selector   *lm.Selector
	tracker    *cluster.IdentityTracker
	accountant *lm.Accountant
	bfsHop     *topology.BFSHops
	st         *stateRun

	// Live snapshot (tick t-1).
	graph  *topology.Graph
	hier   *cluster.Hierarchy
	idents *cluster.Identities
	table  *lm.Table

	// Retired storage (tick t-2), recycled into the next build.
	spareGraph *topology.Graph
	retiredH   *cluster.Hierarchy
	retiredIDs *cluster.Identities
	spareTable *lm.Table

	// Hierarchy maintenance (Config.Maintainer): the maintainer owns
	// the snapshot arena; Retire replaces the old direct Recycle call.
	// useEvents marks maintainers that consume the tick's link-event
	// delta (computed in the rebuild phase); evBuf is the kinetic
	// event buffer and maintIn the reused Maintain input.
	mnt       cluster.Maintainer
	useEvents bool
	evBuf     []topology.LinkEvent
	maintIn   cluster.MaintainInput

	diff        *cluster.Diff
	diffScratch cluster.DiffScratch
	linkScratch topology.DiffScratch
	giantScr    topology.ComponentScratch
	updScratch  lm.UpdateScratch

	// Intra-tick parallelism (Config.IntraTickParallelism > 1): the
	// worker pool shared by every parallel phase, and the per-shard
	// scratches of the parallel graph build and table update. nil pool
	// means every phase runs its serial path.
	pool         *par.Pool
	buildScratch topology.BuildScratch
	updParScr    lm.UpdateParScratch

	// Kinetic engine (Config.Engine == "kinetic"): the event-driven
	// link tracker replaces the per-tick grid sweep and full rescan in
	// the advance and rebuild phases; everything downstream (cluster
	// maintain, diff, LM update, measurement) is shared with the scan
	// engine. nil selects the scan engine.
	kin *kinetic.Tracker
	// Reference storage for the kinetic-graph invariant differential:
	// a fresh full scan rebuilt on checked ticks and compared against
	// the tracker's edge set. Lazily allocated.
	refGrid  *spatial.Grid
	refGraph *topology.Graph

	// Invariant checker (Config.CheckLevel); nil checks nothing.
	checker *invariant.Checker

	// Observability (Config.Metrics): pre-resolved phase timers and
	// counters; all nil (no-op) when metrics are off.
	tm phaseTimers

	// Churn state (E18): alive flags and pending revivals.
	alive      []bool
	reviveAt   []float64
	churnSrc   *rng.Source
	aliveNodes []int
	tick       int
}

// step advances the simulation by one scan tick. The obs spans wrap
// each phase without influencing it: timers are nil-safe no-ops when
// metrics are off, and never touch simulation state or randomness.
//
//manet:hotpath
func (lp *looper) step(now float64) {
	cfg := &lp.cfg
	st := lp.st
	spTick := lp.tm.tick.Start()
	lp.tick++
	lp.tm.ticks.Inc()

	spAdvance := lp.tm.advance.Start()
	lp.model.AdvanceTo(now, lp.pos)
	if lp.kin != nil {
		lp.kin.BeginTick(now)
	}
	if cfg.ChurnRate > 0 {
		pDeath := cfg.ChurnRate * cfg.ScanInterval
		for i := range lp.alive {
			if lp.alive[i] {
				if lp.churnSrc.Float64() < pDeath {
					lp.alive[i] = false
					lp.reviveAt[i] = now + lp.churnSrc.Exp(1/cfg.MeanDowntime)
					if lp.kin != nil {
						lp.kin.Kill(i)
					} else {
						lp.grid.Remove(i)
					}
					if now > cfg.Warmup {
						st.deaths++
					}
				}
			} else if now >= lp.reviveAt[i] {
				lp.alive[i] = true
			}
		}
	}
	lp.aliveNodes = lp.aliveNodes[:0]
	if lp.kin != nil {
		// Kinetic engine: the tracker owns grid cells (updated at
		// attention events, not every tick); only churn rejoins need
		// explicit insertion before the event drain.
		for i := range lp.pos {
			if lp.alive[i] {
				if !lp.grid.Contains(i) {
					lp.kin.Revive(i)
				}
				lp.aliveNodes = append(lp.aliveNodes, i)
			}
		}
		lp.kin.Advance(now)
	} else {
		for i, p := range lp.pos {
			if lp.alive[i] {
				lp.grid.Update(i, p)
				lp.aliveNodes = append(lp.aliveNodes, i)
			}
		}
	}
	spAdvance.Stop()

	spRebuild := lp.tm.rebuild.Start()
	var newGraph *topology.Graph
	var events []topology.LinkEvent
	if lp.kin != nil {
		if lp.useEvents {
			// AppendEvents must precede GraphInto, which consumes and
			// clears the tracker's pending deltas.
			lp.evBuf = lp.kin.AppendEvents(lp.evBuf[:0])
			events = lp.evBuf
		}
		newGraph = lp.kin.GraphInto(lp.spareGraph)
	} else {
		newGraph = lp.link.BuildInto(
			lp.spareGraph, cfg.N, lp.pos, lp.grid, lp.pool, &lp.buildScratch)
		if lp.useEvents {
			events = lp.linkScratch.Diff(lp.graph, newGraph)
		}
	}
	lp.spareGraph = nil
	if lp.bfsHop != nil {
		lp.bfsHop.Rebind(newGraph)
	}
	spRebuild.Stop()

	// Incremental maintenance gets its own span (tick.cluster_inc) so
	// oracle-vs-incremental phase costs are directly comparable.
	spCluster := lp.tm.cluster.Start()
	var spClusterInc obs.Span
	if lp.useEvents {
		spClusterInc = lp.tm.clusterInc.Start()
	}
	lp.mnt.Retire(lp.retiredH, lp.retiredIDs)
	lp.retiredH, lp.retiredIDs = nil, nil
	giant := lp.giantScr.Giant(newGraph, lp.aliveNodes)
	lp.maintIn = cluster.MaintainInput{
		G0: newGraph, PrevG0: lp.graph, Nodes: giant, Events: events,
		PrevH: lp.hier, PrevIDs: lp.idents, Now: now,
	}
	// Reference state for the incremental-hierarchy-equal differential:
	// the oracle rebuild inside the checker must see the pre-Maintain
	// tracker and elector state, so both are cloned before the live
	// Maintain advances them. Checked ticks under the incremental
	// maintainer only.
	var refTracker *cluster.IdentityTracker
	var refCfg cluster.Config
	if lp.cfg.Maintainer == MaintainerIncremental && lp.checker.ShouldCheck(lp.tick) {
		refTracker = lp.tracker.Clone()
		refCfg = lp.clusterCfg
		//lint:ignore hotpath periodic invariant check; interval-gated, off the steady tick
		if ce, ok := refCfg.Elector.(cluster.CloneableElector); ok {
			refCfg.Elector = ce.CloneElector()
		}
	}
	newHier, newIdents := lp.mnt.Maintain(&lp.maintIn)
	if cfg.Paranoid {
		//lint:ignore hotpath Paranoid-only cold branch; off in measured runs
		if err := newHier.Validate(); err != nil {
			panic(fmt.Sprintf("simnet: t=%.2f: %v", now, err))
		}
	}
	spClusterInc.Stop()
	spCluster.Stop()
	lp.tm.levels.Set(float64(newHier.L()))

	spDiff := lp.tm.diff.Start()
	lp.diff = cluster.ComputeDiffInto(lp.diff, lp.hier, newHier, &lp.diffScratch)
	spDiff.Stop()

	spLM := lp.tm.lmUpdate.Start()
	newTable := lp.selector.UpdateTableIntoPar(
		lp.spareTable, &lp.updScratch, &lp.updParScr,
		lp.table, lp.hier, lp.idents, newHier, newIdents,
		lp.mnt.DirtyClusters(), lp.pool)
	lp.spareTable = nil
	spLM.Stop()

	// Fault injection (Config.Fault): corrupt the fresh table before
	// anything downstream — accounting, observer, and the invariant
	// checker all see the corrupted state, as a real bug would present.
	if cfg.Fault == FaultHandoffMisroute && lp.tick%faultPeriod == 0 {
		newTable.CorruptServer(cfg.Seed + uint64(lp.tick))
	}

	measuring := now > cfg.Warmup
	var transfers []lm.Transfer
	if measuring {
		spMeasure := lp.tm.measure.Start()
		st.measuredTicks++
		lp.tm.measuredTicks.Inc()
		st.countLinkEvents(&lp.linkScratch, lp.graph, newGraph)
		transfers = lp.accountant.Apply(lp.table, newTable, &st.totals)
		lp.tm.transfers.Add(int64(len(transfers)))
		st.observe(newHier, newGraph, lp.tick)
		if cfg.TrackStates {
			//lint:ignore hotpath opt-in state tracking (TrackStates); off in measured runs
			st.states.Observe(newHier)
			st.states.ObserveDiff(lp.diff)
		}
		if cfg.TrackClasses {
			//lint:ignore hotpath opt-in reorg classification (TrackClasses); off in measured runs
			st.classes.Merge(lm.ClassifyReorg(lp.hier, newHier, lp.diff))
		}
		st.countClusterLinkEvents(lp.hier, lp.idents, newHier, newIdents, lp.table, newTable)
		spMeasure.Stop()
		if cfg.SampleHops > 0 && lp.tick%cfg.SampleHops == 0 {
			spHops := lp.tm.hops.Start()
			st.sampleHops(newHier, newGraph)
			spHops.Stop()
		}
	}

	if lp.checker.ShouldCheck(lp.tick) {
		spInv := lp.tm.invariant.Start()
		var kineticRef *topology.Graph
		if lp.kin != nil {
			//lint:ignore hotpath periodic invariant check; interval-gated, off the steady tick
			kineticRef = lp.rebuildReference()
		}
		//lint:ignore hotpath periodic invariant check; interval-gated, off the steady tick
		lp.checker.CheckTick(&invariant.Snapshot{
			Tick: lp.tick, Time: now, Seed: cfg.Seed,
			//lint:ignore hotpath periodic invariant check; interval-gated, off the steady tick
			Prev: &invariant.State{Hier: lp.hier, IDs: lp.idents, Table: lp.table},
			//lint:ignore hotpath periodic invariant check; interval-gated, off the steady tick
			Next:            &invariant.State{Hier: newHier, IDs: newIdents, Table: newTable},
			Diff:            lp.diff,
			Selector:        lp.selector,
			Graph:           newGraph,
			KineticRef:      kineticRef,
			MaintainIn:      &lp.maintIn,
			MaintainCfg:     refCfg,
			MaintainTracker: refTracker,
		})
		spInv.Stop()
	}

	if cfg.Observer != nil {
		spObs := lp.tm.observer.Start()
		cfg.Observer(ObsEvent{
			Time: now, Hierarchy: newHier, Diff: lp.diff,
			Transfers: transfers, Positions: lp.pos,
		})
		spObs.Stop()
	}

	// Rotate: the t-1 snapshot retires, t becomes the live snapshot.
	lp.spareGraph = lp.graph
	lp.retiredH, lp.retiredIDs = lp.hier, lp.idents
	lp.spareTable = lp.table
	lp.graph, lp.hier, lp.idents, lp.table = newGraph, newHier, newIdents, newTable
	spTick.Stop()
}

// rebuildReference runs a fresh full unit-disk scan over the current
// positions into the looper's lazily allocated reference storage — the
// ground truth for the kinetic-graph-equal invariant differential. The
// reference grid is populated and drained per call so the tracker's
// own grid (whose cells lag positions by design) is never touched.
func (lp *looper) rebuildReference() *topology.Graph {
	if lp.refGrid == nil {
		lp.refGrid = spatial.NewGridForDisc(lp.region, lp.cfg.RTX, lp.cfg.N)
	}
	for _, i := range lp.aliveNodes {
		lp.refGrid.Insert(i, lp.pos[i])
	}
	lp.refGraph = topology.BuildUnitDiskInto(lp.refGraph, lp.cfg.N, lp.pos, lp.cfg.RTX, lp.refGrid)
	for _, i := range lp.aliveNodes {
		lp.refGrid.Remove(i)
	}
	return lp.refGraph
}

// close releases the worker pool (a no-op for serial runs). The looper
// must not step again afterwards.
func (lp *looper) close() { lp.pool.Close() }
